// Figure 15: dynamic power overhead of the DRC (128 entries) as a
// percentage of total CPU dynamic power (McPAT-style accounting).
// Paper: 0.18% average.
#include "bench_util.hpp"

int main() {
  using namespace vcfr;
  bench::print_header(
      "Figure 15 — DRC dynamic power overhead (DRC 128)",
      "average DRC dynamic power is 0.18% of CPU dynamic power");
  std::printf("%-10s %16s %16s %14s\n", "app", "CPU dyn (uJ)", "DRC dyn (uJ)",
              "overhead (%)");

  double sum = 0;
  int n = 0;
  for (const auto& name : workloads::spec_names()) {
    const auto image = workloads::make(name, bench::scale());
    const auto rr = bench::randomized(image);
    const auto r = bench::run(rr.vcfr, 128);
    const double pct = r.power.drc_overhead_percent();
    std::printf("%-10s %16.1f %16.3f %14.3f\n", name.c_str(),
                r.power.cpu_total() * 1e-6, r.power.drc * 1e-6, pct);
    sum += pct;
    ++n;
  }
  bench::print_footer(sum / n, "DRC power overhead (%)");
  return 0;
}
