// Request-serving latency snapshot: drives a pinned 8-tenant mix (the
// §V-A server handler interleaved with four SPEC-like programs) through
// the event-driven serve subsystem, writing BENCH_serve.json for CI to
// diff across commits.
//
// Usage: serve [serve.json]   (default BENCH_serve.json)
//
// Two sections, matching the BENCH_hotpath.json pattern:
//   * "simulated" — deterministic: rounds, fleet cycles, request
//     accounting, throughput, and per-tenant latency percentiles in
//     fleet-clock cycles. CI diffs this byte-for-byte.
//   * "host" — wall-clock of the run. Informational only.
#include <chrono>
#include <cstdio>
#include <fstream>

#include "serve/server.hpp"
#include "telemetry/json_writer.hpp"

namespace {

using Clock = std::chrono::steady_clock;

}  // namespace

int main(int argc, char** argv) {
  const char* path = argc > 1 ? argv[1] : "BENCH_serve.json";

  vcfr::serve::ServeConfig sc;
  sc.tenants = 8;
  sc.cores = 4;
  sc.duration = 300'000;
  sc.model = vcfr::serve::ArrivalModel::kOpen;
  sc.dist = vcfr::serve::Distribution::kExponential;
  sc.mean_interarrival = 15'000;
  sc.workloads = {"server", "bzip2", "server", "mcf",
                  "server", "hmmer", "server", "libquantum"};
  sc.scale = 0;
  sc.seed = 7;
  sc.slice_instructions = 2'000;

  const auto start = Clock::now();
  const vcfr::serve::ServeReport report = vcfr::serve::run_serve(sc);
  const double wall_ms =
      std::chrono::duration<double>(Clock::now() - start).count() * 1e3;

  using vcfr::telemetry::JsonWriter;
  JsonWriter w;
  w.begin_object(JsonWriter::Style::kPretty);
  w.key("bench").value("serve");
  w.key("config").begin_object();
  w.key("tenants").value(sc.tenants);
  w.key("cores").value(sc.cores);
  w.key("duration").value(sc.duration);
  w.key("arrival").value("open");
  w.key("dist").value("exp");
  w.key("interarrival").value(sc.mean_interarrival);
  w.key("scale").value(static_cast<uint64_t>(sc.scale));
  w.key("seed").value(sc.seed);
  w.key("slice").value(sc.slice_instructions);
  w.end_object();
  w.key("simulated").raw_value(
      // to_json already renders the full deterministic report (pretty,
      // trailing newline stripped to nest cleanly).
      [&] {
        std::string j = report.to_json();
        while (!j.empty() && j.back() == '\n') j.pop_back();
        return j;
      }());
  w.key("host").begin_object();
  w.key("wall_ms").raw_value(vcfr::telemetry::json_double(wall_ms));
  w.end_object();
  w.end_object();

  std::ofstream out(path);
  out << w.str() << "\n";
  out.close();
  std::printf("serve bench: %llu/%llu requests in %llu cycles -> %s\n",
              static_cast<unsigned long long>(report.completed),
              static_cast<unsigned long long>(report.generated),
              static_cast<unsigned long long>(report.fleet_cycles), path);
  return 0;
}
