// Request-serving latency snapshot: drives a pinned 8-tenant mix (the
// §V-A server handler interleaved with four SPEC-like programs) through
// the event-driven serve subsystem, writing BENCH_serve.json for CI to
// diff across commits.
//
// Usage: serve [serve.json [trace.json]]
//        (defaults BENCH_serve.json, BENCH_trace.json)
//
// Two sections, matching the BENCH_hotpath.json pattern:
//   * "simulated" — deterministic: rounds, fleet cycles, request
//     accounting, throughput, and per-tenant latency percentiles in
//     fleet-clock cycles. CI diffs this byte-for-byte.
//   * "host" — wall-clock of the run. Informational only.
//
// A second, fully-traced run of the same config then writes the
// observability snapshot (trace.json): per-label trace event counts,
// flow matching, and journal entry counts by kind — also deterministic,
// also diffed by CI. The first run stays untraced so the BENCH_serve
// numbers keep proving the serve path is observer-neutral.
#include <chrono>
#include <cstdio>
#include <fstream>

#include "serve/server.hpp"
#include "telemetry/json_writer.hpp"
#include "telemetry/telemetry.hpp"

namespace {

using Clock = std::chrono::steady_clock;

}  // namespace

int main(int argc, char** argv) {
  const char* path = argc > 1 ? argv[1] : "BENCH_serve.json";
  const char* trace_path = argc > 2 ? argv[2] : "BENCH_trace.json";

  vcfr::serve::ServeConfig sc;
  sc.tenants = 8;
  sc.cores = 4;
  sc.duration = 300'000;
  sc.model = vcfr::serve::ArrivalModel::kOpen;
  sc.dist = vcfr::serve::Distribution::kExponential;
  sc.mean_interarrival = 15'000;
  sc.workloads = {"server", "bzip2", "server", "mcf",
                  "server", "hmmer", "server", "libquantum"};
  sc.scale = 0;
  sc.seed = 7;
  sc.slice_instructions = 2'000;

  const auto start = Clock::now();
  const vcfr::serve::ServeReport report = vcfr::serve::run_serve(sc);
  const double wall_ms =
      std::chrono::duration<double>(Clock::now() - start).count() * 1e3;

  using vcfr::telemetry::JsonWriter;
  JsonWriter w;
  w.begin_object(JsonWriter::Style::kPretty);
  w.key("bench").value("serve");
  w.key("config").begin_object();
  w.key("tenants").value(sc.tenants);
  w.key("cores").value(sc.cores);
  w.key("duration").value(sc.duration);
  w.key("arrival").value("open");
  w.key("dist").value("exp");
  w.key("interarrival").value(sc.mean_interarrival);
  w.key("scale").value(static_cast<uint64_t>(sc.scale));
  w.key("seed").value(sc.seed);
  w.key("slice").value(sc.slice_instructions);
  w.end_object();
  w.key("simulated").raw_value(
      // to_json already renders the full deterministic report (pretty,
      // trailing newline stripped to nest cleanly).
      [&] {
        std::string j = report.to_json();
        while (!j.empty() && j.back() == '\n') j.pop_back();
        return j;
      }());
  w.key("host").begin_object();
  w.key("wall_ms").raw_value(vcfr::telemetry::json_double(wall_ms));
  w.end_object();
  w.end_object();

  std::ofstream out(path);
  out << w.str() << "\n";
  out.close();
  std::printf("serve bench: %llu/%llu requests in %llu cycles -> %s\n",
              static_cast<unsigned long long>(report.completed),
              static_cast<unsigned long long>(report.generated),
              static_cast<unsigned long long>(report.fleet_cycles), path);

  // Second run, same config, flight recorder + tracer on: the counts
  // below pin the observability surface (event mix, flow matching,
  // journal kinds) the same way "simulated" pins the latency numbers.
  vcfr::telemetry::TelemetryConfig tc;
  tc.trace = true;
  tc.journal = true;
  vcfr::telemetry::Telemetry tel(tc);
  const vcfr::serve::ServeReport traced = vcfr::serve::run_serve(sc, &tel);

  JsonWriter tw;
  tw.begin_object(JsonWriter::Style::kPretty);
  tw.key("bench").value("serve-trace");
  tw.key("simulated").begin_object();
  tw.key("rounds").value(traced.rounds);
  tw.key("completed").value(traced.completed);
  tw.key("trace").begin_object();
  tw.key("dropped").value(tel.tracer()->dropped());
  tw.key("events").begin_object();
  for (const auto& [label, n] : tel.tracer()->event_counts()) {
    tw.key(label).value(n);
  }
  tw.end_object();
  tw.end_object();
  tw.key("journal").begin_object();
  tw.key("entries").value(static_cast<uint64_t>(tel.journal()->entries().size()));
  tw.key("dropped").value(tel.journal()->dropped());
  tw.key("by_kind").begin_object();
  for (const auto& [kind, n] : tel.journal()->counts()) {
    tw.key(kind).value(n);
  }
  tw.end_object();
  tw.end_object();
  tw.end_object();
  tw.end_object();

  std::ofstream tout(trace_path);
  tout << tw.str() << "\n";
  tout.close();
  std::printf("serve trace bench: %llu traced requests -> %s\n",
              static_cast<unsigned long long>(traced.completed), trace_path);
  return 0;
}
