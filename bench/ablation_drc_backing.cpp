// Ablation: DRC backing store — a dedicated level-two DRC buffer vs
// sharing the unified L2 (§IV-B: "One option is to include a larger level
// two DRC lookup buffer. However, for efficient usage of cache space, DRC
// can share its second level cache with the unified L2 of a processor
// core, which is our current design.").
//
// Measures, on the most DRC-hungry workloads, whether a dedicated L2 DRC
// buys enough IPC to justify its silicon — the paper's conclusion is no.
#include "bench_util.hpp"
#include "power/energy.hpp"

int main() {
  using namespace vcfr;
  bench::print_header(
      "Ablation — dedicated L2 DRC vs sharing the unified L2 (DRC-64 L1)",
      "sharing the L2 is sufficient; a dedicated buffer buys little IPC");
  std::printf("%-10s %12s %12s %12s %14s %14s\n", "app", "IPC shared",
              "IPC +L2DRC", "gain (%)", "walks shared", "walks +L2DRC");

  for (const auto& name : {"xalan", "sjeng", "h264ref", "gcc", "hmmer"}) {
    const auto image = workloads::make(name, bench::scale());
    const auto rr = bench::randomized(image);

    sim::CpuConfig shared = bench::cpu_config(64);
    sim::CpuConfig dedicated = bench::cpu_config(64);
    dedicated.drc.l2_entries = 2048;

    const auto r_shared =
        sim::simulate(rr.vcfr, bench::max_instr(), shared);
    const auto r_dedicated =
        sim::simulate(rr.vcfr, bench::max_instr(), dedicated);

    const double gain =
        100.0 * (r_dedicated.ipc() / std::max(1e-9, r_shared.ipc()) - 1.0);
    std::printf("%-10s %12.3f %12.3f %12.2f %14llu %14llu\n", name,
                r_shared.ipc(), r_dedicated.ipc(), gain,
                static_cast<unsigned long long>(r_shared.drc_table_walks),
                static_cast<unsigned long long>(r_dedicated.drc_table_walks));
  }
  std::printf("\nA 2048-entry dedicated buffer (16 KiB of SRAM) removes most "
              "memory walks but the IPC gain stays small because walk\n"
              "latency is usually an L2 hit already — supporting the paper's "
              "shared-L2 design choice.\n\n");
  return 0;
}
