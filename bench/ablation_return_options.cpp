// Ablation: the two return-address randomization options of §IV-A.
//
//   option 1 (software) : call X -> push <randomized ret>; jmp X
//   option 2 (hardware)  : the core pushes the randomized return via a DRC
//                          rand-entry lookup and maintains the §IV-C bitmap
//
// The paper argues option 2 is "fully transparent to the randomized binary
// program and at the same time maintaining the constant size for all the
// call instructions". This bench quantifies that: code-size expansion,
// dynamic instruction inflation, randomized-return coverage, and IPC.
#include "bench_util.hpp"

int main() {
  using namespace vcfr;
  bench::print_header(
      "Ablation — software vs architectural return-address randomization",
      "option 2 is transparent and constant-size (SIV-A); option 1 grows code");
  std::printf("%-10s %10s %12s %12s %12s %12s\n", "app", "expand(%)",
              "instr(+%)", "IPC(sw)", "IPC(arch)", "cover(sw/arch)");

  double sum_expand = 0;
  int n = 0;
  for (const auto& name : workloads::spec_names()) {
    const auto image = workloads::make(name, bench::scale());

    rewriter::RandomizeOptions arch;
    arch.seed = bench::seed();
    const auto rr_arch = rewriter::randomize(image, arch);

    rewriter::RandomizeOptions sw = arch;
    sw.return_option = rewriter::ReturnOption::kSoftwareRewrite;
    const auto rr_sw = rewriter::randomize(image, sw);

    const auto r_arch = bench::run(rr_arch.vcfr, 128);
    const auto r_sw = bench::run(rr_sw.vcfr, 128);

    const double instr_inflation =
        100.0 * (static_cast<double>(r_sw.instructions) /
                     std::max<uint64_t>(1, r_arch.instructions) -
                 1.0);
    // Coverage: fraction of static call sites whose returns are randomized.
    const auto calls =
        rr_arch.analysis.stats.function_calls;
    const double cover_sw =
        calls == 0 ? 0
                   : 100.0 * rr_sw.sw_stats.calls_rewritten /
                         static_cast<double>(calls);
    const double cover_arch =
        calls == 0
            ? 0
            : 100.0 *
                  (static_cast<double>(calls) -
                   static_cast<double>(
                       rr_arch.analysis.unsafe_return_sites.size())) /
                  static_cast<double>(calls);

    std::printf("%-10s %10.1f %12.1f %12.3f %12.3f %7.0f%%/%3.0f%%\n",
                name.c_str(), rr_sw.sw_stats.expansion_percent(),
                instr_inflation, r_sw.ipc(), r_arch.ipc(), cover_sw,
                cover_arch);
    sum_expand += rr_sw.sw_stats.expansion_percent();
    ++n;
  }
  bench::print_footer(sum_expand / n, "code expansion (%) under option 1");
  return 0;
}
