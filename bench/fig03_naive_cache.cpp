// Figure 3: impact of the naive (straightforward) hardware implementation
// of ILR on the L1 instruction cache and the unified L2.
// Paper: IL1 miss rates increase 9.4x on average (one outlier at 558x),
// IL1 prefetch miss rates increase by 28 percentage points on average, and
// L2 read pressure from the instruction side increases by 36% on average.
#include "bench_util.hpp"

int main() {
  using namespace vcfr;
  bench::print_header(
      "Figure 3 — naive hardware ILR vs baseline: IL1/L2 impact",
      "IL1 miss ratio ~9.4x avg; prefetch-miss +28pp avg; L2 pressure +36% avg");
  std::printf("%-10s %14s %18s %16s\n", "app", "IL1 miss (x)",
              "prefetch miss (+pp)", "L2 pressure (+%)");

  double sum_ratio = 0, sum_pp = 0, sum_l2 = 0;
  int n = 0;
  for (const auto& name : workloads::spec_names()) {
    const auto image = workloads::make(name, bench::scale());
    const auto base = bench::run(image, 128);
    const auto rr = bench::randomized(image);
    const auto naive = bench::run(rr.naive, 128);

    const double ratio =
        naive.il1.miss_rate() / std::max(1e-9, base.il1.miss_rate());
    const double pf_pp = 100.0 * (naive.il1.prefetch_useless_rate() -
                                  base.il1.prefetch_useless_rate());
    // L2 pressure: total read operations from the L1s into the unified L2
    // (instruction + data side), normalized per retired instruction — the
    // paper's "number of read operation from L1 cache to L2 cache".
    const double base_rate =
        static_cast<double>(base.l2_pressure.total_reads()) /
        base.instructions;
    const double naive_rate =
        static_cast<double>(naive.l2_pressure.total_reads()) /
        naive.instructions;
    const double l2_pct = 100.0 * (naive_rate / std::max(1e-12, base_rate) - 1.0);

    std::printf("%-10s %14.1f %18.1f %16.1f\n", name.c_str(), ratio, pf_pp,
                l2_pct);
    sum_ratio += ratio;
    sum_pp += pf_pp;
    sum_l2 += l2_pct;
    ++n;
  }
  std::printf("--------------------------------------------------------------\n");
  std::printf("measured averages: IL1 miss ratio %.1fx, prefetch miss +%.1fpp, "
              "L2 pressure +%.0f%%\n\n",
              sum_ratio / n, sum_pp / n, sum_l2 / n);
  return 0;
}
