// Ablation: context switching and the DRC (§IV-B / §IV-D).
//
// The translation tables are per-process secrets held in the kernel's
// process context, so a context switch must flush the DRC (isolation —
// cached translations from process A must not be visible to process B).
// This bench quantifies the cost: two processes' translation-event
// streams (recorded from the golden model) are replayed through one DRC
// under round-robin scheduling at several time quanta, with the
// ContextManager flushing at each switch. An insecure "no flush" variant
// shows what the isolation costs relative to sharing.
#include <vector>

#include "bench_util.hpp"
#include "core/context.hpp"
#include "core/drc.hpp"
#include "emu/emulator.hpp"

namespace {

using namespace vcfr;

struct Event {
  uint32_t key;
  bool derand;
};

std::vector<Event> record_events(const binary::Image& vcfr_image,
                                 uint64_t max_instr) {
  binary::Memory mem;
  binary::load(vcfr_image, mem);
  emu::Emulator emulator(vcfr_image, mem);
  std::vector<Event> events;
  emu::StepInfo si;
  uint64_t steps = 0;
  while (steps < max_instr && emulator.step(&si)) {
    ++steps;
    if (si.needs_derand) events.push_back({si.derand_key, true});
    if (si.needs_rand) events.push_back({si.rand_key, false});
    if (emulator.halted()) break;
  }
  return events;
}

/// Replays two event streams round-robin with `quantum` events per slice.
core::DrcStats replay(const std::vector<Event>& a, const std::vector<Event>& b,
                      uint64_t quantum, bool flush_on_switch,
                      const binary::TranslationTables& ta,
                      const binary::TranslationTables& tb) {
  core::Drc drc({.entries = 512, .assoc = 1, .hit_latency = 1});
  core::ContextManager mgr(drc);
  core::ProcessContext pa{.pid = 1, .name = "a", .tables = &ta, .epoch = 0};
  core::ProcessContext pb{.pid = 2, .name = "b", .tables = &tb, .epoch = 0};

  size_t ia = 0, ib = 0;
  bool running_a = true;
  while (ia < a.size() || ib < b.size()) {
    const auto& stream = running_a ? a : b;
    size_t& idx = running_a ? ia : ib;
    const auto& tables = running_a ? ta : tb;
    if (flush_on_switch) {
      mgr.switch_to(running_a ? pa : pb);
    }
    for (uint64_t n = 0; n < quantum && idx < stream.size(); ++n, ++idx) {
      const Event& e = stream[idx];
      if (!drc.lookup(e.key, e.derand)) {
        core::DrcEntryValue v;
        if (e.derand) {
          v.translation = tables.to_original(e.key);
          v.randomized_tag = tables.is_randomized_addr(e.key);
        } else {
          v.translation = tables.to_randomized(e.key);
          v.randomized_tag = v.translation != e.key;
        }
        drc.insert(e.key, e.derand, v);
      }
    }
    running_a = !running_a;
  }
  return drc.stats();
}

}  // namespace

int main() {
  bench::print_header(
      "Ablation — context-switch quantum vs DRC miss rate (DRC-512)",
      "per-process tables force a DRC flush per switch (SIV-B isolation)");

  const auto img_a = workloads::make("gcc", bench::scale());
  const auto img_b = workloads::make("xalan", bench::scale());
  const auto rr_a = bench::randomized(img_a);
  const auto rr_b = bench::randomized(img_b);
  const auto ev_a = record_events(rr_a.vcfr, bench::max_instr());
  const auto ev_b = record_events(rr_b.vcfr, bench::max_instr());
  std::printf("event streams: gcc %zu translations, xalan %zu translations\n\n",
              ev_a.size(), ev_b.size());

  std::printf("%16s %16s %20s\n", "quantum (xlats)", "miss rate (%)",
              "miss rate no-flush (%)");
  for (uint64_t quantum : {500ull, 2000ull, 10000ull, 50000ull}) {
    const auto flushed = replay(ev_a, ev_b, quantum, true, rr_a.vcfr.tables,
                                rr_b.vcfr.tables);
    const auto shared = replay(ev_a, ev_b, quantum, false, rr_a.vcfr.tables,
                               rr_b.vcfr.tables);
    std::printf("%16llu %16.2f %20.2f\n",
                static_cast<unsigned long long>(quantum),
                100 * flushed.miss_rate(), 100 * shared.miss_rate());
  }
  std::printf(
      "\nReading: at realistic quanta (tens of thousands of transfers "
      "between switches) the flush adds little;\nthe isolation requirement "
      "only bites under pathological switch rates — the paper's per-process "
      "table design is cheap.\n\n");
  return 0;
}
