// Fleet scale-out snapshot (BENCH_scale.json; simulated section diffed
// by CI): 256 tenant processes on a 64-core fleet, swept across
// execute-phase worker-pool sizes {1, 2, 4, 8}.
//
// The point of the sweep is the determinism contract, not throughput
// curves: worker count is host parallelism only, so every sweep point
// MUST produce bit-identical simulated results (cycles, instructions,
// rounds). The binary checks that itself and exits non-zero on
// divergence; the per-point rounds/cycles also land in the "simulated"
// section so CI re-checks the invariant by diffing the committed file.
//
// Two sections, same discipline as BENCH_hotpath.json:
//   * "simulated" — deterministic; CI strips "host" and diffs the rest;
//   * "host" — wall-clock per sweep point plus the host CPU count.
//     Informational only (build type, machine, and core count all move
//     it); no derived "speedup" is reported because a 1-CPU CI host
//     cannot honestly show one.
//
// The configuration is pinned (not bench_util env knobs): the file is
// committed at the repo root and must mean the same thing everywhere.
// The per-tenant instruction budget is small (20k) to keep the
// 4 x (64-core, 256-tenant) sweep tractable on unoptimized CI builds.
//
// Usage: scale [scale.json]   (default BENCH_scale.json)
#include <chrono>
#include <cstdio>
#include <fstream>
#include <thread>
#include <vector>

#include "os/kernel.hpp"
#include "telemetry/json_writer.hpp"

namespace {

using namespace vcfr;
using Clock = std::chrono::steady_clock;

constexpr uint32_t kCores = 64;
constexpr uint32_t kTenants = 256;
constexpr uint64_t kSlice = 2'000;
constexpr uint64_t kMaxInstr = 20'000;
constexpr uint64_t kSeed = 7;
constexpr uint64_t kSeedMix = 0x9e3779b97f4a7c15ull;

struct SweepPoint {
  uint32_t workers_requested = 0;
  uint32_t pool_workers = 0;  // resolved (0 = auto -> cores - 1)
  uint64_t pool_rounds = 0;
  uint64_t rounds = 0;
  uint64_t fleet_cycles = 0;
  uint64_t fleet_instructions = 0;
  double fleet_ipc = 0.0;
  double wall_ms = 0.0;
};

SweepPoint run_point(uint32_t workers) {
  os::KernelConfig kc;
  kc.cores = kCores;
  kc.sched.slice_instructions = kSlice;
  kc.measure_isolated = false;  // 256 isolated re-runs would dwarf the fleet
  kc.pool_workers = workers;
  os::Kernel kernel(kc);
  const char* mix[] = {"bzip2", "gcc", "mcf", "hmmer"};
  for (uint32_t i = 0; i < kTenants; ++i) {
    os::ProcessConfig pc;
    pc.workload = mix[i % 4];
    pc.scale = 0;
    pc.seed = kSeed ^ (kSeedMix * (i + 1));
    pc.max_instructions = kMaxInstr;
    kernel.spawn(pc);
  }
  const auto start = Clock::now();
  const os::FleetReport r = kernel.run();
  SweepPoint pt;
  pt.workers_requested = workers;
  pt.pool_workers = kernel.pool_workers();
  pt.pool_rounds = kernel.pool_rounds();
  pt.rounds = r.rounds;
  pt.fleet_cycles = r.fleet_cycles;
  pt.fleet_instructions = r.fleet_instructions;
  pt.fleet_ipc = r.fleet_ipc;
  pt.wall_ms =
      std::chrono::duration<double, std::milli>(Clock::now() - start).count();
  return pt;
}

}  // namespace

int main(int argc, char** argv) {
  const char* path = argc > 1 ? argv[1] : "BENCH_scale.json";

  std::vector<SweepPoint> sweep;
  for (const uint32_t workers : {1u, 2u, 4u, 8u}) {
    sweep.push_back(run_point(workers));
    std::printf("scale: %3u workers -> %llu rounds, %llu cycles, %.0f ms\n",
                workers, static_cast<unsigned long long>(sweep.back().rounds),
                static_cast<unsigned long long>(sweep.back().fleet_cycles),
                sweep.back().wall_ms);
  }

  for (const SweepPoint& pt : sweep) {
    if (pt.fleet_cycles != sweep[0].fleet_cycles ||
        pt.fleet_instructions != sweep[0].fleet_instructions ||
        pt.rounds != sweep[0].rounds || pt.pool_rounds != sweep[0].pool_rounds) {
      std::fprintf(stderr,
                   "scale sweep diverged at %u workers: simulated results "
                   "must not depend on host parallelism\n",
                   pt.workers_requested);
      return 1;
    }
  }

  telemetry::JsonWriter w;
  w.begin_object(telemetry::JsonWriter::Style::kPretty);
  w.key("bench").value("scale");
  w.key("simulated").begin_object();
  w.key("config").begin_object();
  w.key("cores").value(uint64_t{kCores});
  w.key("tenants").value(uint64_t{kTenants});
  w.key("slice").value(kSlice);
  w.key("scale").value(uint64_t{0});
  w.key("seed").value(kSeed);
  w.key("max_instructions").value(kMaxInstr);
  w.end_object();
  w.key("rounds").value(sweep[0].rounds);
  w.key("fleet_cycles").value(sweep[0].fleet_cycles);
  w.key("fleet_instructions").value(sweep[0].fleet_instructions);
  w.key("fleet_ipc").raw_value(telemetry::json_double(sweep[0].fleet_ipc));
  w.key("points").begin_array();
  for (const SweepPoint& pt : sweep) {
    w.begin_object();
    w.key("workers_requested").value(uint64_t{pt.workers_requested});
    w.key("pool_workers").value(uint64_t{pt.pool_workers});
    w.key("pool_rounds").value(pt.pool_rounds);
    w.key("rounds").value(pt.rounds);
    w.key("fleet_cycles").value(pt.fleet_cycles);
    w.key("fleet_instructions").value(pt.fleet_instructions);
    w.end_object();
  }
  w.end_array();
  w.key("identical_across_workers").value(true);
  w.end_object();
  w.key("host").begin_object();
  w.key("cpus").value(
      static_cast<uint64_t>(std::thread::hardware_concurrency()));
  w.key("points").begin_array();
  for (const SweepPoint& pt : sweep) {
    w.begin_object();
    w.key("workers_requested").value(uint64_t{pt.workers_requested});
    w.key("wall_ms").raw_value(telemetry::json_double(pt.wall_ms));
    w.end_object();
  }
  w.end_array();
  w.end_object();
  w.end_object();

  std::ofstream out(path, std::ios::binary);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", path);
    return 1;
  }
  out << w.str() << "\n";
  std::printf("scale: 64x256 sweep identical across workers -> %s\n", path);
  return 0;
}
