// Dependability-campaign snapshot emitter: runs the pinned reference
// campaign (2 workloads x 3 layouts x 5 sites x 2 trials, seed 7) and
// writes BENCH_faultcamp.json, which CI diffs byte-for-byte against the
// committed copy.
//
// Usage: faultcamp [out.json]     (default BENCH_faultcamp.json)
//
// The configuration is pinned, not flag-driven: the committed file must
// mean the same thing on every machine, and any change to the injector's
// selection streams, the trap model, or the campaign classifier shows up
// as a diff here.
#include <cstdio>
#include <fstream>

#include "fault/campaign.hpp"

int main(int argc, char** argv) {
  const char* path = argc > 1 ? argv[1] : "BENCH_faultcamp.json";

  vcfr::fault::CampaignConfig config;
  config.workloads = {"bzip2", "libquantum"};
  config.scale = 0;
  config.trials = 2;
  config.seed = 7;
  config.max_instructions = 2'000'000;

  const vcfr::fault::CampaignReport report = vcfr::fault::run_campaign(config);

  std::ofstream out(path, std::ios::binary);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", path);
    return 1;
  }
  out << report.to_json();
  std::fputs(report.summary().c_str(), stdout);
  std::printf("-> %s\n", path);

  // The committed snapshot doubles as the acceptance gate for the paper's
  // dependability claim: VCFR must detect strictly more of the applied
  // corruptions than the native layout.
  const auto* native = report.layout_counts("native");
  const auto* vcfr = report.layout_counts("vcfr");
  if (native == nullptr || vcfr == nullptr ||
      vcfr->detection_rate() <= native->detection_rate()) {
    std::fprintf(stderr, "FAIL: vcfr detection rate not above native\n");
    return 1;
  }
  return 0;
}
