// Future-work exploration (§IX): the paper limits itself to a single-issue
// in-order core and names wider machines as future work. This bench takes
// the first step — a W-wide *in-order* pipeline — and asks whether VCFR's
// overhead stays small as baseline ILP grows (redirect bubbles and DRC
// walk stalls cost more when each lost cycle is worth W instructions).
#include "bench_util.hpp"

int main() {
  using namespace vcfr;
  bench::print_header(
      "Future work (SIX) — VCFR overhead vs in-order issue width",
      "the paper evaluates width 1; wider cores amplify redirect costs");
  std::printf("%-10s %7s %12s %12s %14s\n", "app", "width", "base IPC",
              "VCFR IPC", "overhead (%)");

  for (const auto& name : {"gcc", "hmmer", "xalan", "namd"}) {
    const auto image = workloads::make(name, bench::scale());
    const auto rr = bench::randomized(image);
    for (uint32_t width : {1u, 2u, 4u}) {
      sim::CpuConfig cfg = bench::cpu_config(128);
      cfg.issue_width = width;
      const auto base = sim::simulate(image, bench::max_instr(), cfg);
      const auto vcfr = sim::simulate(rr.vcfr, bench::max_instr(), cfg);
      std::printf("%-10s %7u %12.3f %12.3f %14.2f\n", name, width, base.ipc(),
                  vcfr.ipc(), 100.0 * (1.0 - vcfr.ipc() / base.ipc()));
    }
  }
  std::printf("\nReading: the overhead percentage grows with width — the "
              "paper's OOO future work would need either a larger DRC or "
              "speculative translation to hold the 2%% line.\n\n");
  return 0;
}
