// Moving-target snapshot (BENCH_rerand.json; simulated section diffed
// by CI): continuous re-randomization under load, three experiments in
// one committed file (docs/DEPENDABILITY.md).
//
//   * "sweep"   — a 4-tenant fleet re-randomized every {64, 16, 4}
//     slices under both rebuild modes. Legacy full rebuild patches every
//     table/code/stack entry and flushes the warm DRC/bitmap state;
//     incremental re-places 25% of the code pages per firing with
//     epoch-tagged (lazy) invalidation. With a per-entry rewrite cost the
//     IPC degradation at the densest period MUST be measurably smaller
//     for incremental — the binary checks that and exits non-zero
//     otherwise, and the committed numbers let CI re-check it by diff.
//   * "on_trap" — seeded corruptions against tenants whose restart
//     policy is `never`: under --rerand-on-trap every attack-signal trap
//     buys the victim a fresh placement (recovered), under a purely
//     periodic policy the victim stays down. Recovered counts for both
//     policies are committed; on-trap must recover at least as many.
//   * "serve"   — p99 request latency with re-randomization off /
//     full / incremental while serving (the moving target keeps moving
//     under traffic).
//
// Two sections, same discipline as BENCH_scale.json: "simulated" is
// deterministic (CI strips "host" and byte-diffs the rest); "host" is
// wall-clock, informational only. The configuration is pinned — the
// file is committed at the repo root and must mean the same thing
// everywhere.
//
// Usage: rerand [rerand.json]   (default BENCH_rerand.json)
#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "os/kernel.hpp"
#include "serve/server.hpp"
#include "telemetry/json_writer.hpp"

namespace {

using namespace vcfr;
using Clock = std::chrono::steady_clock;

constexpr uint32_t kCores = 4;
constexpr uint32_t kTenants = 4;
constexpr uint64_t kSlice = 2'000;
constexpr uint64_t kMaxInstr = 120'000;
constexpr uint64_t kSeed = 7;
constexpr uint64_t kSeedMix = 0x9e3779b97f4a7c15ull;
/// Victim-core stall per patched entry: what makes rebuild work visible
/// in IPC (the lever the incremental path is built to shrink).
constexpr uint64_t kCostPerEntry = 2;

const char* kMix[] = {"bzip2", "gcc", "mcf", "hmmer"};

struct FleetPoint {
  uint32_t period = 0;  // slices between firings; 0 = re-rand off
  std::string mode;     // "off" | "full" | "incremental"
  uint64_t fleet_cycles = 0;
  uint64_t fleet_instructions = 0;
  double fleet_ipc = 0.0;
  double ipc_degradation = 0.0;  // vs the re-rand-off baseline
  uint64_t rerandomizations = 0;
  uint64_t deferred = 0;
  uint64_t forced = 0;
  uint64_t regions_patched = 0;
  uint64_t entries_patched = 0;
  uint64_t drc_flush_losses = 0;
};

FleetPoint run_fleet_point(uint32_t period, bool incremental) {
  os::KernelConfig kc;
  kc.cores = kCores;
  kc.sched.slice_instructions = kSlice;
  kc.measure_isolated = false;
  kc.rerand_cost_per_entry = kCostPerEntry;
  os::Kernel kernel(kc);
  for (uint32_t i = 0; i < kTenants; ++i) {
    os::ProcessConfig pc;
    pc.workload = kMix[i % 4];
    pc.scale = 0;
    pc.seed = kSeed ^ (kSeedMix * (i + 1));
    pc.max_instructions = kMaxInstr;
    pc.rerandomize.every_slices = period;
    if (incremental) {
      pc.rerandomize.rebuild = os::RerandomizePolicy::Rebuild::kIncremental;
      pc.rerandomize.epoch_tags = true;
    }
    pc.rerandomize.max_defer = 4;
    kernel.spawn(pc);
  }
  const os::FleetReport r = kernel.run();
  FleetPoint pt;
  pt.period = period;
  pt.mode = period == 0 ? "off" : (incremental ? "incremental" : "full");
  pt.fleet_cycles = r.fleet_cycles;
  pt.fleet_instructions = r.fleet_instructions;
  pt.fleet_ipc = r.fleet_ipc;
  pt.rerandomizations = r.rerandomizations;
  pt.forced = r.rerand_forced;
  pt.regions_patched = r.rerand_regions_patched;
  pt.entries_patched = r.rerand_entries_patched;
  pt.drc_flush_losses = r.drc_entries_flushed;
  for (const auto& p : r.processes) {
    pt.deferred += p.rerandomizations_deferred;
  }
  return pt;
}

struct TrapTrial {
  std::string site;
  uint64_t inject_seed = 0;
  std::string policy;  // "periodic" | "on_trap"
  std::string victim_exit;
  uint32_t victim_restarts = 0;
  bool recovered = false;  // victim left the run cleanly halted
};

TrapTrial run_trap_trial(const std::string& site_name, fault::FaultSite site,
                         uint64_t inject_seed, bool on_trap) {
  os::KernelConfig kc;
  kc.cores = 2;
  kc.sched.slice_instructions = kSlice;
  kc.measure_isolated = false;
  os::Kernel kernel(kc);
  for (uint32_t i = 0; i < 2; ++i) {
    os::ProcessConfig pc;
    pc.workload = kMix[i % 4];
    pc.scale = 0;
    pc.seed = kSeed ^ (kSeedMix * (i + 1));
    pc.max_instructions = 400'000;  // room to halt even after a restart
    // Both policies re-randomize; only one turns traps into placements.
    // restart stays `never`: any recovery is the moving-target policy's.
    if (on_trap) {
      pc.rerandomize.on_trap = true;
      pc.rerandomize.rebuild = os::RerandomizePolicy::Rebuild::kIncremental;
      pc.rerandomize.epoch_tags = true;
    } else {
      pc.rerandomize.every_slices = 8;
    }
    if (i == 0) {
      pc.inject.site = site;
      pc.inject.at_instruction = 5'000;
      pc.inject.seed = inject_seed;
      pc.inject_enabled = true;
    }
    kernel.spawn(pc);
  }
  const os::FleetReport r = kernel.run();
  const os::ProcessReport& victim = r.processes[0];
  TrapTrial t;
  t.site = site_name;
  t.inject_seed = inject_seed;
  t.policy = on_trap ? "on_trap" : "periodic";
  t.victim_exit = victim.exit;
  t.victim_restarts = victim.restarts;
  t.recovered = victim.halted && victim.exit == "halted";
  return t;
}

struct ServePoint {
  std::string mode;  // "off" | "full" | "incremental"
  uint64_t completed = 0;
  uint64_t failed = 0;
  uint64_t p99_max = 0;  // worst tenant's p99, cycles
  uint64_t rounds = 0;
};

ServePoint run_serve_point(const std::string& mode) {
  serve::ServeConfig sc;
  sc.tenants = 4;
  sc.cores = 2;
  sc.duration = 100'000;
  sc.mean_interarrival = 10'000;
  sc.scale = 0;
  sc.seed = kSeed;
  sc.slice_instructions = 500;  // requests span slices -> firings under load
  sc.rerand_cost_per_entry = kCostPerEntry;
  if (mode != "off") {
    sc.rerandomize.every_slices = 2;
    sc.rerandomize.max_defer = 4;
    if (mode == "incremental") {
      sc.rerandomize.rebuild = os::RerandomizePolicy::Rebuild::kIncremental;
      sc.rerandomize.epoch_tags = true;
    }
  }
  const serve::ServeReport r = serve::run_serve(sc);
  ServePoint pt;
  pt.mode = mode;
  pt.completed = r.completed;
  pt.failed = r.failed;
  pt.rounds = r.rounds;
  for (const auto& t : r.tenants) {
    if (t.p99 > pt.p99_max) pt.p99_max = t.p99;
  }
  return pt;
}

double degradation(const FleetPoint& baseline, const FleetPoint& pt) {
  return baseline.fleet_ipc == 0.0
             ? 0.0
             : (baseline.fleet_ipc - pt.fleet_ipc) / baseline.fleet_ipc;
}

}  // namespace

int main(int argc, char** argv) {
  const char* path = argc > 1 ? argv[1] : "BENCH_rerand.json";
  const auto start = Clock::now();

  // -- experiment A: period x rebuild-mode sweep ---------------------------
  const FleetPoint baseline = run_fleet_point(0, false);
  std::vector<FleetPoint> sweep;
  for (const uint32_t period : {64u, 16u, 4u}) {
    for (const bool incremental : {false, true}) {
      sweep.push_back(run_fleet_point(period, incremental));
      FleetPoint& pt = sweep.back();
      pt.ipc_degradation = degradation(baseline, pt);
      std::printf(
          "rerand: period %2u %-11s ipc %.4f (%.2f%% degr) %llu firings, "
          "%llu entries\n",
          pt.period, pt.mode.c_str(), pt.fleet_ipc,
          100.0 * pt.ipc_degradation,
          static_cast<unsigned long long>(pt.rerandomizations),
          static_cast<unsigned long long>(pt.entries_patched));
    }
  }
  // The whole point: at the densest period the incremental+epoch-tagged
  // path must hurt IPC measurably less than legacy full-flush rebuild.
  const FleetPoint& densest_full = sweep[sweep.size() - 2];
  const FleetPoint& densest_inc = sweep[sweep.size() - 1];
  if (densest_inc.ipc_degradation >= densest_full.ipc_degradation) {
    std::fprintf(stderr,
                 "rerand: incremental degradation (%.4f) not below legacy "
                 "full rebuild (%.4f) at period %u\n",
                 densest_inc.ipc_degradation, densest_full.ipc_degradation,
                 densest_full.period);
    return 1;
  }

  // -- experiment B: on-trap vs periodic containment -----------------------
  std::vector<TrapTrial> trials;
  uint64_t recovered_on_trap = 0, recovered_periodic = 0;
  const std::pair<const char*, fault::FaultSite> sites[] = {
      {"code_byte", fault::FaultSite::kCodeByte},
      {"translation_entry", fault::FaultSite::kTranslationEntry},
      {"payload", fault::FaultSite::kPayload},
  };
  for (const auto& [name, site] : sites) {
    for (const uint64_t inject_seed : {1u, 2u, 3u}) {
      for (const bool on_trap : {false, true}) {
        trials.push_back(run_trap_trial(name, site, inject_seed, on_trap));
        const TrapTrial& t = trials.back();
        (on_trap ? recovered_on_trap : recovered_periodic) += t.recovered;
        std::printf("rerand: %-17s seed %llu %-8s victim %s (restarts %u)\n",
                    t.site.c_str(),
                    static_cast<unsigned long long>(inject_seed),
                    t.policy.c_str(), t.victim_exit.c_str(),
                    t.victim_restarts);
      }
    }
  }
  if (recovered_on_trap < recovered_periodic) {
    std::fprintf(stderr,
                 "rerand: on-trap recovered fewer victims (%llu) than the "
                 "periodic baseline (%llu)\n",
                 static_cast<unsigned long long>(recovered_on_trap),
                 static_cast<unsigned long long>(recovered_periodic));
    return 1;
  }

  // -- experiment C: p99 while serving -------------------------------------
  std::vector<ServePoint> serve_points;
  for (const char* mode : {"off", "full", "incremental"}) {
    serve_points.push_back(run_serve_point(mode));
    const ServePoint& pt = serve_points.back();
    std::printf("rerand: serve %-11s completed %llu, p99 %llu cycles\n",
                pt.mode.c_str(),
                static_cast<unsigned long long>(pt.completed),
                static_cast<unsigned long long>(pt.p99_max));
  }

  const double wall_ms =
      std::chrono::duration<double, std::milli>(Clock::now() - start).count();

  telemetry::JsonWriter w;
  w.begin_object(telemetry::JsonWriter::Style::kPretty);
  w.key("bench").value("rerand");
  w.key("simulated").begin_object();
  w.key("config").begin_object();
  w.key("cores").value(uint64_t{kCores});
  w.key("tenants").value(uint64_t{kTenants});
  w.key("slice").value(kSlice);
  w.key("scale").value(uint64_t{0});
  w.key("seed").value(kSeed);
  w.key("max_instructions").value(kMaxInstr);
  w.key("rerand_cost_per_entry").value(kCostPerEntry);
  w.key("region_percent").value(uint64_t{25});
  w.key("max_defer").value(uint64_t{4});
  w.end_object();
  w.key("baseline").begin_object();
  w.key("fleet_cycles").value(baseline.fleet_cycles);
  w.key("fleet_instructions").value(baseline.fleet_instructions);
  w.key("fleet_ipc").raw_value(telemetry::json_double(baseline.fleet_ipc));
  w.end_object();
  w.key("sweep").begin_array();
  for (const FleetPoint& pt : sweep) {
    w.begin_object();
    w.key("period").value(uint64_t{pt.period});
    w.key("mode").value(pt.mode);
    w.key("fleet_cycles").value(pt.fleet_cycles);
    w.key("fleet_ipc").raw_value(telemetry::json_double(pt.fleet_ipc));
    w.key("ipc_degradation")
        .raw_value(telemetry::json_double(pt.ipc_degradation));
    w.key("rerandomizations").value(pt.rerandomizations);
    w.key("deferred").value(pt.deferred);
    w.key("forced").value(pt.forced);
    w.key("regions_patched").value(pt.regions_patched);
    w.key("entries_patched").value(pt.entries_patched);
    w.key("drc_flush_losses").value(pt.drc_flush_losses);
    w.end_object();
  }
  w.end_array();
  w.key("incremental_beats_full_at_densest").value(true);
  w.key("on_trap").begin_object();
  w.key("trials").begin_array();
  for (const TrapTrial& t : trials) {
    w.begin_object();
    w.key("site").value(t.site);
    w.key("inject_seed").value(t.inject_seed);
    w.key("policy").value(t.policy);
    w.key("victim_exit").value(t.victim_exit);
    w.key("victim_restarts").value(uint64_t{t.victim_restarts});
    w.key("recovered").value(t.recovered);
    w.end_object();
  }
  w.end_array();
  w.key("recovered_on_trap").value(recovered_on_trap);
  w.key("recovered_periodic").value(recovered_periodic);
  w.key("on_trap_at_least_periodic").value(true);
  w.end_object();
  w.key("serve").begin_array();
  for (const ServePoint& pt : serve_points) {
    w.begin_object();
    w.key("mode").value(pt.mode);
    w.key("rounds").value(pt.rounds);
    w.key("completed").value(pt.completed);
    w.key("failed").value(pt.failed);
    w.key("p99_max").value(pt.p99_max);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  w.key("host").begin_object();
  w.key("cpus").value(
      static_cast<uint64_t>(std::thread::hardware_concurrency()));
  w.key("wall_ms").raw_value(telemetry::json_double(wall_ms));
  w.end_object();
  w.end_object();

  std::ofstream out(path, std::ios::binary);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", path);
    return 1;
  }
  out << w.str() << "\n";
  std::printf("rerand: sweep + on-trap + serve snapshot -> %s\n", path);
  return 0;
}
