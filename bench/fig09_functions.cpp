// Figure 9: static analysis of function calls and returns — per
// application, the number of functions with and without ret instructions
// (functions without ret return to the caller via other instructions and
// constrain return-address randomization, §IV-C).
#include "bench_util.hpp"
#include "rewriter/cfg.hpp"

int main() {
  using namespace vcfr;
  bench::print_header(
      "Figure 9 — functions with / without ret instructions",
      "most functions contain ret; a minority return via other means");
  std::printf("%-10s %12s %14s %16s\n", "app", "functions", "with ret",
              "without ret");

  for (const auto& name : workloads::spec_names()) {
    const auto image = workloads::make(name, bench::scale());
    const auto cfg = rewriter::build_cfg(image);
    const auto s = rewriter::static_stats(image, cfg);
    std::printf("%-10s %12llu %14llu %16llu\n", name.c_str(),
                static_cast<unsigned long long>(s.functions_with_ret +
                                                s.functions_without_ret),
                static_cast<unsigned long long>(s.functions_with_ret),
                static_cast<unsigned long long>(s.functions_without_ret));
  }
  std::printf("\n");
  return 0;
}
