// Leak-observability snapshot (BENCH_leaks.json; simulated section
// diffed by CI): the address-taint tracker against a planted
// Heartbleed-style over-read, three arms in one committed file
// (docs/OBSERVABILITY.md, docs/DEPENDABILITY.md).
//
//   * "native"         — the leaky handler on the original layout. No
//     randomized secret ever enters the handler's frame, so the tracker
//     must stay silent by construction (0 sources, 0 leaks). The binary
//     exits non-zero otherwise.
//   * "vcfr"           — seed-randomized siblings of the same image. The
//     over-reading request echoes the saved (randomized) return address,
//     so every trial must fire the sink with full provenance: origin
//     ret_push, sink out, the leaked randomized address recorded.
//   * "rerand_on_leak" — leaky tenants served under --rerand-on-leak.
//     The kernel must treat each sink firing as an attack signal and
//     re-key the leaking tenant at its next request boundary (at least
//     one fresh placement scheduled and fired, no tenant down).
//
// Two sections, same discipline as BENCH_rerand.json: "simulated" is
// deterministic (CI strips "host" and byte-diffs the rest); "host" is
// wall-clock, informational only. The configuration is pinned — the
// file is committed at the repo root and must mean the same thing
// everywhere.
//
// Usage: leaks [leaks.json]   (default BENCH_leaks.json)
#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "binary/image.hpp"
#include "binary/loader.hpp"
#include "emu/emulator.hpp"
#include "emu/taint.hpp"
#include "rewriter/randomizer.hpp"
#include "serve/server.hpp"
#include "telemetry/json_writer.hpp"
#include "workloads/wl_server.hpp"

namespace {

using namespace vcfr;
using Clock = std::chrono::steady_clock;

constexpr uint64_t kSeed = 5;
constexpr uint32_t kTrials = 4;
/// The over-read: the handler's stack buffer is 64 bytes with the saved
/// (randomized) return address directly above it, so echoing 68 bytes
/// discloses all four return-address bytes.
constexpr uint32_t kRespLen = 68;

struct Arm {
  bool halted = false;
  uint64_t sources = 0;
  uint64_t leaks = 0;
  uint64_t max_depth = 0;
  std::vector<emu::LeakRecord> records;
};

Arm run_arm(const binary::Image& image) {
  binary::Memory mem;
  binary::load(image, mem);
  const std::vector<uint8_t> req = workloads::build_leak_request(kRespLen);
  for (size_t i = 0; i < req.size(); ++i) {
    mem.write8(workloads::kServerRequestBase + static_cast<uint32_t>(i),
               req[i]);
  }
  emu::Emulator emulator(image, mem);
  emulator.set_taint_tracking(true);
  uint64_t steps = 0;
  while (steps < 2'000'000 && emulator.step()) {
    ++steps;
    if (emulator.halted()) break;
  }
  Arm a;
  a.halted = emulator.halted();
  a.sources = emulator.taint_stats().sources;
  a.leaks = emulator.taint_stats().leaks;
  a.max_depth = emulator.taint_stats().max_depth;
  a.records = emulator.leaks();
  return a;
}

}  // namespace

int main(int argc, char** argv) {
  const char* path = argc > 1 ? argv[1] : "BENCH_leaks.json";
  const auto start = Clock::now();
  const binary::Image original = workloads::make_leaky_server();

  // -- arm A: native layout must stay silent -------------------------------
  const Arm native = run_arm(original);
  std::printf("leaks: native  %llu source(s), %llu leak(s)\n",
              static_cast<unsigned long long>(native.sources),
              static_cast<unsigned long long>(native.leaks));
  if (!native.halted || native.leaks != 0) {
    std::fprintf(stderr, "leaks: tracker fired on the native layout\n");
    return 1;
  }

  // -- arm B: randomized siblings must detect with provenance --------------
  struct Trial {
    uint64_t seed = 0;
    Arm arm;
  };
  std::vector<Trial> trials;
  for (uint32_t t = 0; t < kTrials; ++t) {
    rewriter::RandomizeOptions opts;
    opts.seed = kSeed + t;
    const rewriter::RandomizeResult rr = rewriter::randomize(original, opts);
    Trial tr;
    tr.seed = opts.seed;
    tr.arm = run_arm(rr.vcfr);
    std::printf("leaks: vcfr seed %llu: %llu leak(s), max depth %llu\n",
                static_cast<unsigned long long>(tr.seed),
                static_cast<unsigned long long>(tr.arm.leaks),
                static_cast<unsigned long long>(tr.arm.max_depth));
    bool ok = tr.arm.halted && tr.arm.leaks > 0 && !tr.arm.records.empty();
    for (const emu::LeakRecord& l : tr.arm.records) {
      if (l.origin != emu::TaintOrigin::kRetPush) ok = false;
      if (l.sink != emu::LeakSink::kOut) ok = false;
    }
    if (!ok) {
      std::fprintf(stderr,
                   "leaks: seed %llu did not detect the planted leak with "
                   "ret_push/out provenance\n",
                   static_cast<unsigned long long>(tr.seed));
      return 1;
    }
    trials.push_back(std::move(tr));
  }

  // -- arm C: --rerand-on-leak must re-key the leaking tenant --------------
  serve::ServeConfig sc;
  sc.tenants = 2;
  sc.cores = 1;
  sc.duration = 60'000;
  sc.model = serve::ArrivalModel::kOpen;
  sc.dist = serve::Distribution::kFixed;
  sc.mean_interarrival = 4'000;
  sc.workloads = {"leaky"};
  sc.seed = kSeed;
  sc.taint = true;
  sc.rerandomize.on_leak = true;
  const serve::ServeReport sr = serve::run_serve(sc);
  std::printf("leaks: serve   %llu leak(s), %llu re-rand(s), %u down\n",
              static_cast<unsigned long long>(sr.leaks),
              static_cast<unsigned long long>(sr.leak_rerands),
              sr.tenants_down);
  if (sr.leaks == 0 || sr.leak_rerands == 0 || sr.tenants_down != 0) {
    std::fprintf(stderr,
                 "leaks: --rerand-on-leak did not re-key the leaking tenant "
                 "cleanly\n");
    return 1;
  }

  const double wall_ms =
      std::chrono::duration<double, std::milli>(Clock::now() - start).count();

  telemetry::JsonWriter w;
  w.begin_object(telemetry::JsonWriter::Style::kPretty);
  w.key("bench").value("leaks");
  w.key("simulated").begin_object();
  w.key("config").begin_object();
  w.key("seed").value(kSeed);
  w.key("trials").value(uint64_t{kTrials});
  w.key("request_resp_len").value(uint64_t{kRespLen});
  w.end_object();
  w.key("native").begin_object();
  w.key("halted").value(native.halted);
  w.key("taint_sources").value(native.sources);
  w.key("leaks").value(native.leaks);
  w.key("silent").value(true);
  w.end_object();
  w.key("vcfr").begin_array(telemetry::JsonWriter::Style::kPretty);
  for (const Trial& tr : trials) {
    const Arm& a = tr.arm;
    w.begin_object(telemetry::JsonWriter::Style::kCompact);
    w.key("seed").value(tr.seed);
    w.key("halted").value(a.halted);
    w.key("taint_sources").value(a.sources);
    w.key("leaks").value(a.leaks);
    w.key("max_depth").value(a.max_depth);
    w.key("origin").value(
        std::string(emu::taint_origin_name(a.records[0].origin)));
    w.key("sink").value(std::string(emu::leak_sink_name(a.records[0].sink)));
    w.key("origin_rpc").value(a.records[0].origin_rpc);
    w.end_object();
  }
  w.end_array();
  w.key("rerand_on_leak").begin_object();
  w.key("leaks").value(sr.leaks);
  w.key("leak_rerands").value(sr.leak_rerands);
  w.key("tenants_down").value(uint64_t{sr.tenants_down});
  w.key("rekeyed").value(true);
  w.end_object();
  w.key("pass").value(true);
  w.end_object();
  w.key("host").begin_object();
  w.key("cpus").value(
      static_cast<uint64_t>(std::thread::hardware_concurrency()));
  w.key("wall_ms").raw_value(telemetry::json_double(wall_ms));
  w.end_object();
  w.end_object();

  std::ofstream out(path, std::ios::binary);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", path);
    return 1;
  }
  out << w.str() << "\n";
  std::printf("leaks: native-silent + vcfr-detect + re-key snapshot -> %s\n",
              path);
  return 0;
}
