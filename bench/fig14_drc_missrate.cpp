// Figure 14: DRC lookup-buffer miss rates at 512 and 64 entries.
// Paper: 4.5% average at 512 entries, 20.6% at 64; lbm and xalancbmk are
// worst. Lookup volume per kilo-instruction is also reported, since miss
// rate alone is noisy for apps that rarely consult the DRC.
#include "bench_util.hpp"

int main() {
  using namespace vcfr;
  bench::print_header(
      "Figure 14 — DRC miss rates (512 vs 64 entries)",
      "avg miss rate 4.5% at DRC-512 and 20.6% at DRC-64");
  std::printf("%-10s %12s %12s %18s\n", "app", "DRC512 (%)", "DRC64 (%)",
              "lookups/kinstr");

  double sum512 = 0, sum64 = 0;
  int n = 0;
  for (const auto& name : workloads::spec_names()) {
    const auto image = workloads::make(name, bench::scale());
    const auto rr = bench::randomized(image);
    const auto r512 = bench::run(rr.vcfr, 512);
    const auto r64 = bench::run(rr.vcfr, 64);
    const double m512 = 100.0 * r512.drc.miss_rate();
    const double m64 = 100.0 * r64.drc.miss_rate();
    const double lk = 1000.0 * static_cast<double>(r64.drc.lookups) /
                      std::max<uint64_t>(1, r64.instructions);
    std::printf("%-10s %12.1f %12.1f %18.2f\n", name.c_str(), m512, m64, lk);
    sum512 += m512;
    sum64 += m64;
    ++n;
  }
  std::printf("--------------------------------------------------------------\n");
  std::printf("measured averages: DRC-512 %.1f%%, DRC-64 %.1f%%\n\n",
              sum512 / n, sum64 / n);
  return 0;
}
