// Fleet runtime — time-slice length vs the full context-switch cost.
//
// The ablation_context_switch bench replays bare translation streams
// through one DRC; this one runs the real thing: four independently
// randomized workloads time-sliced by the os::Kernel across two cores
// with private IL1/DL1/DRC and a shared L2 + DRAM. Sweeping the slice
// length exposes the whole §IV-B switching bill at once — DRC and
// return-bitmap flush losses, cold-start misses, the fixed kernel
// overhead, and the shared-L2 contention that time-slicing cannot hide.
#include <cstdio>

#include "bench_util.hpp"
#include "os/kernel.hpp"

int main() {
  using namespace vcfr;
  bench::print_header(
      "Fleet — time-slice length vs scheduling + randomization overheads",
      "per-process tables make the DRC flush part of every context switch "
      "(SIV-B)");

  const char* mix[] = {"gcc", "xalan", "bzip2", "mcf"};
  std::printf("%10s %9s %9s %11s %11s %13s %10s\n", "slice", "fleet IPC",
              "switches", "DRC lost", "bitmap lost", "SL2 miss (%)",
              "avg slowdn");
  for (const uint64_t slice : {1000ull, 5000ull, 20000ull, 100000ull}) {
    os::KernelConfig kc;
    kc.cores = 2;
    kc.sched.slice_instructions = slice;
    os::Kernel kernel(kc);
    for (uint32_t i = 0; i < 4; ++i) {
      os::ProcessConfig pc;
      pc.workload = mix[i];
      pc.scale = bench::scale();
      pc.seed = bench::seed() + i;
      pc.max_instructions = bench::max_instr();
      kernel.spawn(pc);
    }
    const os::FleetReport r = kernel.run();
    double slowdown = 0.0;
    for (const auto& p : r.processes) slowdown += p.slowdown;
    slowdown /= static_cast<double>(r.processes.size());
    std::printf("%10llu %9.3f %9llu %11llu %11llu %13.2f %10.2f\n",
                static_cast<unsigned long long>(slice), r.fleet_ipc,
                static_cast<unsigned long long>(r.context_switches),
                static_cast<unsigned long long>(r.drc_entries_flushed),
                static_cast<unsigned long long>(r.bitmap_entries_flushed),
                100 * r.shared_l2.l2.miss_rate(), slowdown);
  }
  std::printf(
      "\nReading: short slices multiply flushes and cold DRC misses; past "
      "a few tens of\nthousands of instructions the switch cost amortizes "
      "and the residual slowdown is\nshared-L2/DRAM contention plus plain "
      "time multiplexing.\n\n");
  return 0;
}
