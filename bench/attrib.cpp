// Cycle-attribution benchmark snapshot: profiles the reference workload
// (gcc at bench scale, seed 7) natively and as its VCFR sibling, writing
// BENCH_attrib.json for CI to diff across commits.
//
// Usage: attrib [attrib.json]   (default BENCH_attrib.json)
//
// Two sections, matching the BENCH_hotpath.json pattern:
//   * "simulated" — deterministic: per-layout instruction/cycle counts,
//     the full cause-bucket breakdown, the conservation flag (buckets sum
//     exactly to the core's cycles), fold-back resolution, and the
//     VCFR/native overhead ratio. CI diffs this byte-for-byte.
//   * "host" — wall-clock of the two profiled runs. Informational only.
#include <chrono>
#include <cstdio>
#include <fstream>

#include "profile/profiler.hpp"
#include "rewriter/randomizer.hpp"
#include "sim/cpu.hpp"
#include "telemetry/json_writer.hpp"
#include "workloads/suite.hpp"

namespace {

using namespace vcfr;
using Clock = std::chrono::steady_clock;

/// One profiled layout's deterministic section.
void emit_layout(telemetry::JsonWriter& w, const char* key,
                 const profile::Profiler& prof, const sim::SimResult& r) {
  w.key(key).begin_object(telemetry::JsonWriter::Style::kPretty);
  w.key("instructions").value(r.instructions);
  w.key("cycles").value(r.cycles);
  w.key("conserved").value(prof.attributed_cycles() == r.cycles);
  w.key("resolved_fraction")
      .raw_value(telemetry::json_double(prof.resolved_fraction()));
  w.key("causes").begin_object();
  for (size_t c = 0; c < profile::kNumCauses; ++c) {
    const auto cause = static_cast<profile::Cause>(c);
    w.key(std::string(profile::cause_name(cause)))
        .value(prof.cause_cycles(cause));
  }
  w.end_object();
  w.end_object();
}

}  // namespace

int main(int argc, char** argv) {
  const char* path = argc > 1 ? argv[1] : "BENCH_attrib.json";

  const binary::Image original = workloads::make("gcc", 1);
  rewriter::RandomizeOptions ro;
  ro.seed = 7;
  const auto rr = rewriter::randomize(original, ro);

  sim::CpuConfig config;

  const auto start = Clock::now();
  profile::Profiler native_prof(original);
  const auto native =
      sim::simulate(original, 200'000'000, config, nullptr, &native_prof);
  profile::Profiler vcfr_prof(rr.vcfr);
  const auto vcfr =
      sim::simulate(rr.vcfr, 200'000'000, config, nullptr, &vcfr_prof);
  const double wall_ms =
      std::chrono::duration<double>(Clock::now() - start).count() * 1e3;

  const double overhead =
      native.cycles == 0 ? 0.0
                         : static_cast<double>(vcfr.cycles) /
                               static_cast<double>(native.cycles);

  telemetry::JsonWriter w;
  w.begin_object(telemetry::JsonWriter::Style::kPretty);
  w.key("bench").value("attrib");
  w.key("simulated").begin_object(telemetry::JsonWriter::Style::kPretty);
  w.key("config").begin_object();
  w.key("workload").value("gcc");
  w.key("scale").value(uint64_t{1});
  w.key("seed").value(uint64_t{7});
  w.end_object();
  emit_layout(w, "native", native_prof, native);
  emit_layout(w, "vcfr", vcfr_prof, vcfr);
  w.key("overhead").raw_value(telemetry::json_double(overhead));
  w.end_object();
  w.key("host").begin_object();
  w.key("wall_ms").raw_value(telemetry::json_double(wall_ms));
  w.end_object();
  w.end_object();

  std::ofstream out(path, std::ios::binary);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", path);
    return 1;
  }
  out << w.str() << "\n";
  std::printf("attrib: native %llu cycles, vcfr %llu cycles (%.3fx) -> %s\n",
              static_cast<unsigned long long>(native.cycles),
              static_cast<unsigned long long>(vcfr.cycles), overhead, path);
  return 0;
}
