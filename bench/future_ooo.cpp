// Future-work study (§IX): VCFR on an out-of-order superscalar core —
// "currently, the proposed idea is limited as single issue, in-order
// processor ... in the near future, we will explore and extend the idea
// to the out-of-order superscalar processor."
//
// Runs the full suite on the 4-wide, 64-entry-ROB OOO model and reports
// the VCFR overhead next to the paper's in-order numbers — answering the
// question §IX leaves open.
#include "bench_util.hpp"
#include "sim/ooo.hpp"

int main() {
  using namespace vcfr;
  bench::print_header(
      "Future work (SIX) — VCFR on a 4-wide out-of-order core",
      "does the 2% overhead story survive out-of-order execution?");
  std::printf("%-10s %12s %12s %14s %16s\n", "app", "base IPC", "VCFR IPC",
              "overhead (%)", "in-order ovh (%)");

  double sum_ooo = 0, sum_io = 0;
  int n = 0;
  for (const auto& name : workloads::spec_names()) {
    const auto image = workloads::make(name, bench::scale());
    const auto rr = bench::randomized(image);

    sim::OooConfig ooo;
    ooo.drc.entries = 128;
    const auto base = sim::simulate_ooo(image, bench::max_instr(), ooo);
    const auto vcfr = sim::simulate_ooo(rr.vcfr, bench::max_instr(), ooo);
    const double ovh = 100.0 * (1.0 - vcfr.ipc() / base.ipc());

    const auto io_base = bench::run(image, 128);
    const auto io_vcfr = bench::run(rr.vcfr, 128);
    const double io_ovh = 100.0 * (1.0 - io_vcfr.ipc() / io_base.ipc());

    std::printf("%-10s %12.3f %12.3f %14.2f %16.2f\n", name.c_str(),
                base.ipc(), vcfr.ipc(), ovh, io_ovh);
    sum_ooo += ovh;
    sum_io += io_ovh;
    ++n;
  }
  std::printf("--------------------------------------------------------------\n");
  std::printf("measured average overhead: OOO %.2f%%, in-order %.2f%%\n\n",
              sum_ooo / n, sum_io / n);
  return 0;
}
