// Table I: qualitative comparison of no-randomization, naive hardware ILR,
// and VCFR — here backed by *measured* values from the simulator instead
// of checkmarks: control-flow diversity (placement displacement), fetch
// locality (IL1 miss rate), and prefetch effectiveness.
#include "bench_util.hpp"

int main() {
  using namespace vcfr;
  bench::print_header(
      "Table I — no randomization vs naive ILR vs VCFR (measured)",
      "VCFR keeps locality & prefetch effectiveness while diversifying");

  // One representative app with a significant footprint.
  const auto image = workloads::make("gcc", bench::scale());
  const auto rr = bench::randomized(image);
  const auto base = bench::run(image, 128);
  const auto naive = bench::run(rr.naive, 128);
  const auto vcfr = bench::run(rr.vcfr, 128);

  const double diversity =
      100.0 * static_cast<double>(rr.placement.size()) /
      std::max<size_t>(1, rr.analysis.stats.instructions);

  auto row = [](const char* prop, const char* a, const char* b,
                const char* c) {
    std::printf("%-28s %-16s %-18s %-16s\n", prop, a, b, c);
  };
  char naive_miss[32], base_miss[32], vcfr_miss[32];
  std::snprintf(base_miss, sizeof base_miss, "%.2f%%",
                100 * base.il1.miss_rate());
  std::snprintf(naive_miss, sizeof naive_miss, "%.2f%%",
                100 * naive.il1.miss_rate());
  std::snprintf(vcfr_miss, sizeof vcfr_miss, "%.2f%%",
                100 * vcfr.il1.miss_rate());
  char base_pf[32], naive_pf[32], vcfr_pf[32];
  std::snprintf(base_pf, sizeof base_pf, "%.0f%% useful",
                100 * (1 - base.il1.prefetch_useless_rate()));
  std::snprintf(naive_pf, sizeof naive_pf, "%.0f%% useful",
                100 * (1 - naive.il1.prefetch_useless_rate()));
  std::snprintf(vcfr_pf, sizeof vcfr_pf, "%.0f%% useful",
                100 * (1 - vcfr.il1.prefetch_useless_rate()));
  char base_ipc[32], naive_ipc[32], vcfr_ipc[32], div_str[32];
  std::snprintf(base_ipc, sizeof base_ipc, "%.3f", base.ipc());
  std::snprintf(naive_ipc, sizeof naive_ipc, "%.3f", naive.ipc());
  std::snprintf(vcfr_ipc, sizeof vcfr_ipc, "%.3f", vcfr.ipc());
  std::snprintf(div_str, sizeof div_str, "%.1f%% relocated", diversity);

  std::printf("%-28s %-16s %-18s %-16s\n", "property (app: gcc)",
              "no-random", "naive ILR", "VCFR");
  std::printf("--------------------------------------------------------------\n");
  row("control-flow diversity", "none", div_str, div_str);
  row("instruction locality (IL1)", base_miss, naive_miss, vcfr_miss);
  row("prefetch effectiveness", base_pf, naive_pf, vcfr_pf);
  row("IPC", base_ipc, naive_ipc, vcfr_ipc);
  std::printf("\n");
  return 0;
}
