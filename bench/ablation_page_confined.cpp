// Ablation: page-confined randomization (§IV-D: "control flow
// randomization can be confined within the same page, which will further
// reduce its impact to iTLB").
//
// Compares the naive hardware ILR under full-spread vs page-confined
// placement: iTLB behaviour, IL1 behaviour, IPC, and the entropy cost
// (bits of location uncertainty per instruction).
#include <cmath>

#include "bench_util.hpp"

int main() {
  using namespace vcfr;
  bench::print_header(
      "Ablation — full-spread vs page-confined randomization (naive ILR)",
      "page confinement removes the iTLB impact at an entropy cost");
  std::printf("%-10s %12s %12s %12s %12s %14s\n", "app", "iTLB mr(fs)",
              "iTLB mr(pc)", "IPC(fs)", "IPC(pc)", "entropy fs/pc");

  for (const auto& name : workloads::spec_names()) {
    const auto image = workloads::make(name, bench::scale());

    rewriter::RandomizeOptions fs;
    fs.seed = bench::seed();
    const auto rr_fs = rewriter::randomize(image, fs);

    rewriter::RandomizeOptions pc = fs;
    pc.placement = rewriter::PlacementPolicy::kPageConfined;
    const auto rr_pc = rewriter::randomize(image, pc);

    const auto r_fs = bench::run(rr_fs.naive, 128);
    const auto r_pc = bench::run(rr_pc.naive, 128);

    // Location entropy: full spread draws from the whole region (slot *
    // jitter); page-confined from one 4 KiB page.
    const double bits_fs =
        std::log2(static_cast<double>(rr_fs.naive.rand_size));
    const double bits_pc = std::log2(4096.0);

    std::printf("%-10s %11.2f%% %11.2f%% %12.3f %12.3f %8.1f/%4.1f\n",
                name.c_str(), 100 * r_fs.itlb.miss_rate(),
                100 * r_pc.itlb.miss_rate(), r_fs.ipc(), r_pc.ipc(), bits_fs,
                bits_pc);
  }
  std::printf("\n");
  return 0;
}
