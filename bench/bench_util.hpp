// Shared helpers for the paper-reproduction benchmark binaries.
//
// Environment knobs:
//   VCFR_BENCH_SCALE      workload scale (default 1; 0 = smoke, 2 = long)
//   VCFR_BENCH_MAX_INSTR  dynamic instruction cap per run (default 5e6)
//   VCFR_BENCH_SEED       randomization seed (default 2015, the paper year)
#pragma once

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "rewriter/randomizer.hpp"
#include "sim/cpu.hpp"
#include "workloads/suite.hpp"

namespace vcfr::bench {

inline int scale() {
  const char* s = std::getenv("VCFR_BENCH_SCALE");
  return s ? std::atoi(s) : 1;
}

inline uint64_t max_instr() {
  const char* s = std::getenv("VCFR_BENCH_MAX_INSTR");
  return s ? std::strtoull(s, nullptr, 10) : 5'000'000ull;
}

inline uint64_t seed() {
  const char* s = std::getenv("VCFR_BENCH_SEED");
  return s ? std::strtoull(s, nullptr, 10) : 2015ull;
}

inline sim::CpuConfig cpu_config(uint32_t drc_entries) {
  sim::CpuConfig config;
  config.drc.entries = drc_entries;
  return config;
}

/// Randomizes a workload with the bench seed.
inline rewriter::RandomizeResult randomized(const binary::Image& image) {
  rewriter::RandomizeOptions opts;
  opts.seed = seed();
  return rewriter::randomize(image, opts);
}

inline sim::SimResult run(const binary::Image& image, uint32_t drc_entries) {
  return sim::simulate(image, max_instr(), cpu_config(drc_entries));
}

/// Standard header naming the reproduced exhibit.
inline void print_header(const char* exhibit, const char* paper_claim) {
  std::printf("==============================================================\n");
  std::printf("%s\n", exhibit);
  std::printf("paper: %s\n", paper_claim);
  std::printf("==============================================================\n");
}

inline void print_footer(double measured_avg, const char* what) {
  std::printf("--------------------------------------------------------------\n");
  std::printf("measured average %s: %.3f\n\n", what, measured_avg);
}

}  // namespace vcfr::bench
