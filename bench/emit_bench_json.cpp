// Machine-readable benchmark emitter: runs the reference fleet
// configuration and writes BENCH_fleet.json — the first entry of a
// BENCH_*.json family that CI and regression tooling can diff across
// commits (the run is deterministic, so the bytes are too).
//
// Usage: emit_bench_json [out.json]     (default BENCH_fleet.json)
//
// The configuration is pinned (not bench_util env knobs): the file is
// committed at the repo root and must mean the same thing on every
// machine.
#include <cstdio>
#include <fstream>

#include "os/kernel.hpp"
#include "telemetry/json_writer.hpp"

int main(int argc, char** argv) {
  using namespace vcfr;
  const char* out_path = argc > 1 ? argv[1] : "BENCH_fleet.json";

  // The reference fleet: the CI smoke configuration (4 workloads on 2
  // cores, short slices, smoke scale, seed 7).
  os::KernelConfig kc;
  kc.cores = 2;
  kc.sched.slice_instructions = 2000;
  os::Kernel kernel(kc);
  const char* mix[] = {"bzip2", "gcc", "mcf", "hmmer"};
  for (uint32_t i = 0; i < 4; ++i) {
    os::ProcessConfig pc;
    pc.workload = mix[i];
    pc.scale = 0;
    pc.seed = 7ull ^ (0x9e3779b97f4a7c15ull * (i + 1));
    kernel.spawn(pc);
  }
  const os::FleetReport r = kernel.run();

  uint64_t drc_lookups = 0, drc_misses = 0;
  for (const auto& c : r.cores) {
    drc_lookups += c.drc.lookups;
    drc_misses += c.drc.misses;
  }
  const double drc_miss_rate =
      drc_lookups == 0
          ? 0.0
          : static_cast<double>(drc_misses) / static_cast<double>(drc_lookups);

  telemetry::JsonWriter w;
  w.begin_object(telemetry::JsonWriter::Style::kPretty);
  w.key("bench").value("fleet");
  w.key("config").begin_object();
  w.key("procs").value(uint64_t{4});
  w.key("cores").value(uint64_t{2});
  w.key("slice").value(uint64_t{2000});
  w.key("scale").value(uint64_t{0});
  w.key("seed").value(uint64_t{7});
  w.end_object();
  w.key("fleet_ipc").raw_value(telemetry::json_double(r.fleet_ipc));
  w.key("drc_miss_rate").raw_value(telemetry::json_double(drc_miss_rate));
  w.key("fleet_cycles").value(r.fleet_cycles);
  w.key("fleet_instructions").value(r.fleet_instructions);
  w.key("drc_lookups").value(drc_lookups);
  w.key("drc_misses").value(drc_misses);
  w.end_object();

  std::ofstream out(out_path, std::ios::binary);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", out_path);
    return 1;
  }
  out << w.str() << "\n";
  std::printf("fleet ipc %.6g, DRC miss rate %.6g -> %s\n", r.fleet_ipc,
              drc_miss_rate, out_path);
  return 0;
}
