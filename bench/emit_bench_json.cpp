// Machine-readable benchmark emitter: runs the reference fleet
// configuration and the hot-path microbenchmark, writing the BENCH_*.json
// family that CI and regression tooling diff across commits.
//
// Usage: emit_bench_json [fleet.json [hotpath.json]]
//        (defaults BENCH_fleet.json and BENCH_hotpath.json)
//
// BENCH_fleet.json is fully deterministic and diffed byte-for-byte.
// BENCH_hotpath.json has two sections:
//   * "simulated" — deterministic (instruction counts, decode-cache
//     hit/miss/invalidation counters, cache-on/off equivalence, pool
//     dispatch counts); CI diffs it with the host section stripped;
//   * "host" — wall-clock throughput (MIPS, ns/instr, cache-off speedup).
//     Informational only: it depends on the machine and build type.
//
// The configurations are pinned (not bench_util env knobs): the files are
// committed at the repo root and must mean the same thing on every
// machine.
#include <chrono>
#include <cstdio>
#include <fstream>
#include <vector>

#include "emu/emulator.hpp"
#include "os/kernel.hpp"
#include "rewriter/randomizer.hpp"
#include "telemetry/json_writer.hpp"
#include "workloads/suite.hpp"

namespace {

using namespace vcfr;
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

/// One emulator run of `image` with the decode cache toggled; returns the
/// result and (out-params) the cache counters of this run.
emu::RunResult run_once(const binary::Image& image, bool cache_on,
                        emu::DecodeCacheStats* cache_stats = nullptr) {
  binary::Memory mem;
  binary::load(image, mem);
  emu::Emulator emulator(image, mem);
  emulator.set_decode_cache(cache_on);
  emu::RunResult result = emulator.run();
  if (cache_stats != nullptr) *cache_stats = emulator.decode_cache_stats();
  return result;
}

bool results_match(const emu::RunResult& a, const emu::RunResult& b) {
  return a.halted == b.halted && a.error == b.error && a.output == b.output &&
         a.mem_checksum == b.mem_checksum &&
         a.stats.instructions == b.stats.instructions &&
         a.final_state.pc == b.final_state.pc &&
         a.final_state.regs == b.final_state.regs;
}

/// Wall-clock of `reps` fresh load+run passes; returns MIPS.
double measure_mips(const binary::Image& image, bool cache_on, int reps,
                    uint64_t instr_per_run) {
  const auto start = Clock::now();
  for (int i = 0; i < reps; ++i) run_once(image, cache_on);
  const double secs = seconds_since(start);
  return secs <= 0.0 ? 0.0
                     : static_cast<double>(instr_per_run) * reps / secs / 1e6;
}

}  // namespace

int main(int argc, char** argv) {
  const char* fleet_path = argc > 1 ? argv[1] : "BENCH_fleet.json";
  const char* hotpath_path = argc > 2 ? argv[2] : "BENCH_hotpath.json";

  // ---- reference fleet: the CI smoke configuration (4 workloads on 2
  // cores, short slices, smoke scale, seed 7) ------------------------------
  os::KernelConfig kc;
  kc.cores = 2;
  kc.sched.slice_instructions = 2000;
  os::Kernel kernel(kc);
  const char* mix[] = {"bzip2", "gcc", "mcf", "hmmer"};
  for (uint32_t i = 0; i < 4; ++i) {
    os::ProcessConfig pc;
    pc.workload = mix[i];
    pc.scale = 0;
    pc.seed = 7ull ^ (0x9e3779b97f4a7c15ull * (i + 1));
    kernel.spawn(pc);
  }
  const auto fleet_start = Clock::now();
  const os::FleetReport r = kernel.run();
  const double fleet_wall_ms = seconds_since(fleet_start) * 1e3;

  uint64_t drc_lookups = 0, drc_misses = 0;
  for (const auto& c : r.cores) {
    drc_lookups += c.drc.lookups;
    drc_misses += c.drc.misses;
  }
  const double drc_miss_rate =
      drc_lookups == 0
          ? 0.0
          : static_cast<double>(drc_misses) / static_cast<double>(drc_lookups);

  telemetry::JsonWriter w;
  w.begin_object(telemetry::JsonWriter::Style::kPretty);
  w.key("bench").value("fleet");
  w.key("config").begin_object();
  w.key("procs").value(uint64_t{4});
  w.key("cores").value(uint64_t{2});
  w.key("slice").value(uint64_t{2000});
  w.key("scale").value(uint64_t{0});
  w.key("seed").value(uint64_t{7});
  w.end_object();
  w.key("fleet_ipc").raw_value(telemetry::json_double(r.fleet_ipc));
  w.key("drc_miss_rate").raw_value(telemetry::json_double(drc_miss_rate));
  w.key("fleet_cycles").value(r.fleet_cycles);
  w.key("fleet_instructions").value(r.fleet_instructions);
  w.key("drc_lookups").value(drc_lookups);
  w.key("drc_misses").value(drc_misses);
  w.end_object();

  {
    std::ofstream out(fleet_path, std::ios::binary);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", fleet_path);
      return 1;
    }
    out << w.str() << "\n";
  }
  std::printf("fleet ipc %.6g, DRC miss rate %.6g -> %s\n", r.fleet_ipc,
              drc_miss_rate, fleet_path);

  // ---- hot-path microbenchmark: the VCFR image of gcc at bench scale
  // (the suite's largest code footprint — the decode cache's steady state
  // dominates and per-run load cost is amortized over ~500k instructions) --
  const binary::Image original = workloads::make("gcc", 1);
  rewriter::RandomizeOptions ro;
  ro.seed = 7;
  const binary::Image vcfr_image = rewriter::randomize(original, ro).vcfr;

  emu::DecodeCacheStats cache_stats;
  const emu::RunResult on = run_once(vcfr_image, true, &cache_stats);
  const emu::RunResult off = run_once(vcfr_image, false);
  const bool match = results_match(on, off);
  const uint64_t instr = on.stats.instructions;

  // Size the timing loops to ~40M instructions per variant.
  const int reps =
      instr == 0 ? 1 : static_cast<int>(40'000'000 / instr) + 1;
  const double mips_on = measure_mips(vcfr_image, true, reps, instr);
  const double mips_off = measure_mips(vcfr_image, false, reps, instr);

  // ---- worker-pool sweep: the same 4-core fleet under 1/2/4 pool workers.
  // The simulated results MUST be bit-identical across the sweep (worker
  // count is host parallelism only) — checked here, and the per-point
  // rounds/cycles land in the deterministic section so CI re-checks the
  // diff. Wall clocks go under "host".
  struct SweepPoint {
    uint32_t workers_requested = 0;
    uint32_t pool_workers = 0;
    uint64_t pool_rounds = 0;
    uint64_t rounds = 0;
    uint64_t fleet_cycles = 0;
    uint64_t fleet_instructions = 0;
    double wall_ms = 0.0;
  };
  std::vector<SweepPoint> sweep;
  for (const uint32_t workers : {1u, 2u, 4u}) {
    os::KernelConfig sc;
    sc.cores = 4;
    sc.sched.slice_instructions = 2000;
    sc.measure_isolated = false;
    sc.pool_workers = workers;
    os::Kernel sk(sc);
    for (uint32_t i = 0; i < 8; ++i) {
      os::ProcessConfig pc;
      pc.workload = mix[i % 4];
      pc.scale = 0;
      pc.seed = 7ull ^ (0x9e3779b97f4a7c15ull * (i + 1));
      sk.spawn(pc);
    }
    const auto start = Clock::now();
    const os::FleetReport sr = sk.run();
    SweepPoint pt;
    pt.workers_requested = workers;
    pt.pool_workers = sk.pool_workers();
    pt.pool_rounds = sk.pool_rounds();
    pt.rounds = sr.rounds;
    pt.fleet_cycles = sr.fleet_cycles;
    pt.fleet_instructions = sr.fleet_instructions;
    pt.wall_ms = seconds_since(start) * 1e3;
    sweep.push_back(pt);
  }
  for (const SweepPoint& pt : sweep) {
    if (pt.fleet_cycles != sweep[0].fleet_cycles ||
        pt.fleet_instructions != sweep[0].fleet_instructions ||
        pt.rounds != sweep[0].rounds) {
      std::fprintf(stderr,
                   "pool sweep diverged at %u workers: simulated results "
                   "must not depend on host parallelism\n",
                   pt.workers_requested);
      return 1;
    }
  }

  telemetry::JsonWriter h;
  h.begin_object(telemetry::JsonWriter::Style::kPretty);
  h.key("bench").value("hotpath");
  h.key("simulated").begin_object();
  h.key("emu").begin_object();
  h.key("workload").value("gcc");
  h.key("scale").value(uint64_t{1});
  h.key("layout").value("vcfr");
  h.key("seed").value(uint64_t{7});
  h.key("instructions").value(instr);
  h.key("decode_cache_hits").value(cache_stats.hits);
  h.key("decode_cache_misses").value(cache_stats.misses);
  h.key("decode_cache_invalidations").value(cache_stats.invalidations);
  h.key("cache_off_match").value(match);
  h.end_object();
  h.key("fleet").begin_object();
  h.key("rounds").value(r.rounds);
  h.key("pool_rounds").value(kernel.pool_rounds());
  h.key("pool_workers").value(uint64_t{kernel.pool_workers()});
  h.end_object();
  h.end_object();
  h.key("pool_sweep").begin_object();
  h.key("config").begin_object();
  h.key("procs").value(uint64_t{8});
  h.key("cores").value(uint64_t{4});
  h.key("slice").value(uint64_t{2000});
  h.key("scale").value(uint64_t{0});
  h.key("seed").value(uint64_t{7});
  h.end_object();
  h.key("points").begin_array();
  for (const SweepPoint& pt : sweep) {
    h.begin_object();
    h.key("workers_requested").value(uint64_t{pt.workers_requested});
    h.key("pool_workers").value(uint64_t{pt.pool_workers});
    h.key("pool_rounds").value(pt.pool_rounds);
    h.key("rounds").value(pt.rounds);
    h.key("fleet_cycles").value(pt.fleet_cycles);
    h.key("fleet_instructions").value(pt.fleet_instructions);
    h.end_object();
  }
  h.end_array();
  h.key("identical_across_workers").value(true);
  h.end_object();
  h.key("host").begin_object();
  h.key("emu").begin_object();
  h.key("reps").value(static_cast<uint64_t>(reps));
  h.key("mips_cache_on").raw_value(telemetry::json_double(mips_on));
  h.key("mips_cache_off").raw_value(telemetry::json_double(mips_off));
  h.key("ns_per_instr_cache_on")
      .raw_value(telemetry::json_double(mips_on <= 0 ? 0 : 1e3 / mips_on));
  h.key("ns_per_instr_cache_off")
      .raw_value(telemetry::json_double(mips_off <= 0 ? 0 : 1e3 / mips_off));
  h.key("speedup").raw_value(
      telemetry::json_double(mips_off <= 0 ? 0 : mips_on / mips_off));
  h.end_object();
  h.key("fleet").begin_object();
  h.key("wall_ms").raw_value(telemetry::json_double(fleet_wall_ms));
  h.end_object();
  h.key("pool_sweep").begin_array();
  for (const SweepPoint& pt : sweep) {
    h.begin_object();
    h.key("workers_requested").value(uint64_t{pt.workers_requested});
    h.key("wall_ms").raw_value(telemetry::json_double(pt.wall_ms));
    h.end_object();
  }
  h.end_array();
  h.end_object();
  h.end_object();

  std::ofstream out(hotpath_path, std::ios::binary);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", hotpath_path);
    return 1;
  }
  out << h.str() << "\n";
  std::printf(
      "hotpath: %.1f MIPS cached / %.1f MIPS uncached (%.2fx), match=%d -> "
      "%s\n",
      mips_on, mips_off, mips_off <= 0 ? 0.0 : mips_on / mips_off, match,
      hotpath_path);
  return 0;
}
