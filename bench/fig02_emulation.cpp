// Figure 2: performance decrement of emulator-based ILR versus native
// execution. The paper reports slowdowns in the hundreds (up to ~1500x for
// "python"); the emulator cost model is documented in
// src/emu/ilr_emulator.hpp.
#include "bench_util.hpp"
#include "emu/ilr_emulator.hpp"

int main() {
  using namespace vcfr;
  bench::print_header(
      "Figure 2 — ILR on an instruction-level emulator vs native",
      "execution time increases by over a hundred times (up to ~1500x)");
  std::printf("%-10s %14s %16s %14s\n", "app", "native CPI",
              "emu cyc/instr", "slowdown (x)");

  double sum = 0;
  int n = 0;
  for (const auto& name : workloads::fig2_names()) {
    const auto image = workloads::make(name, bench::scale());
    const auto base = bench::run(image, 128);
    const auto rr = bench::randomized(image);
    emu::RunLimits limits;
    limits.max_instructions = bench::max_instr();
    const auto emu_result =
        emu::emulate_ilr(rr.naive, base.cpi(), limits);
    std::printf("%-10s %14.3f %16.1f %14.1f\n", name.c_str(), base.cpi(),
                emu_result.host_cycles_per_instr,
                emu_result.slowdown_vs_native);
    sum += emu_result.slowdown_vs_native;
    ++n;
  }
  bench::print_footer(sum / n, "slowdown (x)");
  return 0;
}
