// Figure 12: VCFR (128-entry DRC) speedup over the straightforward ILR
// implementation. Paper: average 1.63x; namd, h264ref, mcf, and xalancbmk
// exceed 2x.
#include "bench_util.hpp"

int main() {
  using namespace vcfr;
  bench::print_header(
      "Figure 12 — VCFR speedup over straightforward ILR (DRC 128)",
      "average speedup 1.63x; namd/h264ref/mcf/xalan above 2x");
  std::printf("%-10s %12s %12s %12s\n", "app", "naive IPC", "VCFR IPC",
              "speedup");

  double sum = 0;
  int n = 0;
  for (const auto& name : workloads::spec_names()) {
    const auto image = workloads::make(name, bench::scale());
    const auto rr = bench::randomized(image);
    const auto naive = bench::run(rr.naive, 128);
    const auto vcfr = bench::run(rr.vcfr, 128);
    const double speedup = vcfr.ipc() / std::max(1e-9, naive.ipc());
    std::printf("%-10s %12.3f %12.3f %12.2f\n", name.c_str(), naive.ipc(),
                vcfr.ipc(), speedup);
    sum += speedup;
    ++n;
  }
  bench::print_footer(sum / n, "speedup (x)");
  return 0;
}
