// Component microbenchmarks (google-benchmark): throughput of the pieces
// the reproduction is built from — DRC lookups, cache accesses, the
// assembler, the rewriter, the gadget scanner, and end-to-end simulation.
#include <benchmark/benchmark.h>

#include "cache/cache.hpp"
#include "core/drc.hpp"
#include "emu/emulator.hpp"
#include "gadget/scanner.hpp"
#include "isa/assembler.hpp"
#include "rewriter/randomizer.hpp"
#include "emu/ilr_emulator.hpp"
#include "sim/cpu.hpp"
#include "sim/ooo.hpp"
#include "workloads/suite.hpp"

namespace {

using namespace vcfr;

void BM_DrcLookup(benchmark::State& state) {
  core::Drc drc({.entries = static_cast<uint32_t>(state.range(0)),
                 .assoc = 1,
                 .hit_latency = 1});
  for (uint32_t i = 0; i < 1024; ++i) {
    drc.insert(0x40000000 + i * 64, true, {0x1000 + i, true});
  }
  uint32_t key = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(drc.lookup(0x40000000 + (key++ % 1024) * 64, true));
  }
}
BENCHMARK(BM_DrcLookup)->Arg(64)->Arg(128)->Arg(512);

void BM_CacheAccess(benchmark::State& state) {
  cache::Cache c({.name = "bench",
                  .size_bytes = 32 * 1024,
                  .assoc = 2,
                  .line_bytes = 64,
                  .hit_latency = 2});
  uint32_t addr = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(c.access(addr, false));
    addr = (addr + 4) % (64 * 1024);
  }
}
BENCHMARK(BM_CacheAccess);

void BM_Assembler(benchmark::State& state) {
  const auto src = [] {
    std::string s = ".entry main\nmain:\n";
    for (int i = 0; i < 500; ++i) s += "  add r1, " + std::to_string(i) + "\n";
    s += "  halt\n";
    return s;
  }();
  for (auto _ : state) {
    benchmark::DoNotOptimize(isa::assemble(src));
  }
}
BENCHMARK(BM_Assembler);

void BM_Randomize(benchmark::State& state) {
  const auto image = workloads::make("gcc", 0);
  rewriter::RandomizeOptions opts;
  for (auto _ : state) {
    opts.seed++;
    benchmark::DoNotOptimize(rewriter::randomize(image, opts));
  }
}
BENCHMARK(BM_Randomize);

void BM_GadgetScan(benchmark::State& state) {
  const auto image = workloads::make("xalan", 0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(gadget::scan(image));
  }
}
BENCHMARK(BM_GadgetScan);

void BM_EmulatorThroughput(benchmark::State& state) {
  const auto image = workloads::make("hmmer", 0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(emu::run_image(image));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(emu::run_image(image).stats.instructions));
}
BENCHMARK(BM_EmulatorThroughput);

void BM_CycleSimThroughput(benchmark::State& state) {
  const auto image = workloads::make("hmmer", 0);
  sim::CpuConfig cfg;
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim::simulate(image, 10'000'000, cfg));
  }
  state.SetItemsProcessed(
      state.iterations() *
      static_cast<int64_t>(sim::simulate(image, 10'000'000, cfg).instructions));
}
BENCHMARK(BM_CycleSimThroughput);

void BM_DramRead(benchmark::State& state) {
  dram::DramConfig cfg;
  cfg.t_refi = 0;
  dram::Dram d(cfg);
  uint64_t now = 0;
  uint32_t addr = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(d.read(addr, now));
    addr += state.range(0);  // stride selects row-hit vs row-miss mix
    now += 20;
  }
}
BENCHMARK(BM_DramRead)->Arg(64)->Arg(8192);

void BM_TlbAccess(benchmark::State& state) {
  cache::Tlb tlb({.entries = 64, .page_bits = 12, .miss_penalty = 20});
  uint32_t addr = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(tlb.access(addr));
    addr += 4096 * static_cast<uint32_t>(state.range(0));
  }
}
BENCHMARK(BM_TlbAccess)->Arg(0)->Arg(3);

void BM_IlrEmulatorModel(benchmark::State& state) {
  const auto image = workloads::make("hmmer", 0);
  const auto rr = rewriter::randomize(image, {});
  emu::RunLimits limits;
  limits.max_instructions = 50000;
  for (auto _ : state) {
    benchmark::DoNotOptimize(emu::emulate_ilr(rr.naive, 1.0, limits));
  }
}
BENCHMARK(BM_IlrEmulatorModel);

void BM_OooSimThroughput(benchmark::State& state) {
  const auto image = workloads::make("hmmer", 0);
  sim::OooConfig cfg;
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim::simulate_ooo(image, 10'000'000, cfg));
  }
  state.SetItemsProcessed(
      state.iterations() *
      static_cast<int64_t>(sim::simulate_ooo(image, 10'000'000, cfg).instructions));
}
BENCHMARK(BM_OooSimThroughput);

}  // namespace

BENCHMARK_MAIN();
