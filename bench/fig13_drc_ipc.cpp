// Figure 13: VCFR IPC normalized to the no-randomization baseline for
// DRC sizes 512 / 128 / 64. Paper: 98.9% of baseline at 512 entries;
// average slowdown no more than 2.1% even at 64 entries.
#include "bench_util.hpp"

int main() {
  using namespace vcfr;
  bench::print_header(
      "Figure 13 — VCFR normalized IPC for DRC sizes 512/128/64",
      "avg 98.9% of baseline at DRC-512; <=2.1% slowdown at DRC-64");
  std::printf("%-10s %12s %12s %12s %12s\n", "app", "base IPC", "DRC 512",
              "DRC 128", "DRC 64");

  double sum512 = 0, sum128 = 0, sum64 = 0;
  int n = 0;
  for (const auto& name : workloads::spec_names()) {
    const auto image = workloads::make(name, bench::scale());
    const auto base = bench::run(image, 128);
    const auto rr = bench::randomized(image);
    const double n512 =
        bench::run(rr.vcfr, 512).ipc() / std::max(1e-9, base.ipc());
    const double n128 =
        bench::run(rr.vcfr, 128).ipc() / std::max(1e-9, base.ipc());
    const double n64 =
        bench::run(rr.vcfr, 64).ipc() / std::max(1e-9, base.ipc());
    std::printf("%-10s %12.3f %12.3f %12.3f %12.3f\n", name.c_str(),
                base.ipc(), n512, n128, n64);
    sum512 += n512;
    sum128 += n128;
    sum64 += n64;
    ++n;
  }
  std::printf("--------------------------------------------------------------\n");
  std::printf("measured averages: DRC-512 %.3f, DRC-128 %.3f, DRC-64 %.3f "
              "(slowdowns %.1f%% / %.1f%% / %.1f%%)\n\n",
              sum512 / n, sum128 / n, sum64 / n, 100 * (1 - sum512 / n),
              100 * (1 - sum128 / n), 100 * (1 - sum64 / n));
  return 0;
}
