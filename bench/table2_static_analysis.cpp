// Table II: static control-flow analysis of the benchmark applications —
// direct control transfers, indirect control transfers, function calls,
// and indirect function calls. Paper's shape: gcc and xalan have by far
// the largest counts; xalan dominates indirect calls (15465).
#include "bench_util.hpp"
#include "rewriter/cfg.hpp"

int main() {
  using namespace vcfr;
  bench::print_header(
      "Table II — static analysis of control flow",
      "xalan has the most indirect calls; gcc the most direct transfers");
  std::printf("%-10s %10s %14s %16s %12s %16s\n", "app", "instrs",
              "direct xfers", "indirect xfers", "calls", "indirect calls");

  for (const auto& name : workloads::spec_names()) {
    const auto image = workloads::make(name, bench::scale());
    const auto cfg = rewriter::build_cfg(image);
    const auto s = rewriter::static_stats(image, cfg);
    std::printf("%-10s %10llu %14llu %16llu %12llu %16llu\n", name.c_str(),
                static_cast<unsigned long long>(s.instructions),
                static_cast<unsigned long long>(s.direct_transfers),
                static_cast<unsigned long long>(s.indirect_transfers),
                static_cast<unsigned long long>(s.function_calls),
                static_cast<unsigned long long>(s.indirect_calls));
  }
  std::printf("\n");
  return 0;
}
