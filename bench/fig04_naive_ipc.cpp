// Figure 4: IPC of the straightforward hardware implementation of ILR,
// normalized to the no-randomization baseline. Paper: average drops to
// ~0.61-0.66 of baseline.
#include "bench_util.hpp"

int main() {
  using namespace vcfr;
  bench::print_header(
      "Figure 4 — naive hardware ILR: normalized IPC",
      "average IPC reduces to ~61-66% of baseline");
  std::printf("%-10s %12s %12s %16s\n", "app", "base IPC", "naive IPC",
              "normalized");

  double sum = 0;
  int n = 0;
  for (const auto& name : workloads::spec_names()) {
    const auto image = workloads::make(name, bench::scale());
    const auto base = bench::run(image, 128);
    const auto rr = bench::randomized(image);
    const auto naive = bench::run(rr.naive, 128);
    const double norm = naive.ipc() / std::max(1e-9, base.ipc());
    std::printf("%-10s %12.3f %12.3f %16.3f\n", name.c_str(), base.ipc(),
                naive.ipc(), norm);
    sum += norm;
    ++n;
  }
  bench::print_footer(sum / n, "normalized IPC");
  return 0;
}
