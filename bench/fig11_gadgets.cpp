// Figure 11 + §V-B: percentage of ROP gadgets removed by control-flow
// randomization, and attack-payload assembly before/after. Paper: without
// randomization ROPgadget assembles payloads for every app; after, none
// assemble and on average 98% of gadgets are removed.
#include "bench_util.hpp"
#include "gadget/payload.hpp"
#include "gadget/scanner.hpp"

int main() {
  using namespace vcfr;
  bench::print_header(
      "Figure 11 — gadgets removed by randomization + payload assembly",
      "~98% of gadgets removed on average; no payloads assemble afterwards");
  std::printf("%-10s %10s %10s %12s %14s %14s\n", "app", "before", "after",
              "removed(%)", "payload pre", "payload post");

  double sum = 0;
  int n = 0;
  bool any_pre_failed = false, any_post_assembled = false;
  for (const auto& name : workloads::spec_names()) {
    const auto image = workloads::make(name, bench::scale());
    const auto scan_result = gadget::scan(image);
    const auto rr = bench::randomized(image);
    const auto survival = gadget::survival_after_randomization(
        scan_result, rr.vcfr.tables);

    const bool pre = gadget::any_assembled(
        gadget::compile_payloads(scan_result.gadgets));
    const bool post =
        gadget::any_assembled(gadget::compile_payloads(survival.surviving));
    any_pre_failed |= !pre;
    any_post_assembled |= post;

    std::printf("%-10s %10zu %10zu %12.1f %14s %14s\n", name.c_str(),
                survival.before, survival.after, survival.removal_percent(),
                pre ? "ASSEMBLED" : "failed", post ? "ASSEMBLED" : "failed");
    sum += survival.removal_percent();
    ++n;
  }
  std::printf("--------------------------------------------------------------\n");
  std::printf("measured average gadget removal: %.1f%%\n", sum / n);
  std::printf("payloads before randomization: %s; after randomization: %s\n\n",
              any_pre_failed ? "NOT all assembled (mismatch)"
                             : "all assembled (matches paper)",
              any_post_assembled ? "some assembled (mismatch)"
                                 : "none assembled (matches paper)");
  return 0;
}
