#include "core/drc.hpp"

#include <bit>
#include <stdexcept>

#include "binary/image.hpp"
#include "binary/state_io.hpp"

namespace vcfr::core {

Drc::Drc(const DrcConfig& config) : config_(config) {
  if (config.entries == 0 || config.assoc == 0 ||
      config.entries % config.assoc != 0) {
    throw std::invalid_argument("Drc: entries must be a multiple of assoc");
  }
  num_sets_ = config.entries / config.assoc;
  if (!std::has_single_bit(num_sets_)) {
    throw std::invalid_argument("Drc: set count must be a power of two");
  }
  entries_.resize(config.entries);
}

uint32_t Drc::set_of(uint32_t key) const {
  // Instruction addresses are byte-granular; fold the low bits so nearby
  // addresses spread over the sets.
  const uint32_t h = key ^ (key >> 13) ^ (key >> 21);
  return h & (num_sets_ - 1);
}

std::optional<DrcEntryValue> Drc::lookup(uint32_t key, bool derand) {
  ++stats_.lookups;
  if (derand) {
    ++stats_.derand_lookups;
  } else {
    ++stats_.rand_lookups;
  }
  const uint32_t set = set_of(key);
  for (uint32_t w = 0; w < config_.assoc; ++w) {
    Entry& e = entries_[set * config_.assoc + w];
    if (e.valid && e.key == key && e.is_derand == derand) {
      if (e.epoch != epoch_) {
        // Epoch-tagged lazy revalidation: check the stale entry against
        // the live (post-incremental-rerand) tables instead of having
        // flushed it eagerly. Mirrors TranslationWalker::walk().
        bool still_valid = false;
        if (reval_ != nullptr) {
          DrcEntryValue live;
          if (derand) {
            live.translation = reval_->to_original(key);
            live.randomized_tag = reval_->is_randomized_addr(key);
          } else {
            live.translation = reval_->to_randomized(key);
            live.randomized_tag = live.translation != key;
          }
          still_valid = live.translation == e.translation &&
                        live.randomized_tag == e.randomized_tag;
        }
        if (!still_valid) {
          e.valid = false;
          ++stats_.epoch_invalidations;
          ++stats_.misses;
          return std::nullopt;
        }
        e.epoch = epoch_;
        ++stats_.epoch_promotions;
      }
      ++stats_.hits;
      e.lru = ++tick_;
      return DrcEntryValue{e.translation, e.randomized_tag};
    }
  }
  ++stats_.misses;
  return std::nullopt;
}

void Drc::insert(uint32_t key, bool derand, DrcEntryValue value) {
  const uint32_t set = set_of(key);
  Entry* victim = nullptr;
  for (uint32_t w = 0; w < config_.assoc; ++w) {
    Entry& e = entries_[set * config_.assoc + w];
    if (e.valid && e.key == key && e.is_derand == derand) {
      victim = &e;  // refresh in place
      break;
    }
    if (!e.valid) {
      if (victim == nullptr || victim->valid) victim = &e;
    } else if (victim == nullptr || (victim->valid && e.lru < victim->lru)) {
      victim = &e;
    }
  }
  victim->valid = true;
  victim->is_derand = derand;
  victim->randomized_tag = value.randomized_tag;
  victim->key = key;
  victim->translation = value.translation;
  victim->lru = ++tick_;
  victim->epoch = epoch_;
}

uint32_t Drc::flush() {
  uint32_t flushed = 0;
  for (auto& e : entries_) {
    if (e.valid) ++flushed;
    e.valid = false;
  }
  reval_ = nullptr;
  reval_armed_ = false;
  return flushed;
}

uint32_t Drc::valid_entries() const {
  uint32_t n = 0;
  for (const auto& e : entries_) {
    if (e.valid) ++n;
  }
  return n;
}

bool Drc::contains(uint32_t key, bool derand) const {
  const uint32_t set = set_of(key);
  for (uint32_t w = 0; w < config_.assoc; ++w) {
    const Entry& e = entries_[set * config_.assoc + w];
    if (e.valid && e.key == key && e.is_derand == derand) return true;
  }
  return false;
}

void Drc::save_state(binary::StateWriter& w) const {
  w.u64(tick_);
  w.u32(static_cast<uint32_t>(entries_.size()));
  for (const Entry& e : entries_) {
    w.b(e.valid);
    w.b(e.is_derand);
    w.b(e.randomized_tag);
    w.u32(e.key);
    w.u32(e.translation);
    w.u64(e.lru);
    w.u64(e.epoch);
  }
  w.u64(stats_.lookups);
  w.u64(stats_.hits);
  w.u64(stats_.misses);
  w.u64(stats_.derand_lookups);
  w.u64(stats_.rand_lookups);
  w.u64(stats_.epoch_promotions);
  w.u64(stats_.epoch_invalidations);
  w.u64(epoch_);
  // The reval tables pointer is process-owned; the kernel re-points it
  // through rebind_reval() once the owning process is restored.
  w.b(reval_armed_);
}

void Drc::load_state(binary::StateReader& r) {
  tick_ = r.u64();
  const uint32_t n = r.count(1u << 24);
  if (n != entries_.size()) {
    throw binary::FormatError(binary::FormatFault::kImplausible,
                              "checkpoint DRC geometry mismatch");
  }
  for (Entry& e : entries_) {
    e.valid = r.b();
    e.is_derand = r.b();
    e.randomized_tag = r.b();
    e.key = r.u32();
    e.translation = r.u32();
    e.lru = r.u64();
    e.epoch = r.u64();
  }
  stats_.lookups = r.u64();
  stats_.hits = r.u64();
  stats_.misses = r.u64();
  stats_.derand_lookups = r.u64();
  stats_.rand_lookups = r.u64();
  stats_.epoch_promotions = r.u64();
  stats_.epoch_invalidations = r.u64();
  epoch_ = r.u64();
  reval_armed_ = r.b();
  reval_ = nullptr;  // rebound via rebind_reval() after processes restore
}

void Drc::register_stats(const telemetry::Scope& scope) const {
  scope.counter("lookups", &stats_.lookups);
  scope.counter("hits", &stats_.hits);
  scope.counter("misses", &stats_.misses);
  scope.counter("derand_lookups", &stats_.derand_lookups);
  scope.counter("rand_lookups", &stats_.rand_lookups);
  scope.counter("epoch_promotions", &stats_.epoch_promotions);
  scope.counter("epoch_invalidations", &stats_.epoch_invalidations);
  scope.gauge("miss_rate", [this] { return stats_.miss_rate(); });
  scope.gauge("occupancy", [this] {
    return static_cast<double>(valid_entries());
  });
}

}  // namespace vcfr::core
