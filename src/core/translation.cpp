#include "core/translation.hpp"

namespace vcfr::core {

TranslationWalker::TranslationWalker(const binary::TranslationTables& tables,
                                     cache::MemHier& mem)
    : tables_(tables), mem_(mem) {
  if (tables.table_bytes != 0) {
    mem_.dtlb().set_invisible(tables.table_base, tables.table_bytes);
  }
}

WalkResult TranslationWalker::walk(uint32_t key, bool derand, uint64_t now) {
  ++walks_;
  WalkResult result;
  // Timing: one line read of the serialized entry through the unified L2.
  const cache::AccessResult mem_access =
      mem_.table_read(binary::table_entry_addr(tables_, key), now);
  result.latency = mem_access.latency;
  result.l2_hit = mem_access.l2_hit || mem_access.l1_hit;

  // Functional translation always comes from the exact tables (the
  // serialized form exists to give the walk a concrete line to fetch).
  if (derand) {
    result.value.translation = tables_.to_original(key);
    result.value.randomized_tag = tables_.is_randomized_addr(key);
  } else {
    result.value.translation = tables_.to_randomized(key);
    result.value.randomized_tag = result.value.translation != key;
  }
  return result;
}

}  // namespace vcfr::core
