// Table-walk layer between the DRC and the memory hierarchy (§IV-B).
//
// The randomization/de-randomization tables live in dedicated, user-
// invisible pages of simulated memory. A DRC miss reads the entry's line
// through the unified L2 (falling through to DRAM) — "such design
// eliminates the necessity of trapping into the kernel when entries of the
// DRC lookup buffer need to be updated".
#pragma once

#include <cstdint>

#include "binary/image.hpp"
#include "binary/loader.hpp"
#include "cache/memhier.hpp"
#include "core/drc.hpp"

namespace vcfr::core {

struct WalkResult {
  DrcEntryValue value;
  uint32_t latency = 0;  // cycles spent in the L2/DRAM walk
  bool l2_hit = false;
};

class TranslationWalker {
 public:
  /// `tables` must outlive the walker. The walker registers the table pages
  /// as user-invisible in the data TLB (the paper's visibility-bit
  /// protection, §IV-B).
  TranslationWalker(const binary::TranslationTables& tables,
                    cache::MemHier& mem);

  /// Resolves one translation with its memory-walk cost. `derand` selects
  /// direction (true: randomized -> original). Identity translations are
  /// produced for un-randomized addresses, with the randomized tag clear.
  WalkResult walk(uint32_t key, bool derand, uint64_t now);

  [[nodiscard]] uint64_t walks() const { return walks_; }

 private:
  const binary::TranslationTables& tables_;
  cache::MemHier& mem_;
  uint64_t walks_ = 0;
};

}  // namespace vcfr::core
