// Process-context management for randomization state (§IV-B / §IV-D).
//
// The paper stores the randomization/de-randomization tables "in the
// kernel as part of the process context and protected from illegitimate
// accesses", and notes that "at system level, the main impact is to extend
// application context to include the de-randomization/randomization
// tables". This module models that OS-visible surface:
//
//   * each process carries a pointer to its (kernel-owned) tables and the
//     placement seed epoch;
//   * a context switch installs the new tables and flushes the DRC —
//     cached translations are per-process secrets, and letting them
//     linger would leak one process's layout to another;
//   * re-randomization (§V-C) bumps the epoch: a fresh image + tables are
//     installed and every cached translation is invalidated.
#pragma once

#include <cstdint>
#include <string>

#include "binary/image.hpp"
#include "core/drc.hpp"

namespace vcfr::binary {
class StateWriter;
class StateReader;
}  // namespace vcfr::binary

namespace vcfr::core {

/// Kernel-side per-process randomization state.
struct ProcessContext {
  uint32_t pid = 0;
  std::string name;
  /// Kernel-owned translation tables (never user-visible; the data TLB
  /// marks their pages invisible). Must outlive the context.
  const binary::TranslationTables* tables = nullptr;
  /// Re-randomization epoch: bumped each time the process is re-imaged
  /// with a fresh seed.
  uint64_t epoch = 0;
};

struct ContextStats {
  uint64_t switches = 0;
  uint64_t entries_flushed = 0;
  uint64_t bitmap_entries_flushed = 0;
  uint64_t rerandomizations = 0;
};

class RetBitmapCache;

/// Models the kernel's handling of the per-process micro-architectural
/// randomization state (DRC + return-bitmap cache) across context
/// switches.
class ContextManager {
 public:
  explicit ContextManager(Drc& drc) : drc_(drc) {}

  /// Also flush this return-bitmap cache on every switch/re-randomization
  /// (its fragments describe the outgoing process's stack, §IV-C).
  void attach_ret_bitmap(RetBitmapCache* bitmap) { bitmap_ = bitmap; }

  /// Installs `next` as the running context. Flushes the DRC (and any
  /// attached bitmap cache) unless the context is unchanged (same pid and
  /// epoch). Returns the number of translations lost to the flush.
  uint32_t switch_to(const ProcessContext& next);

  /// Registers a re-randomization of the *current* process: new tables,
  /// bumped epoch. Legacy (`epoch_tags` false): mandatory flush — the old
  /// translations are dead. Epoch-tagged (`epoch_tags` true, incremental
  /// in-place re-rand): no flush; the DRC epoch is bumped and stale lines
  /// revalidate lazily against `new_tables` on their next lookup, and the
  /// bitmap cache keeps its fragments (stack slot addresses are epoch-
  /// invariant). Returns the number of translations lost (0 when tagged).
  uint32_t rerandomize_current(const binary::TranslationTables& new_tables,
                               bool epoch_tags = false);

  [[nodiscard]] const ProcessContext& current() const { return current_; }
  [[nodiscard]] const ContextStats& stats() const { return stats_; }

  /// Checkpoint support. The tables pointer is process-owned and must be
  /// rebound by the kernel after the owning process is restored — a
  /// restored context deliberately skips the flush a switch_to() would
  /// trigger (the DRC state was checkpointed warm).
  void save_state(binary::StateWriter& w) const;
  void load_state(binary::StateReader& r);
  void rebind_tables(const binary::TranslationTables* tables) {
    current_.tables = tables;
    // If epoch revalidation was armed at checkpoint time, the restored
    // process's reallocated tables are the live revalidation source.
    drc_.rebind_reval(tables);
  }

 private:
  Drc& drc_;
  RetBitmapCache* bitmap_ = nullptr;
  ProcessContext current_;
  ContextStats stats_;
};

}  // namespace vcfr::core
