// Return-address randomization bitmap cache (§IV-C, Figure 10).
//
// The architecture tracks which stack slots hold randomized return
// addresses in a bitmap stored in user-invisible paged memory; a small
// on-chip cache holds the recently used bitmap fragments. Calls set bits,
// returns/overwrites clear them, and loads of marked slots trigger the
// automatic de-randomization path. The functional bit state lives in the
// golden-model emulator; this class models the *timing* and occupancy of
// the bitmap cache.
#pragma once

#include <cstdint>
#include <vector>

#include "cache/memhier.hpp"
#include "telemetry/stat_registry.hpp"

namespace vcfr::binary {
class StateWriter;
class StateReader;
}  // namespace vcfr::binary

namespace vcfr::core {

struct RetBitmapConfig {
  /// Stack bytes covered by one cached bitmap line: one bit per 4-byte
  /// slot, 64-byte lines -> 2 KiB of stack per line.
  uint32_t entries = 16;     // cached bitmap lines
  uint32_t line_cover = 2048;  // stack bytes covered per line
  /// Simulated backing-store base (user-invisible pages).
  uint32_t store_base = 0x6800'0000;
  uint32_t store_bytes = 64 * 1024;
};

struct RetBitmapStats {
  uint64_t accesses = 0;
  uint64_t misses = 0;
  /// Valid lines carried across an epoch-tagged re-randomization instead
  /// of being flushed (note_rerand).
  uint64_t rerand_retained = 0;

  [[nodiscard]] double miss_rate() const {
    return accesses == 0 ? 0.0
                         : static_cast<double>(misses) /
                               static_cast<double>(accesses);
  }
};

class RetBitmapCache {
 public:
  RetBitmapCache(const RetBitmapConfig& config, cache::MemHier& mem);

  /// Touches the bitmap fragment covering stack address `addr` at time
  /// `now`; returns added latency (0 on hit, an L2 walk on miss).
  uint32_t access(uint32_t addr, uint64_t now);

  /// Invalidates every cached fragment (context switch: the bitmap is
  /// per-process state, §IV-C). Returns how many valid lines were lost.
  uint32_t flush();

  /// Epoch-tagged re-randomization: the incremental patcher rewrites the
  /// *values* of marked stack slots in place, but which slots are marked
  /// does not change — so cached fragments stay valid. Records how many
  /// lines were retained (the warm state a legacy flush would have lost).
  void note_rerand() {
    for (const auto& e : entries_) {
      if (e.valid) ++stats_.rerand_retained;
    }
  }

  [[nodiscard]] const RetBitmapStats& stats() const { return stats_; }
  [[nodiscard]] const RetBitmapConfig& config() const { return config_; }

  /// Binds this bitmap cache's live statistics into `scope`.
  void register_stats(const telemetry::Scope& scope) const;

  /// Checkpoint support (the MemHier reference is rebound by the owner).
  void save_state(binary::StateWriter& w) const;
  void load_state(binary::StateReader& r);

 private:
  struct Entry {
    bool valid = false;
    uint32_t region = 0;
    uint64_t lru = 0;
  };

  RetBitmapConfig config_;
  cache::MemHier& mem_;
  std::vector<Entry> entries_;
  uint64_t tick_ = 0;
  RetBitmapStats stats_;
};

}  // namespace vcfr::core
