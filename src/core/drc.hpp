// De-Randomization Cache (DRC) — the paper's central hardware structure
// (§IV-B, Figures 7/8).
//
// A small (default direct-mapped) cache of address-translation entries.
// Each entry holds:
//   * a valid bit,
//   * a type bit ("derand tag"): set = the entry de-randomizes a randomized
//     address; clear = it randomizes an original address,
//   * the "randomized tag": set when the entry's original address was
//     safely randomized (so transfers to that *original* location are
//     prohibited, §IV-A),
//   * the address tag and the translated address.
//
// Misses are serviced by walking the in-memory tables through the unified
// L2 (core/translation.hpp).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "telemetry/stat_registry.hpp"

namespace vcfr::binary {
class StateWriter;
class StateReader;
struct TranslationTables;
}  // namespace vcfr::binary

namespace vcfr::core {

struct DrcConfig {
  uint32_t entries = 128;   // the paper evaluates 64 / 128 / 512
  uint32_t assoc = 1;       // direct-mapped in the paper; >1 for ablation
  uint32_t hit_latency = 1; // pipelined lookup
  /// Dedicated second-level DRC buffer (the alternative §IV-B mentions and
  /// rejects in favour of sharing the unified L2). 0 = shared-L2 design
  /// (the paper's choice); >0 = a dedicated L2 DRC with this many entries.
  uint32_t l2_entries = 0;
  uint32_t l2_assoc = 4;
  uint32_t l2_hit_latency = 4;
};

struct DrcStats {
  uint64_t lookups = 0;
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t derand_lookups = 0;
  uint64_t rand_lookups = 0;
  /// Epoch-tagged invalidation (continuous re-rand): stale-epoch entries
  /// whose translation still matched the live tables, promoted in place.
  uint64_t epoch_promotions = 0;
  /// Stale-epoch entries whose translation moved; dropped on lookup.
  uint64_t epoch_invalidations = 0;

  [[nodiscard]] double miss_rate() const {
    return lookups == 0 ? 0.0
                        : static_cast<double>(misses) /
                              static_cast<double>(lookups);
  }
};

/// A cached translation with its protection tag.
struct DrcEntryValue {
  uint32_t translation = 0;
  bool randomized_tag = false;
};

class Drc {
 public:
  explicit Drc(const DrcConfig& config);

  /// Looks up a translation entry. `derand` selects entry type: true for
  /// randomized->original, false for original->randomized. Updates stats
  /// and replacement state.
  std::optional<DrcEntryValue> lookup(uint32_t key, bool derand);

  /// Installs an entry after a table walk.
  void insert(uint32_t key, bool derand, DrcEntryValue value);

  /// Probe without statistics or replacement update.
  [[nodiscard]] bool contains(uint32_t key, bool derand) const;

  /// Invalidates every entry (process context switch, §IV-B: translations
  /// are per-process secrets). Returns how many valid entries were lost.
  /// Also disarms epoch revalidation (the tables are gone).
  uint32_t flush();

  /// Epoch-tagged invalidation (continuous re-rand): instead of flushing
  /// after an in-place incremental re-randomization, bump the epoch and
  /// keep `tables` (the live, just-patched tables) for lazy revalidation.
  /// A stale-epoch entry that still matches the tables is promoted on its
  /// next lookup (a hit — the tag check rides the existing pipeline); one
  /// that moved is dropped (a miss, serviced by the normal walk). `tables`
  /// must stay valid until the next flush()/bump_epoch()/rebind_reval().
  void bump_epoch(const binary::TranslationTables* tables) {
    ++epoch_;
    reval_ = tables;
    reval_armed_ = true;
  }

  /// Re-points the revalidation tables without touching the epoch
  /// (checkpoint restore: the owning process's tables were reallocated).
  void rebind_reval(const binary::TranslationTables* tables) {
    if (reval_armed_) reval_ = tables;
  }

  [[nodiscard]] uint32_t valid_entries() const;

  [[nodiscard]] const DrcConfig& config() const { return config_; }
  [[nodiscard]] const DrcStats& stats() const { return stats_; }
  [[nodiscard]] uint32_t size_bytes() const {
    return config_.entries * 8;  // 32-bit tag + 32-bit translation per entry
  }
  void reset_stats() { stats_ = DrcStats{}; }

  /// Binds this DRC's live statistics into `scope` (plus an occupancy
  /// gauge — valid entries at sample time).
  void register_stats(const telemetry::Scope& scope) const;

  /// Checkpoint support: entry array (incl. LRU ticks) + statistics.
  void save_state(binary::StateWriter& w) const;
  void load_state(binary::StateReader& r);

 private:
  struct Entry {
    bool valid = false;
    bool is_derand = false;   // the "derand tag" type bit
    bool randomized_tag = false;
    uint32_t key = 0;
    uint32_t translation = 0;
    uint64_t lru = 0;
    uint64_t epoch = 0;  // re-rand epoch at fill time (epoch-tagged inval)
  };

  [[nodiscard]] uint32_t set_of(uint32_t key) const;

  DrcConfig config_;
  uint32_t num_sets_ = 0;
  std::vector<Entry> entries_;
  uint64_t tick_ = 0;
  DrcStats stats_;
  // Epoch-tagged invalidation state (legacy runs never bump the epoch, so
  // every entry matches epoch_ == 0 and lookups behave exactly as before).
  uint64_t epoch_ = 0;
  const binary::TranslationTables* reval_ = nullptr;
  bool reval_armed_ = false;
};

}  // namespace vcfr::core
