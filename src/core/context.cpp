#include "core/context.hpp"

#include "core/ret_bitmap.hpp"

namespace vcfr::core {

uint32_t ContextManager::switch_to(const ProcessContext& next) {
  if (next.pid == current_.pid && next.epoch == current_.epoch &&
      current_.tables != nullptr) {
    return 0;  // resuming the same image: cached translations stay valid
  }
  ++stats_.switches;
  const uint32_t flushed = drc_.flush();
  stats_.entries_flushed += flushed;
  if (bitmap_) stats_.bitmap_entries_flushed += bitmap_->flush();
  current_ = next;
  return flushed;
}

uint32_t ContextManager::rerandomize_current(
    const binary::TranslationTables& new_tables) {
  ++stats_.rerandomizations;
  ++current_.epoch;
  current_.tables = &new_tables;
  const uint32_t flushed = drc_.flush();
  stats_.entries_flushed += flushed;
  if (bitmap_) stats_.bitmap_entries_flushed += bitmap_->flush();
  return flushed;
}

}  // namespace vcfr::core
