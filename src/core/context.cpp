#include "core/context.hpp"

#include "binary/state_io.hpp"
#include "core/ret_bitmap.hpp"

namespace vcfr::core {

uint32_t ContextManager::switch_to(const ProcessContext& next) {
  if (next.pid == current_.pid && next.epoch == current_.epoch &&
      current_.tables != nullptr) {
    return 0;  // resuming the same image: cached translations stay valid
  }
  ++stats_.switches;
  const uint32_t flushed = drc_.flush();
  stats_.entries_flushed += flushed;
  if (bitmap_) stats_.bitmap_entries_flushed += bitmap_->flush();
  current_ = next;
  return flushed;
}

uint32_t ContextManager::rerandomize_current(
    const binary::TranslationTables& new_tables, bool epoch_tags) {
  ++stats_.rerandomizations;
  ++current_.epoch;
  current_.tables = &new_tables;
  if (epoch_tags) {
    // Continuous re-rand: keep warm state. DRC lines revalidate lazily
    // against the patched tables; bitmap fragments stay valid because the
    // marked slot *addresses* did not move (only the values, which the
    // incremental patcher rewrote in place).
    drc_.bump_epoch(&new_tables);
    if (bitmap_) bitmap_->note_rerand();
    return 0;
  }
  const uint32_t flushed = drc_.flush();
  stats_.entries_flushed += flushed;
  if (bitmap_) stats_.bitmap_entries_flushed += bitmap_->flush();
  return flushed;
}

void ContextManager::save_state(binary::StateWriter& w) const {
  w.u64(stats_.switches);
  w.u64(stats_.entries_flushed);
  w.u64(stats_.bitmap_entries_flushed);
  w.u64(stats_.rerandomizations);
  w.u32(current_.pid);
  w.str(current_.name);
  w.u64(current_.epoch);
  w.b(current_.tables != nullptr);
}

void ContextManager::load_state(binary::StateReader& r) {
  stats_.switches = r.u64();
  stats_.entries_flushed = r.u64();
  stats_.bitmap_entries_flushed = r.u64();
  stats_.rerandomizations = r.u64();
  current_.pid = r.u32();
  current_.name = r.str();
  current_.epoch = r.u64();
  // The flag marks whether a context was installed; the actual pointer is
  // rebound by the kernel once the owning process exists again. Keeping
  // tables_ null until then makes a missed rebind fail the switch_to()
  // same-context test instead of dereferencing a stale pointer.
  current_.tables = nullptr;
  (void)r.b();
}

}  // namespace vcfr::core
