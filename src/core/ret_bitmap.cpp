#include "core/ret_bitmap.hpp"

#include "binary/state_io.hpp"

namespace vcfr::core {

RetBitmapCache::RetBitmapCache(const RetBitmapConfig& config,
                               cache::MemHier& mem)
    : config_(config), mem_(mem) {
  entries_.resize(config.entries);
  mem_.dtlb().set_invisible(config.store_base, config.store_bytes);
}

uint32_t RetBitmapCache::access(uint32_t addr, uint64_t now) {
  ++stats_.accesses;
  const uint32_t region = addr / config_.line_cover;
  Entry* victim = nullptr;
  for (auto& e : entries_) {
    if (e.valid && e.region == region) {
      e.lru = ++tick_;
      return 0;
    }
    if (!e.valid) {
      if (victim == nullptr || victim->valid) victim = &e;
    } else if (victim == nullptr || (victim->valid && e.lru < victim->lru)) {
      victim = &e;
    }
  }
  ++stats_.misses;
  victim->valid = true;
  victim->region = region;
  victim->lru = ++tick_;
  const uint32_t line =
      config_.store_base + (region * (config_.line_cover / 32)) %
                               (config_.store_bytes ? config_.store_bytes : 1);
  return mem_.table_read(line, now).latency;
}

uint32_t RetBitmapCache::flush() {
  uint32_t lost = 0;
  for (auto& e : entries_) {
    if (e.valid) ++lost;
    e.valid = false;
  }
  return lost;
}

void RetBitmapCache::save_state(binary::StateWriter& w) const {
  w.u64(tick_);
  w.u32(static_cast<uint32_t>(entries_.size()));
  for (const Entry& e : entries_) {
    w.b(e.valid);
    w.u32(e.region);
    w.u64(e.lru);
  }
  w.u64(stats_.accesses);
  w.u64(stats_.misses);
  w.u64(stats_.rerand_retained);
}

void RetBitmapCache::load_state(binary::StateReader& r) {
  tick_ = r.u64();
  const uint32_t n = r.count(1u << 20);
  if (n != entries_.size()) {
    throw binary::FormatError(binary::FormatFault::kImplausible,
                              "checkpoint bitmap-cache geometry mismatch");
  }
  for (Entry& e : entries_) {
    e.valid = r.b();
    e.region = r.u32();
    e.lru = r.u64();
  }
  stats_.accesses = r.u64();
  stats_.misses = r.u64();
  stats_.rerand_retained = r.u64();
}

void RetBitmapCache::register_stats(const telemetry::Scope& scope) const {
  scope.counter("accesses", &stats_.accesses);
  scope.counter("misses", &stats_.misses);
  scope.counter("rerand_retained", &stats_.rerand_retained);
  scope.gauge("miss_rate", [this] { return stats_.miss_rate(); });
}

}  // namespace vcfr::core
