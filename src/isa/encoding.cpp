#include "isa/encoding.hpp"

#include <cassert>

namespace vcfr::isa {
namespace {

void put32(std::vector<uint8_t>& out, uint32_t v) {
  out.push_back(static_cast<uint8_t>(v));
  out.push_back(static_cast<uint8_t>(v >> 8));
  out.push_back(static_cast<uint8_t>(v >> 16));
  out.push_back(static_cast<uint8_t>(v >> 24));
}

uint32_t get32(std::span<const uint8_t> b, size_t off) {
  return static_cast<uint32_t>(b[off]) | (static_cast<uint32_t>(b[off + 1]) << 8) |
         (static_cast<uint32_t>(b[off + 2]) << 16) |
         (static_cast<uint32_t>(b[off + 3]) << 24);
}

}  // namespace

void encode(const Instr& instr, std::vector<uint8_t>& out) {
  const auto op = static_cast<uint8_t>(instr.op);
  out.push_back(op);
  switch (instr.op) {
    case Op::kNop:
    case Op::kHalt:
    case Op::kRet:
      break;
    case Op::kSys:
      out.push_back(static_cast<uint8_t>(instr.imm));
      break;
    case Op::kOut:
    case Op::kJmpR:
    case Op::kCallR:
    case Op::kPushR:
    case Op::kPopR:
    case Op::kMovRR:
    case Op::kAddRR:
    case Op::kSubRR:
    case Op::kAndRR:
    case Op::kOrRR:
    case Op::kXorRR:
    case Op::kShlRR:
    case Op::kShrRR:
    case Op::kMulRR:
    case Op::kDivRR:
    case Op::kCmpRR:
    case Op::kTestRR:
      out.push_back(static_cast<uint8_t>((instr.rd << 4) | (instr.rs & 0xf)));
      break;
    case Op::kLd:
    case Op::kSt:
    case Op::kLdb:
    case Op::kStb: {
      out.push_back(static_cast<uint8_t>((instr.rd << 4) | (instr.rs & 0xf)));
      const auto disp = static_cast<uint16_t>(static_cast<int16_t>(instr.disp));
      out.push_back(static_cast<uint8_t>(disp));
      out.push_back(static_cast<uint8_t>(disp >> 8));
      break;
    }
    case Op::kJmp:
    case Op::kCall:
    case Op::kPushI:
      put32(out, instr.imm);
      break;
    case Op::kJcc:
      out.push_back(static_cast<uint8_t>(instr.cond));
      put32(out, instr.imm);
      break;
    case Op::kMovRI:
    case Op::kAddRI:
    case Op::kSubRI:
    case Op::kAndRI:
    case Op::kOrRI:
    case Op::kXorRI:
    case Op::kShlRI:
    case Op::kShrRI:
    case Op::kMulRI:
    case Op::kCmpRI:
      out.push_back(instr.rd);
      put32(out, instr.imm);
      break;
  }
}

std::vector<uint8_t> encode(const Instr& instr) {
  std::vector<uint8_t> out;
  encode(instr, out);
  return out;
}

std::optional<Instr> decode(std::span<const uint8_t> bytes) {
  if (bytes.empty()) return std::nullopt;
  const uint8_t op_byte = bytes[0];
  const uint8_t len = instr_length(op_byte);
  if (len == 0 || bytes.size() < len) return std::nullopt;

  Instr instr;
  instr.op = static_cast<Op>(op_byte);
  instr.length = len;
  switch (instr.op) {
    case Op::kNop:
    case Op::kHalt:
    case Op::kRet:
      break;
    case Op::kSys:
      instr.imm = bytes[1];
      break;
    case Op::kOut:
    case Op::kJmpR:
    case Op::kCallR:
    case Op::kPushR:
    case Op::kPopR:
    case Op::kMovRR:
    case Op::kAddRR:
    case Op::kSubRR:
    case Op::kAndRR:
    case Op::kOrRR:
    case Op::kXorRR:
    case Op::kShlRR:
    case Op::kShrRR:
    case Op::kMulRR:
    case Op::kDivRR:
    case Op::kCmpRR:
    case Op::kTestRR:
      instr.rd = bytes[1] >> 4;
      instr.rs = bytes[1] & 0xf;
      break;
    case Op::kLd:
    case Op::kSt:
    case Op::kLdb:
    case Op::kStb:
      instr.rd = bytes[1] >> 4;
      instr.rs = bytes[1] & 0xf;
      instr.disp = static_cast<int16_t>(
          static_cast<uint16_t>(bytes[2]) | (static_cast<uint16_t>(bytes[3]) << 8));
      break;
    case Op::kJmp:
    case Op::kCall:
    case Op::kPushI:
      instr.imm = get32(bytes, 1);
      break;
    case Op::kJcc:
      if (bytes[1] > static_cast<uint8_t>(Cond::kAe)) return std::nullopt;
      instr.cond = static_cast<Cond>(bytes[1]);
      instr.imm = get32(bytes, 2);
      break;
    case Op::kMovRI:
    case Op::kAddRI:
    case Op::kSubRI:
    case Op::kAndRI:
    case Op::kOrRI:
    case Op::kXorRI:
    case Op::kShlRI:
    case Op::kShrRI:
    case Op::kMulRI:
    case Op::kCmpRI:
      if (bytes[1] >= kNumRegs) return std::nullopt;
      instr.rd = bytes[1];
      instr.imm = get32(bytes, 2);
      break;
  }
  return instr;
}

uint32_t target_field_offset(Op op) {
  assert(op == Op::kJmp || op == Op::kCall || op == Op::kJcc);
  return op == Op::kJcc ? 2 : 1;
}

}  // namespace vcfr::isa
