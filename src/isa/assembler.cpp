#include "isa/assembler.hpp"

#include <cctype>
#include <charconv>
#include <optional>
#include <stdexcept>
#include <unordered_map>
#include <variant>
#include <vector>

#include "isa/encoding.hpp"

namespace vcfr::isa {
namespace {

using binary::Image;

struct AsmError : std::runtime_error {
  AsmError(size_t line, const std::string& msg)
      : std::runtime_error("asm:" + std::to_string(line) + ": " + msg) {}
};

/// An instruction whose immediate/target may still be symbolic.
struct PendingInstr {
  Instr instr;
  std::string target_label;  // for jmp/jcc/call targets
  std::string imm_label;     // for `mov rX, @label`
  size_t line = 0;
  uint32_t addr = 0;
};

/// A pending data item.
struct DataItem {
  enum class Kind { kWord, kByte, kSpace, kPtr } kind = Kind::kWord;
  uint32_t value = 0;      // word/byte value or space size
  std::string label;       // for kPtr
  size_t line = 0;
  uint32_t addr = 0;
};

class Assembler {
 public:
  explicit Assembler(std::string_view source) : source_(source) {}

  Image run() {
    parse();
    resolve();
    return std::move(image_);
  }

 private:
  // ---- lexing helpers -----------------------------------------------------

  static std::string_view trim(std::string_view s) {
    while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front()))) {
      s.remove_prefix(1);
    }
    while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back()))) {
      s.remove_suffix(1);
    }
    return s;
  }

  /// Splits "a, b" operands on commas, trimming whitespace.
  static std::vector<std::string_view> split_operands(std::string_view s) {
    std::vector<std::string_view> out;
    size_t start = 0;
    for (size_t i = 0; i <= s.size(); ++i) {
      if (i == s.size() || s[i] == ',') {
        auto piece = trim(s.substr(start, i - start));
        if (!piece.empty()) out.push_back(piece);
        start = i + 1;
      }
    }
    return out;
  }

  std::optional<int64_t> parse_int(std::string_view s) const {
    bool neg = false;
    if (!s.empty() && (s[0] == '-' || s[0] == '+')) {
      neg = s[0] == '-';
      s.remove_prefix(1);
    }
    if (s.empty()) return std::nullopt;
    int base = 10;
    if (s.size() > 2 && s[0] == '0' && (s[1] == 'x' || s[1] == 'X')) {
      base = 16;
      s.remove_prefix(2);
    }
    uint64_t value = 0;
    auto [ptr, ec] =
        std::from_chars(s.data(), s.data() + s.size(), value, base);
    if (ec != std::errc{} || ptr != s.data() + s.size()) return std::nullopt;
    return neg ? -static_cast<int64_t>(value) : static_cast<int64_t>(value);
  }

  uint8_t expect_reg(std::string_view tok, size_t line) const {
    auto reg = parse_reg(tok);
    if (!reg) throw AsmError(line, "expected register, got '" + std::string(tok) + "'");
    return *reg;
  }

  int64_t expect_int(std::string_view tok, size_t line) const {
    auto v = parse_int(tok);
    if (!v) throw AsmError(line, "expected integer, got '" + std::string(tok) + "'");
    return *v;
  }

  // ---- pass 1: parse ------------------------------------------------------

  void parse() {
    size_t line_no = 0;
    size_t pos = 0;
    while (pos <= source_.size()) {
      size_t eol = source_.find('\n', pos);
      if (eol == std::string_view::npos) eol = source_.size();
      std::string_view line = source_.substr(pos, eol - pos);
      pos = eol + 1;
      ++line_no;

      if (auto cut = line.find_first_of(";#"); cut != std::string_view::npos) {
        line = line.substr(0, cut);
      }
      line = trim(line);
      if (line.empty()) continue;

      if (line.back() == ':') {
        define_label(std::string(trim(line.substr(0, line.size() - 1))), line_no);
        continue;
      }
      if (line.front() == '.') {
        parse_directive(line, line_no);
        continue;
      }
      parse_instr(line, line_no);
    }
    if (pending_func_.has_value()) {
      throw AsmError(line_no, ".func not followed by a label");
    }
  }

  void define_label(const std::string& name, size_t line) {
    if (name.empty()) throw AsmError(line, "empty label");
    const uint32_t addr = in_data_ ? data_cursor_ : code_cursor_;
    if (!labels_.emplace(name, addr).second) {
      throw AsmError(line, "duplicate label '" + name + "'");
    }
    if (pending_func_.has_value()) {
      image_.functions.push_back({*pending_func_, addr});
      pending_func_.reset();
    }
  }

  void parse_directive(std::string_view line, size_t line_no) {
    const size_t sp = line.find_first_of(" \t");
    std::string_view dir = line.substr(0, sp);
    std::string_view rest =
        sp == std::string_view::npos ? std::string_view{} : trim(line.substr(sp));

    if (dir == ".name") {
      image_.name = std::string(rest);
    } else if (dir == ".code") {
      image_.code_base = static_cast<uint32_t>(expect_int(rest, line_no));
      code_cursor_ = image_.code_base;
      in_data_ = false;
    } else if (dir == ".data") {
      if (!rest.empty()) {
        image_.data_base = static_cast<uint32_t>(expect_int(rest, line_no));
        data_cursor_ = image_.data_base;
      }
      in_data_ = true;
    } else if (dir == ".text") {
      in_data_ = false;
    } else if (dir == ".entry") {
      entry_label_ = std::string(rest);
      entry_line_ = line_no;
    } else if (dir == ".func") {
      if (rest.empty()) throw AsmError(line_no, ".func requires a name");
      pending_func_ = std::string(rest);
    } else if (dir == ".word") {
      data_items_.push_back({DataItem::Kind::kWord,
                             static_cast<uint32_t>(expect_int(rest, line_no)),
                             {}, line_no, data_cursor_});
      data_cursor_ += 4;
    } else if (dir == ".byte") {
      data_items_.push_back({DataItem::Kind::kByte,
                             static_cast<uint32_t>(expect_int(rest, line_no)),
                             {}, line_no, data_cursor_});
      data_cursor_ += 1;
    } else if (dir == ".space") {
      const auto n = expect_int(rest, line_no);
      if (n < 0) throw AsmError(line_no, ".space size must be non-negative");
      data_items_.push_back({DataItem::Kind::kSpace, static_cast<uint32_t>(n),
                             {}, line_no, data_cursor_});
      data_cursor_ += static_cast<uint32_t>(n);
    } else if (dir == ".ptr") {
      if (rest.empty()) throw AsmError(line_no, ".ptr requires a label");
      data_items_.push_back({DataItem::Kind::kPtr, 0, std::string(rest),
                             line_no, data_cursor_});
      data_cursor_ += 4;
    } else {
      throw AsmError(line_no, "unknown directive '" + std::string(dir) + "'");
    }
  }

  /// Parses "[rN]", "[rN+d]", "[rN-d]".
  std::pair<uint8_t, int32_t> parse_mem(std::string_view tok, size_t line) const {
    if (tok.size() < 3 || tok.front() != '[' || tok.back() != ']') {
      throw AsmError(line, "expected memory operand, got '" + std::string(tok) + "'");
    }
    std::string_view inner = trim(tok.substr(1, tok.size() - 2));
    size_t sign = inner.find_first_of("+-");
    if (sign == std::string_view::npos) {
      return {expect_reg(inner, line), 0};
    }
    const uint8_t base = expect_reg(trim(inner.substr(0, sign)), line);
    const int64_t disp = expect_int(inner.substr(sign), line);
    if (disp < -32768 || disp > 32767) {
      throw AsmError(line, "displacement out of 16-bit range");
    }
    return {base, static_cast<int32_t>(disp)};
  }

  void emit(PendingInstr p) {
    if (in_data_) {
      throw AsmError(p.line, "instruction in data section");
    }
    p.addr = code_cursor_;
    p.instr.length = instr_length(static_cast<uint8_t>(p.instr.op));
    code_cursor_ += p.instr.length;
    instrs_.push_back(std::move(p));
  }

  void parse_instr(std::string_view line, size_t line_no) {
    const size_t sp = line.find_first_of(" \t");
    std::string mn{line.substr(0, sp)};
    const auto ops = split_operands(
        sp == std::string_view::npos ? std::string_view{} : line.substr(sp));

    PendingInstr p;
    p.line = line_no;
    Instr& in = p.instr;

    auto need = [&](size_t n) {
      if (ops.size() != n) {
        throw AsmError(line_no, mn + " expects " + std::to_string(n) +
                                    " operand(s), got " + std::to_string(ops.size()));
      }
    };
    auto reg_or_imm = [&](Op rr, Op ri) {
      need(2);
      in.rd = expect_reg(ops[0], line_no);
      if (parse_reg(ops[1])) {
        in.op = rr;
        in.rs = *parse_reg(ops[1]);
      } else {
        in.op = ri;
        if (!ops[1].empty() && ops[1][0] == '@') {
          p.imm_label = std::string(ops[1].substr(1));
        } else {
          in.imm = static_cast<uint32_t>(expect_int(ops[1], line_no));
        }
      }
    };
    auto mem_op = [&](Op op) {
      need(2);
      in.op = op;
      in.rd = expect_reg(ops[0], line_no);
      auto [base, disp] = parse_mem(ops[1], line_no);
      in.rs = base;
      in.disp = disp;
    };
    auto one_reg = [&](Op op) {
      need(1);
      in.op = op;
      in.rd = expect_reg(ops[0], line_no);
    };
    auto direct = [&](Op op) {
      need(1);
      in.op = op;
      if (auto v = parse_int(ops[0])) {
        in.imm = static_cast<uint32_t>(*v);
      } else {
        p.target_label = std::string(ops[0]);
      }
    };

    if (mn == "nop") { need(0); in.op = Op::kNop; }
    else if (mn == "halt") { need(0); in.op = Op::kHalt; }
    else if (mn == "ret") { need(0); in.op = Op::kRet; }
    else if (mn == "sys") {
      need(1);
      in.op = Op::kSys;
      in.imm = static_cast<uint32_t>(expect_int(ops[0], line_no));
    }
    else if (mn == "out") { one_reg(Op::kOut); }
    else if (mn == "push") {
      need(1);
      if (parse_reg(ops[0])) {
        in.op = Op::kPushR;
        in.rd = *parse_reg(ops[0]);
      } else {
        in.op = Op::kPushI;
        in.imm = static_cast<uint32_t>(expect_int(ops[0], line_no));
      }
    }
    else if (mn == "pop") { one_reg(Op::kPopR); }
    else if (mn == "jmpr") { one_reg(Op::kJmpR); }
    else if (mn == "callr") { one_reg(Op::kCallR); }
    else if (mn == "mov") { reg_or_imm(Op::kMovRR, Op::kMovRI); }
    else if (mn == "add") { reg_or_imm(Op::kAddRR, Op::kAddRI); }
    else if (mn == "sub") { reg_or_imm(Op::kSubRR, Op::kSubRI); }
    else if (mn == "and") { reg_or_imm(Op::kAndRR, Op::kAndRI); }
    else if (mn == "or") { reg_or_imm(Op::kOrRR, Op::kOrRI); }
    else if (mn == "xor") { reg_or_imm(Op::kXorRR, Op::kXorRI); }
    else if (mn == "shl") { reg_or_imm(Op::kShlRR, Op::kShlRI); }
    else if (mn == "shr") { reg_or_imm(Op::kShrRR, Op::kShrRI); }
    else if (mn == "mul") { reg_or_imm(Op::kMulRR, Op::kMulRI); }
    else if (mn == "cmp") { reg_or_imm(Op::kCmpRR, Op::kCmpRI); }
    else if (mn == "div") {
      need(2);
      in.op = Op::kDivRR;
      in.rd = expect_reg(ops[0], line_no);
      in.rs = expect_reg(ops[1], line_no);
    }
    else if (mn == "test") {
      need(2);
      in.op = Op::kTestRR;
      in.rd = expect_reg(ops[0], line_no);
      in.rs = expect_reg(ops[1], line_no);
    }
    else if (mn == "ld") { mem_op(Op::kLd); }
    else if (mn == "st") { mem_op(Op::kSt); }
    else if (mn == "ldb") { mem_op(Op::kLdb); }
    else if (mn == "stb") { mem_op(Op::kStb); }
    else if (mn == "jmp") { direct(Op::kJmp); }
    else if (mn == "call") { direct(Op::kCall); }
    else if (mn.size() > 1 && mn[0] == 'j' && parse_cond(mn.substr(1))) {
      direct(Op::kJcc);
      in.cond = *parse_cond(mn.substr(1));
    }
    else {
      throw AsmError(line_no, "unknown mnemonic '" + mn + "'");
    }
    emit(std::move(p));
  }

  // ---- pass 2: resolve and encode ----------------------------------------

  uint32_t lookup(const std::string& label, size_t line) const {
    auto it = labels_.find(label);
    if (it == labels_.end()) throw AsmError(line, "undefined label '" + label + "'");
    return it->second;
  }

  void resolve() {
    for (auto& p : instrs_) {
      if (!p.target_label.empty()) p.instr.imm = lookup(p.target_label, p.line);
      if (!p.imm_label.empty()) p.instr.imm = lookup(p.imm_label, p.line);
      encode(p.instr, image_.code);
    }
    image_.data.resize(data_cursor_ - image_.data_base, 0);
    for (const auto& d : data_items_) {
      const uint32_t off = d.addr - image_.data_base;
      switch (d.kind) {
        case DataItem::Kind::kWord:
          image_.write_data32(d.addr, d.value);
          break;
        case DataItem::Kind::kByte:
          image_.data[off] = static_cast<uint8_t>(d.value);
          break;
        case DataItem::Kind::kSpace:
          break;  // already zero-filled
        case DataItem::Kind::kPtr: {
          const uint32_t target = lookup(d.label, d.line);
          image_.write_data32(d.addr, target);
          if (target >= image_.code_base && target < code_cursor_) {
            image_.relocs.push_back({d.addr});
          }
          break;
        }
      }
    }
    if (!entry_label_.empty()) {
      image_.entry = lookup(entry_label_, entry_line_);
    } else {
      image_.entry = image_.code_base;
    }
  }

  std::string_view source_;
  Image image_ = [] {
    Image img;
    img.code_base = binary::kDefaultCodeBase;
    img.data_base = binary::kDefaultDataBase;
    return img;
  }();
  bool in_data_ = false;
  uint32_t code_cursor_ = binary::kDefaultCodeBase;
  uint32_t data_cursor_ = binary::kDefaultDataBase;
  std::unordered_map<std::string, uint32_t> labels_;
  std::vector<PendingInstr> instrs_;
  std::vector<DataItem> data_items_;
  std::optional<std::string> pending_func_;
  std::string entry_label_;
  size_t entry_line_ = 0;
};

}  // namespace

binary::Image assemble(std::string_view source) {
  return Assembler(source).run();
}

}  // namespace vcfr::isa
