// Binary encoding and decoding of VX instructions.
//
// Layouts (little-endian multi-byte fields):
//   1 byte : op                                   (nop, halt, ret)
//   2 bytes: op, rd<<4|rs                         (reg-reg ALU, push/pop, ...)
//   2 bytes: op, func                             (sys)
//   4 bytes: op, rd<<4|rs, disp16                 (ld/st/ldb/stb)
//   5 bytes: op, target32                         (jmp, call)
//   6 bytes: op, rd, imm32                        (reg-imm ALU, mov-imm)
//   6 bytes: op, cond, target32                   (jcc)
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "isa/isa.hpp"

namespace vcfr::isa {

/// Appends the encoding of `instr` to `out`. The instruction's `length`
/// field is ignored; the canonical length for its opcode is used.
void encode(const Instr& instr, std::vector<uint8_t>& out);

/// Encodes a single instruction into a fresh buffer.
[[nodiscard]] std::vector<uint8_t> encode(const Instr& instr);

/// Decodes one instruction from `bytes`. Returns nullopt when the first
/// byte is not a valid opcode or the buffer is too short for the opcode's
/// length. Gadget scanning relies on this failure tolerance.
[[nodiscard]] std::optional<Instr> decode(std::span<const uint8_t> bytes);

/// Byte offset of the 32-bit absolute-target field within a direct-transfer
/// encoding (jmp/call: 1, jcc: 2). Used by the rewriter to patch targets
/// in place.
[[nodiscard]] uint32_t target_field_offset(Op op);

}  // namespace vcfr::isa
