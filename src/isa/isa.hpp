// VX instruction set architecture.
//
// VX is the synthetic 32-bit ISA this reproduction substitutes for x86
// (see DESIGN.md §2). It keeps the two properties the paper's evaluation
// depends on:
//   * variable-length encodings (1-6 bytes), so unaligned decoding yields
//     ROP gadgets and instructions can be relocated at byte granularity;
//   * x86-style stack discipline (push/pop/call/ret with return addresses
//     in memory), so return-address randomization is meaningful.
//
// Control transfers use absolute 32-bit targets; the ILR rewriter patches
// them when relocating instructions.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace vcfr::isa {

/// Number of general-purpose registers.
inline constexpr int kNumRegs = 16;

/// Stack pointer register index (by convention, like x86 %esp).
inline constexpr uint8_t kSp = 14;

/// Opcode space. Byte values are part of the binary encoding and must not
/// be reordered once binaries exist (tests rely on stability only within a
/// process, but gadget-scanner expectations rely on Ret's value).
enum class Op : uint8_t {
  kNop = 0x01,
  kHalt = 0x02,
  kSys = 0x03,   // Sys func-byte: 0 = exit, 1 = emit r0 to output channel
  kOut = 0x04,   // emit register to output channel (checksum channel)

  kMovRR = 0x10,
  kMovRI = 0x11,

  kLd = 0x20,   // rd = mem32[rs + sext(disp16)]
  kSt = 0x21,   // mem32[rs + sext(disp16)] = rd
  kLdb = 0x22,  // rd = zext(mem8[rs + sext(disp16)])
  kStb = 0x23,  // mem8[rs + sext(disp16)] = rd & 0xff

  kAddRR = 0x30,
  kSubRR = 0x31,
  kAndRR = 0x32,
  kOrRR = 0x33,
  kXorRR = 0x34,
  kShlRR = 0x35,
  kShrRR = 0x36,
  kMulRR = 0x37,
  kDivRR = 0x38,

  kAddRI = 0x40,
  kSubRI = 0x41,
  kAndRI = 0x42,
  kOrRI = 0x43,
  kXorRI = 0x44,
  kShlRI = 0x45,
  kShrRI = 0x46,
  kMulRI = 0x47,

  kCmpRR = 0x50,
  kCmpRI = 0x51,
  kTestRR = 0x52,

  kJmp = 0x60,    // absolute 32-bit target
  kJcc = 0x61,    // cond byte + absolute 32-bit target
  kJmpR = 0x62,   // indirect jump through register
  kCall = 0x63,   // push return address; absolute target
  kCallR = 0x64,  // push return address; indirect target
  kRet = 0x65,    // pop return address into PC

  kPushR = 0x70,
  kPopR = 0x71,
  /// Push a 32-bit immediate (used by the software return-address
  /// randomization rewrite, §IV-A option 1: call X -> push ret; jmp X).
  kPushI = 0x72,
};

/// Condition codes for kJcc. Signed comparisons use N/V/Z, unsigned use C/Z,
/// mirroring the x86 condition model.
enum class Cond : uint8_t {
  kEq = 0,  // Z
  kNe = 1,  // !Z
  kLt = 2,  // N != V (signed <)
  kLe = 3,  // Z || N != V
  kGt = 4,  // !Z && N == V
  kGe = 5,  // N == V
  kB = 6,   // C (unsigned <)
  kAe = 7,  // !C
};

/// Decoded instruction. `imm` holds the immediate, absolute branch target,
/// or sign-extended displacement depending on `op`.
struct Instr {
  Op op = Op::kNop;
  Cond cond = Cond::kEq;
  uint8_t rd = 0;       // destination / value register
  uint8_t rs = 0;       // source / base register
  uint32_t imm = 0;     // immediate or absolute target
  int32_t disp = 0;     // sign-extended memory displacement
  uint8_t length = 1;   // encoded length in bytes

  /// True for instructions that can redirect control flow.
  [[nodiscard]] bool is_control() const {
    switch (op) {
      case Op::kJmp:
      case Op::kJcc:
      case Op::kJmpR:
      case Op::kCall:
      case Op::kCallR:
      case Op::kRet:
      case Op::kHalt:
        return true;
      default:
        return false;
    }
  }

  /// True for direct transfers whose target is encoded in the instruction.
  [[nodiscard]] bool is_direct_transfer() const {
    return op == Op::kJmp || op == Op::kJcc || op == Op::kCall;
  }

  /// True for indirect transfers (register or stack-sourced target).
  [[nodiscard]] bool is_indirect_transfer() const {
    return op == Op::kJmpR || op == Op::kCallR || op == Op::kRet;
  }

  [[nodiscard]] bool is_call() const {
    return op == Op::kCall || op == Op::kCallR;
  }

  /// True if execution can fall through to the next sequential instruction.
  [[nodiscard]] bool has_fallthrough() const {
    switch (op) {
      case Op::kJmp:
      case Op::kJmpR:
      case Op::kRet:
      case Op::kHalt:
        return false;
      default:
        return true;  // kJcc falls through when not taken; calls return
    }
  }

  [[nodiscard]] bool is_mem_load() const {
    return op == Op::kLd || op == Op::kLdb || op == Op::kPopR ||
           op == Op::kRet;
  }

  [[nodiscard]] bool is_mem_store() const {
    return op == Op::kSt || op == Op::kStb || op == Op::kPushR ||
           op == Op::kPushI || op == Op::kCall || op == Op::kCallR;
  }
};

/// Register/flag use-def summary for dependency tracking (the out-of-order
/// timing model). Bits 0..15 = r0..r15; bit 16 = the flags pseudo-register.
struct RegUse {
  uint32_t reads = 0;
  uint32_t writes = 0;
};
inline constexpr uint32_t kFlagsBit = 1u << 16;

/// Computes the registers (and flags) an instruction reads and writes,
/// including implicit uses: sp for stack operations, r0 for `sys 1`.
[[nodiscard]] RegUse reg_use(const Instr& instr);

/// Returns the encoded length in bytes for an opcode, or 0 if the byte is
/// not a valid opcode.
[[nodiscard]] uint8_t instr_length(uint8_t opcode_byte);

/// True if the byte value denotes a defined opcode.
[[nodiscard]] bool is_valid_opcode(uint8_t opcode_byte);

/// Mnemonic for an opcode (for the disassembler and diagnostics).
[[nodiscard]] std::string_view mnemonic(Op op);

/// Condition-code suffix ("eq", "ne", ...).
[[nodiscard]] std::string_view cond_name(Cond cond);

/// Parses a condition-code suffix; nullopt if unknown.
[[nodiscard]] std::optional<Cond> parse_cond(std::string_view name);

/// Parses a register name of the form "rN" or "sp"; nullopt if malformed.
[[nodiscard]] std::optional<uint8_t> parse_reg(std::string_view name);

/// Register name for diagnostics ("r0".."r13", "sp", "r15").
[[nodiscard]] std::string reg_name(uint8_t reg);

/// Maximum encoded instruction length.
inline constexpr uint8_t kMaxInstrLength = 6;

}  // namespace vcfr::isa
