// Linear-sweep disassembler for VX images and raw byte ranges.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "binary/image.hpp"
#include "isa/isa.hpp"

namespace vcfr::isa {

/// One disassembled instruction with its address.
struct DisasmEntry {
  uint32_t addr = 0;
  Instr instr;
};

/// Formats a single instruction ("add r1, r2", "jeq 0x1040", ...).
[[nodiscard]] std::string format_instr(const Instr& instr);

/// Linear sweep over a dense byte range starting at `base`. Stops at the
/// first undecodable byte (returns what was decoded so far).
[[nodiscard]] std::vector<DisasmEntry> disassemble(
    std::span<const uint8_t> bytes, uint32_t base);

/// Disassembles the code section of an original-layout or VCFR image.
/// Throws std::invalid_argument for naive-ILR images (their code is sparse;
/// iterate Image::sparse_code instead).
[[nodiscard]] std::vector<DisasmEntry> disassemble(const binary::Image& image);

/// Full listing ("1000: jmp 0x1010") for debugging and examples.
[[nodiscard]] std::string listing(const binary::Image& image);

}  // namespace vcfr::isa
