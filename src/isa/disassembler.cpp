#include "isa/disassembler.hpp"

#include <cstdio>
#include <stdexcept>

#include "isa/encoding.hpp"

namespace vcfr::isa {
namespace {

std::string hex32(uint32_t v) {
  char buf[16];
  std::snprintf(buf, sizeof buf, "0x%x", v);
  return buf;
}

}  // namespace

std::string format_instr(const Instr& in) {
  const std::string mn{mnemonic(in.op)};
  switch (in.op) {
    case Op::kNop:
    case Op::kHalt:
    case Op::kRet:
      return mn;
    case Op::kSys:
      return mn + " " + std::to_string(in.imm);
    case Op::kOut:
    case Op::kPushR:
    case Op::kPopR:
    case Op::kJmpR:
    case Op::kCallR:
      return mn + " " + reg_name(in.rd);
    case Op::kMovRR:
    case Op::kAddRR:
    case Op::kSubRR:
    case Op::kAndRR:
    case Op::kOrRR:
    case Op::kXorRR:
    case Op::kShlRR:
    case Op::kShrRR:
    case Op::kMulRR:
    case Op::kDivRR:
    case Op::kCmpRR:
    case Op::kTestRR:
      return mn + " " + reg_name(in.rd) + ", " + reg_name(in.rs);
    case Op::kLd:
    case Op::kSt:
    case Op::kLdb:
    case Op::kStb: {
      std::string mem = "[" + reg_name(in.rs);
      if (in.disp > 0) mem += "+" + std::to_string(in.disp);
      if (in.disp < 0) mem += std::to_string(in.disp);
      mem += "]";
      return mn + " " + reg_name(in.rd) + ", " + mem;
    }
    case Op::kJmp:
    case Op::kCall:
      return mn + " " + hex32(in.imm);
    case Op::kPushI:
      return mn + " " + hex32(in.imm);
    case Op::kJcc:
      return "j" + std::string(cond_name(in.cond)) + " " + hex32(in.imm);
    case Op::kMovRI:
    case Op::kAddRI:
    case Op::kSubRI:
    case Op::kAndRI:
    case Op::kOrRI:
    case Op::kXorRI:
    case Op::kShlRI:
    case Op::kShrRI:
    case Op::kMulRI:
    case Op::kCmpRI:
      return mn + " " + reg_name(in.rd) + ", " + std::to_string(in.imm);
  }
  return "?";
}

std::vector<DisasmEntry> disassemble(std::span<const uint8_t> bytes,
                                     uint32_t base) {
  std::vector<DisasmEntry> out;
  size_t off = 0;
  while (off < bytes.size()) {
    auto instr = decode(bytes.subspan(off));
    if (!instr) break;
    out.push_back({base + static_cast<uint32_t>(off), *instr});
    off += instr->length;
  }
  return out;
}

std::vector<DisasmEntry> disassemble(const binary::Image& image) {
  if (image.layout == binary::Layout::kNaiveIlr) {
    throw std::invalid_argument(
        "disassemble: naive-ILR images have sparse code");
  }
  return disassemble(image.code, image.code_base);
}

std::string listing(const binary::Image& image) {
  std::string out;
  for (const auto& e : disassemble(image)) {
    char buf[16];
    std::snprintf(buf, sizeof buf, "%08x: ", e.addr);
    out += buf;
    out += format_instr(e.instr);
    out += '\n';
  }
  return out;
}

}  // namespace vcfr::isa
