#include "isa/isa.hpp"

namespace vcfr::isa {

RegUse reg_use(const Instr& in) {
  RegUse u;
  const uint32_t rd = 1u << in.rd;
  const uint32_t rs = 1u << in.rs;
  const uint32_t sp = 1u << kSp;
  switch (in.op) {
    case Op::kNop:
    case Op::kHalt:
    case Op::kJmp:
      break;
    case Op::kSys:
      if (in.imm == 1) u.reads |= 1u << 0;  // emits r0
      break;
    case Op::kOut:
    case Op::kJmpR:
      u.reads |= rd;
      break;
    case Op::kMovRR:
      u.reads |= rs;
      u.writes |= rd;
      break;
    case Op::kMovRI:
      u.writes |= rd;
      break;
    case Op::kLd:
    case Op::kLdb:
      u.reads |= rs;
      u.writes |= rd;
      break;
    case Op::kSt:
    case Op::kStb:
      u.reads |= rd | rs;
      break;
    case Op::kAddRR:
    case Op::kSubRR:
    case Op::kAndRR:
    case Op::kOrRR:
    case Op::kXorRR:
    case Op::kShlRR:
    case Op::kShrRR:
    case Op::kMulRR:
    case Op::kDivRR:
      u.reads |= rd | rs;
      u.writes |= rd | kFlagsBit;
      break;
    case Op::kAddRI:
    case Op::kSubRI:
    case Op::kAndRI:
    case Op::kOrRI:
    case Op::kXorRI:
    case Op::kShlRI:
    case Op::kShrRI:
    case Op::kMulRI:
      u.reads |= rd;
      u.writes |= rd | kFlagsBit;
      break;
    case Op::kCmpRR:
    case Op::kTestRR:
      u.reads |= rd | rs;
      u.writes |= kFlagsBit;
      break;
    case Op::kCmpRI:
      u.reads |= rd;
      u.writes |= kFlagsBit;
      break;
    case Op::kJcc:
      u.reads |= kFlagsBit;
      break;
    case Op::kCall:
      u.reads |= sp;
      u.writes |= sp;
      break;
    case Op::kCallR:
      u.reads |= rd | sp;
      u.writes |= sp;
      break;
    case Op::kRet:
      u.reads |= sp;
      u.writes |= sp;
      break;
    case Op::kPushR:
      u.reads |= rd | sp;
      u.writes |= sp;
      break;
    case Op::kPushI:
      u.reads |= sp;
      u.writes |= sp;
      break;
    case Op::kPopR:
      u.reads |= sp;
      u.writes |= rd | sp;
      break;
  }
  return u;
}

uint8_t instr_length(uint8_t opcode_byte) {
  switch (static_cast<Op>(opcode_byte)) {
    case Op::kNop:
    case Op::kHalt:
    case Op::kRet:
      return 1;
    case Op::kSys:
    case Op::kOut:
    case Op::kMovRR:
    case Op::kAddRR:
    case Op::kSubRR:
    case Op::kAndRR:
    case Op::kOrRR:
    case Op::kXorRR:
    case Op::kShlRR:
    case Op::kShrRR:
    case Op::kMulRR:
    case Op::kDivRR:
    case Op::kCmpRR:
    case Op::kTestRR:
    case Op::kJmpR:
    case Op::kCallR:
    case Op::kPushR:
    case Op::kPopR:
      return 2;
    case Op::kLd:
    case Op::kSt:
    case Op::kLdb:
    case Op::kStb:
      return 4;
    case Op::kJmp:
    case Op::kCall:
    case Op::kPushI:
      return 5;
    case Op::kMovRI:
    case Op::kAddRI:
    case Op::kSubRI:
    case Op::kAndRI:
    case Op::kOrRI:
    case Op::kXorRI:
    case Op::kShlRI:
    case Op::kShrRI:
    case Op::kMulRI:
    case Op::kCmpRI:
    case Op::kJcc:
      return 6;
  }
  return 0;
}

bool is_valid_opcode(uint8_t opcode_byte) {
  return instr_length(opcode_byte) != 0;
}

std::string_view mnemonic(Op op) {
  switch (op) {
    case Op::kNop: return "nop";
    case Op::kHalt: return "halt";
    case Op::kSys: return "sys";
    case Op::kOut: return "out";
    case Op::kMovRR: return "mov";
    case Op::kMovRI: return "mov";
    case Op::kLd: return "ld";
    case Op::kSt: return "st";
    case Op::kLdb: return "ldb";
    case Op::kStb: return "stb";
    case Op::kAddRR: return "add";
    case Op::kSubRR: return "sub";
    case Op::kAndRR: return "and";
    case Op::kOrRR: return "or";
    case Op::kXorRR: return "xor";
    case Op::kShlRR: return "shl";
    case Op::kShrRR: return "shr";
    case Op::kMulRR: return "mul";
    case Op::kDivRR: return "div";
    case Op::kAddRI: return "add";
    case Op::kSubRI: return "sub";
    case Op::kAndRI: return "and";
    case Op::kOrRI: return "or";
    case Op::kXorRI: return "xor";
    case Op::kShlRI: return "shl";
    case Op::kShrRI: return "shr";
    case Op::kMulRI: return "mul";
    case Op::kCmpRR: return "cmp";
    case Op::kCmpRI: return "cmp";
    case Op::kTestRR: return "test";
    case Op::kJmp: return "jmp";
    case Op::kJcc: return "j";
    case Op::kJmpR: return "jmpr";
    case Op::kCall: return "call";
    case Op::kCallR: return "callr";
    case Op::kRet: return "ret";
    case Op::kPushR: return "push";
    case Op::kPushI: return "push";
    case Op::kPopR: return "pop";
  }
  return "?";
}

std::string_view cond_name(Cond cond) {
  switch (cond) {
    case Cond::kEq: return "eq";
    case Cond::kNe: return "ne";
    case Cond::kLt: return "lt";
    case Cond::kLe: return "le";
    case Cond::kGt: return "gt";
    case Cond::kGe: return "ge";
    case Cond::kB: return "b";
    case Cond::kAe: return "ae";
  }
  return "?";
}

std::optional<Cond> parse_cond(std::string_view name) {
  if (name == "eq") return Cond::kEq;
  if (name == "ne") return Cond::kNe;
  if (name == "lt") return Cond::kLt;
  if (name == "le") return Cond::kLe;
  if (name == "gt") return Cond::kGt;
  if (name == "ge") return Cond::kGe;
  if (name == "b") return Cond::kB;
  if (name == "ae") return Cond::kAe;
  return std::nullopt;
}

std::optional<uint8_t> parse_reg(std::string_view name) {
  if (name == "sp") return kSp;
  if (name.size() < 2 || name.size() > 3 || name[0] != 'r') {
    return std::nullopt;
  }
  int value = 0;
  for (char c : name.substr(1)) {
    if (c < '0' || c > '9') return std::nullopt;
    value = value * 10 + (c - '0');
  }
  if (value >= kNumRegs) return std::nullopt;
  return static_cast<uint8_t>(value);
}

std::string reg_name(uint8_t reg) {
  if (reg == kSp) return "sp";
  return "r" + std::to_string(static_cast<int>(reg));
}

}  // namespace vcfr::isa
