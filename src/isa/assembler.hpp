// Two-pass text assembler for VX.
//
// Syntax (one statement per line, ';' or '#' starts a comment):
//
//   .name bzip2            ; image name
//   .code 0x1000           ; code section base (default 0x1000)
//   .data 0x10000000       ; data section base and switch to data emission
//   .text                  ; switch back to code emission
//   .entry main            ; entry label
//   .func compress         ; declare the next label a function symbol
//   label:                 ; label bound to current section cursor
//   .word 123              ; 32-bit data value
//   .byte 7                ; 8-bit data value
//   .space 1024            ; zero-filled data bytes
//   .ptr label             ; 32-bit code/data pointer + relocation record
//
//   mov r1, 42             ; reg-imm (also: mov r1, @label for an address)
//   mov r1, r2             ; reg-reg
//   add/sub/and/or/xor/shl/shr/mul r1, r2|imm
//   div r1, r2
//   cmp r1, r2|imm         ; test r1, r2
//   ld r3, [r2+8]          ; ldb/st/stb likewise; displacement optional
//   jmp label / jeq..jae label / jmpr r5
//   call label / callr r5 / ret
//   push r1 / pop r1 / out r1 / sys 0 / nop / halt
#pragma once

#include <string>
#include <string_view>

#include "binary/image.hpp"

namespace vcfr::isa {

/// Assembles VX source into an original-layout image.
/// Throws std::runtime_error with a line-numbered message on any error
/// (unknown mnemonic, undefined label, malformed operand, ...).
[[nodiscard]] binary::Image assemble(std::string_view source);

}  // namespace vcfr::isa
