#include "binary/loader.hpp"

#include <algorithm>
#include <cstring>

#include "binary/state_io.hpp"

namespace vcfr::binary {

const Memory::Page* Memory::find_page(uint32_t addr) const {
  auto it = pages_.find(addr >> kPageBits);
  return it == pages_.end() ? nullptr : it->second.get();
}

Memory::Page& Memory::touch_page(uint32_t addr) {
  auto& slot = pages_[addr >> kPageBits];
  if (!slot) slot = std::make_unique<Page>(Page{});
  return *slot;
}

const Memory::Page* Memory::data_page(uint32_t addr) const {
  const uint32_t no = addr >> kPageBits;
  if (no == data_memo_no_) return data_memo_;
  const Page* page = find_page(addr);
  if (page != nullptr) {
    data_memo_no_ = no;
    data_memo_ = page;
  }
  return page;
}

const Memory::Page* Memory::fetch_page(uint32_t addr) const {
  const uint32_t no = addr >> kPageBits;
  if (no == fetch_memo_no_) return fetch_memo_;
  const Page* page = find_page(addr);
  if (page != nullptr) {
    fetch_memo_no_ = no;
    fetch_memo_ = page;
  }
  return page;
}

Memory::Page& Memory::write_page(uint32_t addr) {
  const uint32_t no = addr >> kPageBits;
  if (no == write_memo_no_) return *write_memo_;
  Page& page = touch_page(addr);
  write_memo_no_ = no;
  write_memo_ = &page;
  return page;
}

uint8_t Memory::read8(uint32_t addr) const {
  const Page* page = data_page(addr);
  return page ? (*page)[addr & (kPageSize - 1)] : 0;
}

void Memory::write8(uint32_t addr, uint8_t value) {
  if (!watched_.empty()) note_write(addr, 1);
  write_page(addr)[addr & (kPageSize - 1)] = value;
}

uint32_t Memory::read32(uint32_t addr) const {
  // Fast path when the word does not straddle a page boundary.
  if ((addr & (kPageSize - 1)) <= kPageSize - 4) {
    const Page* page = data_page(addr);
    if (!page) return 0;
    const uint32_t off = addr & (kPageSize - 1);
    return static_cast<uint32_t>((*page)[off]) |
           (static_cast<uint32_t>((*page)[off + 1]) << 8) |
           (static_cast<uint32_t>((*page)[off + 2]) << 16) |
           (static_cast<uint32_t>((*page)[off + 3]) << 24);
  }
  return static_cast<uint32_t>(read8(addr)) |
         (static_cast<uint32_t>(read8(addr + 1)) << 8) |
         (static_cast<uint32_t>(read8(addr + 2)) << 16) |
         (static_cast<uint32_t>(read8(addr + 3)) << 24);
}

void Memory::write32(uint32_t addr, uint32_t value) {
  if ((addr & (kPageSize - 1)) <= kPageSize - 4) {
    if (!watched_.empty()) note_write(addr, 4);
    Page& page = write_page(addr);
    const uint32_t off = addr & (kPageSize - 1);
    page[off] = static_cast<uint8_t>(value);
    page[off + 1] = static_cast<uint8_t>(value >> 8);
    page[off + 2] = static_cast<uint8_t>(value >> 16);
    page[off + 3] = static_cast<uint8_t>(value >> 24);
    return;
  }
  write8(addr, static_cast<uint8_t>(value));
  write8(addr + 1, static_cast<uint8_t>(value >> 8));
  write8(addr + 2, static_cast<uint8_t>(value >> 16));
  write8(addr + 3, static_cast<uint8_t>(value >> 24));
}

void Memory::read_block(uint32_t addr, uint8_t* out, uint32_t n) const {
  while (n > 0) {
    const uint32_t off = addr & (kPageSize - 1);
    const uint32_t chunk = std::min(n, kPageSize - off);
    const Page* page = fetch_page(addr);
    if (page != nullptr) {
      std::memcpy(out, page->data() + off, chunk);
    } else {
      std::memset(out, 0, chunk);
    }
    addr += chunk;
    out += chunk;
    n -= chunk;
  }
}

uint64_t Memory::checksum() const {
  // XOR of per-page FNV-1a hashes keyed by page number, so iteration order
  // over the hash map does not matter.
  uint64_t sum = 0;
  for (const auto& [page_no, page] : pages_) {
    uint64_t h = 1469598103934665603ull ^ (static_cast<uint64_t>(page_no) << 1);
    for (uint8_t b : *page) {
      h ^= b;
      h *= 1099511628211ull;
    }
    sum ^= h;
  }
  return sum;
}

void Memory::save_state(StateWriter& w) const {
  std::vector<uint32_t> page_nos;
  page_nos.reserve(pages_.size());
  for (const auto& [page_no, page] : pages_) page_nos.push_back(page_no);
  std::sort(page_nos.begin(), page_nos.end());
  w.u32(static_cast<uint32_t>(page_nos.size()));
  for (const uint32_t page_no : page_nos) {
    w.u32(page_no);
    w.bytes(pages_.at(page_no)->data(), kPageSize);
  }
  w.u32(static_cast<uint32_t>(watched_.size()));
  for (const auto& [base, end] : watched_) {
    w.u32(base);
    w.u32(end);
  }
  w.u64(code_version_);
}

void Memory::load_state(StateReader& r) {
  pages_.clear();
  data_memo_no_ = kNoPage;
  data_memo_ = nullptr;
  fetch_memo_no_ = kNoPage;
  fetch_memo_ = nullptr;
  write_memo_no_ = kNoPage;
  write_memo_ = nullptr;
  const uint32_t n = r.count(1u << 20);
  for (uint32_t i = 0; i < n; ++i) {
    const uint32_t page_no = r.u32();
    auto page = std::make_unique<Page>();
    r.bytes(page->data(), kPageSize);
    pages_[page_no] = std::move(page);
  }
  watched_.clear();
  const uint32_t ranges = r.count(1u << 12);
  for (uint32_t i = 0; i < ranges; ++i) {
    const uint32_t base = r.u32();
    const uint32_t end = r.u32();
    watched_.emplace_back(base, end);
  }
  code_version_ = r.u64();
}

void Memory::watch_code(uint32_t base, uint32_t size) {
  if (size == 0) return;
  const auto range = std::make_pair(base, base + size);
  for (const auto& r : watched_) {
    if (r == range) return;
  }
  watched_.push_back(range);
}

uint32_t table_entry_addr(const TranslationTables& tables, uint32_t addr) {
  const uint32_t slots = tables.table_bytes / 8;
  if (slots == 0) return tables.table_base;
  const uint32_t slot = mix32(addr) & (slots - 1);  // table_bytes is pow2*8
  return tables.table_base + slot * 8;
}

void load(const Image& image, Memory& mem) {
  for (size_t i = 0; i < image.code.size(); ++i) {
    mem.write8(image.code_base + static_cast<uint32_t>(i), image.code[i]);
  }
  for (size_t i = 0; i < image.data.size(); ++i) {
    mem.write8(image.data_base + static_cast<uint32_t>(i), image.data[i]);
  }
  if (image.layout == Layout::kNaiveIlr) {
    for (const auto& [addr, bytes] : image.sparse_code) {
      for (size_t i = 0; i < bytes.size(); ++i) {
        mem.write8(addr + static_cast<uint32_t>(i), bytes[i]);
      }
    }
  }
  if (image.layout == Layout::kVcfr && image.tables.table_bytes != 0) {
    store_tables(image.tables, mem);
  }
}

void store_tables(const TranslationTables& tables, Memory& mem) {
  if (tables.table_bytes == 0) return;
  // Serialize (key, translation) pairs so the tables occupy real cacheable
  // memory. Bucket collisions overwrite; functional translation always
  // uses the exact in-image maps, the serialized form exists to give DRC
  // misses a concrete line to fetch. The flat tables iterate in slot
  // order, so the bytes are deterministic across platforms.
  auto store = [&](uint32_t key, uint32_t value) {
    const uint32_t entry = table_entry_addr(tables, key);
    mem.write32(entry, key);
    mem.write32(entry + 4, value);
  };
  for (const auto& [r, o] : tables.derand) store(r, o);
  for (const auto& [o, r] : tables.rand) store(o, r);
  mem.bump_code_version();
}

}  // namespace vcfr::binary
