// Sparse paged memory model and image loader.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <unordered_map>

#include "binary/image.hpp"

namespace vcfr::binary {

/// Flat 32-bit byte-addressable memory, backed by 4 KiB pages allocated on
/// first touch. Unwritten bytes read as zero.
class Memory {
 public:
  static constexpr uint32_t kPageBits = 12;
  static constexpr uint32_t kPageSize = 1u << kPageBits;

  [[nodiscard]] uint8_t read8(uint32_t addr) const;
  void write8(uint32_t addr, uint8_t value);

  [[nodiscard]] uint32_t read32(uint32_t addr) const;
  void write32(uint32_t addr, uint32_t value);

  /// Copies up to `n` bytes starting at `addr` into `out`; missing pages
  /// yield zeros. Used by instruction decode.
  void read_block(uint32_t addr, uint8_t* out, uint32_t n) const;

  [[nodiscard]] size_t pages_allocated() const { return pages_.size(); }

  /// FNV-1a hash over all allocated pages (page-order independent).
  /// Used by equivalence tests to compare final memory states.
  [[nodiscard]] uint64_t checksum() const;

 private:
  using Page = std::array<uint8_t, kPageSize>;
  [[nodiscard]] const Page* find_page(uint32_t addr) const;
  Page& touch_page(uint32_t addr);

  std::unordered_map<uint32_t, std::unique_ptr<Page>> pages_;
};

/// Loads an image's sections into memory:
///  * kOriginal / kVcfr: dense code at code_base;
///  * kNaiveIlr: sparse_code at randomized addresses;
///  * always: data section, and for kVcfr the translation tables serialized
///    at tables.table_base (so DRC misses touch real cacheable memory).
void load(const Image& image, Memory& mem);

/// Writes (only) the serialized translation tables into memory at
/// tables.table_base — used by load() and by live re-randomization, which
/// must refresh the tables without touching the program's evolved data.
void store_tables(const TranslationTables& tables, Memory& mem);

/// Serialized translation-table entry layout: 8 bytes per entry
/// (4-byte key slot hash bucket -> 4-byte translation). Returns the
/// simulated address of the table entry that holds the mapping for `addr`,
/// which is the line the hardware reads on a DRC miss.
[[nodiscard]] uint32_t table_entry_addr(const TranslationTables& tables,
                                        uint32_t addr);

}  // namespace vcfr::binary
