// Sparse paged memory model and image loader.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "binary/image.hpp"

namespace vcfr::binary {

class StateWriter;
class StateReader;

/// Flat 32-bit byte-addressable memory, backed by 4 KiB pages allocated on
/// first touch. Unwritten bytes read as zero.
///
/// Host-side fast paths (architecturally invisible):
///  * the last-touched page is memoized per access stream (instruction
///    fetch, data reads, writes), so sequential fetch and stack traffic
///    skip the page hash — a Memory is therefore confined to one host
///    thread at a time (the fleet kernel guarantees this: each process's
///    memory is only touched by the worker running its core's slice);
///  * writes landing in a range registered via watch_code() bump
///    code_version(), which the emulator's decoded-instruction cache
///    compares against its fill generation — self-modifying code and
///    table refreshes invalidate cached decodes instead of going stale.
class Memory {
 public:
  static constexpr uint32_t kPageBits = 12;
  static constexpr uint32_t kPageSize = 1u << kPageBits;

  [[nodiscard]] uint8_t read8(uint32_t addr) const;
  void write8(uint32_t addr, uint8_t value);

  [[nodiscard]] uint32_t read32(uint32_t addr) const;
  void write32(uint32_t addr, uint32_t value);

  /// Copies up to `n` bytes starting at `addr` into `out`; missing pages
  /// yield zeros. Used by instruction decode.
  void read_block(uint32_t addr, uint8_t* out, uint32_t n) const;

  [[nodiscard]] size_t pages_allocated() const { return pages_.size(); }

  /// FNV-1a hash over all allocated pages (page-order independent).
  /// Used by equivalence tests to compare final memory states.
  [[nodiscard]] uint64_t checksum() const;

  /// Registers [base, base+size) as code: any write overlapping a watched
  /// range bumps code_version(). Duplicate registrations are folded.
  void watch_code(uint32_t base, uint32_t size);

  /// Generation counter for cached decodings of code bytes.
  [[nodiscard]] uint64_t code_version() const { return code_version_; }

  /// Explicit invalidation for writers that bypass the watched ranges'
  /// semantics (store_tables refreshing the kernel tables on live
  /// re-randomization).
  void bump_code_version() { ++code_version_; }

  /// Checkpoint support: every allocated page (sorted by page number for a
  /// deterministic byte stream — checksum() hashes all of them, zero-filled
  /// included), the watched ranges, and the code version (so a restored
  /// decode cache can never serve pre-checkpoint decodings).
  void save_state(StateWriter& w) const;
  void load_state(StateReader& r);

 private:
  using Page = std::array<uint8_t, kPageSize>;
  [[nodiscard]] const Page* find_page(uint32_t addr) const;
  Page& touch_page(uint32_t addr);

  /// Memoized page lookups. Pages are never freed and never move (the map
  /// owns them through unique_ptr), so a memoized pointer stays valid for
  /// the Memory's lifetime; only non-null results are memoized so pages
  /// allocated later are picked up on the next probe.
  [[nodiscard]] const Page* data_page(uint32_t addr) const;
  [[nodiscard]] const Page* fetch_page(uint32_t addr) const;
  Page& write_page(uint32_t addr);

  void note_write(uint32_t addr, uint32_t bytes) {
    for (const auto& r : watched_) {
      if (addr < r.second && addr + bytes > r.first) {
        ++code_version_;
        break;
      }
    }
  }

  std::unordered_map<uint32_t, std::unique_ptr<Page>> pages_;

  static constexpr uint32_t kNoPage = 0xffffffffu;
  mutable uint32_t data_memo_no_ = kNoPage;
  mutable const Page* data_memo_ = nullptr;
  mutable uint32_t fetch_memo_no_ = kNoPage;
  mutable const Page* fetch_memo_ = nullptr;
  uint32_t write_memo_no_ = kNoPage;
  Page* write_memo_ = nullptr;

  /// Watched [base, end) ranges; normally one (the image's code section).
  std::vector<std::pair<uint32_t, uint32_t>> watched_;
  uint64_t code_version_ = 0;
};

/// Loads an image's sections into memory:
///  * kOriginal / kVcfr: dense code at code_base;
///  * kNaiveIlr: sparse_code at randomized addresses;
///  * always: data section, and for kVcfr the translation tables serialized
///    at tables.table_base (so DRC misses touch real cacheable memory).
void load(const Image& image, Memory& mem);

/// Writes (only) the serialized translation tables into memory at
/// tables.table_base — used by load() and by live re-randomization, which
/// must refresh the tables without touching the program's evolved data.
/// Bumps the memory's code_version (a table refresh means the placement
/// changed, so cached decodings of the old epoch must die).
void store_tables(const TranslationTables& tables, Memory& mem);

/// Serialized translation-table entry layout: 8 bytes per entry
/// (4-byte key slot hash bucket -> 4-byte translation). Returns the
/// simulated address of the table entry that holds the mapping for `addr`,
/// which is the line the hardware reads on a DRC miss.
[[nodiscard]] uint32_t table_entry_addr(const TranslationTables& tables,
                                        uint32_t addr);

}  // namespace vcfr::binary
