// VXE on-disk image format: serialization for Image objects so the CLI
// tool (tools/vcfr_cli.cpp) can pass programs between pipeline stages.
//
// Layout (little-endian):
//   magic "VXE1" | layout u8 | seed u64 | name (len-prefixed) |
//   code_base u32 | code (len-prefixed bytes) |
//   data_base u32 | data (len-prefixed bytes) | entry u32 |
//   relocs (count + u32 each) | functions (count + name/addr) |
//   rand_base u32 | rand_size u32 |
//   sparse_code (count + addr/bytes) | fallthrough (count + pairs) |
//   tables: derand pairs, rand pairs, unrandomized set, base/bytes
#pragma once

#include <cstdint>
#include <iosfwd>
#include <stdexcept>
#include <string>
#include <string_view>

#include "binary/image.hpp"

namespace vcfr::binary {

/// Why a VXE image failed to parse. Every rejection of untrusted bytes is
/// one of these — the parser never lets an implementation exception
/// (bad_alloc from an attacker-controlled count, length_error, ...)
/// escape as the error.
enum class FormatFault : uint8_t {
  kIo = 0,          // cannot open / write failure
  kBadMagic = 1,    // not a VXE image
  kBadLayout = 2,   // unknown layout tag
  kTruncated = 3,   // ran out of bytes mid-field
  kImplausible = 4, // length/count field beyond the format's hard bounds
};

[[nodiscard]] std::string_view format_fault_name(FormatFault fault);

/// Structured parse/serialize error. Derives from std::runtime_error so
/// existing catch sites keep working; new callers switch on fault().
class FormatError : public std::runtime_error {
 public:
  FormatError(FormatFault fault, const std::string& message)
      : std::runtime_error(message), fault_(fault) {}
  [[nodiscard]] FormatFault fault() const { return fault_; }

 private:
  FormatFault fault_;
};

/// Serializes `image` to a stream. Throws FormatError (kIo) on I/O error.
void save(const Image& image, std::ostream& out);

/// Deserializes an image. Throws FormatError on bad magic, truncation, or
/// malformed/implausible fields — never anything else, for any input
/// bytes (see tests/test_serialize.cpp mutation fuzz).
[[nodiscard]] Image load_file(std::istream& in);

/// Convenience file wrappers.
void save(const Image& image, const std::string& path);
[[nodiscard]] Image load_file(const std::string& path);

}  // namespace vcfr::binary
