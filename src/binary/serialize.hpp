// VXE on-disk image format: serialization for Image objects so the CLI
// tool (tools/vcfr_cli.cpp) can pass programs between pipeline stages.
//
// Layout (little-endian):
//   magic "VXE1" | layout u8 | seed u64 | name (len-prefixed) |
//   code_base u32 | code (len-prefixed bytes) |
//   data_base u32 | data (len-prefixed bytes) | entry u32 |
//   relocs (count + u32 each) | functions (count + name/addr) |
//   rand_base u32 | rand_size u32 |
//   sparse_code (count + addr/bytes) | fallthrough (count + pairs) |
//   tables: derand pairs, rand pairs, unrandomized set, base/bytes
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>

#include "binary/image.hpp"

namespace vcfr::binary {

/// Serializes `image` to a stream. Throws std::runtime_error on I/O error.
void save(const Image& image, std::ostream& out);

/// Deserializes an image. Throws std::runtime_error on bad magic,
/// truncation, or malformed fields.
[[nodiscard]] Image load_file(std::istream& in);

/// Convenience file wrappers.
void save(const Image& image, const std::string& path);
[[nodiscard]] Image load_file(const std::string& path);

}  // namespace vcfr::binary
