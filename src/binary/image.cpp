#include "binary/image.hpp"

#include <stdexcept>

namespace vcfr::binary {

uint32_t Image::read_data32(uint32_t addr) const {
  if (addr < data_base || addr + 4 > data_end()) {
    throw std::out_of_range("Image::read_data32: address outside data section");
  }
  const size_t off = addr - data_base;
  return static_cast<uint32_t>(data[off]) |
         (static_cast<uint32_t>(data[off + 1]) << 8) |
         (static_cast<uint32_t>(data[off + 2]) << 16) |
         (static_cast<uint32_t>(data[off + 3]) << 24);
}

void Image::write_data32(uint32_t addr, uint32_t value) {
  if (addr < data_base || addr + 4 > data_end()) {
    throw std::out_of_range("Image::write_data32: address outside data section");
  }
  const size_t off = addr - data_base;
  data[off] = static_cast<uint8_t>(value);
  data[off + 1] = static_cast<uint8_t>(value >> 8);
  data[off + 2] = static_cast<uint8_t>(value >> 16);
  data[off + 3] = static_cast<uint8_t>(value >> 24);
}

}  // namespace vcfr::binary
