#include "binary/state_io.hpp"

#include <cstring>
#include <istream>
#include <ostream>

namespace vcfr::binary {

namespace {
constexpr uint32_t kMaxStateString = 1u << 20;
}  // namespace

void StateWriter::u8(uint8_t v) {
  out_.put(static_cast<char>(v));
}

void StateWriter::u32(uint32_t v) {
  char buf[4];
  for (int i = 0; i < 4; ++i) buf[i] = static_cast<char>((v >> (8 * i)) & 0xff);
  out_.write(buf, 4);
}

void StateWriter::u64(uint64_t v) {
  char buf[8];
  for (int i = 0; i < 8; ++i) buf[i] = static_cast<char>((v >> (8 * i)) & 0xff);
  out_.write(buf, 8);
}

void StateWriter::f64(double v) {
  uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  u64(bits);
}

void StateWriter::str(const std::string& s) {
  u32(static_cast<uint32_t>(s.size()));
  out_.write(s.data(), static_cast<std::streamsize>(s.size()));
}

void StateWriter::bytes(const void* data, size_t size) {
  out_.write(static_cast<const char*>(data),
             static_cast<std::streamsize>(size));
}

uint8_t StateReader::u8() {
  const int c = in_.get();
  if (c == std::istream::traits_type::eof()) {
    throw FormatError(FormatFault::kTruncated,
                      "checkpoint truncated mid-field");
  }
  return static_cast<uint8_t>(c);
}

uint32_t StateReader::u32() {
  char buf[4];
  in_.read(buf, 4);
  if (in_.gcount() != 4) {
    throw FormatError(FormatFault::kTruncated,
                      "checkpoint truncated mid-field");
  }
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(static_cast<uint8_t>(buf[i])) << (8 * i);
  }
  return v;
}

uint64_t StateReader::u64() {
  char buf[8];
  in_.read(buf, 8);
  if (in_.gcount() != 8) {
    throw FormatError(FormatFault::kTruncated,
                      "checkpoint truncated mid-field");
  }
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(static_cast<uint8_t>(buf[i])) << (8 * i);
  }
  return v;
}

double StateReader::f64() {
  const uint64_t bits = u64();
  double v = 0;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

std::string StateReader::str() {
  const uint32_t n = count(kMaxStateString);
  std::string s(n, '\0');
  in_.read(s.data(), n);
  if (in_.gcount() != static_cast<std::streamsize>(n)) {
    throw FormatError(FormatFault::kTruncated,
                      "checkpoint truncated mid-string");
  }
  return s;
}

void StateReader::bytes(void* data, size_t size) {
  in_.read(static_cast<char*>(data), static_cast<std::streamsize>(size));
  if (in_.gcount() != static_cast<std::streamsize>(size)) {
    throw FormatError(FormatFault::kTruncated,
                      "checkpoint truncated mid-buffer");
  }
}

uint32_t StateReader::count(uint32_t max) {
  const uint32_t n = u32();
  if (n > max) {
    throw FormatError(FormatFault::kImplausible,
                      "checkpoint count beyond format bound");
  }
  return n;
}

}  // namespace vcfr::binary
