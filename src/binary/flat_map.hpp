// Open-addressing hash containers for 32-bit address keys.
//
// The translation tables sit on the emulator's per-instruction hot path
// (RPC<->UPC lookups on every fetch and every control transfer), where
// std::unordered_map's node allocation and pointer chasing dominate.
// FlatMap32/FlatSet32 store entries inline in a power-of-two slot array
// with linear probing: a lookup is one multiply-shift hash, one array
// index, and (almost always) zero or one extra probe.
//
// Iteration order is slot order, which is a pure function of the inserted
// keys — deterministic across platforms and standard libraries, unlike
// unordered_map. store_tables() and the VXE serializer rely on this.
//
// FlatMap32 supports erase (backward-shift deletion, no tombstones) so
// the incremental re-randomizer can retire individual derand entries in
// place; FlatSet32 remains insert/lookup only.
#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace vcfr::binary {

/// 32-bit mix (xorshift-multiply); also spreads the serialized table keys
/// over buckets (see table_entry_addr in loader.cpp).
inline uint32_t mix32(uint32_t x) {
  x ^= x >> 16;
  x *= 0x7feb352du;
  x ^= x >> 15;
  x *= 0x846ca68bu;
  x ^= x >> 16;
  return x;
}

/// Open-addressing uint32 -> uint32 map with backward-shift erase.
class FlatMap32 {
 public:
  using value_type = std::pair<uint32_t, uint32_t>;

  class const_iterator {
   public:
    const_iterator() = default;

    const value_type& operator*() const { return map_->slots_[idx_]; }
    const value_type* operator->() const { return &map_->slots_[idx_]; }
    const_iterator& operator++() {
      ++idx_;
      skip();
      return *this;
    }
    bool operator==(const const_iterator& o) const { return idx_ == o.idx_; }
    bool operator!=(const const_iterator& o) const { return idx_ != o.idx_; }

   private:
    friend class FlatMap32;
    const_iterator(const FlatMap32* map, size_t idx) : map_(map), idx_(idx) {
      skip();
    }
    void skip() {
      while (idx_ < map_->used_.size() && map_->used_[idx_] == 0) ++idx_;
    }
    const FlatMap32* map_ = nullptr;
    size_t idx_ = 0;
  };

  [[nodiscard]] size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }

  [[nodiscard]] const_iterator begin() const { return {this, 0}; }
  [[nodiscard]] const_iterator end() const { return {this, used_.size()}; }

  /// The hot-path probe: a pointer to the value, or nullptr when absent.
  [[nodiscard]] const uint32_t* lookup(uint32_t key) const {
    if (size_ == 0) return nullptr;
    size_t idx = mix32(key) & mask_;
    while (used_[idx] != 0) {
      if (slots_[idx].first == key) return &slots_[idx].second;
      idx = (idx + 1) & mask_;
    }
    return nullptr;
  }

  [[nodiscard]] bool contains(uint32_t key) const {
    return lookup(key) != nullptr;
  }

  [[nodiscard]] const_iterator find(uint32_t key) const {
    if (size_ == 0) return end();
    size_t idx = mix32(key) & mask_;
    while (used_[idx] != 0) {
      if (slots_[idx].first == key) return {this, idx};
      idx = (idx + 1) & mask_;
    }
    return end();
  }

  /// Inserts when absent (like unordered_map::emplace — never overwrites).
  /// Returns true when a new entry was created.
  bool emplace(uint32_t key, uint32_t value) {
    grow_for(size_ + 1);
    size_t idx = mix32(key) & mask_;
    while (used_[idx] != 0) {
      if (slots_[idx].first == key) return false;
      idx = (idx + 1) & mask_;
    }
    used_[idx] = 1;
    slots_[idx] = {key, value};
    ++size_;
    return true;
  }

  uint32_t& operator[](uint32_t key) {
    grow_for(size_ + 1);
    size_t idx = mix32(key) & mask_;
    while (used_[idx] != 0) {
      if (slots_[idx].first == key) return slots_[idx].second;
      idx = (idx + 1) & mask_;
    }
    used_[idx] = 1;
    slots_[idx] = {key, 0};
    ++size_;
    return slots_[idx].second;
  }

  /// Backward-shift deletion: no tombstones, so probe chains stay exactly
  /// as a fresh insert-only build would lay them out — iteration order
  /// after an erase is still a pure function of the surviving keys'
  /// insertion history, keeping serialized table renderings deterministic.
  bool erase(uint32_t key) {
    if (size_ == 0) return false;
    size_t idx = mix32(key) & mask_;
    while (used_[idx] != 0 && slots_[idx].first != key) {
      idx = (idx + 1) & mask_;
    }
    if (used_[idx] == 0) return false;
    size_t hole = idx;
    size_t next = (hole + 1) & mask_;
    while (used_[next] != 0) {
      const size_t home = mix32(slots_[next].first) & mask_;
      if (((next - home) & mask_) >= ((next - hole) & mask_)) {
        slots_[hole] = slots_[next];
        hole = next;
      }
      next = (next + 1) & mask_;
    }
    used_[hole] = 0;
    slots_[hole] = {};
    --size_;
    return true;
  }

  void reserve(size_t n) { grow_for(n); }

  void clear() {
    slots_.clear();
    used_.clear();
    mask_ = 0;
    size_ = 0;
  }

  /// Set equality (iteration order does not matter).
  bool operator==(const FlatMap32& o) const {
    if (size_ != o.size_) return false;
    for (const auto& [k, v] : *this) {
      const uint32_t* ov = o.lookup(k);
      if (ov == nullptr || *ov != v) return false;
    }
    return true;
  }

 private:
  void grow_for(size_t n) {
    // Rehash at 3/4 occupancy so linear probes stay short.
    if (n * 4 <= slots_.size() * 3) return;
    size_t cap = slots_.size() == 0 ? 16 : slots_.size() * 2;
    while (n * 4 > cap * 3) cap *= 2;
    std::vector<value_type> old_slots = std::move(slots_);
    std::vector<uint8_t> old_used = std::move(used_);
    slots_.assign(cap, {});
    used_.assign(cap, 0);
    mask_ = cap - 1;
    for (size_t i = 0; i < old_used.size(); ++i) {
      if (old_used[i] == 0) continue;
      size_t idx = mix32(old_slots[i].first) & mask_;
      while (used_[idx] != 0) idx = (idx + 1) & mask_;
      used_[idx] = 1;
      slots_[idx] = old_slots[i];
    }
  }

  std::vector<value_type> slots_;
  std::vector<uint8_t> used_;
  size_t mask_ = 0;
  size_t size_ = 0;
};

/// Open-addressing set of uint32 keys (insert/lookup only, no erase).
class FlatSet32 {
 public:
  class const_iterator {
   public:
    const_iterator() = default;

    uint32_t operator*() const { return set_->slots_[idx_]; }
    const_iterator& operator++() {
      ++idx_;
      skip();
      return *this;
    }
    bool operator==(const const_iterator& o) const { return idx_ == o.idx_; }
    bool operator!=(const const_iterator& o) const { return idx_ != o.idx_; }

   private:
    friend class FlatSet32;
    const_iterator(const FlatSet32* set, size_t idx) : set_(set), idx_(idx) {
      skip();
    }
    void skip() {
      while (idx_ < set_->used_.size() && set_->used_[idx_] == 0) ++idx_;
    }
    const FlatSet32* set_ = nullptr;
    size_t idx_ = 0;
  };

  [[nodiscard]] size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }

  [[nodiscard]] const_iterator begin() const { return {this, 0}; }
  [[nodiscard]] const_iterator end() const { return {this, used_.size()}; }

  [[nodiscard]] bool contains(uint32_t key) const {
    if (size_ == 0) return false;
    size_t idx = mix32(key) & mask_;
    while (used_[idx] != 0) {
      if (slots_[idx] == key) return true;
      idx = (idx + 1) & mask_;
    }
    return false;
  }

  /// Returns true when a new element was inserted.
  bool insert(uint32_t key) {
    grow_for(size_ + 1);
    size_t idx = mix32(key) & mask_;
    while (used_[idx] != 0) {
      if (slots_[idx] == key) return false;
      idx = (idx + 1) & mask_;
    }
    used_[idx] = 1;
    slots_[idx] = key;
    ++size_;
    return true;
  }

  void reserve(size_t n) { grow_for(n); }

  void clear() {
    slots_.clear();
    used_.clear();
    mask_ = 0;
    size_ = 0;
  }

  bool operator==(const FlatSet32& o) const {
    if (size_ != o.size_) return false;
    for (const uint32_t k : *this) {
      if (!o.contains(k)) return false;
    }
    return true;
  }

 private:
  void grow_for(size_t n) {
    if (n * 4 <= slots_.size() * 3) return;
    size_t cap = slots_.size() == 0 ? 16 : slots_.size() * 2;
    while (n * 4 > cap * 3) cap *= 2;
    std::vector<uint32_t> old_slots = std::move(slots_);
    std::vector<uint8_t> old_used = std::move(used_);
    slots_.assign(cap, 0);
    used_.assign(cap, 0);
    mask_ = cap - 1;
    for (size_t i = 0; i < old_used.size(); ++i) {
      if (old_used[i] == 0) continue;
      size_t idx = mix32(old_slots[i]) & mask_;
      while (used_[idx] != 0) idx = (idx + 1) & mask_;
      used_[idx] = 1;
      slots_[idx] = old_slots[i];
    }
  }

  std::vector<uint32_t> slots_;
  std::vector<uint8_t> used_;
  size_t mask_ = 0;
  size_t size_ = 0;
};

}  // namespace vcfr::binary
