// Primitive binary state serialization for checkpoint/restore.
//
// The VXE image serializer (binary/serialize.*) knows how to persist a
// program; checkpointing a running fleet additionally needs every piece
// of *runtime* state — pipeline clocks, cache tag arrays, DRAM bank
// horizons, scheduler queues — written in a versioned, deterministic,
// little-endian layout. StateWriter/StateReader are the shared primitive
// layer: each stateful class implements
//
//   void save_state(binary::StateWriter& w) const;
//   void load_state(binary::StateReader& r);
//
// on top of these fixed-width accessors. Readers throw FormatError
// (kTruncated on underrun, kImplausible on absurd counts) — the same
// taxonomy as the image parser, so checkpoint corruption surfaces as a
// structured error instead of UB.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>

#include "binary/serialize.hpp"

namespace vcfr::binary {

class StateWriter {
 public:
  explicit StateWriter(std::ostream& out) : out_(out) {}

  void u8(uint8_t v);
  void u32(uint32_t v);
  void u64(uint64_t v);
  void i64(int64_t v) { u64(static_cast<uint64_t>(v)); }
  void b(bool v) { u8(v ? 1 : 0); }
  /// IEEE-754 bit pattern — exact round trip, no locale/precision issues.
  void f64(double v);
  /// u32 length prefix + raw bytes.
  void str(const std::string& s);
  void bytes(const void* data, size_t size);

 private:
  std::ostream& out_;
};

class StateReader {
 public:
  explicit StateReader(std::istream& in) : in_(in) {}

  [[nodiscard]] uint8_t u8();
  [[nodiscard]] uint32_t u32();
  [[nodiscard]] uint64_t u64();
  [[nodiscard]] int64_t i64() { return static_cast<int64_t>(u64()); }
  [[nodiscard]] bool b() { return u8() != 0; }
  [[nodiscard]] double f64();
  [[nodiscard]] std::string str();
  void bytes(void* data, size_t size);

  /// Reads a u32 element count and rejects it if it exceeds `max`
  /// (kImplausible) — every variable-length field goes through this so a
  /// corrupt count can never drive an allocation.
  [[nodiscard]] uint32_t count(uint32_t max);

 private:
  std::istream& in_;
};

}  // namespace vcfr::binary
