#include "binary/serialize.hpp"

#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>
#include <stdexcept>

namespace vcfr::binary {
namespace {

constexpr char kMagic[4] = {'V', 'X', 'E', '1'};

/// Hard bound on every count field (relocs, functions, table entries, …).
/// Far above anything the toolchain emits, low enough that a corrupted
/// count can never drive reserve() into bad_alloc/length_error.
constexpr uint32_t kMaxEntries = 1u << 24;

/// A corrupted count field must fail as a typed parse error before it
/// reaches a container reserve.
uint32_t checked_count(uint32_t n, const char* what) {
  if (n > kMaxEntries) {
    throw FormatError(FormatFault::kImplausible,
                      std::string("vxe: implausible ") + what + " count");
  }
  return n;
}

void put8(std::ostream& out, uint8_t v) {
  out.put(static_cast<char>(v));
}

void put32(std::ostream& out, uint32_t v) {
  for (int i = 0; i < 4; ++i) put8(out, static_cast<uint8_t>(v >> (8 * i)));
}

void put64(std::ostream& out, uint64_t v) {
  for (int i = 0; i < 8; ++i) put8(out, static_cast<uint8_t>(v >> (8 * i)));
}

void put_bytes(std::ostream& out, const std::vector<uint8_t>& bytes) {
  put32(out, static_cast<uint32_t>(bytes.size()));
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
}

void put_string(std::ostream& out, const std::string& s) {
  put32(out, static_cast<uint32_t>(s.size()));
  out.write(s.data(), static_cast<std::streamsize>(s.size()));
}

uint8_t get8(std::istream& in) {
  const int c = in.get();
  if (c == EOF) throw FormatError(FormatFault::kTruncated, "vxe: truncated file");
  return static_cast<uint8_t>(c);
}

uint32_t get32(std::istream& in) {
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<uint32_t>(get8(in)) << (8 * i);
  return v;
}

uint64_t get64(std::istream& in) {
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<uint64_t>(get8(in)) << (8 * i);
  return v;
}

std::vector<uint8_t> get_bytes(std::istream& in) {
  const uint32_t n = get32(in);
  if (n > (1u << 28)) throw FormatError(FormatFault::kImplausible, "vxe: implausible section size");
  std::vector<uint8_t> bytes(n);
  in.read(reinterpret_cast<char*>(bytes.data()), n);
  if (static_cast<uint32_t>(in.gcount()) != n) {
    throw FormatError(FormatFault::kTruncated, "vxe: truncated section");
  }
  return bytes;
}

std::string get_string(std::istream& in) {
  const uint32_t n = get32(in);
  if (n > (1u << 20)) throw FormatError(FormatFault::kImplausible, "vxe: implausible string size");
  std::string s(n, '\0');
  in.read(s.data(), n);
  if (static_cast<uint32_t>(in.gcount()) != n) {
    throw FormatError(FormatFault::kTruncated, "vxe: truncated string");
  }
  return s;
}

}  // namespace

std::string_view format_fault_name(FormatFault fault) {
  switch (fault) {
    case FormatFault::kIo: return "io";
    case FormatFault::kBadMagic: return "bad_magic";
    case FormatFault::kBadLayout: return "bad_layout";
    case FormatFault::kTruncated: return "truncated";
    case FormatFault::kImplausible: return "implausible";
  }
  return "unknown";
}

void save(const Image& image, std::ostream& out) {
  out.write(kMagic, 4);
  put8(out, static_cast<uint8_t>(image.layout));
  put64(out, image.seed);
  put_string(out, image.name);
  put32(out, image.code_base);
  put_bytes(out, image.code);
  put32(out, image.data_base);
  put_bytes(out, image.data);
  put32(out, image.entry);

  put32(out, static_cast<uint32_t>(image.relocs.size()));
  for (const auto& r : image.relocs) put32(out, r.data_addr);

  put32(out, static_cast<uint32_t>(image.functions.size()));
  for (const auto& f : image.functions) {
    put_string(out, f.name);
    put32(out, f.addr);
  }

  put32(out, image.rand_base);
  put32(out, image.rand_size);

  put32(out, static_cast<uint32_t>(image.sparse_code.size()));
  for (const auto& [addr, bytes] : image.sparse_code) {
    put32(out, addr);
    put_bytes(out, bytes);
  }
  put32(out, static_cast<uint32_t>(image.fallthrough.size()));
  for (const auto& [from, to] : image.fallthrough) {
    put32(out, from);
    put32(out, to);
  }

  const auto& t = image.tables;
  put32(out, static_cast<uint32_t>(t.derand.size()));
  for (const auto& [k, v] : t.derand) {
    put32(out, k);
    put32(out, v);
  }
  put32(out, static_cast<uint32_t>(t.rand.size()));
  for (const auto& [k, v] : t.rand) {
    put32(out, k);
    put32(out, v);
  }
  put32(out, static_cast<uint32_t>(t.unrandomized.size()));
  for (uint32_t a : t.unrandomized) put32(out, a);
  put32(out, t.table_base);
  put32(out, t.table_bytes);

  if (!out) throw FormatError(FormatFault::kIo, "vxe: write failed");
}

Image load_file(std::istream& in) {
  char magic[4];
  in.read(magic, 4);
  if (in.gcount() != 4 || std::memcmp(magic, kMagic, 4) != 0) {
    throw FormatError(FormatFault::kBadMagic, "vxe: bad magic (not a VXE image)");
  }
  Image image;
  const uint8_t layout = get8(in);
  if (layout > static_cast<uint8_t>(Layout::kVcfr)) {
    throw FormatError(FormatFault::kBadLayout, "vxe: unknown layout");
  }
  image.layout = static_cast<Layout>(layout);
  image.seed = get64(in);
  image.name = get_string(in);
  image.code_base = get32(in);
  image.code = get_bytes(in);
  image.data_base = get32(in);
  image.data = get_bytes(in);
  image.entry = get32(in);

  const uint32_t n_relocs = checked_count(get32(in), "reloc");
  image.relocs.reserve(n_relocs);
  for (uint32_t i = 0; i < n_relocs; ++i) image.relocs.push_back({get32(in)});

  const uint32_t n_funcs = checked_count(get32(in), "function");
  image.functions.reserve(n_funcs);
  for (uint32_t i = 0; i < n_funcs; ++i) {
    FunctionSymbol f;
    f.name = get_string(in);
    f.addr = get32(in);
    image.functions.push_back(std::move(f));
  }

  image.rand_base = get32(in);
  image.rand_size = get32(in);

  const uint32_t n_sparse = checked_count(get32(in), "sparse-code");
  image.sparse_code.reserve(n_sparse);
  for (uint32_t i = 0; i < n_sparse; ++i) {
    const uint32_t addr = get32(in);
    image.sparse_code.emplace(addr, get_bytes(in));
  }
  const uint32_t n_fall = checked_count(get32(in), "fallthrough");
  image.fallthrough.reserve(n_fall);
  for (uint32_t i = 0; i < n_fall; ++i) {
    const uint32_t from = get32(in);
    const uint32_t to = get32(in);
    image.fallthrough.emplace(from, to);
  }

  auto& t = image.tables;
  const uint32_t n_derand = checked_count(get32(in), "derand");
  t.derand.reserve(n_derand);
  for (uint32_t i = 0; i < n_derand; ++i) {
    const uint32_t k = get32(in);
    t.derand.emplace(k, get32(in));
  }
  const uint32_t n_rand = checked_count(get32(in), "rand");
  t.rand.reserve(n_rand);
  for (uint32_t i = 0; i < n_rand; ++i) {
    const uint32_t k = get32(in);
    t.rand.emplace(k, get32(in));
  }
  const uint32_t n_unrand = checked_count(get32(in), "unrandomized");
  t.unrandomized.reserve(n_unrand);
  for (uint32_t i = 0; i < n_unrand; ++i) t.unrandomized.insert(get32(in));
  t.table_base = get32(in);
  t.table_bytes = get32(in);
  return image;
}

void save(const Image& image, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw FormatError(FormatFault::kIo, "vxe: cannot open for writing: " + path);
  save(image, out);
}

Image load_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw FormatError(FormatFault::kIo, "vxe: cannot open: " + path);
  return load_file(in);
}

}  // namespace vcfr::binary
