// VXE binary image: the unit the assembler produces, the ILR rewriter
// transforms, and the emulator/simulator execute.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "binary/flat_map.hpp"

namespace vcfr::binary {

/// How the code bytes of an image are laid out (see DESIGN.md §4).
enum class Layout {
  /// Compiler output: instructions sequential from `code_base`.
  kOriginal,
  /// Fully relocated ILR image: each instruction lives at its randomized
  /// address inside [rand_base, rand_base + rand_size); successor addresses
  /// come from `fallthrough`. Models the paper's "straightforward hardware
  /// support for ILR" (§III).
  kNaiveIlr,
  /// VCFR image: instruction bytes keep the original layout, but direct
  /// control-transfer targets are rewritten into the randomized space and
  /// `tables` carries the randomization/de-randomization mappings (§IV).
  kVcfr,
};

/// A 32-bit slot in the data section that holds a code address (jump-table
/// entry or stored function pointer). The rewriter patches these.
struct Relocation {
  uint32_t data_addr = 0;
};

/// A named function entry point (from `.func` directives).
struct FunctionSymbol {
  std::string name;
  uint32_t addr = 0;
};

/// Randomization / de-randomization tables emitted by the rewriter for
/// kVcfr images. The paper stores these in kernel-protected pages; the
/// simulated layout (for DRC miss cost) is described by table_base/bytes.
///
/// The maps are open-addressing flat tables (binary/flat_map.hpp): they
/// are probed on the emulator's per-instruction hot path, and their
/// deterministic iteration order pins the serialized in-memory form that
/// DRC table walks read (store_tables in loader.cpp).
struct TranslationTables {
  /// randomized address -> original address (the paper's "derand" entries).
  FlatMap32 derand;
  /// original address -> randomized address ("rand" entries; used when a
  /// call must push the randomized return address).
  FlatMap32 rand;
  /// Original addresses left un-randomized as the failover set for
  /// unresolved indirect transfers. Their entries have the randomized tag
  /// cleared; they are the only residual ROP surface (§IV-A, §V-B).
  FlatSet32 unrandomized;
  /// Simulated physical placement of the tables (walked through L2 on DRC
  /// misses).
  uint32_t table_base = 0;
  uint32_t table_bytes = 0;

  /// De-randomizes an address: identity for un-randomized addresses.
  [[nodiscard]] uint32_t to_original(uint32_t addr) const {
    const uint32_t* v = derand.lookup(addr);
    return v == nullptr ? addr : *v;
  }

  /// Randomizes an original address: identity when no mapping exists.
  [[nodiscard]] uint32_t to_randomized(uint32_t addr) const {
    const uint32_t* v = rand.lookup(addr);
    return v == nullptr ? addr : *v;
  }

  [[nodiscard]] bool is_randomized_addr(uint32_t addr) const {
    return derand.contains(addr);
  }
};

/// A complete program image.
struct Image {
  std::string name;
  Layout layout = Layout::kOriginal;

  uint32_t code_base = 0;
  std::vector<uint8_t> code;  // dense bytes for kOriginal / kVcfr

  uint32_t data_base = 0;
  std::vector<uint8_t> data;

  uint32_t entry = 0;

  std::vector<Relocation> relocs;
  std::vector<FunctionSymbol> functions;

  // --- kNaiveIlr only: sparse relocated code -------------------------------
  /// Region holding relocated instructions.
  uint32_t rand_base = 0;
  uint32_t rand_size = 0;
  /// Instruction bytes keyed by randomized address.
  std::unordered_map<uint32_t, std::vector<uint8_t>> sparse_code;
  /// randomized address -> randomized address of the sequential successor.
  /// The paper's straightforward hardware ILR resolves this mapping at zero
  /// cost; only the fetch-locality penalty is modelled. Flat table: probed
  /// on every naive-ILR instruction.
  FlatMap32 fallthrough;

  // --- kVcfr only ----------------------------------------------------------
  TranslationTables tables;

  /// Seed the randomizer used (0 for un-randomized images).
  uint64_t seed = 0;

  [[nodiscard]] uint32_t code_end() const {
    return code_base + static_cast<uint32_t>(code.size());
  }
  [[nodiscard]] bool in_code(uint32_t addr) const {
    return addr >= code_base && addr < code_end();
  }
  [[nodiscard]] uint32_t data_end() const {
    return data_base + static_cast<uint32_t>(data.size());
  }

  /// Reads a 32-bit little-endian value from the data section.
  [[nodiscard]] uint32_t read_data32(uint32_t addr) const;
  /// Writes a 32-bit little-endian value into the data section.
  void write_data32(uint32_t addr, uint32_t value);
};

/// Default section bases shared by the assembler and workload builders.
inline constexpr uint32_t kDefaultCodeBase = 0x0000'1000;
inline constexpr uint32_t kDefaultDataBase = 0x1000'0000;
inline constexpr uint32_t kDefaultStackTop = 0x7fff'0000;
inline constexpr uint32_t kDefaultRandBase = 0x4000'0000;

}  // namespace vcfr::binary
