#include "cli/args.hpp"

#include <map>
#include <optional>
#include <set>
#include <stdexcept>

namespace vcfr::cli {

Args parse_args(int argc, char** argv) {
  Args args;
  for (int i = 2; i < argc; ++i) {
    std::string a = argv[i];
    // Accept both `--flag value` and `--flag=value`.
    std::optional<std::string> inline_value;
    if (a.size() > 2 && a[0] == '-' && a[1] == '-') {
      const size_t eq = a.find('=');
      if (eq != std::string::npos) {
        inline_value = a.substr(eq + 1);
        a = a.substr(0, eq);
      }
    }
    auto value = [&]() -> std::string {
      if (inline_value) return *inline_value;
      if (i + 1 >= argc) throw std::runtime_error("missing value for " + a);
      return argv[++i];
    };
    auto boolean = [&]() {
      if (inline_value) throw std::runtime_error(a + " does not take a value");
      return true;
    };
    if (!a.empty() && a[0] == '-') {
      args.seen.push_back(a == "-o" ? "--output" : a);
    }
    if (a == "-o" || a == "--output") {
      args.output = value();
    } else if (a == "--seed") {
      args.seed = std::stoull(value());
    } else if (a == "--max-instr") {
      args.max_instr = std::stoull(value());
    } else if (a == "--drc") {
      args.drc = static_cast<uint32_t>(std::stoul(value()));
    } else if (a == "--scale") {
      args.scale = std::stoi(value());
    } else if (a == "--naive") {
      args.naive = boolean();
    } else if (a == "--software-returns") {
      args.software_returns = boolean();
    } else if (a == "--page-confined") {
      args.page_confined = boolean();
    } else if (a == "--enforce-tags") {
      args.enforce_tags = boolean();
    } else if (a == "--regs") {
      args.regs = boolean();
    } else if (a == "--procs") {
      args.procs = static_cast<uint32_t>(std::stoul(value()));
    } else if (a == "--cores") {
      args.cores = static_cast<uint32_t>(std::stoul(value()));
    } else if (a == "--slice") {
      args.slice = std::stoull(value());
    } else if (a == "--rerand") {
      args.rerand = static_cast<uint32_t>(std::stoul(value()));
    } else if (a == "--rerand-mode") {
      args.rerand_mode = value();
      if (args.rerand_mode != "full" && args.rerand_mode != "incremental") {
        throw std::runtime_error("--rerand-mode must be full or incremental");
      }
    } else if (a == "--rerand-on-trap") {
      args.rerand_on_trap = boolean();
    } else if (a == "--rerand-on-leak") {
      args.rerand_on_leak = boolean();
    } else if (a == "--taint") {
      args.taint = boolean();
    } else if (a == "--rerand-scope") {
      args.rerand_scope = value();
      if (args.rerand_scope != "proc" && args.rerand_scope != "fleet") {
        throw std::runtime_error("--rerand-scope must be proc or fleet");
      }
    } else if (a == "--rerand-max-defer") {
      args.rerand_max_defer = static_cast<uint32_t>(std::stoul(value()));
    } else if (a == "--pool-workers") {
      args.pool_workers = static_cast<uint32_t>(std::stoul(value()));
    } else if (a == "--checkpoint-out") {
      args.checkpoint_out = value();
    } else if (a == "--checkpoint-round") {
      args.checkpoint_round = std::stoull(value());
    } else if (a == "--restore") {
      args.restore_in = value();
    } else if (a == "--workloads") {
      args.workload_list = value();
    } else if (a == "--restart") {
      args.restart = value();
    } else if (a == "--max-restarts") {
      args.max_restarts = static_cast<uint32_t>(std::stoul(value()));
    } else if (a == "--backoff") {
      args.backoff = std::stoull(value());
    } else if (a == "--watchdog") {
      args.watchdog = std::stoull(value());
    } else if (a == "--inject") {
      args.inject = value();
    } else if (a == "--layouts") {
      args.layout_list = value();
    } else if (a == "--sites") {
      args.site_list = value();
    } else if (a == "--trials") {
      args.trials = static_cast<uint32_t>(std::stoul(value()));
    } else if (a == "--tenants") {
      args.tenants = static_cast<uint32_t>(std::stoul(value()));
    } else if (a == "--duration") {
      args.duration = std::stoull(value());
    } else if (a == "--arrival") {
      args.arrival = value();
    } else if (a == "--dist") {
      args.dist = value();
    } else if (a == "--interarrival") {
      args.interarrival = std::stoull(value());
    } else if (a == "--latency-out") {
      args.latency_out = value();
    } else if (a == "--json") {
      args.json = boolean();
    } else if (a == "--no-baseline") {
      args.no_baseline = boolean();
    } else if (a == "--stats-json") {
      args.stats_json = value();
    } else if (a == "--trace-out") {
      args.trace_out = value();
    } else if (a == "--sample-interval") {
      args.sample_interval = std::stoull(value());
    } else if (a == "--sample-out") {
      args.sample_out = value();
    } else if (a == "--trace-capacity") {
      args.trace_capacity = std::stoull(value());
    } else if (a == "--journal-out") {
      args.journal_out = value();
    } else if (a == "--journal-capacity") {
      args.journal_capacity = std::stoull(value());
    } else if (a == "--journal") {
      args.journal_in = value();
    } else if (a == "--slo") {
      args.slo = value();
    } else if (a == "--slo-window") {
      args.slo_window = std::stoull(value());
    } else if (a == "--trace") {
      args.trace_in = value();
    } else if (a == "--profile-out") {
      args.profile_out = value();
    } else if (a == "--flame-out") {
      args.flame_out = value();
    } else if (a == "--top") {
      args.top = static_cast<uint32_t>(std::stoul(value()));
    } else if (!a.empty() && a[0] == '-') {
      throw std::runtime_error("unknown flag: " + a);
    } else {
      args.positional.push_back(a);
    }
  }
  if (args.sample_interval > 0 && args.sample_out.empty()) {
    throw std::runtime_error("--sample-interval requires --sample-out");
  }
  if (args.sample_interval == 0 && !args.sample_out.empty()) {
    throw std::runtime_error("--sample-out requires --sample-interval");
  }
  return args;
}

void validate_flags(const std::string& cmd, const Args& args) {
  static const std::map<std::string, std::set<std::string>> kAllowed = {
      {"asm", {"--output"}},
      {"disasm", {}},
      {"stats", {}},
      {"randomize",
       {"--output", "--seed", "--naive", "--software-returns",
        "--page-confined"}},
      {"run",
       {"--enforce-tags", "--taint", "--max-instr", "--stats-json",
        "--trace-out", "--trace-capacity", "--sample-interval",
        "--sample-out", "--profile-out", "--flame-out", "--top"}},
      {"sim",
       {"--drc", "--max-instr", "--stats-json", "--trace-out",
        "--trace-capacity", "--sample-interval", "--sample-out",
        "--profile-out", "--flame-out", "--top"}},
      {"scan", {}},
      {"workload",
       {"--output", "--scale", "--stats-json", "--trace-out",
        "--trace-capacity", "--sample-interval", "--sample-out"}},
      {"trace", {"--max-instr", "--regs"}},
      {"cfg", {}},
      {"entropy", {"--seed", "--page-confined"}},
      {"fleet",
       {"--procs", "--cores", "--slice", "--rerand", "--rerand-mode",
        "--rerand-on-trap", "--rerand-scope", "--rerand-max-defer",
        "--taint", "--rerand-on-leak", "--workloads", "--scale",
        "--seed", "--json", "--no-baseline", "--drc", "--max-instr",
        "--restart", "--max-restarts", "--backoff", "--watchdog", "--inject",
        "--stats-json", "--trace-out", "--trace-capacity", "--journal-out",
        "--journal-capacity",
        "--sample-interval", "--sample-out", "--profile-out", "--top",
        "--pool-workers", "--checkpoint-out", "--checkpoint-round",
        "--restore"}},
      {"prof",
       {"--seed", "--drc", "--max-instr", "--top", "--profile-out",
        "--flame-out"}},
      {"faultcamp",
       {"--workloads", "--scale", "--seed", "--trials", "--max-instr",
        "--layouts", "--sites", "--json", "--output", "--stats-json"}},
      {"serve",
       {"--tenants", "--cores", "--duration", "--arrival", "--interarrival",
        "--dist", "--rerand", "--rerand-mode", "--rerand-on-trap",
        "--rerand-scope", "--rerand-max-defer",
        "--taint", "--rerand-on-leak",
        "--workloads", "--scale", "--seed", "--slice", "--drc",
        "--max-instr", "--restart", "--max-restarts", "--backoff",
        "--watchdog", "--inject", "--json", "--latency-out", "--stats-json",
        "--trace-out", "--trace-capacity", "--journal-out",
        "--journal-capacity",
        "--sample-interval", "--sample-out", "--slo", "--slo-window",
        "--pool-workers"}},
      {"trace-report", {"--trace", "--journal", "--top"}},
      {"leaks", {"--seed", "--trials", "--json", "--output"}},
  };
  const auto it = kAllowed.find(cmd);
  if (it == kAllowed.end()) return;  // unknown command: usage() handles it
  for (const std::string& flag : args.seen) {
    if (it->second.count(flag) == 0) {
      throw std::runtime_error("flag " + flag + " is not accepted by '" +
                               cmd + "' (run vcfr with no arguments for "
                               "per-command flags)");
    }
  }
}

const char* usage_text() {
  return
      "usage: vcfr <command> [flags]\n"
      "\n"
      "All flags accept both `--flag value` and `--flag=value`. Each\n"
      "command rejects flags it does not use.\n"
      "\n"
      "commands:\n"
      "  asm <src.vx> [-o out.vxe]\n"
      "      assemble VX source\n"
      "  disasm <img.vxe>\n"
      "      list instructions (handles naive-ILR sparse images)\n"
      "  stats <img.vxe>\n"
      "      static control-flow analysis\n"
      "  randomize <img.vxe> [-o out.vxe] [--seed N] [--naive]\n"
      "      [--software-returns] [--page-confined]\n"
      "      ILR-randomize; default output is the VCFR image, --naive the\n"
      "      relocated one\n"
      "  run <img.vxe> [--enforce-tags] [--taint] [--max-instr N]\n"
      "      [telemetry flags] [profile flags]\n"
      "      golden-model (functional) run; telemetry stamps events with\n"
      "      the instruction index; --taint shadow-tracks randomized-layout\n"
      "      secrets and reports any that reach program output\n"
      "  sim <img.vxe> [--drc N] [--max-instr N] [telemetry flags]\n"
      "      [profile flags]\n"
      "      cycle simulation on one core\n"
      "  scan <img.vxe>\n"
      "      gadget scan + payload compilation attempt\n"
      "  workload <name> [--scale S] [-o out.vxe] [telemetry flags]\n"
      "      emit a suite program; --stats-json reports static stats\n"
      "  trace <img.vxe> [--max-instr N] [--regs]\n"
      "      per-instruction architectural trace\n"
      "  cfg <img.vxe>\n"
      "      Graphviz dot to stdout\n"
      "  entropy <img.vxe> [--seed N] [--page-confined]\n"
      "      SV-C entropy report\n"
      "  fleet [--procs N] [--cores N] [--slice N] [--rerand N]\n"
      "      [--rerand-mode full|incremental] [--rerand-on-trap]\n"
      "      [--rerand-scope proc|fleet] [--rerand-max-defer K]\n"
      "      [--taint] [--rerand-on-leak]\n"
      "      [--workloads a,b,c] [--scale S] [--seed N] [--drc N]\n"
      "      [--max-instr N] [--json] [--no-baseline]\n"
      "      [--restart never|on-fault|always] [--max-restarts N]\n"
      "      [--backoff ROUNDS] [--watchdog INSTR]\n"
      "      [--inject pid:site:instr[:seed]] [telemetry flags]\n"
      "      [--profile-out PATH] [--top N] [--pool-workers N]\n"
      "      [--checkpoint-out PATH --checkpoint-round N]\n"
      "      [--restore PATH]\n"
      "      time-slice N independently randomized workloads on a shared\n"
      "      L2+DRAM hierarchy; --rerand re-randomizes every N slices;\n"
      "      --rerand-mode incremental patches only a deterministic subset\n"
      "      of code regions per firing with epoch-tagged (lazy) cache\n"
      "      invalidation instead of a full rebuild + flush;\n"
      "      --rerand-on-trap schedules a fresh placement when a tenant\n"
      "      takes an attack-signal trap (--rerand-scope fleet also moves\n"
      "      every co-tenant); --rerand-max-defer K forces quiescence after\n"
      "      K consecutive pinned-register deferrals (0 = defer forever);\n"
      "      --inject arms one seeded corruption,\n"
      "      --restart re-randomizes and restarts crashed processes\n"
      "      (docs/DEPENDABILITY.md); --profile-out writes one guest\n"
      "      profile per tenant (PATH.pidN.json); --pool-workers sizes the\n"
      "      host worker pool (0 = auto; results are bit-identical);\n"
      "      --checkpoint-out/--checkpoint-round serialize the fleet at a\n"
      "      round boundary, --restore resumes bit-identically from it\n"
      "      (incompatible with --profile-out); --taint shadow-tracks\n"
      "      randomized-layout secrets per tenant and journals any leak\n"
      "      with provenance; --rerand-on-leak treats a leak as an attack\n"
      "      signal (fresh placement, --rerand-scope honored)\n"
      "  serve [--tenants N] [--cores N] [--duration CYCLES]\n"
      "      [--arrival open|closed] [--interarrival CYCLES]\n"
      "      [--rerand N] [--rerand-mode full|incremental]\n"
      "      [--rerand-on-trap] [--rerand-scope proc|fleet]\n"
      "      [--rerand-max-defer K] [--taint] [--rerand-on-leak]\n"
      "      [--dist fixed|uniform|exp] [--workloads a,b,c] [--scale S]\n"
      "      [--seed N] [--slice N] [--drc N] [--max-instr N]\n"
      "      [--restart never|on-fault|always] [--max-restarts N]\n"
      "      [--backoff ROUNDS] [--watchdog INSTR]\n"
      "      [--inject pid:site:instr[:seed]] [--json]\n"
      "      [--latency-out PATH] [--journal-out PATH]\n"
      "      [--slo p50|p99|p999:CYCLES] [--slo-window CYCLES]\n"
      "      [--pool-workers N] [telemetry flags]\n"
      "      request-serving latency bench (docs/ARCHITECTURE.md sec 12):\n"
      "      seeded per-tenant request streams dispatched event-driven on\n"
      "      the fleet kernel; reports per-tenant p50/p99/p999 in cycles;\n"
      "      --latency-out writes the per-request lifecycle CSV (with the\n"
      "      queue/run/restart_loss/commit_stall breakdown);\n"
      "      --journal-out writes the kernel flight-recorder JSONL (also\n"
      "      dumped to stderr post-mortem when a tenant goes down);\n"
      "      --slo sets a windowed latency objective (--slo-window wide,\n"
      "      default 50000 cycles) — exit status 2 when the overall\n"
      "      percentile exceeds it; --max-instr is the per-request\n"
      "      instruction budget; the --rerand* family re-randomizes live\n"
      "      tenants under load exactly as in `fleet` (moving target while\n"
      "      serving); --taint attributes taint-sink leaks to requests\n"
      "      (extra CSV columns + report fields) and --rerand-on-leak\n"
      "      re-keys the leaking tenant at its next request boundary\n"
      "  trace-report <latency.csv> [--trace trace.json]\n"
      "      [--journal journal.jsonl] [--top N]\n"
      "      per-request critical-path breakdown from a serve\n"
      "      --latency-out CSV: per-tenant queue/run/restart_loss/\n"
      "      commit_stall totals, the top-N slowest requests, and an exact\n"
      "      conservation check (components must sum to the latency;\n"
      "      exit 1 otherwise); --trace also cross-checks the flow events\n"
      "      in a --trace-out JSON; --journal ingests the flight recorder\n"
      "      and adds a per-tenant leak forensics section, cross-checked\n"
      "      against the CSV leak counts (exit 1 on mismatch)\n"
      "  leaks [--seed N] [--trials N] [--json] [-o report.json]\n"
      "      leak-observability gate: drive the over-reading leaky server\n"
      "      under taint tracking across layouts x seeds; VCFR must detect\n"
      "      the planted exfiltration with provenance while the native\n"
      "      layout stays silent (no randomized secrets to steal), and\n"
      "      --rerand-on-leak must re-key the victim within one round\n"
      "  prof <img.vxe> [--seed N] [--drc N] [--max-instr N] [--top N]\n"
      "      [--profile-out PATH] [--flame-out PATH]\n"
      "      guest-level cycle-attribution profile (docs/OBSERVABILITY.md);\n"
      "      an original image is also randomized (--seed) and simulated as\n"
      "      VCFR for a per-function overhead comparison; a VCFR image is\n"
      "      profiled as-is\n"
      "  faultcamp [--workloads a,b,c] [--scale S] [--seed N] [--trials N]\n"
      "      [--max-instr N] [--layouts native,naive,vcfr]\n"
      "      [--sites code_byte,translation_entry,ret_slot,ret_bitmap,\n"
      "      payload] [--json] [-o report.json] [--stats-json PATH]\n"
      "      dependability campaign: sweep seeded faults over workloads x\n"
      "      layouts x sites; deterministic detection/containment report\n"
      "\n"
      "telemetry flags (run|sim|workload|fleet|serve —\n"
      "docs/OBSERVABILITY.md):\n"
      "  --stats-json PATH       write the stat-registry snapshot as JSON\n"
      "  --trace-out PATH        write a Chrome trace-event JSON (open at\n"
      "                          https://ui.perfetto.dev)\n"
      "  --trace-capacity N      per-lane trace ring capacity in events\n"
      "                          (default 65536; oldest events drop when\n"
      "                          full — a warning reports drops at export)\n"
      "  --journal-capacity N    flight-recorder ring capacity in entries\n"
      "                          (fleet/serve; default 4096; oldest entries\n"
      "                          drop when full — a warning reports drops\n"
      "                          at export)\n"
      "  --sample-interval N     snapshot the registry every N cycles\n"
      "  --sample-out PATH       time-series destination; .json for JSON,\n"
      "                          anything else for CSV (requires\n"
      "                          --sample-interval)\n"
      "\n"
      "profile flags (run|sim|prof, plus fleet's --profile-out/--top):\n"
      "  --profile-out PATH      write the deterministic JSON profile\n"
      "  --flame-out PATH        write a collapsed-stack flamegraph file\n"
      "                          (feed to flamegraph.pl / speedscope)\n"
      "  --top N                 hot blocks listed in reports (default 10)\n"
      "\n"
      "Any output PATH above may be `-` to stream to stdout.\n";
}

}  // namespace vcfr::cli
