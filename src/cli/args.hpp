// Flag parsing and per-subcommand validation for the `vcfr` CLI.
//
// Lives in the library (not tools/) so tests can drive the exact parser
// the binary ships: every flag accepts both `--flag value` and
// `--flag=value`, and each subcommand rejects flags it does not use
// (validate_flags), so a typo is an error instead of a silent no-op.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace vcfr::cli {

struct Args {
  std::vector<std::string> positional;
  std::string output;
  uint64_t seed = 1;
  uint64_t max_instr = 100'000'000;
  uint32_t drc = 128;
  int scale = 1;
  bool naive = false;
  bool software_returns = false;
  bool page_confined = false;
  bool enforce_tags = false;
  bool regs = false;
  uint32_t procs = 4;
  uint32_t cores = 2;
  uint64_t slice = 50'000;
  uint32_t rerand = 0;
  // Continuous re-randomization (fleet/serve) — docs/DEPENDABILITY.md.
  std::string rerand_mode;        // "" (= full) | full | incremental
  bool rerand_on_trap = false;    // fresh placement on attack-signal traps
  std::string rerand_scope;       // "" (= proc) | proc | fleet
  uint32_t rerand_max_defer = 0;  // forced quiescence after K deferrals
  // Leak observability (run/fleet/serve) — docs/OBSERVABILITY.md.
  bool taint = false;             // shadow taint tracking of layout secrets
  bool rerand_on_leak = false;    // fresh placement when a taint sink fires
  /// Execute-phase worker-pool size (fleet/serve); 0 = auto (cores - 1).
  /// Host parallelism only — simulated results are bit-identical.
  uint32_t pool_workers = 0;
  // Checkpoint/restore (fleet) — docs/ARCHITECTURE.md §14.
  std::string checkpoint_out;   // write fleet state here at --checkpoint-round
  uint64_t checkpoint_round = 0;
  std::string restore_in;       // resume from this checkpoint file
  std::string workload_list;
  bool json = false;
  bool no_baseline = false;
  // Fault containment (fleet/serve) and campaign (faultcamp) controls.
  std::string restart;       // never | on-fault | always
  uint32_t max_restarts = 3;
  uint64_t backoff = 8;
  uint64_t watchdog = 0;
  std::string inject;        // pid:site:instr[:seed]
  std::string layout_list;   // native,naive,vcfr
  std::string site_list;     // code_byte,translation_entry,...
  uint32_t trials = 4;
  // Serving (serve) controls — docs/ARCHITECTURE.md §12.
  uint32_t tenants = 8;
  uint64_t duration = 200'000;
  std::string arrival = "open";   // open | closed
  std::string dist = "exp";       // fixed | uniform | exp
  uint64_t interarrival = 20'000;
  std::string latency_out;        // per-request CSV destination
  // Telemetry outputs (docs/OBSERVABILITY.md).
  std::string stats_json;
  std::string trace_out;
  std::string sample_out;
  uint64_t sample_interval = 0;
  /// Trace-lane ring capacity in events; 0 keeps the default (1 << 16).
  uint64_t trace_capacity = 0;
  /// Flight-recorder JSONL destination (serve/fleet).
  std::string journal_out;
  /// Journal ring capacity in entries; 0 keeps the default (4096).
  uint64_t journal_capacity = 0;
  /// Flight-recorder JSONL input (trace-report --journal PATH).
  std::string journal_in;
  // SLO monitor (serve) + trace-report inputs.
  std::string slo;          // p50|p99|p999:<cycles>
  uint64_t slo_window = 50'000;
  std::string trace_in;     // trace-report --trace PATH
  // Guest profiler outputs (run|sim|fleet|prof).
  std::string profile_out;
  std::string flame_out;
  uint32_t top = 10;
  /// Canonical names of every flag given, for per-subcommand validation.
  std::vector<std::string> seen;
};

/// Parses argv[2..] (argv[1] is the subcommand). Throws std::runtime_error
/// on unknown flags, missing values, or values on boolean flags.
[[nodiscard]] Args parse_args(int argc, char** argv);

/// Per-subcommand flag whitelist: a flag the global parser knows but the
/// subcommand does not use is an error, not a silent no-op. Unknown
/// subcommands pass (the caller's usage handling rejects them).
void validate_flags(const std::string& cmd, const Args& args);

/// The full `vcfr` usage text (every subcommand and flag).
[[nodiscard]] const char* usage_text();

}  // namespace vcfr::cli
