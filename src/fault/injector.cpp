#include "fault/injector.hpp"

#include <algorithm>
#include <cstdio>
#include <vector>

#include "binary/state_io.hpp"
#include "gadget/payload.hpp"
#include "gadget/scanner.hpp"
#include "isa/isa.hpp"

namespace vcfr::fault {

namespace {

std::string hex(uint32_t v) {
  char buf[16];
  std::snprintf(buf, sizeof buf, "0x%x", v);
  return buf;
}

/// splitmix64 — the deterministic selection stream.
struct Rng {
  uint64_t state;
  uint64_t next() {
    state += 0x9e3779b97f4a7c15ull;
    uint64_t z = state;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }
  uint64_t below(uint64_t n) { return n == 0 ? 0 : next() % n; }
};

/// The emulator's bitmap is an unordered_set whose iteration order is not
/// portable; seeded selection must run over a sorted copy.
std::vector<uint32_t> sorted_bitmap_slots(const emu::Emulator& emu) {
  std::vector<uint32_t> slots(emu.ret_bitmap().begin(),
                              emu.ret_bitmap().end());
  std::sort(slots.begin(), slots.end());
  return slots;
}

}  // namespace

std::string_view site_name(FaultSite site) {
  switch (site) {
    case FaultSite::kCodeByte: return "code_byte";
    case FaultSite::kTranslationEntry: return "translation_entry";
    case FaultSite::kRetSlot: return "ret_slot";
    case FaultSite::kRetBitmap: return "ret_bitmap";
    case FaultSite::kPayload: return "payload";
  }
  return "unknown";
}

std::optional<FaultSite> parse_site(std::string_view name) {
  for (const FaultSite site :
       {FaultSite::kCodeByte, FaultSite::kTranslationEntry,
        FaultSite::kRetSlot, FaultSite::kRetBitmap, FaultSite::kPayload}) {
    if (name == site_name(site)) return site;
  }
  return std::nullopt;
}

bool FaultInjector::apply(binary::Image& image, binary::Memory& mem,
                          emu::Emulator& emu,
                          const binary::Image* original) {
  if (attempted_) return record_.applied;
  attempted_ = true;
  record_.site = plan_.site;
  record_.at_instruction = emu.stats().instructions;
  Rng rng{plan_.seed ^ (plan_.at_instruction * 0x9e3779b97f4a7c15ull)};

  switch (plan_.site) {
    case FaultSite::kCodeByte: {
      // Flip one bit of one instruction byte in the loaded memory.
      uint32_t addr = 0;
      if (!image.code.empty()) {
        addr = image.code_base +
               static_cast<uint32_t>(rng.below(image.code.size()));
      } else if (!image.sparse_code.empty()) {
        // kNaiveIlr: relocated instructions live at their randomized
        // addresses. unordered_map order is not portable — sort the keys.
        std::vector<uint32_t> keys;
        keys.reserve(image.sparse_code.size());
        for (const auto& [k, bytes] : image.sparse_code) {
          if (!bytes.empty()) keys.push_back(k);
        }
        if (keys.empty()) {
          record_.note = "no code bytes to corrupt";
          return false;
        }
        std::sort(keys.begin(), keys.end());
        const uint32_t key = keys[rng.below(keys.size())];
        addr = key + static_cast<uint32_t>(
                         rng.below(image.sparse_code.at(key).size()));
      } else {
        record_.note = "no code bytes to corrupt";
        return false;
      }
      const uint32_t bit = static_cast<uint32_t>(rng.below(8));
      // Writes overlapping the loader's watched code range bump the
      // memory's code generation, so stale decode-cache lines die here.
      mem.write8(addr, static_cast<uint8_t>(mem.read8(addr) ^ (1u << bit)));
      record_.applied = true;
      record_.address = addr;
      record_.bit = bit;
      record_.note = "code byte " + hex(addr) + " bit " + std::to_string(bit);
      return true;
    }

    case FaultSite::kTranslationEntry: {
      if (image.layout != binary::Layout::kVcfr ||
          image.tables.derand.empty()) {
        record_.note = "no translation tables (layout " +
                       std::string(image.layout == binary::Layout::kVcfr
                                       ? "vcfr, empty"
                                       : "not vcfr") +
                       ")";
        return false;
      }
      std::vector<uint32_t> keys;
      keys.reserve(image.tables.derand.size());
      for (const auto& [k, v] : image.tables.derand) keys.push_back(k);
      std::sort(keys.begin(), keys.end());
      const uint32_t key = keys[rng.below(keys.size())];
      const uint32_t bit = static_cast<uint32_t>(rng.below(32));
      image.tables.derand[key] ^= (1u << bit);
      // Refresh the serialized table bytes the DRC walks read and bump the
      // code generation — cached decodes of the old mapping are stale.
      binary::store_tables(image.tables, mem);
      record_.applied = true;
      record_.address = key;
      record_.bit = bit;
      record_.note =
          "derand[" + hex(key) + "] bit " + std::to_string(bit);
      return true;
    }

    case FaultSite::kRetSlot: {
      // Prefer a bitmap-marked slot (it is guaranteed to hold a return
      // address); fall back to the top-of-stack word for layouts without a
      // bitmap. Low-order bits only: a high-bit flip lands far outside the
      // code space and faults trivially on any layout — the adversarially
      // interesting corruption stays nearby.
      uint32_t addr = 0;
      const std::vector<uint32_t> slots = sorted_bitmap_slots(emu);
      if (!slots.empty()) {
        addr = slots[rng.below(slots.size())];
      } else {
        const uint32_t sp = emu.state().regs[isa::kSp];
        if (sp >= binary::kDefaultStackTop) {
          record_.note = "empty stack, no return slot";
          return false;
        }
        addr = sp;
      }
      const uint32_t bit = static_cast<uint32_t>(rng.below(12));
      mem.write32(addr, mem.read32(addr) ^ (1u << bit));
      record_.applied = true;
      record_.address = addr;
      record_.bit = bit;
      record_.note =
          "ret slot " + hex(addr) + " bit " + std::to_string(bit);
      return true;
    }

    case FaultSite::kRetBitmap: {
      const std::vector<uint32_t> slots = sorted_bitmap_slots(emu);
      if (slots.empty()) {
        record_.note = "ret bitmap empty";
        return false;
      }
      // Prefer marks covering the live stack (slot >= sp): a mark below
      // the stack pointer guards a frame that was already torn down, so
      // dropping it can never be consumed.
      const uint32_t sp = emu.state().regs[isa::kSp];
      std::vector<uint32_t> live;
      for (const uint32_t s : slots) {
        if (s >= sp) live.push_back(s);
      }
      const std::vector<uint32_t>& pool = live.empty() ? slots : live;
      const uint32_t slot = pool[rng.below(pool.size())];
      emu.corrupt_ret_bitmap(slot);
      record_.applied = true;
      record_.address = slot;
      record_.note = "ret-bitmap mark dropped for " + hex(slot);
      return true;
    }

    case FaultSite::kPayload: {
      // The attacker scans the *original* binary — they know original-
      // space gadget addresses, not the per-process placement secret.
      const binary::Image& scanned = original != nullptr ? *original : image;
      const gadget::ScanResult pool = gadget::scan(scanned);
      const std::vector<gadget::PayloadResult> payloads =
          gadget::compile_payloads(pool.gadgets);
      const gadget::PayloadResult* chosen = nullptr;
      for (const auto& p : payloads) {
        if (p.assembled) {
          chosen = &p;
          break;
        }
      }
      if (chosen == nullptr || chosen->chain.empty()) {
        record_.note = "no payload assembled";
        return false;
      }
      const std::vector<uint32_t>& chain = chosen->chain;
      const uint32_t entry = chain.front();
      record_.applied = true;
      record_.address = entry;
      record_.note = "payload '" + chosen->name + "' entry " + hex(entry);
      // Lay the chain out as a hijacked stack (cf. gadget::execute_chain):
      // the first word is what the victim's `ret` popped, the rest sit
      // above the stack pointer for the gadgets to consume.
      const uint32_t sp = binary::kDefaultStackTop -
                          static_cast<uint32_t>(chain.size()) * 4;
      for (size_t i = 1; i < chain.size(); ++i) {
        mem.write32(sp + static_cast<uint32_t>(i - 1) * 4, chain[i]);
      }
      emu.state().regs[isa::kSp] = sp;
      // The hijacked ret's transfer: under VCFR the attacker-supplied
      // value is an original-space address whose randomized tag blocks it
      // unless the location is in the failover set (§IV-A).
      if (image.layout == binary::Layout::kVcfr && image.in_code(entry) &&
          !image.tables.unrandomized.contains(entry) &&
          !image.tables.is_randomized_addr(entry)) {
        emu.raise_external(FaultKind::kTranslationMismatch, entry);
        record_.note += " (blocked at entry)";
        return true;
      }
      emu.state().pc = entry;
      return true;
    }
  }
  record_.note = "unknown site";
  return false;
}

void FaultInjector::save_state(binary::StateWriter& w) const {
  w.b(attempted_);
  w.b(record_.applied);
  w.u8(static_cast<uint8_t>(record_.site));
  w.u64(record_.at_instruction);
  w.u32(record_.address);
  w.u32(record_.bit);
  w.str(record_.note);
}

void FaultInjector::load_state(binary::StateReader& r) {
  attempted_ = r.b();
  record_.applied = r.b();
  record_.site = static_cast<FaultSite>(r.u8());
  record_.at_instruction = r.u64();
  record_.address = r.u32();
  record_.bit = r.u32();
  record_.note = r.str();
}

}  // namespace vcfr::fault
