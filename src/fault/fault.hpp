// Typed fault model — the dependability vocabulary shared by the
// emulator, the OS kernel, and the fault-injection campaign.
//
// The paper's core dependability claim (§V, §VI) is that instruction-
// granularity randomization turns control-flow corruption into *fast,
// detectable crashes* instead of silent hijacks. Measuring that requires
// a typed notion of "crash": every way the machine can stop is a
// FaultKind, every fault carries its architectural context in a Trap, and
// every process exit is an ExitStatus the kernel can act on (contain,
// restart with a fresh seed, or report). Free-form error strings are a
// rendering of this model, never the model itself.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace vcfr::fault {

/// Every architectural way execution can stop abnormally. Values are
/// stable (serialized into campaign JSON); append, never renumber.
enum class FaultKind : uint8_t {
  kNone = 0,
  /// Fetched bytes do not decode to an instruction (jump into data,
  /// unmapped memory, or mid-instruction after corruption).
  kBadOpcode = 1,
  /// Naive-ILR fetch with no fall-through successor mapping.
  kUnmappedFetch = 2,
  /// VCFR randomized-tag violation (§IV-A): a control transfer targeted
  /// an original-space address that was randomized away. This is the
  /// hardware's attack/corruption detector.
  kTranslationMismatch = 3,
  kDivideByZero = 4,
  /// `sys` with an unknown function byte.
  kBadSyscall = 5,
  /// Kernel watchdog: the process exceeded its instruction budget without
  /// halting (livelocked / runaway, e.g. a looping ROP chain).
  kWatchdog = 6,
  /// Live re-randomization attempted against a process that was never
  /// bound to a core (kernel misuse, surfaced as a typed fault instead of
  /// a bare exception).
  kRerandFailure = 7,
};

[[nodiscard]] std::string_view kind_name(FaultKind kind);

/// One architectural fault event. `detail` is kind-specific: the opcode
/// byte for kBadOpcode, the offending target address for
/// kTranslationMismatch/kUnmappedFetch, the function byte for
/// kBadSyscall, 0 otherwise.
struct Trap {
  FaultKind kind = FaultKind::kNone;
  uint32_t pc = 0;      // architectural PC of the faulting instruction
  uint32_t detail = 0;  // kind-specific operand (see above)
  /// Instruction index at which the trap fired (instructions retired
  /// before the fault) — the campaign's detection-latency clock.
  uint64_t instruction = 0;

  [[nodiscard]] bool ok() const { return kind == FaultKind::kNone; }

  /// Human-readable rendering, e.g.
  ///   "invalid opcode 0x7f (pc=0x4000123)"
  /// Deterministic; the CLI and reports print this, and legacy callers
  /// that still compare error strings keep working.
  [[nodiscard]] std::string describe() const;
};

/// How a process left the fleet (§IV-B containment model).
enum class ExitCode : uint8_t {
  kRunning = 0,       // still scheduled
  kHalted = 1,        // clean architectural halt
  kFaulted = 2,       // typed trap (see ExitStatus::trap)
  kWatchdogKill = 3,  // kernel killed it for exceeding the watchdog budget
  kBudget = 4,        // parked: per-process max_instructions exhausted
};

[[nodiscard]] std::string_view exit_name(ExitCode code);

/// The kernel-visible exit record: a typed code plus the trap that caused
/// it (trap.kind == kNone for clean exits).
struct ExitStatus {
  ExitCode code = ExitCode::kRunning;
  Trap trap;

  [[nodiscard]] bool crashed() const {
    return code == ExitCode::kFaulted || code == ExitCode::kWatchdogKill;
  }
};

}  // namespace vcfr::fault
