// Seeded fault injector: schedules one corruption at an exact instruction
// count and applies it against a live emulator/memory/image triple.
//
// The injector models the hardware-level disturbances the paper's
// dependability argument is about (§V, §VI): bit flips in translation-
// table entries, code bytes, and stack return-address slots, loss of a
// ret-bitmap mark, and whole attack-payload injection (a hijacked `ret`
// driving a ROP chain, reusing gadget::compile_payloads). Every choice —
// which entry, which byte, which bit — is drawn from a splitmix64 stream
// seeded by the plan, so a campaign trial is reproducible bit-for-bit.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "binary/image.hpp"
#include "binary/loader.hpp"
#include "emu/emulator.hpp"
#include "fault/fault.hpp"

namespace vcfr::binary {
class StateWriter;
class StateReader;
}  // namespace vcfr::binary

namespace vcfr::fault {

/// Where the corruption lands. Values are stable (serialized into
/// campaign JSON); append, never renumber.
enum class FaultSite : uint8_t {
  /// One bit of one code byte (in the loaded memory image).
  kCodeByte = 0,
  /// One bit of one de-randomization table value (kVcfr only). The
  /// serialized in-memory tables are refreshed so DRC walks see the
  /// corrupted entry too.
  kTranslationEntry = 1,
  /// One low-order bit of a stack slot holding a return address
  /// (bitmap-marked slot when one exists, else the top-of-stack word).
  kRetSlot = 2,
  /// One architectural ret-bitmap mark is dropped (kVcfr only).
  kRetBitmap = 3,
  /// Full attack: assemble a ROP payload from the image's gadgets and
  /// pivot execution onto it, as a hijacked `ret` would.
  kPayload = 4,
};

[[nodiscard]] std::string_view site_name(FaultSite site);
[[nodiscard]] std::optional<FaultSite> parse_site(std::string_view name);

/// One scheduled corruption.
struct FaultPlan {
  /// Fire once the victim has retired exactly this many instructions
  /// (the driver truncates its step/slice budget to stop on the boundary).
  uint64_t at_instruction = 0;
  FaultSite site = FaultSite::kCodeByte;
  /// Seeds the target/bit selection stream.
  uint64_t seed = 1;
};

/// What actually happened when the plan fired.
struct InjectionRecord {
  bool applied = false;
  FaultSite site = FaultSite::kCodeByte;
  /// Instructions the victim had retired when the corruption landed.
  uint64_t at_instruction = 0;
  /// Corrupted location: memory/table address, bitmap slot, or payload
  /// entry point.
  uint32_t address = 0;
  /// Bit index flipped (0 when the site is not a bit flip).
  uint32_t bit = 0;
  /// Deterministic one-line description for reports.
  std::string note;
};

class FaultInjector {
 public:
  explicit FaultInjector(const FaultPlan& plan) : plan_(plan) {}

  [[nodiscard]] const FaultPlan& plan() const { return plan_; }
  /// True once apply() ran (whether or not it found a target).
  [[nodiscard]] bool attempted() const { return attempted_; }
  [[nodiscard]] bool applied() const { return record_.applied; }
  [[nodiscard]] const InjectionRecord& record() const { return record_; }

  /// True when the plan should fire now (never after it was attempted).
  [[nodiscard]] bool due(uint64_t instructions_retired) const {
    return !attempted_ && instructions_retired >= plan_.at_instruction;
  }

  /// Applies the corruption to the running triple. `image` is the image
  /// the emulator executes (mutable: table corruption rewrites its
  /// tables); `mem` its loaded memory. `original` optionally names the
  /// original-layout binary — the payload site scans it (the attacker
  /// knows the *original* gadget addresses, which is exactly what VCFR's
  /// tag check defeats); when null the executing image is scanned.
  /// Returns record().applied. Idempotent: later calls are no-ops.
  bool apply(binary::Image& image, binary::Memory& mem, emu::Emulator& emu,
             const binary::Image* original = nullptr);

  /// Checkpoint support: whether the plan already fired and what it did.
  /// The plan itself is configuration and is re-supplied at construction.
  void save_state(binary::StateWriter& w) const;
  void load_state(binary::StateReader& r);

 private:
  FaultPlan plan_;
  bool attempted_ = false;
  InjectionRecord record_;
};

}  // namespace vcfr::fault
