#include "fault/campaign.hpp"

#include <algorithm>
#include <map>
#include <sstream>

#include "binary/loader.hpp"
#include "emu/emulator.hpp"
#include "rewriter/randomizer.hpp"
#include "telemetry/json_writer.hpp"
#include "workloads/suite.hpp"

namespace vcfr::fault {

namespace {

using telemetry::JsonWriter;
using telemetry::json_double;

constexpr uint64_t kMix = 0x9e3779b97f4a7c15ull;

/// Deterministic seed combiner (splitmix64 finalizer over a running mix).
uint64_t mix(uint64_t a, uint64_t b) {
  uint64_t z = a + kMix * (b + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

void counts_json(JsonWriter& w, const OutcomeCounts& c) {
  w.begin_object();
  w.key("trials").value(c.trials);
  w.key("applied").value(c.applied);
  w.key("detected").value(c.detected);
  w.key("silent").value(c.silent);
  w.key("benign").value(c.benign);
  w.key("hung").value(c.hung);
  w.key("detection_rate").raw_value(json_double(c.detection_rate()));
  w.key("silent_rate").raw_value(json_double(c.silent_rate()));
  w.key("containment_rate").raw_value(json_double(c.containment_rate()));
  w.end_object();
}

}  // namespace

std::string_view layout_name(binary::Layout layout) {
  switch (layout) {
    case binary::Layout::kOriginal: return "native";
    case binary::Layout::kNaiveIlr: return "naive_ilr";
    case binary::Layout::kVcfr: return "vcfr";
  }
  return "unknown";
}

std::string_view outcome_name(TrialOutcome outcome) {
  switch (outcome) {
    case TrialOutcome::kNotApplied: return "not_applied";
    case TrialOutcome::kDetected: return "detected";
    case TrialOutcome::kSilent: return "silent";
    case TrialOutcome::kBenign: return "benign";
    case TrialOutcome::kHung: return "hung";
  }
  return "unknown";
}

const OutcomeCounts* CampaignReport::layout_counts(
    std::string_view name) const {
  for (const auto& [n, counts] : by_layout) {
    if (n == name) return &counts;
  }
  return nullptr;
}

CampaignReport run_campaign(const CampaignConfig& config,
                            telemetry::StatRegistry* registry) {
  CampaignReport report;
  report.config = config;
  report.latency_buckets.assign(32, 0);
  for (const binary::Layout layout : config.layouts) {
    report.by_layout.emplace_back(std::string(layout_name(layout)),
                                  OutcomeCounts{});
  }
  for (const FaultSite site : config.sites) {
    report.by_site.emplace_back(std::string(site_name(site)),
                                OutcomeCounts{});
  }
  std::map<std::string, uint64_t> kinds;
  std::map<std::string, uint64_t> applied_by_site;

  for (size_t wi = 0; wi < config.workloads.size(); ++wi) {
    const std::string& name = config.workloads[wi];
    const binary::Image base = workloads::make(name, config.scale);
    for (size_t li = 0; li < config.layouts.size(); ++li) {
      const binary::Layout layout = config.layouts[li];
      const std::string lname(layout_name(layout));

      // Build the layout under test. The randomization seed is per
      // (campaign, workload) — the same placement every trial corrupts.
      binary::Image image;
      if (layout == binary::Layout::kOriginal) {
        image = base;
      } else {
        rewriter::RandomizeOptions options;
        options.seed = mix(config.seed, wi);
        const rewriter::RandomizeResult rr = rewriter::randomize(base, options);
        image = layout == binary::Layout::kNaiveIlr ? rr.naive : rr.vcfr;
      }
      const bool enforce = layout == binary::Layout::kVcfr;

      emu::RunLimits limits;
      limits.max_instructions = config.max_instructions;
      limits.enforce_tags = enforce;

      // Uninjected reference: defines the clean output and the window of
      // valid injection points.
      const emu::RunResult ref = emu::run_image(image, limits);
      if (!ref.halted || ref.stats.instructions < 2) {
        report.skipped.push_back(name + "/" + lname);
        continue;
      }

      for (size_t si = 0; si < config.sites.size(); ++si) {
        const FaultSite site = config.sites[si];
        OutcomeCounts& site_counts = report.by_site[si].second;
        OutcomeCounts& layout_counts = report.by_layout[li].second;
        for (uint32_t trial = 0; trial < config.trials; ++trial) {
          const uint64_t tseed =
              mix(mix(mix(config.seed, wi), li * 8 + si), trial);
          FaultPlan plan;
          plan.site = site;
          plan.seed = tseed;
          plan.at_instruction = 1 + mix(tseed, 0xfau) %
                                        (ref.stats.instructions - 1);

          TrialRecord rec;
          rec.workload = name;
          rec.layout = lname;
          rec.site = site;
          rec.trial = trial;
          rec.injected_at = plan.at_instruction;

          binary::Image victim = image;  // table corruption mutates it
          binary::Memory mem;
          binary::load(victim, mem);
          emu::Emulator emu(victim, mem);
          emu.set_enforce_tags(enforce);
          // Replay the clean prefix to the exact injection point.
          while (emu.stats().instructions < plan.at_instruction &&
                 emu.step()) {
          }

          FaultInjector injector(plan);
          injector.apply(victim, mem, emu, &base);
          rec.applied = injector.applied();
          rec.note = injector.record().note;

          ++report.total.trials;
          ++site_counts.trials;
          ++layout_counts.trials;
          if (!rec.applied) {
            rec.outcome = TrialOutcome::kNotApplied;
            if (config.keep_trials) report.trials.push_back(rec);
            continue;
          }
          ++report.total.applied;
          ++site_counts.applied;
          ++layout_counts.applied;
          ++applied_by_site[std::string(site_name(site))];

          emu.run(limits);
          // A payload trial that traps only *after* the hijacked transfer
          // is a successful attack — gadgets ran with attacker-chosen
          // operands before anything noticed. Blocking means trapping at
          // the transfer itself (§IV-A), so only a zero-latency trap
          // counts as detected; a later crash is the compromise the paper
          // calls silent (the crash is the attack's residue, not a
          // detection).
          const bool hijack_escaped =
              site == FaultSite::kPayload && emu.faulted() &&
              emu.trap().instruction > plan.at_instruction;
          if (emu.faulted() && !hijack_escaped) {
            rec.outcome = TrialOutcome::kDetected;
            rec.kind = emu.trap().kind;
            rec.latency = emu.trap().instruction - plan.at_instruction;
            ++report.total.detected;
            ++site_counts.detected;
            ++layout_counts.detected;
            ++kinds[std::string(kind_name(rec.kind))];
            const uint32_t bucket = std::min<uint32_t>(
                telemetry::Histogram::bucket_of(rec.latency),
                static_cast<uint32_t>(report.latency_buckets.size()) - 1);
            ++report.latency_buckets[bucket];
            ++report.latency_count;
            report.latency_sum += rec.latency;
            report.latency_max = std::max(report.latency_max, rec.latency);
          } else if (emu.halted() || hijack_escaped) {
            if (hijack_escaped) rec.note += " (gadget chain executed)";
            const bool clean = !hijack_escaped && emu.output() == ref.output;
            rec.outcome =
                clean ? TrialOutcome::kBenign : TrialOutcome::kSilent;
            if (clean) {
              ++report.total.benign;
              ++site_counts.benign;
              ++layout_counts.benign;
            } else {
              ++report.total.silent;
              ++site_counts.silent;
              ++layout_counts.silent;
            }
          } else {
            // Budget exhausted without halt or trap — the kernel's
            // watchdog kill (§IV-B containment).
            rec.outcome = TrialOutcome::kHung;
            rec.kind = FaultKind::kWatchdog;
            ++report.total.hung;
            ++site_counts.hung;
            ++layout_counts.hung;
          }
          if (config.keep_trials) report.trials.push_back(rec);
        }
      }
    }
  }
  for (const auto& [k, v] : kinds) report.by_kind.emplace_back(k, v);

  if (registry != nullptr) {
    const telemetry::Scope scope = registry->root().scope("fault");
    for (const auto& [sname, count] : applied_by_site) {
      const uint64_t n = count;
      scope.counter_fn("injected." + sname, [n] { return n; });
    }
    const OutcomeCounts t = report.total;
    scope.counter_fn("trials", [t] { return t.trials; });
    scope.counter_fn("detected", [t] { return t.detected; });
    scope.counter_fn("silent", [t] { return t.silent; });
    scope.counter_fn("benign", [t] { return t.benign; });
    scope.counter_fn("hung", [t] { return t.hung; });
    telemetry::Histogram* hist = scope.histogram("detect_latency");
    if (hist != nullptr) {
      for (const TrialRecord& rec : report.trials) {
        if (rec.outcome == TrialOutcome::kDetected) hist->record(rec.latency);
      }
    }
  }
  return report;
}

std::string CampaignReport::to_json() const {
  JsonWriter w;
  constexpr JsonWriter::Style kPretty = JsonWriter::Style::kPretty;
  w.begin_object(kPretty);

  w.key("config").begin_object();
  w.key("workloads").begin_array();
  for (const auto& n : config.workloads) w.value(n);
  w.end_array();
  w.key("scale").value(static_cast<uint64_t>(config.scale));
  w.key("layouts").begin_array();
  for (const binary::Layout l : config.layouts) {
    w.value(std::string(layout_name(l)));
  }
  w.end_array();
  w.key("sites").begin_array();
  for (const FaultSite s : config.sites) w.value(std::string(site_name(s)));
  w.end_array();
  w.key("trials").value(static_cast<uint64_t>(config.trials));
  w.key("seed").value(config.seed);
  w.key("max_instructions").value(config.max_instructions);
  w.end_object();

  w.key("total");
  counts_json(w, total);

  w.key("by_layout").begin_object(kPretty);
  for (const auto& [name, counts] : by_layout) {
    w.key(name);
    counts_json(w, counts);
  }
  w.end_object();

  w.key("by_site").begin_object(kPretty);
  for (const auto& [name, counts] : by_site) {
    w.key(name);
    counts_json(w, counts);
  }
  w.end_object();

  w.key("by_kind").begin_object();
  for (const auto& [name, count] : by_kind) w.key(name).value(count);
  w.end_object();

  w.key("detect_latency").begin_object();
  w.key("count").value(latency_count);
  w.key("sum").value(latency_sum);
  w.key("max").value(latency_max);
  w.key("mean").raw_value(json_double(
      latency_count == 0 ? 0.0
                         : static_cast<double>(latency_sum) /
                               static_cast<double>(latency_count)));
  w.key("buckets").begin_array();
  for (const uint64_t b : latency_buckets) w.value(b);
  w.end_array();
  w.end_object();

  w.key("skipped").begin_array();
  for (const auto& s : skipped) w.value(s);
  w.end_array();

  w.key("trials").begin_array(kPretty);
  for (const auto& t : trials) {
    w.begin_object();
    w.key("workload").value(t.workload);
    w.key("layout").value(t.layout);
    w.key("site").value(std::string(site_name(t.site)));
    w.key("trial").value(static_cast<uint64_t>(t.trial));
    w.key("at").value(t.injected_at);
    w.key("applied").value(t.applied);
    w.key("outcome").value(std::string(outcome_name(t.outcome)));
    w.key("kind").value(std::string(kind_name(t.kind)));
    w.key("latency").value(t.latency);
    w.key("note").value(t.note);
    w.end_object();
  }
  w.end_array();

  w.end_object();
  return w.str() + "\n";
}

std::string CampaignReport::summary() const {
  std::ostringstream o;
  o << "faultcamp: " << total.trials << " trials, " << total.applied
    << " applied; detected " << total.detected << " (rate "
    << json_double(total.detection_rate()) << "), silent " << total.silent
    << " (rate " << json_double(total.silent_rate()) << "), benign "
    << total.benign << ", hung " << total.hung << "\n";
  for (const auto& [name, c] : by_layout) {
    o << "  " << name << ": detection " << json_double(c.detection_rate())
      << ", silent " << json_double(c.silent_rate()) << ", containment "
      << json_double(c.containment_rate()) << " (" << c.applied
      << " applied)\n";
  }
  if (latency_count != 0) {
    o << "  detect latency: mean "
      << json_double(static_cast<double>(latency_sum) /
                     static_cast<double>(latency_count))
      << " instr, max " << latency_max << " (" << latency_count
      << " samples)\n";
  }
  return o.str();
}

}  // namespace vcfr::fault
