#include "fault/fault.hpp"

#include <cstdio>

namespace vcfr::fault {

namespace {

std::string hex(uint32_t v) {
  char buf[16];
  std::snprintf(buf, sizeof buf, "0x%x", v);
  return buf;
}

}  // namespace

std::string_view kind_name(FaultKind kind) {
  switch (kind) {
    case FaultKind::kNone: return "none";
    case FaultKind::kBadOpcode: return "bad_opcode";
    case FaultKind::kUnmappedFetch: return "unmapped_fetch";
    case FaultKind::kTranslationMismatch: return "translation_mismatch";
    case FaultKind::kDivideByZero: return "div0";
    case FaultKind::kBadSyscall: return "bad_syscall";
    case FaultKind::kWatchdog: return "watchdog";
    case FaultKind::kRerandFailure: return "rerand_failure";
  }
  return "unknown";
}

std::string Trap::describe() const {
  // The phrasings predate the typed model (tests and the CLI match on
  // them); keep them byte-stable.
  std::string msg;
  switch (kind) {
    case FaultKind::kNone:
      return "";
    case FaultKind::kBadOpcode:
      msg = "invalid opcode " + hex(detail);
      break;
    case FaultKind::kUnmappedFetch:
      msg = "missing fall-through successor";
      break;
    case FaultKind::kTranslationMismatch:
      msg = "randomized-tag violation: transfer to " + hex(detail);
      break;
    case FaultKind::kDivideByZero:
      msg = "division by zero";
      break;
    case FaultKind::kBadSyscall:
      msg = "unknown sys function " + std::to_string(detail);
      break;
    case FaultKind::kWatchdog:
      msg = "watchdog: instruction budget exceeded";
      break;
    case FaultKind::kRerandFailure:
      msg = "rerandomize before bind()";
      break;
  }
  return msg + " (pc=" + hex(pc) + ")";
}

std::string_view exit_name(ExitCode code) {
  switch (code) {
    case ExitCode::kRunning: return "running";
    case ExitCode::kHalted: return "halted";
    case ExitCode::kFaulted: return "faulted";
    case ExitCode::kWatchdogKill: return "watchdog_kill";
    case ExitCode::kBudget: return "budget";
  }
  return "unknown";
}

}  // namespace vcfr::fault
