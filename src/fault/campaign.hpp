// Dependability campaign (§V, §VI): sweep seeded corruptions over
// workloads × layouts × fault sites and classify every trial.
//
// Each trial replays a workload to a seeded injection point, applies one
// corruption (FaultInjector), runs to completion under an instruction
// budget, and compares against the uninjected reference run:
//
//   detected  — a typed trap fired (detection latency = instructions from
//               injection to trap);
//   silent    — the run halted "cleanly" but produced wrong output: the
//               corruption was consumed without any fault (the paper's
//               silent-hijack case);
//   benign    — halted with bit-identical output (corruption masked);
//   hung      — neither halted nor trapped within the budget (a watchdog
//               would kill it — livelock / runaway chain).
//
// The report is deterministic for a fixed config: detection / silent /
// containment rates per layout and a log2 detection-latency histogram,
// reproducing the paper's dependability argument quantitatively (VCFR
// turns corruption into fast detected crashes; native lets it run).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "binary/image.hpp"
#include "fault/fault.hpp"
#include "fault/injector.hpp"
#include "telemetry/stat_registry.hpp"

namespace vcfr::fault {

struct CampaignConfig {
  std::vector<std::string> workloads = {"bzip2", "libquantum"};
  int scale = 0;
  std::vector<binary::Layout> layouts = {binary::Layout::kOriginal,
                                         binary::Layout::kNaiveIlr,
                                         binary::Layout::kVcfr};
  std::vector<FaultSite> sites = {
      FaultSite::kCodeByte, FaultSite::kTranslationEntry,
      FaultSite::kRetSlot, FaultSite::kRetBitmap, FaultSite::kPayload};
  /// Injections per (workload, layout, site) cell.
  uint32_t trials = 4;
  uint64_t seed = 1;
  /// Per-trial instruction budget; exceeding it classifies as hung.
  uint64_t max_instructions = 5'000'000;
  /// Keep every per-trial record in the report (summaries are always
  /// kept).
  bool keep_trials = true;
};

/// Report name for a layout: "native" | "naive_ilr" | "vcfr".
[[nodiscard]] std::string_view layout_name(binary::Layout layout);

enum class TrialOutcome : uint8_t {
  kNotApplied = 0,  // the site had no target (e.g. tables on native)
  kDetected = 1,
  kSilent = 2,
  kBenign = 3,
  kHung = 4,
};

[[nodiscard]] std::string_view outcome_name(TrialOutcome outcome);

struct TrialRecord {
  std::string workload;
  std::string layout;
  FaultSite site = FaultSite::kCodeByte;
  uint32_t trial = 0;
  uint64_t injected_at = 0;
  bool applied = false;
  TrialOutcome outcome = TrialOutcome::kNotApplied;
  /// Trap kind for detected trials (kWatchdog for hung ones).
  FaultKind kind = FaultKind::kNone;
  /// Instructions from injection to trap (detected trials only).
  uint64_t latency = 0;
  std::string note;
};

struct OutcomeCounts {
  uint64_t trials = 0;
  uint64_t applied = 0;
  uint64_t detected = 0;
  uint64_t silent = 0;
  uint64_t benign = 0;
  uint64_t hung = 0;

  [[nodiscard]] double detection_rate() const {
    return applied == 0 ? 0.0
                        : static_cast<double>(detected) /
                              static_cast<double>(applied);
  }
  [[nodiscard]] double silent_rate() const {
    return applied == 0 ? 0.0
                        : static_cast<double>(silent) /
                              static_cast<double>(applied);
  }
  /// Fraction of applied corruptions that did NOT end as silent wrong
  /// output — detected, masked, or stopped by the budget.
  [[nodiscard]] double containment_rate() const {
    return applied == 0 ? 0.0 : 1.0 - silent_rate();
  }
};

struct CampaignReport {
  CampaignConfig config;
  OutcomeCounts total;
  /// Aggregates in config order (layout / site names as report strings).
  std::vector<std::pair<std::string, OutcomeCounts>> by_layout;
  std::vector<std::pair<std::string, OutcomeCounts>> by_site;
  /// Detected-trap kinds, name -> count (sorted by name in the JSON).
  std::vector<std::pair<std::string, uint64_t>> by_kind;
  /// Log2 detection-latency histogram (telemetry::Histogram bucketing:
  /// bucket 0 = zero latency, bucket i >= 1 = [2^(i-1), 2^i)).
  std::vector<uint64_t> latency_buckets;
  uint64_t latency_count = 0;
  uint64_t latency_sum = 0;
  uint64_t latency_max = 0;
  /// (workload, layout) cells skipped because the reference run did not
  /// halt within the budget.
  std::vector<std::string> skipped;
  std::vector<TrialRecord> trials;

  [[nodiscard]] const OutcomeCounts* layout_counts(
      std::string_view name) const;

  /// Deterministic JSON (fixed key order, %.6g doubles, no wall-clock).
  [[nodiscard]] std::string to_json() const;
  /// Short human digest for the CLI.
  [[nodiscard]] std::string summary() const;
};

/// Runs the sweep. When `registry` is non-null the campaign registers
/// fault.injected.<site>, fault.trials/detected/silent/benign/hung
/// counters and the fault.detect_latency histogram (see
/// docs/OBSERVABILITY.md).
[[nodiscard]] CampaignReport run_campaign(
    const CampaignConfig& config,
    telemetry::StatRegistry* registry = nullptr);

}  // namespace vcfr::fault
