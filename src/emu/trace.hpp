// Execution tracer: formats the golden-model instruction stream for
// debugging randomized binaries (the `vcfr trace` CLI subcommand).
//
// Each line shows the architectural (randomized-space) PC, the fetch
// (original-space) PC when they differ, the disassembled instruction, and
// VCFR translation events:
//
//   40000f12 -> 00001024  callr r6        [derand 40000a80]
#pragma once

#include <cstdint>
#include <string>

#include "binary/image.hpp"

namespace vcfr::emu {

struct TraceOptions {
  uint64_t max_steps = 64;
  bool show_registers = false;  // append changed-register values
};

/// Runs `image` from its entry point and returns the formatted trace.
/// Stops at halt, fault (the fault message becomes the last line), or
/// `max_steps`.
[[nodiscard]] std::string trace(const binary::Image& image,
                                const TraceOptions& options = {});

}  // namespace vcfr::emu
