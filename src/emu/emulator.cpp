#include "emu/emulator.hpp"

#include <algorithm>

#include "binary/state_io.hpp"
#include "isa/encoding.hpp"
#include "profile/profiler.hpp"

namespace vcfr::emu {

using binary::Layout;
using isa::Cond;
using isa::Instr;
using isa::Op;

Emulator::Emulator(const binary::Image& image, binary::Memory& mem)
    : image_(image), mem_(mem), dcache_(1u << kDecodeCacheBits) {
  state_.pc = image.entry;
  if (image.layout == Layout::kNaiveIlr || image.layout == Layout::kVcfr) {
    // Entry point expressed in the randomized space when it was randomized.
    state_.pc = image.tables.to_randomized(image.entry);
    if (image.layout == Layout::kNaiveIlr) {
      // Naive images carry their mapping implicitly in the relocated code;
      // the randomizer stores the randomized entry in image.entry already.
      state_.pc = image.entry;
    }
  }
  state_.regs[isa::kSp] = binary::kDefaultStackTop;
  // Any write into the fetched-from region must invalidate cached decodes.
  if (image.layout == Layout::kNaiveIlr) {
    mem_.watch_code(image.rand_base, image.rand_size);
  } else {
    mem_.watch_code(image.code_base,
                    static_cast<uint32_t>(image.code.size()));
  }
}

void Emulator::raise(fault::FaultKind kind, uint32_t detail) {
  trap_.kind = kind;
  trap_.pc = state_.pc;
  trap_.detail = detail;
  trap_.instruction = stats_.instructions;
  error_ = trap_.describe();
}

uint32_t Emulator::to_upc(uint32_t rpc) const {
  if (image_.layout == Layout::kVcfr) return image_.tables.to_original(rpc);
  return rpc;  // original and naive-ILR: bytes live at the architectural pc
}

uint32_t Emulator::sequential_next(uint32_t rpc, uint32_t upc,
                                   uint8_t len) const {
  switch (image_.layout) {
    case Layout::kOriginal:
      return rpc + len;
    case Layout::kNaiveIlr: {
      auto it = image_.fallthrough.find(rpc);
      return it == image_.fallthrough.end() ? 0 : it->second;
    }
    case Layout::kVcfr:
      // Architectural successor is the randomized image of upc+len; the
      // hardware streams along UPC and never materializes this unless
      // needed, but the golden model keeps RPC exact.
      return image_.tables.to_randomized(upc + len);
  }
  return rpc + len;
}

void Emulator::set_flags_logic(uint32_t result) {
  state_.zf = result == 0;
  state_.nf = (result >> 31) != 0;
  state_.cf = false;
  state_.vf = false;
}

void Emulator::set_flags_sub(uint32_t a, uint32_t b) {
  const uint32_t r = a - b;
  state_.zf = r == 0;
  state_.nf = (r >> 31) != 0;
  state_.cf = a < b;  // borrow
  state_.vf = (((a ^ b) & (a ^ r)) >> 31) != 0;
}

bool Emulator::eval_cond(Cond cond) const {
  switch (cond) {
    case Cond::kEq: return state_.zf;
    case Cond::kNe: return !state_.zf;
    case Cond::kLt: return state_.nf != state_.vf;
    case Cond::kLe: return state_.zf || state_.nf != state_.vf;
    case Cond::kGt: return !state_.zf && state_.nf == state_.vf;
    case Cond::kGe: return state_.nf == state_.vf;
    case Cond::kB: return state_.cf;
    case Cond::kAe: return !state_.cf;
  }
  return false;
}

void Emulator::push32(uint32_t value) {
  state_.regs[isa::kSp] -= 4;
  const uint32_t sp = state_.regs[isa::kSp];
  mem_.write32(sp, value);
  ret_bitmap_.erase(sp);  // plain store overwrites any stale mark
}

uint32_t Emulator::pop32() {
  const uint32_t sp = state_.regs[isa::kSp];
  state_.regs[isa::kSp] = sp + 4;
  return mem_.read32(sp);
}

void Emulator::taint_sink(LeakSink sink, const TaintTag& tag,
                          uint32_t sink_rpc) {
  if (!tag.tainted) return;
  ++taint_stats_.leaks;
  if (leaks_.size() >= kMaxLeakRecords) return;
  LeakRecord rec;
  rec.origin = tag.origin;
  rec.origin_rpc = tag.origin_rpc;
  rec.epoch = taint_epoch_;
  rec.depth = tag.depth;
  rec.sink = sink;
  rec.sink_rpc = sink_rpc;
  rec.instruction = stats_.instructions;  // 0-based index of the sink
  leaks_.push_back(rec);
}

void Emulator::track_taint(const StepInfo& si, const Instr& in) {
  TaintStats& st = taint_stats_;
  const auto note_depth = [&](const TaintTag& t) {
    if (t.depth > st.max_depth) st.max_depth = t.depth;
  };
  // Every data-flow hop (move, load, store, ALU combine) is one more
  // propagation step away from the source.
  const auto bump = [](TaintTag t) {
    if (t.tainted) ++t.depth;
    return t;
  };
  // Two-source combine keeps the deeper chain (deterministic tiebreak:
  // the destination's own tag wins at equal depth).
  const auto combine = [](const TaintTag& a, const TaintTag& b) {
    if (!a.tainted) return b;
    if (!b.tainted) return a;
    return a.depth >= b.depth ? a : b;
  };
  const auto set_reg = [&](uint8_t rd, const TaintTag& t) {
    if (t.tainted) {
      ++st.propagations;
      note_depth(t);
      reg_taint_[rd] = t;
    } else {
      reg_taint_[rd].tainted = false;
    }
  };
  // Word granularity: a tainted byte taints its whole word.
  const auto mem_at = [&](uint32_t addr) -> TaintTag {
    const auto it = mem_taint_.find(addr & ~3u);
    return it == mem_taint_.end() ? TaintTag{} : it->second;
  };
  const auto set_mem = [&](uint32_t addr, const TaintTag& t) {
    if (t.tainted) {
      ++st.propagations;
      note_depth(t);
      mem_taint_[addr & ~3u] = t;
    } else {
      mem_taint_.erase(addr & ~3u);
    }
  };
  const auto seed_mem = [&](uint32_t addr, TaintOrigin origin,
                            uint32_t value) {
    ++st.sources;
    mem_taint_[addr & ~3u] = TaintTag{true, origin, value, 0};
  };

  switch (in.op) {
    case Op::kOut:
      taint_sink(LeakSink::kOut, reg_taint_[in.rd], si.rpc);
      break;
    case Op::kSys:
      if (in.imm == 1) taint_sink(LeakSink::kSys, reg_taint_[0], si.rpc);
      break;
    case Op::kMovRR:
      set_reg(in.rd, bump(reg_taint_[in.rs]));
      break;
    case Op::kMovRI:
      set_reg(in.rd, TaintTag{});
      break;
    case Op::kLd: {
      // §IV-C auto-de-randomization strips the secret: the loaded value is
      // the original-space address, not randomized-layout information.
      TaintTag t = si.bitmap_load
                       ? TaintTag{}
                       : combine(mem_at(si.mem_addr), mem_at(si.mem_addr + 3));
      set_reg(in.rd, bump(t));
      break;
    }
    case Op::kLdb:
      set_reg(in.rd, bump(mem_at(si.mem_addr)));
      break;
    case Op::kSt: {
      const TaintTag t = bump(reg_taint_[in.rd]);
      if (t.tainted) {
        set_mem(si.mem_addr, t);
        if (((si.mem_addr + 3) & ~3u) != (si.mem_addr & ~3u)) {
          set_mem(si.mem_addr + 3, t);
        }
      } else if ((si.mem_addr & 3u) == 0) {
        set_mem(si.mem_addr, TaintTag{});  // word fully overwritten
      }
      break;
    }
    case Op::kStb:
      // A clean byte store cannot untaint the rest of its word.
      if (reg_taint_[in.rd].tainted) {
        set_mem(si.mem_addr, bump(reg_taint_[in.rd]));
      }
      break;
    case Op::kAddRR:
    case Op::kSubRR:
    case Op::kAndRR:
    case Op::kOrRR:
    case Op::kXorRR:
    case Op::kShlRR:
    case Op::kShrRR:
    case Op::kMulRR:
    case Op::kDivRR:
      set_reg(in.rd, bump(combine(reg_taint_[in.rd], reg_taint_[in.rs])));
      break;
    case Op::kAddRI:
    case Op::kSubRI:
    case Op::kAndRI:
    case Op::kOrRI:
    case Op::kXorRI:
    case Op::kShlRI:
    case Op::kShrRI:
    case Op::kMulRI:
      set_reg(in.rd, bump(reg_taint_[in.rd]));
      break;
    case Op::kPushR:
      set_mem(si.mem_addr, bump(reg_taint_[in.rd]));
      break;
    case Op::kPushI:
      if (image_.layout == Layout::kVcfr &&
          image_.tables.is_randomized_addr(in.imm)) {
        seed_mem(si.mem_addr, TaintOrigin::kSwRandPush, in.imm);
      } else {
        set_mem(si.mem_addr, TaintTag{});
      }
      break;
    case Op::kPopR: {
      // Pop reads but does not clear the word (the bytes survive below sp
      // until overwritten — exactly the survivability a leak hunts for).
      const TaintTag t =
          si.bitmap_load ? TaintTag{} : bump(mem_at(si.mem_addr));
      set_reg(in.rd, t);
      break;
    }
    case Op::kCall:
    case Op::kCallR:
      if (si.needs_rand) {
        // The hardware just pushed a randomized return address — the
        // canonical layout secret (and the leaky-server target).
        seed_mem(si.mem_addr, TaintOrigin::kRetPush, si.call_push_value);
      } else {
        set_mem(si.mem_addr, TaintTag{});
      }
      break;
    default:
      break;  // nop/halt/jmp/jcc/jmpr/ret/cmp/test: no data-flow change
  }
}

bool Emulator::step(StepInfo* info) {
  if (halted_ || !trap_.ok()) return false;

  const uint32_t rpc = state_.pc;
  uint32_t upc;
  Instr in;
  uint32_t next;

  // Decoded-instruction cache: the fetch/decode/translate front half of a
  // step is a pure function of (rpc, code bytes, tables). The image and
  // its tables are immutable for this emulator's lifetime, so a cached
  // entry is valid exactly while the memory's code generation is
  // unchanged since fill.
  DecodedEntry* slot = nullptr;
  const uint64_t gen = mem_.code_version();
  if (dcache_on_) {
    const uint32_t idx =
        (rpc * 0x9e3779b9u) >> (32 - kDecodeCacheBits);
    slot = &dcache_[idx];
    bool hit = slot->rpc == rpc && slot->gen == gen && rpc != 0xffffffffu;
    if (!hit && rerand_note_ && slot->rpc == rpc && rpc != 0xffffffffu &&
        slot->gen == rerand_prev_gen_ && gen == rerand_new_gen_ &&
        !rerand_dirty_.contains(rpc)) {
      // Epoch promotion: the incremental re-randomization left this rpc's
      // translation, bytes, and sequential successor untouched.
      slot->gen = gen;
      ++dcache_stats_.rerand_promotions;
      hit = true;
    }
    if (hit) {
      ++dcache_stats_.hits;
    } else {
      if (slot->rpc != 0xffffffffu && slot->gen != gen) {
        ++dcache_stats_.invalidations;
      }
      ++dcache_stats_.misses;
      slot->rpc = 0xffffffffu;  // re-filled below on a clean decode
    }
  }

  if (slot != nullptr && slot->rpc == rpc) {
    upc = slot->upc;
    in = slot->instr;
    next = slot->seq_next;
  } else {
    upc = to_upc(rpc);
    uint8_t buf[isa::kMaxInstrLength];
    mem_.read_block(upc, buf, sizeof buf);
    const auto decoded =
        isa::decode(std::span<const uint8_t>(buf, sizeof buf));
    if (!decoded) {
      raise(fault::FaultKind::kBadOpcode, buf[0]);
      return false;
    }
    in = *decoded;
    next = sequential_next(rpc, upc, in.length);
    if (slot != nullptr && rpc != 0xffffffffu) {
      *slot = DecodedEntry{rpc, upc, next, gen, in};
    }
  }

  StepInfo local;
  StepInfo& si = info ? *info : local;
  si = StepInfo{};
  si.rpc = rpc;
  si.upc = upc;
  si.instr = in;

  const bool vcfr = image_.layout == Layout::kVcfr;
  auto& tables = image_.tables;
  auto& regs = state_.regs;

  if (image_.layout == Layout::kNaiveIlr && next == 0 && in.has_fallthrough()) {
    raise(fault::FaultKind::kUnmappedFetch, rpc);
    return false;
  }

  // Records a de-randomizing transfer: architectural target `target_rand`
  // (randomized space), execution continues at its original-space image.
  bool tag_fault = false;
  auto transfer_to = [&](uint32_t target_rand) {
    si.is_taken_transfer = true;
    if (vcfr) {
      si.needs_derand = true;
      si.derand_key = target_rand;
      ++stats_.derand_events;
      if (!tables.is_randomized_addr(target_rand)) {
        // Target expressed in original space. Legal only for the failover
        // (un-randomized) set; anything else would trip the randomized tag.
        auto it = tables.rand.find(target_rand);
        if (it != tables.rand.end() && it->second != target_rand &&
            !tables.unrandomized.contains(target_rand)) {
          ++stats_.tag_violations;
        }
        if (enforce_tags_ && image_.in_code(target_rand) &&
            !tables.unrandomized.contains(target_rand)) {
          tag_fault = true;  // §IV-A: jumps to tagged locations prohibited
        }
      }
    }
    next = target_rand;
  };

  switch (in.op) {
    case Op::kNop:
      break;
    case Op::kHalt:
      halted_ = true;
      break;
    case Op::kSys:
      if (in.imm == 0) {
        halted_ = true;
      } else if (in.imm == 1) {
        if (output_.size() < max_output_) output_.push_back(regs[0]);
      } else {
        raise(fault::FaultKind::kBadSyscall, in.imm);
        return false;
      }
      break;
    case Op::kOut:
      if (output_.size() < max_output_) output_.push_back(regs[in.rd]);
      break;
    case Op::kMovRR:
      regs[in.rd] = regs[in.rs];
      break;
    case Op::kMovRI:
      regs[in.rd] = in.imm;
      break;
    case Op::kLd:
    case Op::kLdb: {
      const uint32_t addr = regs[in.rs] + static_cast<uint32_t>(in.disp);
      si.has_mem = true;
      si.mem_addr = addr;
      uint32_t value = in.op == Op::kLd ? mem_.read32(addr) : mem_.read8(addr);
      if (vcfr && in.op == Op::kLd && ret_bitmap_.contains(addr)) {
        // §IV-C: direct fetch of a randomized return address is
        // automatically de-randomized by the hardware.
        value = tables.to_original(value);
        si.bitmap_load = true;
        ++stats_.bitmap_autoderand_loads;
      }
      regs[in.rd] = value;
      break;
    }
    case Op::kSt:
    case Op::kStb: {
      const uint32_t addr = regs[in.rs] + static_cast<uint32_t>(in.disp);
      si.has_mem = true;
      si.mem_addr = addr;
      si.mem_is_store = true;
      if (in.op == Op::kSt) {
        mem_.write32(addr, regs[in.rd]);
      } else {
        mem_.write8(addr, static_cast<uint8_t>(regs[in.rd]));
      }
      ret_bitmap_.erase(addr);
      break;
    }
    case Op::kAddRR:
    case Op::kAddRI: {
      const uint32_t b = in.op == Op::kAddRR ? regs[in.rs] : in.imm;
      const uint32_t a = regs[in.rd];
      const uint32_t r = a + b;
      state_.zf = r == 0;
      state_.nf = (r >> 31) != 0;
      state_.cf = r < a;
      state_.vf = ((~(a ^ b) & (a ^ r)) >> 31) != 0;
      regs[in.rd] = r;
      break;
    }
    case Op::kSubRR:
    case Op::kSubRI: {
      const uint32_t b = in.op == Op::kSubRR ? regs[in.rs] : in.imm;
      const uint32_t a = regs[in.rd];
      set_flags_sub(a, b);
      regs[in.rd] = a - b;
      break;
    }
    case Op::kAndRR:
    case Op::kAndRI:
      regs[in.rd] &= (in.op == Op::kAndRR ? regs[in.rs] : in.imm);
      set_flags_logic(regs[in.rd]);
      break;
    case Op::kOrRR:
    case Op::kOrRI:
      regs[in.rd] |= (in.op == Op::kOrRR ? regs[in.rs] : in.imm);
      set_flags_logic(regs[in.rd]);
      break;
    case Op::kXorRR:
    case Op::kXorRI:
      regs[in.rd] ^= (in.op == Op::kXorRR ? regs[in.rs] : in.imm);
      set_flags_logic(regs[in.rd]);
      break;
    case Op::kShlRR:
    case Op::kShlRI:
      regs[in.rd] <<= ((in.op == Op::kShlRR ? regs[in.rs] : in.imm) & 31);
      set_flags_logic(regs[in.rd]);
      break;
    case Op::kShrRR:
    case Op::kShrRI:
      regs[in.rd] >>= ((in.op == Op::kShrRR ? regs[in.rs] : in.imm) & 31);
      set_flags_logic(regs[in.rd]);
      break;
    case Op::kMulRR:
    case Op::kMulRI:
      regs[in.rd] *= (in.op == Op::kMulRR ? regs[in.rs] : in.imm);
      set_flags_logic(regs[in.rd]);
      break;
    case Op::kDivRR:
      if (regs[in.rs] == 0) {
        raise(fault::FaultKind::kDivideByZero, 0);
        return false;
      }
      regs[in.rd] /= regs[in.rs];
      set_flags_logic(regs[in.rd]);
      break;
    case Op::kCmpRR:
      set_flags_sub(regs[in.rd], regs[in.rs]);
      break;
    case Op::kCmpRI:
      set_flags_sub(regs[in.rd], in.imm);
      break;
    case Op::kTestRR:
      set_flags_logic(regs[in.rd] & regs[in.rs]);
      break;
    case Op::kPushR:
      push32(regs[in.rd]);
      si.has_mem = true;
      si.mem_addr = regs[isa::kSp];
      si.mem_is_store = true;
      break;
    case Op::kPushI:
      // Software return-address randomization pushes the randomized return
      // here; the bitmap is not involved (that is the architectural
      // option's advantage, §IV-C).
      push32(in.imm);
      si.has_mem = true;
      si.mem_addr = regs[isa::kSp];
      si.mem_is_store = true;
      break;
    case Op::kPopR: {
      const uint32_t sp = regs[isa::kSp];
      si.has_mem = true;
      si.mem_addr = sp;
      uint32_t value = pop32();
      if (vcfr && ret_bitmap_.contains(sp)) {
        value = tables.to_original(value);
        si.bitmap_load = true;
        ++stats_.bitmap_autoderand_loads;
        ret_bitmap_.erase(sp);
      }
      regs[in.rd] = value;
      break;
    }
    case Op::kJmp:
      transfer_to(in.imm);
      break;
    case Op::kJcc:
      if (eval_cond(in.cond)) transfer_to(in.imm);
      break;
    case Op::kJmpR:
      ++stats_.indirect_transfers;
      transfer_to(regs[in.rd]);
      break;
    case Op::kCall:
    case Op::kCallR: {
      ++stats_.calls;
      if (in.op == Op::kCallR) ++stats_.indirect_transfers;
      uint32_t ret_value = next;  // architectural successor address
      if (vcfr) {
        const uint32_t ret_orig = upc + in.length;
        if (tables.is_randomized_addr(next)) {
          // Randomized return site: the hardware looks up the rand entry
          // for ret_orig and pushes the randomized address (§IV-A option 2).
          si.needs_rand = true;
          si.rand_key = ret_orig;
          ++stats_.rand_events;
        } else {
          ret_value = ret_orig;  // failover: push the original address
        }
      }
      si.call_push_value = ret_value;
      push32(ret_value);
      si.has_mem = true;
      si.mem_addr = regs[isa::kSp];
      si.mem_is_store = true;
      if (vcfr && si.needs_rand) ret_bitmap_.insert(regs[isa::kSp]);
      transfer_to(in.op == Op::kCall ? in.imm : regs[in.rd]);
      break;
    }
    case Op::kRet: {
      ++stats_.returns;
      const uint32_t sp = regs[isa::kSp];
      si.has_mem = true;
      si.mem_addr = sp;
      const uint32_t value = pop32();
      ret_bitmap_.erase(sp);  // consumed by the return
      transfer_to(value);
      break;
    }
  }

  // Shadow-only taint bookkeeping; lives in the execute half so the
  // decode-cache fast path is identical with tracking on or off.
  if (taint_on_) track_taint(si, in);

  ++stats_.instructions;
  if (tag_fault) {
    raise(fault::FaultKind::kTranslationMismatch, next);
    si.next_rpc = next;
    si.next_upc = next;
    if (prof_ != nullptr) {
      profile::RetireCosts costs;
      costs.delta = 1;
      prof_->on_retire(si, costs);
    }
    return true;  // the faulting instruction itself did execute
  }
  if (!halted_ && trap_.ok()) {
    state_.pc = next;
  }
  si.next_rpc = next;
  si.next_upc = to_upc(next);
  if (prof_ != nullptr) {
    profile::RetireCosts costs;
    costs.delta = 1;
    prof_->on_retire(si, costs);
  }
  return true;
}

void Emulator::save_state(binary::StateWriter& w) const {
  for (const uint32_t reg : state_.regs) w.u32(reg);
  w.b(state_.zf);
  w.b(state_.nf);
  w.b(state_.cf);
  w.b(state_.vf);
  w.u32(state_.pc);
  w.u64(stats_.instructions);
  w.u64(stats_.calls);
  w.u64(stats_.returns);
  w.u64(stats_.indirect_transfers);
  w.u64(stats_.derand_events);
  w.u64(stats_.rand_events);
  w.u64(stats_.bitmap_autoderand_loads);
  w.u64(stats_.tag_violations);
  w.u32(static_cast<uint32_t>(output_.size()));
  for (const uint32_t v : output_) w.u32(v);
  std::vector<uint32_t> bitmap(ret_bitmap_.begin(), ret_bitmap_.end());
  std::sort(bitmap.begin(), bitmap.end());
  w.u32(static_cast<uint32_t>(bitmap.size()));
  for (const uint32_t addr : bitmap) w.u32(addr);
  w.b(halted_);
  w.u8(static_cast<uint8_t>(trap_.kind));
  w.u32(trap_.pc);
  w.u32(trap_.detail);
  w.u64(trap_.instruction);
  w.str(error_);
  w.u64(max_output_);
  // Taint shadow state (appended so pre-taint readers never existed for
  // this format version; the kernel's config digest guards compatibility).
  const auto tag_out = [&w](const TaintTag& t) {
    w.b(t.tainted);
    w.u8(static_cast<uint8_t>(t.origin));
    w.u32(t.origin_rpc);
    w.u32(t.depth);
  };
  w.b(taint_on_);
  w.u64(taint_epoch_);
  w.u64(taint_stats_.sources);
  w.u64(taint_stats_.propagations);
  w.u64(taint_stats_.leaks);
  w.u64(taint_stats_.max_depth);
  for (const TaintTag& t : reg_taint_) tag_out(t);
  std::vector<std::pair<uint32_t, TaintTag>> words(mem_taint_.begin(),
                                                   mem_taint_.end());
  std::sort(words.begin(), words.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  w.u32(static_cast<uint32_t>(words.size()));
  for (const auto& [addr, tag] : words) {
    w.u32(addr);
    tag_out(tag);
  }
  w.u32(static_cast<uint32_t>(leaks_.size()));
  for (const LeakRecord& rec : leaks_) {
    w.u8(static_cast<uint8_t>(rec.origin));
    w.u32(rec.origin_rpc);
    w.u64(rec.epoch);
    w.u32(rec.depth);
    w.u8(static_cast<uint8_t>(rec.sink));
    w.u32(rec.sink_rpc);
    w.u64(rec.instruction);
  }
}

void Emulator::load_state(binary::StateReader& r) {
  for (uint32_t& reg : state_.regs) reg = r.u32();
  state_.zf = r.b();
  state_.nf = r.b();
  state_.cf = r.b();
  state_.vf = r.b();
  state_.pc = r.u32();
  stats_.instructions = r.u64();
  stats_.calls = r.u64();
  stats_.returns = r.u64();
  stats_.indirect_transfers = r.u64();
  stats_.derand_events = r.u64();
  stats_.rand_events = r.u64();
  stats_.bitmap_autoderand_loads = r.u64();
  stats_.tag_violations = r.u64();
  output_.clear();
  const uint32_t outputs = r.count(1u << 24);
  for (uint32_t i = 0; i < outputs; ++i) output_.push_back(r.u32());
  ret_bitmap_.clear();
  const uint32_t marks = r.count(1u << 24);
  for (uint32_t i = 0; i < marks; ++i) ret_bitmap_.insert(r.u32());
  halted_ = r.b();
  trap_.kind = static_cast<fault::FaultKind>(r.u8());
  trap_.pc = r.u32();
  trap_.detail = r.u32();
  trap_.instruction = r.u64();
  error_ = r.str();
  max_output_ = r.u64();
  const auto tag_in = [&r] {
    TaintTag t;
    t.tainted = r.b();
    t.origin = static_cast<TaintOrigin>(r.u8());
    t.origin_rpc = r.u32();
    t.depth = r.u32();
    return t;
  };
  taint_on_ = r.b();
  taint_epoch_ = r.u64();
  taint_stats_.sources = r.u64();
  taint_stats_.propagations = r.u64();
  taint_stats_.leaks = r.u64();
  taint_stats_.max_depth = r.u64();
  for (TaintTag& t : reg_taint_) t = tag_in();
  mem_taint_.clear();
  const uint32_t words = r.count(1u << 24);
  for (uint32_t i = 0; i < words; ++i) {
    const uint32_t addr = r.u32();
    mem_taint_[addr] = tag_in();
  }
  leaks_.clear();
  const uint32_t leak_count = r.count(1u << 24);
  for (uint32_t i = 0; i < leak_count; ++i) {
    LeakRecord rec;
    rec.origin = static_cast<TaintOrigin>(r.u8());
    rec.origin_rpc = r.u32();
    rec.epoch = r.u64();
    rec.depth = r.u32();
    rec.sink = static_cast<LeakSink>(r.u8());
    rec.sink_rpc = r.u32();
    rec.instruction = r.u64();
    leaks_.push_back(rec);
  }
  // Host-only decode cache: drop every fill so nothing predating the
  // restored architectural state survives.
  std::fill(dcache_.begin(), dcache_.end(), DecodedEntry{});
  rerand_note_ = false;
  rerand_dirty_.clear();
}

RunResult Emulator::run(const RunLimits& limits) {
  max_output_ = limits.max_output;
  if (limits.enforce_tags) enforce_tags_ = true;
  while (stats_.instructions < limits.max_instructions) {
    if (!step()) break;
    if (halted_) break;
  }
  RunResult result;
  result.halted = halted_;
  result.trap = trap_;
  result.error = error_;
  result.stats = stats_;
  result.output = output_;
  result.mem_checksum = mem_.checksum();
  result.final_state = state_;
  return result;
}

RunResult run_image(const binary::Image& image, const RunLimits& limits) {
  binary::Memory mem;
  binary::load(image, mem);
  Emulator emulator(image, mem);
  return emulator.run(limits);
}

}  // namespace vcfr::emu
