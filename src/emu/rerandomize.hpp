// Live re-randomization of a running VCFR process (§V-C: "a common
// practice to prevent leaking randomization/de-randomization tables to
// the attackers is to apply regular re-randomization of the binary images
// that will create a new sets of address translation tables and new
// randomized images. Even an attacker managed to obtain the old ... the
// information would be outdated for mounting new attacks").
//
// This goes one step beyond restart-time re-randomization: the swap
// happens *mid-run*, at a quiescent point, without losing program state:
//
//   1. every randomized return address on the stack — located exactly by
//      the §IV-C bitmap — is translated old-randomized -> original ->
//      new-randomized;
//   2. the architectural PC is translated the same way;
//   3. code bytes (same original layout, new encoded targets), jump-table
//      relocation slots, and the serialized kernel tables are refreshed;
//      program *data* is untouched;
//   4. a new emulator resumes over the same memory with the carried-over
//      register file, bitmap, and output stream.
//
// Quiescence condition: no general-purpose register may hold a code
// pointer at the swap point (call sites pick e.g. the top of a request
// loop). Return addresses are fully covered by the bitmap; un-randomized
// failover addresses are identity in every epoch because the failover set
// is analysis-determined and seed-independent.
#pragma once

#include <memory>

#include "binary/loader.hpp"
#include "emu/emulator.hpp"
#include "rewriter/randomizer.hpp"

namespace vcfr::emu {

struct LiveRerandomizeStats {
  uint32_t stack_slots_translated = 0;
  bool pc_translated = false;
  uint32_t reloc_slots_patched = 0;
};

/// Swaps `running` (executing old_rr.vcfr over `mem`) onto new_rr.vcfr.
/// Both RandomizeResults must come from the same original binary; the
/// returned emulator resumes where `running` stopped. `new_rr.vcfr` must
/// outlive the returned emulator.
[[nodiscard]] std::unique_ptr<Emulator> rerandomize_live(
    const Emulator& running, binary::Memory& mem,
    const rewriter::RandomizeResult& old_rr,
    const rewriter::RandomizeResult& new_rr,
    LiveRerandomizeStats* stats = nullptr);

}  // namespace vcfr::emu
