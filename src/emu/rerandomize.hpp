// Live re-randomization of a running VCFR process (§V-C: "a common
// practice to prevent leaking randomization/de-randomization tables to
// the attackers is to apply regular re-randomization of the binary images
// that will create a new sets of address translation tables and new
// randomized images. Even an attacker managed to obtain the old ... the
// information would be outdated for mounting new attacks").
//
// This goes one step beyond restart-time re-randomization: the swap
// happens *mid-run*, at a quiescent point, without losing program state:
//
//   1. every randomized return address on the stack — located exactly by
//      the §IV-C bitmap — is translated old-randomized -> original ->
//      new-randomized;
//   2. the architectural PC is translated the same way;
//   3. code bytes (same original layout, new encoded targets), jump-table
//      relocation slots, and the serialized kernel tables are refreshed;
//      program *data* is untouched;
//   4. a new emulator resumes over the same memory with the carried-over
//      register file, bitmap, and output stream.
//
// Quiescence condition: no general-purpose register may hold a code
// pointer at the swap point (call sites pick e.g. the top of a request
// loop). Return addresses are fully covered by the bitmap; un-randomized
// failover addresses are identity in every epoch because the failover set
// is analysis-determined and seed-independent.
#pragma once

#include <memory>
#include <vector>

#include "binary/flat_map.hpp"
#include "binary/loader.hpp"
#include "emu/emulator.hpp"
#include "rewriter/randomizer.hpp"

namespace vcfr::emu {

struct LiveRerandomizeStats {
  uint32_t stack_slots_translated = 0;
  bool pc_translated = false;
  uint32_t reloc_slots_patched = 0;
};

/// Swaps `running` (executing old_rr.vcfr over `mem`) onto new_rr.vcfr.
/// Both RandomizeResults must come from the same original binary; the
/// returned emulator resumes where `running` stopped. `new_rr.vcfr` must
/// outlive the returned emulator.
[[nodiscard]] std::unique_ptr<Emulator> rerandomize_live(
    const Emulator& running, binary::Memory& mem,
    const rewriter::RandomizeResult& old_rr,
    const rewriter::RandomizeResult& new_rr,
    LiveRerandomizeStats* stats = nullptr);

// ---- incremental re-randomization (continuous re-rand, MARDU-style) ----
//
// Instead of rebuilding the whole placement and flushing every cache, the
// incremental path re-places only a deterministic selection of original
// 4 KiB code pages and patches the live RandomizeResult *in place*: the
// TranslationTables object keeps its identity (walkers stay bound), only
// the moved instructions' derand/rand entries change, and only the code
// bytes of referring sites are re-encoded. The caller keeps the same
// Emulator — no state transplant.
//
// Forced quiescence: addresses listed in `pinned` (register-held
// randomized values) keep their derand entry alive as an *alias* of the
// instruction's original address even after the instruction moves, so a
// later indirect transfer through the stale register still de-randomizes
// correctly. Alias slots stay occupied until the caller drops them.
//
// Requires kFullSpread geometry (the Process layer's only policy): the
// image's rand_size / slot_bytes gives the slot pool the original
// randomize() drew from.

struct IncrementalRerandOptions {
  /// Epoch seed: drives page selection, slot draws, and jitter.
  uint64_t seed = 1;
  /// Percent of candidate code pages re-placed per firing (>= 100 = all).
  uint32_t region_percent = 25;
  /// Re-place every movable page (fresh placement after a trap).
  bool all_regions = false;
  uint32_t slot_bytes = 64;
  uint32_t rand_base = binary::kDefaultRandBase;
  /// Randomized addresses whose derand entries must survive as aliases
  /// (register-held values under forced quiescence). Sorted + deduped.
  std::vector<uint32_t> pinned;
};

struct IncrementalRerandStats {
  uint32_t regions_selected = 0;
  uint32_t instrs_moved = 0;
  uint32_t sites_patched = 0;
  uint32_t reloc_slots_patched = 0;
  uint32_t stack_slots_translated = 0;
  bool pc_translated = false;
  /// Pinned keys left behind as stale aliases (rand[orig] moved away).
  std::vector<uint32_t> alias_keys;
  /// RPCs whose previous-generation decode-cache entries are stale: old
  /// and new randomized addresses of moved instructions, their linear
  /// predecessors (cached seq_next), and re-encoded referring sites.
  binary::FlatSet32 decode_dirty;

  /// Table/image entries touched — the unit the kernel charges re-rand
  /// latency in (and the full path reports the same way).
  [[nodiscard]] uint64_t entries() const {
    return uint64_t{2} * instrs_moved + sites_patched + reloc_slots_patched +
           stack_slots_translated + (pc_translated ? 1 : 0);
  }
};

/// Re-places a deterministic subset of `rr`'s movable code pages in
/// place, patching tables, code bytes, data slots, marked stack slots,
/// and the PC of `running`. `cfg` must be the control-flow graph of the
/// *original* (pre-randomization) image `rr` came from. Returns false —
/// with `rr`, `mem`, and `running` untouched — when the slot pool cannot
/// host the re-placement (caller defers); true on success.
[[nodiscard]] bool rerandomize_incremental(const rewriter::Cfg& cfg,
                                           rewriter::RandomizeResult& rr,
                                           binary::Memory& mem,
                                           Emulator& running,
                                           const IncrementalRerandOptions& options,
                                           IncrementalRerandStats* stats = nullptr);

}  // namespace vcfr::emu
