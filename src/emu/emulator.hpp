// Functional (architectural) emulator for VX images.
//
// This is the golden model: it defines the semantics of all three image
// layouts (original, naive-ILR, VCFR) and is reused by the cycle simulator,
// which wraps timing around the per-step trace records produced here.
//
// VCFR semantics implemented (paper §IV):
//  * the architectural PC (RPC) lives in the randomized instruction space;
//    the execution cursor (UPC) is its de-randomized image, and instruction
//    bytes are fetched at UPC from the original layout;
//  * direct-transfer targets in the binary are randomized-space addresses
//    and are de-randomized through the translation tables;
//  * calls push the randomized return address when the site was randomized;
//    a stack bitmap remembers which slots hold randomized return addresses;
//  * loads (ld/pop) from bitmap-marked slots are automatically
//    de-randomized, supporting the PIC call/pop idiom and stack walks
//    (§IV-C); stores to marked slots clear the mark.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "binary/flat_map.hpp"
#include "binary/image.hpp"
#include "binary/loader.hpp"
#include "emu/taint.hpp"
#include "fault/fault.hpp"
#include "isa/isa.hpp"

namespace vcfr::profile {
class Profiler;
}  // namespace vcfr::profile

namespace vcfr::emu {

/// Architectural register/flag state.
struct ArchState {
  std::array<uint32_t, isa::kNumRegs> regs{};
  bool zf = false, nf = false, cf = false, vf = false;
  /// Architectural PC. For kNaiveIlr/kVcfr this is a randomized-space
  /// address; for kOriginal it equals the original-space address.
  uint32_t pc = 0;
};

/// Per-instruction trace record for the cycle simulator.
struct StepInfo {
  uint32_t rpc = 0;   // architectural address of this instruction
  uint32_t upc = 0;   // original-space address (== rpc when not randomized)
  isa::Instr instr;
  uint32_t next_rpc = 0;
  uint32_t next_upc = 0;
  bool is_taken_transfer = false;  // control left the sequential path

  bool has_mem = false;  // data-memory access (ld/st/push/pop/call/ret)
  uint32_t mem_addr = 0;
  bool mem_is_store = false;
  /// For calls: the return-address value pushed onto the stack (randomized
  /// when the site is randomized). Consumed by the simulator's RAS model.
  uint32_t call_push_value = 0;

  // VCFR translation events (all false for other layouts):
  bool needs_derand = false;  // target de-randomization, key = derand_key
  uint32_t derand_key = 0;
  bool needs_rand = false;    // return-address randomization, key = rand_key
  uint32_t rand_key = 0;
  bool bitmap_load = false;   // auto-de-randomized load of a marked slot
};

/// Counters the functional model maintains (security-relevant events).
struct EmuStats {
  uint64_t instructions = 0;
  uint64_t calls = 0;
  uint64_t returns = 0;
  uint64_t indirect_transfers = 0;
  uint64_t derand_events = 0;
  uint64_t rand_events = 0;
  uint64_t bitmap_autoderand_loads = 0;
  /// Transfers whose target is an original-space address that had been
  /// randomized away (would trip the paper's "randomized tag" check).
  uint64_t tag_violations = 0;
};

struct RunLimits {
  uint64_t max_instructions = 200'000'000;
  size_t max_output = 1u << 20;
  bool enforce_tags = false;  // see Emulator::set_enforce_tags
};

/// Host-side decoded-instruction cache counters. These are *not*
/// architectural statistics: the cache only skips redundant host work
/// (fetch, decode, translation-map probes) and can never change a
/// simulated result. Deterministic for a deterministic run, so they are
/// safe to register with the stat registry.
struct DecodeCacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  /// Fills evicted because the memory's code generation moved (self-
  /// modifying code, live re-randomization refreshing code bytes or
  /// tables). Tag-conflict evictions count as plain misses.
  uint64_t invalidations = 0;
  /// Previous-generation fills revalidated across an incremental
  /// re-randomization (note_rerand): the rpc was untouched by the patch,
  /// so the cached decode is promoted to the new generation instead of
  /// being discarded. Counted as hits too.
  uint64_t rerand_promotions = 0;
};

struct RunResult {
  bool halted = false;          // reached halt/sys-exit
  /// Typed fault record; trap.kind == kNone when the run did not fault.
  fault::Trap trap;
  /// Rendered trap (trap.describe()); kept for callers that print or
  /// byte-compare the legacy string form.
  std::string error;
  EmuStats stats;
  std::vector<uint32_t> output;
  uint64_t mem_checksum = 0;
  ArchState final_state;
};

class Emulator {
 public:
  /// The image must already be loaded into `mem` (binary::load).
  Emulator(const binary::Image& image, binary::Memory& mem);

  /// Enables the hardware's randomized-tag enforcement (§IV-A): for VCFR
  /// images, any control transfer into the original code space whose
  /// target is not in the un-randomized failover set faults instead of
  /// executing. Off by default so compatibility studies can count
  /// would-be violations without dying.
  void set_enforce_tags(bool on) { enforce_tags_ = on; }

  /// Toggles the host-side decoded-instruction cache (on by default).
  /// Steady-state step() then skips fetch, decode, and both translation-
  /// map probes for instructions whose (rpc, code-generation) pair is
  /// cached. Architectural results are bit-identical either way — the
  /// differential tests in tests/test_hotpath.cpp pin this.
  void set_decode_cache(bool on) { dcache_on_ = on; }
  [[nodiscard]] const DecodeCacheStats& decode_cache_stats() const {
    return dcache_stats_;
  }

  /// Toggles address-taint tracking (off by default; emu/taint.hpp).
  /// Pure shadow state: architectural results, outputs, and simulated
  /// cycles are byte-identical with tracking on or off — the tracker only
  /// *observes* randomized-layout secrets flowing toward program output.
  /// Turning tracking on clears any previous shadow state.
  void set_taint_tracking(bool on) {
    taint_on_ = on;
    if (on) {
      reg_taint_.fill(TaintTag{});
      mem_taint_.clear();
      leaks_.clear();
    }
  }
  [[nodiscard]] bool taint_tracking() const { return taint_on_; }
  /// Stamps subsequently-seeded tags with the owning placement epoch so a
  /// leak's provenance names the placement whose secret escaped.
  void set_taint_epoch(uint64_t epoch) { taint_epoch_ = epoch; }
  [[nodiscard]] const TaintStats& taint_stats() const { return taint_stats_; }
  /// Leak records since the last drain (bounded; see kMaxLeakRecords).
  [[nodiscard]] const std::vector<LeakRecord>& leaks() const { return leaks_; }
  /// Moves the pending leak records out (the kernel drains each
  /// bookkeeping pass and attaches pid/request provenance).
  [[nodiscard]] std::vector<LeakRecord> drain_leaks() {
    std::vector<LeakRecord> out = std::move(leaks_);
    leaks_.clear();
    return out;
  }

  /// Attaches (or detaches, with nullptr) a guest profiler. The functional
  /// model has no clock, so each retired instruction is reported as one
  /// cycle of issue time; cycle-level attribution comes from sim::CpuCore.
  /// Costs one pointer test per step when detached; the decode-cache fast
  /// path is unaffected.
  void set_profiler(profile::Profiler* profiler) { prof_ = profiler; }

  /// Executes one instruction. Returns false when execution has ended
  /// (halted or faulted) and no instruction was executed. When `info` is
  /// non-null it receives the step's trace record.
  bool step(StepInfo* info = nullptr);

  /// Runs to completion (halt, fault, or instruction limit).
  RunResult run(const RunLimits& limits = {});

  [[nodiscard]] bool halted() const { return halted_; }
  /// True when execution ended on a typed fault.
  [[nodiscard]] bool faulted() const { return !trap_.ok(); }
  /// The typed fault record (kind == kNone while execution is clean).
  [[nodiscard]] const fault::Trap& trap() const { return trap_; }
  [[nodiscard]] const std::string& error() const { return error_; }
  [[nodiscard]] const ArchState& state() const { return state_; }
  [[nodiscard]] ArchState& state() { return state_; }
  [[nodiscard]] const EmuStats& stats() const { return stats_; }
  [[nodiscard]] const std::vector<uint32_t>& output() const { return output_; }
  [[nodiscard]] const binary::Image& image() const { return image_; }

  /// Stack slots currently holding randomized return addresses — the
  /// architectural bitmap (§IV-C). Live re-randomization uses this to
  /// locate exactly the words that must be re-translated.
  [[nodiscard]] const std::unordered_set<uint32_t>& ret_bitmap() const {
    return ret_bitmap_;
  }

  /// Restores mid-run state into a fresh emulator (live re-randomization:
  /// the new emulator wraps the new image over the same memory).
  void restore(const ArchState& state, std::unordered_set<uint32_t> bitmap,
               std::vector<uint32_t> output) {
    state_ = state;
    ret_bitmap_ = std::move(bitmap);
    output_ = std::move(output);
  }

  /// Arms one-shot lazy revalidation of the decode cache after an
  /// incremental re-randomization (epoch-tagged invalidation): entries
  /// filled at `prev_gen` whose rpc is NOT in `dirty` are promoted to
  /// `new_gen` on their next lookup instead of being discarded — the
  /// patch provably left their (upc, bytes, seq_next) intact. `dirty`
  /// holds the stale RPCs (moved instructions' old/new addresses, their
  /// linear predecessors, re-encoded referring sites). A later note
  /// replaces this one; load_state() clears it.
  void note_rerand(uint64_t prev_gen, uint64_t new_gen,
                   binary::FlatSet32 dirty) {
    rerand_note_ = true;
    rerand_prev_gen_ = prev_gen;
    rerand_new_gen_ = new_gen;
    rerand_dirty_ = std::move(dirty);
  }

  /// Checkpoint support: full architectural state (registers, flags, PC,
  /// stats, output, ret bitmap, halt/trap state). The decoded-instruction
  /// cache is host-only and never serialized; load_state() empties it so
  /// a reused emulator cannot serve pre-restore decodings.
  void save_state(binary::StateWriter& w) const;
  void load_state(binary::StateReader& r);

  // ---- fault-injection hooks (src/fault/) --------------------------------
  /// Flips the architectural ret-bitmap state of `addr`: a marked slot
  /// loses its mark (its randomized return address will no longer be
  /// auto-de-randomized), an unmarked slot gains one. Returns true when
  /// the slot was marked before the flip. This models a bit flip in the
  /// hardware bitmap storage and is only meaningful for kVcfr images.
  bool corrupt_ret_bitmap(uint32_t addr) {
    if (ret_bitmap_.erase(addr) != 0) return true;
    ret_bitmap_.insert(addr);
    return false;
  }

  /// Raises an externally-decided fault (kernel watchdog kill, injected
  /// kill). Execution refuses further steps exactly as for an
  /// architectural fault.
  void raise_external(fault::FaultKind kind, uint32_t detail = 0) {
    raise(kind, detail);
  }

 private:
  /// One direct-mapped decoded-instruction cache line: everything the
  /// fetch/decode/translate front half of step() produces for an rpc.
  struct DecodedEntry {
    uint32_t rpc = 0xffffffffu;  // tag; 0xffffffff = empty
    uint32_t upc = 0;
    uint32_t seq_next = 0;  // sequential_next() result for this rpc
    uint64_t gen = 0;       // Memory::code_version() at fill time
    isa::Instr instr{};
  };
  static constexpr uint32_t kDecodeCacheBits = 12;  // 4096 entries

  /// Leak-record ring bound: stats keep exact counts past the cap, only
  /// the per-record provenance is dropped (fleet callers drain every
  /// bookkeeping pass, far below this).
  static constexpr size_t kMaxLeakRecords = 1u << 16;

  void raise(fault::FaultKind kind, uint32_t detail);
  /// Shadow-state bookkeeping for one retired instruction; called from
  /// the execute half of step() only when taint_on_ (the decode-cache
  /// front half is untouched either way).
  void track_taint(const StepInfo& si, const isa::Instr& in);
  void taint_sink(LeakSink sink, const TaintTag& tag, uint32_t sink_rpc);
  [[nodiscard]] uint32_t to_upc(uint32_t rpc) const;
  [[nodiscard]] uint32_t sequential_next(uint32_t rpc, uint32_t upc,
                                         uint8_t len) const;
  void set_flags_logic(uint32_t result);
  void set_flags_sub(uint32_t a, uint32_t b);
  [[nodiscard]] bool eval_cond(isa::Cond cond) const;
  void push32(uint32_t value);
  uint32_t pop32();

  const binary::Image& image_;
  binary::Memory& mem_;
  ArchState state_;
  EmuStats stats_;
  std::vector<uint32_t> output_;
  /// Stack slots currently holding randomized return addresses (§IV-C
  /// bitmap). Keyed by address; only meaningful for kVcfr.
  std::unordered_set<uint32_t> ret_bitmap_;
  bool halted_ = false;
  bool enforce_tags_ = false;
  /// Typed fault state; error_ caches trap_.describe() so error() can
  /// keep returning a reference.
  fault::Trap trap_;
  std::string error_;
  size_t max_output_ = 1u << 20;

  std::vector<DecodedEntry> dcache_;
  bool dcache_on_ = true;
  DecodeCacheStats dcache_stats_;
  // One-shot incremental-rerand revalidation note (see note_rerand).
  bool rerand_note_ = false;
  uint64_t rerand_prev_gen_ = 0;
  uint64_t rerand_new_gen_ = 0;
  binary::FlatSet32 rerand_dirty_;
  profile::Profiler* prof_ = nullptr;

  // ---- address-taint shadow state (emu/taint.hpp) -----------------------
  bool taint_on_ = false;
  uint64_t taint_epoch_ = 0;
  std::array<TaintTag, isa::kNumRegs> reg_taint_{};
  /// Tracked memory words, keyed by word-aligned address (addr & ~3).
  std::unordered_map<uint32_t, TaintTag> mem_taint_;
  TaintStats taint_stats_;
  std::vector<LeakRecord> leaks_;
};

/// Convenience: load + run an image on a fresh memory.
[[nodiscard]] RunResult run_image(const binary::Image& image,
                                  const RunLimits& limits = {});

}  // namespace vcfr::emu
