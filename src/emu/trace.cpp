#include "emu/trace.hpp"

#include <array>
#include <cstdio>

#include "binary/loader.hpp"
#include "emu/emulator.hpp"
#include "isa/disassembler.hpp"

namespace vcfr::emu {

std::string trace(const binary::Image& image, const TraceOptions& options) {
  binary::Memory mem;
  binary::load(image, mem);
  Emulator emulator(image, mem);

  std::string out;
  std::array<uint32_t, isa::kNumRegs> prev_regs = emulator.state().regs;
  StepInfo si;
  for (uint64_t step = 0; step < options.max_steps; ++step) {
    if (!emulator.step(&si)) break;
    char buf[64];
    if (si.rpc == si.upc) {
      std::snprintf(buf, sizeof buf, "%08x             ", si.rpc);
    } else {
      std::snprintf(buf, sizeof buf, "%08x -> %08x ", si.rpc, si.upc);
    }
    out += buf;
    out += isa::format_instr(si.instr);
    if (si.needs_derand) {
      std::snprintf(buf, sizeof buf, "  [derand %08x]", si.derand_key);
      out += buf;
    }
    if (si.needs_rand) {
      std::snprintf(buf, sizeof buf, "  [rand ret %08x]", si.rand_key);
      out += buf;
    }
    if (si.bitmap_load) out += "  [bitmap auto-derand]";
    if (options.show_registers) {
      const auto& regs = emulator.state().regs;
      for (int r = 0; r < isa::kNumRegs; ++r) {
        if (regs[r] != prev_regs[r]) {
          std::snprintf(buf, sizeof buf, "  %s=%#x",
                        isa::reg_name(static_cast<uint8_t>(r)).c_str(),
                        regs[r]);
          out += buf;
        }
      }
      prev_regs = emulator.state().regs;
    }
    out += '\n';
    if (emulator.halted()) {
      out += "== halted\n";
      break;
    }
  }
  if (!emulator.error().empty()) {
    out += "== FAULT: " + emulator.error() + '\n';
  }
  return out;
}

}  // namespace vcfr::emu
