#include "emu/ilr_emulator.hpp"

#include <array>
#include <unordered_map>

#include "binary/loader.hpp"

namespace vcfr::emu {

using isa::Op;

namespace {

enum class HandlerClass { kAlu, kMemory, kControl };

HandlerClass classify(Op op) {
  switch (op) {
    case Op::kLd:
    case Op::kSt:
    case Op::kLdb:
    case Op::kStb:
    case Op::kPushR:
    case Op::kPushI:
    case Op::kPopR:
      return HandlerClass::kMemory;
    case Op::kJmp:
    case Op::kJcc:
    case Op::kJmpR:
    case Op::kCall:
    case Op::kCallR:
    case Op::kRet:
      return HandlerClass::kControl;
    default:
      return HandlerClass::kAlu;
  }
}

}  // namespace

IlrEmulationResult emulate_ilr(const binary::Image& image, double native_cpi,
                               const RunLimits& limits,
                               const IlrEmulatorCosts& costs) {
  binary::Memory mem;
  binary::load(image, mem);
  Emulator emulator(image, mem);

  // Dispatch-handler predictor for the interpreter's indirect jump, keyed
  // by the last two guest opcodes (a BTB-like last-target scheme with
  // two-opcode context). Interpreter-style guests ("python") defeat it:
  // their own dispatch makes the opcode stream context-free.
  std::array<uint8_t, 4096> handler_pred{};
  uint32_t ctx = 0;

  // Per-site last-target cache for guest control transfers: a target
  // change forces the emulator to re-probe its PC-mapping table instead of
  // reusing the translated host address it cached for the site.
  std::unordered_map<uint32_t, uint32_t> target_cache;

  double host_instrs = 0.0;
  uint64_t mispredicts = 0;
  uint64_t target_changes = 0;

  StepInfo si;
  uint64_t executed = 0;
  while (executed < limits.max_instructions && emulator.step(&si)) {
    ++executed;
    const auto op_byte = static_cast<uint8_t>(si.instr.op);

    host_instrs += costs.dispatch + costs.pc_mapping +
                   costs.per_encoded_byte * si.instr.length;
    const uint32_t slot = ctx & (handler_pred.size() - 1);
    if (handler_pred[slot] != op_byte) {
      ++mispredicts;
      handler_pred[slot] = op_byte;
    }
    ctx = (ctx << 6) ^ op_byte;

    switch (classify(si.instr.op)) {
      case HandlerClass::kAlu:
        host_instrs += costs.alu;
        break;
      case HandlerClass::kMemory:
        host_instrs += costs.memory;
        break;
      case HandlerClass::kControl:
        host_instrs += costs.control;
        if (si.is_taken_transfer) {
          host_instrs += costs.target_mapping;
          auto [it, inserted] = target_cache.try_emplace(si.rpc, si.next_rpc);
          if (!inserted && it->second != si.next_rpc) {
            it->second = si.next_rpc;
            ++target_changes;
            host_instrs += costs.target_change;
          }
        }
        break;
    }
    if (emulator.halted()) break;
  }

  IlrEmulationResult result;
  result.guest_instructions = executed;
  if (executed == 0) return result;
  result.host_cycles =
      host_instrs * costs.host_cpi +
      static_cast<double>(mispredicts) * costs.dispatch_mispredict;
  result.host_cycles_per_instr =
      result.host_cycles / static_cast<double>(executed);
  result.dispatch_mispredict_rate =
      static_cast<double>(mispredicts) / static_cast<double>(executed);
  result.slowdown_vs_native =
      result.host_cycles_per_instr / (native_cpi > 0 ? native_cpi : 1.0);
  return result;
}

}  // namespace vcfr::emu
