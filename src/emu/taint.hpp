// Address-taint telemetry types (docs/OBSERVABILITY.md).
//
// The leak class tracked here is the precursor of every derandomization
// attack on an ILR system: a randomized-space address — minted by the
// translation machinery and meaningless outside the current placement —
// flowing through data computation into program output, where an external
// observer can harvest it (the static+dynamic AddrLeaks split, and the
// JIT-ROP disclosure model that MARDU-style re-keying answers).
//
// Taint is pure shadow state layered over emu::Emulator: it never changes
// an architectural result, a simulated cycle, or an output byte. The
// tracked secrets are the values the VCFR hardware itself randomizes —
// return addresses pushed by calls at randomized sites (§IV-C) and
// software-randomization pushes of translated addresses — so on a native
// (kOriginal) image no source ever seeds and the tracker is silent by
// construction.
#pragma once

#include <cstdint>

namespace vcfr::emu {

/// Where a taint tag was born (the kind of randomized-layout secret).
enum class TaintOrigin : uint8_t {
  /// A call at a randomized site pushed the randomized return address and
  /// marked the slot in the ret bitmap (§IV-A option 2 / §IV-C).
  kRetPush = 0,
  /// A pushi of a randomized-space immediate (software return-address
  /// randomization, §IV-C software option).
  kSwRandPush = 1,
};

/// Which output channel a tainted value escaped through.
enum class LeakSink : uint8_t {
  kOut = 0,  // `out rd`
  kSys = 1,  // `sys 1` (write syscall, r0)
};

// Plain C strings (not string_view) so call sites may pass them straight
// through printf-style varargs.
[[nodiscard]] constexpr const char* taint_origin_name(TaintOrigin o) {
  switch (o) {
    case TaintOrigin::kRetPush: return "ret_push";
    case TaintOrigin::kSwRandPush: return "swrand_push";
  }
  return "?";
}

[[nodiscard]] constexpr const char* leak_sink_name(LeakSink s) {
  switch (s) {
    case LeakSink::kOut: return "out";
    case LeakSink::kSys: return "sys";
  }
  return "?";
}

/// Shadow tag carried per guest register and per tracked memory word.
/// Word granularity for memory (addr & ~3): a tainted byte taints its
/// word — a deterministic over-approximation, never an omission.
struct TaintTag {
  bool tainted = false;
  TaintOrigin origin = TaintOrigin::kRetPush;
  /// The randomized-space value whose bits the tag shadows (for a return
  /// push: the randomized return address itself).
  uint32_t origin_rpc = 0;
  /// Data-flow hops from the source (0 at the seed; +1 per move, load,
  /// store, or ALU combine).
  uint32_t depth = 0;
};

/// Deterministic counters for the tracker (exported as emu.taint.*).
struct TaintStats {
  uint64_t sources = 0;       // tags seeded at randomized-secret births
  uint64_t propagations = 0;  // tag writes through moves/loads/stores/ALU
  uint64_t leaks = 0;         // tainted values that reached a sink
  uint64_t max_depth = 0;     // deepest propagation chain seen
};

/// Full provenance for one sink firing. The owning pid/request id are
/// attached by the kernel when it drains the emulator (the emulator knows
/// neither).
struct LeakRecord {
  TaintOrigin origin = TaintOrigin::kRetPush;
  uint32_t origin_rpc = 0;  // the leaked randomized-space value
  uint64_t epoch = 0;       // placement epoch the secret belongs to
  uint32_t depth = 0;       // propagation depth at the sink
  LeakSink sink = LeakSink::kOut;
  uint32_t sink_rpc = 0;       // architectural pc of the sink instruction
  uint64_t instruction = 0;    // instruction index at the sink
};

}  // namespace vcfr::emu
