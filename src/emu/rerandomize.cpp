#include "emu/rerandomize.hpp"

#include <algorithm>
#include <random>
#include <stdexcept>

#include "isa/encoding.hpp"

namespace vcfr::emu {

std::unique_ptr<Emulator> rerandomize_live(
    const Emulator& running, binary::Memory& mem,
    const rewriter::RandomizeResult& old_rr,
    const rewriter::RandomizeResult& new_rr, LiveRerandomizeStats* stats) {
  const binary::Image& old_img = old_rr.vcfr;
  const binary::Image& new_img = new_rr.vcfr;
  if (old_img.layout != binary::Layout::kVcfr ||
      new_img.layout != binary::Layout::kVcfr) {
    throw std::invalid_argument("rerandomize_live: requires VCFR images");
  }
  if (old_img.code.size() != new_img.code.size() ||
      old_img.code_base != new_img.code_base) {
    throw std::invalid_argument(
        "rerandomize_live: images must share the original layout");
  }

  LiveRerandomizeStats local;
  LiveRerandomizeStats& st = stats ? *stats : local;
  st = LiveRerandomizeStats{};

  auto retranslate = [&](uint32_t old_value) {
    return new_img.tables.to_randomized(old_img.tables.to_original(old_value));
  };

  // 1. Stack: re-translate every bitmap-marked randomized return address.
  for (uint32_t slot : running.ret_bitmap()) {
    mem.write32(slot, retranslate(mem.read32(slot)));
    ++st.stack_slots_translated;
  }

  // 2. Architectural PC.
  ArchState state = running.state();
  const uint32_t new_pc = retranslate(state.pc);
  st.pc_translated = new_pc != state.pc;
  state.pc = new_pc;

  // 3. Code bytes (same layout, new encoded targets), jump-table slots,
  //    and the kernel tables.
  for (size_t i = 0; i < new_img.code.size(); ++i) {
    mem.write8(new_img.code_base + static_cast<uint32_t>(i),
               new_img.code[i]);
  }
  for (const auto& r : new_img.relocs) {
    mem.write32(r.data_addr, retranslate(mem.read32(r.data_addr)));
    ++st.reloc_slots_patched;
  }
  binary::store_tables(new_img.tables, mem);

  // 4. Resume over the new image.
  auto fresh = std::make_unique<Emulator>(new_img, mem);
  fresh->restore(state, running.ret_bitmap(),
                 std::vector<uint32_t>(running.output()));
  return fresh;
}

bool rerandomize_incremental(const rewriter::Cfg& cfg,
                             rewriter::RandomizeResult& rr,
                             binary::Memory& mem, Emulator& running,
                             const IncrementalRerandOptions& options,
                             IncrementalRerandStats* stats) {
  binary::Image& img = rr.vcfr;
  if (img.layout != binary::Layout::kVcfr) {
    throw std::invalid_argument(
        "rerandomize_incremental: requires a VCFR image");
  }
  if (options.slot_bytes == 0 || img.rand_size == 0 ||
      img.rand_size % options.slot_bytes != 0) {
    throw std::invalid_argument(
        "rerandomize_incremental: requires kFullSpread slot geometry");
  }
  const uint32_t slot_count = img.rand_size / options.slot_bytes;
  auto slot_of = [&](uint32_t ra) {
    if (ra < options.rand_base ||
        (ra - options.rand_base) / options.slot_bytes >= slot_count) {
      throw std::invalid_argument(
          "rerandomize_incremental: placement outside the slot pool "
          "(kPageConfined image?)");
    }
    return (ra - options.rand_base) / options.slot_bytes;
  };

  IncrementalRerandStats local;
  IncrementalRerandStats& st = stats ? *stats : local;
  st = IncrementalRerandStats{};

  // --- candidate pages: original 4 KiB pages holding movable instrs -------
  constexpr uint32_t kPage = 4096;
  const auto& unrandomized = rr.analysis.unrandomized;
  std::vector<size_t> movable;
  movable.reserve(cfg.instrs.size());
  std::vector<uint32_t> pages;
  for (size_t i = 0; i < cfg.instrs.size(); ++i) {
    const uint32_t addr = cfg.instrs[i].addr;
    if (unrandomized.contains(addr)) continue;
    movable.push_back(i);
    const uint32_t page = (addr - img.code_base) / kPage;
    if (pages.empty() || pages.back() != page) pages.push_back(page);
  }
  if (movable.empty()) return true;  // nothing randomized: trivial success

  std::mt19937_64 rng(options.seed);
  std::vector<uint32_t> selected = pages;
  if (!options.all_regions && options.region_percent < 100) {
    std::shuffle(selected.begin(), selected.end(), rng);
    const size_t count = std::max<size_t>(
        1, (pages.size() * options.region_percent + 99) / 100);
    selected.resize(std::min(count, selected.size()));
    std::sort(selected.begin(), selected.end());
  }
  binary::FlatSet32 selected_pages;
  selected_pages.reserve(selected.size());
  for (const uint32_t p : selected) selected_pages.insert(p);
  st.regions_selected = static_cast<uint32_t>(selected.size());

  binary::FlatSet32 pinned;
  pinned.reserve(options.pinned.size());
  for (const uint32_t v : options.pinned) pinned.insert(v);

  // --- phase 1: draw fresh slots (any failure leaves rr untouched) --------
  std::vector<size_t> moved;
  binary::FlatSet32 moved_orig;
  for (const size_t idx : movable) {
    const uint32_t addr = cfg.instrs[idx].addr;
    if (!selected_pages.contains((addr - img.code_base) / kPage)) continue;
    moved.push_back(idx);
    moved_orig.insert(addr);
  }

  // Slot occupancy: placements staying put, plus pinned (alias) keys. A
  // moved instruction frees its old slot unless an alias pins it.
  binary::FlatSet32 occupied;
  occupied.reserve(rr.placement.size() + options.pinned.size());
  for (const auto& [orig, ra] : rr.placement) {
    if (moved_orig.contains(orig) && !pinned.contains(ra)) continue;
    occupied.insert(slot_of(ra));
  }
  for (const uint32_t v : options.pinned) {
    if (img.tables.derand.contains(v)) occupied.insert(slot_of(v));
  }

  struct Assign {
    size_t idx = 0;       // cfg.instrs index
    uint32_t old_ra = 0;
    uint32_t new_ra = 0;
  };
  std::vector<Assign> assign;
  assign.reserve(moved.size());
  for (const size_t idx : moved) {
    const auto& e = cfg.instrs[idx];
    uint32_t slot = 0;
    bool found = false;
    for (int attempt = 0; attempt < 64 && !found; ++attempt) {
      const auto s = static_cast<uint32_t>(rng() % slot_count);
      if (!occupied.contains(s)) {
        slot = s;
        found = true;
      }
    }
    if (!found) {
      // Dense pool: fall back to a deterministic linear probe.
      const auto s0 = static_cast<uint32_t>(rng() % slot_count);
      for (uint32_t d = 0; d < slot_count; ++d) {
        const uint32_t s = (s0 + d) % slot_count;
        if (!occupied.contains(s)) {
          slot = s;
          found = true;
          break;
        }
      }
    }
    if (!found) return false;  // pool exhausted: the caller defers
    occupied.insert(slot);
    const auto jitter = static_cast<uint32_t>(
        rng() % (options.slot_bytes - e.instr.length + 1));
    const uint32_t* old_ra = img.tables.rand.lookup(e.addr);
    if (old_ra == nullptr) {
      throw std::logic_error(
          "rerandomize_incremental: movable instruction has no placement");
    }
    assign.push_back(
        {idx, *old_ra,
         options.rand_base + slot * options.slot_bytes + jitter});
  }

  // --- phase 2: apply in place --------------------------------------------
  // Bump before the first table/code write so no decode-cache entry from
  // the old generation can be mistaken for current state.
  mem.bump_code_version();
  binary::TranslationTables& tables = img.tables;
  binary::FlatMap32 old2new;
  old2new.reserve(assign.size());

  // Erase every retiring derand key first: a fresh draw may land exactly
  // on another moved instruction's freed slot (and jitter may reproduce
  // its old address), so inserts must only see surviving keys.
  for (const Assign& a : assign) {
    old2new.emplace(a.old_ra, a.new_ra);
    st.decode_dirty.insert(a.old_ra);
    st.decode_dirty.insert(a.new_ra);
    if (!pinned.contains(a.old_ra)) tables.derand.erase(a.old_ra);
  }
  for (const Assign& a : assign) {
    const uint32_t orig = cfg.instrs[a.idx].addr;
    tables.rand[orig] = a.new_ra;
    tables.derand.emplace(a.new_ra, orig);
    rr.placement[orig] = a.new_ra;
    ++st.instrs_moved;
  }

  // Cached seq_next of the linear predecessor of each moved instruction
  // pointed at the old address: mark its current RPC stale too.
  for (const Assign& a : assign) {
    if (a.idx == 0) continue;
    st.decode_dirty.insert(
        tables.to_randomized(cfg.instrs[a.idx - 1].addr));
  }

  // Referring sites: direct transfers, software-rewrite return pushes,
  // and proven code-pointer movs whose (original-space) target moved.
  const auto& code_imm_sites = rr.analysis.code_imm_sites;
  for (const auto& e : cfg.instrs) {
    const bool qualifies =
        e.instr.is_direct_transfer() || e.instr.op == isa::Op::kPushI ||
        (e.instr.op == isa::Op::kMovRI && code_imm_sites.contains(e.addr));
    if (!qualifies || !moved_orig.contains(e.instr.imm)) continue;
    isa::Instr patched = e.instr;
    patched.imm = rr.placement.at(e.instr.imm);
    const std::vector<uint8_t> bytes = isa::encode(patched);
    if (bytes.size() != e.instr.length) {
      throw std::logic_error(
          "rerandomize_incremental: re-encoded length changed");
    }
    const size_t off = e.addr - img.code_base;
    for (size_t i = 0; i < bytes.size(); ++i) {
      img.code[off + i] = bytes[i];
      mem.write8(e.addr + static_cast<uint32_t>(i), bytes[i]);
    }
    ++st.sites_patched;
    st.decode_dirty.insert(tables.to_randomized(e.addr));
  }

  // Jump-table / stored-code-pointer slots: live memory and the image
  // copy (rearm() re-images data from the latter).
  for (const auto& r : img.relocs) {
    const uint32_t* nv = old2new.lookup(mem.read32(r.data_addr));
    if (nv != nullptr) {
      mem.write32(r.data_addr, *nv);
      ++st.reloc_slots_patched;
    }
    const uint32_t* iv = old2new.lookup(img.read_data32(r.data_addr));
    if (iv != nullptr) img.write_data32(r.data_addr, *iv);
  }

  // Bitmap-marked stack slots holding a moved return address.
  for (const uint32_t slot : running.ret_bitmap()) {
    const uint32_t* nv = old2new.lookup(mem.read32(slot));
    if (nv != nullptr) {
      mem.write32(slot, *nv);
      ++st.stack_slots_translated;
    }
  }

  // Architectural PC.
  if (const uint32_t* nv = old2new.lookup(running.state().pc)) {
    running.state().pc = *nv;
    st.pc_translated = true;
  }

  binary::store_tables(tables, mem);

  // Surviving aliases: pinned keys whose instruction now lives elsewhere.
  for (const uint32_t v : options.pinned) {
    const uint32_t* orig = tables.derand.lookup(v);
    if (orig == nullptr) continue;
    const uint32_t* ra = tables.rand.lookup(*orig);
    if (ra != nullptr && *ra != v) st.alias_keys.push_back(v);
  }
  return true;
}

}  // namespace vcfr::emu
