#include "emu/rerandomize.hpp"

#include <stdexcept>

namespace vcfr::emu {

std::unique_ptr<Emulator> rerandomize_live(
    const Emulator& running, binary::Memory& mem,
    const rewriter::RandomizeResult& old_rr,
    const rewriter::RandomizeResult& new_rr, LiveRerandomizeStats* stats) {
  const binary::Image& old_img = old_rr.vcfr;
  const binary::Image& new_img = new_rr.vcfr;
  if (old_img.layout != binary::Layout::kVcfr ||
      new_img.layout != binary::Layout::kVcfr) {
    throw std::invalid_argument("rerandomize_live: requires VCFR images");
  }
  if (old_img.code.size() != new_img.code.size() ||
      old_img.code_base != new_img.code_base) {
    throw std::invalid_argument(
        "rerandomize_live: images must share the original layout");
  }

  LiveRerandomizeStats local;
  LiveRerandomizeStats& st = stats ? *stats : local;
  st = LiveRerandomizeStats{};

  auto retranslate = [&](uint32_t old_value) {
    return new_img.tables.to_randomized(old_img.tables.to_original(old_value));
  };

  // 1. Stack: re-translate every bitmap-marked randomized return address.
  for (uint32_t slot : running.ret_bitmap()) {
    mem.write32(slot, retranslate(mem.read32(slot)));
    ++st.stack_slots_translated;
  }

  // 2. Architectural PC.
  ArchState state = running.state();
  const uint32_t new_pc = retranslate(state.pc);
  st.pc_translated = new_pc != state.pc;
  state.pc = new_pc;

  // 3. Code bytes (same layout, new encoded targets), jump-table slots,
  //    and the kernel tables.
  for (size_t i = 0; i < new_img.code.size(); ++i) {
    mem.write8(new_img.code_base + static_cast<uint32_t>(i),
               new_img.code[i]);
  }
  for (const auto& r : new_img.relocs) {
    mem.write32(r.data_addr, retranslate(mem.read32(r.data_addr)));
    ++st.reloc_slots_patched;
  }
  binary::store_tables(new_img.tables, mem);

  // 4. Resume over the new image.
  auto fresh = std::make_unique<Emulator>(new_img, mem);
  fresh->restore(state, running.ret_bitmap(),
                 std::vector<uint32_t>(running.output()));
  return fresh;
}

}  // namespace vcfr::emu
