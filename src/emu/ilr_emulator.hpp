// Cost model for software (instruction-level-emulator) ILR — Figure 2.
//
// The paper's Fig 2 measures ILR running under a software binary emulator
// versus native execution on bare metal, showing slowdowns of hundreds of
// times. We cannot run the authors' emulator; instead we model a classic
// interpretive emulator (decode-dispatch loop with per-instruction address
// translation, in the style the paper describes: "a run-time interpreter
// that de-randomizes the instruction space at per instruction level").
//
// The model executes the randomized binary functionally and charges, per
// guest instruction, documented host-cycle costs for each phase of such an
// interpreter:
//   * dispatch: fetch the guest opcode and indirectly jump to its handler;
//     mispredictions of that indirect jump are *measured* by simulating a
//     last-target handler predictor over the actual opcode stream;
//   * mapping : hash-table lookup translating the randomized guest PC;
//   * decode  : per encoded byte operand extraction;
//   * execute : handler body cost by operand class, with extra target
//     translation work for control transfers.
//
// The reported slowdown is modelled host cycles divided by the guest's
// native cycles (supplied by the cycle simulator, or a CPI estimate).
#pragma once

#include <cstdint>

#include "binary/image.hpp"
#include "emu/emulator.hpp"

namespace vcfr::emu {

/// Host-cycle cost constants for one guest instruction. Defaults follow
/// published interpreter breakdowns (Bochs-/Strata-class emulators run
/// 50-300 host instructions per guest instruction before mapping costs).
struct IlrEmulatorCosts {
  double dispatch = 22.0;          // opcode fetch + handler table jump
  double dispatch_mispredict = 60.0;  // charged per measured mispredict
  double pc_mapping = 42.0;        // randomized->host PC hash lookup
  double per_encoded_byte = 4.0;   // operand extraction
  double alu = 8.0;                // handler body: ALU / move
  double memory = 24.0;            // handler body: guest load/store
  double control = 36.0;           // handler body: branch bookkeeping
  double target_mapping = 48.0;    // extra lookup for transfer targets
  double target_change = 90.0;     // re-probe when a site's target changes
  double host_cpi = 1.2;           // emulator's own IPC on the host
};

struct IlrEmulationResult {
  uint64_t guest_instructions = 0;
  double host_cycles = 0.0;
  double host_cycles_per_instr = 0.0;
  double dispatch_mispredict_rate = 0.0;
  /// Slowdown versus native execution of the *original* binary at
  /// `native_cpi` cycles per instruction.
  double slowdown_vs_native = 0.0;
};

/// Runs `image` (any layout; the paper emulates the ILR-randomized binary)
/// under the cost model for at most `limits.max_instructions` instructions.
/// `native_cpi` is the original binary's measured cycles-per-instruction.
[[nodiscard]] IlrEmulationResult emulate_ilr(
    const binary::Image& image, double native_cpi,
    const RunLimits& limits = {}, const IlrEmulatorCosts& costs = {});

}  // namespace vcfr::emu
