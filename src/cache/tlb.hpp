// Fully associative TLB with LRU replacement and the paper's page
// visibility-bit extension (§IV-B): pages holding the randomization /
// de-randomization tables (and the return-address bitmap) are marked
// invisible to user-space instructions; only the micro-architecture may
// touch them while handling DRC misses.
#pragma once

#include <cstdint>
#include <unordered_set>
#include <vector>

#include "telemetry/stat_registry.hpp"

namespace vcfr::binary {
class StateWriter;
class StateReader;
}  // namespace vcfr::binary

namespace vcfr::cache {

struct TlbConfig {
  uint32_t entries = 64;       // fully associative (§VI-C)
  uint32_t page_bits = 12;     // 4 KiB pages
  uint32_t miss_penalty = 20;  // page-walk cycles
};

struct TlbStats {
  uint64_t accesses = 0;
  uint64_t misses = 0;
  uint64_t visibility_faults = 0;

  [[nodiscard]] double miss_rate() const {
    return accesses == 0 ? 0.0
                         : static_cast<double>(misses) /
                               static_cast<double>(accesses);
  }
};

class Tlb {
 public:
  explicit Tlb(const TlbConfig& config) : config_(config) {
    entries_.resize(config.entries);
  }

  /// Translates (identity mapping; only timing and protection modelled).
  /// Returns the added latency: 0 on hit, miss_penalty on miss.
  uint32_t access(uint32_t addr);

  /// Marks [base, base+bytes) invisible to user-space instructions.
  void set_invisible(uint32_t base, uint32_t bytes);

  /// True when a user-space instruction may access `addr`. Hardware-
  /// initiated table walks bypass this check.
  [[nodiscard]] bool user_visible(uint32_t addr) const;

  /// Records a user access for protection purposes; returns false (and
  /// counts a fault) when the page is invisible.
  bool check_user_access(uint32_t addr);

  [[nodiscard]] const TlbStats& stats() const { return stats_; }
  [[nodiscard]] const TlbConfig& config() const { return config_; }

  /// Binds this TLB's live statistics into `scope`.
  void register_stats(const telemetry::Scope& scope) const;

  /// Checkpoint support: entries, invisible-page set (written sorted for
  /// a deterministic byte stream), LRU tick, statistics.
  void save_state(binary::StateWriter& w) const;
  void load_state(binary::StateReader& r);

 private:
  struct Entry {
    bool valid = false;
    uint32_t page = 0;
    uint64_t lru = 0;
  };

  TlbConfig config_;
  std::vector<Entry> entries_;
  std::unordered_set<uint32_t> invisible_pages_;
  uint64_t tick_ = 0;
  TlbStats stats_;
};

}  // namespace vcfr::cache
