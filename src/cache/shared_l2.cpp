#include "cache/shared_l2.hpp"

#include <algorithm>

namespace vcfr::cache {

namespace {

constexpr uint32_t kAsidHash = 2654435761u;  // Knuth multiplicative hash

[[nodiscard]] bool is_demand_read(const L2Request& r) {
  return !r.write && r.source != L2Source::kIl1Prefetch;
}

}  // namespace

AccessResult SharedL2Port::read(uint32_t line, uint32_t asid, uint64_t now,
                                L2Source source) {
  const bool hit = owner_->probe(asid, line);
  AccessResult result;
  result.latency = owner_->config().l2.hit_latency +
                   (hit ? 0 : owner_->config().est_miss_latency);
  result.l2_hit = hit;
  log_.push_back({.now = now,
                  .line = line,
                  .asid = asid,
                  .source = source,
                  .write = false,
                  .est_latency = result.latency});
  return result;
}

void SharedL2Port::writeback(uint32_t line, uint32_t asid, uint64_t now) {
  log_.push_back({.now = now,
                  .line = line,
                  .asid = asid,
                  .source = L2Source::kDl1,
                  .write = true,
                  .est_latency = 0});
}

SharedL2::SharedL2(const SharedL2Config& config, uint32_t cores)
    : config_(config), dram_(config.dram) {
  num_sets_ = config_.l2.size_bytes / (config_.l2.line_bytes * config_.l2.assoc);
  for (line_shift_ = 0; (1u << line_shift_) < config_.l2.line_bytes;
       ++line_shift_) {
  }
  lines_.resize(static_cast<size_t>(num_sets_) * config_.l2.assoc);
  ports_.resize(cores);
  for (uint32_t c = 0; c < cores; ++c) {
    ports_[c].owner_ = this;
    ports_[c].core_ = c;
  }
}

uint32_t SharedL2::set_index(uint32_t asid, uint32_t line) const {
  return ((line >> line_shift_) ^ (asid * kAsidHash)) % num_sets_;
}

uint32_t SharedL2::fold_phys(uint32_t asid, uint32_t line) const {
  const uint32_t row_bits = config_.dram.row_bytes;
  return line ^ ((asid * kAsidHash) & ~(row_bits - 1));
}

bool SharedL2::probe(uint32_t asid, uint32_t line) const {
  const uint64_t key = key_of(asid, line);
  const uint32_t set = set_index(asid, line);
  const Line* base = &lines_[static_cast<size_t>(set) * config_.l2.assoc];
  for (uint32_t w = 0; w < config_.l2.assoc; ++w) {
    if (base[w].valid && base[w].key == key) return true;
  }
  return false;
}

uint32_t SharedL2::apply(const L2Request& request, uint64_t start) {
  const uint64_t key = key_of(request.asid, request.line);
  const uint32_t set = set_index(request.asid, request.line);
  Line* base = &lines_[static_cast<size_t>(set) * config_.l2.assoc];

  ++stats_.l2.accesses;
  switch (request.source) {
    case L2Source::kIl1: ++stats_.pressure.reads_from_il1; break;
    case L2Source::kDl1: ++stats_.pressure.reads_from_dl1; break;
    case L2Source::kIl1Prefetch:
      ++stats_.pressure.reads_from_il1_prefetch;
      break;
    case L2Source::kDrc: ++stats_.pressure.reads_from_drc; break;
  }
  if (is_demand_read(request)) ++reads_by_asid_[request.asid];

  for (uint32_t w = 0; w < config_.l2.assoc; ++w) {
    if (base[w].valid && base[w].key == key) {
      ++stats_.l2.hits;
      base[w].lru = ++tick_;
      if (request.write) base[w].dirty = true;
      return config_.l2.hit_latency;
    }
  }

  // Miss: fill from DRAM, evicting the set's LRU way.
  ++stats_.l2.misses;
  Line* victim = base;
  for (uint32_t w = 1; w < config_.l2.assoc; ++w) {
    if (!base[w].valid) {
      victim = &base[w];
      break;
    }
    if (base[w].lru < victim->lru) victim = &base[w];
  }
  const uint32_t dram_latency =
      dram_.read(fold_phys(request.asid, request.line),
                 start + config_.l2.hit_latency);
  if (victim->valid && victim->dirty) {
    ++stats_.l2.writebacks;
    dram_.write(fold_phys(static_cast<uint32_t>(victim->key >> 32),
                          static_cast<uint32_t>(victim->key)),
                start + config_.l2.hit_latency + dram_latency);
  }
  victim->valid = true;
  victim->dirty = request.write;
  victim->key = key;
  victim->lru = ++tick_;
  return config_.l2.hit_latency + dram_latency;
}

std::vector<uint64_t> SharedL2::commit_round(
    std::vector<std::map<uint32_t, uint64_t>>* blame) {
  std::vector<uint64_t> penalty(ports_.size(), 0);
  if (blame != nullptr) {
    blame->clear();
    blame->resize(ports_.size());
  }

  // Deterministic global order: request cycle, then core id, then the
  // core-local sequence implied by log position (std::sort would lose it,
  // so the index is part of the key).
  struct Ref {
    uint64_t now;
    uint32_t core;
    uint32_t seq;
  };
  std::vector<Ref> order;
  for (uint32_t c = 0; c < ports_.size(); ++c) {
    for (uint32_t i = 0; i < ports_[c].log_.size(); ++i) {
      order.push_back({ports_[c].log_[i].now, c, i});
    }
  }
  std::sort(order.begin(), order.end(), [](const Ref& a, const Ref& b) {
    if (a.now != b.now) return a.now < b.now;
    if (a.core != b.core) return a.core < b.core;
    return a.seq < b.seq;
  });

  // The port's busy horizon lives within one round: rounds are the
  // synchronization quantum, and cores' clocks may legitimately sit far
  // apart (context-switch stalls, uneven queues). Carrying the horizon
  // across rounds would make a lagging core queue behind the leading
  // core's *past* — a positive feedback that runs the clocks away.
  uint64_t port_free = 0;
  // The asid whose request last claimed the port: whoever queues behind
  // the busy port queues behind *this* tenant.
  uint32_t port_owner_asid = 0;
  for (const Ref& ref : order) {
    const L2Request& request = ports_[ref.core].log_[ref.seq];
    const uint64_t start = std::max(request.now, port_free);
    const uint64_t queued = start - request.now;
    const uint32_t blocker_asid = port_owner_asid;
    port_free = start + config_.service_cycles;
    port_owner_asid = request.asid;
    // The DRAM model tracks absolute bank-busy horizons, so it must see a
    // monotonic clock even though core clocks drift between rounds; the
    // clamp never reaches the penalty arithmetic.
    serve_now_ = std::max(serve_now_, start);
    const uint32_t actual = apply(request, serve_now_);
    ++stats_.commits;
    if (is_demand_read(request)) {
      stats_.queue_delay_cycles += queued;
      penalty[ref.core] += queued;
      if (blame != nullptr && queued > 0) {
        (*blame)[ref.core][blocker_asid] += queued;
      }
      if (actual > request.est_latency) {
        penalty[ref.core] += actual - request.est_latency;
        if (blame != nullptr) {
          (*blame)[ref.core][request.asid] += actual - request.est_latency;
        }
      }
    }
  }
  for (auto& port : ports_) port.log_.clear();
  return penalty;
}

void SharedL2::register_stats(const telemetry::Scope& scope) const {
  scope.counter("accesses", &stats_.l2.accesses);
  scope.counter("hits", &stats_.l2.hits);
  scope.counter("misses", &stats_.l2.misses);
  scope.counter("writebacks", &stats_.l2.writebacks);
  scope.counter("queue_delay_cycles", &stats_.queue_delay_cycles);
  scope.counter("commits", &stats_.commits);
  scope.gauge("miss_rate", [this] { return stats_.l2.miss_rate(); });
  const telemetry::Scope pressure = scope.scope("pressure");
  pressure.counter("il1", &stats_.pressure.reads_from_il1);
  pressure.counter("dl1", &stats_.pressure.reads_from_dl1);
  pressure.counter("il1_prefetch", &stats_.pressure.reads_from_il1_prefetch);
  pressure.counter("drc", &stats_.pressure.reads_from_drc);
  dram_.register_stats(scope.scope("dram"));
}

}  // namespace vcfr::cache
