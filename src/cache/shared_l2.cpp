#include "cache/shared_l2.hpp"

#include <algorithm>

#include "binary/state_io.hpp"

namespace vcfr::cache {

namespace {

constexpr uint32_t kAsidHash = 2654435761u;  // Knuth multiplicative hash
constexpr uint32_t kMaxShards = 64;          // touched bitmap is a uint64_t

[[nodiscard]] bool is_demand_read(const L2Request& r) {
  return !r.write && r.source != L2Source::kIl1Prefetch;
}

}  // namespace

AccessResult SharedL2Port::read(uint32_t line, uint32_t asid, uint64_t now,
                                L2Source source) {
  const bool hit = owner_->probe(asid, line);
  AccessResult result;
  result.latency = owner_->config().l2.hit_latency +
                   (hit ? 0 : owner_->config().est_miss_latency);
  result.l2_hit = hit;
  log_.push_back({.now = now,
                  .line = line,
                  .asid = asid,
                  .source = source,
                  .write = false,
                  .est_latency = result.latency});
  if (owner_->shards() > 0) {
    touched_ |= 1ull << owner_->shard_of(owner_->set_index(asid, line));
  }
  return result;
}

void SharedL2Port::writeback(uint32_t line, uint32_t asid, uint64_t now) {
  log_.push_back({.now = now,
                  .line = line,
                  .asid = asid,
                  .source = L2Source::kDl1,
                  .write = true,
                  .est_latency = 0});
  if (owner_->shards() > 0) {
    touched_ |= 1ull << owner_->shard_of(owner_->set_index(asid, line));
  }
}

SharedL2::SharedL2(const SharedL2Config& config, uint32_t cores)
    : config_(config), dram_(config.dram) {
  num_sets_ = config_.l2.size_bytes / (config_.l2.line_bytes * config_.l2.assoc);
  for (line_shift_ = 0; (1u << line_shift_) < config_.l2.line_bytes;
       ++line_shift_) {
  }
  shards_ = std::min({config_.commit_shards, kMaxShards, num_sets_});
  sets_per_shard_ =
      shards_ == 0 ? num_sets_ : (num_sets_ + shards_ - 1) / shards_;
  if (sets_per_shard_ == 0) sets_per_shard_ = 1;
  lines_.resize(static_cast<size_t>(num_sets_) * config_.l2.assoc);
  ports_.resize(cores);
  for (uint32_t c = 0; c < cores; ++c) {
    ports_[c].owner_ = this;
    ports_[c].core_ = c;
  }
}

uint32_t SharedL2::set_index(uint32_t asid, uint32_t line) const {
  return ((line >> line_shift_) ^ (asid * kAsidHash)) % num_sets_;
}

uint32_t SharedL2::fold_phys(uint32_t asid, uint32_t line) const {
  const uint32_t row_bits = config_.dram.row_bytes;
  return line ^ ((asid * kAsidHash) & ~(row_bits - 1));
}

bool SharedL2::probe(uint32_t asid, uint32_t line) const {
  const uint64_t key = key_of(asid, line);
  const uint32_t set = set_index(asid, line);
  const Line* base = &lines_[static_cast<size_t>(set) * config_.l2.assoc];
  for (uint32_t w = 0; w < config_.l2.assoc; ++w) {
    if (base[w].valid && base[w].key == key) return true;
  }
  return false;
}

uint32_t SharedL2::apply(const L2Request& request, uint64_t start) {
  const uint64_t key = key_of(request.asid, request.line);
  const uint32_t set = set_index(request.asid, request.line);
  Line* base = &lines_[static_cast<size_t>(set) * config_.l2.assoc];

  ++stats_.l2.accesses;
  switch (request.source) {
    case L2Source::kIl1: ++stats_.pressure.reads_from_il1; break;
    case L2Source::kDl1: ++stats_.pressure.reads_from_dl1; break;
    case L2Source::kIl1Prefetch:
      ++stats_.pressure.reads_from_il1_prefetch;
      break;
    case L2Source::kDrc: ++stats_.pressure.reads_from_drc; break;
  }
  if (is_demand_read(request)) ++reads_by_asid_[request.asid];

  for (uint32_t w = 0; w < config_.l2.assoc; ++w) {
    if (base[w].valid && base[w].key == key) {
      ++stats_.l2.hits;
      base[w].lru = ++tick_;
      if (request.write) base[w].dirty = true;
      return config_.l2.hit_latency;
    }
  }

  // Miss: fill from DRAM, evicting the set's LRU way.
  ++stats_.l2.misses;
  Line* victim = base;
  for (uint32_t w = 1; w < config_.l2.assoc; ++w) {
    if (!base[w].valid) {
      victim = &base[w];
      break;
    }
    if (base[w].lru < victim->lru) victim = &base[w];
  }
  const uint32_t dram_latency =
      dram_.read(fold_phys(request.asid, request.line),
                 start + config_.l2.hit_latency);
  if (victim->valid && victim->dirty) {
    ++stats_.l2.writebacks;
    dram_.write(fold_phys(static_cast<uint32_t>(victim->key >> 32),
                          static_cast<uint32_t>(victim->key)),
                start + config_.l2.hit_latency + dram_latency);
  }
  victim->valid = true;
  victim->dirty = request.write;
  victim->key = key;
  victim->lru = ++tick_;
  return config_.l2.hit_latency + dram_latency;
}

void SharedL2::apply_tags(PendingOp& op, ShardDelta& delta) {
  const L2Request& request = *op.req;
  const uint64_t key = key_of(request.asid, request.line);
  Line* base = &lines_[static_cast<size_t>(op.set) * config_.l2.assoc];

  for (uint32_t w = 0; w < config_.l2.assoc; ++w) {
    if (base[w].valid && base[w].key == key) {
      ++delta.hits;
      base[w].lru = op.lru_tick;
      if (request.write) base[w].dirty = true;
      op.hit = true;
      return;
    }
  }

  ++delta.misses;
  Line* victim = base;
  for (uint32_t w = 1; w < config_.l2.assoc; ++w) {
    if (!base[w].valid) {
      victim = &base[w];
      break;
    }
    if (base[w].lru < victim->lru) victim = &base[w];
  }
  op.hit = false;
  op.victim_dirty = victim->valid && victim->dirty;
  op.victim_key = victim->key;
  if (op.victim_dirty) ++delta.writebacks;
  victim->valid = true;
  victim->dirty = request.write;
  victim->key = key;
  victim->lru = op.lru_tick;
}

std::vector<uint64_t> SharedL2::commit_round(
    std::vector<std::map<uint32_t, uint64_t>>* blame,
    const ShardExecutor* executor) {
  std::vector<uint64_t> penalty(ports_.size(), 0);
  if (blame != nullptr) {
    blame->clear();
    blame->resize(ports_.size());
  }

  // Deterministic global order: request cycle, then core id, then the
  // core-local sequence implied by log position (std::sort would lose it,
  // so the index is part of the key).
  struct Ref {
    uint64_t now;
    uint32_t core;
    uint32_t seq;
  };
  std::vector<Ref> order;
  for (uint32_t c = 0; c < ports_.size(); ++c) {
    for (uint32_t i = 0; i < ports_[c].log_.size(); ++i) {
      order.push_back({ports_[c].log_[i].now, c, i});
    }
  }
  std::sort(order.begin(), order.end(), [](const Ref& a, const Ref& b) {
    if (a.now != b.now) return a.now < b.now;
    if (a.core != b.core) return a.core < b.core;
    return a.seq < b.seq;
  });

  if (shards_ == 0) {
    // Legacy single-barrier replay: one serial pass interleaving port
    // queueing, tag updates, and DRAM. Kept verbatim as the differential
    // reference for the sharded path below.
    uint64_t port_free = 0;
    uint32_t port_owner_asid = 0;
    for (const Ref& ref : order) {
      const L2Request& request = ports_[ref.core].log_[ref.seq];
      const uint64_t start = std::max(request.now, port_free);
      const uint64_t queued = start - request.now;
      const uint32_t blocker_asid = port_owner_asid;
      port_free = start + config_.service_cycles;
      port_owner_asid = request.asid;
      // The DRAM model tracks absolute bank-busy horizons, so it must see
      // a monotonic clock even though core clocks drift between rounds;
      // the clamp never reaches the penalty arithmetic.
      serve_now_ = std::max(serve_now_, start);
      const uint32_t actual = apply(request, serve_now_);
      ++stats_.commits;
      if (is_demand_read(request)) {
        stats_.queue_delay_cycles += queued;
        penalty[ref.core] += queued;
        if (blame != nullptr && queued > 0) {
          (*blame)[ref.core][blocker_asid] += queued;
        }
        if (actual > request.est_latency) {
          penalty[ref.core] += actual - request.est_latency;
          if (blame != nullptr) {
            (*blame)[ref.core][request.asid] += actual - request.est_latency;
          }
        }
      }
    }
    for (auto& port : ports_) port.log_.clear();
    return penalty;
  }

  // Sharded commit. Phase A (serial): the port-queueing model and every
  // tag-independent statistic, identical arithmetic to the legacy pass,
  // plus each request's LRU tick precomputed from the global order (the
  // legacy pass increments tick_ exactly once per request) and the
  // per-shard buckets for phase B.
  std::vector<PendingOp> ops(order.size());
  uint64_t touched_bits = 0;
  for (const auto& port : ports_) touched_bits |= port.touched_;
  std::vector<uint32_t> touched;
  std::vector<std::vector<uint32_t>> buckets(shards_);
  for (uint32_t s = 0; s < shards_; ++s) {
    if ((touched_bits >> s) & 1) touched.push_back(s);
  }
  shards_touched_ += touched.size();

  uint64_t port_free = 0;
  uint32_t port_owner_asid = 0;
  for (uint32_t i = 0; i < order.size(); ++i) {
    const Ref& ref = order[i];
    const L2Request& request = ports_[ref.core].log_[ref.seq];
    const uint64_t start = std::max(request.now, port_free);
    const uint64_t queued = start - request.now;
    const uint32_t blocker_asid = port_owner_asid;
    port_free = start + config_.service_cycles;
    port_owner_asid = request.asid;
    serve_now_ = std::max(serve_now_, start);

    PendingOp& op = ops[i];
    op.req = &request;
    op.serve_at = serve_now_;
    op.lru_tick = tick_ + i + 1;
    op.set = set_index(request.asid, request.line);
    op.core = ref.core;
    buckets[shard_of(op.set)].push_back(i);

    ++stats_.commits;
    ++stats_.l2.accesses;
    switch (request.source) {
      case L2Source::kIl1: ++stats_.pressure.reads_from_il1; break;
      case L2Source::kDl1: ++stats_.pressure.reads_from_dl1; break;
      case L2Source::kIl1Prefetch:
        ++stats_.pressure.reads_from_il1_prefetch;
        break;
      case L2Source::kDrc: ++stats_.pressure.reads_from_drc; break;
    }
    if (is_demand_read(request)) {
      ++reads_by_asid_[request.asid];
      stats_.queue_delay_cycles += queued;
      penalty[ref.core] += queued;
      if (blame != nullptr && queued > 0) {
        (*blame)[ref.core][blocker_asid] += queued;
      }
    }
  }
  tick_ += order.size();

  // Phase B (parallel): tag application per touched shard. A set never
  // spans shards, so tasks share no lines; within a shard the bucket
  // preserves global order, and the precomputed ticks make the lru fields
  // bit-identical to the serial replay. Stat deltas are task-private and
  // merged below in shard order.
  std::vector<ShardDelta> deltas(touched.size());
  const std::function<void(uint32_t)> run_shard = [&](uint32_t t) {
    ShardDelta& delta = deltas[t];
    for (const uint32_t i : buckets[touched[t]]) {
      apply_tags(ops[i], delta);
    }
  };
  if (executor != nullptr) {
    (*executor)(static_cast<uint32_t>(touched.size()), run_shard);
  } else {
    for (uint32_t t = 0; t < touched.size(); ++t) run_shard(t);
  }
  for (const ShardDelta& delta : deltas) {
    stats_.l2.hits += delta.hits;
    stats_.l2.misses += delta.misses;
    stats_.l2.writebacks += delta.writebacks;
  }

  // Phase C (serial): DRAM replay in the merged global order — the bank
  // model is order-dependent — and latency reconciliation against the
  // execute-phase estimates.
  for (const PendingOp& op : ops) {
    const L2Request& request = *op.req;
    uint32_t actual = config_.l2.hit_latency;
    if (!op.hit) {
      const uint32_t dram_latency =
          dram_.read(fold_phys(request.asid, request.line),
                     op.serve_at + config_.l2.hit_latency);
      if (op.victim_dirty) {
        dram_.write(fold_phys(static_cast<uint32_t>(op.victim_key >> 32),
                              static_cast<uint32_t>(op.victim_key)),
                    op.serve_at + config_.l2.hit_latency + dram_latency);
      }
      actual += dram_latency;
    }
    if (is_demand_read(request) && actual > request.est_latency) {
      penalty[op.core] += actual - request.est_latency;
      if (blame != nullptr) {
        (*blame)[op.core][request.asid] += actual - request.est_latency;
      }
    }
  }

  for (auto& port : ports_) {
    port.log_.clear();
    port.touched_ = 0;
  }
  return penalty;
}

void SharedL2::register_stats(const telemetry::Scope& scope) const {
  scope.counter("accesses", &stats_.l2.accesses);
  scope.counter("hits", &stats_.l2.hits);
  scope.counter("misses", &stats_.l2.misses);
  scope.counter("writebacks", &stats_.l2.writebacks);
  scope.counter("queue_delay_cycles", &stats_.queue_delay_cycles);
  scope.counter("commits", &stats_.commits);
  scope.counter("shards_touched", &shards_touched_);
  scope.gauge("miss_rate", [this] { return stats_.l2.miss_rate(); });
  const telemetry::Scope pressure = scope.scope("pressure");
  pressure.counter("il1", &stats_.pressure.reads_from_il1);
  pressure.counter("dl1", &stats_.pressure.reads_from_dl1);
  pressure.counter("il1_prefetch", &stats_.pressure.reads_from_il1_prefetch);
  pressure.counter("drc", &stats_.pressure.reads_from_drc);
  dram_.register_stats(scope.scope("dram"));
}

void SharedL2::save_state(binary::StateWriter& w) const {
  w.u64(tick_);
  w.u64(serve_now_);
  w.u64(shards_touched_);
  w.u32(static_cast<uint32_t>(lines_.size()));
  for (const Line& line : lines_) {
    w.b(line.valid);
    w.b(line.dirty);
    w.u64(line.key);
    w.u64(line.lru);
  }
  dram_.save_state(w);
  w.u64(stats_.l2.accesses);
  w.u64(stats_.l2.hits);
  w.u64(stats_.l2.misses);
  w.u64(stats_.l2.writebacks);
  w.u64(stats_.l2.prefetch_fills);
  w.u64(stats_.l2.prefetch_hits);
  w.u64(stats_.l2.prefetch_evicted_unused);
  w.u64(stats_.pressure.reads_from_il1);
  w.u64(stats_.pressure.reads_from_dl1);
  w.u64(stats_.pressure.reads_from_il1_prefetch);
  w.u64(stats_.pressure.reads_from_drc);
  w.u64(stats_.queue_delay_cycles);
  w.u64(stats_.commits);
  w.u32(static_cast<uint32_t>(reads_by_asid_.size()));
  for (const auto& [asid, reads] : reads_by_asid_) {
    w.u32(asid);
    w.u64(reads);
  }
}

void SharedL2::load_state(binary::StateReader& r) {
  tick_ = r.u64();
  serve_now_ = r.u64();
  shards_touched_ = r.u64();
  const uint32_t n = r.count(1u << 28);
  if (n != lines_.size()) {
    throw binary::FormatError(binary::FormatFault::kImplausible,
                              "checkpoint L2 geometry mismatch");
  }
  for (Line& line : lines_) {
    line.valid = r.b();
    line.dirty = r.b();
    line.key = r.u64();
    line.lru = r.u64();
  }
  dram_.load_state(r);
  stats_.l2.accesses = r.u64();
  stats_.l2.hits = r.u64();
  stats_.l2.misses = r.u64();
  stats_.l2.writebacks = r.u64();
  stats_.l2.prefetch_fills = r.u64();
  stats_.l2.prefetch_hits = r.u64();
  stats_.l2.prefetch_evicted_unused = r.u64();
  stats_.pressure.reads_from_il1 = r.u64();
  stats_.pressure.reads_from_dl1 = r.u64();
  stats_.pressure.reads_from_il1_prefetch = r.u64();
  stats_.pressure.reads_from_drc = r.u64();
  stats_.queue_delay_cycles = r.u64();
  stats_.commits = r.u64();
  reads_by_asid_.clear();
  const uint32_t asids = r.count(1u << 20);
  for (uint32_t i = 0; i < asids; ++i) {
    const uint32_t asid = r.u32();
    reads_by_asid_[asid] = r.u64();
  }
}

}  // namespace vcfr::cache
