#include "cache/tlb.hpp"

namespace vcfr::cache {

uint32_t Tlb::access(uint32_t addr) {
  ++stats_.accesses;
  const uint32_t page = addr >> config_.page_bits;
  Entry* victim = nullptr;
  for (auto& e : entries_) {
    if (e.valid && e.page == page) {
      e.lru = ++tick_;
      return 0;
    }
    if (!e.valid) {
      if (victim == nullptr || victim->valid) victim = &e;
    } else if (victim == nullptr || (victim->valid && e.lru < victim->lru)) {
      victim = &e;
    }
  }
  ++stats_.misses;
  victim->valid = true;
  victim->page = page;
  victim->lru = ++tick_;
  return config_.miss_penalty;
}

void Tlb::set_invisible(uint32_t base, uint32_t bytes) {
  const uint32_t first = base >> config_.page_bits;
  const uint32_t last = (base + bytes - 1) >> config_.page_bits;
  for (uint32_t p = first; p <= last; ++p) invisible_pages_.insert(p);
}

bool Tlb::user_visible(uint32_t addr) const {
  return !invisible_pages_.contains(addr >> config_.page_bits);
}

bool Tlb::check_user_access(uint32_t addr) {
  if (user_visible(addr)) return true;
  ++stats_.visibility_faults;
  return false;
}

void Tlb::register_stats(const telemetry::Scope& scope) const {
  scope.counter("accesses", &stats_.accesses);
  scope.counter("misses", &stats_.misses);
  scope.counter("visibility_faults", &stats_.visibility_faults);
  scope.gauge("miss_rate", [this] { return stats_.miss_rate(); });
}

}  // namespace vcfr::cache
