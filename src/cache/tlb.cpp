#include "cache/tlb.hpp"

#include <algorithm>

#include "binary/state_io.hpp"

namespace vcfr::cache {

uint32_t Tlb::access(uint32_t addr) {
  ++stats_.accesses;
  const uint32_t page = addr >> config_.page_bits;
  Entry* victim = nullptr;
  for (auto& e : entries_) {
    if (e.valid && e.page == page) {
      e.lru = ++tick_;
      return 0;
    }
    if (!e.valid) {
      if (victim == nullptr || victim->valid) victim = &e;
    } else if (victim == nullptr || (victim->valid && e.lru < victim->lru)) {
      victim = &e;
    }
  }
  ++stats_.misses;
  victim->valid = true;
  victim->page = page;
  victim->lru = ++tick_;
  return config_.miss_penalty;
}

void Tlb::set_invisible(uint32_t base, uint32_t bytes) {
  const uint32_t first = base >> config_.page_bits;
  const uint32_t last = (base + bytes - 1) >> config_.page_bits;
  for (uint32_t p = first; p <= last; ++p) invisible_pages_.insert(p);
}

bool Tlb::user_visible(uint32_t addr) const {
  return !invisible_pages_.contains(addr >> config_.page_bits);
}

bool Tlb::check_user_access(uint32_t addr) {
  if (user_visible(addr)) return true;
  ++stats_.visibility_faults;
  return false;
}

void Tlb::save_state(binary::StateWriter& w) const {
  w.u64(tick_);
  w.u32(static_cast<uint32_t>(entries_.size()));
  for (const Entry& e : entries_) {
    w.b(e.valid);
    w.u32(e.page);
    w.u64(e.lru);
  }
  std::vector<uint32_t> pages(invisible_pages_.begin(),
                              invisible_pages_.end());
  std::sort(pages.begin(), pages.end());
  w.u32(static_cast<uint32_t>(pages.size()));
  for (const uint32_t page : pages) w.u32(page);
  w.u64(stats_.accesses);
  w.u64(stats_.misses);
  w.u64(stats_.visibility_faults);
}

void Tlb::load_state(binary::StateReader& r) {
  tick_ = r.u64();
  const uint32_t n = r.count(1u << 20);
  if (n != entries_.size()) {
    throw binary::FormatError(binary::FormatFault::kImplausible,
                              "checkpoint TLB geometry mismatch");
  }
  for (Entry& e : entries_) {
    e.valid = r.b();
    e.page = r.u32();
    e.lru = r.u64();
  }
  invisible_pages_.clear();
  const uint32_t pages = r.count(1u << 20);
  for (uint32_t i = 0; i < pages; ++i) invisible_pages_.insert(r.u32());
  stats_.accesses = r.u64();
  stats_.misses = r.u64();
  stats_.visibility_faults = r.u64();
}

void Tlb::register_stats(const telemetry::Scope& scope) const {
  scope.counter("accesses", &stats_.accesses);
  scope.counter("misses", &stats_.misses);
  scope.counter("visibility_faults", &stats_.visibility_faults);
  scope.gauge("miss_rate", [this] { return stats_.miss_rate(); });
}

}  // namespace vcfr::cache
