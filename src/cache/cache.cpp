#include "cache/cache.hpp"

#include <bit>
#include <stdexcept>

#include "binary/state_io.hpp"

namespace vcfr::cache {

Cache::Cache(const CacheConfig& config) : config_(config) {
  if (config.line_bytes == 0 || !std::has_single_bit(config.line_bytes)) {
    throw std::invalid_argument(config.name + ": line size must be a power of two");
  }
  if (config.assoc == 0 || config.size_bytes % (config.line_bytes * config.assoc) != 0) {
    throw std::invalid_argument(config.name + ": size/assoc/line mismatch");
  }
  num_sets_ = config.size_bytes / (config.line_bytes * config.assoc);
  if (!std::has_single_bit(num_sets_)) {
    throw std::invalid_argument(config.name + ": set count must be a power of two");
  }
  line_shift_ = static_cast<uint32_t>(std::countr_zero(config.line_bytes));
  lines_.resize(static_cast<size_t>(num_sets_) * config.assoc);
}

uint32_t Cache::set_index(uint32_t addr) const {
  return (addr >> line_shift_) & (num_sets_ - 1);
}

uint32_t Cache::tag_of(uint32_t addr) const {
  return addr >> line_shift_ >> std::countr_zero(num_sets_);
}

uint32_t Cache::line_addr(uint32_t tag, uint32_t set) const {
  return ((tag << std::countr_zero(num_sets_)) | set) << line_shift_;
}

bool Cache::contains(uint32_t addr) const {
  const uint32_t set = set_index(addr);
  const uint32_t tag = tag_of(addr);
  for (uint32_t w = 0; w < config_.assoc; ++w) {
    const Line& line = lines_[set * config_.assoc + w];
    if (line.valid && line.tag == tag) return true;
  }
  return false;
}

CacheOutcome Cache::access(uint32_t addr, bool write) {
  ++stats_.accesses;
  const uint32_t set = set_index(addr);
  const uint32_t tag = tag_of(addr);
  for (uint32_t w = 0; w < config_.assoc; ++w) {
    Line& line = lines_[set * config_.assoc + w];
    if (line.valid && line.tag == tag) {
      ++stats_.hits;
      if (line.prefetched) {
        ++stats_.prefetch_hits;
        line.prefetched = false;
      }
      line.lru = ++tick_;
      line.dirty = line.dirty || write;
      return {.hit = true};
    }
  }
  ++stats_.misses;
  CacheOutcome out = install(addr, write, /*prefetched=*/false);
  out.hit = false;
  return out;
}

CacheOutcome Cache::fill_prefetch(uint32_t addr) {
  if (contains(addr)) return {.hit = true};
  ++stats_.prefetch_fills;
  CacheOutcome out = install(addr, /*dirty=*/false, /*prefetched=*/true);
  out.hit = false;
  return out;
}

CacheOutcome Cache::install(uint32_t addr, bool dirty, bool prefetched) {
  const uint32_t set = set_index(addr);
  const uint32_t tag = tag_of(addr);
  Line* victim = nullptr;
  for (uint32_t w = 0; w < config_.assoc; ++w) {
    Line& line = lines_[set * config_.assoc + w];
    if (!line.valid) {
      victim = &line;
      break;
    }
    if (victim == nullptr || line.lru < victim->lru) victim = &line;
  }
  CacheOutcome out;
  if (victim->valid) {
    out.evicted_valid = true;
    out.evicted_dirty = victim->dirty;
    out.evicted_line_addr = line_addr(victim->tag, set);
    if (victim->dirty) ++stats_.writebacks;
    if (victim->prefetched) ++stats_.prefetch_evicted_unused;
  }
  victim->valid = true;
  victim->dirty = dirty;
  victim->prefetched = prefetched;
  victim->tag = tag;
  victim->lru = ++tick_;
  return out;
}

void Cache::save_state(binary::StateWriter& w) const {
  w.u64(tick_);
  w.u32(static_cast<uint32_t>(lines_.size()));
  for (const Line& line : lines_) {
    w.b(line.valid);
    w.b(line.dirty);
    w.b(line.prefetched);
    w.u32(line.tag);
    w.u64(line.lru);
  }
  w.u64(stats_.accesses);
  w.u64(stats_.hits);
  w.u64(stats_.misses);
  w.u64(stats_.writebacks);
  w.u64(stats_.prefetch_fills);
  w.u64(stats_.prefetch_hits);
  w.u64(stats_.prefetch_evicted_unused);
}

void Cache::load_state(binary::StateReader& r) {
  tick_ = r.u64();
  const uint32_t n = r.count(1u << 28);
  if (n != lines_.size()) {
    throw binary::FormatError(binary::FormatFault::kImplausible,
                              config_.name + ": checkpoint geometry mismatch");
  }
  for (Line& line : lines_) {
    line.valid = r.b();
    line.dirty = r.b();
    line.prefetched = r.b();
    line.tag = r.u32();
    line.lru = r.u64();
  }
  stats_.accesses = r.u64();
  stats_.hits = r.u64();
  stats_.misses = r.u64();
  stats_.writebacks = r.u64();
  stats_.prefetch_fills = r.u64();
  stats_.prefetch_hits = r.u64();
  stats_.prefetch_evicted_unused = r.u64();
}

void Cache::register_stats(const telemetry::Scope& scope) const {
  scope.counter("accesses", &stats_.accesses);
  scope.counter("hits", &stats_.hits);
  scope.counter("misses", &stats_.misses);
  scope.counter("writebacks", &stats_.writebacks);
  scope.counter("prefetch_fills", &stats_.prefetch_fills);
  scope.counter("prefetch_hits", &stats_.prefetch_hits);
  scope.counter("prefetch_evicted_unused", &stats_.prefetch_evicted_unused);
  scope.gauge("miss_rate", [this] { return stats_.miss_rate(); });
}

}  // namespace vcfr::cache
