#include "cache/cache.hpp"

#include <bit>
#include <stdexcept>

namespace vcfr::cache {

Cache::Cache(const CacheConfig& config) : config_(config) {
  if (config.line_bytes == 0 || !std::has_single_bit(config.line_bytes)) {
    throw std::invalid_argument(config.name + ": line size must be a power of two");
  }
  if (config.assoc == 0 || config.size_bytes % (config.line_bytes * config.assoc) != 0) {
    throw std::invalid_argument(config.name + ": size/assoc/line mismatch");
  }
  num_sets_ = config.size_bytes / (config.line_bytes * config.assoc);
  if (!std::has_single_bit(num_sets_)) {
    throw std::invalid_argument(config.name + ": set count must be a power of two");
  }
  line_shift_ = static_cast<uint32_t>(std::countr_zero(config.line_bytes));
  lines_.resize(static_cast<size_t>(num_sets_) * config.assoc);
}

uint32_t Cache::set_index(uint32_t addr) const {
  return (addr >> line_shift_) & (num_sets_ - 1);
}

uint32_t Cache::tag_of(uint32_t addr) const {
  return addr >> line_shift_ >> std::countr_zero(num_sets_);
}

uint32_t Cache::line_addr(uint32_t tag, uint32_t set) const {
  return ((tag << std::countr_zero(num_sets_)) | set) << line_shift_;
}

bool Cache::contains(uint32_t addr) const {
  const uint32_t set = set_index(addr);
  const uint32_t tag = tag_of(addr);
  for (uint32_t w = 0; w < config_.assoc; ++w) {
    const Line& line = lines_[set * config_.assoc + w];
    if (line.valid && line.tag == tag) return true;
  }
  return false;
}

CacheOutcome Cache::access(uint32_t addr, bool write) {
  ++stats_.accesses;
  const uint32_t set = set_index(addr);
  const uint32_t tag = tag_of(addr);
  for (uint32_t w = 0; w < config_.assoc; ++w) {
    Line& line = lines_[set * config_.assoc + w];
    if (line.valid && line.tag == tag) {
      ++stats_.hits;
      if (line.prefetched) {
        ++stats_.prefetch_hits;
        line.prefetched = false;
      }
      line.lru = ++tick_;
      line.dirty = line.dirty || write;
      return {.hit = true};
    }
  }
  ++stats_.misses;
  CacheOutcome out = install(addr, write, /*prefetched=*/false);
  out.hit = false;
  return out;
}

CacheOutcome Cache::fill_prefetch(uint32_t addr) {
  if (contains(addr)) return {.hit = true};
  ++stats_.prefetch_fills;
  CacheOutcome out = install(addr, /*dirty=*/false, /*prefetched=*/true);
  out.hit = false;
  return out;
}

CacheOutcome Cache::install(uint32_t addr, bool dirty, bool prefetched) {
  const uint32_t set = set_index(addr);
  const uint32_t tag = tag_of(addr);
  Line* victim = nullptr;
  for (uint32_t w = 0; w < config_.assoc; ++w) {
    Line& line = lines_[set * config_.assoc + w];
    if (!line.valid) {
      victim = &line;
      break;
    }
    if (victim == nullptr || line.lru < victim->lru) victim = &line;
  }
  CacheOutcome out;
  if (victim->valid) {
    out.evicted_valid = true;
    out.evicted_dirty = victim->dirty;
    out.evicted_line_addr = line_addr(victim->tag, set);
    if (victim->dirty) ++stats_.writebacks;
    if (victim->prefetched) ++stats_.prefetch_evicted_unused;
  }
  victim->valid = true;
  victim->dirty = dirty;
  victim->prefetched = prefetched;
  victim->tag = tag;
  victim->lru = ++tick_;
  return out;
}

void Cache::register_stats(const telemetry::Scope& scope) const {
  scope.counter("accesses", &stats_.accesses);
  scope.counter("hits", &stats_.hits);
  scope.counter("misses", &stats_.misses);
  scope.counter("writebacks", &stats_.writebacks);
  scope.counter("prefetch_fills", &stats_.prefetch_fills);
  scope.counter("prefetch_hits", &stats_.prefetch_hits);
  scope.counter("prefetch_evicted_unused", &stats_.prefetch_evicted_unused);
  scope.gauge("miss_rate", [this] { return stats_.miss_rate(); });
}

}  // namespace vcfr::cache
