// Memory hierarchy glue: IL1 + DL1 -> unified L2 -> DRAM, with the
// next-line instruction prefetcher and the I/D TLBs. Machine parameters
// default to the paper's §VI-C configuration.
//
// The unified L2 additionally services DRC-miss table walks (the paper's
// "DRC shares L2 with IL1" design); per-source read counters expose the
// "L2 pressure" metric of Figure 3.
#pragma once

#include <cstdint>

#include "cache/cache.hpp"
#include "cache/prefetcher.hpp"
#include "cache/tlb.hpp"
#include "dram/dram.hpp"

namespace vcfr::binary {
class StateWriter;
class StateReader;
}  // namespace vcfr::binary

namespace vcfr::cache {

struct MemHierConfig {
  CacheConfig il1{.name = "IL1",
                  .size_bytes = 32 * 1024,
                  .assoc = 2,
                  .line_bytes = 64,
                  .hit_latency = 2};
  CacheConfig dl1{.name = "DL1",
                  .size_bytes = 32 * 1024,
                  .assoc = 2,
                  .line_bytes = 64,
                  .hit_latency = 2};
  CacheConfig l2{.name = "L2",
                 .size_bytes = 512 * 1024,
                 .assoc = 8,
                 .line_bytes = 64,
                 .hit_latency = 12};
  PrefetcherConfig iprefetch{};
  TlbConfig itlb{};
  TlbConfig dtlb{};
  dram::DramConfig dram{};
};

/// Who initiated an L2 read (for the pressure breakdown).
enum class L2Source { kIl1, kDl1, kIl1Prefetch, kDrc };

struct L2PressureStats {
  uint64_t reads_from_il1 = 0;
  uint64_t reads_from_dl1 = 0;
  uint64_t reads_from_il1_prefetch = 0;
  uint64_t reads_from_drc = 0;

  [[nodiscard]] uint64_t total_reads() const {
    return reads_from_il1 + reads_from_dl1 + reads_from_il1_prefetch +
           reads_from_drc;
  }
};

struct AccessResult {
  uint32_t latency = 0;
  bool l1_hit = false;
  bool l2_hit = false;  // meaningful only when !l1_hit
};

class SharedL2Port;

class MemHier {
 public:
  /// With a null `shared_port` the hierarchy owns a private L2 + DRAM (the
  /// single-process simulator). With a port, L2-level traffic is routed to
  /// the fleet's shared L2 (cache/shared_l2.hpp) and the private L2/DRAM
  /// stay unused.
  explicit MemHier(const MemHierConfig& config,
                   SharedL2Port* shared_port = nullptr);

  /// Address-space id tagged onto shared-L2 traffic (the running process's
  /// pid). Ignored in private-L2 mode.
  void set_asid(uint32_t asid) { asid_ = asid; }

  /// Instruction fetch of the line containing `addr` (drives the next-line
  /// prefetcher).
  AccessResult ifetch(uint32_t addr, uint64_t now);

  /// Data read / write through DL1 (write-allocate, write-back; store
  /// latency is absorbed by the write buffer but contents are updated).
  AccessResult dread(uint32_t addr, uint64_t now);
  AccessResult dwrite(uint32_t addr, uint64_t now);

  /// DRC-miss table walk: reads the translation-table line directly from
  /// the unified L2 (missing to DRAM), bypassing the L1s.
  AccessResult table_read(uint32_t addr, uint64_t now);

  [[nodiscard]] const Cache& il1() const { return il1_; }
  [[nodiscard]] const Cache& dl1() const { return dl1_; }
  [[nodiscard]] const Cache& l2() const { return l2_; }
  [[nodiscard]] Tlb& itlb() { return itlb_; }
  [[nodiscard]] Tlb& dtlb() { return dtlb_; }
  [[nodiscard]] const dram::Dram& dram() const { return dram_; }
  [[nodiscard]] const L2PressureStats& l2_pressure() const { return pressure_; }
  [[nodiscard]] const PrefetcherStats& prefetch_stats() const {
    return iprefetch_.stats();
  }
  [[nodiscard]] const MemHierConfig& config() const { return config_; }

  /// Binds the whole hierarchy into `scope`: il1/dl1/itlb/dtlb sub-scopes
  /// always; l2/dram only in private-L2 mode (in fleet mode that traffic
  /// lives in the shared cache's own scope); plus the L2 pressure
  /// breakdown and the prefetcher counter.
  void register_stats(const telemetry::Scope& scope) const;

  /// Checkpoint support: every cache/TLB/DRAM component plus the asid —
  /// the asid matters because a restored kernel skips the re-install that
  /// would otherwise call set_asid().
  void save_state(binary::StateWriter& w) const;
  void load_state(binary::StateReader& r);

 private:
  /// Read through L2 (filling it), returning latency beyond the L2 probe.
  AccessResult l2_read(uint32_t addr, uint64_t now, L2Source source);
  void l2_writeback(uint32_t addr, uint64_t now);

  MemHierConfig config_;
  SharedL2Port* shared_ = nullptr;
  uint32_t asid_ = 0;
  Cache il1_;
  Cache dl1_;
  Cache l2_;
  NextLinePrefetcher iprefetch_;
  Tlb itlb_;
  Tlb dtlb_;
  dram::Dram dram_;
  L2PressureStats pressure_;
};

}  // namespace vcfr::cache
