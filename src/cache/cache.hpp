// Generic set-associative, write-back, write-allocate cache model with
// true-LRU replacement. Timing is composed by MemHier; this class tracks
// contents, replacement state, and statistics.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "telemetry/stat_registry.hpp"

namespace vcfr::binary {
class StateWriter;
class StateReader;
}  // namespace vcfr::binary

namespace vcfr::cache {

struct CacheConfig {
  std::string name = "cache";
  uint32_t size_bytes = 32 * 1024;
  uint32_t assoc = 2;
  uint32_t line_bytes = 64;
  uint32_t hit_latency = 2;  // cycles
};

struct CacheStats {
  uint64_t accesses = 0;
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t writebacks = 0;          // dirty evictions
  uint64_t prefetch_fills = 0;      // lines installed by the prefetcher
  uint64_t prefetch_hits = 0;       // demand hits on prefetched lines
  uint64_t prefetch_evicted_unused = 0;  // prefetched lines evicted untouched

  [[nodiscard]] double miss_rate() const {
    return accesses == 0 ? 0.0
                         : static_cast<double>(misses) /
                               static_cast<double>(accesses);
  }
  /// Fraction of prefetched lines that were never used before eviction —
  /// the "pre-fetch miss rate" axis of the paper's Figure 3.
  [[nodiscard]] double prefetch_useless_rate() const {
    const uint64_t resolved = prefetch_hits + prefetch_evicted_unused;
    return resolved == 0 ? 0.0
                         : static_cast<double>(prefetch_evicted_unused) /
                               static_cast<double>(resolved);
  }
};

/// Outcome of one cache operation, with eviction info the caller must
/// propagate (write-back to the next level).
struct CacheOutcome {
  bool hit = false;
  bool evicted_valid = false;
  bool evicted_dirty = false;
  uint32_t evicted_line_addr = 0;
};

class Cache {
 public:
  explicit Cache(const CacheConfig& config);

  /// Demand access to the line containing `addr`; allocates on miss.
  CacheOutcome access(uint32_t addr, bool write);

  /// Installs a line fetched by the prefetcher (no demand statistics).
  CacheOutcome fill_prefetch(uint32_t addr);

  /// Invalidate-free probe (no LRU update, no stats).
  [[nodiscard]] bool contains(uint32_t addr) const;

  [[nodiscard]] const CacheConfig& config() const { return config_; }
  [[nodiscard]] const CacheStats& stats() const { return stats_; }
  [[nodiscard]] uint32_t num_sets() const { return num_sets_; }
  void reset_stats() { stats_ = CacheStats{}; }

  /// Binds this cache's live statistics into `scope` (telemetry naming:
  /// accesses/hits/misses/writebacks/prefetch_* counters + miss_rate).
  void register_stats(const telemetry::Scope& scope) const;

  /// Checkpoint support: tag array (incl. LRU ticks) + statistics.
  void save_state(binary::StateWriter& w) const;
  void load_state(binary::StateReader& r);

 private:
  struct Line {
    bool valid = false;
    bool dirty = false;
    bool prefetched = false;  // installed by prefetcher, not yet demanded
    uint32_t tag = 0;
    uint64_t lru = 0;         // higher = more recently used
  };

  [[nodiscard]] uint32_t set_index(uint32_t addr) const;
  [[nodiscard]] uint32_t tag_of(uint32_t addr) const;
  [[nodiscard]] uint32_t line_addr(uint32_t tag, uint32_t set) const;
  CacheOutcome install(uint32_t addr, bool dirty, bool prefetched);

  CacheConfig config_;
  uint32_t num_sets_ = 0;
  uint32_t line_shift_ = 0;
  std::vector<Line> lines_;  // num_sets_ * assoc
  uint64_t tick_ = 0;
  CacheStats stats_;
};

}  // namespace vcfr::cache
