// Shared last-level cache + DRAM backend for the multi-core fleet runtime.
//
// In the single-process simulator every MemHier owns a private L2 and DRAM.
// The OS/fleet runtime (src/os/) instead gives each core private IL1/DL1
// (and a private DRC) while all cores contend on one L2 and one DRAM — the
// configuration the paper's §IV-B cost argument assumes when it says DRC
// table walks "share the unified L2" with instruction fetch.
//
// Determinism under host-thread parallelism is achieved with a two-phase
// round protocol (in the spirit of quantum-synchronized parallel
// simulators such as Graphite/Sniper, but exactly repeatable):
//
//   * execute phase (parallel): each core runs one scheduler time slice.
//     L2-level requests are *probed* against the tag state frozen at the
//     start of the round (read-only, hence safe concurrently) and appended
//     to a per-core log; the probe's estimated latency is what the core's
//     pipeline observes during the slice.
//   * commit phase (serial): the logs are merged in (cycle, core, seq)
//     order and replayed into the real tag array and the DRAM model. The
//     replay produces the authoritative hit/miss statistics plus a
//     per-core penalty — port queueing delay and any latency the estimate
//     under-charged — which the kernel adds to the core's clock before the
//     next round.
//
// At fleet scale the commit replay itself becomes the barrier, so it is
// *sharded by set index*: the tag array is split into up to 64 contiguous
// set-range shards, each port records a touched-shard bitmap during the
// execute phase, and the commit splits into three sub-phases —
//
//   A (serial)   port-queueing model, per-request serve times and LRU
//                ticks, per-shard request buckets (tag-independent);
//   B (parallel) per-shard tag application — hit/miss, victim choice,
//                LRU update. Sets never span shards, so shards share no
//                state; per-shard {hits,misses,writebacks} deltas are
//                merged once, in shard order, after the barrier;
//   C (serial)   DRAM replay + latency reconciliation in the merged
//                global order (the DRAM bank model is order-dependent).
//
// Phase A precomputes each request's LRU tick from the global order, so
// the tag array (lru fields included) evolves bit-identically to the
// legacy single-barrier replay; commit_shards = 0 keeps the legacy path
// for differential testing.
//
// Lines are tagged with the owning process's address-space id, so two
// processes loaded at identical virtual addresses never alias (their
// backing physical pages are distinct); the asid also perturbs the set
// index and the DRAM row bits the way distinct physical pages would.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <vector>

#include "cache/cache.hpp"
#include "cache/memhier.hpp"
#include "dram/dram.hpp"

namespace vcfr::binary {
class StateWriter;
class StateReader;
}  // namespace vcfr::binary

namespace vcfr::cache {

struct SharedL2Config {
  CacheConfig l2{.name = "SL2",
                 .size_bytes = 512 * 1024,
                 .assoc = 8,
                 .line_bytes = 64,
                 .hit_latency = 12};
  dram::DramConfig dram{};
  /// Execute-phase estimate of the DRAM portion of an L2 miss (the commit
  /// phase reconciles against the real DRAM model).
  uint32_t est_miss_latency = 40;
  /// L2 port occupancy per request (queueing-model service time).
  uint32_t service_cycles = 1;
  /// Set-index shards for the parallel commit sub-phase; clamped to
  /// min(64, num_sets). 0 = legacy single-barrier serial replay (results
  /// are bit-identical either way — the differential tests pin this).
  uint32_t commit_shards = 8;
};

struct SharedL2Stats {
  CacheStats l2;
  L2PressureStats pressure;
  /// Cycles demand requests spent queued behind the busy L2 port.
  uint64_t queue_delay_cycles = 0;
  uint64_t commits = 0;
};

/// One deferred L2-level request from a core's execute phase.
struct L2Request {
  uint64_t now = 0;       // core cycle at which the request was issued
  uint32_t line = 0;      // line-aligned address in the process's space
  uint32_t asid = 0;      // owning process (address-space id)
  L2Source source = L2Source::kIl1;
  bool write = false;     // dirty L1 writeback (never stalls the core)
  uint32_t est_latency = 0;
};

class SharedL2;

/// Runs fn(0) .. fn(tasks-1) concurrently (or inline) and returns once
/// all complete — how the kernel lends its worker pool to the commit's
/// parallel shard phase without cache/ depending on os/.
using ShardExecutor =
    std::function<void(uint32_t, const std::function<void(uint32_t)>&)>;

/// Per-core adapter handed to that core's MemHier. During the execute
/// phase it probes the frozen shared state and logs the request; only the
/// owning core touches it, so no locking is needed.
class SharedL2Port {
 public:
  AccessResult read(uint32_t line, uint32_t asid, uint64_t now,
                    L2Source source);
  void writeback(uint32_t line, uint32_t asid, uint64_t now);

 private:
  friend class SharedL2;
  SharedL2* owner_ = nullptr;
  uint32_t core_ = 0;
  std::vector<L2Request> log_;
  uint64_t touched_ = 0;  // shard bitmap for this round's requests
};

class SharedL2 {
 public:
  SharedL2(const SharedL2Config& config, uint32_t cores);

  [[nodiscard]] SharedL2Port& port(uint32_t core) { return ports_[core]; }
  [[nodiscard]] uint32_t cores() const {
    return static_cast<uint32_t>(ports_.size());
  }

  /// Commit phase: replays every port's log in deterministic merged order,
  /// clears the logs, and returns the penalty cycles each core must add to
  /// its clock (queue delay + under-estimated miss latency).
  ///
  /// With `blame` non-null it is resized to one map per core and filled
  /// with the same penalty cycles keyed by the address space responsible:
  /// queueing delay is blamed on the asid whose request holds the port,
  /// under-estimated miss latency on the requester itself (its own miss
  /// cost, merely discovered late). Each map's values sum exactly to the
  /// core's penalty — the fleet profiler's contention attribution.
  ///
  /// With `executor` non-null and commit_shards > 0 the tag-application
  /// sub-phase runs one task per touched shard through it; null runs the
  /// shards inline. Either way the result is bit-identical.
  std::vector<uint64_t> commit_round(
      std::vector<std::map<uint32_t, uint64_t>>* blame = nullptr,
      const ShardExecutor* executor = nullptr);

  /// Read-only probe against the committed state (execute phase).
  [[nodiscard]] bool probe(uint32_t asid, uint32_t line) const;

  [[nodiscard]] const SharedL2Config& config() const { return config_; }
  [[nodiscard]] const SharedL2Stats& stats() const { return stats_; }
  [[nodiscard]] const dram::Dram& dram() const { return dram_; }
  /// Demand-read counts per address space (fleet "L2 pressure by tenant").
  [[nodiscard]] const std::map<uint32_t, uint64_t>& reads_by_asid() const {
    return reads_by_asid_;
  }
  /// Effective shard count after clamping (0 = legacy serial replay).
  [[nodiscard]] uint32_t shards() const { return shards_; }
  /// Cumulative touched-shard count across commits (observability; lives
  /// outside SharedL2Stats so fleet report JSON stays unchanged).
  [[nodiscard]] uint64_t shards_touched() const { return shards_touched_; }

  /// Binds the shared cache + its DRAM channel into `scope`.
  void register_stats(const telemetry::Scope& scope) const;

  /// Checkpoint support. Port logs are empty between rounds (commit
  /// clears them), so only the committed tag/DRAM/stat state is written.
  void save_state(binary::StateWriter& w) const;
  void load_state(binary::StateReader& r);

 private:
  friend class SharedL2Port;

  struct Line {
    bool valid = false;
    bool dirty = false;
    uint64_t key = 0;  // (asid << 32) | line address
    uint64_t lru = 0;
  };

  /// Carries one request through the commit sub-phases.
  struct PendingOp {
    const L2Request* req = nullptr;
    uint64_t serve_at = 0;   // phase A: monotonic replay clock at service
    uint64_t lru_tick = 0;   // phase A: precomputed global LRU tick
    uint32_t set = 0;
    uint32_t core = 0;
    bool hit = false;        // phase B results
    bool victim_dirty = false;
    uint64_t victim_key = 0;
  };

  struct ShardDelta {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t writebacks = 0;
  };

  [[nodiscard]] uint32_t set_index(uint32_t asid, uint32_t line) const;
  [[nodiscard]] uint32_t shard_of(uint32_t set) const {
    return set / sets_per_shard_;
  }
  [[nodiscard]] static uint64_t key_of(uint32_t asid, uint32_t line) {
    return (static_cast<uint64_t>(asid) << 32) | line;
  }
  /// Distinct processes occupy distinct physical pages: perturb the bits
  /// above the DRAM row offset so row-buffer behaviour decorrelates.
  [[nodiscard]] uint32_t fold_phys(uint32_t asid, uint32_t line) const;

  /// Replays one request; returns its authoritative latency (reads only).
  /// Legacy (commit_shards = 0) single-barrier path.
  uint32_t apply(const L2Request& request, uint64_t start);

  /// Phase B: applies one request's tag-array effects (hit/victim/LRU)
  /// using the phase-A-precomputed tick; fills op's result fields.
  void apply_tags(PendingOp& op, ShardDelta& delta);

  SharedL2Config config_;
  uint32_t num_sets_ = 0;
  uint32_t line_shift_ = 0;
  uint32_t shards_ = 0;          // effective (clamped) shard count
  uint32_t sets_per_shard_ = 1;
  std::vector<Line> lines_;
  uint64_t tick_ = 0;
  /// Monotonic commit-replay clock: the DRAM model's bank-busy horizons
  /// are absolute, so replays must never step time backwards even when a
  /// lagging core's requests carry older cycle numbers.
  uint64_t serve_now_ = 0;
  uint64_t shards_touched_ = 0;
  dram::Dram dram_;
  SharedL2Stats stats_;
  std::map<uint32_t, uint64_t> reads_by_asid_;
  std::vector<SharedL2Port> ports_;
};

}  // namespace vcfr::cache
