// Hardware instruction prefetcher (next-line / sequential-stream), the kind
// whose efficiency Figure 3 shows collapsing under naive hardware ILR.
#pragma once

#include <cstdint>
#include <optional>

namespace vcfr::cache {

struct PrefetcherConfig {
  bool enabled = true;
  /// How many sequential next lines to prefetch on a demand access.
  uint32_t degree = 1;
};

struct PrefetcherStats {
  uint64_t issued = 0;
};

/// Stateless next-line policy: on a demand access to line L it proposes
/// lines L+1..L+degree. MemHier filters already-resident lines and performs
/// the fills.
class NextLinePrefetcher {
 public:
  explicit NextLinePrefetcher(const PrefetcherConfig& config)
      : config_(config) {}

  /// Returns the k-th (0-based) prefetch candidate for a demand access to
  /// `line_addr`, or nullopt when k >= degree or prefetching is disabled.
  [[nodiscard]] std::optional<uint32_t> candidate(uint32_t line_addr,
                                                  uint32_t line_bytes,
                                                  uint32_t k) const {
    if (!config_.enabled || k >= config_.degree) return std::nullopt;
    return line_addr + (k + 1) * line_bytes;
  }

  void note_issued() { ++stats_.issued; }

  /// Checkpoint support: the issued counter is the prefetcher's only
  /// state (the policy itself is stateless).
  void restore_stats(const PrefetcherStats& stats) { stats_ = stats; }

  [[nodiscard]] const PrefetcherConfig& config() const { return config_; }
  [[nodiscard]] const PrefetcherStats& stats() const { return stats_; }

 private:
  PrefetcherConfig config_;
  PrefetcherStats stats_;
};

}  // namespace vcfr::cache
