#include "cache/memhier.hpp"

#include "binary/state_io.hpp"
#include "cache/shared_l2.hpp"

namespace vcfr::cache {

MemHier::MemHier(const MemHierConfig& config, SharedL2Port* shared_port)
    : config_(config),
      shared_(shared_port),
      il1_(config.il1),
      dl1_(config.dl1),
      l2_(config.l2),
      iprefetch_(config.iprefetch),
      itlb_(config.itlb),
      dtlb_(config.dtlb),
      dram_(config.dram) {}

AccessResult MemHier::l2_read(uint32_t addr, uint64_t now, L2Source source) {
  switch (source) {
    case L2Source::kIl1: ++pressure_.reads_from_il1; break;
    case L2Source::kDl1: ++pressure_.reads_from_dl1; break;
    case L2Source::kIl1Prefetch: ++pressure_.reads_from_il1_prefetch; break;
    case L2Source::kDrc: ++pressure_.reads_from_drc; break;
  }
  if (shared_) {
    const uint32_t line = addr & ~(config_.l2.line_bytes - 1);
    return shared_->read(line, asid_, now, source);
  }
  const CacheOutcome outcome = l2_.access(addr, /*write=*/false);
  AccessResult result;
  result.latency = config_.l2.hit_latency;
  result.l2_hit = outcome.hit;
  if (!outcome.hit) {
    result.latency += dram_.read(addr, now + config_.l2.hit_latency);
    if (outcome.evicted_dirty) {
      dram_.write(outcome.evicted_line_addr, now + result.latency);
    }
  }
  return result;
}

void MemHier::l2_writeback(uint32_t addr, uint64_t now) {
  // Dirty L1 eviction: write-allocate into L2 without stalling the core.
  if (shared_) {
    shared_->writeback(addr & ~(config_.l2.line_bytes - 1), asid_, now);
    return;
  }
  const CacheOutcome outcome = l2_.access(addr, /*write=*/true);
  if (!outcome.hit) {
    (void)dram_.read(addr, now);  // line fill before merging the victim
    ++pressure_.reads_from_dl1;
  }
  if (outcome.evicted_dirty) dram_.write(outcome.evicted_line_addr, now);
}

AccessResult MemHier::ifetch(uint32_t addr, uint64_t now) {
  const uint32_t line_bytes = config_.il1.line_bytes;
  const uint32_t line = addr & ~(line_bytes - 1);

  AccessResult result;
  result.latency = itlb_.access(addr);

  const CacheOutcome outcome = il1_.access(line, /*write=*/false);
  result.latency += config_.il1.hit_latency;
  result.l1_hit = outcome.hit;
  if (!outcome.hit) {
    const AccessResult l2r = l2_read(line, now + result.latency, L2Source::kIl1);
    result.latency += l2r.latency;
    result.l2_hit = l2r.l2_hit;
    // Instruction lines are never dirty; no writeback needed.
  }

  // Next-line prefetch: off the critical path; lines are pulled through L2
  // into IL1 and tagged so Figure 3's prefetch-efficiency metric can be
  // computed.
  for (uint32_t k = 0;; ++k) {
    const auto cand = iprefetch_.candidate(line, line_bytes, k);
    if (!cand) break;
    if (il1_.contains(*cand)) continue;
    iprefetch_.note_issued();
    (void)l2_read(*cand, now + result.latency, L2Source::kIl1Prefetch);
    (void)il1_.fill_prefetch(*cand);
  }
  return result;
}

AccessResult MemHier::dread(uint32_t addr, uint64_t now) {
  AccessResult result;
  result.latency = dtlb_.access(addr);
  const CacheOutcome outcome = dl1_.access(addr, /*write=*/false);
  result.latency += config_.dl1.hit_latency;
  result.l1_hit = outcome.hit;
  if (!outcome.hit) {
    const AccessResult l2r = l2_read(addr & ~(config_.dl1.line_bytes - 1),
                                     now + result.latency, L2Source::kDl1);
    result.latency += l2r.latency;
    result.l2_hit = l2r.l2_hit;
    if (outcome.evicted_dirty) {
      l2_writeback(outcome.evicted_line_addr, now + result.latency);
    }
  }
  return result;
}

AccessResult MemHier::dwrite(uint32_t addr, uint64_t now) {
  AccessResult result;
  // Stores retire through the write buffer: cache state is updated but the
  // pipeline only waits for the address translation.
  result.latency = dtlb_.access(addr);
  const CacheOutcome outcome = dl1_.access(addr, /*write=*/true);
  result.l1_hit = outcome.hit;
  if (!outcome.hit) {
    (void)l2_read(addr & ~(config_.dl1.line_bytes - 1), now, L2Source::kDl1);
    if (outcome.evicted_dirty) {
      l2_writeback(outcome.evicted_line_addr, now);
    }
  }
  return result;
}

AccessResult MemHier::table_read(uint32_t addr, uint64_t now) {
  return l2_read(addr & ~(config_.l2.line_bytes - 1), now, L2Source::kDrc);
}

void MemHier::save_state(binary::StateWriter& w) const {
  w.u32(asid_);
  il1_.save_state(w);
  dl1_.save_state(w);
  l2_.save_state(w);
  w.u64(iprefetch_.stats().issued);
  itlb_.save_state(w);
  dtlb_.save_state(w);
  dram_.save_state(w);
  w.u64(pressure_.reads_from_il1);
  w.u64(pressure_.reads_from_dl1);
  w.u64(pressure_.reads_from_il1_prefetch);
  w.u64(pressure_.reads_from_drc);
}

void MemHier::load_state(binary::StateReader& r) {
  asid_ = r.u32();
  il1_.load_state(r);
  dl1_.load_state(r);
  l2_.load_state(r);
  iprefetch_.restore_stats(PrefetcherStats{.issued = r.u64()});
  itlb_.load_state(r);
  dtlb_.load_state(r);
  dram_.load_state(r);
  pressure_.reads_from_il1 = r.u64();
  pressure_.reads_from_dl1 = r.u64();
  pressure_.reads_from_il1_prefetch = r.u64();
  pressure_.reads_from_drc = r.u64();
}

void MemHier::register_stats(const telemetry::Scope& scope) const {
  il1_.register_stats(scope.scope("il1"));
  dl1_.register_stats(scope.scope("dl1"));
  itlb_.register_stats(scope.scope("itlb"));
  dtlb_.register_stats(scope.scope("dtlb"));
  if (shared_ == nullptr) {
    l2_.register_stats(scope.scope("l2"));
    dram_.register_stats(scope.scope("dram"));
  }
  const telemetry::Scope pressure = scope.scope("l2_pressure");
  pressure.counter("il1", &pressure_.reads_from_il1);
  pressure.counter("dl1", &pressure_.reads_from_dl1);
  pressure.counter("il1_prefetch", &pressure_.reads_from_il1_prefetch);
  pressure.counter("drc", &pressure_.reads_from_drc);
  scope.counter("prefetches_issued", &iprefetch_.stats().issued);
}

}  // namespace vcfr::cache
