// NextLinePrefetcher is header-only; this translation unit anchors the
// module in the build.
#include "cache/prefetcher.hpp"
