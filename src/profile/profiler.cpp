#include "profile/profiler.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <span>

#include "isa/disassembler.hpp"
#include "telemetry/json_writer.hpp"

namespace vcfr::profile {

namespace {

constexpr std::string_view kCauseNames[kNumCauses] = {
    "issue",      "il1_miss",       "dmem",           "drc_miss", "table_walk",
    "ret_bitmap", "branch_redirect", "context_switch", "l2_contention",
};

constexpr std::string_view kUnknownName = "[unknown]";
constexpr std::string_view kExternalName = "[external]";

[[nodiscard]] std::string hex32(uint32_t v) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "0x%x", v);
  return buf;
}

}  // namespace

std::string_view cause_name(Cause cause) {
  return kCauseNames[static_cast<size_t>(cause)];
}

std::string_view layout_name(binary::Layout layout) {
  switch (layout) {
    case binary::Layout::kOriginal:
      return "original";
    case binary::Layout::kNaiveIlr:
      return "naive-ilr";
    case binary::Layout::kVcfr:
      return "vcfr";
  }
  return "?";
}

Profiler::Profiler(const binary::Image& image) : image_(image) {
  // Function extents: symbols sorted by address, each one half-open to the
  // next symbol (the assembler emits functions contiguously), the last one
  // to the end of the code section. Symbol addresses are original-space
  // for every layout, including kVcfr.
  extents_.reserve(image.functions.size());
  for (uint32_t i = 0; i < image.functions.size(); ++i) {
    extents_.push_back({image.functions[i].addr, 0, i});
  }
  std::sort(extents_.begin(), extents_.end(),
            [](const Extent& a, const Extent& b) { return a.addr < b.addr; });
  for (size_t i = 0; i < extents_.size(); ++i) {
    extents_[i].end = i + 1 < extents_.size() ? extents_[i + 1].addr
                                              : image.code_end();
  }
  unknown_slot_ = extents_.size();
  external_slot_ = extents_.size() + 1;
  funcs_.resize(extents_.size() + 2);
}

int32_t Profiler::func_of(uint32_t upc) const {
  // First extent strictly past upc, then step back one.
  auto it = std::upper_bound(
      extents_.begin(), extents_.end(), upc,
      [](uint32_t v, const Extent& e) { return v < e.addr; });
  if (it == extents_.begin()) return -1;
  --it;
  if (upc >= it->end) return -1;
  return static_cast<int32_t>(it - extents_.begin());
}

int32_t Profiler::intern_node(int32_t parent, int32_t func) {
  const uint64_t key = static_cast<uint64_t>(static_cast<uint32_t>(parent))
                           << 32 |
                       static_cast<uint32_t>(func);
  auto [it, fresh] =
      node_memo_.try_emplace(key, static_cast<int32_t>(nodes_.size()));
  if (fresh) {
    Node n;
    n.parent = parent;
    n.func = func;
    nodes_.push_back(n);
  }
  return it->second;
}

std::string Profiler::func_name(int32_t func) const {
  if (func < 0) return std::string(kUnknownName);
  const size_t slot = static_cast<size_t>(func);
  if (slot == unknown_slot_) return std::string(kUnknownName);
  if (slot == external_slot_) return std::string(kExternalName);
  return image_.functions[extents_[slot].sym].name;
}

void Profiler::on_retire(const emu::StepInfo& si, const RetireCosts& costs) {
  const int32_t f = func_of(si.upc);

  // --- shadow stack / flame tree -----------------------------------------
  if (stack_.empty()) {
    stack_.push_back(intern_node(-1, f));
  } else if (nodes_[static_cast<size_t>(stack_.back())].func != f) {
    // Control reached a different function without a call/ret boundary
    // (tail jump, cross-function fallthrough): re-sync the leaf in place.
    const int32_t parent = nodes_[static_cast<size_t>(stack_.back())].parent;
    stack_.back() = intern_node(parent, f);
  }
  const int32_t leaf = stack_.back();

  // --- attribution --------------------------------------------------------
  nodes_[static_cast<size_t>(leaf)].cycles += costs.delta;
  nodes_[static_cast<size_t>(leaf)].instructions += 1;
  FuncAgg& agg = agg_of(f);
  agg.cycles += costs.delta;
  agg.instructions += 1;

  // Greedy claim of the delta, most-specific causes first. Components can
  // overlap (the pipeline hides latency under earlier work), so each one
  // claims at most what remains; whatever is left is plain issue time.
  // This makes the buckets sum exactly to the delta by construction.
  uint64_t remaining = costs.delta;
  const auto claim = [&](Cause cause, uint64_t amount) {
    const uint64_t take = std::min(remaining, amount);
    if (take == 0) return;
    remaining -= take;
    causes_[static_cast<size_t>(cause)] += take;
    agg.causes[static_cast<size_t>(cause)] += take;
  };
  claim(Cause::kTableWalk, costs.walk);
  claim(Cause::kDrcMiss, costs.drc_backing);
  claim(Cause::kRedirect, costs.redirect);
  claim(Cause::kRetBitmap, costs.bitmap);
  claim(Cause::kIl1Miss, costs.il1);
  claim(Cause::kDmem, costs.dmem);
  claim(Cause::kIssue, remaining);

  instructions_ += 1;
  attributed_ += costs.delta;

  // --- basic-block hotness ------------------------------------------------
  if (next_is_leader_) {
    cur_block_ = &blocks_[si.rpc];
    cur_block_->count += 1;
    cur_block_->upc = si.upc;
  }
  cur_block_->cycles += costs.delta;
  next_is_leader_ = si.instr.is_control();

  // --- stack maintenance for the *next* instruction -----------------------
  if (si.is_taken_transfer && si.instr.is_call()) {
    if (stack_.size() >= kMaxDepth) {
      ++depth_overflow_;
    } else {
      stack_.push_back(intern_node(leaf, func_of(si.next_upc)));
    }
  } else if (si.instr.op == isa::Op::kRet && si.is_taken_transfer) {
    if (depth_overflow_ > 0) {
      --depth_overflow_;
    } else if (!stack_.empty()) {
      stack_.pop_back();
    }
  }
}

void Profiler::add_external(Cause cause, uint64_t cycles) {
  if (cycles == 0) return;
  causes_[static_cast<size_t>(cause)] += cycles;
  funcs_[external_slot_].cycles += cycles;
  funcs_[external_slot_].causes[static_cast<size_t>(cause)] += cycles;
  attributed_ += cycles;
}

void Profiler::add_l2_contention(uint32_t aggressor_asid, uint64_t cycles) {
  if (cycles == 0) return;
  add_external(Cause::kL2Contention, cycles);
  contention_by_asid_[aggressor_asid] += cycles;
}

double Profiler::resolved_fraction() const {
  const uint64_t external = funcs_[external_slot_].cycles;
  const uint64_t guest = attributed_ - external;
  if (guest == 0) return 1.0;
  const uint64_t unknown = funcs_[unknown_slot_].cycles;
  return 1.0 - static_cast<double>(unknown) / static_cast<double>(guest);
}

std::vector<Profiler::FunctionProfile> Profiler::functions() const {
  std::vector<FunctionProfile> out;
  for (size_t i = 0; i < funcs_.size(); ++i) {
    const FuncAgg& agg = funcs_[i];
    if (agg.cycles == 0 && agg.instructions == 0) continue;
    FunctionProfile fp;
    fp.name = func_name(static_cast<int32_t>(i));
    fp.addr = i < extents_.size() ? extents_[i].addr : 0;
    fp.cycles = agg.cycles;
    fp.instructions = agg.instructions;
    fp.causes = agg.causes;
    out.push_back(std::move(fp));
  }
  std::sort(out.begin(), out.end(),
            [](const FunctionProfile& a, const FunctionProfile& b) {
              if (a.cycles != b.cycles) return a.cycles > b.cycles;
              return a.addr < b.addr;
            });
  return out;
}

std::string Profiler::to_json(const ProfileMeta& meta,
                              size_t top_blocks) const {
  using telemetry::JsonWriter;
  JsonWriter w;
  w.begin_object(JsonWriter::Style::kPretty);
  w.key("app").value(meta.app);
  w.key("layout").value(meta.layout);
  w.key("seed").value(meta.seed);
  w.key("instructions").value(instructions_);
  w.key("cycles").value(attributed_);
  w.key("expected_cycles").value(meta.expected_cycles);
  w.key("conserved").value(attributed_ == meta.expected_cycles);
  w.key("resolved_fraction")
      .raw_value(telemetry::json_double(resolved_fraction()));

  w.key("causes").begin_object(JsonWriter::Style::kCompact);
  for (size_t c = 0; c < kNumCauses; ++c) {
    w.key(std::string(kCauseNames[c])).value(causes_[c]);
  }
  w.end_object();

  w.key("functions").begin_array(JsonWriter::Style::kPretty);
  for (const FunctionProfile& fp : functions()) {
    w.begin_object(JsonWriter::Style::kCompact);
    w.key("name").value(fp.name);
    w.key("addr").value(fp.addr);
    w.key("cycles").value(fp.cycles);
    w.key("instructions").value(fp.instructions);
    w.key("causes").begin_object(JsonWriter::Style::kCompact);
    for (size_t c = 0; c < kNumCauses; ++c) {
      if (fp.causes[c] == 0) continue;
      w.key(std::string(kCauseNames[c])).value(fp.causes[c]);
    }
    w.end_object();
    w.end_object();
  }
  w.end_array();

  // Top blocks by execution count (rpc ascending as the tie-break).
  std::vector<std::pair<uint32_t, const Block*>> hot;
  hot.reserve(blocks_.size());
  for (const auto& [rpc, blk] : blocks_) hot.emplace_back(rpc, &blk);
  std::sort(hot.begin(), hot.end(),
            [](const auto& a, const auto& b) {
              if (a.second->count != b.second->count)
                return a.second->count > b.second->count;
              return a.first < b.first;
            });
  if (hot.size() > top_blocks) hot.resize(top_blocks);
  w.key("blocks").begin_array(JsonWriter::Style::kPretty);
  for (const auto& [rpc, blk] : hot) {
    w.begin_object(JsonWriter::Style::kCompact);
    w.key("rpc").value(rpc);
    w.key("upc").value(blk->upc);
    w.key("func").value(func_name(func_of(blk->upc)));
    w.key("count").value(blk->count);
    w.key("cycles").value(blk->cycles);
    w.end_object();
  }
  w.end_array();

  w.key("l2_contention_by_asid").begin_object(JsonWriter::Style::kCompact);
  for (const auto& [asid, cycles] : contention_by_asid_) {
    w.key(std::to_string(asid)).value(cycles);
  }
  w.end_object();

  w.end_object();
  return w.str();
}

std::string Profiler::to_collapsed() const {
  std::vector<std::string> lines;
  std::vector<std::string> names(nodes_.size());
  // Node ids are created parents-first, so one forward pass resolves every
  // full path.
  for (size_t i = 0; i < nodes_.size(); ++i) {
    const Node& n = nodes_[i];
    const std::string self = func_name(n.func);
    names[i] = n.parent < 0
                   ? self
                   : names[static_cast<size_t>(n.parent)] + ";" + self;
    if (n.cycles == 0) continue;
    char buf[32];
    std::snprintf(buf, sizeof(buf), " %" PRIu64 "\n", n.cycles);
    lines.push_back(names[i] + buf);
  }
  std::sort(lines.begin(), lines.end());
  std::string out;
  for (const std::string& l : lines) out += l;
  return out;
}

std::string Profiler::to_hot_blocks(const ProfileMeta& meta,
                                    size_t top_blocks) const {
  std::vector<std::pair<uint32_t, const Block*>> hot;
  hot.reserve(blocks_.size());
  for (const auto& [rpc, blk] : blocks_) hot.emplace_back(rpc, &blk);
  std::sort(hot.begin(), hot.end(),
            [](const auto& a, const auto& b) {
              if (a.second->count != b.second->count)
                return a.second->count > b.second->count;
              return a.first < b.first;
            });
  if (hot.size() > top_blocks) hot.resize(top_blocks);

  std::string out;
  out += "hot blocks: " + meta.app + " (" + meta.layout + ", seed " +
         std::to_string(meta.seed) + ")\n";
  const bool can_disasm = image_.layout != binary::Layout::kNaiveIlr;
  size_t rank = 1;
  for (const auto& [rpc, blk] : hot) {
    out += "#" + std::to_string(rank++) + " rpc=" + hex32(rpc) +
           " upc=" + hex32(blk->upc) + " func=" +
           func_name(func_of(blk->upc)) + " count=" +
           std::to_string(blk->count) + " cycles=" +
           std::to_string(blk->cycles) + "\n";
    if (!can_disasm || !image_.in_code(blk->upc)) continue;
    // Annotate with the block body: decode from the leader until the first
    // control transfer (bounded, blocks are short).
    constexpr size_t kMaxInstrs = 32;
    const size_t off = blk->upc - image_.code_base;
    const size_t len = std::min<size_t>(image_.code.size() - off,
                                        kMaxInstrs * isa::kMaxInstrLength);
    const auto entries = isa::disassemble(
        std::span<const uint8_t>(image_.code.data() + off, len), blk->upc);
    size_t shown = 0;
    for (const auto& e : entries) {
      if (shown++ >= kMaxInstrs) break;
      out += "    " + hex32(e.addr) + ": " + isa::format_instr(e.instr) + "\n";
      if (e.instr.is_control()) break;
    }
  }
  return out;
}

}  // namespace vcfr::profile
