// Guest-level profiler: cycle attribution folded back to original-space
// function names (the measurement behind the paper's Figs. 13-14).
//
// The telemetry subsystem (PR 2) answers "how many DRC misses happened";
// this subsystem answers "which guest function paid for them". It keeps:
//
//   * a shadow call stack over the dynamic instruction stream, maintained
//     from the golden model's StepInfo records (calls push, returns pop,
//     tail transfers re-sync the leaf) and folded to original-space (UPC)
//     function extents — VCFR images keep their code bytes and function
//     symbols in the original layout, so UPC resolution works unchanged
//     under randomization;
//   * a flame tree (call-path -> exclusive cycles) behind the shadow
//     stack, exported in Brendan Gregg's collapsed-stack text form;
//   * per-function and global cause buckets: every simulated cycle is
//     attributed to exactly one cause (issue, L1-I miss, DRC miss, table
//     walk, ret-bitmap probe, branch redirect, context switch, shared-L2
//     contention) so the buckets sum to the core's cycle count — the
//     conservation property tests/test_profile.cpp pins;
//   * RPC-keyed basic-block hotness with annotated disassembly for the
//     top-N report.
//
// The profiler is pure observation: it never changes a simulated result,
// costs one pointer test when detached (emu::Emulator::set_profiler,
// sim::CpuCore::attach_profiler), and all exports are byte-identical
// across same-seed runs.
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "binary/image.hpp"
#include "emu/emulator.hpp"

namespace vcfr::profile {

/// Where a simulated cycle went. The first seven are per-instruction
/// pipeline causes; the last two are kernel-attributed externals (fleet
/// context-switch overhead and shared-L2 round-commit penalties).
enum class Cause : uint8_t {
  kIssue = 0,       // base issue/execute occupancy (everything unclaimed)
  kIl1Miss,         // instruction-fetch miss latency
  kDmem,            // data-side L1 miss stall
  kDrcMiss,         // DRC miss filled from the dedicated L2 backing buffer
  kTableWalk,       // DRC miss walked through the memory hierarchy
  kRetBitmap,       // ret-bitmap cache probe extra latency (SIV-C loads)
  kRedirect,        // mispredict pipeline-refill bubble
  kContextSwitch,   // kernel context-switch overhead (fleet only)
  kL2Contention,    // shared-L2 queue/underestimate penalty (fleet only)
};
inline constexpr size_t kNumCauses = 9;

[[nodiscard]] std::string_view cause_name(Cause cause);
[[nodiscard]] std::string_view layout_name(binary::Layout layout);

/// Per-retire cost components gathered by the cycle simulator. `delta` is
/// the cycles the core's clock advanced for this retire; the components
/// may overlap each other and the delta (the pipeline hides latency), so
/// the profiler claims them greedily against the delta in decreasing
/// specificity — whatever no component claims is issue time. The golden
/// model (no clock) reports delta=1 and no components.
struct RetireCosts {
  uint64_t delta = 0;
  uint32_t il1 = 0;          // instruction-fetch miss latency
  uint32_t dmem = 0;         // data-side L1 miss latency
  uint32_t bitmap = 0;       // ret-bitmap probe extra latency
  uint32_t drc_backing = 0;  // critical-path DRC fill from the L2 buffer
  uint32_t walk = 0;         // critical-path DRC table walk
  uint32_t redirect = 0;     // mispredict refill bubble
};

/// Export header: identifies the run and carries the conservation target
/// (`expected_cycles` — the core's cycle count; the export's "conserved"
/// flag records whether the attributed cycles match it exactly).
struct ProfileMeta {
  std::string app;
  std::string layout;
  uint64_t seed = 0;
  uint64_t expected_cycles = 0;
};

class Profiler {
 public:
  /// `image` must outlive the profiler. Function extents are built from
  /// its symbol table (original-space addresses — identical between an
  /// original image and its VCFR sibling); the hot-block report
  /// disassembles its code bytes.
  explicit Profiler(const binary::Image& image);

  /// One retired instruction: updates the shadow stack, attributes
  /// `costs.delta` cycles to the leaf function and cause buckets, and
  /// counts basic-block hotness.
  void on_retire(const emu::StepInfo& si, const RetireCosts& costs);

  /// Cycles the guest paid outside its own retire stream (context-switch
  /// overhead, commit penalties). Attributed to the pseudo-function
  /// "[external]" so totals stay conserved.
  void add_external(Cause cause, uint64_t cycles);

  /// Shared-L2 commit penalty blamed on `aggressor_asid` (the tenant whose
  /// request held the port / perturbed DRAM). Records the external cycles
  /// under kL2Contention and the per-aggressor breakdown.
  void add_l2_contention(uint32_t aggressor_asid, uint64_t cycles);

  [[nodiscard]] uint64_t instructions() const { return instructions_; }
  /// Total cycles attributed (retire deltas + externals). Equals the
  /// core's cycle count when the driver anchored attribution correctly.
  [[nodiscard]] uint64_t attributed_cycles() const { return attributed_; }
  [[nodiscard]] uint64_t cause_cycles(Cause cause) const {
    return causes_[static_cast<size_t>(cause)];
  }
  /// Fraction of guest cycles (externals excluded) resolved to a named
  /// function. 1.0 when nothing ran.
  [[nodiscard]] double resolved_fraction() const;
  [[nodiscard]] const std::map<uint32_t, uint64_t>& l2_contention_by_asid()
      const {
    return contention_by_asid_;
  }

  /// Per-function aggregate, sorted by cycles descending (address
  /// ascending as the tie-break). Pseudo-functions "[unknown]" (samples
  /// outside any extent) and "[external]" appear when non-empty.
  struct FunctionProfile {
    std::string name;
    uint32_t addr = 0;
    uint64_t cycles = 0;
    uint64_t instructions = 0;
    std::array<uint64_t, kNumCauses> causes{};
  };
  [[nodiscard]] std::vector<FunctionProfile> functions() const;

  /// Deterministic JSON profile (docs/OBSERVABILITY.md documents the
  /// schema). No trailing newline — composable as a nested value.
  [[nodiscard]] std::string to_json(const ProfileMeta& meta,
                                    size_t top_blocks = 10) const;
  /// Collapsed-stack flamegraph text ("main;foo;bar 123\n" per call path,
  /// exclusive cycles, lexicographically sorted).
  [[nodiscard]] std::string to_collapsed() const;
  /// Top-N hot basic blocks with annotated disassembly.
  [[nodiscard]] std::string to_hot_blocks(const ProfileMeta& meta,
                                          size_t top_blocks) const;

 private:
  /// One resolved function extent [addr, end) in original space.
  struct Extent {
    uint32_t addr = 0;
    uint32_t end = 0;
    uint32_t sym = 0;  // index into image_.functions
  };
  /// One flame-tree node: a distinct (caller path, function) pair.
  struct Node {
    int32_t parent = -1;  // node id, -1 = root
    int32_t func = -1;    // extent index, -1 = unresolved
    uint64_t cycles = 0;
    uint64_t instructions = 0;
  };
  struct FuncAgg {
    uint64_t cycles = 0;
    uint64_t instructions = 0;
    std::array<uint64_t, kNumCauses> causes{};
  };
  struct Block {
    uint64_t count = 0;   // executions of the leader instruction
    uint64_t cycles = 0;  // cycles across the whole block
    uint32_t upc = 0;     // original-space address of the leader
  };
  static constexpr size_t kMaxDepth = 4096;

  [[nodiscard]] int32_t func_of(uint32_t upc) const;
  [[nodiscard]] int32_t intern_node(int32_t parent, int32_t func);
  [[nodiscard]] FuncAgg& agg_of(int32_t func) {
    return funcs_[func < 0 ? unknown_slot_ : static_cast<size_t>(func)];
  }
  [[nodiscard]] std::string func_name(int32_t func) const;

  const binary::Image& image_;
  std::vector<Extent> extents_;
  std::vector<FuncAgg> funcs_;  // extents + [unknown] + [external]
  size_t unknown_slot_ = 0;
  size_t external_slot_ = 0;

  std::vector<Node> nodes_;
  std::unordered_map<uint64_t, int32_t> node_memo_;  // (parent,func) -> id
  std::vector<int32_t> stack_;
  /// Calls not pushed because the stack hit kMaxDepth; matching returns
  /// decrement instead of popping.
  uint64_t depth_overflow_ = 0;

  std::unordered_map<uint32_t, Block> blocks_;  // keyed by leader RPC
  Block* cur_block_ = nullptr;
  bool next_is_leader_ = true;

  std::array<uint64_t, kNumCauses> causes_{};
  std::map<uint32_t, uint64_t> contention_by_asid_;
  uint64_t instructions_ = 0;
  uint64_t attributed_ = 0;
};

}  // namespace vcfr::profile
