#include "sim/bpred.hpp"

namespace vcfr::sim {

Gshare::Gshare(const BpredConfig& config)
    : history_mask_((1u << config.gshare_history_bits) - 1),
      table_mask_((1u << config.gshare_table_bits) - 1),
      counters_(1u << config.gshare_table_bits, 2) {}

uint32_t Gshare::index(uint32_t pc) const {
  return ((pc >> 1) ^ history_) & table_mask_;
}

bool Gshare::predict(uint32_t pc) const {
  return counters_[index(pc)] >= 2;
}

void Gshare::update(uint32_t pc, bool taken) {
  uint8_t& counter = counters_[index(pc)];
  if (taken && counter < 3) ++counter;
  if (!taken && counter > 0) --counter;
  history_ = ((history_ << 1) | (taken ? 1u : 0u)) & history_mask_;
}

Btb::Btb(const BpredConfig& config)
    : sets_(config.btb_sets), assoc_(config.btb_assoc) {
  entries_.resize(static_cast<size_t>(sets_) * assoc_);
}

std::optional<AddrPair> Btb::lookup(uint32_t pc) {
  const uint32_t set = (pc >> 1) & (sets_ - 1);
  const uint32_t tag = pc;
  for (uint32_t w = 0; w < assoc_; ++w) {
    Entry& e = entries_[set * assoc_ + w];
    if (e.valid && e.tag == tag) {
      e.lru = ++tick_;
      return e.target;
    }
  }
  return std::nullopt;
}

void Btb::update(uint32_t pc, AddrPair target) {
  const uint32_t set = (pc >> 1) & (sets_ - 1);
  const uint32_t tag = pc;
  Entry* victim = nullptr;
  for (uint32_t w = 0; w < assoc_; ++w) {
    Entry& e = entries_[set * assoc_ + w];
    if (e.valid && e.tag == tag) {
      victim = &e;
      break;
    }
    if (!e.valid) {
      if (victim == nullptr || victim->valid) victim = &e;
    } else if (victim == nullptr || (victim->valid && e.lru < victim->lru)) {
      victim = &e;
    }
  }
  victim->valid = true;
  victim->tag = tag;
  victim->target = target;
  victim->lru = ++tick_;
}

void Ras::push(AddrPair pair) {
  if (stack_.size() >= capacity_) {
    stack_.erase(stack_.begin());  // overflow drops the oldest frame
  }
  stack_.push_back(pair);
}

std::optional<AddrPair> Ras::pop() {
  if (stack_.empty()) return std::nullopt;
  const AddrPair top = stack_.back();
  stack_.pop_back();
  return top;
}

}  // namespace vcfr::sim
