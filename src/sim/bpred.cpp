#include "sim/bpred.hpp"

#include "binary/state_io.hpp"

namespace vcfr::sim {

Gshare::Gshare(const BpredConfig& config)
    : history_mask_((1u << config.gshare_history_bits) - 1),
      table_mask_((1u << config.gshare_table_bits) - 1),
      counters_(1u << config.gshare_table_bits, 2) {}

uint32_t Gshare::index(uint32_t pc) const {
  return ((pc >> 1) ^ history_) & table_mask_;
}

bool Gshare::predict(uint32_t pc) const {
  return counters_[index(pc)] >= 2;
}

void Gshare::update(uint32_t pc, bool taken) {
  uint8_t& counter = counters_[index(pc)];
  if (taken && counter < 3) ++counter;
  if (!taken && counter > 0) --counter;
  history_ = ((history_ << 1) | (taken ? 1u : 0u)) & history_mask_;
}

void Gshare::save_state(binary::StateWriter& w) const {
  w.u32(history_);
  w.u32(static_cast<uint32_t>(counters_.size()));
  for (const uint8_t c : counters_) w.u8(c);
}

void Gshare::load_state(binary::StateReader& r) {
  history_ = r.u32();
  const uint32_t n = r.count(1u << 24);
  if (n != counters_.size()) {
    throw binary::FormatError(binary::FormatFault::kImplausible,
                              "checkpoint gshare geometry mismatch");
  }
  for (uint8_t& c : counters_) c = r.u8();
}

Btb::Btb(const BpredConfig& config)
    : sets_(config.btb_sets), assoc_(config.btb_assoc) {
  entries_.resize(static_cast<size_t>(sets_) * assoc_);
}

std::optional<AddrPair> Btb::lookup(uint32_t pc) {
  const uint32_t set = (pc >> 1) & (sets_ - 1);
  const uint32_t tag = pc;
  for (uint32_t w = 0; w < assoc_; ++w) {
    Entry& e = entries_[set * assoc_ + w];
    if (e.valid && e.tag == tag) {
      e.lru = ++tick_;
      return e.target;
    }
  }
  return std::nullopt;
}

void Btb::update(uint32_t pc, AddrPair target) {
  const uint32_t set = (pc >> 1) & (sets_ - 1);
  const uint32_t tag = pc;
  Entry* victim = nullptr;
  for (uint32_t w = 0; w < assoc_; ++w) {
    Entry& e = entries_[set * assoc_ + w];
    if (e.valid && e.tag == tag) {
      victim = &e;
      break;
    }
    if (!e.valid) {
      if (victim == nullptr || victim->valid) victim = &e;
    } else if (victim == nullptr || (victim->valid && e.lru < victim->lru)) {
      victim = &e;
    }
  }
  victim->valid = true;
  victim->tag = tag;
  victim->target = target;
  victim->lru = ++tick_;
}

void Btb::save_state(binary::StateWriter& w) const {
  w.u64(tick_);
  w.u32(static_cast<uint32_t>(entries_.size()));
  for (const Entry& e : entries_) {
    w.b(e.valid);
    w.u32(e.tag);
    w.u32(e.target.rand);
    w.u32(e.target.orig);
    w.u64(e.lru);
  }
}

void Btb::load_state(binary::StateReader& r) {
  tick_ = r.u64();
  const uint32_t n = r.count(1u << 24);
  if (n != entries_.size()) {
    throw binary::FormatError(binary::FormatFault::kImplausible,
                              "checkpoint BTB geometry mismatch");
  }
  for (Entry& e : entries_) {
    e.valid = r.b();
    e.tag = r.u32();
    e.target.rand = r.u32();
    e.target.orig = r.u32();
    e.lru = r.u64();
  }
}

void Ras::save_state(binary::StateWriter& w) const {
  w.u32(static_cast<uint32_t>(stack_.size()));
  for (const AddrPair& p : stack_) {
    w.u32(p.rand);
    w.u32(p.orig);
  }
}

void Ras::load_state(binary::StateReader& r) {
  stack_.clear();
  const uint32_t n = r.count(1u << 16);
  for (uint32_t i = 0; i < n; ++i) {
    AddrPair p;
    p.rand = r.u32();
    p.orig = r.u32();
    stack_.push_back(p);
  }
}

void Ras::push(AddrPair pair) {
  if (stack_.size() >= capacity_) {
    stack_.erase(stack_.begin());  // overflow drops the oldest frame
  }
  stack_.push_back(pair);
}

std::optional<AddrPair> Ras::pop() {
  if (stack_.empty()) return std::nullopt;
  const AddrPair top = stack_.back();
  stack_.pop_back();
  return top;
}

}  // namespace vcfr::sim
