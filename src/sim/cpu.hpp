// Cycle-level model of the paper's machine (§VI-C): a 1.6 GHz single-issue
// in-order x86-style pipeline with detailed, stateful front-end and memory
// structures. It executes all three image layouts:
//
//   * kOriginal  — the no-randomization baseline;
//   * kNaiveIlr  — straightforward hardware ILR: fetch follows randomized
//                  addresses (address mapping itself is free, §III), so
//                  the penalty is purely the destroyed fetch locality;
//   * kVcfr      — the paper's proposal: fetch streams along the original
//                  space (UPC), the architectural control flow lives in the
//                  randomized space (RPC), and the DRC translates between
//                  them on demand.
//
// Timing model: the golden-model emulator supplies the exact dynamic
// instruction stream; the simulator charges cycle costs through stateful
// caches, TLBs, DRAM, predictors, and the DRC, composing per-instruction
// fetch/decode/issue/execute times with in-order single-issue constraints,
// an 18-entry instruction-queue fetch window, and a store buffer. This is
// an analytic pipeline over real structures (see DESIGN.md §2 for the
// XIOSim substitution rationale).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "binary/image.hpp"
#include "cache/memhier.hpp"
#include "core/drc.hpp"
#include "core/ret_bitmap.hpp"
#include "emu/emulator.hpp"
#include "power/energy.hpp"
#include "sim/bpred.hpp"
#include "telemetry/telemetry.hpp"

namespace vcfr::core {
class TranslationWalker;
}

namespace vcfr::profile {
class Profiler;
}  // namespace vcfr::profile

namespace vcfr::sim {

struct CpuConfig {
  cache::MemHierConfig mem{};
  core::DrcConfig drc{};
  core::RetBitmapConfig bitmap{};
  BpredConfig bpred{};
  power::EnergyParams energy{};

  uint32_t iq_size = 18;          // instruction queue (macro-ops)
  uint32_t store_buffer = 32;     // load/store queue entries used by stores
  /// Instructions issued per cycle. 1 = the paper's machine; >1 models a
  /// W-wide *in-order* superscalar — a first step toward the out-of-order
  /// design §IX names as future work (bench/future_superscalar).
  uint32_t issue_width = 1;
  uint32_t decode_latency = 3;    // pre-decode + decode + alloc
  uint32_t redirect_penalty = 2;  // mispredict pipeline refill bubble
  /// Minimum cycles between the starts of two instruction-fetch misses
  /// (MSHR-limited outstanding fetch misses; the full miss latency is
  /// overlapped with IQ drain rather than blocking the front end).
  uint32_t ifetch_miss_initiation = 3;
  uint32_t mul_latency = 3;
  uint32_t div_latency = 12;
  double clock_ghz = 1.6;
};

struct SimResult {
  std::string app;
  binary::Layout layout = binary::Layout::kOriginal;
  bool halted = false;
  std::string error;

  uint64_t instructions = 0;
  uint64_t cycles = 0;
  [[nodiscard]] double ipc() const {
    return cycles == 0 ? 0.0
                       : static_cast<double>(instructions) /
                             static_cast<double>(cycles);
  }
  [[nodiscard]] double cpi() const {
    return instructions == 0 ? 0.0
                             : static_cast<double>(cycles) /
                                   static_cast<double>(instructions);
  }

  cache::CacheStats il1;
  cache::CacheStats dl1;
  cache::CacheStats l2;
  cache::L2PressureStats l2_pressure;
  uint64_t prefetches_issued = 0;
  cache::TlbStats itlb;
  cache::TlbStats dtlb;
  dram::DramStats dram;
  BpredStats bpred;
  core::DrcStats drc;
  /// Populated only when DrcConfig::l2_entries > 0 (ablation mode).
  core::DrcStats drc_l2;
  uint64_t drc_table_walks = 0;
  core::RetBitmapStats ret_bitmap;
  power::PowerAccount power;
};

/// A resumable, stateful core: the pipeline/cache/predictor model that
/// `simulate()` used to keep in loop locals, promoted to an object so the
/// OS layer (src/os/) can time-slice several processes on one core. The
/// structural state — caches, DRC, predictors, return-bitmap cache, and
/// the cycle clock — persists across `install()` boundaries (pollution and
/// flush costs are the point); only the transient pipeline state (fetch
/// line, instruction-queue and store-buffer rings) is reset when a new
/// process is installed.
///
/// Constructed with a SharedL2Port, the core's private L2/DRAM are
/// bypassed and all L2-level traffic contends on the fleet's shared cache
/// (see cache/shared_l2.hpp for the deterministic round protocol).
class CpuCore {
 public:
  explicit CpuCore(const CpuConfig& config,
                   cache::SharedL2Port* shared_port = nullptr);

  /// Installs a process's execution context: layout semantics, the walker
  /// over its kernel-owned tables, and its address-space id for shared-L2
  /// tagging. Resets transient pipeline state anchored at `now()`. The DRC
  /// flush itself is the kernel's job (core::ContextManager) — hardware
  /// only provides the flush, policy lives above.
  void install(binary::Layout layout, core::TranslationWalker* walker,
               uint32_t asid);

  /// Runs up to `max_instructions` steps of `emulator`, charging timing.
  /// Returns the number of instructions retired (stops early on halt or
  /// fault).
  uint64_t run(emu::Emulator& emulator, uint64_t max_instructions);

  /// Pushes every timing horizon back by `cycles` — used by the fleet
  /// kernel for context-switch overhead and shared-L2 contention penalties
  /// discovered at round commit.
  void stall(uint64_t cycles);

  /// The core's clock: no new work can start before this cycle.
  [[nodiscard]] uint64_t now() const;

  [[nodiscard]] uint64_t retired() const { return retired_; }
  [[nodiscard]] uint64_t cycles() const { return last_done_ + 1; }
  [[nodiscard]] cache::MemHier& mem() { return mem_; }
  [[nodiscard]] core::Drc& drc() { return drc_; }
  [[nodiscard]] core::RetBitmapCache& ret_bitmap_cache() { return bitmap_; }
  [[nodiscard]] const BpredStats& bpred_stats() const { return bpstats_; }

  /// Snapshot of every structural statistic plus the energy account, in
  /// SimResult form (app/layout/halted/error left for the caller).
  [[nodiscard]] SimResult harvest() const;

  /// Checkpoint support: the full structural + pipeline state. The walker
  /// pointer is process-owned and is NOT serialized — after load_state the
  /// kernel rebinds it with rebind_walker() (install() would reset the
  /// transient pipeline and diverge timing).
  void save_state(binary::StateWriter& w) const;
  void load_state(binary::StateReader& r);
  /// Swaps the translation walker without touching pipeline state (the
  /// restored core resumes mid-stream against the restored process's
  /// rebuilt walker).
  void rebind_walker(core::TranslationWalker* walker) { walker_ = walker; }

  // ---- telemetry (all optional; disabled = a null-pointer test) --------
  /// Binds every structural statistic into `scope` (pipeline counters,
  /// the whole memory hierarchy, DRC, predictors, return bitmap) and
  /// creates this core's latency histograms.
  void register_stats(const telemetry::Scope& scope);
  /// Events (fetch stalls, DRC misses, table walks, bitmap misses) go to
  /// `lane`; pass nullptr to stop tracing.
  void attach_trace(telemetry::TraceLane* lane) { lane_ = lane; }
  /// The sampler is polled once per retired instruction — only attach in
  /// single-threaded use (the fleet kernel samples at round boundaries
  /// instead, since cores execute on parallel host threads).
  void attach_sampler(telemetry::Sampler* sampler) { sampler_ = sampler; }
  /// Attaches a guest profiler (nullptr detaches). Subsequent retires
  /// report their clock advance and cost components to it. Attribution is
  /// anchored at the *current* clock: cycles that passed before attachment
  /// (earlier tenants, kernel stalls) are not re-attributed, so the fleet
  /// kernel can re-attach each slice after charging its own overhead
  /// explicitly via Profiler::add_external. On a virgin core the anchor
  /// excludes the base cycle so attributed cycles total cycles() exactly.
  void attach_profiler(profile::Profiler* profiler) {
    prof_ = profiler;
    prof_seen_ = retired_ == 0 ? last_done_ : last_done_ + 1;
    prof_pend_redirect_ = prof_pend_walk_ = prof_pend_backing_ = 0;
  }

 private:
  void retire(const emu::StepInfo& si);
  uint32_t drc_resolve(uint32_t key, bool derand, uint64_t now);

  CpuConfig config_;
  cache::MemHier mem_;
  core::Drc drc_;
  std::unique_ptr<core::Drc> drc_l2_;
  core::RetBitmapCache bitmap_;
  Gshare gshare_;
  Btb btb_;
  Ras ras_;
  BpredStats bpstats_;
  core::TranslationWalker* walker_ = nullptr;
  bool vcfr_ = false;
  bool naive_ = false;
  uint32_t asid_ = 0;

  // Telemetry attachment points (null = disabled).
  telemetry::TraceLane* lane_ = nullptr;
  telemetry::Sampler* sampler_ = nullptr;
  telemetry::Histogram* walk_hist_ = nullptr;
  telemetry::Histogram* fetch_stall_hist_ = nullptr;

  // Guest profiler attachment (null = disabled). prof_seen_ is the clock
  // value already attributed; each retire reports the advance since then.
  profile::Profiler* prof_ = nullptr;
  uint64_t prof_seen_ = 0;
  // Critical-path components of the last drc_resolve call (for the
  // profiler's cause split between table walks and L2-buffer fills).
  uint32_t resolve_walk_ = 0;
  uint32_t resolve_backing_ = 0;
  // A mispredict's refill bubble (and any critical-path walk under it)
  // delays the *next* fetch, so its cycles surface in the next retire's
  // clock advance — carried here and reported with that retire.
  uint32_t prof_pend_redirect_ = 0;
  uint32_t prof_pend_walk_ = 0;
  uint32_t prof_pend_backing_ = 0;

  // Pipeline timing state (absolute cycles).
  uint64_t fetch_ready_ = 0;
  uint64_t last_issue_ = 0;
  uint32_t issued_in_cycle_ = 0;
  uint64_t block_until_ = 0;
  uint64_t last_done_ = 0;
  uint32_t cur_line_;
  std::vector<uint64_t> issue_ring_;
  std::vector<uint64_t> store_ring_;
  size_t store_head_ = 0;

  uint64_t retired_ = 0;
  uint64_t table_walks_ = 0;

  // Instruction-mix counters for the power model.
  uint64_t n_alu_ = 0, n_mul_ = 0, n_div_ = 0, n_mem_ = 0, n_branch_ = 0;
  uint64_t n_ras_ops_ = 0, n_btb_ops_ = 0;
};

/// Simulates `image` for up to `max_instructions` dynamic instructions (or
/// to completion). The image is loaded into a fresh memory. With a
/// `telemetry` session the core registers its stats under scope "core0",
/// traces to lane 0, and drives the sampler from its cycle clock.
[[nodiscard]] SimResult simulate(const binary::Image& image,
                                 uint64_t max_instructions,
                                 const CpuConfig& config = {},
                                 telemetry::Telemetry* telemetry = nullptr,
                                 profile::Profiler* profiler = nullptr);

}  // namespace vcfr::sim
