// Cycle-level model of the paper's machine (§VI-C): a 1.6 GHz single-issue
// in-order x86-style pipeline with detailed, stateful front-end and memory
// structures. It executes all three image layouts:
//
//   * kOriginal  — the no-randomization baseline;
//   * kNaiveIlr  — straightforward hardware ILR: fetch follows randomized
//                  addresses (address mapping itself is free, §III), so
//                  the penalty is purely the destroyed fetch locality;
//   * kVcfr      — the paper's proposal: fetch streams along the original
//                  space (UPC), the architectural control flow lives in the
//                  randomized space (RPC), and the DRC translates between
//                  them on demand.
//
// Timing model: the golden-model emulator supplies the exact dynamic
// instruction stream; the simulator charges cycle costs through stateful
// caches, TLBs, DRAM, predictors, and the DRC, composing per-instruction
// fetch/decode/issue/execute times with in-order single-issue constraints,
// an 18-entry instruction-queue fetch window, and a store buffer. This is
// an analytic pipeline over real structures (see DESIGN.md §2 for the
// XIOSim substitution rationale).
#pragma once

#include <cstdint>
#include <string>

#include "binary/image.hpp"
#include "cache/memhier.hpp"
#include "core/drc.hpp"
#include "core/ret_bitmap.hpp"
#include "power/energy.hpp"
#include "sim/bpred.hpp"

namespace vcfr::sim {

struct CpuConfig {
  cache::MemHierConfig mem{};
  core::DrcConfig drc{};
  core::RetBitmapConfig bitmap{};
  BpredConfig bpred{};
  power::EnergyParams energy{};

  uint32_t iq_size = 18;          // instruction queue (macro-ops)
  uint32_t store_buffer = 32;     // load/store queue entries used by stores
  /// Instructions issued per cycle. 1 = the paper's machine; >1 models a
  /// W-wide *in-order* superscalar — a first step toward the out-of-order
  /// design §IX names as future work (bench/future_superscalar).
  uint32_t issue_width = 1;
  uint32_t decode_latency = 3;    // pre-decode + decode + alloc
  uint32_t redirect_penalty = 2;  // mispredict pipeline refill bubble
  /// Minimum cycles between the starts of two instruction-fetch misses
  /// (MSHR-limited outstanding fetch misses; the full miss latency is
  /// overlapped with IQ drain rather than blocking the front end).
  uint32_t ifetch_miss_initiation = 3;
  uint32_t mul_latency = 3;
  uint32_t div_latency = 12;
  double clock_ghz = 1.6;
};

struct SimResult {
  std::string app;
  binary::Layout layout = binary::Layout::kOriginal;
  bool halted = false;
  std::string error;

  uint64_t instructions = 0;
  uint64_t cycles = 0;
  [[nodiscard]] double ipc() const {
    return cycles == 0 ? 0.0
                       : static_cast<double>(instructions) /
                             static_cast<double>(cycles);
  }
  [[nodiscard]] double cpi() const {
    return instructions == 0 ? 0.0
                             : static_cast<double>(cycles) /
                                   static_cast<double>(instructions);
  }

  cache::CacheStats il1;
  cache::CacheStats dl1;
  cache::CacheStats l2;
  cache::L2PressureStats l2_pressure;
  uint64_t prefetches_issued = 0;
  cache::TlbStats itlb;
  cache::TlbStats dtlb;
  dram::DramStats dram;
  BpredStats bpred;
  core::DrcStats drc;
  /// Populated only when DrcConfig::l2_entries > 0 (ablation mode).
  core::DrcStats drc_l2;
  uint64_t drc_table_walks = 0;
  core::RetBitmapStats ret_bitmap;
  power::PowerAccount power;
};

/// Simulates `image` for up to `max_instructions` dynamic instructions (or
/// to completion). The image is loaded into a fresh memory.
[[nodiscard]] SimResult simulate(const binary::Image& image,
                                 uint64_t max_instructions,
                                 const CpuConfig& config = {});

}  // namespace vcfr::sim
