#include "sim/ooo.hpp"

#include <algorithm>
#include <array>
#include <memory>
#include <unordered_map>
#include <vector>

#include "binary/loader.hpp"
#include "core/translation.hpp"
#include "emu/emulator.hpp"

namespace vcfr::sim {

using binary::Layout;
using emu::StepInfo;
using isa::Op;

namespace {

enum class Fu { kAlu, kMul, kDiv, kLoad, kStore };

Fu fu_of(Op op) {
  switch (op) {
    case Op::kMulRR:
    case Op::kMulRI:
      return Fu::kMul;
    case Op::kDivRR:
      return Fu::kDiv;
    case Op::kLd:
    case Op::kLdb:
    case Op::kPopR:
    case Op::kRet:
      return Fu::kLoad;
    case Op::kSt:
    case Op::kStb:
    case Op::kPushR:
    case Op::kPushI:
    case Op::kCall:
    case Op::kCallR:
      return Fu::kStore;
    default:
      return Fu::kAlu;
  }
}

/// Per-class functional-unit pool. Pipelined pools track per-unit
/// initiation; unpipelined pools hold a unit until completion.
class FuPool {
 public:
  FuPool(uint32_t units, bool pipelined)
      : pipelined_(pipelined), free_at_(std::max(1u, units), 0) {}

  /// Earliest cycle >= `ready` a unit can accept this op; books the unit.
  uint64_t acquire(uint64_t ready, uint64_t latency) {
    auto it = std::min_element(free_at_.begin(), free_at_.end());
    const uint64_t start = std::max(ready, *it);
    *it = pipelined_ ? start + 1 : start + latency;
    return start;
  }

 private:
  bool pipelined_;
  std::vector<uint64_t> free_at_;
};

/// Width-limited slot allocator: at most `width` events per cycle, in
/// program order (used for fetch, dispatch, and retire bandwidth).
class SlotAllocator {
 public:
  explicit SlotAllocator(uint32_t width) : width_(width) {}

  uint64_t allocate(uint64_t earliest) {
    if (earliest > cycle_) {
      cycle_ = earliest;
      used_ = 1;
    } else if (used_ < width_) {
      ++used_;
    } else {
      ++cycle_;
      used_ = 1;
    }
    return cycle_;
  }

 private:
  uint32_t width_;
  uint64_t cycle_ = 0;
  uint32_t used_ = 0;
};

constexpr uint32_t kInvalidLine = 0xffffffffu;

}  // namespace

SimResult simulate_ooo(const binary::Image& image, uint64_t max_instructions,
                       const OooConfig& config) {
  const bool vcfr = image.layout == Layout::kVcfr;
  const bool naive = image.layout == Layout::kNaiveIlr;

  binary::Memory memory;
  binary::load(image, memory);
  emu::Emulator emulator(image, memory);

  cache::MemHier mem(config.mem);
  core::Drc drc(config.drc);
  core::TranslationWalker walker(image.tables, mem);
  core::RetBitmapCache bitmap(config.bitmap, mem);
  Gshare gshare(config.bpred);
  Btb btb(config.bpred);
  Ras ras(config.bpred);
  BpredStats bpstats;

  const uint32_t line_bytes = config.mem.il1.line_bytes;
  const uint32_t line_mask = ~(line_bytes - 1);

  // Front end.
  uint64_t fetch_ready = 0;
  uint32_t cur_line = kInvalidLine;
  SlotAllocator fetch_slots(config.width);

  // Back end.
  SlotAllocator dispatch_slots(config.width);
  SlotAllocator retire_slots(config.width);
  std::vector<uint64_t> retire_ring(config.rob_size, 0);
  uint64_t prev_retire = 0;

  // Dependency state: completion time of the last writer per register
  // (r0..r15 + flags).
  std::array<uint64_t, 17> reg_ready{};
  // Store-to-load memory dependences at word granularity.
  std::unordered_map<uint32_t, uint64_t> store_complete;

  FuPool alu_pool(config.alu_units, /*pipelined=*/true);
  FuPool mul_pool(config.mul_units, true);
  FuPool div_pool(config.div_units, /*pipelined=*/false);
  FuPool load_pool(config.load_ports, true);
  FuPool store_pool(config.store_ports, true);

  uint64_t n_alu = 0, n_mul = 0, n_div = 0, n_mem = 0;
  uint64_t n_ras_ops = 0, n_btb_ops = 0;
  uint64_t last_retire_time = 0;

  auto drc_resolve = [&](uint32_t key, bool derand, uint64_t now) -> uint32_t {
    const auto hit = drc.lookup(key, derand);
    if (hit) return 0;
    const core::WalkResult wr = walker.walk(key, derand, now);
    drc.insert(key, derand, wr.value);
    return wr.latency;
  };

  StepInfo si;
  uint64_t retired = 0;
  while (retired < max_instructions && emulator.step(&si)) {
    ++retired;
    const uint32_t fetch_pc = naive ? si.rpc : si.upc;
    const uint32_t next_fetch_pc = naive ? si.next_rpc : si.next_upc;
    const uint32_t bpred_pc = fetch_pc;

    // ---- fetch -----------------------------------------------------------
    uint64_t line_time = fetch_ready;
    uint32_t fetch_lat = 0;
    const uint32_t first_line = fetch_pc & line_mask;
    const uint32_t last_line = (fetch_pc + si.instr.length - 1) & line_mask;
    if (first_line != cur_line) {
      const auto r = mem.ifetch(first_line, line_time);
      fetch_lat += r.latency;
      cur_line = first_line;
      if (!r.l1_hit) {
        fetch_ready =
            std::max(fetch_ready, line_time + config.ifetch_miss_initiation);
      }
    }
    if (last_line != cur_line) {
      const auto r = mem.ifetch(last_line, line_time + fetch_lat);
      fetch_lat += r.latency;
      cur_line = last_line;
      if (!r.l1_hit) {
        fetch_ready =
            std::max(fetch_ready, line_time + config.ifetch_miss_initiation);
      }
    }
    const uint64_t fetch_done =
        fetch_slots.allocate(line_time + fetch_lat);

    // ---- dispatch (ROB occupancy + width) ----------------------------------
    const uint64_t rob_free = retire_ring[retired % config.rob_size];
    const uint64_t dispatch = dispatch_slots.allocate(
        std::max(fetch_done + config.decode_latency, rob_free));

    // ---- issue: register + memory dependences ------------------------------
    const isa::RegUse use = isa::reg_use(si.instr);
    uint64_t ready = dispatch;
    for (int r = 0; r < 17; ++r) {
      if (use.reads & (1u << r)) ready = std::max(ready, reg_ready[r]);
    }
    if (si.has_mem && !si.mem_is_store) {
      auto it = store_complete.find(si.mem_addr & ~3u);
      if (it != store_complete.end()) ready = std::max(ready, it->second);
    }

    uint64_t latency = 1;
    uint64_t issue = 0;
    switch (fu_of(si.instr.op)) {
      case Fu::kAlu:
        ++n_alu;
        issue = alu_pool.acquire(ready, 1);
        break;
      case Fu::kMul:
        ++n_mul;
        latency = config.mul_latency;
        issue = mul_pool.acquire(ready, latency);
        break;
      case Fu::kDiv:
        ++n_div;
        latency = config.div_latency;
        issue = div_pool.acquire(ready, latency);
        break;
      case Fu::kLoad: {
        ++n_mem;
        issue = load_pool.acquire(ready, 1);
        const auto r = mem.dread(si.mem_addr, issue);
        latency = std::max<uint64_t>(1, r.latency);
        if (si.bitmap_load) latency += bitmap.access(si.mem_addr, issue);
        break;
      }
      case Fu::kStore: {
        ++n_mem;
        issue = store_pool.acquire(ready, 1);
        const auto r = mem.dwrite(si.mem_addr, issue);
        latency = std::max<uint64_t>(1, r.latency);
        break;
      }
    }
    const uint64_t complete = issue + latency;
    if (si.has_mem && si.mem_is_store) {
      store_complete[si.mem_addr & ~3u] = complete;
    }
    for (int r = 0; r < 17; ++r) {
      if (use.writes & (1u << r)) reg_ready[r] = complete;
    }

    // Call-side rand lookups + bitmap marks: off the critical path.
    if (vcfr && si.needs_rand) {
      (void)drc_resolve(si.rand_key, /*derand=*/false, issue);
      (void)bitmap.access(si.mem_addr, issue);
    }

    // ---- control flow -------------------------------------------------------
    const bool is_cond = si.instr.op == Op::kJcc;
    bool mispredict = false;
    bool target_known = true;
    if (si.instr.is_control() && si.instr.op != Op::kHalt) {
      if (is_cond) {
        ++bpstats.cond_predictions;
        const bool pred = gshare.predict(bpred_pc);
        gshare.update(bpred_pc, si.is_taken_transfer);
        if (pred != si.is_taken_transfer) {
          ++bpstats.cond_mispredicts;
          mispredict = true;
          target_known = !si.is_taken_transfer;
        }
      }
      if (si.is_taken_transfer) {
        if (si.instr.op == Op::kRet) {
          ++bpstats.ras_pops;
          ++n_ras_ops;
          const auto pred = ras.pop();
          if (pred && pred->rand == si.next_rpc &&
              pred->orig == next_fetch_pc) {
            target_known = true;
          } else {
            ++bpstats.ras_mispredicts;
            mispredict = true;
            target_known = false;
          }
        } else {
          ++bpstats.btb_lookups;
          ++n_btb_ops;
          const auto pred = btb.lookup(bpred_pc);
          if (pred) ++bpstats.btb_hits;
          if (pred && pred->rand == si.next_rpc &&
              pred->orig == next_fetch_pc) {
            target_known = true;
          } else {
            mispredict = true;
            target_known = false;
            btb.update(bpred_pc, {si.next_rpc, next_fetch_pc});
          }
        }
      }
      if (si.instr.is_call()) {
        ++n_ras_ops;
        const uint32_t ret_orig =
            vcfr ? si.upc + si.instr.length : si.call_push_value;
        ras.push({si.call_push_value, ret_orig});
      }
    }
    uint32_t derand_walk = 0;
    if (vcfr && si.needs_derand && si.is_taken_transfer) {
      derand_walk = drc_resolve(si.derand_key, /*derand=*/true, complete);
    }
    if (mispredict) {
      const uint64_t stall = std::max<uint64_t>(
          config.redirect_penalty, target_known ? 0 : derand_walk);
      fetch_ready = std::max(fetch_ready, complete + stall);
      cur_line = kInvalidLine;
    }

    // ---- retire (in order, width-limited) -----------------------------------
    const uint64_t retire =
        retire_slots.allocate(std::max(complete + 1, prev_retire));
    prev_retire = retire;
    retire_ring[retired % config.rob_size] = retire;
    last_retire_time = retire;
    if (emulator.halted()) break;
  }

  // ---- results ---------------------------------------------------------------
  SimResult res;
  res.app = image.name;
  res.layout = image.layout;
  res.halted = emulator.halted();
  res.error = emulator.error();
  res.instructions = retired;
  res.cycles = last_retire_time + 1;
  res.il1 = mem.il1().stats();
  res.dl1 = mem.dl1().stats();
  res.l2 = mem.l2().stats();
  res.l2_pressure = mem.l2_pressure();
  res.prefetches_issued = mem.prefetch_stats().issued;
  res.itlb = mem.itlb().stats();
  res.dtlb = mem.dtlb().stats();
  res.dram = mem.dram().stats();
  res.bpred = bpstats;
  res.drc = drc.stats();
  res.drc_table_walks = walker.walks();
  res.ret_bitmap = bitmap.stats();

  const auto& ep = config.energy;
  auto sram = [](const cache::CacheConfig& c) {
    return power::sram_access_pj(c.size_bytes, c.assoc);
  };
  power::PowerAccount& pw = res.power;
  pw.core = static_cast<double>(retired) * ep.core_per_instr * 1.6 +
            static_cast<double>(n_alu) * ep.alu_op +
            static_cast<double>(n_mul) * ep.mul_op +
            static_cast<double>(n_div) * ep.div_op +
            static_cast<double>(n_mem) * ep.agen_op;
  pw.il1 = static_cast<double>(res.il1.accesses + res.il1.prefetch_fills) *
           sram(config.mem.il1);
  pw.dl1 = static_cast<double>(res.dl1.accesses) * sram(config.mem.dl1);
  pw.l2 = static_cast<double>(res.l2.accesses) * sram(config.mem.l2);
  pw.drc = static_cast<double>(res.drc.lookups) *
           power::sram_access_pj(drc.size_bytes(), config.drc.assoc) *
           ep.drc_array_factor;
  pw.bpred = static_cast<double>(bpstats.cond_predictions) * ep.bpred_access;
  pw.btb = static_cast<double>(n_btb_ops) * ep.btb_access;
  pw.ras = static_cast<double>(n_ras_ops) * ep.ras_access;
  pw.tlb = static_cast<double>(res.itlb.accesses + res.dtlb.accesses) *
           ep.tlb_access;
  pw.dram =
      static_cast<double>(res.dram.reads + res.dram.writes) * ep.dram_access;
  return res;
}

}  // namespace vcfr::sim
