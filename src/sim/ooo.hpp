// Out-of-order core model — the paper's §IX future work, built so the
// VCFR machinery can be evaluated beyond the single-issue in-order design
// ("in the near future, we will explore and extend the idea to the
// out-of-order superscalar processor").
//
// This is a trace-driven OOO timing model in the classic style: the
// golden-model emulator supplies the committed instruction stream, and
// per-instruction times are composed through
//
//   fetch (width-limited, line-granular, branch-predicted)
//     -> dispatch (ROB-occupancy limited)
//     -> issue (register/memory dependences + functional-unit ports)
//     -> complete  -> in-order retire (width-limited).
//
// Wrong-path fetch is not simulated (trace-driven models cannot see it);
// its cost appears as the redirect bubble after a mispredicted branch
// completes — the standard approximation.
//
// All VCFR mechanisms are shared with the in-order model: BTB/RAS carry
// (randomized, original) pairs, every executed randomized transfer probes
// the DRC, walks stall only mispredict redirects, call-side rand lookups
// and bitmap updates stay off the critical path.
#pragma once

#include "sim/cpu.hpp"

namespace vcfr::sim {

struct OooConfig {
  cache::MemHierConfig mem{};
  core::DrcConfig drc{};
  core::RetBitmapConfig bitmap{};
  BpredConfig bpred{};
  power::EnergyParams energy{};

  uint32_t rob_size = 64;
  uint32_t width = 4;          // fetch/dispatch/retire bandwidth per cycle
  uint32_t alu_units = 3;      // pipelined
  uint32_t mul_units = 1;      // pipelined
  uint32_t div_units = 1;      // unpipelined
  uint32_t load_ports = 1;
  uint32_t store_ports = 1;
  uint32_t decode_latency = 3;
  uint32_t redirect_penalty = 3;
  uint32_t mul_latency = 3;
  uint32_t div_latency = 12;
  uint32_t ifetch_miss_initiation = 2;  // more MSHRs than the in-order core
};

/// Simulates `image` on the out-of-order core. Result fields have the
/// same meaning as sim::simulate's.
[[nodiscard]] SimResult simulate_ooo(const binary::Image& image,
                                     uint64_t max_instructions,
                                     const OooConfig& config = {});

}  // namespace vcfr::sim
