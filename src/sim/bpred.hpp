// Front-end predictors: 2-level gshare direction predictor, branch target
// buffer, and return address stack (§VI-C).
//
// Under VCFR, prediction operates in the *original* (de-randomized) address
// space (§IV-D): the BTB stores both the randomized target (to verify the
// resolved instruction's encoded target without a DRC access) and the
// original target (to steer fetch); the RAS stores (randomized, original)
// return-address pairs pushed by calls. A correctly predicted transfer
// therefore needs no DRC lookup — the key property behind the paper's 2.1%
// overhead claim.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

namespace vcfr::binary {
class StateWriter;
class StateReader;
}  // namespace vcfr::binary

namespace vcfr::sim {

/// An address expressed in both instruction spaces.
struct AddrPair {
  uint32_t rand = 0;  // randomized (architectural) space
  uint32_t orig = 0;  // original (fetch) space
};

struct BpredConfig {
  uint32_t gshare_history_bits = 12;
  uint32_t gshare_table_bits = 12;  // 4096 2-bit counters
  uint32_t btb_sets = 128;
  uint32_t btb_assoc = 4;
  uint32_t ras_entries = 16;
};

struct BpredStats {
  uint64_t cond_predictions = 0;
  uint64_t cond_mispredicts = 0;
  uint64_t btb_lookups = 0;
  uint64_t btb_hits = 0;
  uint64_t ras_pops = 0;
  uint64_t ras_mispredicts = 0;

  [[nodiscard]] double cond_accuracy() const {
    return cond_predictions == 0
               ? 1.0
               : 1.0 - static_cast<double>(cond_mispredicts) /
                           static_cast<double>(cond_predictions);
  }
};

class Gshare {
 public:
  explicit Gshare(const BpredConfig& config);
  [[nodiscard]] bool predict(uint32_t pc) const;
  void update(uint32_t pc, bool taken);

  void save_state(binary::StateWriter& w) const;
  void load_state(binary::StateReader& r);

 private:
  [[nodiscard]] uint32_t index(uint32_t pc) const;
  uint32_t history_mask_;
  uint32_t table_mask_;
  uint32_t history_ = 0;
  std::vector<uint8_t> counters_;  // 2-bit saturating
};

class Btb {
 public:
  explicit Btb(const BpredConfig& config);
  [[nodiscard]] std::optional<AddrPair> lookup(uint32_t pc);
  void update(uint32_t pc, AddrPair target);

  void save_state(binary::StateWriter& w) const;
  void load_state(binary::StateReader& r);

 private:
  struct Entry {
    bool valid = false;
    uint32_t tag = 0;
    AddrPair target;
    uint64_t lru = 0;
  };
  uint32_t sets_;
  uint32_t assoc_;
  std::vector<Entry> entries_;
  uint64_t tick_ = 0;
};

class Ras {
 public:
  explicit Ras(const BpredConfig& config) : capacity_(config.ras_entries) {}
  void push(AddrPair pair);
  [[nodiscard]] std::optional<AddrPair> pop();

  void save_state(binary::StateWriter& w) const;
  void load_state(binary::StateReader& r);

 private:
  uint32_t capacity_;
  std::vector<AddrPair> stack_;
};

}  // namespace vcfr::sim
