#include "sim/cpu.hpp"

#include <algorithm>
#include <memory>
#include <vector>

#include "binary/loader.hpp"
#include "core/translation.hpp"
#include "emu/emulator.hpp"

namespace vcfr::sim {

using binary::Layout;
using emu::StepInfo;
using isa::Op;

namespace {

/// Per-op execute latency class.
enum class ExecClass { kAlu, kMul, kDiv, kLoad, kStore };

ExecClass exec_class(Op op) {
  switch (op) {
    case Op::kMulRR:
    case Op::kMulRI:
      return ExecClass::kMul;
    case Op::kDivRR:
      return ExecClass::kDiv;
    case Op::kLd:
    case Op::kLdb:
    case Op::kPopR:
    case Op::kRet:
      return ExecClass::kLoad;
    case Op::kSt:
    case Op::kStb:
    case Op::kPushR:
    case Op::kPushI:
    case Op::kCall:
    case Op::kCallR:
      return ExecClass::kStore;
    default:
      return ExecClass::kAlu;
  }
}

constexpr uint32_t kInvalidLine = 0xffffffffu;

}  // namespace

SimResult simulate(const binary::Image& image, uint64_t max_instructions,
                   const CpuConfig& config) {
  const bool vcfr = image.layout == Layout::kVcfr;
  const bool naive = image.layout == Layout::kNaiveIlr;

  binary::Memory memory;
  binary::load(image, memory);
  emu::Emulator emulator(image, memory);

  cache::MemHier mem(config.mem);
  core::Drc drc(config.drc);
  // Optional dedicated second-level DRC buffer (§IV-B's rejected
  // alternative, kept for the ablation study).
  std::unique_ptr<core::Drc> drc_l2;
  if (config.drc.l2_entries > 0) {
    drc_l2 = std::make_unique<core::Drc>(core::DrcConfig{
        .entries = config.drc.l2_entries,
        .assoc = config.drc.l2_assoc,
        .hit_latency = config.drc.l2_hit_latency});
  }
  core::TranslationWalker walker(image.tables, mem);
  core::RetBitmapCache bitmap(config.bitmap, mem);
  Gshare gshare(config.bpred);
  Btb btb(config.bpred);
  Ras ras(config.bpred);
  BpredStats bpstats;

  const uint32_t line_bytes = config.mem.il1.line_bytes;
  const uint32_t line_mask = ~(line_bytes - 1);

  // Pipeline timing state.
  uint64_t fetch_ready = 0;   // earliest cycle the next fetch can start
  uint64_t last_issue = 0;    // cycle of the most recent issue
  uint32_t issued_in_cycle = 0;  // slots consumed at last_issue
  uint64_t block_until = 0;   // blocking events (D-cache miss, divide, walk)
  uint64_t last_done = 0;     // latest completion (final cycle count)
  uint32_t cur_line = kInvalidLine;

  // Fetch may run at most iq_size instructions ahead of issue.
  std::vector<uint64_t> issue_ring(config.iq_size, 0);
  // Store buffer occupancy: a store holds an entry until issue+2.
  std::vector<uint64_t> store_ring(config.store_buffer, 0);
  size_t store_head = 0;

  // Instruction-mix counters for the power model.
  uint64_t n_alu = 0, n_mul = 0, n_div = 0, n_mem = 0, n_branch = 0;
  uint64_t n_ras_ops = 0, n_btb_ops = 0;

  // Probes the DRC for a translation; on a miss, performs the table walk
  // and fills the DRC. Returns the walk latency (0 on a hit). Whether that
  // latency stalls the pipeline depends on the caller: translations on a
  // correctly-predicted path verify off the critical path, while a
  // mispredict redirect must wait for the walk (§IV-B).
  auto drc_resolve = [&](uint32_t key, bool derand, uint64_t now) -> uint32_t {
    const auto hit = drc.lookup(key, derand);
    if (hit) return 0;
    if (drc_l2) {
      const auto l2_hit = drc_l2->lookup(key, derand);
      if (l2_hit) {
        drc.insert(key, derand, *l2_hit);
        return config.drc.l2_hit_latency;
      }
    }
    const core::WalkResult wr = walker.walk(key, derand, now);
    drc.insert(key, derand, wr.value);
    if (drc_l2) drc_l2->insert(key, derand, wr.value);
    return wr.latency;
  };

  StepInfo si;
  uint64_t retired = 0;
  while (retired < max_instructions && emulator.step(&si)) {
    ++retired;

    const uint32_t fetch_pc = naive ? si.rpc : si.upc;
    const uint32_t next_fetch_pc = naive ? si.next_rpc : si.next_upc;
    const uint32_t bpred_pc = fetch_pc;  // prediction in fetch space (§IV-D)

    // ---- fetch -----------------------------------------------------------
    uint64_t fetch_start =
        std::max(fetch_ready, issue_ring[retired % config.iq_size]);
    uint32_t fetch_lat = 0;
    const uint32_t first_line = fetch_pc & line_mask;
    const uint32_t last_line = (fetch_pc + si.instr.length - 1) & line_mask;
    if (first_line != cur_line) {
      const auto r = mem.ifetch(first_line, fetch_start);
      fetch_lat += r.latency;
      cur_line = first_line;
      if (!r.l1_hit) {
        // Non-blocking fetch miss: the next fetch may start once an MSHR
        // frees, while this miss overlaps with IQ drain.
        fetch_ready = fetch_start + config.ifetch_miss_initiation;
      }
    }
    if (last_line != cur_line) {  // instruction straddles two lines
      const auto r = mem.ifetch(last_line, fetch_start + fetch_lat);
      fetch_lat += r.latency;
      cur_line = last_line;
      if (!r.l1_hit) {
        fetch_ready = fetch_start + config.ifetch_miss_initiation;
      }
    }
    const uint64_t fetch_done = fetch_start + fetch_lat;
    // Pipelined initiation: a hit allows a new fetch next cycle.
    fetch_ready = std::max(fetch_ready, fetch_start + (fetch_lat > 0 ? 1 : 0));

    // ---- issue / execute ---------------------------------------------------
    // W-wide in-order issue: up to issue_width instructions share a cycle.
    const uint64_t width_floor =
        issued_in_cycle >= config.issue_width ? last_issue + 1 : last_issue;
    uint64_t issue = std::max(
        {fetch_done + config.decode_latency, width_floor, block_until});
    // Store-buffer back-pressure.
    if (si.has_mem && si.mem_is_store) {
      issue = std::max(issue, store_ring[store_head]);
    }

    uint64_t exec_lat = 1;
    bool blocking = false;  // holds the in-order pipeline until completion
    switch (exec_class(si.instr.op)) {
      case ExecClass::kAlu:
        ++n_alu;
        break;
      case ExecClass::kMul:
        ++n_mul;
        exec_lat = config.mul_latency;  // pipelined multiplier
        break;
      case ExecClass::kDiv:
        ++n_div;
        exec_lat = config.div_latency;
        blocking = true;  // unpipelined divider
        break;
      case ExecClass::kLoad: {
        ++n_mem;
        const auto r = mem.dread(si.mem_addr, issue);
        exec_lat = std::max<uint64_t>(1, r.latency);
        if (!r.l1_hit) blocking = true;  // blocking D-cache miss
        if (si.bitmap_load) {
          // §IV-C automatic de-randomization: consult the bitmap cache.
          const uint32_t extra = bitmap.access(si.mem_addr, issue);
          exec_lat += extra;
          if (extra > 0) blocking = true;
        }
        break;
      }
      case ExecClass::kStore: {
        ++n_mem;
        const auto r = mem.dwrite(si.mem_addr, issue);
        exec_lat = std::max<uint64_t>(1, r.latency);
        store_ring[store_head] = issue + 2;
        store_head = (store_head + 1) % config.store_buffer;
        break;
      }
    }

    // Calls that push a randomized return address obtain it from a DRC
    // rand-entry lookup (§IV-A option 2) and set the stack bitmap bit. The
    // pushed value is not needed until the matching return (predicted by
    // the RAS anyway), so the lookup, its walk, and the bitmap update all
    // proceed off the critical path; only statistics and cache/L2 state
    // are affected.
    if (vcfr && si.needs_rand) {
      (void)drc_resolve(si.rand_key, /*derand=*/false, issue);
      (void)bitmap.access(si.mem_addr, issue);
    }

    uint64_t exec_done = issue + exec_lat;
    if (blocking) block_until = exec_done;

    // ---- control flow ------------------------------------------------------
    const bool is_cond = si.instr.op == Op::kJcc;
    const bool is_transfer = si.instr.is_control() && si.instr.op != Op::kHalt;
    bool mispredict = false;
    bool target_known = true;  // translation available without the DRC?

    if (is_transfer) {
      ++n_branch;
      if (is_cond) {
        ++bpstats.cond_predictions;
        const bool pred_taken = gshare.predict(bpred_pc);
        gshare.update(bpred_pc, si.is_taken_transfer);
        if (pred_taken != si.is_taken_transfer) {
          ++bpstats.cond_mispredicts;
          mispredict = true;
          target_known = !si.is_taken_transfer;  // taken needs translation
        }
      }
      if (si.is_taken_transfer) {
        if (si.instr.op == Op::kRet) {
          ++bpstats.ras_pops;
          ++n_ras_ops;
          const auto pred = ras.pop();
          const bool ok = pred && pred->rand == si.next_rpc &&
                          pred->orig == next_fetch_pc;
          if (ok) {
            target_known = true;  // RAS pair carries the translation
          } else {
            ++bpstats.ras_mispredicts;
            mispredict = true;
            target_known = false;
          }
        } else {
          ++bpstats.btb_lookups;
          ++n_btb_ops;
          const auto pred = btb.lookup(bpred_pc);
          const bool ok = pred && pred->rand == si.next_rpc &&
                          pred->orig == next_fetch_pc;
          if (pred) ++bpstats.btb_hits;
          if (ok) {
            // Even on a direction mispredict, the BTB entry supplies the
            // (randomized, original) target pair — no DRC walk needed to
            // redirect (§IV-D).
            target_known = true;
          } else {
            mispredict = true;
            target_known = false;
            btb.update(bpred_pc, {si.next_rpc, next_fetch_pc});
          }
        }
      }
      if (si.instr.is_call()) {
        ++n_ras_ops;
        const uint32_t ret_orig_space =
            vcfr ? si.upc + si.instr.length : si.call_push_value;
        ras.push({si.call_push_value, ret_orig_space});
      }
    }

    // Every executed transfer whose target is expressed in the randomized
    // space consults the DRC (this is Fig 14's lookup stream). On a
    // correctly predicted path the translation only *verifies* the
    // prediction and any walk completes off the critical path; on a
    // mispredict, fetch cannot restart until the target is de-randomized.
    uint32_t derand_walk = 0;
    if (vcfr && si.needs_derand && si.is_taken_transfer) {
      derand_walk = drc_resolve(si.derand_key, /*derand=*/true, exec_done);
    }

    if (mispredict) {
      // The walk (when the translation was genuinely unavailable) overlaps
      // the pipeline-refill bubble.
      const uint64_t stall = std::max<uint64_t>(
          config.redirect_penalty, target_known ? 0 : derand_walk);
      fetch_ready = std::max(fetch_ready, exec_done + stall);
      cur_line = kInvalidLine;  // byte queue flushed
    }

    issue_ring[retired % config.iq_size] = issue;
    issued_in_cycle = issue == last_issue ? issued_in_cycle + 1 : 1;
    last_issue = issue;
    last_done = std::max(last_done, exec_done);
    if (emulator.halted()) break;
  }

  // ---- results --------------------------------------------------------------
  SimResult res;
  res.app = image.name;
  res.layout = image.layout;
  res.halted = emulator.halted();
  res.error = emulator.error();
  res.instructions = retired;
  res.cycles = last_done + 1;
  res.il1 = mem.il1().stats();
  res.dl1 = mem.dl1().stats();
  res.l2 = mem.l2().stats();
  res.l2_pressure = mem.l2_pressure();
  res.prefetches_issued = mem.prefetch_stats().issued;
  res.itlb = mem.itlb().stats();
  res.dtlb = mem.dtlb().stats();
  res.dram = mem.dram().stats();
  res.bpred = bpstats;
  res.drc = drc.stats();
  if (drc_l2) res.drc_l2 = drc_l2->stats();
  res.drc_table_walks = walker.walks();
  res.ret_bitmap = bitmap.stats();

  // ---- dynamic energy accounting (McPAT-style, §VI-A) -----------------------
  const auto& ep = config.energy;
  auto sram = [](const cache::CacheConfig& c) {
    return power::sram_access_pj(c.size_bytes, c.assoc);
  };
  power::PowerAccount& pw = res.power;
  pw.core = static_cast<double>(retired) * ep.core_per_instr +
            static_cast<double>(n_alu) * ep.alu_op +
            static_cast<double>(n_mul) * ep.mul_op +
            static_cast<double>(n_div) * ep.div_op +
            static_cast<double>(n_mem) * ep.agen_op;
  pw.il1 = static_cast<double>(res.il1.accesses + res.il1.prefetch_fills) *
           sram(config.mem.il1);
  pw.dl1 = static_cast<double>(res.dl1.accesses) * sram(config.mem.dl1);
  pw.l2 = static_cast<double>(res.l2.accesses) * sram(config.mem.l2);
  pw.drc = static_cast<double>(res.drc.lookups) *
           power::sram_access_pj(drc.size_bytes(), config.drc.assoc) *
           ep.drc_array_factor;
  if (drc_l2) {
    pw.drc += static_cast<double>(res.drc_l2.lookups) *
              power::sram_access_pj(drc_l2->size_bytes(), config.drc.l2_assoc) *
              ep.drc_array_factor;
  }
  pw.bpred = static_cast<double>(bpstats.cond_predictions) * ep.bpred_access;
  pw.btb = static_cast<double>(n_btb_ops) * ep.btb_access;
  pw.ras = static_cast<double>(n_ras_ops) * ep.ras_access;
  pw.tlb = static_cast<double>(res.itlb.accesses + res.dtlb.accesses) *
           ep.tlb_access;
  pw.dram = static_cast<double>(res.dram.reads + res.dram.writes) *
            ep.dram_access;
  return res;
}

}  // namespace vcfr::sim
