#include "sim/cpu.hpp"

#include <algorithm>

#include "binary/loader.hpp"
#include "binary/state_io.hpp"
#include "core/translation.hpp"
#include "emu/emulator.hpp"
#include "profile/profiler.hpp"

namespace vcfr::sim {

using binary::Layout;
using emu::StepInfo;
using isa::Op;

namespace {

/// Per-op execute latency class.
enum class ExecClass { kAlu, kMul, kDiv, kLoad, kStore };

ExecClass exec_class(Op op) {
  switch (op) {
    case Op::kMulRR:
    case Op::kMulRI:
      return ExecClass::kMul;
    case Op::kDivRR:
      return ExecClass::kDiv;
    case Op::kLd:
    case Op::kLdb:
    case Op::kPopR:
    case Op::kRet:
      return ExecClass::kLoad;
    case Op::kSt:
    case Op::kStb:
    case Op::kPushR:
    case Op::kPushI:
    case Op::kCall:
    case Op::kCallR:
      return ExecClass::kStore;
    default:
      return ExecClass::kAlu;
  }
}

constexpr uint32_t kInvalidLine = 0xffffffffu;

}  // namespace

CpuCore::CpuCore(const CpuConfig& config, cache::SharedL2Port* shared_port)
    : config_(config),
      mem_(config.mem, shared_port),
      drc_(config.drc),
      bitmap_(config.bitmap, mem_),
      gshare_(config.bpred),
      btb_(config.bpred),
      ras_(config.bpred),
      cur_line_(kInvalidLine),
      issue_ring_(config.iq_size, 0),
      store_ring_(config.store_buffer, 0) {
  // Optional dedicated second-level DRC buffer (§IV-B's rejected
  // alternative, kept for the ablation study).
  if (config.drc.l2_entries > 0) {
    drc_l2_ = std::make_unique<core::Drc>(core::DrcConfig{
        .entries = config.drc.l2_entries,
        .assoc = config.drc.l2_assoc,
        .hit_latency = config.drc.l2_hit_latency});
  }
}

uint64_t CpuCore::now() const {
  return std::max({last_done_, block_until_, fetch_ready_});
}

void CpuCore::install(Layout layout, core::TranslationWalker* walker,
                      uint32_t asid) {
  vcfr_ = layout == Layout::kVcfr;
  naive_ = layout == Layout::kNaiveIlr;
  walker_ = walker;
  asid_ = asid;
  mem_.set_asid(asid);
  // The pipeline drains across a switch: transient state re-anchors at the
  // current clock; caches/predictors/DRC deliberately keep their contents.
  const uint64_t t = now();
  fetch_ready_ = t;
  block_until_ = t;
  last_issue_ = t;
  issued_in_cycle_ = 0;
  cur_line_ = kInvalidLine;
  std::fill(issue_ring_.begin(), issue_ring_.end(), t);
  std::fill(store_ring_.begin(), store_ring_.end(), t);
  store_head_ = 0;
}

void CpuCore::stall(uint64_t cycles) {
  if (cycles == 0) return;
  fetch_ready_ += cycles;
  block_until_ += cycles;
  last_issue_ += cycles;
  last_done_ += cycles;
  for (auto& t : issue_ring_) t += cycles;
  for (auto& t : store_ring_) t += cycles;
}

// Probes the DRC for a translation; on a miss, performs the table walk
// and fills the DRC. Returns the walk latency (0 on a hit). Whether that
// latency stalls the pipeline depends on the caller: translations on a
// correctly-predicted path verify off the critical path, while a
// mispredict redirect must wait for the walk (§IV-B).
uint32_t CpuCore::drc_resolve(uint32_t key, bool derand, uint64_t now) {
  resolve_walk_ = 0;
  resolve_backing_ = 0;
  const auto hit = drc_.lookup(key, derand);
  if (hit) return 0;
  if (drc_l2_) {
    const auto l2_hit = drc_l2_->lookup(key, derand);
    if (l2_hit) {
      drc_.insert(key, derand, *l2_hit);
      resolve_backing_ = config_.drc.l2_hit_latency;
      return config_.drc.l2_hit_latency;
    }
  }
  ++table_walks_;
  const core::WalkResult wr = walker_->walk(key, derand, now);
  resolve_walk_ = wr.latency;
  drc_.insert(key, derand, wr.value);
  if (drc_l2_) drc_l2_->insert(key, derand, wr.value);
  if (lane_ != nullptr) {
    lane_->instant(telemetry::TraceEventType::kDrcMiss, asid_, now, key);
    lane_->span(telemetry::TraceEventType::kTableWalk, asid_, now, wr.latency,
                key);
  }
  if (walk_hist_ != nullptr) walk_hist_->record(wr.latency);
  return wr.latency;
}

uint64_t CpuCore::run(emu::Emulator& emulator, uint64_t max_instructions) {
  StepInfo si;
  uint64_t ran = 0;
  while (ran < max_instructions && emulator.step(&si)) {
    ++ran;
    retire(si);
    if (sampler_ != nullptr) sampler_->poll(last_done_);
    if (emulator.halted()) break;
  }
  return ran;
}

void CpuCore::retire(const StepInfo& si) {
  ++retired_;

  const uint32_t fetch_pc = naive_ ? si.rpc : si.upc;
  const uint32_t next_fetch_pc = naive_ ? si.next_rpc : si.next_upc;
  const uint32_t bpred_pc = fetch_pc;  // prediction in fetch space (§IV-D)

  // ---- fetch -----------------------------------------------------------
  const uint32_t line_bytes = config_.mem.il1.line_bytes;
  const uint32_t line_mask = ~(line_bytes - 1);
  uint64_t fetch_start =
      std::max(fetch_ready_, issue_ring_[retired_ % config_.iq_size]);
  uint32_t fetch_lat = 0;
  // Profiler cost components for this retire (dead stores when detached).
  uint32_t prof_il1 = 0;
  uint32_t prof_dmem = 0;
  uint32_t prof_bitmap = 0;
  const uint32_t first_line = fetch_pc & line_mask;
  const uint32_t last_line = (fetch_pc + si.instr.length - 1) & line_mask;
  if (first_line != cur_line_) {
    const auto r = mem_.ifetch(first_line, fetch_start);
    fetch_lat += r.latency;
    cur_line_ = first_line;
    if (!r.l1_hit) {
      // Non-blocking fetch miss: the next fetch may start once an MSHR
      // frees, while this miss overlaps with IQ drain.
      fetch_ready_ = fetch_start + config_.ifetch_miss_initiation;
      prof_il1 += r.latency;
      if (lane_ != nullptr) {
        lane_->span(telemetry::TraceEventType::kFetchStall, asid_,
                    fetch_start, r.latency, fetch_pc);
      }
      if (fetch_stall_hist_ != nullptr) fetch_stall_hist_->record(r.latency);
    }
  }
  if (last_line != cur_line_) {  // instruction straddles two lines
    const auto r = mem_.ifetch(last_line, fetch_start + fetch_lat);
    fetch_lat += r.latency;
    cur_line_ = last_line;
    if (!r.l1_hit) {
      fetch_ready_ = fetch_start + config_.ifetch_miss_initiation;
      prof_il1 += r.latency;
      if (lane_ != nullptr) {
        lane_->span(telemetry::TraceEventType::kFetchStall, asid_,
                    fetch_start, r.latency, fetch_pc);
      }
      if (fetch_stall_hist_ != nullptr) fetch_stall_hist_->record(r.latency);
    }
  }
  const uint64_t fetch_done = fetch_start + fetch_lat;
  // Pipelined initiation: a hit allows a new fetch next cycle.
  fetch_ready_ = std::max(fetch_ready_, fetch_start + (fetch_lat > 0 ? 1 : 0));

  // ---- issue / execute ---------------------------------------------------
  // W-wide in-order issue: up to issue_width instructions share a cycle.
  const uint64_t width_floor =
      issued_in_cycle_ >= config_.issue_width ? last_issue_ + 1 : last_issue_;
  uint64_t issue = std::max(
      {fetch_done + config_.decode_latency, width_floor, block_until_});
  // Store-buffer back-pressure.
  if (si.has_mem && si.mem_is_store) {
    issue = std::max(issue, store_ring_[store_head_]);
  }

  uint64_t exec_lat = 1;
  bool blocking = false;  // holds the in-order pipeline until completion
  switch (exec_class(si.instr.op)) {
    case ExecClass::kAlu:
      ++n_alu_;
      break;
    case ExecClass::kMul:
      ++n_mul_;
      exec_lat = config_.mul_latency;  // pipelined multiplier
      break;
    case ExecClass::kDiv:
      ++n_div_;
      exec_lat = config_.div_latency;
      blocking = true;  // unpipelined divider
      break;
    case ExecClass::kLoad: {
      ++n_mem_;
      const auto r = mem_.dread(si.mem_addr, issue);
      exec_lat = std::max<uint64_t>(1, r.latency);
      if (!r.l1_hit) {
        blocking = true;  // blocking D-cache miss
        prof_dmem = r.latency;
      }
      if (si.bitmap_load) {
        // §IV-C automatic de-randomization: consult the bitmap cache.
        const uint32_t extra = bitmap_.access(si.mem_addr, issue);
        exec_lat += extra;
        if (extra > 0) {
          blocking = true;
          prof_bitmap = extra;
          if (lane_ != nullptr) {
            lane_->span(telemetry::TraceEventType::kBitmapMiss, asid_, issue,
                        extra, si.mem_addr);
          }
        }
      }
      break;
    }
    case ExecClass::kStore: {
      ++n_mem_;
      const auto r = mem_.dwrite(si.mem_addr, issue);
      exec_lat = std::max<uint64_t>(1, r.latency);
      store_ring_[store_head_] = issue + 2;
      store_head_ = (store_head_ + 1) % config_.store_buffer;
      break;
    }
  }

  // Calls that push a randomized return address obtain it from a DRC
  // rand-entry lookup (§IV-A option 2) and set the stack bitmap bit. The
  // pushed value is not needed until the matching return (predicted by
  // the RAS anyway), so the lookup, its walk, and the bitmap update all
  // proceed off the critical path; only statistics and cache/L2 state
  // are affected.
  if (vcfr_ && si.needs_rand) {
    (void)drc_resolve(si.rand_key, /*derand=*/false, issue);
    (void)bitmap_.access(si.mem_addr, issue);
  }

  uint64_t exec_done = issue + exec_lat;
  if (blocking) block_until_ = exec_done;

  // ---- control flow ------------------------------------------------------
  const bool is_cond = si.instr.op == Op::kJcc;
  const bool is_transfer = si.instr.is_control() && si.instr.op != Op::kHalt;
  bool mispredict = false;
  bool target_known = true;  // translation available without the DRC?

  if (is_transfer) {
    ++n_branch_;
    if (is_cond) {
      ++bpstats_.cond_predictions;
      const bool pred_taken = gshare_.predict(bpred_pc);
      gshare_.update(bpred_pc, si.is_taken_transfer);
      if (pred_taken != si.is_taken_transfer) {
        ++bpstats_.cond_mispredicts;
        mispredict = true;
        target_known = !si.is_taken_transfer;  // taken needs translation
      }
    }
    if (si.is_taken_transfer) {
      if (si.instr.op == Op::kRet) {
        ++bpstats_.ras_pops;
        ++n_ras_ops_;
        const auto pred = ras_.pop();
        const bool ok = pred && pred->rand == si.next_rpc &&
                        pred->orig == next_fetch_pc;
        if (ok) {
          target_known = true;  // RAS pair carries the translation
        } else {
          ++bpstats_.ras_mispredicts;
          mispredict = true;
          target_known = false;
        }
      } else {
        ++bpstats_.btb_lookups;
        ++n_btb_ops_;
        const auto pred = btb_.lookup(bpred_pc);
        const bool ok = pred && pred->rand == si.next_rpc &&
                        pred->orig == next_fetch_pc;
        if (pred) ++bpstats_.btb_hits;
        if (ok) {
          // Even on a direction mispredict, the BTB entry supplies the
          // (randomized, original) target pair — no DRC walk needed to
          // redirect (§IV-D).
          target_known = true;
        } else {
          mispredict = true;
          target_known = false;
          btb_.update(bpred_pc, {si.next_rpc, next_fetch_pc});
        }
      }
    }
    if (si.instr.is_call()) {
      ++n_ras_ops_;
      const uint32_t ret_orig_space =
          vcfr_ ? si.upc + si.instr.length : si.call_push_value;
      ras_.push({si.call_push_value, ret_orig_space});
    }
  }

  // Every executed transfer whose target is expressed in the randomized
  // space consults the DRC (this is Fig 14's lookup stream). On a
  // correctly predicted path the translation only *verifies* the
  // prediction and any walk completes off the critical path; on a
  // mispredict, fetch cannot restart until the target is de-randomized.
  uint32_t derand_walk = 0;
  if (vcfr_ && si.needs_derand && si.is_taken_transfer) {
    derand_walk = drc_resolve(si.derand_key, /*derand=*/true, exec_done);
  }

  if (mispredict) {
    // The walk (when the translation was genuinely unavailable) overlaps
    // the pipeline-refill bubble.
    const uint64_t stall = std::max<uint64_t>(
        config_.redirect_penalty, target_known ? 0 : derand_walk);
    fetch_ready_ = std::max(fetch_ready_, exec_done + stall);
    cur_line_ = kInvalidLine;  // byte queue flushed
  }

  issue_ring_[retired_ % config_.iq_size] = issue;
  issued_in_cycle_ = issue == last_issue_ ? issued_in_cycle_ + 1 : 1;
  last_issue_ = issue;
  last_done_ = std::max(last_done_, exec_done);

  if (prof_ != nullptr) {
    profile::RetireCosts costs;
    costs.delta = last_done_ + 1 - prof_seen_;
    prof_seen_ = last_done_ + 1;
    costs.il1 = prof_il1;
    costs.dmem = prof_dmem;
    costs.bitmap = prof_bitmap;
    // Costs carried over from the previous retire's mispredict: its bubble
    // delayed *this* instruction's fetch, so they live in this delta.
    costs.redirect = prof_pend_redirect_;
    costs.walk = prof_pend_walk_;
    costs.drc_backing = prof_pend_backing_;
    prof_pend_redirect_ = prof_pend_walk_ = prof_pend_backing_ = 0;
    if (mispredict) {
      prof_pend_redirect_ = config_.redirect_penalty;
      if (!target_known && derand_walk > 0) {
        prof_pend_walk_ = resolve_walk_;
        prof_pend_backing_ = resolve_backing_;
      }
    }
    prof_->on_retire(si, costs);
  }
}

void CpuCore::save_state(binary::StateWriter& w) const {
  mem_.save_state(w);
  drc_.save_state(w);
  w.b(drc_l2_ != nullptr);
  if (drc_l2_) drc_l2_->save_state(w);
  bitmap_.save_state(w);
  gshare_.save_state(w);
  btb_.save_state(w);
  ras_.save_state(w);
  w.u64(bpstats_.cond_predictions);
  w.u64(bpstats_.cond_mispredicts);
  w.u64(bpstats_.btb_lookups);
  w.u64(bpstats_.btb_hits);
  w.u64(bpstats_.ras_pops);
  w.u64(bpstats_.ras_mispredicts);
  w.b(vcfr_);
  w.b(naive_);
  w.u32(asid_);
  w.u64(fetch_ready_);
  w.u64(last_issue_);
  w.u32(issued_in_cycle_);
  w.u64(block_until_);
  w.u64(last_done_);
  w.u32(cur_line_);
  w.u32(static_cast<uint32_t>(issue_ring_.size()));
  for (const uint64_t t : issue_ring_) w.u64(t);
  w.u32(static_cast<uint32_t>(store_ring_.size()));
  for (const uint64_t t : store_ring_) w.u64(t);
  w.u64(store_head_);
  w.u64(retired_);
  w.u64(table_walks_);
  w.u64(n_alu_);
  w.u64(n_mul_);
  w.u64(n_div_);
  w.u64(n_mem_);
  w.u64(n_branch_);
  w.u64(n_ras_ops_);
  w.u64(n_btb_ops_);
}

void CpuCore::load_state(binary::StateReader& r) {
  mem_.load_state(r);
  drc_.load_state(r);
  const bool has_l2 = r.b();
  if (has_l2 != (drc_l2_ != nullptr)) {
    throw binary::FormatError(binary::FormatFault::kImplausible,
                              "checkpoint DRC L2 presence mismatch");
  }
  if (drc_l2_) drc_l2_->load_state(r);
  bitmap_.load_state(r);
  gshare_.load_state(r);
  btb_.load_state(r);
  ras_.load_state(r);
  bpstats_.cond_predictions = r.u64();
  bpstats_.cond_mispredicts = r.u64();
  bpstats_.btb_lookups = r.u64();
  bpstats_.btb_hits = r.u64();
  bpstats_.ras_pops = r.u64();
  bpstats_.ras_mispredicts = r.u64();
  vcfr_ = r.b();
  naive_ = r.b();
  asid_ = r.u32();
  fetch_ready_ = r.u64();
  last_issue_ = r.u64();
  issued_in_cycle_ = r.u32();
  block_until_ = r.u64();
  last_done_ = r.u64();
  cur_line_ = r.u32();
  const uint32_t iq = r.count(1u << 16);
  if (iq != issue_ring_.size()) {
    throw binary::FormatError(binary::FormatFault::kImplausible,
                              "checkpoint issue-ring size mismatch");
  }
  for (auto& t : issue_ring_) t = r.u64();
  const uint32_t sb = r.count(1u << 16);
  if (sb != store_ring_.size()) {
    throw binary::FormatError(binary::FormatFault::kImplausible,
                              "checkpoint store-ring size mismatch");
  }
  for (auto& t : store_ring_) t = r.u64();
  store_head_ = static_cast<size_t>(r.u64());
  retired_ = r.u64();
  table_walks_ = r.u64();
  n_alu_ = r.u64();
  n_mul_ = r.u64();
  n_div_ = r.u64();
  n_mem_ = r.u64();
  n_branch_ = r.u64();
  n_ras_ops_ = r.u64();
  n_btb_ops_ = r.u64();
}

SimResult CpuCore::harvest() const {
  SimResult res;
  res.instructions = retired_;
  res.cycles = last_done_ + 1;
  res.il1 = mem_.il1().stats();
  res.dl1 = mem_.dl1().stats();
  res.l2 = mem_.l2().stats();
  res.l2_pressure = mem_.l2_pressure();
  res.prefetches_issued = mem_.prefetch_stats().issued;
  res.itlb = const_cast<cache::MemHier&>(mem_).itlb().stats();
  res.dtlb = const_cast<cache::MemHier&>(mem_).dtlb().stats();
  res.dram = mem_.dram().stats();
  res.bpred = bpstats_;
  res.drc = drc_.stats();
  if (drc_l2_) res.drc_l2 = drc_l2_->stats();
  res.drc_table_walks = table_walks_;
  res.ret_bitmap = bitmap_.stats();

  // ---- dynamic energy accounting (McPAT-style, §VI-A) ---------------------
  const auto& ep = config_.energy;
  auto sram = [](const cache::CacheConfig& c) {
    return power::sram_access_pj(c.size_bytes, c.assoc);
  };
  power::PowerAccount& pw = res.power;
  pw.core = static_cast<double>(retired_) * ep.core_per_instr +
            static_cast<double>(n_alu_) * ep.alu_op +
            static_cast<double>(n_mul_) * ep.mul_op +
            static_cast<double>(n_div_) * ep.div_op +
            static_cast<double>(n_mem_) * ep.agen_op;
  pw.il1 = static_cast<double>(res.il1.accesses + res.il1.prefetch_fills) *
           sram(config_.mem.il1);
  pw.dl1 = static_cast<double>(res.dl1.accesses) * sram(config_.mem.dl1);
  pw.l2 = static_cast<double>(res.l2.accesses) * sram(config_.mem.l2);
  pw.drc = static_cast<double>(res.drc.lookups) *
           power::sram_access_pj(drc_.size_bytes(), config_.drc.assoc) *
           ep.drc_array_factor;
  if (drc_l2_) {
    pw.drc += static_cast<double>(res.drc_l2.lookups) *
              power::sram_access_pj(drc_l2_->size_bytes(),
                                    config_.drc.l2_assoc) *
              ep.drc_array_factor;
  }
  pw.bpred = static_cast<double>(bpstats_.cond_predictions) * ep.bpred_access;
  pw.btb = static_cast<double>(n_btb_ops_) * ep.btb_access;
  pw.ras = static_cast<double>(n_ras_ops_) * ep.ras_access;
  pw.tlb = static_cast<double>(res.itlb.accesses + res.dtlb.accesses) *
           ep.tlb_access;
  pw.dram = static_cast<double>(res.dram.reads + res.dram.writes) *
            ep.dram_access;
  return res;
}

void CpuCore::register_stats(const telemetry::Scope& scope) {
  scope.counter("instructions", &retired_);
  scope.counter_fn("cycles", [this] { return last_done_ + 1; });
  scope.counter("table_walks", &table_walks_);
  scope.gauge("ipc", [this] {
    return last_done_ + 1 == 0 ? 0.0
                               : static_cast<double>(retired_) /
                                     static_cast<double>(last_done_ + 1);
  });

  const telemetry::Scope mix = scope.scope("mix");
  mix.counter("alu", &n_alu_);
  mix.counter("mul", &n_mul_);
  mix.counter("div", &n_div_);
  mix.counter("mem", &n_mem_);
  mix.counter("branch", &n_branch_);

  const telemetry::Scope bpred = scope.scope("bpred");
  bpred.counter("cond_predictions", &bpstats_.cond_predictions);
  bpred.counter("cond_mispredicts", &bpstats_.cond_mispredicts);
  bpred.counter("btb_lookups", &bpstats_.btb_lookups);
  bpred.counter("btb_hits", &bpstats_.btb_hits);
  bpred.counter("ras_pops", &bpstats_.ras_pops);
  bpred.counter("ras_mispredicts", &bpstats_.ras_mispredicts);
  bpred.gauge("cond_accuracy", [this] { return bpstats_.cond_accuracy(); });

  mem_.register_stats(scope);
  drc_.register_stats(scope.scope("drc"));
  if (drc_l2_) drc_l2_->register_stats(scope.scope("drc_l2"));
  bitmap_.register_stats(scope.scope("ret_bitmap"));

  walk_hist_ = scope.histogram("drc.walk_cycles");
  fetch_stall_hist_ = scope.histogram("fetch.stall_cycles");
}

SimResult simulate(const binary::Image& image, uint64_t max_instructions,
                   const CpuConfig& config, telemetry::Telemetry* telemetry,
                   profile::Profiler* profiler) {
  binary::Memory memory;
  binary::load(image, memory);
  emu::Emulator emulator(image, memory);

  CpuCore core(config);
  if (profiler != nullptr) core.attach_profiler(profiler);
  if (telemetry != nullptr) {
    core.register_stats(telemetry->root().scope("core0"));
    core.attach_trace(telemetry->lane(0));
    core.attach_sampler(&telemetry->sampler());
    if (telemetry->tracer() != nullptr) {
      telemetry->tracer()->name_lane(0, "core 0");
      telemetry->tracer()->name_asid(0, 0, "asid 0 " + image.name);
    }
  }
  core::TranslationWalker walker(image.tables, core.mem());
  core.install(image.layout, &walker, 0);
  const uint64_t ran = core.run(emulator, max_instructions);

  SimResult res = core.harvest();
  res.app = image.name;
  res.layout = image.layout;
  res.halted = emulator.halted();
  res.error = emulator.error();
  res.instructions = ran;
  // The core (and everything registered through it) dies with this
  // frame; pin the registry to final values so the caller can export.
  if (telemetry != nullptr) telemetry->registry().freeze();
  return res;
}

}  // namespace vcfr::sim
