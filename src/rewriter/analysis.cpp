#include "rewriter/analysis.hpp"

#include <array>

namespace vcfr::rewriter {

using isa::Op;

namespace {

/// Abstract value for the register constant-propagation pass.
struct AbsVal {
  enum class Kind {
    kUnknown,
    kConstCode,     // literal instruction-start address (def_site records the mov)
    kConstData,     // literal data-section address
    kDataDerived,   // arithmetic over a data address
    kCodeDerived,   // arithmetic over a code address (computed dispatch)
    kRetAddr,       // the function's own return address (pop / ld [sp] at entry)
    kRetDerived,    // arithmetic over the return address (PIC addressing)
    kRelocLoad,     // loaded from the data section (relocation-covered slot)
  };
  Kind kind = Kind::kUnknown;
  uint32_t addr = 0;      // code address for kConstCode / base for kCodeDerived
  uint32_t def_site = 0;  // instruction address of the defining mov (kConstCode)
};

using Kind = AbsVal::Kind;

struct FunctionFacts {
  bool returns_via_jump = false;   // return address reaches jmpr/callr
  bool reads_ret_addr = false;     // return address read at all (PIC / EH)
};

class Propagator {
 public:
  Propagator(const binary::Image& image, const Cfg& cfg, AnalysisResult& out)
      : image_(image), cfg_(cfg), out_(out) {}

  void run() {
    facts_.resize(cfg_.functions.size());
    for (const auto& block : cfg_.blocks) walk_block(block);
    // Sites used as arithmetic bases must keep their literal values.
    for (uint32_t site : arith_code_sites_) out_.code_imm_sites.erase(site);
  }

  [[nodiscard]] const std::vector<FunctionFacts>& facts() const {
    return facts_;
  }
  [[nodiscard]] bool has_unknown_indirect() const {
    return has_unknown_indirect_;
  }

 private:
  [[nodiscard]] bool in_data(uint32_t v) const {
    return v >= image_.data_base && v < image_.data_end();
  }

  [[nodiscard]] size_t function_index(uint32_t addr) const {
    const FunctionExtent* f = cfg_.function_of(addr);
    if (!f) return SIZE_MAX;
    return static_cast<size_t>(f - cfg_.functions.data());
  }

  [[nodiscard]] bool at_function_entry(uint32_t addr) const {
    const FunctionExtent* f = cfg_.function_of(addr);
    return f != nullptr && f->start == addr;
  }

  void mark_computed_window(uint32_t base) {
    // All instruction starts in the enclosing function (or a fixed window
    // when the base is outside any known function) become potential targets
    // of a computed transfer and must keep their original addresses.
    const FunctionExtent* f = cfg_.function_of(base);
    const uint32_t lo = f ? f->start : base;
    const uint32_t hi = f ? f->end : base + 256;
    for (const auto& e : cfg_.instrs) {
      if (e.addr >= lo && e.addr < hi) out_.unrandomized.insert(e.addr);
    }
  }

  AbsVal combine_arith(const AbsVal& a, const AbsVal& b) {
    auto derived_of = [&](const AbsVal& v) -> AbsVal {
      switch (v.kind) {
        case Kind::kConstCode:
          arith_code_sites_.insert(v.def_site);
          return {Kind::kCodeDerived, v.addr, 0};
        case Kind::kCodeDerived:
          return v;
        case Kind::kRetAddr:
        case Kind::kRetDerived:
          return {Kind::kRetDerived, v.addr, 0};
        case Kind::kConstData:
        case Kind::kDataDerived:
          return {Kind::kDataDerived, v.addr, 0};
        default:
          return {};
      }
    };
    const AbsVal da = derived_of(a);
    if (da.kind == Kind::kCodeDerived || da.kind == Kind::kRetDerived) return da;
    const AbsVal db = derived_of(b);
    if (db.kind == Kind::kCodeDerived || db.kind == Kind::kRetDerived) return db;
    if (da.kind == Kind::kDataDerived) return da;
    if (db.kind == Kind::kDataDerived) return db;
    return {};
  }

  void consume_indirect(const isa::DisasmEntry& e, const AbsVal& v) {
    const size_t fi = function_index(e.addr);
    switch (v.kind) {
      case Kind::kConstCode:
      case Kind::kRelocLoad:
        break;  // resolved: the producing site / slot will be patched
      case Kind::kRetAddr:
      case Kind::kRetDerived:
        if (fi != SIZE_MAX) facts_[fi].returns_via_jump = true;
        break;
      case Kind::kCodeDerived:
        mark_computed_window(v.addr);
        break;
      default:
        has_unknown_indirect_ = true;
        break;
    }
  }

  void walk_block(const BasicBlock& block) {
    std::array<AbsVal, isa::kNumRegs> regs{};  // all kUnknown at block entry
    for (size_t i = 0; i < block.num_instrs; ++i) {
      const auto& e = cfg_.instrs[block.first_instr + i];
      const auto& in = e.instr;
      switch (in.op) {
        case Op::kMovRI:
          if (cfg_.is_instr_start(in.imm)) {
            regs[in.rd] = {Kind::kConstCode, in.imm, e.addr};
            out_.code_imm_sites.insert(e.addr);
          } else if (in_data(in.imm)) {
            regs[in.rd] = {Kind::kConstData, in.imm, e.addr};
          } else {
            regs[in.rd] = {};
          }
          break;
        case Op::kMovRR:
          regs[in.rd] = regs[in.rs];
          break;
        case Op::kAddRR:
        case Op::kSubRR:
        case Op::kMulRR:
        case Op::kAndRR:
        case Op::kOrRR:
        case Op::kXorRR:
        case Op::kShlRR:
        case Op::kShrRR:
        case Op::kDivRR:
          regs[in.rd] = combine_arith(regs[in.rd], regs[in.rs]);
          break;
        case Op::kAddRI:
        case Op::kSubRI:
        case Op::kMulRI:
        case Op::kAndRI:
        case Op::kOrRI:
        case Op::kXorRI:
        case Op::kShlRI:
        case Op::kShrRI: {
          AbsVal imm_val;
          if (cfg_.is_instr_start(in.imm)) {
            imm_val = {Kind::kConstCode, in.imm, e.addr};
          } else if (in_data(in.imm)) {
            imm_val = {Kind::kConstData, in.imm, e.addr};
          }
          regs[in.rd] = combine_arith(regs[in.rd], imm_val);
          break;
        }
        case Op::kLd: {
          const AbsVal& base = regs[in.rs];
          if (in.rs == isa::kSp && in.disp == 0 && at_function_entry(e.addr)) {
            regs[in.rd] = {Kind::kRetAddr, e.addr, 0};
            if (auto fi = function_index(e.addr); fi != SIZE_MAX) {
              facts_[fi].reads_ret_addr = true;
            }
          } else if (base.kind == Kind::kConstData ||
                     base.kind == Kind::kDataDerived) {
            regs[in.rd] = {Kind::kRelocLoad, 0, 0};
          } else {
            regs[in.rd] = {};
          }
          break;
        }
        case Op::kPopR:
          if (at_function_entry(e.addr)) {
            regs[in.rd] = {Kind::kRetAddr, e.addr, 0};
            if (auto fi = function_index(e.addr); fi != SIZE_MAX) {
              facts_[fi].reads_ret_addr = true;
            }
          } else {
            regs[in.rd] = {};
          }
          break;
        case Op::kLdb:
          regs[in.rd] = {};
          break;
        case Op::kJmpR:
        case Op::kCallR:
          consume_indirect(e, regs[in.rd]);
          if (in.op == Op::kCallR) regs.fill({});  // callee clobbers
          break;
        case Op::kCall:
          regs.fill({});
          break;
        default:
          break;
      }
    }
  }

  const binary::Image& image_;
  const Cfg& cfg_;
  AnalysisResult& out_;
  std::vector<FunctionFacts> facts_;
  std::unordered_set<uint32_t> arith_code_sites_;
  bool has_unknown_indirect_ = false;
};

}  // namespace

StaticStats static_stats(const binary::Image& image, const Cfg& cfg) {
  StaticStats s;
  s.app = image.name;
  s.instructions = cfg.instrs.size();
  for (const auto& e : cfg.instrs) {
    switch (e.instr.op) {
      case Op::kJmp:
      case Op::kJcc:
        ++s.direct_transfers;
        break;
      case Op::kCall:
        ++s.direct_transfers;
        ++s.function_calls;
        break;
      case Op::kJmpR:
        ++s.indirect_transfers;
        break;
      case Op::kCallR:
        ++s.indirect_transfers;
        ++s.function_calls;
        ++s.indirect_calls;
        break;
      case Op::kRet:
        ++s.returns;
        break;
      default:
        break;
    }
  }
  for (const auto& f : cfg.functions) {
    if (f.has_ret) {
      ++s.functions_with_ret;
    } else {
      ++s.functions_without_ret;
    }
  }
  return s;
}

AnalysisResult analyze(const binary::Image& image, const Cfg& cfg,
                       ReturnPolicy policy) {
  AnalysisResult out;
  out.stats = static_stats(image, cfg);

  Propagator prop(image, cfg, out);
  prop.run();

  // Byte-by-byte pointer scan over the data section (Hiser et al.'s
  // heuristic): every pointer-sized constant that matches an instruction
  // start is a candidate indirect target. Relocation records prove which
  // slots are genuine code pointers (patched); the rest stay unproven.
  std::unordered_set<uint32_t> reloc_slots;
  for (const auto& r : image.relocs) reloc_slots.insert(r.data_addr);
  if (image.data.size() >= 4) {
    for (uint32_t off = 0; off + 4 <= image.data.size(); ++off) {
      const uint32_t addr = image.data_base + off;
      const uint32_t value = image.read_data32(addr);
      if (!cfg.is_instr_start(value)) continue;
      if (reloc_slots.contains(addr)) {
        out.patched_data_slots.insert(addr);
      } else {
        out.unproven_data_slots.insert(addr);
        out.unrandomized.insert(value);
      }
    }
  }

  // An indirect transfer with a wholly unknown source keeps the paper's
  // initial conservative assumption: every unproven candidate can be a
  // target. (Proven slots are patched, so their targets still randomize.)
  // The unproven targets were already added above; nothing further needed
  // unless there were no data candidates at all, in which case nothing can
  // be claimed and the transfer relies on patched sources at runtime.
  (void)prop.has_unknown_indirect();

  // Return-site safety (§IV-A, §IV-C).
  for (size_t bi = 0; bi < cfg.blocks.size(); ++bi) {
    const auto& block = cfg.blocks[bi];
    const auto& last = cfg.instrs[block.first_instr + block.num_instrs - 1];
    if (!last.instr.is_call()) continue;
    const uint32_t ret_site = last.addr + last.instr.length;
    if (!cfg.is_instr_start(ret_site)) continue;

    bool unsafe = false;
    if (policy == ReturnPolicy::kNone) {
      unsafe = true;  // no architectural return randomization available
    } else if (last.instr.op == Op::kCallR) {
      unsafe = true;  // indirect-call returns are never randomized
    } else {
      const FunctionExtent* callee = cfg.function_of(last.instr.imm);
      if (callee != nullptr) {
        const auto fi = static_cast<size_t>(callee - cfg.functions.data());
        const auto& facts = prop.facts()[fi];
        if (facts.returns_via_jump || !callee->has_ret) {
          unsafe = true;  // callee re-enters via a jump in original space
        } else if (policy == ReturnPolicy::kConservative &&
                   facts.reads_ret_addr) {
          // PIC-style read of the return address: only the architectural
          // bitmap (§IV-C) makes randomizing this safe.
          unsafe = true;
        }
      }
    }
    if (unsafe) {
      out.unsafe_return_sites.insert(ret_site);
      out.unrandomized.insert(ret_site);
    }
  }
  return out;
}

}  // namespace vcfr::rewriter
