// Randomization-entropy analysis (§V-C(a): "ILR can have high entropy,
// which defends against attacks that try to evade the protection by
// reducing the entropy of a system"; randomization at instruction
// granularity gives "a large randomization space").
//
// Quantifies, for a randomization result:
//   * bits of location uncertainty per instruction,
//   * the probability that a single attacker guess (one remote attempt —
//     a crash on failure, per the threat model) hits a chosen instruction,
//   * the expected number of attempts to land one gadget, and
//   * the residual (failover) surface that carries no entropy at all.
#pragma once

#include <cstdint>

#include "rewriter/randomizer.hpp"

namespace vcfr::rewriter {

struct EntropyReport {
  /// log2 of the number of addresses a randomized instruction may occupy.
  double bits_per_instruction = 0;
  /// Probability that one guessed address equals a chosen instruction's
  /// randomized location.
  double single_guess_probability = 0;
  /// Expected crash-inducing attempts before hitting one chosen gadget.
  double expected_attempts = 0;
  size_t randomized_instructions = 0;
  size_t failover_instructions = 0;  // zero-entropy residual surface
  /// Fraction of the program that carries full entropy.
  [[nodiscard]] double coverage() const {
    const size_t total = randomized_instructions + failover_instructions;
    return total == 0 ? 0.0
                      : static_cast<double>(randomized_instructions) /
                            static_cast<double>(total);
  }
};

/// Computes the entropy report for a randomization outcome produced with
/// `options` (the placement policy determines the location space).
[[nodiscard]] EntropyReport analyze_entropy(const RandomizeResult& result,
                                            const RandomizeOptions& options);

}  // namespace vcfr::rewriter
