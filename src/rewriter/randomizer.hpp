// The ILR randomization software (§IV-A): takes an original-layout binary,
// runs the CFG + target/safety analyses, assigns every randomizable
// instruction a fresh address in the randomized instruction space, and
// emits two executable forms:
//
//   * a *naive-ILR* image: instructions physically relocated to their
//     randomized addresses (plus the fall-through successor map the
//     straightforward hardware resolves at zero cost) — the §III baseline;
//   * a *VCFR* image: instruction bytes kept in the original layout with
//     direct targets, patched immediates, and jump-table slots rewritten
//     into the randomized space, plus the randomization/de-randomization
//     tables the DRC caches at run time — the paper's proposal.
//
// Both images are semantically equivalent to the original program; the
// equivalence property tests exercise this across seeds.
#pragma once

#include <cstdint>
#include <unordered_map>

#include "binary/image.hpp"
#include "rewriter/analysis.hpp"
#include "rewriter/cfg.hpp"

namespace vcfr::rewriter {

/// How return addresses get randomized (§IV-A):
enum class ReturnOption {
  /// Option 2: the hardware pushes the randomized return address (looked
  /// up in the DRC) and maintains the stack bitmap. Fully transparent,
  /// constant code size.
  kArchitectural,
  /// Option 1: the rewriter replaces each safely-randomizable `call X`
  /// with `push <randomized return>; jmp X` before relocation. No
  /// hardware support needed, but the program grows and call sites whose
  /// callees touch the return address cannot be randomized.
  kSoftwareRewrite,
};

/// Where randomized instructions may land (§IV-D: "control flow
/// randomization can be confined within the same page, which will further
/// reduce its impact to iTLB").
enum class PlacementPolicy {
  /// Complete spread: one instruction per cache-line-sized slot across the
  /// whole randomized region (maximum entropy; the paper's default).
  kFullSpread,
  /// Each original 4 KiB code page gets one dedicated randomized page;
  /// its instructions are shuffled and re-packed inside it. The iTLB
  /// working set stays identical to the baseline at the cost of lower
  /// per-instruction entropy and partially preserved line locality.
  kPageConfined,
};

struct RandomizeOptions {
  uint64_t seed = 1;
  PlacementPolicy placement = PlacementPolicy::kFullSpread;
  /// Base of the randomized instruction space.
  uint32_t rand_base = binary::kDefaultRandBase;
  /// One randomized instruction is placed per slot; with 64-byte slots each
  /// instruction lands in its own cache line, which is what destroys fetch
  /// locality for the naive hardware implementation (§III-A).
  uint32_t slot_bytes = 64;
  /// Region slots = instructions * spread (>= 1.0). Larger values thin the
  /// randomized space further.
  double spread = 1.25;
  ReturnPolicy return_policy = ReturnPolicy::kArchitectural;
  ReturnOption return_option = ReturnOption::kArchitectural;
  /// Simulated placement of the serialized rand/derand tables.
  uint32_t table_base = 0x6000'0000;
};

/// Outcome of the software call rewrite (ReturnOption::kSoftwareRewrite).
struct SoftwareRewriteStats {
  uint32_t calls_rewritten = 0;
  uint32_t code_bytes_before = 0;
  uint32_t code_bytes_after = 0;

  [[nodiscard]] double expansion_percent() const {
    return code_bytes_before == 0
               ? 0.0
               : 100.0 * (static_cast<double>(code_bytes_after) /
                              static_cast<double>(code_bytes_before) -
                          1.0);
  }
};

struct RandomizeResult {
  binary::Image naive;
  binary::Image vcfr;
  AnalysisResult analysis;
  /// original instruction address -> randomized address (identity entries
  /// are omitted; un-randomized instructions keep their addresses).
  std::unordered_map<uint32_t, uint32_t> placement;
  /// Populated when return_option == kSoftwareRewrite.
  SoftwareRewriteStats sw_stats;
};

/// Applies the §IV-A option-1 rewrite standalone: every safely
/// randomizable direct call becomes `push <return>; jmp target` (the push
/// immediate still holds the *original* return address; randomize() remaps
/// it like any other code pointer). Returns an expanded original-layout
/// image with all address references (targets, relocations, symbols,
/// entry) re-linked.
[[nodiscard]] binary::Image rewrite_calls_software(
    const binary::Image& image, SoftwareRewriteStats* stats = nullptr);

/// Randomizes an original-layout image. Throws std::invalid_argument when
/// `image` is already randomized or options are inconsistent.
[[nodiscard]] RandomizeResult randomize(const binary::Image& image,
                                        const RandomizeOptions& options = {});

}  // namespace vcfr::rewriter
