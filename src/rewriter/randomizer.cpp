#include "rewriter/randomizer.hpp"

#include <algorithm>
#include <map>
#include <bit>
#include <random>
#include <stdexcept>

#include "isa/encoding.hpp"

namespace vcfr::rewriter {

using isa::Op;

namespace {

/// Re-encodes one instruction with its control-flow-relevant immediate
/// mapped through `remap` (identity for everything else). PushI immediates
/// are return addresses produced by the software call rewrite and are
/// always code pointers.
std::vector<uint8_t> rewrite_instr(
    const isa::DisasmEntry& entry,
    const std::unordered_map<uint32_t, uint32_t>& placement,
    const std::unordered_set<uint32_t>& code_imm_sites) {
  isa::Instr instr = entry.instr;
  const bool is_code_imm =
      instr.op == Op::kMovRI && code_imm_sites.contains(entry.addr);
  if (instr.is_direct_transfer() || is_code_imm || instr.op == Op::kPushI) {
    auto it = placement.find(instr.imm);
    if (it != placement.end()) instr.imm = it->second;
  }
  return isa::encode(instr);
}

uint32_t next_pow2(uint32_t v) {
  return v <= 1 ? 1 : std::bit_ceil(v);
}

}  // namespace

binary::Image rewrite_calls_software(const binary::Image& image,
                                     SoftwareRewriteStats* stats) {
  if (image.layout != binary::Layout::kOriginal) {
    throw std::invalid_argument(
        "rewrite_calls_software: requires an original-layout image");
  }
  const Cfg cfg = build_cfg(image);
  // Conservative safety: the software option has no bitmap, so any callee
  // that touches its return address disqualifies the site.
  const AnalysisResult ar = analyze(image, cfg, ReturnPolicy::kConservative);

  // Pass 1: build the transformed instruction list and the old->new
  // address map for instruction starts.
  struct NewInstr {
    isa::Instr instr;
    uint32_t new_addr = 0;
    bool pushi_needs_ret = false;  // imm := address after the next instr
  };
  std::vector<NewInstr> out;
  out.reserve(cfg.instrs.size() + 64);
  std::unordered_map<uint32_t, uint32_t> addr_map;
  addr_map.reserve(cfg.instrs.size());
  uint32_t cursor = image.code_base;
  uint32_t rewritten = 0;

  for (const auto& e : cfg.instrs) {
    addr_map.emplace(e.addr, cursor);
    const uint32_t ret_site = e.addr + e.instr.length;
    const FunctionExtent* callee =
        e.instr.op == Op::kCall ? cfg.function_of(e.instr.imm) : nullptr;
    const bool rewrite = e.instr.op == Op::kCall && callee != nullptr &&
                         callee->has_ret &&
                         !ar.unsafe_return_sites.contains(ret_site) &&
                         cfg.is_instr_start(ret_site);
    if (rewrite) {
      ++rewritten;
      isa::Instr push{.op = Op::kPushI};
      push.length = isa::instr_length(static_cast<uint8_t>(Op::kPushI));
      out.push_back({push, cursor, /*pushi_needs_ret=*/true});
      cursor += push.length;
      isa::Instr jmp{.op = Op::kJmp, .imm = e.instr.imm};
      jmp.length = isa::instr_length(static_cast<uint8_t>(Op::kJmp));
      out.push_back({jmp, cursor, false});
      cursor += jmp.length;
    } else {
      out.push_back({e.instr, cursor, false});
      cursor += e.instr.length;
    }
  }

  // Pass 2: re-link every address reference through addr_map and resolve
  // the push immediates (the return address is the instruction after the
  // jmp, in new-address terms).
  auto remap_old = [&](uint32_t a) {
    auto it = addr_map.find(a);
    return it == addr_map.end() ? a : it->second;
  };
  binary::Image result = image;
  result.code.clear();
  result.code.reserve(cursor - image.code_base);
  for (size_t i = 0; i < out.size(); ++i) {
    isa::Instr instr = out[i].instr;
    if (out[i].pushi_needs_ret) {
      // Skip the jmp that follows this push: the return lands after it.
      instr.imm = i + 2 < out.size() ? out[i + 2].new_addr : cursor;
    } else if (instr.is_direct_transfer() ||
               (instr.op == Op::kMovRI && cfg.is_instr_start(instr.imm))) {
      instr.imm = remap_old(instr.imm);
    }
    isa::encode(instr, result.code);
  }
  for (const auto& r : result.relocs) {
    result.write_data32(r.data_addr, remap_old(result.read_data32(r.data_addr)));
  }
  for (auto& f : result.functions) f.addr = remap_old(f.addr);
  result.entry = remap_old(result.entry);

  if (stats != nullptr) {
    stats->calls_rewritten = rewritten;
    stats->code_bytes_before = static_cast<uint32_t>(image.code.size());
    stats->code_bytes_after = static_cast<uint32_t>(result.code.size());
  }
  return result;
}

RandomizeResult randomize(const binary::Image& image,
                          const RandomizeOptions& options) {
  if (image.layout != binary::Layout::kOriginal) {
    throw std::invalid_argument("randomize: image is already randomized");
  }
  if (options.return_option == ReturnOption::kSoftwareRewrite) {
    SoftwareRewriteStats sw_stats;
    const binary::Image transformed =
        rewrite_calls_software(image, &sw_stats);
    RandomizeOptions inner = options;
    inner.return_option = ReturnOption::kArchitectural;
    // The remaining (un-rewritten) calls must push original addresses:
    // no architectural return randomization exists in this configuration.
    inner.return_policy = ReturnPolicy::kNone;
    RandomizeResult result = randomize(transformed, inner);
    result.sw_stats = sw_stats;
    return result;
  }
  if (options.slot_bytes < isa::kMaxInstrLength + 1) {
    throw std::invalid_argument("randomize: slot_bytes too small");
  }
  if (options.spread < 1.0) {
    throw std::invalid_argument("randomize: spread must be >= 1.0");
  }

  RandomizeResult result;
  const Cfg cfg = build_cfg(image);
  result.analysis = analyze(image, cfg, options.return_policy);
  const auto& unrandomized = result.analysis.unrandomized;

  // --- assign randomized addresses ----------------------------------------
  std::mt19937_64 rng(options.seed);
  std::vector<size_t> movable;
  movable.reserve(cfg.instrs.size());
  for (size_t i = 0; i < cfg.instrs.size(); ++i) {
    if (!unrandomized.contains(cfg.instrs[i].addr)) movable.push_back(i);
  }

  uint32_t region_size = 0;
  if (options.placement == PlacementPolicy::kFullSpread) {
    const auto slot_count = static_cast<uint32_t>(std::max<double>(
        static_cast<double>(movable.size()),
        static_cast<double>(movable.size()) * options.spread));
    std::vector<uint32_t> slots(slot_count);
    for (uint32_t i = 0; i < slot_count; ++i) slots[i] = i;
    std::shuffle(slots.begin(), slots.end(), rng);

    for (size_t k = 0; k < movable.size(); ++k) {
      const auto& e = cfg.instrs[movable[k]];
      const uint32_t jitter = static_cast<uint32_t>(
          rng() % (options.slot_bytes - e.instr.length + 1));
      const uint32_t addr =
          options.rand_base + slots[k] * options.slot_bytes + jitter;
      result.placement.emplace(e.addr, addr);
    }
    region_size = slot_count * options.slot_bytes;
  } else {
    // kPageConfined: per original 4 KiB page, shuffle its instructions and
    // re-pack them (with random gaps from the page's slack) into one
    // dedicated randomized region. The region stride carries one cache
    // line of slop beyond the page size: an instruction *starting* in a
    // page's last bytes straddles into the next page, so a group's total
    // can slightly exceed 4096 bytes.
    constexpr uint32_t kPage = 4096;
    constexpr uint32_t kStride = kPage + 64;
    std::map<uint32_t, std::vector<size_t>> by_page;  // ordered for determinism
    for (size_t idx : movable) {
      by_page[(cfg.instrs[idx].addr - image.code_base) / kPage].push_back(idx);
    }
    uint32_t max_page = 0;
    for (auto& [page, list] : by_page) {
      max_page = std::max(max_page, page);
      std::shuffle(list.begin(), list.end(), rng);
      uint32_t total = 0;
      for (size_t idx : list) total += cfg.instrs[idx].instr.length;
      uint32_t slack = kStride > total ? kStride - total : 0;
      uint32_t pos = options.rand_base + page * kStride;
      size_t remaining = list.size();
      for (size_t idx : list) {
        const uint32_t gap_cap =
            remaining > 0 ? static_cast<uint32_t>(2 * slack / remaining + 1)
                          : 1;
        const uint32_t gap = std::min<uint32_t>(slack, rng() % gap_cap);
        pos += gap;
        slack -= gap;
        result.placement.emplace(cfg.instrs[idx].addr, pos);
        pos += cfg.instrs[idx].instr.length;
        --remaining;
      }
    }
    region_size = (max_page + 1) * kStride;
  }
  const auto& placement = result.placement;
  auto remap = [&](uint32_t addr) {
    auto it = placement.find(addr);
    return it == placement.end() ? addr : it->second;
  };

  // --- shared translation tables -------------------------------------------
  binary::TranslationTables tables;
  tables.derand.reserve(placement.size());
  tables.rand.reserve(placement.size());
  for (const auto& [orig, rand_addr] : placement) {
    tables.derand.emplace(rand_addr, orig);
    tables.rand.emplace(orig, rand_addr);
  }
  tables.unrandomized = unrandomized;
  tables.table_base = options.table_base;
  // Open-addressed table over (derand + rand) entries, 8 bytes each, at
  // ~full occupancy (the walker models a single-probe perfect hash; the
  // size only determines the table's cache footprint).
  tables.table_bytes =
      next_pow2(static_cast<uint32_t>(placement.size()) * 2) * 8;

  // --- data patching (jump tables / stored code pointers) ------------------
  auto patch_data = [&](binary::Image& img) {
    for (const auto& r : img.relocs) {
      const uint32_t v = img.read_data32(r.data_addr);
      img.write_data32(r.data_addr, remap(v));
    }
  };

  // --- VCFR image ------------------------------------------------------------
  binary::Image& vcfr = result.vcfr;
  vcfr = image;
  vcfr.layout = binary::Layout::kVcfr;
  vcfr.seed = options.seed;
  vcfr.code.clear();
  vcfr.code.reserve(image.code.size());
  for (const auto& e : cfg.instrs) {
    const auto bytes =
        rewrite_instr(e, placement, result.analysis.code_imm_sites);
    vcfr.code.insert(vcfr.code.end(), bytes.begin(), bytes.end());
  }
  patch_data(vcfr);
  vcfr.tables = tables;
  vcfr.rand_base = options.rand_base;
  vcfr.rand_size = region_size;

  // --- naive-ILR image -------------------------------------------------------
  binary::Image& naive = result.naive;
  naive = image;
  naive.layout = binary::Layout::kNaiveIlr;
  naive.seed = options.seed;
  naive.code.clear();  // all instructions live in sparse_code
  naive.rand_base = options.rand_base;
  naive.rand_size = region_size;
  naive.sparse_code.reserve(cfg.instrs.size());
  for (size_t i = 0; i < cfg.instrs.size(); ++i) {
    const auto& e = cfg.instrs[i];
    naive.sparse_code.emplace(
        remap(e.addr),
        rewrite_instr(e, placement, result.analysis.code_imm_sites));
    if (i + 1 < cfg.instrs.size()) {
      naive.fallthrough.emplace(remap(e.addr), remap(cfg.instrs[i + 1].addr));
    }
  }
  patch_data(naive);
  naive.tables = tables;  // the mapping exists on the naive hardware too
  naive.entry = remap(image.entry);

  return result;
}

}  // namespace vcfr::rewriter
