#include "rewriter/cfg.hpp"

#include <algorithm>
#include <cstdio>
#include <set>
#include <stdexcept>

namespace vcfr::rewriter {

using isa::Op;

const FunctionExtent* Cfg::function_of(uint32_t addr) const {
  auto it = std::upper_bound(
      functions.begin(), functions.end(), addr,
      [](uint32_t a, const FunctionExtent& f) { return a < f.start; });
  if (it == functions.begin()) return nullptr;
  --it;
  return addr < it->end ? &*it : nullptr;
}

Cfg build_cfg(const binary::Image& image) {
  if (image.layout != binary::Layout::kOriginal) {
    throw std::invalid_argument("build_cfg: requires an original-layout image");
  }

  Cfg cfg;
  cfg.instrs = isa::disassemble(image);
  if (cfg.instrs.empty()) return cfg;
  cfg.instr_at.reserve(cfg.instrs.size());
  for (size_t i = 0; i < cfg.instrs.size(); ++i) {
    cfg.instr_at.emplace(cfg.instrs[i].addr, i);
  }

  // --- leaders (the classic leader algorithm, §IV-A) -----------------------
  std::set<uint32_t> leaders;
  auto add_leader = [&](uint32_t addr) {
    if (cfg.instr_at.contains(addr)) leaders.insert(addr);
  };
  add_leader(image.entry);
  for (const auto& f : image.functions) add_leader(f.addr);
  // Code pointers recorded in relocations are potential indirect targets.
  for (const auto& r : image.relocs) {
    add_leader(image.read_data32(r.data_addr));
  }
  for (size_t i = 0; i < cfg.instrs.size(); ++i) {
    const auto& e = cfg.instrs[i];
    if (e.instr.is_direct_transfer()) add_leader(e.instr.imm);
    if (e.instr.is_control() && i + 1 < cfg.instrs.size()) {
      add_leader(cfg.instrs[i + 1].addr);
    }
  }

  // --- blocks ---------------------------------------------------------------
  for (size_t i = 0; i < cfg.instrs.size();) {
    BasicBlock block;
    block.start = cfg.instrs[i].addr;
    block.first_instr = i;
    size_t j = i;
    while (j < cfg.instrs.size()) {
      const auto& e = cfg.instrs[j];
      ++j;
      if (e.instr.is_control()) break;
      if (j < cfg.instrs.size() && leaders.contains(cfg.instrs[j].addr)) break;
    }
    const auto& last = cfg.instrs[j - 1];
    block.num_instrs = j - block.first_instr;
    block.end = last.addr + last.instr.length;
    block.ends_in_indirect = last.instr.is_indirect_transfer();

    // Direct edges.
    if (last.instr.is_direct_transfer()) {
      block.successors.push_back(last.instr.imm);
    }
    // Fall-through edges for everything that does not unconditionally leave.
    if (last.instr.has_fallthrough() && j < cfg.instrs.size()) {
      block.successors.push_back(cfg.instrs[j].addr);
    }
    cfg.block_at.emplace(block.start, cfg.blocks.size());
    cfg.blocks.push_back(std::move(block));
    i = j;
  }

  // --- function extents ------------------------------------------------------
  std::vector<binary::FunctionSymbol> symbols = image.functions;
  std::sort(symbols.begin(), symbols.end(),
            [](const auto& a, const auto& b) { return a.addr < b.addr; });
  for (size_t i = 0; i < symbols.size(); ++i) {
    FunctionExtent f;
    f.name = symbols[i].name;
    f.start = symbols[i].addr;
    f.end = i + 1 < symbols.size() ? symbols[i + 1].addr : image.code_end();
    cfg.functions.push_back(std::move(f));
  }
  for (const auto& e : cfg.instrs) {
    if (e.instr.op != Op::kRet) continue;
    auto it = std::upper_bound(
        cfg.functions.begin(), cfg.functions.end(), e.addr,
        [](uint32_t a, const FunctionExtent& f) { return a < f.start; });
    if (it != cfg.functions.begin()) {
      --it;
      if (e.addr < it->end) it->has_ret = true;
    }
  }
  return cfg;
}

std::string to_dot(const Cfg& cfg) {
  std::string out = "digraph cfg {\n  node [shape=box fontname=monospace];\n";
  char buf[160];
  for (const auto& block : cfg.blocks) {
    const FunctionExtent* f = cfg.function_of(block.start);
    std::snprintf(buf, sizeof buf,
                  "  b%x [label=\"%s0x%x..0x%x\\n%zu instrs\"];\n",
                  block.start, f && f->start == block.start
                                   ? (f->name + "\\n").c_str()
                                   : "",
                  block.start, block.end, block.num_instrs);
    out += buf;
    for (uint32_t succ : block.successors) {
      std::snprintf(buf, sizeof buf, "  b%x -> b%x;\n", block.start, succ);
      out += buf;
    }
    if (block.ends_in_indirect) {
      std::snprintf(buf, sizeof buf,
                    "  b%x -> b%x [style=dashed label=\"indirect\"];\n",
                    block.start, block.start);
      out += buf;
    }
  }
  out += "}\n";
  return out;
}

}  // namespace vcfr::rewriter
