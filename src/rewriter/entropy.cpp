#include "rewriter/entropy.hpp"

#include <cmath>

namespace vcfr::rewriter {

EntropyReport analyze_entropy(const RandomizeResult& result,
                              const RandomizeOptions& options) {
  EntropyReport report;
  report.randomized_instructions = result.placement.size();
  report.failover_instructions = result.analysis.unrandomized.size();

  double positions = 1.0;
  if (options.placement == PlacementPolicy::kFullSpread) {
    // An instruction lands in one of `slots` line-sized slots, at one of
    // (slot_bytes - len + 1) byte offsets inside it; use the mean
    // instruction length of 4 for the jitter term.
    const double slots =
        static_cast<double>(result.naive.rand_size) / options.slot_bytes;
    const double jitter = options.slot_bytes - 4 + 1;
    positions = slots * jitter;
  } else {
    // Page-confined: anywhere inside its dedicated 4 KiB page.
    positions = 4096.0;
  }
  if (positions < 1.0) positions = 1.0;
  report.bits_per_instruction = std::log2(positions);
  report.single_guess_probability = 1.0 / positions;
  report.expected_attempts = positions;
  return report;
}

}  // namespace vcfr::rewriter
