// Control-flow-graph recovery from a disassembled original-layout image.
//
// This mirrors the paper's offline static analysis (§IV-A): disassemble,
// find basic-block leaders with the leader algorithm, add edges for direct
// transfers and fall-throughs, and record indirect transfers for the
// target analyses in analysis.hpp.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "binary/image.hpp"
#include "isa/disassembler.hpp"

namespace vcfr::rewriter {

struct BasicBlock {
  uint32_t start = 0;          // address of the leader instruction
  uint32_t end = 0;            // one past the last byte of the block
  size_t first_instr = 0;      // index range into Cfg::instrs
  size_t num_instrs = 0;
  std::vector<uint32_t> successors;  // direct + fall-through targets
  bool ends_in_indirect = false;     // jmpr/callr/ret terminator
};

/// A function extent derived from `.func` symbols (sorted, half-open).
struct FunctionExtent {
  std::string name;
  uint32_t start = 0;
  uint32_t end = 0;
  bool has_ret = false;  // contains at least one ret instruction
};

struct Cfg {
  std::vector<isa::DisasmEntry> instrs;            // linear order
  std::unordered_map<uint32_t, size_t> instr_at;   // address -> index
  std::vector<BasicBlock> blocks;
  std::unordered_map<uint32_t, size_t> block_at;   // leader addr -> index
  std::vector<FunctionExtent> functions;

  [[nodiscard]] bool is_instr_start(uint32_t addr) const {
    return instr_at.contains(addr);
  }
  /// Function extent containing `addr`, or nullptr.
  [[nodiscard]] const FunctionExtent* function_of(uint32_t addr) const;
};

/// Builds the CFG for an original-layout image.
/// Throws std::invalid_argument for randomized layouts.
[[nodiscard]] Cfg build_cfg(const binary::Image& image);

/// Graphviz export: one node per basic block (labelled with its address
/// range and instruction count), solid edges for direct/fall-through
/// successors, a dashed self-loop marker on indirect terminators.
[[nodiscard]] std::string to_dot(const Cfg& cfg);

}  // namespace vcfr::rewriter
