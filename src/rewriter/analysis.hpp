// Static analyses the paper's randomization software applies (§IV-A):
//
//  * indirect-target recovery: relocation records, a constant-propagation
//    pass over registers (code-address producers -> indirect-transfer
//    consumers), and the byte-by-byte pointer-scan heuristic of Hiser et
//    al.;
//  * the un-randomizable ("failover") set: targets of indirect transfers
//    that cannot be proven patched keep their original addresses;
//  * call/return safety: return sites of indirect calls and of calls to
//    functions that return without `ret` (or immediately read their return
//    address) are not randomized under the conservative policy;
//  * static statistics for Table II and Figure 9.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_set>
#include <vector>

#include "binary/image.hpp"
#include "rewriter/cfg.hpp"

namespace vcfr::rewriter {

/// Table II row + Figure 9 pair for one application.
struct StaticStats {
  std::string app;
  uint64_t direct_transfers = 0;    // jmp, jcc, direct call
  uint64_t indirect_transfers = 0;  // jmpr, callr (register/computed)
  uint64_t function_calls = 0;      // call + callr
  uint64_t indirect_calls = 0;      // callr
  uint64_t returns = 0;
  uint64_t functions_with_ret = 0;
  uint64_t functions_without_ret = 0;
  uint64_t instructions = 0;
};

/// Result of the indirect-transfer / safety analyses.
struct AnalysisResult {
  /// Instruction starts that must keep their original addresses (tag
  /// cleared): unproven indirect targets + the computed-dispatch windows.
  /// Flat set: copied verbatim into TranslationTables::unrandomized.
  binary::FlatSet32 unrandomized;
  /// Return-site addresses (instruction after a call) that must not be
  /// randomized: indirect-call returns always; returns into unsafe callees
  /// under the conservative policy.
  std::unordered_set<uint32_t> unsafe_return_sites;
  /// `mov rX, imm` instruction addresses whose immediate is a proven code
  /// pointer and must be patched into the randomized space.
  std::unordered_set<uint32_t> code_imm_sites;
  /// Data addresses of 32-bit slots holding code pointers that the
  /// byte-scan heuristic found *and* relocation records cover (patched).
  std::unordered_set<uint32_t> patched_data_slots;
  /// Byte-scan candidates in data with no relocation record (left alone;
  /// their targets populate `unrandomized`).
  std::unordered_set<uint32_t> unproven_data_slots;
  StaticStats stats;
};

/// Policy for return-address randomization (§IV-A/§IV-C).
enum class ReturnPolicy {
  /// Software-only option: randomize only provably safe call sites.
  kConservative,
  /// Architectural option: randomize every safe-by-architecture return
  /// (the stack bitmap de-randomizes direct accesses); only indirect-call
  /// returns and non-ret-returning callees stay un-randomized.
  kArchitectural,
  /// No call pushes a randomized return address at all. Used underneath
  /// the software call rewrite (ReturnOption::kSoftwareRewrite), where the
  /// rewritten sites push their randomized returns explicitly and every
  /// remaining call must stay un-randomized.
  kNone,
};

/// Runs all analyses over a recovered CFG.
[[nodiscard]] AnalysisResult analyze(const binary::Image& image,
                                     const Cfg& cfg,
                                     ReturnPolicy policy);

/// Static statistics only (Table II / Fig 9) without the heavier passes.
[[nodiscard]] StaticStats static_stats(const binary::Image& image,
                                       const Cfg& cfg);

}  // namespace vcfr::rewriter
