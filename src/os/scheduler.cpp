#include "os/scheduler.hpp"

#include "binary/state_io.hpp"

namespace vcfr::os {

Scheduler::Scheduler(const SchedulerConfig& config, uint32_t cores)
    : config_(config),
      head_(cores == 0 ? 1 : cores, -1),
      tail_(cores == 0 ? 1 : cores, -1) {}

void Scheduler::push(uint32_t core, uint32_t pid) {
  if (pid >= next_.size()) next_.resize(pid + 1, -1);
  next_[pid] = -1;
  if (tail_[core] < 0) {
    head_[core] = static_cast<int32_t>(pid);
  } else {
    next_[static_cast<uint32_t>(tail_[core])] = static_cast<int32_t>(pid);
  }
  tail_[core] = static_cast<int32_t>(pid);
  ++runnable_;
}

uint32_t Scheduler::admit(uint32_t pid) {
  const uint32_t core = next_core_;
  push(core, pid);
  next_core_ = (next_core_ + 1) % static_cast<uint32_t>(head_.size());
  return core;
}

int Scheduler::pick(uint32_t core) {
  const int32_t pid = head_[core];
  if (pid < 0) return -1;
  head_[core] = next_[static_cast<uint32_t>(pid)];
  if (head_[core] < 0) tail_[core] = -1;
  --runnable_;
  return pid;
}

void Scheduler::requeue(uint32_t core, uint32_t pid) {
  push(core, pid);
  ++preemptions_;
}

void Scheduler::block(uint32_t pid) {
  (void)pid;  // not on any queue while blocked; only the count is kept
  ++blocked_;
}

void Scheduler::unblock(uint32_t core, uint32_t pid) {
  push(core, pid);
  if (blocked_ > 0) --blocked_;
  ++wakeups_;
}

void Scheduler::register_stats(const telemetry::Scope& scope) const {
  scope.counter("preemptions", &preemptions_);
  scope.counter("wakeups", &wakeups_);
  scope.gauge("runnable",
              [this] { return static_cast<double>(runnable_); });
  scope.gauge("blocked",
              [this] { return static_cast<double>(blocked_); });
}

void Scheduler::save_state(binary::StateWriter& w) const {
  w.u32(next_core_);
  w.u64(preemptions_);
  w.u64(wakeups_);
  w.u64(blocked_);
  w.u32(static_cast<uint32_t>(head_.size()));
  for (uint32_t core = 0; core < head_.size(); ++core) {
    uint32_t n = 0;
    for (int32_t pid = head_[core]; pid >= 0;
         pid = next_[static_cast<uint32_t>(pid)]) {
      ++n;
    }
    w.u32(n);
    for (int32_t pid = head_[core]; pid >= 0;
         pid = next_[static_cast<uint32_t>(pid)]) {
      w.u32(static_cast<uint32_t>(pid));
    }
  }
}

void Scheduler::load_state(binary::StateReader& r) {
  next_core_ = r.u32();
  preemptions_ = r.u64();
  wakeups_ = r.u64();
  blocked_ = r.u64();
  const uint32_t cores = r.count(1u << 16);
  if (cores != head_.size()) {
    throw binary::FormatError(binary::FormatFault::kImplausible,
                              "checkpoint core count mismatch");
  }
  next_.clear();
  head_.assign(cores, -1);
  tail_.assign(cores, -1);
  runnable_ = 0;
  for (uint32_t core = 0; core < cores; ++core) {
    const uint32_t n = r.count(1u << 20);
    for (uint32_t i = 0; i < n; ++i) push(core, r.u32());
  }
}

}  // namespace vcfr::os
