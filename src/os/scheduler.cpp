#include "os/scheduler.hpp"

namespace vcfr::os {

Scheduler::Scheduler(const SchedulerConfig& config, uint32_t cores)
    : config_(config), queues_(cores == 0 ? 1 : cores) {}

uint32_t Scheduler::admit(uint32_t pid) {
  const uint32_t core = next_core_;
  queues_[core].push_back(pid);
  next_core_ = (next_core_ + 1) % static_cast<uint32_t>(queues_.size());
  return core;
}

int Scheduler::pick(uint32_t core) {
  auto& q = queues_[core];
  if (q.empty()) return -1;
  const uint32_t pid = q.front();
  q.pop_front();
  return static_cast<int>(pid);
}

void Scheduler::requeue(uint32_t core, uint32_t pid) {
  queues_[core].push_back(pid);
  ++preemptions_;
}

void Scheduler::block(uint32_t pid) {
  (void)pid;  // not on any queue while blocked; only the count is kept
  ++blocked_;
}

void Scheduler::unblock(uint32_t core, uint32_t pid) {
  queues_[core].push_back(pid);
  if (blocked_ > 0) --blocked_;
  ++wakeups_;
}

bool Scheduler::any_runnable() const {
  for (const auto& q : queues_) {
    if (!q.empty()) return true;
  }
  return false;
}

void Scheduler::register_stats(const telemetry::Scope& scope) const {
  scope.counter("preemptions", &preemptions_);
  scope.counter("wakeups", &wakeups_);
  scope.gauge("runnable", [this] {
    size_t n = 0;
    for (const auto& q : queues_) n += q.size();
    return static_cast<double>(n);
  });
  scope.gauge("blocked",
              [this] { return static_cast<double>(blocked_); });
}

}  // namespace vcfr::os
