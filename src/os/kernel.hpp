// The simulated OS kernel for a fleet of VCFR processes (§IV-B / §IV-D).
//
// Owns the process table, the per-core pipelines (sim::CpuCore) with their
// private IL1/DL1/DRC/bitmap caches, the shared L2 + DRAM they contend on
// (cache::SharedL2), and the round-robin scheduler. Each scheduler round:
//
//   1. dispatch: every core picks its queue head; if the address space
//      changed (different pid or epoch), core::ContextManager flushes the
//      DRC and return-bitmap cache and the core pays the context-switch
//      overhead — the paper's per-process-secret invariant;
//   2. execute (parallel across host threads when cores > 1): each active
//      core runs one time slice, probing the frozen shared-L2 state;
//   3. commit (serial): the shared L2 replays all logged requests in
//      deterministic order and each core's clock absorbs its contention
//      penalty;
//   4. bookkeeping: finished processes leave the table, re-randomization
//      policies fire (deferring at non-quiescent points), survivors are
//      requeued.
//
// After the fleet drains, each process is optionally re-run in isolation
// (same seed, fresh solo core) to verify the time-sliced architectural
// results bit-match and to compute the multiprogramming slowdown.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "cache/shared_l2.hpp"
#include "core/context.hpp"
#include "os/fleet_stats.hpp"
#include "os/process.hpp"
#include "os/scheduler.hpp"
#include "os/worker_pool.hpp"
#include "profile/profiler.hpp"
#include "sim/cpu.hpp"
#include "telemetry/telemetry.hpp"

namespace vcfr::os {

struct KernelConfig {
  uint32_t cores = 1;
  SchedulerConfig sched{};
  sim::CpuConfig cpu{};  // per-core config (private L2 fields unused)
  cache::SharedL2Config shared_l2{};
  /// Pipeline cycles charged for a context switch (kernel entry, table
  /// install, state save/restore) on top of the flush cold-misses.
  uint64_t context_switch_cycles = 100;
  /// Re-simulate each process alone after the fleet run (arch_match +
  /// slowdown). Doubles the work; tests that only need scheduling
  /// semantics turn it off.
  bool measure_isolated = true;
  /// Safety valve for driver loops; 0 = run until every process finishes.
  uint64_t max_rounds = 0;
  /// Host threads in the execute-phase worker pool. 0 = auto (cores - 1:
  /// the kernel thread drives one task, each worker another). Purely a
  /// host-parallelism knob — simulated results are bit-identical for any
  /// value (results are collected in deterministic order; see
  /// os/worker_pool.hpp).
  uint32_t pool_workers = 0;
  /// Victim-core stall cycles charged per translation/code/stack entry a
  /// re-randomization patched (the simulated cost of the rewrite itself —
  /// what makes incremental rebuild cheaper than a full one). 0 keeps the
  /// legacy free-rerand timing model bit-exactly.
  uint64_t rerand_cost_per_entry = 0;
};

/// Event-driven serving extension point (src/serve/). A hook turns the
/// batch round loop into a request server: it injects work at round
/// boundaries (the only deterministic point — every core is parked
/// between slices), decides what a halt means (request completed vs
/// process exit), and keeps the loop alive while traffic remains even
/// when every tenant is blocked. All callbacks run on the kernel thread
/// in the serial phases, so a hook may freely touch processes and the
/// scheduler through the kernel's service API below.
class ServiceHook {
 public:
  /// What a clean halt of a process means to the service.
  enum class HaltAction : uint8_t {
    kFinish = 0,    // real exit: the kernel parks the process as finished
    kRunnable = 1,  // next request already delivered: requeue immediately
    kBlocked = 2,   // no pending work: park until Kernel::wake()
  };
  virtual ~ServiceHook() = default;
  /// Start of every scheduler round (serial, after queued restarts were
  /// serviced, before dispatch): generate/deliver requests, fast-forward
  /// idle cores, poll for crashed tenants.
  virtual void on_round(uint64_t round) = 0;
  /// A dispatched process halted this round (serial bookkeeping phase).
  /// `core_cycles` is its home core's clock — the completion timestamp.
  virtual HaltAction on_halt(uint32_t pid, uint64_t core_cycles) = 0;
  /// Keeps the round loop alive while true (e.g. future arrivals exist
  /// even though every queue is empty and every tenant is blocked).
  [[nodiscard]] virtual bool active() const = 0;
};

class Kernel {
 public:
  explicit Kernel(const KernelConfig& config);

  /// Creates a process, shards it onto its home core, and returns its pid
  /// (pids are dense, starting at 0).
  uint32_t spawn(const ProcessConfig& config);

  /// Attaches a telemetry session. Must be called before `run()` (every
  /// process spawned so far and later is registered when the run
  /// starts). The session must outlive the kernel's run. Registry scope
  /// layout: fleet.coreN.*, fleet.procN.*, fleet.shared_l2.*,
  /// fleet.sched.*; trace lanes: one per core plus a kernel lane; the
  /// sampler is polled once per scheduler round at the fleet clock.
  void attach_telemetry(telemetry::Telemetry* telemetry) {
    telemetry_ = telemetry;
  }

  /// Enables per-tenant guest profiling. Must be called before `run()`:
  /// one Profiler per process is created at run start and fed by whatever
  /// core the process is dispatched on. Kernel-caused cycles are
  /// attributed explicitly — context-switch overhead as an external cost
  /// and shared-L2 commit penalties per interfering asid — so each core's
  /// tenant profiles sum exactly to that core's cycle count.
  void enable_profiling() { profiling_ = true; }
  /// The pid's profile after `run()`; null when profiling was not enabled.
  [[nodiscard]] const profile::Profiler* profiler(uint32_t pid) const {
    return pid < profilers_.size() ? profilers_[pid].get() : nullptr;
  }

  /// Attaches the serving hook (src/serve/). Must be called before
  /// `run()`; the hook must outlive the run. Null detaches.
  void set_service(ServiceHook* service) { service_ = service; }

  // ---- service API (valid from ServiceHook callbacks) --------------------
  /// `core`'s pipeline clock — the time base for request timestamps of
  /// tenants homed on that core.
  [[nodiscard]] uint64_t core_now(uint32_t core) const {
    return cores_[core]->now();
  }
  /// Fast-forwards an *idle* core's clock to `cycle` (no-op when already
  /// past it). Without this an all-blocked core's clock would stand still
  /// and arrivals scheduled on it would never come due.
  void advance_core(uint32_t core, uint64_t cycle);
  /// Unparks a blocked tenant onto its home core's run queue (the hook
  /// delivers a request via Process::rearm first).
  void wake(uint32_t pid);
  /// Mutable process access for request delivery (Process::rearm).
  [[nodiscard]] Process& process_mut(uint32_t pid) { return *procs_[pid]; }
  /// True when `pid` sits in the restart backoff queue (crashed, but the
  /// kernel will re-image it — the hook should hold its queued requests).
  [[nodiscard]] bool restart_pending(uint32_t pid) const;

  /// Runs the fleet to completion and returns the report. Single-shot.
  FleetReport run();

  // ---- checkpoint / restore ----------------------------------------------
  /// Arms a checkpoint: at the end of scheduler round `round` the full
  /// fleet state (kernel counters, scheduler queues, shared L2 + DRAM,
  /// every core pipeline, every process) is serialized to `path`. Round
  /// boundaries are the only consistent cut — every port log is empty,
  /// every core is parked, all state is member state. 0 disarms.
  /// Unsupported in combination with profiling or a serving hook (both
  /// hold host-side state outside the checkpoint's closure).
  void set_checkpoint(uint64_t round, std::string path) {
    checkpoint_round_ = round;
    checkpoint_path_ = std::move(path);
  }
  /// Restores a checkpoint written by set_checkpoint. Must be called
  /// after every spawn() (the process table re-derives images from the
  /// same configs) and before run(); the continued run's final stats are
  /// bit-identical to the uninterrupted run's. Throws binary::FormatError
  /// on a corrupt stream or a configuration mismatch (the checkpoint
  /// carries a digest of the fleet configuration — worker-pool sizing
  /// excluded, since it cannot affect simulated state).
  void restore(std::istream& in);
  /// Checkpoints written / restored by this kernel (kernel.checkpoint.*).
  [[nodiscard]] uint64_t checkpoint_writes() const {
    return checkpoint_writes_;
  }
  [[nodiscard]] uint64_t checkpoint_restores() const {
    return checkpoint_restores_;
  }

  [[nodiscard]] size_t process_count() const { return procs_.size(); }
  [[nodiscard]] const Process& process(uint32_t pid) const {
    return *procs_[pid];
  }
  /// The pid's current randomization (tables, placement, images) — lets
  /// diversity studies inspect the fleet without running it.
  [[nodiscard]] const rewriter::RandomizeResult& randomization(
      uint32_t pid) const {
    return procs_[pid]->randomization();
  }
  [[nodiscard]] const cache::SharedL2& shared_l2() const { return shared_; }
  [[nodiscard]] const KernelConfig& config() const { return config_; }

  /// Execute-phase rounds dispatched through the persistent worker pool
  /// (0 when the run never had more than one active core — everything ran
  /// inline). Commit-phase shard fan-outs reuse the same pool but are not
  /// execute rounds and are not counted here.
  [[nodiscard]] uint64_t pool_rounds() const { return pool_rounds_; }
  /// Host threads the pool owns (0 until run() first needs it).
  [[nodiscard]] uint32_t pool_workers() const {
    return pool_ == nullptr ? 0 : pool_->workers();
  }

  /// Processes the kernel restarted (re-randomize-on-crash firings).
  [[nodiscard]] uint64_t restarts() const { return restarts_; }
  /// Processes killed for exceeding their watchdog instruction budget.
  [[nodiscard]] uint64_t watchdog_kills() const { return watchdog_kills_; }
  /// Forced-quiescence re-randomizations (deferral cap expired and the
  /// placement swap proceeded around pinned registers; kernel.rerand.forced).
  [[nodiscard]] uint64_t rerand_forced() const { return rerand_forced_; }
  /// Taint-sink firings drained from tainted tenants (fleet.leak.detected).
  [[nodiscard]] uint64_t leaks_detected() const { return leaks_detected_; }
  /// Re-randomizations scheduled because a leak fired (fleet.leak.rerands;
  /// the victim only — fleet-scope co-tenant re-keys are not counted).
  [[nodiscard]] uint64_t leak_rerands() const { return leak_rerands_; }

 private:
  /// A crashed (or, under kAlways, halted) process waiting out its
  /// exponential backoff before the kernel re-images it.
  struct PendingRestart {
    uint32_t pid = 0;
    uint64_t due_round = 0;
  };

  /// Dispatches `pid` on `core`: context switch (flush + overhead) when
  /// the address space changed, then pipeline install.
  void dispatch(uint32_t core, Process& proc);
  /// Containment decision for a finished process: queue a restart when its
  /// policy says so and the cap allows (backoff doubles per restart).
  void consider_restart(const Process& proc);
  /// Restarts every queued process whose backoff elapsed and requeues it
  /// on its home core.
  void service_restarts();
  /// Isolated re-run of one finished process (arch_match + slowdown).
  void measure_isolated(ProcessReport& report, const Process& proc) const;
  /// Registers every core/process/shared structure with the attached
  /// telemetry session and creates the trace lanes (run() entry).
  void setup_telemetry();
  /// Serializes the full fleet state to checkpoint_path_ (end of round).
  void write_checkpoint();
  /// FNV-1a over the simulation-relevant configuration (kernel + every
  /// process). pool_workers is excluded: restoring under a different
  /// worker count is allowed and bit-identical.
  [[nodiscard]] uint64_t config_digest() const;
  /// The fleet-wide clock: the slowest core's cycle horizon.
  [[nodiscard]] uint64_t fleet_now() const;

  KernelConfig config_;
  cache::SharedL2 shared_;
  Scheduler sched_;
  std::vector<std::unique_ptr<sim::CpuCore>> cores_;
  std::vector<std::unique_ptr<core::ContextManager>> ctx_;
  /// (pid, epoch) currently installed in each core's pipeline, or -1.
  std::vector<std::pair<int64_t, int64_t>> installed_;
  std::vector<std::unique_ptr<Process>> procs_;
  uint64_t rounds_ = 0;
  uint64_t restarts_ = 0;
  uint64_t watchdog_kills_ = 0;
  uint64_t rerand_forced_ = 0;
  /// Leak observability (emu/taint.hpp): sink firings drained and the
  /// re-rands they scheduled under RerandomizePolicy::on_leak.
  uint64_t leaks_detected_ = 0;
  uint64_t leak_rerands_ = 0;
  /// Total regions / entries live re-randomizations patched (fleet-wide;
  /// the per-firing distribution is in the rerand.* histograms).
  uint64_t rerand_regions_total_ = 0;
  uint64_t rerand_entries_total_ = 0;
  /// Injections that took effect (fault.injected.* counts by site).
  uint64_t injected_faults_ = 0;
  std::vector<PendingRestart> pending_restarts_;
  /// fault.detect_latency (injection → trap, in instructions); null when
  /// telemetry is not attached.
  telemetry::Histogram* detect_latency_hist_ = nullptr;
  /// rerand.{latency,regions_patched,entries_patched} — per-firing cost of
  /// live re-randomization (null unless telemetry is attached and some
  /// process has a re-rand policy armed).
  telemetry::Histogram* rerand_latency_hist_ = nullptr;
  telemetry::Histogram* rerand_regions_hist_ = nullptr;
  telemetry::Histogram* rerand_entries_hist_ = nullptr;
  /// fleet.leak.depth — propagation depth of each drained leak (null
  /// unless telemetry is attached and some process has taint armed).
  telemetry::Histogram* leak_depth_hist_ = nullptr;
  /// Persistent workers, created lazily on the first round that has two
  /// or more active cores; also drives the commit phase's per-shard tag
  /// application. Replaces per-round thread spawn/join; see
  /// os/worker_pool.hpp for the determinism argument.
  std::unique_ptr<WorkerPool> pool_;
  /// Execute-phase pool dispatches (the pool's own rounds() also counts
  /// commit-phase shard fan-outs).
  uint64_t pool_rounds_ = 0;

  // Checkpoint / restore (see set_checkpoint).
  uint64_t checkpoint_round_ = 0;
  std::string checkpoint_path_;
  uint64_t checkpoint_writes_ = 0;
  uint64_t checkpoint_restores_ = 0;
  /// Set by restore(); run() journals the resumption.
  bool restored_ = false;

  ServiceHook* service_ = nullptr;

  telemetry::Telemetry* telemetry_ = nullptr;
  /// Per-core trace lanes plus one kernel lane (null when tracing is off).
  std::vector<telemetry::TraceLane*> lanes_;
  telemetry::TraceLane* kernel_lane_ = nullptr;
  /// Flight recorder (null when the telemetry session has none): the
  /// kernel journals spawns, faults, watchdog/budget kills, restarts,
  /// and re-rand epochs with the in-flight request id when one exists.
  telemetry::Journal* journal_ = nullptr;

  /// Per-tenant profilers, indexed by pid (empty unless enable_profiling).
  bool profiling_ = false;
  std::vector<std::unique_ptr<profile::Profiler>> profilers_;
};

}  // namespace vcfr::os
