// Persistent worker pool for the fleet kernel's execute phase.
//
// The kernel used to spawn and join a fresh std::thread per active core
// every scheduler round — at smoke-scale slice lengths the spawn/join cost
// rivals the simulation work itself. This pool creates the host threads
// once and dispatches rounds through a condition variable.
//
// Task assignment is static: task i of a dispatch runs on worker i-1 and
// task 0 on the calling thread, mirroring the former thread-per-core
// layout. There is no work stealing, so within a round each simulated
// core is driven by exactly one host thread and the per-lane tracing
// contract (one writer per ring) is preserved; determinism is untouched
// because workers only mutate their own core's private state and the
// shared-L2 replay stays serial at round commit.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace vcfr::os {

class WorkerPool {
 public:
  /// Creates `workers` host threads, idle until the first run().
  explicit WorkerPool(uint32_t workers);
  ~WorkerPool();
  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  /// Runs fn(0) .. fn(tasks-1), fn(0) on the calling thread, and returns
  /// when every task has completed. Requires tasks <= workers() + 1.
  /// A single task (or an empty pool) runs inline without waking anyone.
  void run(uint32_t tasks, const std::function<void(uint32_t)>& fn);

  [[nodiscard]] uint32_t workers() const {
    return static_cast<uint32_t>(threads_.size());
  }

  /// Dispatches that actually woke workers (tasks > 1) — exported as the
  /// kernel.pool.rounds counter.
  [[nodiscard]] uint64_t rounds() const { return rounds_; }

 private:
  void worker_loop(uint32_t id);

  std::mutex mutex_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  // Dispatch state, all guarded by mutex_.
  const std::function<void(uint32_t)>* fn_ = nullptr;
  uint32_t tasks_ = 0;
  uint32_t pending_ = 0;  // participating workers still running this epoch
  uint64_t epoch_ = 0;
  bool stop_ = false;

  uint64_t rounds_ = 0;
  std::vector<std::thread> threads_;
};

}  // namespace vcfr::os
