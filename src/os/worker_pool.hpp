// Persistent work-stealing worker pool for the fleet kernel's execute
// phase (and the sharded round commit's parallel tag application).
//
// The kernel used to spawn and join a fresh std::thread per active core
// every scheduler round — at smoke-scale slice lengths the spawn/join cost
// rivals the simulation work itself. This pool creates the host threads
// once and dispatches rounds through a condition variable.
//
// Task assignment is work-stealing: each of the workers()+1 participants
// (the caller is participant 0) owns a deque; a dispatch of `tasks` tasks
// distributes task i to deque i % participants. Participants drain their
// own deque from the front, then steal from other deques' backs in ring
// order. This means a slow task (deep re-rand, DRC-cold tenant) no longer
// stalls the whole round behind one host thread, and `tasks` may exceed
// the participant count — the old static pool silently required
// tasks <= workers()+1.
//
// Determinism: which host thread runs a task is scheduling-dependent, but
// every task runs exactly once per dispatch and run() returns only after
// all of them complete, so any simulated state the tasks produce is
// collected by the caller in deterministic (task-index) order. Within a
// round each task is popped exactly once, so each simulated core is still
// driven by exactly one host thread and the per-lane tracing contract
// (one writer per ring) is preserved. Steal counts are host-scheduling
// noise and must never feed a CI-diffed/simulated section.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace vcfr::os {

class WorkerPool {
 public:
  /// Creates `workers` host threads, idle until the first run().
  explicit WorkerPool(uint32_t workers);
  ~WorkerPool();
  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  /// Runs fn(0) .. fn(tasks-1), each exactly once, and returns when every
  /// task has completed. The calling thread participates in the drain.
  /// A single task (or an empty pool) runs inline without waking anyone.
  void run(uint32_t tasks, const std::function<void(uint32_t)>& fn);

  [[nodiscard]] uint32_t workers() const {
    return static_cast<uint32_t>(threads_.size());
  }

  /// Dispatches that actually woke workers (tasks > 1) — exported as the
  /// kernel.pool.rounds counter.
  [[nodiscard]] uint64_t rounds() const { return rounds_; }

  /// Total tasks popped from a deque by a non-owning participant across
  /// all dispatches. Host-scheduling-dependent — observability only,
  /// never part of a deterministic report section.
  [[nodiscard]] uint64_t steals() const;

 private:
  // One per participant. The mutex protects q and stolen_from; it is
  // mutable so steals() can stay const.
  struct Deque {
    mutable std::mutex m;
    std::deque<uint32_t> q;
    uint64_t stolen_from = 0;
  };

  void worker_loop(uint32_t id);
  /// Drains tasks as participant `p`: own deque front-first, then steal
  /// from the other deques' backs in ring order.
  void drain(uint32_t p);

  std::mutex mutex_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  // Dispatch state, all guarded by mutex_.
  const std::function<void(uint32_t)>* fn_ = nullptr;
  uint32_t pending_ = 0;  // tasks of the current dispatch not yet completed
  uint64_t epoch_ = 0;
  bool stop_ = false;

  uint64_t rounds_ = 0;
  std::vector<std::unique_ptr<Deque>> deques_;  // [0] = caller's
  std::vector<std::thread> threads_;
};

}  // namespace vcfr::os
