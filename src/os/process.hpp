// A VCFR process as the simulated kernel sees it (§IV-B / §V-C).
//
// Each process owns an independently randomized image of its workload —
// its own placement seed, translation tables, loaded memory, and
// architectural state — exactly the per-process context the paper says the
// kernel must carry ("the main impact is to extend application context to
// include the de-randomization/randomization tables"). The scheduler
// time-slices processes onto cores; on every slice boundary the kernel
// decides whether the DRC/bitmap flush of a context switch is due and
// whether the process's re-randomization policy fires.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "binary/image.hpp"
#include "binary/loader.hpp"
#include "core/context.hpp"
#include "core/translation.hpp"
#include "emu/emulator.hpp"
#include "fault/fault.hpp"
#include "fault/injector.hpp"
#include "rewriter/randomizer.hpp"

namespace vcfr::binary {
class StateWriter;
class StateReader;
}  // namespace vcfr::binary

namespace vcfr::os {

/// When and how to re-randomize the process (§V-C + continuous re-rand).
/// Defaults reproduce the legacy behavior bit-exactly: periodic-only
/// trigger, full rebuild, eager flush, unlimited deferrals.
struct RerandomizePolicy {
  /// Periodic trigger: fire every N slices. 0 = never.
  uint32_t every_slices = 0;

  /// How a firing rebuilds the placement.
  enum class Rebuild : uint8_t {
    /// Legacy: fresh full placement, stop-the-world table swap.
    kFull = 0,
    /// Continuous (MARDU-style): re-place only a deterministic selection
    /// of code pages, patching the live tables/image in place. The
    /// walker, emulator, and tables object keep their identity.
    kIncremental = 1,
  };
  Rebuild rebuild = Rebuild::kFull;

  /// Incremental only: percent of movable code pages re-placed per
  /// periodic firing (>= 100 = all). Trap-triggered firings always
  /// re-place everything.
  uint32_t region_percent = 25;

  /// Keep warm micro-architectural state across a firing: DRC lines and
  /// decode-cache entries carry a re-rand epoch tag and revalidate lazily
  /// on lookup instead of being flushed eagerly. Off = legacy full flush.
  bool epoch_tags = false;

  /// Re-rand-on-trap: an attack-signal fault (kBadOpcode, kUnmappedFetch,
  /// kTranslationMismatch) schedules an immediate fresh placement for the
  /// victim's next life/slice.
  bool on_trap = false;

  /// Re-rand-on-leak: a taint sink firing (a randomized-layout secret
  /// reached program output — the disclosure that precedes a
  /// derandomization attack) schedules a fresh placement exactly as a
  /// trap does, re-keying the disclosed layout before it can be used.
  /// Requires taint tracking (ProcessConfig.taint); scope is honored.
  bool on_leak = false;

  /// Who re-randomizes when a trap fires.
  enum class Scope : uint8_t {
    kProc = 0,   // the victim only
    kFleet = 1,  // the victim plus every live co-tenant
  };
  Scope scope = Scope::kProc;

  /// Deferral cap: after K consecutive quiescence deferrals the next
  /// firing forces the swap, keeping register-held randomized addresses
  /// alive as derand aliases. 0 = defer forever (legacy starvation).
  uint32_t max_defer = 0;
};

/// Work accounting for the most recent successful re-randomization.
struct RerandWork {
  uint32_t regions = 0;  // code pages re-placed
  uint64_t entries = 0;  // table/code/data/stack entries patched
  bool forced = false;   // deferral cap forced quiescence via aliases
  bool incremental = false;
};

/// What the kernel does when a process leaves the fleet (MARDU-style
/// re-randomize-on-crash): a restarted process re-images from scratch
/// with a *fresh* placement seed, so the attacker's knowledge of the
/// crashed layout is worthless against the replacement.
struct RestartPolicy {
  enum class Mode : uint8_t {
    kNever = 0,    // crashed processes stay down (default)
    kOnFault = 1,  // restart after a typed fault or watchdog kill
    kAlways = 2,   // also restart clean halts (a resident service)
  };
  Mode mode = Mode::kNever;
  /// Lifetime cap on restarts per process.
  uint32_t max_restarts = 3;
  /// Scheduler rounds before the first restart; doubles per restart
  /// (exponential backoff). 0 = restart on the next round.
  uint64_t backoff_rounds = 8;
};

struct ProcessConfig {
  std::string workload = "gcc";
  int scale = 1;
  uint64_t seed = 1;
  /// Architectural instruction budget *per life*; the process parks as
  /// finished when it halts, faults, or exhausts this.
  uint64_t max_instructions = 200'000'000;
  RerandomizePolicy rerandomize{};
  /// Randomized-tag enforcement (§IV-A) — on, as a production kernel would
  /// run it.
  bool enforce_tags = true;
  RestartPolicy restart{};
  /// Kernel watchdog: kill (typed kWatchdog) once a life retires this many
  /// instructions without halting. 0 = off. Must be < max_instructions to
  /// ever fire before the budget parks the process.
  uint64_t watchdog_instructions = 0;
  /// Armed fault injection (fires once, at inject.at_instruction retired
  /// instructions of the first life).
  fault::FaultPlan inject{};
  bool inject_enabled = false;
  /// Address-taint tracking (emu/taint.hpp): observer-neutral shadow
  /// state over every emulator this process creates; leaks surface
  /// through the kernel's per-pass drain. Off by default (zero cost).
  bool taint = false;
};

struct ProcessStats {
  uint64_t slices = 0;
  uint64_t instructions = 0;
  /// Slice dispatches that required a real context switch (DRC + bitmap
  /// flush) because another address space ran on the core in between.
  uint64_t context_switches = 0;
  /// Translations this process lost to those flushes (cold-start cost it
  /// pays on re-entry).
  uint64_t drc_entries_flushed = 0;
  uint64_t bitmap_entries_flushed = 0;
  uint64_t rerandomizations = 0;
  /// Policy firings skipped because a register held a randomized-space
  /// code pointer (not a quiescent point — retried next slice).
  uint64_t rerandomizations_deferred = 0;
  /// Firings that hit the deferral cap and forced quiescence by keeping
  /// the register-held addresses alive as derand aliases.
  uint64_t rerandomizations_forced = 0;
  /// Core clock at the moment the process finished (for slowdown vs an
  /// isolated run).
  uint64_t finish_cycles = 0;
};

/// One spawned workload: image, tables, memory, and architectural state.
/// The kernel owns Process objects; a process is bound to one core for its
/// whole life (static shard) and `bind()` builds its table walker over
/// that core's memory hierarchy.
class Process {
 public:
  Process(uint32_t pid, const ProcessConfig& config);

  /// (Re)creates the translation walker against the bound core's memory
  /// hierarchy. Must be called before the first slice and is re-issued
  /// internally after each successful re-randomization (the tables object
  /// is replaced).
  void bind(uint32_t core, cache::MemHier& mem);

  /// The kernel-side context record handed to core::ContextManager.
  [[nodiscard]] core::ProcessContext context() const;

  /// Attempts the §V-C live re-randomization at the current point. Returns
  /// false (and counts a deferral) when any general-purpose register holds
  /// a randomized-space address — not a quiescent point — unless the
  /// policy's deferral cap forces the swap (the held addresses survive as
  /// derand aliases). On success the epoch bumps; the full path swaps
  /// image, tables, walker, and emulator while the incremental path
  /// patches them in place (identities preserved). Calling this before
  /// bind() is kernel misuse and surfaces as a typed kRerandFailure fault
  /// on the process (never an exception).
  bool try_rerandomize();

  /// Schedules an immediate fresh placement (re-rand-on-trap): the next
  /// policy evaluation fires regardless of the periodic counter, and an
  /// incremental rebuild re-places every movable page. `from_trap` marks
  /// the victim itself (drives restart-backoff expediting) as opposed to a
  /// fleet-scope co-tenant.
  void schedule_rerand(bool from_trap) {
    rerand_pending_ = true;
    if (from_trap) ++trap_rerands_;
  }
  [[nodiscard]] bool rerand_pending() const { return rerand_pending_; }
  /// Attack-signal traps this process has answered with a re-randomization
  /// schedule (restart backoff shrinks as evidence of attack mounts).
  [[nodiscard]] uint32_t trap_rerands() const { return trap_rerands_; }
  /// Work done by the most recent successful re-randomization.
  [[nodiscard]] const RerandWork& last_rerand_work() const {
    return last_work_;
  }
  /// Stale derand aliases currently kept alive for register-held
  /// addresses (forced-quiescence residue; dropped once unreferenced).
  [[nodiscard]] const std::vector<uint32_t>& rerand_aliases() const {
    return aliases_;
  }

  /// Marks the process finished with a typed exit and records the core
  /// clock.
  void finish(uint64_t core_cycles, fault::ExitStatus status);

  /// Re-arms the process for the next request of a serving workload
  /// (src/serve/): memory is re-imaged and the emulator reset against the
  /// *same* randomization epoch — tables, placement, and walker are
  /// untouched, so the core's warm DRC/bitmap state stays valid and no
  /// context switch is due. `payload` is written at `payload_base` before
  /// the life starts (the request bytes a server reads). Resets the
  /// per-life budget/watchdog clock and the finished flag.
  void rearm(const std::vector<uint8_t>& payload, uint32_t payload_base);

  /// Re-images the process from scratch with a fresh placement seed
  /// (restart-with-rerandomize): new randomization, memory, and emulator;
  /// the epoch bumps so every cached translation of the dead layout is
  /// flushed at the next dispatch. Cumulative stats survive; the
  /// per-life instruction budget and watchdog clock reset.
  void restart();

  [[nodiscard]] uint32_t pid() const { return pid_; }
  [[nodiscard]] int core() const { return core_; }
  [[nodiscard]] const ProcessConfig& config() const { return config_; }
  [[nodiscard]] uint64_t epoch() const { return epoch_; }
  [[nodiscard]] bool finished() const { return finished_; }
  [[nodiscard]] const fault::ExitStatus& exit_status() const {
    return exit_status_;
  }
  [[nodiscard]] uint32_t restarts() const { return restarts_; }
  /// Instructions retired by the current life (restart resets it; the
  /// watchdog and the per-life budget run on this clock).
  [[nodiscard]] uint64_t life_instructions() const {
    return stats_.instructions - life_base_;
  }
  /// Instructions still within the current life's budget.
  [[nodiscard]] uint64_t remaining() const {
    const uint64_t life = life_instructions();
    return config_.max_instructions > life ? config_.max_instructions - life
                                           : 0;
  }

  // ---- request attribution (src/serve/) ----------------------------------
  // While a serving workload has a request in flight, the kernel accrues
  // the cycles it spends *running* it (slice durations + context-switch
  // overhead) and *stalled on round commit* into the process, so the
  // serve driver can decompose end-to-end latency exactly:
  //   latency == queue + run + restart_loss + commit_stall.
  // restart() and rearm() leave these fields alone — the driver owns the
  // request lifecycle and reads them post-mortem after a crash.
  void begin_request(uint64_t id) {
    req_active_ = true;
    req_id_ = id;
    req_run_cycles_ = 0;
    req_commit_cycles_ = 0;
    req_leaks_ = 0;
    req_leak_depth_ = 0;
  }
  void end_request() { req_active_ = false; }
  [[nodiscard]] bool request_active() const { return req_active_; }
  [[nodiscard]] uint64_t request_id() const { return req_id_; }
  [[nodiscard]] uint64_t request_run_cycles() const { return req_run_cycles_; }
  [[nodiscard]] uint64_t request_commit_cycles() const {
    return req_commit_cycles_;
  }
  void add_request_run(uint64_t cycles) { req_run_cycles_ += cycles; }
  void add_request_commit(uint64_t cycles) { req_commit_cycles_ += cycles; }
  /// Leak attribution: the kernel calls this per drained leak record while
  /// a request is in flight, so the serve CSV can name the request that
  /// disclosed the layout.
  void note_request_leak(uint32_t depth) {
    ++req_leaks_;
    if (depth > req_leak_depth_) req_leak_depth_ = depth;
  }
  [[nodiscard]] uint64_t request_leaks() const { return req_leaks_; }
  [[nodiscard]] uint32_t request_leak_depth() const { return req_leak_depth_; }

  // ---- fault injection (config.inject) -----------------------------------
  [[nodiscard]] const fault::FaultInjector* injector() const {
    return injector_.get();
  }
  /// True when the armed plan should fire now (bookkeeping applies it).
  [[nodiscard]] bool injection_due() const {
    return injector_ != nullptr && injector_->due(life_instructions());
  }
  /// Instructions until the armed plan fires — the kernel truncates the
  /// slice budget with this so the corruption lands on the exact boundary.
  /// UINT64_MAX when nothing is pending.
  [[nodiscard]] uint64_t injection_gap() const;
  /// Applies the armed corruption against the live image/memory/emulator.
  /// Returns whether it took effect (idempotent).
  bool apply_injection();

  /// Checkpoint support. save_state serializes the *current* randomized
  /// image verbatim (not just the epoch seed) so injection-corrupted code
  /// bytes and table entries survive the round trip; load_state re-derives
  /// the rest of the randomization deterministically from (seed, epoch,
  /// reseed), swaps in the serialized image, restores memory, builds a
  /// fresh emulator over them and loads its architectural state, then
  /// rebuilds the walker over the restored tables. The caller must have
  /// bind()-ed the process first (spawn order reproduces that).
  void save_state(binary::StateWriter& w) const;
  void load_state(binary::StateReader& r);

  [[nodiscard]] emu::Emulator& emulator() { return *emu_; }
  [[nodiscard]] const emu::Emulator& emulator() const { return *emu_; }
  [[nodiscard]] core::TranslationWalker* walker() { return walker_.get(); }
  [[nodiscard]] const binary::Image& original() const { return base_; }
  [[nodiscard]] const rewriter::RandomizeResult& randomization() const {
    return *rr_;
  }
  [[nodiscard]] const binary::Memory& memory() const { return mem_; }
  [[nodiscard]] ProcessStats& stats() { return stats_; }
  [[nodiscard]] const ProcessStats& stats() const { return stats_; }

 private:
  [[nodiscard]] rewriter::RandomizeOptions options_for_epoch(
      uint64_t epoch) const;
  /// Applies config_.taint to the current emulator (every construction
  /// site calls this; a full re-randomization starts the new emulator's
  /// shadow state clean — the re-keyed placement has no old secrets).
  void apply_taint_config();
  bool rerandomize_full(const std::vector<uint32_t>& pinned, bool force);
  bool rerandomize_incremental_step(const std::vector<uint32_t>& pinned,
                                    bool force);

  uint32_t pid_;
  ProcessConfig config_;
  binary::Image base_;  // original layout; every epoch randomizes this
  std::unique_ptr<rewriter::RandomizeResult> rr_;
  binary::Memory mem_;
  std::unique_ptr<emu::Emulator> emu_;
  std::unique_ptr<core::TranslationWalker> walker_;
  cache::MemHier* bound_mem_ = nullptr;
  int core_ = -1;
  uint64_t epoch_ = 0;
  bool finished_ = false;
  fault::ExitStatus exit_status_;
  uint32_t restarts_ = 0;
  /// stats_.instructions at the start of the current life.
  uint64_t life_base_ = 0;
  /// Restart salt mixed into options_for_epoch — a restarted process must
  /// not land on any placement of the crashed lineage.
  uint64_t reseed_ = 0;
  // In-flight request attribution (see begin_request above).
  bool req_active_ = false;
  uint64_t req_id_ = 0;
  uint64_t req_run_cycles_ = 0;
  uint64_t req_commit_cycles_ = 0;
  uint64_t req_leaks_ = 0;
  uint32_t req_leak_depth_ = 0;
  std::unique_ptr<fault::FaultInjector> injector_;
  ProcessStats stats_;
  // Continuous re-randomization state.
  uint32_t defer_streak_ = 0;   // consecutive quiescence deferrals
  bool rerand_pending_ = false; // trap-scheduled fresh placement due
  uint32_t trap_rerands_ = 0;   // attack-signal traps answered
  /// Derand aliases kept alive for register-held addresses across forced
  /// swaps; retired at later successful re-randomizations.
  std::vector<uint32_t> aliases_;
  RerandWork last_work_;
  /// CFG of base_, built lazily the first time the incremental path runs
  /// (deterministic, so never serialized).
  std::unique_ptr<rewriter::Cfg> cfg_;
};

}  // namespace vcfr::os
