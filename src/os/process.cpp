#include "os/process.hpp"

#include <algorithm>
#include <sstream>

#include "binary/serialize.hpp"
#include "binary/state_io.hpp"
#include "emu/rerandomize.hpp"
#include "workloads/suite.hpp"

namespace vcfr::os {

namespace {
// Same golden-ratio mixer the examples use for per-instance seeds; here it
// advances a process's seed across re-randomization epochs.
constexpr uint64_t kSeedMix = 0x9e3779b97f4a7c15ull;
}  // namespace

Process::Process(uint32_t pid, const ProcessConfig& config)
    : pid_(pid),
      config_(config),
      base_(workloads::make(config.workload, config.scale)) {
  rr_ = std::make_unique<rewriter::RandomizeResult>(
      rewriter::randomize(base_, options_for_epoch(0)));
  binary::load(rr_->vcfr, mem_);
  emu_ = std::make_unique<emu::Emulator>(rr_->vcfr, mem_);
  emu_->set_enforce_tags(config_.enforce_tags);
  apply_taint_config();
  if (config_.inject_enabled) {
    injector_ = std::make_unique<fault::FaultInjector>(config_.inject);
  }
}

void Process::apply_taint_config() {
  if (!config_.taint) return;
  emu_->set_taint_tracking(true);
  emu_->set_taint_epoch(epoch_);
}

rewriter::RandomizeOptions Process::options_for_epoch(uint64_t epoch) const {
  rewriter::RandomizeOptions options;
  options.seed = config_.seed + kSeedMix * epoch + reseed_;
  return options;
}

void Process::bind(uint32_t core, cache::MemHier& mem) {
  core_ = static_cast<int>(core);
  bound_mem_ = &mem;
  walker_ = std::make_unique<core::TranslationWalker>(rr_->vcfr.tables, mem);
}

core::ProcessContext Process::context() const {
  core::ProcessContext ctx;
  ctx.pid = pid_;
  ctx.name = config_.workload;
  ctx.tables = &rr_->vcfr.tables;
  ctx.epoch = epoch_;
  return ctx;
}

bool Process::try_rerandomize() {
  if (bound_mem_ == nullptr) {
    // Kernel misuse (rerandomize before bind()) used to throw a bare
    // logic_error through the scheduler; surface it as a typed fault the
    // containment machinery handles like any other crash.
    emu_->raise_external(fault::FaultKind::kRerandFailure);
    exit_status_.code = fault::ExitCode::kFaulted;
    exit_status_.trap = emu_->trap();
    return false;
  }
  // Quiescence check (§V-C): the swap re-translates the PC and every
  // bitmap-marked stack slot, but a randomized code pointer sitting in a
  // general-purpose register would silently go stale. A preemption point is
  // an arbitrary instruction boundary, so defer until the registers are
  // clean of randomized-space addresses — unless the deferral cap says the
  // policy has starved long enough, in which case the held addresses are
  // pinned as derand aliases and the swap proceeds (forced quiescence).
  std::vector<uint32_t> pinned;
  for (const uint32_t reg : emu_->state().regs) {
    if (rr_->vcfr.tables.is_randomized_addr(reg)) pinned.push_back(reg);
  }
  bool force = false;
  if (!pinned.empty()) {
    const uint32_t cap = config_.rerandomize.max_defer;
    if (cap == 0 || defer_streak_ + 1 < cap) {
      ++stats_.rerandomizations_deferred;
      ++defer_streak_;
      return false;
    }
    force = true;
    std::sort(pinned.begin(), pinned.end());
    pinned.erase(std::unique(pinned.begin(), pinned.end()), pinned.end());
  }

  const bool incremental = config_.rerandomize.rebuild ==
                           RerandomizePolicy::Rebuild::kIncremental;
  const bool ok = incremental ? rerandomize_incremental_step(pinned, force)
                              : rerandomize_full(pinned, force);
  if (!ok) return false;
  ++epoch_;
  // Re-stamp the taint epoch so secrets seeded from here on carry the new
  // placement's identity. The full path started a clean shadow state (the
  // re-keyed layout has no old secrets); the incremental path keeps its
  // taint — partially-moved layouts still leak partially-valid addresses.
  if (config_.taint) emu_->set_taint_epoch(epoch_);
  ++stats_.rerandomizations;
  if (force) ++stats_.rerandomizations_forced;
  last_work_.forced = force;
  last_work_.incremental = incremental;
  defer_streak_ = 0;
  rerand_pending_ = false;
  return true;
}

bool Process::rerandomize_full(const std::vector<uint32_t>& pinned,
                               bool force) {
  auto next = std::make_unique<rewriter::RandomizeResult>(
      rewriter::randomize(base_, options_for_epoch(epoch_ + 1)));
  if (force) {
    // Forced quiescence: every register-held randomized address keeps a
    // derand alias to its instruction's original address in the fresh
    // tables, so an indirect transfer through the stale register still
    // lands correctly after the swap.
    for (const uint32_t v : pinned) {
      const uint32_t orig = rr_->vcfr.tables.to_original(v);
      const uint32_t* existing = next->vcfr.tables.derand.lookup(v);
      if (existing != nullptr && *existing != orig) {
        // The fresh placement put a different instruction exactly at the
        // pinned address — aliasing would be ambiguous. Defer this firing
        // deterministically; the next epoch draws another layout.
        ++stats_.rerandomizations_deferred;
        return false;
      }
      if (existing == nullptr) next->vcfr.tables.derand.emplace(v, orig);
    }
  }
  emu::LiveRerandomizeStats st;
  emu_ = emu::rerandomize_live(*emu_, mem_, *rr_, *next, &st);
  emu_->set_enforce_tags(config_.enforce_tags);
  apply_taint_config();
  rr_ = std::move(next);
  // The tables object was replaced — rebuild the walker over it.
  walker_ = std::make_unique<core::TranslationWalker>(rr_->vcfr.tables,
                                                      *bound_mem_);
  // Full-rebuild work: every table entry rewritten plus the patched data/
  // stack/PC slots; regions = all code pages.
  const auto& tables = rr_->vcfr.tables;
  last_work_.regions = static_cast<uint32_t>(
      (rr_->vcfr.code.size() + 4095) / 4096);
  last_work_.entries = tables.derand.size() + tables.rand.size() +
                       st.reloc_slots_patched + st.stack_slots_translated +
                       (st.pc_translated ? 1 : 0);
  // Aliases of earlier epochs died with the old tables; the survivors are
  // exactly the pinned keys whose instruction lives elsewhere now.
  aliases_.clear();
  for (const uint32_t v : pinned) {
    const uint32_t* orig = tables.derand.lookup(v);
    if (orig == nullptr) continue;
    const uint32_t* ra = tables.rand.lookup(*orig);
    if (ra != nullptr && *ra != v) aliases_.push_back(v);
  }
  return true;
}

bool Process::rerandomize_incremental_step(
    const std::vector<uint32_t>& pinned, bool /*force*/) {
  if (cfg_ == nullptr) {
    cfg_ = std::make_unique<rewriter::Cfg>(rewriter::build_cfg(base_));
  }
  auto& tables = rr_->vcfr.tables;
  // Retire aliases from earlier forced swaps that no register holds any
  // more. (Reaching here with an alias still register-held implies it is
  // in `pinned` — a held alias fails the quiescence check.)
  std::vector<uint32_t> dropped;
  for (const uint32_t a : aliases_) {
    if (std::binary_search(pinned.begin(), pinned.end(), a)) continue;
    const uint32_t* orig = tables.derand.lookup(a);
    if (orig == nullptr) continue;
    const uint32_t* ra = tables.rand.lookup(*orig);
    if (ra != nullptr && *ra != a) {
      tables.derand.erase(a);
      dropped.push_back(a);
    }
  }
  emu::IncrementalRerandOptions opt;
  opt.seed = options_for_epoch(epoch_ + 1).seed;
  opt.region_percent = config_.rerandomize.region_percent;
  // A trap-scheduled firing is a fresh placement: the attacker proved
  // knowledge of the current layout, so every movable page moves.
  opt.all_regions = rerand_pending_;
  opt.pinned = pinned;
  emu::IncrementalRerandStats st;
  const uint64_t prev_gen = mem_.code_version();
  if (!emu::rerandomize_incremental(*cfg_, *rr_, mem_, *emu_, opt, &st)) {
    // Slot pool exhausted — defer; the next epoch draws different slots.
    ++stats_.rerandomizations_deferred;
    return false;
  }
  // Tables, image, memory, and PC were patched in place; walker and
  // emulator identities are preserved. Arm lazy decode revalidation for
  // everything the patch provably did not touch.
  for (const uint32_t a : dropped) st.decode_dirty.insert(a);
  if (st.instrs_moved != 0) {
    emu_->note_rerand(prev_gen, mem_.code_version(),
                      std::move(st.decode_dirty));
  }
  aliases_ = st.alias_keys;
  last_work_.regions = st.regions_selected;
  last_work_.entries = st.entries();
  return true;
}

void Process::finish(uint64_t core_cycles, fault::ExitStatus status) {
  finished_ = true;
  exit_status_ = status;
  stats_.finish_cycles = core_cycles;
}

void Process::restart() {
  ++restarts_;
  // Fresh placement lineage: the salt shifts every future epoch seed away
  // from anything the crashed lineage used (or would have re-randomized
  // into), so a layout leak from the old life says nothing about the new.
  reseed_ = kSeedMix * (0xbadc0ffeull + restarts_);
  ++epoch_;
  rr_ = std::make_unique<rewriter::RandomizeResult>(
      rewriter::randomize(base_, options_for_epoch(epoch_)));
  mem_ = binary::Memory();
  binary::load(rr_->vcfr, mem_);
  emu_ = std::make_unique<emu::Emulator>(rr_->vcfr, mem_);
  emu_->set_enforce_tags(config_.enforce_tags);
  apply_taint_config();
  if (bound_mem_ != nullptr) {
    walker_ = std::make_unique<core::TranslationWalker>(rr_->vcfr.tables,
                                                        *bound_mem_);
  }
  finished_ = false;
  exit_status_ = fault::ExitStatus{};
  life_base_ = stats_.instructions;
  // The restart *is* a fresh placement: a pending trap-scheduled re-rand
  // is satisfied, the deferral streak resets, and the old layout's
  // forced-quiescence aliases died with its tables.
  rerand_pending_ = false;
  defer_streak_ = 0;
  aliases_.clear();
  // An already-fired injection stays consumed: the replacement runs clean.
}

void Process::rearm(const std::vector<uint8_t>& payload,
                    uint32_t payload_base) {
  mem_ = binary::Memory();
  binary::load(rr_->vcfr, mem_);
  for (size_t i = 0; i < payload.size(); ++i) {
    mem_.write8(payload_base + static_cast<uint32_t>(i), payload[i]);
  }
  emu_ = std::make_unique<emu::Emulator>(rr_->vcfr, mem_);
  emu_->set_enforce_tags(config_.enforce_tags);
  apply_taint_config();
  finished_ = false;
  exit_status_ = fault::ExitStatus{};
  life_base_ = stats_.instructions;
}

uint64_t Process::injection_gap() const {
  if (injector_ == nullptr || injector_->attempted()) return UINT64_MAX;
  const uint64_t life = life_instructions();
  const uint64_t at = injector_->plan().at_instruction;
  return at > life ? at - life : 0;
}

bool Process::apply_injection() {
  if (injector_ == nullptr) return false;
  return injector_->apply(rr_->vcfr, mem_, *emu_, &base_);
}

void Process::save_state(binary::StateWriter& w) const {
  w.u32(pid_);
  w.u64(epoch_);
  w.u64(reseed_);
  w.u32(restarts_);
  // The live randomized image, bytes and tables included. An armed
  // injection may have rewritten either — the checkpoint must carry the
  // corruption, not the pristine re-derivation.
  std::ostringstream blob;
  binary::save(rr_->vcfr, blob);
  const std::string bytes = blob.str();
  w.u32(static_cast<uint32_t>(bytes.size()));
  w.bytes(bytes.data(), bytes.size());
  mem_.save_state(w);
  emu_->save_state(w);
  w.b(injector_ != nullptr);
  if (injector_) injector_->save_state(w);
  w.b(finished_);
  w.u8(static_cast<uint8_t>(exit_status_.code));
  w.u8(static_cast<uint8_t>(exit_status_.trap.kind));
  w.u32(exit_status_.trap.pc);
  w.u32(exit_status_.trap.detail);
  w.u64(exit_status_.trap.instruction);
  w.u64(life_base_);
  w.b(req_active_);
  w.u64(req_id_);
  w.u64(req_run_cycles_);
  w.u64(req_commit_cycles_);
  w.u64(stats_.slices);
  w.u64(stats_.instructions);
  w.u64(stats_.context_switches);
  w.u64(stats_.drc_entries_flushed);
  w.u64(stats_.bitmap_entries_flushed);
  w.u64(stats_.rerandomizations);
  w.u64(stats_.rerandomizations_deferred);
  w.u64(stats_.finish_cycles);
  // Continuous re-rand state (appended; the checkpoint format is
  // internal-only and versioned by config digest).
  w.u64(stats_.rerandomizations_forced);
  w.u32(defer_streak_);
  w.b(rerand_pending_);
  w.u32(trap_rerands_);
  w.u32(static_cast<uint32_t>(aliases_.size()));
  for (const uint32_t a : aliases_) w.u32(a);
  // Leak attribution for an in-flight request (appended; the emulator's
  // own taint shadow state rides inside emu_->save_state above).
  w.u64(req_leaks_);
  w.u32(req_leak_depth_);
}

void Process::load_state(binary::StateReader& r) {
  const uint32_t pid = r.u32();
  if (pid != pid_) {
    throw binary::FormatError(binary::FormatFault::kImplausible,
                              "checkpoint pid mismatch");
  }
  epoch_ = r.u64();
  reseed_ = r.u64();
  restarts_ = r.u32();
  // Re-derive the full randomization for this epoch (placement map,
  // analysis, naive image), then swap in the serialized live image so any
  // injected corruption of code bytes or tables survives.
  rr_ = std::make_unique<rewriter::RandomizeResult>(
      rewriter::randomize(base_, options_for_epoch(epoch_)));
  const uint32_t blob_size = r.count(1u << 28);
  std::string bytes(blob_size, '\0');
  r.bytes(bytes.data(), bytes.size());
  std::istringstream blob(bytes);
  rr_->vcfr = binary::load_file(blob);
  mem_.load_state(r);
  emu_ = std::make_unique<emu::Emulator>(rr_->vcfr, mem_);
  emu_->set_enforce_tags(config_.enforce_tags);
  emu_->load_state(r);
  const bool has_injector = r.b();
  if (has_injector != (injector_ != nullptr)) {
    throw binary::FormatError(binary::FormatFault::kImplausible,
                              "checkpoint injector presence mismatch");
  }
  if (injector_) injector_->load_state(r);
  finished_ = r.b();
  exit_status_.code = static_cast<fault::ExitCode>(r.u8());
  exit_status_.trap.kind = static_cast<fault::FaultKind>(r.u8());
  exit_status_.trap.pc = r.u32();
  exit_status_.trap.detail = r.u32();
  exit_status_.trap.instruction = r.u64();
  life_base_ = r.u64();
  req_active_ = r.b();
  req_id_ = r.u64();
  req_run_cycles_ = r.u64();
  req_commit_cycles_ = r.u64();
  stats_.slices = r.u64();
  stats_.instructions = r.u64();
  stats_.context_switches = r.u64();
  stats_.drc_entries_flushed = r.u64();
  stats_.bitmap_entries_flushed = r.u64();
  stats_.rerandomizations = r.u64();
  stats_.rerandomizations_deferred = r.u64();
  stats_.finish_cycles = r.u64();
  stats_.rerandomizations_forced = r.u64();
  defer_streak_ = r.u32();
  rerand_pending_ = r.b();
  trap_rerands_ = r.u32();
  aliases_.clear();
  const uint32_t aliases = r.count(1u << 20);
  for (uint32_t i = 0; i < aliases; ++i) aliases_.push_back(r.u32());
  req_leaks_ = r.u64();
  req_leak_depth_ = r.u32();
  // Incremental epochs diverge from what randomize(epoch seed) would
  // produce, so the re-derived placement is wrong whenever incremental
  // re-randomization ran. The serialized tables are the ground truth —
  // rebuild the placement from them (a no-op for full-rebuild lineages).
  rr_->placement.clear();
  for (const auto& [orig, ra] : rr_->vcfr.tables.rand) {
    rr_->placement[orig] = ra;
  }
  // The tables object changed — rebuild the walker over it.
  if (bound_mem_ != nullptr) {
    walker_ = std::make_unique<core::TranslationWalker>(rr_->vcfr.tables,
                                                        *bound_mem_);
  }
}

}  // namespace vcfr::os
