// Preemptive round-robin scheduler over per-core run queues.
//
// Processes are sharded statically at admission (round-robin across
// cores) and then rotate on their core's queue: the kernel's timer
// interrupt fires every `slice_instructions` retired instructions, the
// running process goes to the back of its queue, and the head is
// dispatched — triggering the DRC/bitmap flush in core::ContextManager
// whenever the address space actually changes. Static sharding keeps the
// parallel fleet deterministic (a process's requests always appear in its
// own core's request log) and mirrors cache-affinity pinning.
//
// The ready set is an indexed intrusive FIFO: one `next_` link per pid
// plus per-core head/tail, so admit/pick/requeue/unblock/any_runnable are
// all O(1) and scheduling stays off the hot path at 256+ tenants. The
// pick order is bit-identical to the former per-core std::deque
// implementation (push_back/pop_front FIFO).
#pragma once

#include <cstdint>
#include <vector>

#include "telemetry/stat_registry.hpp"

namespace vcfr::binary {
class StateWriter;
class StateReader;
}  // namespace vcfr::binary

namespace vcfr::os {

struct SchedulerConfig {
  /// Timer-interrupt period, in retired instructions (the simulator's
  /// natural clock; a cycle-driven timer would preempt mid-instruction).
  uint64_t slice_instructions = 50'000;
};

class Scheduler {
 public:
  Scheduler(const SchedulerConfig& config, uint32_t cores);

  /// Admits `pid`, assigning it a home core (round-robin shard). Returns
  /// the core.
  uint32_t admit(uint32_t pid);

  /// Pops the next runnable pid for `core`; -1 when its queue is empty.
  [[nodiscard]] int pick(uint32_t core);

  /// Returns a preempted (still-runnable) process to the back of its
  /// core's queue.
  void requeue(uint32_t core, uint32_t pid);

  /// Parks `pid` as blocked (waiting on an external event — e.g. a serve
  /// tenant with no pending request). A blocked process is simply not on
  /// any queue; this records the transition so idle tenants are
  /// observable and wakeups can be told apart from preemptions.
  void block(uint32_t pid);

  /// Unparks a blocked process onto the back of its home core's queue.
  /// Not a preemption: counted separately as a wakeup.
  void unblock(uint32_t core, uint32_t pid);

  [[nodiscard]] bool any_runnable() const { return runnable_ > 0; }
  [[nodiscard]] uint64_t preemptions() const { return preemptions_; }
  [[nodiscard]] uint64_t wakeups() const { return wakeups_; }
  /// Processes currently parked via block().
  [[nodiscard]] uint64_t blocked() const { return blocked_; }
  [[nodiscard]] const SchedulerConfig& config() const { return config_; }

  /// Binds scheduler counters into `scope` (preemptions, wakeups, live
  /// gauges of runnable and blocked processes).
  void register_stats(const telemetry::Scope& scope) const;

  /// Checkpoint support: queue contents are written as explicit per-core
  /// pid lists in FIFO order, so the wire format is independent of the
  /// intrusive-list representation.
  void save_state(binary::StateWriter& w) const;
  void load_state(binary::StateReader& r);

 private:
  /// Appends `pid` to the back of `core`'s ready FIFO.
  void push(uint32_t core, uint32_t pid);

  SchedulerConfig config_;
  /// Intrusive FIFO links: next_[pid] is the pid queued behind `pid`, or
  /// -1. A pid is on at most one queue (runnable xor blocked xor running).
  std::vector<int32_t> next_;
  std::vector<int32_t> head_;  // per core; -1 = empty
  std::vector<int32_t> tail_;
  uint64_t runnable_ = 0;
  uint32_t next_core_ = 0;
  uint64_t preemptions_ = 0;
  uint64_t wakeups_ = 0;
  uint64_t blocked_ = 0;
};

}  // namespace vcfr::os
