#include "os/worker_pool.hpp"

namespace vcfr::os {

WorkerPool::WorkerPool(uint32_t workers) {
  deques_.reserve(workers + 1);
  for (uint32_t p = 0; p <= workers; ++p) {
    deques_.push_back(std::make_unique<Deque>());
  }
  threads_.reserve(workers);
  for (uint32_t id = 0; id < workers; ++id) {
    threads_.emplace_back([this, id] { worker_loop(id); });
  }
}

WorkerPool::~WorkerPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (auto& t : threads_) t.join();
}

void WorkerPool::run(uint32_t tasks, const std::function<void(uint32_t)>& fn) {
  if (tasks == 0) return;
  if (tasks == 1 || threads_.empty()) {
    // Nothing to parallelize (or nobody to hand it to) — run inline.
    for (uint32_t i = 0; i < tasks; ++i) fn(i);
    return;
  }
  const auto participants = static_cast<uint32_t>(deques_.size());
  {
    std::lock_guard<std::mutex> lock(mutex_);
    fn_ = &fn;
    // Distribute round-robin across participant deques *after* fn_ is
    // set: a task is only reachable once its deque mutex is released, and
    // any participant that pops it re-reads fn_ under mutex_ afterwards,
    // so a stale scanner from a previous epoch that grabs a fresh task
    // still runs the fresh dispatch's function.
    for (uint32_t i = 0; i < tasks; ++i) {
      Deque& d = *deques_[i % participants];
      std::lock_guard<std::mutex> dlock(d.m);
      d.q.push_back(i);
    }
    pending_ = tasks;
    ++epoch_;
  }
  work_cv_.notify_all();
  drain(0);
  {
    std::unique_lock<std::mutex> lock(mutex_);
    done_cv_.wait(lock, [this] { return pending_ == 0; });
    fn_ = nullptr;
  }
  ++rounds_;
}

void WorkerPool::drain(uint32_t p) {
  const auto participants = static_cast<uint32_t>(deques_.size());
  while (true) {
    int64_t task = -1;
    {
      Deque& own = *deques_[p];
      std::lock_guard<std::mutex> lock(own.m);
      if (!own.q.empty()) {
        task = own.q.front();
        own.q.pop_front();
      }
    }
    if (task < 0) {
      for (uint32_t k = 1; k < participants && task < 0; ++k) {
        Deque& victim = *deques_[(p + k) % participants];
        std::lock_guard<std::mutex> lock(victim.m);
        if (!victim.q.empty()) {
          task = victim.q.back();
          victim.q.pop_back();
          ++victim.stolen_from;
        }
      }
    }
    if (task < 0) return;
    const std::function<void(uint32_t)>* fn = nullptr;
    {
      // Re-read under mutex_: holding a popped task pins pending_ > 0,
      // which pins fn_ to the dispatch this task belongs to.
      std::lock_guard<std::mutex> lock(mutex_);
      fn = fn_;
    }
    (*fn)(static_cast<uint32_t>(task));
    bool last = false;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      last = (--pending_ == 0);
    }
    if (last) done_cv_.notify_all();
  }
}

void WorkerPool::worker_loop(uint32_t id) {
  uint64_t seen_epoch = 0;
  while (true) {
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_cv_.wait(lock, [&] { return stop_ || epoch_ != seen_epoch; });
      if (stop_) return;
      seen_epoch = epoch_;
    }
    // A re-wake for an epoch another participant already drained just
    // finds every deque empty and goes back to sleep.
    drain(id + 1);
  }
}

uint64_t WorkerPool::steals() const {
  uint64_t total = 0;
  for (const auto& d : deques_) {
    std::lock_guard<std::mutex> lock(d->m);
    total += d->stolen_from;
  }
  return total;
}

}  // namespace vcfr::os
