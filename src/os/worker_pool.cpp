#include "os/worker_pool.hpp"

namespace vcfr::os {

WorkerPool::WorkerPool(uint32_t workers) {
  threads_.reserve(workers);
  for (uint32_t id = 0; id < workers; ++id) {
    threads_.emplace_back([this, id] { worker_loop(id); });
  }
}

WorkerPool::~WorkerPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (auto& t : threads_) t.join();
}

void WorkerPool::run(uint32_t tasks, const std::function<void(uint32_t)>& fn) {
  if (tasks == 0) return;
  if (tasks == 1 || threads_.empty()) {
    // Nothing to parallelize (or nobody to hand it to) — run inline.
    for (uint32_t i = 0; i < tasks; ++i) fn(i);
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    fn_ = &fn;
    tasks_ = tasks;
    pending_ = tasks - 1;  // workers 0..tasks-2 participate
    ++epoch_;
  }
  work_cv_.notify_all();
  fn(0);
  {
    std::unique_lock<std::mutex> lock(mutex_);
    done_cv_.wait(lock, [this] { return pending_ == 0; });
    fn_ = nullptr;
  }
  ++rounds_;
}

void WorkerPool::worker_loop(uint32_t id) {
  uint64_t seen_epoch = 0;
  while (true) {
    const std::function<void(uint32_t)>* fn = nullptr;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_cv_.wait(lock, [&] { return stop_ || epoch_ != seen_epoch; });
      if (stop_) return;
      seen_epoch = epoch_;
      // Static assignment: this worker owns task id+1 of the current
      // dispatch. pending_ counts only participating workers, so anyone
      // beyond the task count sits the round out without touching it.
      if (id + 1 >= tasks_) continue;
      fn = fn_;
    }
    (*fn)(id + 1);
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (--pending_ != 0) continue;
    }
    done_cv_.notify_one();
  }
}

}  // namespace vcfr::os
