#include "os/kernel.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <functional>
#include <istream>

#include "binary/state_io.hpp"
#include "emu/emulator.hpp"
#include "emu/taint.hpp"
#include "rewriter/randomizer.hpp"

namespace vcfr::os {

namespace {

/// The in-flight request id for a journal entry, or -1 when none.
[[nodiscard]] int64_t journal_req(const Process& p) {
  return p.request_active() ? static_cast<int64_t>(p.request_id()) : -1;
}

/// Journal detail string carrying a leak's full provenance chain:
/// which secret escaped (origin + the randomized address it guarded),
/// the placement generation it belonged to, and the exit door.
[[nodiscard]] std::string leak_detail(const emu::LeakRecord& leak) {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "origin=%s rpc=0x%x epoch=%llu sink=%s",
                emu::taint_origin_name(leak.origin), leak.origin_rpc,
                static_cast<unsigned long long>(leak.epoch),
                emu::leak_sink_name(leak.sink));
  return buf;
}

/// FNV-1a accumulator for the checkpoint's configuration digest.
struct Fnv {
  uint64_t h = 1469598103934665603ull;
  void mix(uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (i * 8)) & 0xffu;
      h *= 1099511628211ull;
    }
  }
  void mix(const std::string& s) {
    mix(s.size());
    for (const char c : s) {
      h ^= static_cast<uint8_t>(c);
      h *= 1099511628211ull;
    }
  }
};

constexpr char kCheckpointMagic[4] = {'V', 'C', 'K', 'P'};
constexpr uint32_t kCheckpointVersion = 1;

}  // namespace

Kernel::Kernel(const KernelConfig& config)
    : config_(config),
      shared_(config.shared_l2, config.cores == 0 ? 1 : config.cores),
      sched_(config.sched, config.cores == 0 ? 1 : config.cores) {
  const uint32_t cores = shared_.cores();
  for (uint32_t c = 0; c < cores; ++c) {
    cores_.push_back(
        std::make_unique<sim::CpuCore>(config_.cpu, &shared_.port(c)));
    ctx_.push_back(std::make_unique<core::ContextManager>(cores_[c]->drc()));
    ctx_[c]->attach_ret_bitmap(&cores_[c]->ret_bitmap_cache());
    installed_.emplace_back(-1, -1);
  }
}

uint32_t Kernel::spawn(const ProcessConfig& config) {
  const uint32_t pid = static_cast<uint32_t>(procs_.size());
  procs_.push_back(std::make_unique<Process>(pid, config));
  const uint32_t core = sched_.admit(pid);
  procs_[pid]->bind(core, cores_[core]->mem());
  return pid;
}

void Kernel::dispatch(uint32_t core, Process& proc) {
  auto& ctx = *ctx_[core];
  const uint64_t switches_before = ctx.stats().switches;
  const uint64_t drc_before = ctx.stats().entries_flushed;
  const uint64_t bmp_before = ctx.stats().bitmap_entries_flushed;
  ctx.switch_to(proc.context());
  if (ctx.stats().switches != switches_before) {
    // Real address-space change: the incoming process pays the switch
    // overhead and inherits the cold DRC/bitmap (its own entries were the
    // ones lost when it was last preempted — attribute the losses here,
    // where the cold-start cost is felt).
    proc.stats().context_switches += 1;
    proc.stats().drc_entries_flushed +=
        ctx.stats().entries_flushed - drc_before;
    proc.stats().bitmap_entries_flushed +=
        ctx.stats().bitmap_entries_flushed - bmp_before;
    if (!lanes_.empty() && lanes_[core] != nullptr) {
      lanes_[core]->span(telemetry::TraceEventType::kContextSwitch,
                         proc.pid(), cores_[core]->now(),
                         config_.context_switch_cycles,
                         ctx.stats().entries_flushed - drc_before);
    }
    cores_[core]->stall(config_.context_switch_cycles);
    if (profiling_) {
      profilers_[proc.pid()]->add_external(profile::Cause::kContextSwitch,
                                           config_.context_switch_cycles);
    }
    // Dispatch overhead spent bringing a request's tenant back onto the
    // core counts as part of *running* the request (not queueing — the
    // scheduler had already picked it).
    if (service_ != nullptr && proc.request_active()) {
      proc.add_request_run(config_.context_switch_cycles);
    }
  }
  const auto want = std::make_pair(static_cast<int64_t>(proc.pid()),
                                   static_cast<int64_t>(proc.epoch()));
  if (installed_[core] != want) {
    cores_[core]->install(binary::Layout::kVcfr, proc.walker(), proc.pid());
    installed_[core] = want;
  }
  // (Re-)anchor the tenant's profiler every dispatch: stall cycles since
  // the core's last retire (switch overhead above, the previous round's
  // commit penalty) were attributed explicitly and must not reappear in
  // the next retire's clock advance.
  if (profiling_) {
    cores_[core]->attach_profiler(profilers_[proc.pid()].get());
  }
}

namespace {

/// Trap kinds that read as an attack / corruption signal (§IV-A): the
/// re-rand-on-trap policy treats these — and only these — as evidence the
/// current placement leaked or was probed.
[[nodiscard]] bool attack_signal(fault::FaultKind kind) {
  return kind == fault::FaultKind::kBadOpcode ||
         kind == fault::FaultKind::kUnmappedFetch ||
         kind == fault::FaultKind::kTranslationMismatch;
}

}  // namespace

void Kernel::consider_restart(const Process& proc) {
  const RestartPolicy& policy = proc.config().restart;
  // Re-rand-on-trap: an attack-signal trap makes the victim eligible for a
  // fresh placement (the restart IS the re-randomization) even when its
  // restart policy alone would leave it down.
  const bool trap_rerand = proc.config().rerandomize.on_trap &&
                           proc.exit_status().crashed() &&
                           attack_signal(proc.exit_status().trap.kind);
  const bool eligible =
      policy.mode == RestartPolicy::Mode::kAlways ||
      (policy.mode == RestartPolicy::Mode::kOnFault &&
       proc.exit_status().crashed()) ||
      trap_rerand;
  if (!eligible || proc.restarts() >= policy.max_restarts) return;
  // Exponential backoff in scheduler rounds, capped well below overflow.
  const uint32_t shift = std::min<uint32_t>(proc.restarts(), 32);
  uint64_t delay = policy.backoff_rounds << shift;
  if (trap_rerand) {
    // Expedite: the first attack signal re-images immediately (a moving
    // target must move *now*), repeated signals back off exponentially on
    // their own schedule so a trap loop cannot thrash the core.
    const uint32_t t = std::min<uint32_t>(proc.trap_rerands(), 32);
    const uint64_t expedited =
        t == 0 ? 0 : (uint64_t{1} << (t - 1)) - 1;
    delay = std::min(delay, expedited);
  }
  pending_restarts_.push_back(PendingRestart{proc.pid(), rounds_ + delay});
}

void Kernel::service_restarts() {
  for (auto it = pending_restarts_.begin(); it != pending_restarts_.end();) {
    if (it->due_round > rounds_) {
      ++it;
      continue;
    }
    Process& p = *procs_[it->pid];
    p.restart();
    ++restarts_;
    sched_.requeue(static_cast<uint32_t>(p.core()), p.pid());
    const uint32_t core = static_cast<uint32_t>(p.core());
    if (!lanes_.empty() && lanes_[core] != nullptr) {
      lanes_[core]->instant(telemetry::TraceEventType::kRestart, p.pid(),
                            cores_[core]->cycles(), p.restarts());
    }
    if (journal_ != nullptr) {
      journal_->log({cores_[core]->cycles(), telemetry::JournalKind::kRestart,
                     p.pid(), journal_req(p), p.restarts(), {}});
    }
    it = pending_restarts_.erase(it);
  }
}

void Kernel::advance_core(uint32_t core, uint64_t cycle) {
  const uint64_t now = cores_[core]->now();
  if (cycle > now) cores_[core]->stall(cycle - now);
}

void Kernel::wake(uint32_t pid) {
  Process& p = *procs_[pid];
  sched_.unblock(static_cast<uint32_t>(p.core()), pid);
}

bool Kernel::restart_pending(uint32_t pid) const {
  for (const PendingRestart& pr : pending_restarts_) {
    if (pr.pid == pid) return true;
  }
  return false;
}

uint64_t Kernel::fleet_now() const {
  uint64_t now = 0;
  for (const auto& core : cores_) now = std::max(now, core->now());
  return now;
}

void Kernel::setup_telemetry() {
  if (telemetry_ == nullptr) return;
  journal_ = telemetry_->journal();
  const uint32_t cores = shared_.cores();
  const telemetry::Scope fleet = telemetry_->root().scope("fleet");

  fleet.counter("rounds", &rounds_);
  fleet.counter_fn("instructions", [this] {
    uint64_t total = 0;
    for (const auto& core : cores_) total += core->retired();
    return total;
  });
  fleet.counter_fn("cycles", [this] { return fleet_now(); });
  fleet.gauge("ipc", [this] {
    const uint64_t cycles = fleet_now();
    uint64_t instr = 0;
    for (const auto& core : cores_) instr += core->retired();
    return cycles == 0 ? 0.0
                       : static_cast<double>(instr) /
                             static_cast<double>(cycles);
  });
  fleet.gauge("drc_miss_rate", [this] {
    uint64_t lookups = 0, misses = 0;
    for (const auto& core : cores_) {
      lookups += core->drc().stats().lookups;
      misses += core->drc().stats().misses;
    }
    return lookups == 0 ? 0.0
                        : static_cast<double>(misses) /
                              static_cast<double>(lookups);
  });

  sched_.register_stats(fleet.scope("sched"));
  shared_.register_stats(fleet.scope("shared_l2"));

  // Host-execution counters (deterministic for a given config, but about
  // how the host ran the fleet, not what the fleet computed — hence their
  // own top-level scope instead of fleet.*).
  const telemetry::Scope kernel = telemetry_->root().scope("kernel");
  const telemetry::Scope pool = kernel.scope("pool");
  pool.counter_fn("rounds", [this] { return pool_rounds(); });
  pool.counter_fn("workers",
                  [this] { return static_cast<uint64_t>(pool_workers()); });
  // Steal totals depend on host thread scheduling: real, useful for
  // tuning, but NEVER part of a simulated (CI-diffed) section.
  pool.counter_fn("steals",
                  [this] { return pool_ == nullptr ? 0 : pool_->steals(); });
  kernel.counter("restarts", &restarts_);
  kernel.counter("watchdog_kills", &watchdog_kills_);
  kernel.scope("rerand").counter("forced", &rerand_forced_);
  const telemetry::Scope ckpt = kernel.scope("checkpoint");
  ckpt.counter("writes", &checkpoint_writes_);
  ckpt.counter("restores", &checkpoint_restores_);

  // Fault-injection observability (docs/OBSERVABILITY.md): per-site
  // applied-injection counts plus the injection→trap latency histogram.
  const telemetry::Scope fault_scope = telemetry_->root().scope("fault");
  bool any_armed = false;
  for (const fault::FaultSite site :
       {fault::FaultSite::kCodeByte, fault::FaultSite::kTranslationEntry,
        fault::FaultSite::kRetSlot, fault::FaultSite::kRetBitmap,
        fault::FaultSite::kPayload}) {
    bool armed = false;
    for (const auto& proc : procs_) {
      if (proc->config().inject_enabled && proc->config().inject.site == site) {
        armed = true;
        any_armed = true;
      }
    }
    if (!armed) continue;
    fault_scope.counter_fn(
        "injected." + std::string(fault::site_name(site)), [this, site] {
          uint64_t n = 0;
          for (const auto& proc : procs_) {
            const fault::FaultInjector* inj = proc->injector();
            if (inj != nullptr && inj->applied() &&
                inj->plan().site == site) {
              ++n;
            }
          }
          return n;
        });
  }
  if (any_armed) {
    detect_latency_hist_ = fault_scope.histogram("detect_latency");
  }

  // Live re-randomization observability (docs/OBSERVABILITY.md): per-firing
  // cost histograms, created only when some process arms a re-rand policy
  // (periodic or on-trap) so legacy registries stay byte-identical.
  bool any_rerand = false;
  for (const auto& proc : procs_) {
    const RerandomizePolicy& rp = proc->config().rerandomize;
    if (rp.every_slices != 0 || rp.on_trap) any_rerand = true;
  }
  if (any_rerand) {
    const telemetry::Scope rerand = telemetry_->root().scope("rerand");
    rerand_latency_hist_ = rerand.histogram("latency");
    rerand_regions_hist_ = rerand.histogram("regions_patched");
    rerand_entries_hist_ = rerand.histogram("entries_patched");
  }

  // Leak observability (docs/OBSERVABILITY.md): fleet.leak.* exists only
  // when some process arms taint tracking, so untainted registries stay
  // byte-identical (observer neutrality extends to the stats snapshot).
  bool any_taint = false;
  for (const auto& proc : procs_) {
    if (proc->config().taint) any_taint = true;
  }
  if (any_taint) {
    const telemetry::Scope leak = fleet.scope("leak");
    leak.counter("detected", &leaks_detected_);
    leak.counter("rerands", &leak_rerands_);
    leak_depth_hist_ = leak.histogram("depth");
  }

  lanes_.assign(cores, nullptr);
  telemetry::Tracer* tracer = telemetry_->tracer();
  for (uint32_t c = 0; c < cores; ++c) {
    const std::string id = std::to_string(c);
    const telemetry::Scope scope = fleet.scope("core" + id);
    cores_[c]->register_stats(scope);
    const telemetry::Scope ctx = scope.scope("ctx");
    ctx.counter("switches", &ctx_[c]->stats().switches);
    ctx.counter("entries_flushed", &ctx_[c]->stats().entries_flushed);
    ctx.counter("bitmap_entries_flushed",
                &ctx_[c]->stats().bitmap_entries_flushed);
    ctx.counter("rerandomizations", &ctx_[c]->stats().rerandomizations);
    lanes_[c] = telemetry_->lane(c);
    cores_[c]->attach_trace(lanes_[c]);
    if (tracer != nullptr) tracer->name_lane(c, "core " + id);
  }
  kernel_lane_ = telemetry_->lane(cores);
  if (tracer != nullptr) {
    tracer->name_lane(cores, "kernel");
    tracer->name_asid(cores, 0, "scheduler");
  }

  for (const auto& proc : procs_) {
    const Process& p = *proc;
    const telemetry::Scope scope =
        fleet.scope("proc" + std::to_string(p.pid()));
    scope.counter("instructions", &p.stats().instructions);
    scope.counter("slices", &p.stats().slices);
    scope.counter("context_switches", &p.stats().context_switches);
    scope.counter("drc_entries_flushed", &p.stats().drc_entries_flushed);
    scope.counter("bitmap_entries_flushed",
                  &p.stats().bitmap_entries_flushed);
    scope.counter("rerandomizations", &p.stats().rerandomizations);
    scope.counter("rerandomizations_deferred",
                  &p.stats().rerandomizations_deferred);
    scope.counter("rerandomizations_forced",
                  &p.stats().rerandomizations_forced);
    scope.counter_fn("epoch", [&p] { return p.epoch(); });
    if (tracer != nullptr) {
      tracer->name_asid(static_cast<uint32_t>(p.core()), p.pid(),
                        "pid " + std::to_string(p.pid()) + " " +
                            p.config().workload);
      if (service_ != nullptr) {
        // Serving runs also emit request flow endpoints on the kernel
        // lane (arrival/delivery/completion) under the tenant's tid.
        tracer->name_asid(cores, p.pid(),
                          "pid " + std::to_string(p.pid()) + " " +
                              p.config().workload);
      }
    }
    if (journal_ != nullptr) {
      journal_->log({0, telemetry::JournalKind::kSpawn, p.pid(), -1,
                     static_cast<uint64_t>(p.core()), p.config().workload});
    }
  }
  // Every producer's lane now exists (per-core plus kernel); creating one
  // from here on — e.g. lazily from a worker thread mid-execute — is a
  // bug, and the tracer asserts on it.
  if (tracer != nullptr) tracer->seal();
}

uint64_t Kernel::config_digest() const {
  // Everything that shapes simulated state belongs here; host-parallelism
  // knobs (pool_workers, and commit_shards — the sharded commit is
  // bit-identical to the legacy path) deliberately do not.
  Fnv d;
  d.mix(shared_.cores());
  d.mix(config_.sched.slice_instructions);
  d.mix(config_.context_switch_cycles);
  d.mix(config_.shared_l2.l2.size_bytes);
  d.mix(config_.shared_l2.l2.assoc);
  d.mix(config_.shared_l2.l2.line_bytes);
  d.mix(config_.shared_l2.l2.hit_latency);
  d.mix(config_.shared_l2.est_miss_latency);
  d.mix(config_.shared_l2.service_cycles);
  d.mix(config_.shared_l2.dram.banks);
  d.mix(config_.cpu.iq_size);
  d.mix(config_.cpu.store_buffer);
  d.mix(config_.cpu.issue_width);
  d.mix(config_.rerand_cost_per_entry);
  d.mix(procs_.size());
  for (const auto& proc : procs_) {
    const ProcessConfig& pc = proc->config();
    d.mix(pc.workload);
    d.mix(static_cast<uint64_t>(pc.scale));
    d.mix(pc.seed);
    d.mix(pc.max_instructions);
    d.mix(pc.rerandomize.every_slices);
    d.mix(static_cast<uint64_t>(pc.rerandomize.rebuild));
    d.mix(pc.rerandomize.region_percent);
    d.mix(pc.rerandomize.epoch_tags ? 1 : 0);
    d.mix(pc.rerandomize.on_trap ? 1 : 0);
    d.mix(static_cast<uint64_t>(pc.rerandomize.scope));
    d.mix(pc.rerandomize.max_defer);
    d.mix(pc.enforce_tags ? 1 : 0);
    d.mix(static_cast<uint64_t>(pc.restart.mode));
    d.mix(pc.restart.max_restarts);
    d.mix(pc.restart.backoff_rounds);
    d.mix(pc.watchdog_instructions);
    d.mix(pc.inject_enabled ? 1 : 0);
    d.mix(pc.inject.at_instruction);
    d.mix(static_cast<uint64_t>(pc.inject.site));
    d.mix(pc.inject.seed);
    d.mix(pc.taint ? 1 : 0);
    d.mix(pc.rerandomize.on_leak ? 1 : 0);
  }
  return d.h;
}

void Kernel::write_checkpoint() {
  std::ofstream out(checkpoint_path_, std::ios::binary);
  if (!out) {
    throw binary::FormatError(binary::FormatFault::kIo,
                              "cannot open checkpoint " + checkpoint_path_);
  }
  binary::StateWriter w(out);
  for (const char c : kCheckpointMagic) w.u8(static_cast<uint8_t>(c));
  w.u32(kCheckpointVersion);
  w.u64(config_digest());
  w.u64(rounds_);
  w.u64(restarts_);
  w.u64(watchdog_kills_);
  w.u64(injected_faults_);
  w.u64(rerand_forced_);
  w.u64(rerand_regions_total_);
  w.u64(rerand_entries_total_);
  w.u64(leaks_detected_);
  w.u64(leak_rerands_);
  w.u32(static_cast<uint32_t>(pending_restarts_.size()));
  for (const PendingRestart& pr : pending_restarts_) {
    w.u32(pr.pid);
    w.u64(pr.due_round);
  }
  sched_.save_state(w);
  shared_.save_state(w);
  const uint32_t cores = shared_.cores();
  w.u32(cores);
  for (uint32_t c = 0; c < cores; ++c) {
    cores_[c]->save_state(w);
    ctx_[c]->save_state(w);
    w.i64(installed_[c].first);
    w.i64(installed_[c].second);
  }
  w.u32(static_cast<uint32_t>(procs_.size()));
  for (const auto& proc : procs_) proc->save_state(w);
  out.flush();
  if (!out) {
    throw binary::FormatError(binary::FormatFault::kIo,
                              "checkpoint write failed " + checkpoint_path_);
  }
  ++checkpoint_writes_;
  if (journal_ != nullptr) {
    journal_->log({fleet_now(), telemetry::JournalKind::kCheckpoint, 0, -1,
                   rounds_, checkpoint_path_});
  }
}

void Kernel::restore(std::istream& in) {
  binary::StateReader r(in);
  for (const char c : kCheckpointMagic) {
    if (r.u8() != static_cast<uint8_t>(c)) {
      throw binary::FormatError(binary::FormatFault::kBadMagic,
                                "not a fleet checkpoint");
    }
  }
  const uint32_t version = r.u32();
  if (version != kCheckpointVersion) {
    throw binary::FormatError(
        binary::FormatFault::kImplausible,
        "unsupported checkpoint version " + std::to_string(version));
  }
  const uint64_t digest = r.u64();
  if (digest != config_digest()) {
    throw binary::FormatError(binary::FormatFault::kImplausible,
                              "checkpoint configuration digest mismatch");
  }
  rounds_ = r.u64();
  restarts_ = r.u64();
  watchdog_kills_ = r.u64();
  injected_faults_ = r.u64();
  rerand_forced_ = r.u64();
  rerand_regions_total_ = r.u64();
  rerand_entries_total_ = r.u64();
  leaks_detected_ = r.u64();
  leak_rerands_ = r.u64();
  pending_restarts_.clear();
  const uint32_t pending = r.count(1u << 20);
  for (uint32_t i = 0; i < pending; ++i) {
    PendingRestart pr;
    pr.pid = r.u32();
    pr.due_round = r.u64();
    pending_restarts_.push_back(pr);
  }
  sched_.load_state(r);
  shared_.load_state(r);
  const uint32_t cores = r.count(1u << 16);
  if (cores != shared_.cores()) {
    throw binary::FormatError(binary::FormatFault::kImplausible,
                              "checkpoint core count mismatch");
  }
  for (uint32_t c = 0; c < cores; ++c) {
    cores_[c]->load_state(r);
    ctx_[c]->load_state(r);
    installed_[c].first = r.i64();
    installed_[c].second = r.i64();
  }
  const uint32_t nprocs = r.count(1u << 20);
  if (nprocs != procs_.size()) {
    throw binary::FormatError(binary::FormatFault::kImplausible,
                              "checkpoint process count mismatch");
  }
  for (const auto& proc : procs_) proc->load_state(r);
  // Every process rebuilt its walker and tables over the restored image;
  // re-point the per-core references that used to alias the old objects.
  for (uint32_t c = 0; c < cores; ++c) {
    const int64_t pid = installed_[c].first;
    if (pid >= 0 && static_cast<size_t>(pid) < procs_.size()) {
      cores_[c]->rebind_walker(procs_[static_cast<size_t>(pid)]->walker());
    }
    // switch_to() only ever installs non-null tables, so switches > 0 is
    // exactly "a context is live on this core". A missed rebind would make
    // the next same-context dispatch flush (timing divergence) — keep the
    // warm no-flush fast path intact.
    if (ctx_[c]->stats().switches != 0) {
      const uint32_t cur = ctx_[c]->current().pid;
      if (cur < procs_.size()) {
        ctx_[c]->rebind_tables(&procs_[cur]->randomization().vcfr.tables);
      }
    }
  }
  ++checkpoint_restores_;
  restored_ = true;
}

FleetReport Kernel::run() {
  const uint32_t cores = shared_.cores();
  const uint64_t slice = sched_.config().slice_instructions;
  std::vector<int> running(cores, -1);
  setup_telemetry();
  if (restored_ && journal_ != nullptr) {
    journal_->log({fleet_now(), telemetry::JournalKind::kRestore, 0, -1,
                   rounds_, {}});
  }
  if (profiling_) {
    // One profiler per tenant, keyed off the original image (stable across
    // re-randomization epochs and restarts — symbols and code bytes are
    // original-space for the process's whole lineage).
    profilers_.clear();
    for (const auto& proc : procs_) {
      profilers_.push_back(
          std::make_unique<profile::Profiler>(proc->original()));
    }
  }
  std::vector<std::map<uint32_t, uint64_t>> blame;

  // Per-round state, hoisted: the round loop runs tens of thousands of
  // times at smoke scale and must not allocate on its steady path.
  auto run_slice = [&](uint32_t c) {
    Process& p = *procs_[running[c]];
    // The slice stops exactly on an armed injection's instruction boundary
    // (the corruption itself lands in serial bookkeeping — race-free).
    const uint64_t budget =
        std::min(std::min(slice, p.remaining()), p.injection_gap());
    const uint64_t start = cores_[c]->now();
    const uint64_t ran = cores_[c]->run(p.emulator(), budget);
    p.stats().instructions += ran;
    p.stats().slices += 1;
    // Slice cycles executed on behalf of an in-flight request are its
    // "run" component (Process-private field — worker-thread safe).
    if (service_ != nullptr && p.request_active()) {
      p.add_request_run(cores_[c]->now() - start);
    }
    // The lane is this core's own ring, so recording from the worker
    // thread is race-free.
    if (!lanes_.empty() && lanes_[c] != nullptr) {
      lanes_[c]->span(telemetry::TraceEventType::kSlice, p.pid(), start,
                      cores_[c]->now() - start, ran);
      if (service_ != nullptr && p.request_active()) {
        // Flow step: this slice belongs to the request's chain.
        lanes_[c]->instant(telemetry::TraceEventType::kReqFlowStep, p.pid(),
                           start,
                           telemetry::request_flow_id(p.pid(),
                                                      p.request_id()));
      }
    }
  };
  std::vector<uint32_t> active;
  active.reserve(cores);
  const std::function<void(uint32_t)> run_active = [&](uint32_t i) {
    run_slice(active[i]);
  };
  // The shared L2 splits commit phase B across set-index shards; with a
  // live pool the shards run on the workers (bit-identical either way —
  // the shard order is fixed and shards touch disjoint sets).
  const cache::ShardExecutor shard_exec =
      [this](uint32_t n, const std::function<void(uint32_t)>& fn) {
        pool_->run(n, fn);
      };
  // Applies an already-performed re-randomization (p.try_rerandomize()
  // returned true) to core `c`: cache invalidation, rewrite-cost stall,
  // counters/histograms, and the epoch journal/trace events. Shared by
  // the slice-boundary path below and the leak-triggered firing at a
  // serving tenant's halt boundary.
  const auto fire_rerand = [this](uint32_t c, Process& p) {
    const RerandomizePolicy& rp = p.config().rerandomize;
    const RerandWork& work = p.last_rerand_work();
    if (rp.epoch_tags) {
      // Epoch-tagged invalidation: warm DRC/bitmap state survives the
      // swap; stale lines revalidate lazily against the patched
      // tables on their next lookup, and the decode cache promotes
      // clean entries across the generation bump.
      ctx_[c]->rerandomize_current(p.randomization().vcfr.tables, true);
    } else {
      // Epoch bump: every cached translation of the old placement is
      // dead (§V-C). ContextManager records the flush; the pipeline
      // re-installs over the fresh walker at the next dispatch (the
      // installed (pid, epoch) pair no longer matches).
      const uint64_t drc_before = ctx_[c]->stats().entries_flushed;
      const uint64_t bmp_before =
          ctx_[c]->stats().bitmap_entries_flushed;
      ctx_[c]->rerandomize_current(p.randomization().vcfr.tables);
      p.stats().drc_entries_flushed +=
          ctx_[c]->stats().entries_flushed - drc_before;
      p.stats().bitmap_entries_flushed +=
          ctx_[c]->stats().bitmap_entries_flushed - bmp_before;
    }
    // The rewrite itself stalls the victim core in proportion to the
    // entries it patched — the lever that makes an incremental
    // rebuild cheaper than a full one. 0 (default) keeps the legacy
    // free-rerand timing bit-exactly.
    const uint64_t cost = config_.rerand_cost_per_entry * work.entries;
    if (cost != 0) {
      cores_[c]->stall(cost);
      if (profiling_) {
        profilers_[p.pid()]->add_external(profile::Cause::kContextSwitch,
                                          cost);
      }
      if (service_ != nullptr && p.request_active()) {
        p.add_request_run(cost);
      }
    }
    rerand_regions_total_ += work.regions;
    rerand_entries_total_ += work.entries;
    if (rerand_latency_hist_ != nullptr) {
      rerand_latency_hist_->record(cost);
      rerand_regions_hist_->record(work.regions);
      rerand_entries_hist_->record(work.entries);
    }
    if (work.forced) {
      ++rerand_forced_;
      if (journal_ != nullptr) {
        journal_->log({cores_[c]->cycles(),
                       telemetry::JournalKind::kRerandForced, p.pid(),
                       journal_req(p), rp.max_defer, {}});
      }
    }
    if (!lanes_.empty() && lanes_[c] != nullptr) {
      lanes_[c]->instant(telemetry::TraceEventType::kRerandEpoch,
                         p.pid(), cores_[c]->cycles(), work.regions);
    }
    if (journal_ != nullptr) {
      journal_->log({cores_[c]->cycles(),
                     telemetry::JournalKind::kRerandEpoch, p.pid(),
                     journal_req(p), work.regions, {}});
    }
  };

  while (sched_.any_runnable() || !pending_restarts_.empty() ||
         (service_ != nullptr && service_->active())) {
    ++rounds_;
    if (config_.max_rounds != 0 && rounds_ > config_.max_rounds) break;
    if (!pending_restarts_.empty()) service_restarts();
    // Serving hook: inject request traffic at the round boundary — the
    // only point where every core is parked, so delivery stays
    // bit-deterministic regardless of host thread scheduling.
    if (service_ != nullptr) service_->on_round(rounds_);

    // -- dispatch (serial: touches per-core context + clocks only) -------
    for (uint32_t c = 0; c < cores; ++c) {
      running[c] = sched_.pick(c);
      if (running[c] < 0) continue;
      Process& p = *procs_[running[c]];
      if (p.remaining() == 0 && !p.injection_due()) {
        // Budget exhausted exactly at a slice boundary.
        p.finish(cores_[c]->cycles(),
                 fault::ExitStatus{fault::ExitCode::kBudget, {}});
        if (journal_ != nullptr) {
          journal_->log({cores_[c]->cycles(),
                         telemetry::JournalKind::kBudget, p.pid(),
                         journal_req(p), p.stats().instructions, {}});
        }
        running[c] = -1;
        continue;
      }
      dispatch(c, p);
    }

    // -- execute (parallel: cores only touch private state + the frozen
    //    shared-L2 tags, logging requests per-port) ----------------------
    active.clear();
    for (uint32_t c = 0; c < cores; ++c) {
      if (running[c] >= 0) active.push_back(c);
    }
    if (active.size() > 1) {
      // First multi-core round: bring up the persistent workers. Tasks are
      // pushed to per-participant deques (kernel thread = participant 0)
      // and idle participants steal, so a stalled host thread no longer
      // serializes the round; result order stays deterministic because
      // every simulated core's state is private until commit.
      if (pool_ == nullptr) {
        pool_ = std::make_unique<WorkerPool>(
            config_.pool_workers != 0 ? config_.pool_workers : cores - 1);
      }
      pool_->run(static_cast<uint32_t>(active.size()), run_active);
      ++pool_rounds_;
    } else if (active.size() == 1) {
      run_slice(active[0]);
    }

    // -- commit (serial decision, sharded tag application) ---------------
    const std::vector<uint64_t> penalties = shared_.commit_round(
        profiling_ ? &blame : nullptr, pool_ != nullptr ? &shard_exec : nullptr);
    for (uint32_t c = 0; c < cores; ++c) cores_[c]->stall(penalties[c]);
    if (service_ != nullptr) {
      // A commit penalty stalls the core while its tenant's request sits
      // finished-but-uncommitted: the request's "commit stall" component.
      for (const uint32_t c : active) {
        Process& p = *procs_[running[c]];
        if (p.request_active()) p.add_request_commit(penalties[c]);
      }
    }
    if (profiling_) {
      // The penalty stalls the core; charge it to the tenant whose slice
      // logged the requests, broken down by the interfering address space.
      for (const uint32_t c : active) {
        for (const auto& [asid, cyc] : blame[c]) {
          profilers_[running[c]]->add_l2_contention(asid, cyc);
        }
      }
    }
    if (kernel_lane_ != nullptr) {
      kernel_lane_->instant(telemetry::TraceEventType::kRoundCommit, 0,
                            fleet_now(), rounds_);
    }
    if (telemetry_ != nullptr) telemetry_->sampler().poll(fleet_now());

    // -- bookkeeping -----------------------------------------------------
    for (const uint32_t c : active) {
      Process& p = *procs_[running[c]];
      // Armed corruption fires here: serial phase, process-private state,
      // and the slice budget already stopped the victim on the boundary.
      if (p.injection_due() && p.apply_injection()) {
        ++injected_faults_;
        if (!lanes_.empty() && lanes_[c] != nullptr) {
          lanes_[c]->instant(telemetry::TraceEventType::kFaultInject,
                             p.pid(), cores_[c]->cycles(),
                             p.injector()->record().address);
        }
      }
      // Taint sinks that fired during the slice surface here, in the
      // serial phase: attribute each leak to the in-flight request,
      // stamp the lane and journal with full provenance, and (under
      // --rerand-on-leak) treat the exfiltration as an attack signal
      // for the moving-target path — same scope semantics as on_trap.
      if (p.config().taint) {
        for (const emu::LeakRecord& leak : p.emulator().drain_leaks()) {
          ++leaks_detected_;
          if (leak_depth_hist_ != nullptr) {
            leak_depth_hist_->record(leak.depth);
          }
          if (p.request_active()) p.note_request_leak(leak.depth);
          if (!lanes_.empty() && lanes_[c] != nullptr) {
            lanes_[c]->instant(telemetry::TraceEventType::kLeak, p.pid(),
                               cores_[c]->cycles(), leak.depth);
          }
          if (journal_ != nullptr) {
            journal_->log({cores_[c]->cycles(),
                           telemetry::JournalKind::kLeak, p.pid(),
                           journal_req(p), leak.depth,
                           leak_detail(leak)});
          }
          const RerandomizePolicy& leak_rp = p.config().rerandomize;
          if (leak_rp.on_leak && !p.rerand_pending()) {
            ++leak_rerands_;
            p.schedule_rerand(true);
            if (leak_rp.scope == RerandomizePolicy::Scope::kFleet) {
              for (const auto& other : procs_) {
                if (other->pid() != p.pid() && !other->finished()) {
                  other->schedule_rerand(false);
                }
              }
            }
          }
        }
      }
      const auto& emu = p.emulator();
      fault::ExitStatus exit;
      if (emu.faulted()) {
        // Typed trap: contain — the process leaves, the fleet keeps going.
        exit.code = fault::ExitCode::kFaulted;
        exit.trap = emu.trap();
        if (journal_ != nullptr) {
          journal_->log({cores_[c]->cycles(), telemetry::JournalKind::kFault,
                         p.pid(), journal_req(p), exit.trap.pc,
                         std::string(fault::kind_name(exit.trap.kind))});
        }
        const fault::FaultInjector* inj = p.injector();
        if (detect_latency_hist_ != nullptr && inj != nullptr &&
            inj->applied() &&
            exit.trap.instruction >= inj->record().at_instruction) {
          detect_latency_hist_->record(exit.trap.instruction -
                                       inj->record().at_instruction);
        }
        // Moving-target trigger: an attack-signal trap schedules a fresh
        // placement. The victim's restart (consider_restart below,
        // expedited) IS its re-randomization; fleet scope additionally
        // marks every live co-tenant, whose pending re-rand fires at its
        // next slice boundary.
        const RerandomizePolicy& trap_rp = p.config().rerandomize;
        if (trap_rp.on_trap && attack_signal(exit.trap.kind)) {
          p.schedule_rerand(true);
          if (trap_rp.scope == RerandomizePolicy::Scope::kFleet) {
            for (const auto& other : procs_) {
              if (other->pid() != p.pid() && !other->finished()) {
                other->schedule_rerand(false);
              }
            }
          }
        }
      } else if (emu.halted()) {
        if (service_ != nullptr) {
          // Leak-triggered re-randomization fires at the victim's halt
          // boundary — the request just finished, so the fresh placement
          // lands before the tenant rearms for its next request ("re-key
          // within one round") and the swap cannot invalidate an
          // in-flight rearm payload. Gated on on_leak so the on_trap /
          // periodic paths keep their existing slice-boundary timing.
          if (p.config().rerandomize.on_leak && p.rerand_pending() &&
              p.try_rerandomize()) {
            fire_rerand(c, p);
          }
          // A serving tenant's halt is a request boundary, not an exit:
          // the hook records the completion and either delivers the next
          // queued request (rearm happened inside on_halt) or parks the
          // tenant until traffic arrives.
          const ServiceHook::HaltAction act =
              service_->on_halt(p.pid(), cores_[c]->cycles());
          if (act == ServiceHook::HaltAction::kRunnable) {
            sched_.requeue(c, p.pid());
            continue;
          }
          if (act == ServiceHook::HaltAction::kBlocked) {
            sched_.block(p.pid());
            continue;
          }
        }
        exit.code = fault::ExitCode::kHalted;
      } else if (p.config().watchdog_instructions != 0 &&
                 p.life_instructions() >= p.config().watchdog_instructions) {
        // Livelocked / runaway (e.g. a looping ROP chain): kill it.
        p.emulator().raise_external(fault::FaultKind::kWatchdog);
        exit.code = fault::ExitCode::kWatchdogKill;
        exit.trap = p.emulator().trap();
        ++watchdog_kills_;
        if (journal_ != nullptr) {
          journal_->log({cores_[c]->cycles(),
                         telemetry::JournalKind::kWatchdog, p.pid(),
                         journal_req(p), p.life_instructions(), {}});
        }
      } else if (p.remaining() == 0) {
        exit.code = fault::ExitCode::kBudget;
        if (journal_ != nullptr) {
          journal_->log({cores_[c]->cycles(), telemetry::JournalKind::kBudget,
                         p.pid(), journal_req(p), p.stats().instructions,
                         {}});
        }
      }
      if (exit.code != fault::ExitCode::kRunning) {
        p.finish(cores_[c]->cycles(), exit);
        consider_restart(p);
        continue;
      }
      const RerandomizePolicy& rp = p.config().rerandomize;
      const bool rerand_due =
          (rp.every_slices != 0 && p.stats().slices % rp.every_slices == 0) ||
          p.rerand_pending();
      if (rerand_due && p.try_rerandomize()) fire_rerand(c, p);
      sched_.requeue(c, p.pid());
    }

    // -- checkpoint (end of round: port logs empty, all state is member
    //    state, every core parked — the one consistent cut) ---------------
    if (checkpoint_round_ != 0 && rounds_ == checkpoint_round_) {
      write_checkpoint();
    }
  }

  // -- report -------------------------------------------------------------
  FleetReport report;
  report.rounds = rounds_;
  report.preemptions = sched_.preemptions();
  report.restarts = restarts_;
  report.watchdog_kills = watchdog_kills_;
  report.injected_faults = injected_faults_;
  report.rerand_forced = rerand_forced_;
  report.rerand_regions_patched = rerand_regions_total_;
  report.rerand_entries_patched = rerand_entries_total_;
  for (uint32_t c = 0; c < cores; ++c) {
    const auto& cs = ctx_[c]->stats();
    report.context_switches += cs.switches;
    report.drc_entries_flushed += cs.entries_flushed;
    report.bitmap_entries_flushed += cs.bitmap_entries_flushed;
    report.rerandomizations += cs.rerandomizations;

    CoreReport cr;
    cr.core = c;
    cr.cycles = cores_[c]->cycles();
    cr.instructions = cores_[c]->retired();
    cr.ipc = cr.cycles == 0 ? 0.0
                            : static_cast<double>(cr.instructions) /
                                  static_cast<double>(cr.cycles);
    cr.il1 = cores_[c]->mem().il1().stats();
    cr.dl1 = cores_[c]->mem().dl1().stats();
    cr.l2_pressure = cores_[c]->mem().l2_pressure();
    cr.drc = cores_[c]->drc().stats();
    report.cores.push_back(cr);
    report.fleet_cycles = std::max(report.fleet_cycles, cr.cycles);
    report.fleet_instructions += cr.instructions;
  }
  report.fleet_ipc = report.fleet_cycles == 0
                         ? 0.0
                         : static_cast<double>(report.fleet_instructions) /
                               static_cast<double>(report.fleet_cycles);
  report.shared_l2 = shared_.stats();
  report.l2_reads_by_pid = shared_.reads_by_asid();

  for (const auto& proc : procs_) {
    const Process& p = *proc;
    ProcessReport pr;
    pr.pid = p.pid();
    pr.workload = p.config().workload;
    pr.seed = p.config().seed;
    pr.core = static_cast<uint32_t>(p.core());
    pr.instructions = p.stats().instructions;
    pr.slices = p.stats().slices;
    pr.context_switches = p.stats().context_switches;
    pr.drc_flush_losses = p.stats().drc_entries_flushed;
    pr.bitmap_flush_losses = p.stats().bitmap_entries_flushed;
    pr.rerandomizations = p.stats().rerandomizations;
    pr.rerandomizations_deferred = p.stats().rerandomizations_deferred;
    pr.epoch = p.epoch();
    pr.halted = p.emulator().halted();
    pr.error = p.emulator().error();
    pr.exit = std::string(fault::exit_name(p.exit_status().code));
    pr.fault_kind = std::string(fault::kind_name(p.exit_status().trap.kind));
    pr.trap_pc = p.exit_status().trap.pc;
    pr.restarts = p.restarts();
    pr.injected = p.injector() != nullptr && p.injector()->applied();
    pr.finish_cycles = p.stats().finish_cycles;
    // A perturbed process (injected, watchdogged, or restarted onto a new
    // lineage) has no meaningful clean baseline to compare against.
    const bool perturbed = pr.injected || pr.restarts != 0 ||
                           p.exit_status().code ==
                               fault::ExitCode::kWatchdogKill;
    if (config_.measure_isolated && !perturbed) {
      measure_isolated(pr, p);
    }
    report.processes.push_back(pr);
  }
  // run() is single-shot: freeze the registry so exports stay valid even
  // if the caller destroys the kernel before writing files.
  if (telemetry_ != nullptr) telemetry_->registry().freeze();
  return report;
}

void Kernel::measure_isolated(ProcessReport& report,
                              const Process& proc) const {
  // Re-derive the process's epoch-0 image from its config — the live
  // process may have re-randomized past it.
  rewriter::RandomizeOptions options;
  options.seed = proc.config().seed;
  const rewriter::RandomizeResult rr =
      rewriter::randomize(proc.original(), options);

  emu::RunLimits limits;
  limits.max_instructions = proc.config().max_instructions;
  limits.enforce_tags = proc.config().enforce_tags;
  const emu::RunResult isolated = emu::run_image(rr.vcfr, limits);

  report.arch_match =
      proc.finished() && isolated.halted == proc.emulator().halted() &&
      isolated.trap.kind == proc.emulator().trap().kind &&
      isolated.trap.pc == proc.emulator().trap().pc &&
      isolated.output == proc.emulator().output() &&
      isolated.stats.instructions == proc.stats().instructions;
  if (proc.epoch() == 0) {
    // Memory images are only comparable when the process never swapped
    // placements (re-randomization rewrites code bytes and tables).
    report.arch_match = report.arch_match &&
                        isolated.mem_checksum == proc.memory().checksum();
  }

  // Timing baseline: the same image alone on one core, with a private L2
  // of the shared cache's geometry (so the slowdown isolates *contention
  // and switching*, not capacity differences).
  sim::CpuConfig solo = config_.cpu;
  solo.mem.l2.size_bytes = config_.shared_l2.l2.size_bytes;
  solo.mem.l2.assoc = config_.shared_l2.l2.assoc;
  solo.mem.l2.line_bytes = config_.shared_l2.l2.line_bytes;
  solo.mem.l2.hit_latency = config_.shared_l2.l2.hit_latency;
  const sim::SimResult res =
      sim::simulate(rr.vcfr, proc.config().max_instructions, solo);
  report.isolated_cycles = res.cycles;
  report.slowdown = res.cycles == 0
                        ? 0.0
                        : static_cast<double>(report.finish_cycles) /
                              static_cast<double>(res.cycles);
}

}  // namespace vcfr::os
