#include "os/fleet_stats.hpp"

#include <sstream>

#include "telemetry/json_writer.hpp"

namespace vcfr::os {

namespace {

using telemetry::JsonWriter;
using telemetry::json_double;

constexpr JsonWriter::Style kPretty = JsonWriter::Style::kPretty;

// %.6g keeps the rendering platform-stable and free of long fraction
// tails; the JSON is compared byte-for-byte in the determinism test.
// Doubles are pre-rendered through json_double and emitted raw so they
// appear as numbers, matching the established report shape.
void cache_json(JsonWriter& w, const cache::CacheStats& c) {
  w.begin_object();
  w.key("accesses").value(c.accesses);
  w.key("misses").value(c.misses);
  w.key("miss_rate").raw_value(json_double(c.miss_rate()));
  w.end_object();
}

void pressure_json(JsonWriter& w, const cache::L2PressureStats& p) {
  w.begin_object();
  w.key("il1").value(p.reads_from_il1);
  w.key("dl1").value(p.reads_from_dl1);
  w.key("il1_prefetch").value(p.reads_from_il1_prefetch);
  w.key("drc").value(p.reads_from_drc);
  w.end_object();
}

}  // namespace

std::string FleetReport::to_json() const {
  JsonWriter w;
  w.begin_object(kPretty);
  w.key("rounds").value(rounds);
  w.key("context_switches").value(context_switches);
  w.key("preemptions").value(preemptions);
  w.key("drc_entries_flushed").value(drc_entries_flushed);
  w.key("bitmap_entries_flushed").value(bitmap_entries_flushed);
  w.key("rerandomizations").value(rerandomizations);
  w.key("restarts").value(restarts);
  w.key("watchdog_kills").value(watchdog_kills);
  w.key("injected_faults").value(injected_faults);
  w.key("fleet_cycles").value(fleet_cycles);
  w.key("fleet_instructions").value(fleet_instructions);
  w.key("fleet_ipc").raw_value(json_double(fleet_ipc));

  const auto& sl2 = shared_l2;
  w.key("shared_l2").begin_object();
  w.key("accesses").value(sl2.l2.accesses);
  w.key("misses").value(sl2.l2.misses);
  w.key("miss_rate").raw_value(json_double(sl2.l2.miss_rate()));
  w.key("writebacks").value(sl2.l2.writebacks);
  w.key("queue_delay_cycles").value(sl2.queue_delay_cycles);
  w.key("pressure");
  pressure_json(w, sl2.pressure);
  w.end_object();

  w.key("l2_reads_by_pid").begin_object();
  for (const auto& [pid, reads] : l2_reads_by_pid) {
    w.key(std::to_string(pid)).value(reads);
  }
  w.end_object();

  w.key("cores").begin_array(kPretty);
  for (const auto& c : cores) {
    w.begin_object();
    w.key("core").value(c.core);
    w.key("cycles").value(c.cycles);
    w.key("instructions").value(c.instructions);
    w.key("ipc").raw_value(json_double(c.ipc));
    w.key("il1");
    cache_json(w, c.il1);
    w.key("dl1");
    cache_json(w, c.dl1);
    w.key("l2_pressure");
    pressure_json(w, c.l2_pressure);
    w.key("drc").begin_object();
    w.key("lookups").value(c.drc.lookups);
    w.key("misses").value(c.drc.misses);
    w.key("miss_rate").raw_value(json_double(c.drc.miss_rate()));
    w.end_object();
    w.end_object();
  }
  w.end_array();

  w.key("processes").begin_array(kPretty);
  for (const auto& p : processes) {
    w.begin_object();
    w.key("pid").value(p.pid);
    w.key("workload").value(p.workload);
    w.key("seed").value(p.seed);
    w.key("core").value(p.core);
    w.key("instructions").value(p.instructions);
    w.key("slices").value(p.slices);
    w.key("context_switches").value(p.context_switches);
    w.key("drc_flush_losses").value(p.drc_flush_losses);
    w.key("bitmap_flush_losses").value(p.bitmap_flush_losses);
    w.key("rerandomizations").value(p.rerandomizations);
    w.key("rerandomizations_deferred").value(p.rerandomizations_deferred);
    w.key("epoch").value(p.epoch);
    w.key("halted").value(p.halted);
    w.key("error").value(p.error);
    w.key("exit").value(p.exit);
    w.key("fault_kind").value(p.fault_kind);
    w.key("trap_pc").value(p.trap_pc);
    w.key("restarts").value(p.restarts);
    w.key("injected").value(p.injected);
    w.key("arch_match").value(p.arch_match);
    w.key("finish_cycles").value(p.finish_cycles);
    w.key("isolated_cycles").value(p.isolated_cycles);
    w.key("slowdown").raw_value(json_double(p.slowdown));
    w.end_object();
  }
  w.end_array();

  w.end_object();
  return w.str() + "\n";
}

std::string FleetReport::summary() const {
  std::ostringstream o;
  o << "fleet: " << processes.size() << " procs on " << cores.size()
    << " cores, " << fleet_instructions << " instr in " << fleet_cycles
    << " cycles (ipc " << json_double(fleet_ipc) << ")\n";
  o << "sched: " << rounds << " rounds, " << context_switches
    << " context switches, " << preemptions << " preemptions, "
    << drc_entries_flushed << " DRC + " << bitmap_entries_flushed
    << " bitmap entries flushed, " << rerandomizations
    << " re-randomizations\n";
  if (restarts != 0 || watchdog_kills != 0 || injected_faults != 0) {
    o << "faults: " << injected_faults << " injected, " << watchdog_kills
      << " watchdog kills, " << restarts << " restarts\n";
  }
  o << "shared L2: " << shared_l2.l2.accesses << " accesses, miss rate "
    << json_double(shared_l2.l2.miss_rate()) << ", queue delay "
    << shared_l2.queue_delay_cycles << " cycles\n";
  for (const auto& p : processes) {
    o << "  pid " << p.pid << " " << p.workload << " (core " << p.core
      << "): " << p.instructions << " instr, " << p.slices << " slices, "
      << p.context_switches << " switches, epoch " << p.epoch << ", "
      << p.exit << (p.error.empty() ? "" : " [" + p.error + "]")
      << (p.injected ? ", injected" : "")
      << (p.restarts != 0
              ? ", " + std::to_string(p.restarts) + " restart(s)"
              : "")
      << (p.arch_match ? ", arch ok" : ", ARCH MISMATCH");
    if (p.isolated_cycles != 0) {
      o << ", slowdown " << json_double(p.slowdown) << "x";
    }
    o << "\n";
  }
  return o.str();
}

}  // namespace vcfr::os
