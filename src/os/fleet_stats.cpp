#include "os/fleet_stats.hpp"

#include <cstdio>
#include <sstream>

namespace vcfr::os {

namespace {

// %.6g keeps the rendering platform-stable and free of long fraction
// tails; the JSON is compared byte-for-byte in the determinism test.
std::string fmt_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

std::string escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

void cache_json(std::ostringstream& o, const cache::CacheStats& c) {
  o << "{\"accesses\": " << c.accesses << ", \"misses\": " << c.misses
    << ", \"miss_rate\": " << fmt_double(c.miss_rate()) << "}";
}

}  // namespace

std::string FleetReport::to_json() const {
  std::ostringstream o;
  o << "{\n";
  o << "  \"rounds\": " << rounds << ",\n";
  o << "  \"context_switches\": " << context_switches << ",\n";
  o << "  \"preemptions\": " << preemptions << ",\n";
  o << "  \"drc_entries_flushed\": " << drc_entries_flushed << ",\n";
  o << "  \"bitmap_entries_flushed\": " << bitmap_entries_flushed << ",\n";
  o << "  \"rerandomizations\": " << rerandomizations << ",\n";
  o << "  \"fleet_cycles\": " << fleet_cycles << ",\n";
  o << "  \"fleet_instructions\": " << fleet_instructions << ",\n";
  o << "  \"fleet_ipc\": " << fmt_double(fleet_ipc) << ",\n";

  const auto& sl2 = shared_l2;
  o << "  \"shared_l2\": {\"accesses\": " << sl2.l2.accesses
    << ", \"misses\": " << sl2.l2.misses
    << ", \"miss_rate\": " << fmt_double(sl2.l2.miss_rate())
    << ", \"writebacks\": " << sl2.l2.writebacks
    << ", \"queue_delay_cycles\": " << sl2.queue_delay_cycles
    << ", \"pressure\": {\"il1\": " << sl2.pressure.reads_from_il1
    << ", \"dl1\": " << sl2.pressure.reads_from_dl1
    << ", \"il1_prefetch\": " << sl2.pressure.reads_from_il1_prefetch
    << ", \"drc\": " << sl2.pressure.reads_from_drc << "}},\n";

  o << "  \"l2_reads_by_pid\": {";
  bool first = true;
  for (const auto& [pid, reads] : l2_reads_by_pid) {
    if (!first) o << ", ";
    first = false;
    o << "\"" << pid << "\": " << reads;
  }
  o << "},\n";

  o << "  \"cores\": [\n";
  for (size_t i = 0; i < cores.size(); ++i) {
    const auto& c = cores[i];
    o << "    {\"core\": " << c.core << ", \"cycles\": " << c.cycles
      << ", \"instructions\": " << c.instructions
      << ", \"ipc\": " << fmt_double(c.ipc) << ", \"il1\": ";
    cache_json(o, c.il1);
    o << ", \"dl1\": ";
    cache_json(o, c.dl1);
    o << ", \"l2_pressure\": {\"il1\": " << c.l2_pressure.reads_from_il1
      << ", \"dl1\": " << c.l2_pressure.reads_from_dl1
      << ", \"il1_prefetch\": " << c.l2_pressure.reads_from_il1_prefetch
      << ", \"drc\": " << c.l2_pressure.reads_from_drc << "}"
      << ", \"drc\": {\"lookups\": " << c.drc.lookups
      << ", \"misses\": " << c.drc.misses
      << ", \"miss_rate\": " << fmt_double(c.drc.miss_rate()) << "}}"
      << (i + 1 < cores.size() ? "," : "") << "\n";
  }
  o << "  ],\n";

  o << "  \"processes\": [\n";
  for (size_t i = 0; i < processes.size(); ++i) {
    const auto& p = processes[i];
    o << "    {\"pid\": " << p.pid << ", \"workload\": \""
      << escape(p.workload) << "\", \"seed\": " << p.seed
      << ", \"core\": " << p.core
      << ", \"instructions\": " << p.instructions
      << ", \"slices\": " << p.slices
      << ", \"context_switches\": " << p.context_switches
      << ", \"drc_flush_losses\": " << p.drc_flush_losses
      << ", \"bitmap_flush_losses\": " << p.bitmap_flush_losses
      << ", \"rerandomizations\": " << p.rerandomizations
      << ", \"rerandomizations_deferred\": " << p.rerandomizations_deferred
      << ", \"epoch\": " << p.epoch
      << ", \"halted\": " << (p.halted ? "true" : "false")
      << ", \"error\": \"" << escape(p.error) << "\""
      << ", \"arch_match\": " << (p.arch_match ? "true" : "false")
      << ", \"finish_cycles\": " << p.finish_cycles
      << ", \"isolated_cycles\": " << p.isolated_cycles
      << ", \"slowdown\": " << fmt_double(p.slowdown) << "}"
      << (i + 1 < processes.size() ? "," : "") << "\n";
  }
  o << "  ]\n";
  o << "}\n";
  return o.str();
}

std::string FleetReport::summary() const {
  std::ostringstream o;
  o << "fleet: " << processes.size() << " procs on " << cores.size()
    << " cores, " << fleet_instructions << " instr in " << fleet_cycles
    << " cycles (ipc " << fmt_double(fleet_ipc) << ")\n";
  o << "sched: " << rounds << " rounds, " << context_switches
    << " context switches, " << preemptions << " preemptions, "
    << drc_entries_flushed << " DRC + " << bitmap_entries_flushed
    << " bitmap entries flushed, " << rerandomizations
    << " re-randomizations\n";
  o << "shared L2: " << shared_l2.l2.accesses << " accesses, miss rate "
    << fmt_double(shared_l2.l2.miss_rate()) << ", queue delay "
    << shared_l2.queue_delay_cycles << " cycles\n";
  for (const auto& p : processes) {
    o << "  pid " << p.pid << " " << p.workload << " (core " << p.core
      << "): " << p.instructions << " instr, " << p.slices << " slices, "
      << p.context_switches << " switches, epoch " << p.epoch
      << (p.halted ? ", halted" : "")
      << (p.error.empty() ? "" : ", FAULT: " + p.error)
      << (p.arch_match ? ", arch ok" : ", ARCH MISMATCH");
    if (p.isolated_cycles != 0) {
      o << ", slowdown " << fmt_double(p.slowdown) << "x";
    }
    o << "\n";
  }
  return o.str();
}

}  // namespace vcfr::os
