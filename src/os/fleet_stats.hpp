// Fleet-run reporting: per-process, per-core, and fleet-wide metrics with
// a deterministic JSON rendering (fixed key order, no wall-clock values,
// %.6g doubles) so two runs with the same seed produce byte-identical
// reports.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "cache/memhier.hpp"
#include "cache/shared_l2.hpp"
#include "core/drc.hpp"

namespace vcfr::os {

struct ProcessReport {
  uint32_t pid = 0;
  std::string workload;
  uint64_t seed = 0;
  uint32_t core = 0;
  uint64_t instructions = 0;
  uint64_t slices = 0;
  uint64_t context_switches = 0;
  uint64_t drc_flush_losses = 0;
  uint64_t bitmap_flush_losses = 0;
  uint64_t rerandomizations = 0;
  uint64_t rerandomizations_deferred = 0;
  uint64_t epoch = 0;
  bool halted = false;
  std::string error;
  /// Typed exit (fault::exit_name): halted | faulted | watchdog_kill |
  /// budget ("running" only if the round cap cut the run short).
  std::string exit = "running";
  /// Trap kind for crashed exits (fault::kind_name; "none" otherwise).
  std::string fault_kind = "none";
  uint32_t trap_pc = 0;
  /// Re-randomize-on-crash firings this process consumed.
  uint32_t restarts = 0;
  /// An armed fault injection took effect during the run.
  bool injected = false;
  /// Architectural result matches the process's isolated single-process
  /// run (only meaningful when the kernel measured baselines).
  bool arch_match = true;
  uint64_t finish_cycles = 0;
  uint64_t isolated_cycles = 0;
  /// finish_cycles / isolated_cycles (0 when baselines were not measured).
  double slowdown = 0.0;
};

struct CoreReport {
  uint32_t core = 0;
  uint64_t cycles = 0;
  uint64_t instructions = 0;
  double ipc = 0.0;
  cache::CacheStats il1;
  cache::CacheStats dl1;
  cache::L2PressureStats l2_pressure;
  core::DrcStats drc;
};

struct FleetReport {
  uint64_t rounds = 0;
  uint64_t context_switches = 0;
  uint64_t preemptions = 0;
  uint64_t drc_entries_flushed = 0;
  uint64_t bitmap_entries_flushed = 0;
  uint64_t rerandomizations = 0;
  /// Containment activity (src/fault/): processes restarted with a fresh
  /// seed, watchdog kills, and injected corruptions that took effect.
  uint64_t restarts = 0;
  uint64_t watchdog_kills = 0;
  uint64_t injected_faults = 0;
  /// Live re-randomization work (struct-only — deliberately absent from
  /// to_json so legacy report renderings stay byte-identical): forced
  /// firings, and total regions/entries the placement swaps patched.
  uint64_t rerand_forced = 0;
  uint64_t rerand_regions_patched = 0;
  uint64_t rerand_entries_patched = 0;
  uint64_t fleet_cycles = 0;  // slowest core's clock
  uint64_t fleet_instructions = 0;
  double fleet_ipc = 0.0;
  cache::SharedL2Stats shared_l2;
  /// Demand L2 reads per process (shared-cache pressure by tenant).
  std::map<uint32_t, uint64_t> l2_reads_by_pid;
  std::vector<CoreReport> cores;
  std::vector<ProcessReport> processes;

  [[nodiscard]] std::string to_json() const;
  /// Short human-readable digest for the CLI.
  [[nodiscard]] std::string summary() const;
};

}  // namespace vcfr::os
