// The two extra Figure 2 applications:
//
//  * "memcpy"  — a tight unrolled word-copy loop (the best case for native
//    execution and therefore one of the starkest emulation slowdowns);
//  * "python"  — a bytecode interpreter: computed-goto dispatch over a
//    stride-padded handler cluster operating on a software VM stack.
//    Interpreters are the worst case for an emulation-based ILR (the
//    dispatch indirect branch defeats the emulator's own dispatch
//    prediction), which is why the paper's Fig 2 shows "python" highest.
#include <string>

#include "workloads/common.hpp"
#include "workloads/suite.hpp"

namespace vcfr::workloads {

binary::Image make_memcpy(int scale) {
  const uint32_t words = scale == 0 ? 1024 : scale == 1 ? 16384 : 65536;
  const int rounds = scale == 0 ? 1 : 4;

  Builder b("memcpy");
  b.data_section();
  b.label("srcbuf").space(words * 4);
  b.label("dstbuf").space(words * 4);
  b.text_section();

  b.func("main");
  b.line("mov r10, 21");
  b.line("mov r11, 0");
  b.line("mov r1, @srcbuf");
  emit_fill_words(b, "r1", words, 0xffffff);

  b.line("mov r9, 0");
  b.label("round");
  b.line("mov r1, @srcbuf");
  b.line("mov r2, @dstbuf");
  b.line("mov r3, 0");
  b.label("copy_loop");
  for (int u = 0; u < 8; ++u) {
    const std::string off = std::to_string(u * 4);
    b.line("ld r4, [r1+" + off + "]");
    b.line("st r4, [r2+" + off + "]");
  }
  b.line("add r1, 32");
  b.line("add r2, 32");
  b.line("add r3, 8");
  b.line("cmp r3, " + std::to_string(words));
  b.line("jlt copy_loop");
  b.line("ld r4, [r2-4]");
  b.line("add r11, r4");
  b.line("add r9, 1");
  b.line("cmp r9, " + std::to_string(rounds));
  b.line("jlt round");
  emit_epilogue(b);

  return b.build();
}

binary::Image make_python(int scale) {
  const uint32_t code_len = scale == 0 ? 256 : 4096;
  const int rounds = scale == 0 ? 1 : scale == 1 ? 5 : 20;
  constexpr int kOps = 8;
  constexpr int kStride = 64;

  Builder b("python");
  b.data_section();
  b.label("bytecode").space(code_len);
  b.label("vmstack").space(1024);
  b.text_section();

  b.func("main");
  b.line("mov r10, 17");
  b.line("mov r11, 0");
  b.line("mov r1, @bytecode");
  emit_fill_bytes(b, "r1", code_len);

  b.line("mov r9, 0");
  b.label("round");
  b.line("mov r1, @bytecode");     // virtual PC
  b.line("mov r2, r1");
  b.line("add r2, " + std::to_string(code_len));
  b.line("mov r8, @vmstack");
  b.line("add r8, 512");           // VM stack pointer (middle of buffer)
  b.label("dispatch");
  b.line("ldb r3, [r1]");
  b.line("and r3, " + std::to_string(kOps - 1));
  b.line("mul r3, " + std::to_string(kStride));
  b.line("mov r4, @py_cluster");   // computed dispatch: unpatchable base
  b.line("add r4, r3");
  b.line("jmpr r4");
  b.label("py_next");
  // Clamp the VM stack pointer inside the buffer (underflow/overflow guard).
  b.line("mov r5, r8");
  b.line("sub r5, @vmstack");
  b.line("and r5, 1020");
  b.line("mov r8, @vmstack");
  b.line("add r8, r5");
  b.line("add r1, 1");
  b.line("cmp r1, r2");
  b.line("jb dispatch");
  b.line("add r9, 1");
  b.line("cmp r9, " + std::to_string(rounds));
  b.line("jlt round");
  emit_epilogue(b);

  // Handler cluster: kOps handlers padded to a kStride-byte grid inside a
  // single function extent, reached by address arithmetic (computed goto).
  b.func("py_cluster");
  const char* bodies[kOps] = {
      // PUSH_CONST
      "st r3, [r8] / add r8, 4",
      // ADD (pop two, push sum)
      "ld r5, [r8-4] / ld r6, [r8-8] / add r5, r6 / sub r8, 4 / st r5, [r8-4]",
      // XOR_TOP
      "ld r5, [r8-4] / xor r5, 2863311530 / st r5, [r8-4]",
      // DUP
      "ld r5, [r8-4] / st r5, [r8] / add r8, 4",
      // DROP
      "sub r8, 4",
      // ACC (fold top into checksum)
      "ld r5, [r8-4] / add r11, r5",
      // SHR_TOP
      "ld r5, [r8-4] / shr r5, 1 / st r5, [r8-4]",
      // NOP-ish counter
      "add r11, 1",
  };
  for (int i = 0; i < kOps; ++i) {
    // Emit the handler body, then a direct jump back to the dispatch loop,
    // then nop padding to the stride boundary.
    uint32_t bytes = 0;
    std::string body(bodies[i]);
    size_t pos = 0;
    while (pos != std::string::npos) {
      const size_t next = body.find(" / ", pos);
      const std::string instr =
          body.substr(pos, next == std::string::npos ? next : next - pos);
      b.line(instr);
      // Track encoded size: ld/st 4B, add/sub/xor/shr reg-imm 6B, reg-reg 2B.
      if (instr.rfind("ld", 0) == 0 || instr.rfind("st", 0) == 0) {
        bytes += 4;
      } else if (instr.find(", r") != std::string::npos) {
        bytes += 2;
      } else {
        bytes += 6;
      }
      pos = next == std::string::npos ? next : next + 3;
    }
    b.line("jmp py_next");
    bytes += 5;
    for (uint32_t p = bytes; p < kStride; ++p) b.line("nop");
  }

  return b.build();
}

}  // namespace vcfr::workloads
