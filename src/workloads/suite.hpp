// The synthetic SPEC CPU2006 stand-in suite (see DESIGN.md §2).
//
// SPEC CPU2006 is proprietary; each generator below produces a VX program
// that mimics the named benchmark's micro-architectural character — hot
// static code footprint, branch behaviour, data-access pattern, and
// direct/indirect transfer mix — which is what the paper's evaluation
// actually exercises (IL1/L2 capacity vs code spread, DRC target working
// set, gadget surface).
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "binary/image.hpp"

namespace vcfr::workloads {

/// `scale` controls footprints/iterations: 0 = tiny (unit tests),
/// 1 = bench default, 2 = long runs.
binary::Image make_compress(int scale);  // bzip2   — branchy byte coding
binary::Image make_compiler(int scale);  // gcc     — huge code, many funcs
binary::Image make_graph(int scale);     // mcf     — pointer chasing
binary::Image make_dp(int scale);        // hmmer   — regular DP kernel
binary::Image make_search(int scale);    // sjeng   — recursion + indirect
binary::Image make_quantum(int scale);   // libquantum — tiny hot loop
binary::Image make_video(int scale);     // h264ref — SAD block search
binary::Image make_stencil(int scale);   // lbm     — streaming stencil
binary::Image make_xml(int scale);       // xalan   — dispatch-table heavy
binary::Image make_nbody(int scale);     // namd    — mul-heavy kernel
binary::Image make_simplex(int scale);   // soplex  — sparse indexed loads
binary::Image make_memcpy(int scale);    // memcpy  — Fig 2 extra app
binary::Image make_python(int scale);    // python  — Fig 2 interpreter

/// The 11 SPEC-like applications evaluated in Figs 3/4/11-15 and Tables
/// I/II, in the paper's order.
[[nodiscard]] const std::vector<std::string>& spec_names();

/// The Figure 2 application set (bzip2, h264ref, hmmer, memcpy, python,
/// xalan).
[[nodiscard]] const std::vector<std::string>& fig2_names();

/// Builds a workload by name. Besides the SPEC-like applications above,
/// "server" resolves to the §V-A vulnerable request handler
/// (workloads/wl_server.hpp) used by the serving subsystem, and "leaky"
/// to its Heartbleed-style over-reading sibling (the planted address
/// leak the taint tracker detects). Throws std::invalid_argument for
/// unknown names.
[[nodiscard]] binary::Image make(std::string_view name, int scale = 1);

}  // namespace vcfr::workloads
