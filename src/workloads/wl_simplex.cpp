// "soplex" stand-in: sparse matrix-vector products in CSR form plus a
// pivot-selection sweep — soplex's character is indexed (gather) loads,
// mixed regular/irregular branching, and two alternating cloned kernels
// (price/update in the real solver) whose union exceeds the IL1 line count
// under naive ILR.
#include <string>

#include "workloads/common.hpp"
#include "workloads/suite.hpp"

namespace vcfr::workloads {

namespace {

/// Emits a fully unrolled CSR row kernel (nnz_per_row gathers). Variants
/// model soplex's separate pricing/update sweeps.
void emit_spmv(Builder& b, const std::string& name, uint32_t rows,
               uint32_t nnz_per_row, int variant, int bank_funcs) {
  b.func(name);
  b.line("mov r1, 0");  // row
  b.line("mov r2, @colidx");
  b.line("mov r3, @vals");
  const std::string row_loop = b.fresh("row_loop");
  b.label(row_loop);
  b.line("mov r4, 0");  // accumulator
  for (uint32_t k = 0; k < nnz_per_row; ++k) {
    const std::string off = std::to_string(k * 4);
    b.line("ld r6, [r2+" + off + "]");   // column index
    b.line("mul r6, 4");
    b.line("add r6, @xvec");
    b.line("ld r6, [r6]");               // x[col]
    b.line("ld r7, [r3+" + off + "]");   // value
    b.line("mul r6, r7");
    if (variant == 1 && k % 4 == 3) b.line("shr r6, 1");
    b.line("add r4, r6");
  }
  b.line("add r2, " + std::to_string(nnz_per_row * 4));
  b.line("add r3, " + std::to_string(nnz_per_row * 4));
  b.line("shr r4, 8");
  b.line("mov r6, r1");
  b.line("mul r6, 4");
  b.line("add r6, @yvec");
  b.line("st r4, [r6]");
  const std::string warm = b.fresh("row_warm");
  b.line("mov r6, r1");
  b.line("and r6, 15");
  b.line("cmp r6, 0");
  b.line("jne " + warm);
  emit_cold_bank_call(b, "cold", bank_funcs);
  b.label(warm);
  b.line("add r1, 1");
  b.line("cmp r1, " + std::to_string(rows));
  b.line("jlt " + row_loop);
  b.line("ret");
}

}  // namespace

binary::Image make_simplex(int scale) {
  const uint32_t rows = scale == 0 ? 32 : 256;
  const uint32_t nnz_per_row = 24;
  const int passes = scale == 0 ? 2 : scale == 1 ? 6 : 24;
  const uint32_t nnz = rows * nnz_per_row;

  Builder b("soplex");
  b.data_section();
  b.label("colidx").space(nnz * 4);
  b.label("vals").space(nnz * 4);
  b.label("xvec").space(rows * 4);
  b.label("yvec").space(rows * 4);
  const int bank_funcs = scale == 0 ? 16 : 128;
  const int bank_ops = scale == 0 ? 24 : 110;
  emit_cold_bank_table(b, "cold", bank_funcs);
  b.text_section();

  b.func("main");
  b.line("mov r10, 31");
  b.line("mov r11, 0");
  b.line("mov r1, @colidx");
  emit_fill_words(b, "r1", nnz, rows - 1);
  b.line("mov r1, @vals");
  emit_fill_words(b, "r1", nnz, 1023);
  b.line("mov r1, @xvec");
  emit_fill_words(b, "r1", rows, 255);

  b.line("mov r12, 0");  // cold-bank counter
  b.line("mov r9, 0");  // pass
  b.label("pass_loop");
  // Alternate the two sweep kernels across passes.
  b.line("mov r1, r9");
  b.line("and r1, 1");
  b.line("cmp r1, 0");
  b.line("jeq pass_even");
  b.line("call spmv_update");
  b.line("jmp pass_pivot");
  b.label("pass_even");
  b.line("call spmv_price");
  b.label("pass_pivot");
  b.line("call pivot");
  b.line("add r9, 1");
  b.line("cmp r9, " + std::to_string(passes));
  b.line("jlt pass_loop");
  emit_epilogue(b);

  emit_spmv(b, "spmv_price", rows, nnz_per_row, 0, bank_funcs);
  emit_spmv(b, "spmv_update", rows, nnz_per_row, 1, bank_funcs);
  emit_cold_bank_funcs(b, "cold", bank_funcs, bank_ops);

  // Pivot selection: argmax over y (4-way unrolled) with a data-dependent
  // update of x.
  b.func("pivot");
  b.line("mov r1, 0");  // row
  b.line("mov r2, 0");  // best value
  b.line("mov r3, 0");  // best row
  b.label("pv_loop");
  for (int u = 0; u < 4; ++u) {
    const std::string next = b.fresh("pv_next");
    b.line("mov r4, r1");
    b.line("add r4, " + std::to_string(u));
    b.line("mul r4, 4");
    b.line("add r4, @yvec");
    b.line("ld r4, [r4]");
    b.line("cmp r4, r2");
    b.line("jle " + next);
    b.line("mov r2, r4");
    b.line("mov r3, r1");
    b.line("add r3, " + std::to_string(u));
    b.label(next);
  }
  b.line("add r1, 4");
  b.line("cmp r1, " + std::to_string(rows));
  b.line("jlt pv_loop");
  // x[best] = (x[best] + best_val) & 255; checksum.
  b.line("mov r4, r3");
  b.line("mul r4, 4");
  b.line("add r4, @xvec");
  b.line("ld r5, [r4]");
  b.line("add r5, r2");
  b.line("and r5, 255");
  b.line("st r5, [r4]");
  b.line("add r11, r2");
  b.line("add r11, r3");
  b.line("ret");

  return b.build();
}

}  // namespace vcfr::workloads
