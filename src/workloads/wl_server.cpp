#include "workloads/wl_server.hpp"

#include "isa/assembler.hpp"

namespace vcfr::workloads {

// The vulnerable service (paper §V-A). `handle_request` copies
// request[1..n] into a 64-byte stack buffer where n = request[0] — no
// bounds check — then checksums what it copied. The statically linked
// runtime provides the gadget material (an argument-restore helper and a
// write() syscall stub).
const char* server_source() {
  return R"(
  .name vulnerable-server
  .entry main
  .data 0x10000000
  request:
    .space 128
  .text
  .func main
  main:
    call handle_request
    mov r0, 1
    out r0             ; "request served" status
    halt
  .func handle_request
  handle_request:
    sub sp, 64         ; char buf[64]
    mov r1, @request
    ldb r2, [r1]       ; n = request[0]  (attacker controlled!)
    mov r3, 0
  copy:
    cmp r3, r2
    jae copied
    add r1, 1
    ldb r4, [r1]
    mov r5, sp
    add r5, r3
    stb r4, [r5]       ; buf[i] = request[1+i]  -- no bounds check
    add r3, 1
    jmp copy
  copied:
    mov r3, 0
    mov r6, 0
  sum:
    cmp r3, r2
    jae done
    mov r5, sp
    add r5, r3
    ldb r4, [r5]
    add r6, r4         ; checksum the handled bytes
    add r3, 1
    jmp sum
  done:
    add sp, 64
    ret
  .func rt_restore     ; varargs/argument restore helper: pop r0; ret
  rt_restore:
    pop r0
    ret
  .func rt_write       ; write() syscall stub: sys 1; ret
  rt_write:
    sys 1
    ret
)";
}

binary::Image make_server(int scale) {
  (void)scale;  // same program at every scale; work comes from the request
  return isa::assemble(server_source());
}

std::vector<uint8_t> frame_request(const std::vector<uint8_t>& body) {
  size_t n = body.size();
  if (n > 255) n = 255;
  if (n > kServerRequestCapacity - 1) n = kServerRequestCapacity - 1;
  std::vector<uint8_t> framed;
  framed.reserve(n + 1);
  framed.push_back(static_cast<uint8_t>(n));
  framed.insert(framed.end(), body.begin(), body.begin() + n);
  return framed;
}

std::vector<uint8_t> build_exploit_request(uint32_t pop_gadget,
                                           uint32_t sys_gadget) {
  std::vector<uint8_t> body;
  const auto push32 = [&](uint32_t v) {
    body.push_back(static_cast<uint8_t>(v));
    body.push_back(static_cast<uint8_t>(v >> 8));
    body.push_back(static_cast<uint8_t>(v >> 16));
    body.push_back(static_cast<uint8_t>(v >> 24));
  };
  for (uint32_t i = 0; i < kServerBufferBytes; ++i) body.push_back('A');
  push32(pop_gadget);     // overwrites the saved return address
  push32(kServerMarker);  // popped into r0 by the first gadget
  push32(sys_gadget);     // sys 1 emits r0: the "shell"
  return frame_request(body);
}

// The leak-prone sibling (Heartbleed-style): identical framing and stack
// buffer, but instead of checksumming, the handler echoes body[0] bytes
// of the stack buffer back to the client with no bounds check on the
// *read*. buf lives at sp..sp+63 and the saved return address at sp+64,
// so a response length > 64 discloses the (randomized, bitmap-marked)
// return address byte by byte.
const char* leaky_server_source() {
  return R"(
  .name leaky-server
  .entry main
  .data 0x10000000
  request:
    .space 128
  .text
  .func main
  main:
    call handle_request
    mov r0, 1
    out r0             ; "request served" status
    halt
  .func handle_request
  handle_request:
    sub sp, 64         ; char buf[64]
    mov r1, @request
    ldb r2, [r1]       ; n = request[0]
    ldb r7, [r1+1]     ; resp_len = body[0]  (attacker controlled!)
    mov r3, 0
  copy:
    cmp r3, r2
    jae copied
    add r1, 1
    ldb r4, [r1]
    mov r5, sp
    add r5, r3
    stb r4, [r5]       ; buf[i] = request[1+i]
    add r3, 1
    jmp copy
  copied:
    mov r3, 0
  echo:
    cmp r3, r7
    jae done
    mov r5, sp
    add r5, r3
    ldb r4, [r5]       ; over-reads past buf when resp_len > 64
    out r4             ; echoes raw stack bytes -- no bounds check
    add r3, 1
    jmp echo
  done:
    add sp, 64
    ret
  .func rt_restore     ; varargs/argument restore helper: pop r0; ret
  rt_restore:
    pop r0
    ret
  .func rt_write       ; write() syscall stub: sys 1; ret
  rt_write:
    sys 1
    ret
)";
}

binary::Image make_leaky_server(int scale) {
  (void)scale;  // same program at every scale; work comes from the request
  return isa::assemble(leaky_server_source());
}

std::vector<uint8_t> build_leak_request(uint32_t resp_len) {
  if (resp_len > 255) resp_len = 255;
  // One-byte body: the requested echo length.
  return frame_request({static_cast<uint8_t>(resp_len)});
}

}  // namespace vcfr::workloads
