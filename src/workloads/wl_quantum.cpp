// "libquantum" stand-in: quantum-gate style bit manipulation swept over a
// large state vector — libquantum's character is a tiny, extremely hot
// loop (near-zero baseline IL1 miss rate, so naive ILR's miss-rate *ratio*
// explodes) with streaming data.
#include <string>

#include "workloads/common.hpp"
#include "workloads/suite.hpp"

namespace vcfr::workloads {

binary::Image make_quantum(int scale) {
  const uint32_t amps = scale == 0 ? 1024 : scale == 1 ? 16384 : 65536;
  const int gates = scale == 0 ? 2 : 3;

  Builder b("libquantum");
  b.data_section();
  b.label("state").space(amps * 4);
  b.text_section();

  b.func("main");
  b.line("mov r10, 5");
  b.line("mov r11, 0");
  b.line("mov r1, @state");
  emit_fill_words(b, "r1", amps, 0xffff);

  b.line("mov r9, 0");  // gate index
  b.label("gate_loop");
  b.line("mov r1, @state");
  b.line("mov r2, 0");
  // mask = 1 << (gate*3 + 1)
  b.line("mov r8, r9");
  b.line("mul r8, 3");
  b.line("add r8, 1");
  b.line("mov r7, 1");
  b.line("shl r7, r8");
  b.label("amp_loop");
  b.line("ld r3, [r1]");
  b.line("mov r4, r3");
  b.line("and r4, r7");
  b.line("cmp r4, 0");
  b.line("jeq amp_skip");
  b.line("xor r3, 2863311530");  // controlled phase-flip pattern
  b.line("st r3, [r1]");
  b.label("amp_skip");
  b.line("add r11, r3");
  b.line("add r1, 4");
  b.line("add r2, 1");
  b.line("cmp r2, " + std::to_string(amps));
  b.line("jlt amp_loop");
  b.line("add r9, 1");
  b.line("cmp r9, " + std::to_string(gates));
  b.line("jlt gate_loop");
  emit_epilogue(b);

  return b.build();
}

}  // namespace vcfr::workloads
