#include "workloads/builder.hpp"

#include "isa/assembler.hpp"

namespace vcfr::workloads {

Builder::Builder(std::string_view name) {
  src_ += ".name ";
  src_ += name;
  src_ += "\n.entry main\n";
}

Builder& Builder::line(std::string_view text) {
  src_ += "  ";
  src_ += text;
  src_ += '\n';
  return *this;
}

Builder& Builder::label(std::string_view name) {
  src_ += name;
  src_ += ":\n";
  return *this;
}

Builder& Builder::func(std::string_view name) {
  src_ += ".func ";
  src_ += name;
  src_ += '\n';
  return label(name);
}

Builder& Builder::data_section() {
  src_ += ".data\n";
  return *this;
}

Builder& Builder::text_section() {
  src_ += ".text\n";
  return *this;
}

Builder& Builder::word(uint32_t value) {
  src_ += ".word " + std::to_string(value) + "\n";
  return *this;
}

Builder& Builder::byte(uint32_t value) {
  src_ += ".byte " + std::to_string(value) + "\n";
  return *this;
}

Builder& Builder::space(uint32_t bytes) {
  src_ += ".space " + std::to_string(bytes) + "\n";
  return *this;
}

Builder& Builder::ptr(std::string_view label) {
  src_ += ".ptr ";
  src_ += label;
  src_ += '\n';
  return *this;
}

std::string Builder::fresh(std::string_view stem) {
  return std::string(stem) + "_" + std::to_string(fresh_counter_++);
}

Builder& Builder::entry(std::string_view label) {
  src_ += ".entry ";
  src_ += label;
  src_ += '\n';
  return *this;
}

binary::Image Builder::build() const {
  return isa::assemble(src_);
}

}  // namespace vcfr::workloads
