// "sjeng" stand-in: a recursive game-tree (negamax-style) search with
// move generators selected through a function-pointer table — sjeng's
// character is deep call/return recursion (RAS pressure), indirect calls,
// and data-dependent branching.
#include <string>

#include "workloads/common.hpp"
#include "workloads/suite.hpp"

namespace vcfr::workloads {

binary::Image make_search(int scale) {
  const int depth = scale == 0 ? 4 : scale == 1 ? 6 : 8;
  constexpr int kMovegens = 16;

  Builder b("sjeng");
  b.data_section();
  b.label("mg_jt");
  for (int i = 0; i < kMovegens; ++i) b.ptr("mg_" + std::to_string(i));
  b.text_section();

  b.func("main");
  b.line("mov r11, 0");
  b.line("mov r1, " + std::to_string(depth));
  b.line("mov r2, 123456789");
  b.line("call search");
  b.line("add r11, r3");
  b.line("mov r1, " + std::to_string(depth - 1));
  b.line("mov r2, 987654321");
  b.line("call search");
  b.line("add r11, r3");
  emit_epilogue(b);

  // search(r1=depth, r2=hash) -> r3=score. Saves state on the stack across
  // recursive calls; reads the saved depth back with an ld [sp+20].
  b.func("search");
  b.line("cmp r1, 0");
  b.line("jgt s_deeper");
  b.line("mov r3, r2");
  b.line("and r3, 255");
  b.line("call eval_leaf");
  b.line("ret");
  b.label("s_deeper");
  b.line("push r1");
  b.line("push r2");
  // Movegen via indirect call: mutates r2, sets r5 = move count (2..3).
  b.line("mov r4, r2");
  b.line("and r4, 15");
  b.line("mul r4, 4");
  b.line("add r4, @mg_jt");
  b.line("ld r4, [r4]");
  b.line("callr r4");
  b.line("mov r9, r2");  // base child hash
  b.line("mov r3, 0");   // best
  b.line("mov r7, 0");   // move index
  b.label("s_loop");
  b.line("cmp r7, r5");
  b.line("jae s_done");
  b.line("push r3");
  b.line("push r5");
  b.line("push r7");
  b.line("push r9");
  b.line("mov r2, r7");
  b.line("mul r2, 2654435761");
  b.line("add r2, 977");
  b.line("xor r2, r9");
  b.line("ld r1, [sp+20]");  // saved depth
  b.line("sub r1, 1");
  b.line("call search");
  b.line("pop r9");
  b.line("pop r7");
  b.line("pop r5");
  b.line("pop r4");  // previous best
  b.line("cmp r3, r4");
  b.line("jge s_keep");
  b.line("mov r3, r4");
  b.label("s_keep");
  b.line("add r7, 1");
  b.line("jmp s_loop");
  b.label("s_done");
  b.line("pop r2");
  b.line("pop r1");
  b.line("ret");

  // Leaf evaluation: two of sixteen feature scorers selected by position
  // bits through compare trees (the way sjeng's evaluate() compiles its
  // feature cascade). The scorer bank widens the hot footprint.
  b.func("eval_leaf");
  b.line("mov r6, r3");
  b.line("and r6, 7");
  for (int v = 0; v < 8; ++v) {
    const std::string next = b.fresh("ev_sel");
    b.line("cmp r6, " + std::to_string(v));
    b.line("jne " + next);
    b.line("call feat_" + std::to_string(v));
    b.line("jmp ev_second");
    b.label(next);
  }
  b.label("ev_second");
  b.line("mov r6, r2");
  b.line("shr r6, 4");
  b.line("and r6, 7");
  for (int v = 0; v < 8; ++v) {
    const std::string next = b.fresh("ev_sel2");
    b.line("cmp r6, " + std::to_string(v));
    b.line("jne " + next);
    b.line("call feat_" + std::to_string(v + 8));
    b.line("jmp ev_done");
    b.label(next);
  }
  b.label("ev_done");
  b.line("ret");

  // Feature scorers: straight-line fixed-point mixes of the position hash.
  for (int f = 0; f < 16; ++f) {
    b.func("feat_" + std::to_string(f));
    b.line("mov r6, r2");
    for (int k = 0; k < 12; ++k) {
      const int c = (f * 211 + k * 37) % 16381 + 1;
      switch (k % 4) {
        case 0: b.line("xor r6, " + std::to_string(c)); break;
        case 1: b.line("add r6, " + std::to_string(c)); break;
        case 2: b.line("shr r6, 1"); break;
        default: b.line("mul r6, 3"); break;
      }
    }
    b.line("and r6, 63");
    b.line("add r3, r6");
    b.line("ret");
  }

  // Move generators: distinct hash mutations; count = 2 or 3.
  for (int i = 0; i < kMovegens; ++i) {
    b.func("mg_" + std::to_string(i));
    b.line("mul r2, " + std::to_string(2 * i + 3));
    b.line("add r2, " + std::to_string(i * 7919 + 1));
    b.line("mov r5, r2");
    b.line("shr r5, 9");
    b.line("and r5, 1");
    b.line("add r5, 2");
    b.line("ret");
  }

  return b.build();
}

}  // namespace vcfr::workloads
