// "mcf" stand-in: pointer chasing over a large node array with
// data-dependent potential updates — mcf's defining behaviour is a big
// irregular data working set (D-cache/L2 misses) driven by a small code
// footprint.
#include <string>

#include "workloads/common.hpp"
#include "workloads/suite.hpp"

namespace vcfr::workloads {

binary::Image make_graph(int scale) {
  const uint32_t nodes = scale == 0 ? 1024 : scale == 1 ? 32768 : 131072;
  const uint32_t hops = scale == 0 ? 2000 : scale == 1 ? 16000 : 80000;
  constexpr uint32_t kNodeBytes = 16;  // next, weight, potential, pad

  Builder b("mcf");
  b.data_section();
  b.label("nodeheap").space(nodes * kNodeBytes);
  const int bank_funcs = scale == 0 ? 16 : 128;
  const int bank_ops = scale == 0 ? 24 : 110;
  emit_cold_bank_table(b, "cold", bank_funcs);
  b.text_section();

  b.func("main");
  b.line("mov r10, 99");
  b.line("mov r11, 0");

  // Initialize nodes: next = multiplicative-hash successor index, weight =
  // pseudo-random 16-bit, potential = 0.
  b.line("mov r1, @nodeheap");
  b.line("mov r2, 0");
  b.label("init");
  b.line("mov r3, r2");
  b.line("mul r3, 40503");
  b.line("add r3, 1299721");
  b.line("and r3, " + std::to_string(nodes - 1));
  b.line("st r3, [r1]");
  emit_lcg_step(b);
  b.line("mov r4, r10");
  b.line("shr r4, 12");
  b.line("and r4, 65535");
  b.line("st r4, [r1+4]");
  b.line("mov r4, 0");
  b.line("st r4, [r1+8]");
  b.line("add r1, " + std::to_string(kNodeBytes));
  b.line("add r2, 1");
  b.line("cmp r2, " + std::to_string(nodes));
  b.line("jlt init");

  // Chase: follow next pointers, relaxing potentials.
  b.line("mov r12, 0");  // cold-bank counter
  b.line("mov r5, 0");  // current node index
  b.line("mov r9, 0");  // hop counter
  b.label("chase");
  b.line("mov r6, r5");
  b.line("mul r6, " + std::to_string(kNodeBytes));
  b.line("add r6, @nodeheap");
  b.line("ld r7, [r6]");     // next index
  b.line("ld r8, [r6+4]");   // weight
  b.line("ld r4, [r6+8]");   // potential
  b.line("cmp r8, r4");
  b.line("jle no_relax");
  b.line("st r8, [r6+8]");   // potential = weight
  b.line("add r11, 1");
  b.label("no_relax");
  b.line("add r11, r8");
  // Occasionally perturb the weight so later passes keep relaxing.
  b.line("mov r4, r9");
  b.line("and r4, 63");
  b.line("cmp r4, 0");
  b.line("jne no_bump");
  b.line("add r8, 17");
  b.line("and r8, 65535");
  b.line("st r8, [r6+4]");
  b.label("no_bump");
  b.line("mov r5, r7");
  // Arc-pricing sweep every 64 hops (mcf's basis-pricing phase): an
  // unrolled scan that alternates with the chase loop and pushes the
  // combined hot footprint past the IL1's line count under naive ILR.
  b.line("mov r4, r9");
  b.line("and r4, 31");
  b.line("cmp r4, 31");
  b.line("jne no_price");
  b.line("push r5");
  b.line("call pricing");
  b.line("pop r5");
  b.label("no_price");
  b.line("mov r4, r9");
  b.line("and r4, 255");
  b.line("cmp r4, 255");
  b.line("jne no_cold");
  b.line("push r5");
  emit_cold_bank_call(b, "cold", bank_funcs);
  b.line("pop r5");
  b.label("no_cold");
  b.line("add r9, 1");
  b.line("cmp r9, " + std::to_string(hops));
  b.line("jlt chase");
  emit_epilogue(b);

  emit_cold_bank_funcs(b, "cold", bank_funcs, bank_ops);

  // pricing: unrolled reduced-cost checks over a strided arc sample.
  b.func("pricing");
  b.line("mov r1, @nodeheap");
  for (int a = 0; a < 96; ++a) {
    const std::string skip = b.fresh("pr_skip");
    const uint32_t off = (a * 1201u % nodes) * kNodeBytes;
    b.line("mov r2, r1");
    b.line("add r2, " + std::to_string(off));
    b.line("ld r3, [r2+4]");   // weight
    b.line("ld r4, [r2+8]");   // potential
    b.line("sub r3, r4");
    b.line("cmp r3, " + std::to_string(a * 13 + 7));
    b.line("jle " + skip);
    b.line("add r11, 1");
    b.label(skip);
  }
  b.line("ret");

  return b.build();
}

}  // namespace vcfr::workloads
