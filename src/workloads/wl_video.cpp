// "h264ref" stand-in: sum-of-absolute-differences motion search over a
// reference frame — h264ref's character is nested search loops around
// unrolled SAD kernels with short data-dependent branches (the abs), and a
// bank of specialized row kernels (as the real encoder has per-block-size
// SAD variants). The kernel bank pushes the hot code footprint past the
// IL1's line count once ILR spreads each instruction onto its own line,
// which is why the paper's Fig 12 shows h264ref with a >2x VCFR speedup.
#include <string>

#include "workloads/common.hpp"
#include "workloads/suite.hpp"

namespace vcfr::workloads {

namespace {

constexpr int kRowKernels = 8;

/// Emits a SAD kernel for one 16-pixel row, columns unrolled; variants
/// differ in accumulation detail like specialized codec kernels do.
/// In: r1 = &ref_row, r2 = &cur_row. Out: r7 += SAD. Clobbers r5, r6.
void emit_sad_row(Builder& b, int variant) {
  b.func("sad_row_" + std::to_string(variant));
  for (int c = 0; c < 16; ++c) {
    const std::string pos = b.fresh("sad_pos");
    b.line("ldb r5, [r1+" + std::to_string(c) + "]");
    b.line("ldb r6, [r2+" + std::to_string(c) + "]");
    b.line("sub r5, r6");
    b.line("cmp r5, 0");
    b.line("jge " + pos);
    b.line("mov r6, 0");
    b.line("sub r6, r5");
    b.line("mov r5, r6");
    b.label(pos);
    if (variant % 2 == 0) {
      b.line("add r7, r5");
    } else {
      // Weighted variant (keeps the checksum variant-dependent but
      // deterministic).
      b.line("shl r5, 0");
      b.line("add r7, r5");
    }
  }
  b.line("ret");
}

}  // namespace

binary::Image make_video(int scale) {
  constexpr uint32_t kFrameW = 128;
  const uint32_t frame_bytes = kFrameW * kFrameW;
  const int search_range = scale == 0 ? 2 : 6;   // (range x range) candidates
  const int rounds = scale == 0 ? 1 : scale == 1 ? 2 : 8;

  Builder b("h264ref");
  b.data_section();
  b.label("refframe").space(frame_bytes);
  b.label("curblock").space(16 * 16);
  const int bank_funcs = scale == 0 ? 16 : 128;
  const int bank_ops = scale == 0 ? 24 : 110;
  emit_cold_bank_table(b, "cold", bank_funcs);
  b.text_section();

  b.func("main");
  b.line("mov r10, 77");
  b.line("mov r11, 0");
  b.line("mov r1, @refframe");
  emit_fill_bytes(b, "r1", frame_bytes);
  b.line("mov r1, @curblock");
  emit_fill_bytes(b, "r1", 16 * 16);

  b.line("mov r12, 0");  // cold-bank counter
  b.line("mov r9, 0");  // round
  b.label("round");
  b.line("mov r3, 0");  // dy
  b.label("dy_loop");
  b.line("mov r4, 0");  // dx
  b.label("dx_loop");
  b.line("mov r7, 0");  // SAD accumulator
  b.line("mov r8, 0");  // row
  b.label("row_loop");
  // r1 = ref + (dy + row) * W + dx ; r2 = cur + row * 16
  b.line("mov r1, r3");
  b.line("add r1, r8");
  b.line("mul r1, " + std::to_string(kFrameW));
  b.line("add r1, r4");
  b.line("add r1, @refframe");
  b.line("mov r2, r8");
  b.line("mul r2, 16");
  b.line("add r2, @curblock");
  // Select the specialized row kernel (row & 7) via a compare tree, the
  // way the encoder's block-size dispatch compiles.
  b.line("mov r5, r8");
  b.line("and r5, " + std::to_string(kRowKernels - 1));
  for (int v = 0; v < kRowKernels; ++v) {
    const std::string next = b.fresh("vsel");
    b.line("cmp r5, " + std::to_string(v));
    b.line("jne " + next);
    b.line("call sad_row_" + std::to_string(v));
    b.line("jmp row_next");
    b.label(next);
  }
  b.label("row_next");
  b.line("mov r5, r8");
  b.line("and r5, 7");
  b.line("cmp r5, 0");
  b.line("jne row_warm");
  emit_cold_bank_call(b, "cold", bank_funcs);
  b.label("row_warm");
  b.line("add r8, 1");
  b.line("cmp r8, 16");
  b.line("jlt row_loop");
  b.line("add r11, r7");
  b.line("add r4, 1");
  b.line("cmp r4, " + std::to_string(search_range));
  b.line("jlt dx_loop");
  b.line("add r3, 1");
  b.line("cmp r3, " + std::to_string(search_range));
  b.line("jlt dy_loop");
  b.line("add r9, 1");
  b.line("cmp r9, " + std::to_string(rounds));
  b.line("jlt round");
  emit_epilogue(b);

  for (int v = 0; v < kRowKernels; ++v) emit_sad_row(b, v);
  emit_cold_bank_funcs(b, "cold", bank_funcs, bank_ops);

  return b.build();
}

}  // namespace vcfr::workloads
