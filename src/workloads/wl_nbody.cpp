// "namd" stand-in: fixed-point pairwise force evaluation — namd's
// character is a multiply/divide-heavy arithmetic kernel (unrolled
// non-bonded inner loop) plus a separate unrolled bonded-forces kernel.
// The two alternating kernels give namd a hot footprint well beyond the
// IL1's line count under naive ILR (the paper's Fig 12 shows namd with a
// >2x VCFR speedup).
#include <string>

#include "workloads/common.hpp"
#include "workloads/suite.hpp"

namespace vcfr::workloads {

binary::Image make_nbody(int scale) {
  const uint32_t bodies = scale == 0 ? 64 : 512;
  const uint32_t neighbors = scale == 0 ? 8 : scale == 1 ? 20 : 64;

  Builder b("namd");
  b.data_section();
  b.label("px").space(bodies * 4);
  b.label("py").space(bodies * 4);
  b.label("pz").space(bodies * 4);
  const int bank_funcs = scale == 0 ? 16 : 128;
  const int bank_ops = scale == 0 ? 24 : 110;
  emit_cold_bank_table(b, "cold", bank_funcs);
  b.text_section();

  b.func("main");
  b.line("mov r10, 11");
  b.line("mov r11, 0");
  b.line("mov r1, @px");
  emit_fill_words(b, "r1", bodies, 4095);
  b.line("mov r1, @py");
  emit_fill_words(b, "r1", bodies, 4095);
  b.line("mov r1, @pz");
  emit_fill_words(b, "r1", bodies, 4095);

  b.line("mov r12, 0");  // cold-bank counter
  b.line("mov r1, 0");  // i
  b.label("i_loop");
  // Load body i coordinates into r2/r3/r4.
  b.line("mov r5, r1");
  b.line("mul r5, 4");
  b.line("mov r6, r5");
  b.line("add r6, @px");
  b.line("ld r2, [r6]");
  b.line("mov r6, r5");
  b.line("add r6, @py");
  b.line("ld r3, [r6]");
  b.line("mov r6, r5");
  b.line("add r6, @pz");
  b.line("ld r4, [r6]");
  b.line("call nonbonded");
  b.line("call bonded");
  b.line("mov r5, r1");
  b.line("and r5, 1");
  b.line("cmp r5, 0");
  b.line("jne i_warm");
  emit_cold_bank_call(b, "cold", bank_funcs);
  b.label("i_warm");
  b.line("add r1, 1");
  b.line("cmp r1, " + std::to_string(bodies));
  b.line("jlt i_loop");
  emit_epilogue(b);

  emit_cold_bank_funcs(b, "cold", bank_funcs, bank_ops);

  // Non-bonded kernel: neighbor loop unrolled by 4, one axis at a time.
  // In: r1 = i, r2/r3/r4 = coordinates. Clobbers r5..r9.
  b.func("nonbonded");
  b.line("mov r7, 0");  // k
  b.label("k_loop");
  for (int u = 0; u < 4; ++u) {
    // j = (i * 31 + (k + u) * 7 + 1) & (bodies-1)
    b.line("mov r5, r1");
    b.line("mul r5, 31");
    b.line("mov r6, r7");
    b.line("add r6, " + std::to_string(u));
    b.line("mul r6, 7");
    b.line("add r5, r6");
    b.line("add r5, 1");
    b.line("and r5, " + std::to_string(bodies - 1));
    b.line("mul r5, 4");
    // squared distance in r8
    b.line("mov r6, r5");
    b.line("add r6, @px");
    b.line("ld r8, [r6]");
    b.line("mov r6, r2");
    b.line("sub r6, r8");
    b.line("mul r6, r6");
    b.line("mov r8, r6");
    b.line("mov r6, r5");
    b.line("add r6, @py");
    b.line("ld r9, [r6]");
    b.line("mov r6, r3");
    b.line("sub r6, r9");
    b.line("mul r6, r6");
    b.line("add r8, r6");
    b.line("mov r6, r5");
    b.line("add r6, @pz");
    b.line("ld r9, [r6]");
    b.line("mov r6, r4");
    b.line("sub r6, r9");
    b.line("mul r6, r6");
    b.line("add r8, r6");
    b.line("and r8, 65535");
    b.line("add r8, 1");
    b.line("mov r6, 16777216");
    b.line("div r6, r8");
    b.line("add r11, r6");
  }
  b.line("add r7, 4");
  b.line("cmp r7, " + std::to_string(neighbors));
  b.line("jlt k_loop");
  b.line("ret");

  // Bonded kernel: unrolled fixed-topology terms (springs to a handful of
  // statically known partners). In: r1 = i, r2/r3/r4 = coords.
  b.func("bonded");
  b.line("mov r9, 0");  // local accumulator
  for (int t = 0; t < 48; ++t) {
    // partner = (i + stride_t) & (bodies-1), axis rotates with t.
    const char* axis = t % 3 == 0 ? "@px" : t % 3 == 1 ? "@py" : "@pz";
    const char* coord = t % 3 == 0 ? "r2" : t % 3 == 1 ? "r3" : "r4";
    b.line("mov r5, r1");
    b.line("add r5, " + std::to_string(t * 5 + 1));
    b.line("and r5, " + std::to_string(bodies - 1));
    b.line("mul r5, 4");
    b.line("add r5, " + std::string(axis));
    b.line("ld r6, [r5]");
    b.line("sub r6, " + std::string(coord));
    b.line("mul r6, r6");
    b.line("shr r6, " + std::to_string(t % 7 + 2));
    b.line("add r9, r6");
  }
  b.line("add r11, r9");
  b.line("ret");

  return b.build();
}

}  // namespace vcfr::workloads
