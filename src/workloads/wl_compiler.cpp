// "gcc" stand-in: a token-dispatch engine with a large population of small
// handler functions plus a bank of cloned "optimizer pass" routines. The
// defining characteristics reproduced from gcc: a very large static code
// footprint spread over many functions, dense direct branching, frequent
// indirect calls through a jump table, recursion, and a PIC-style helper
// that reads its own return address.
#include <string>

#include "workloads/common.hpp"
#include "workloads/suite.hpp"

namespace vcfr::workloads {

namespace {

/// Emits one token-handler function. Bodies vary by kind so the handlers
/// look like distinct compiled basic blocks, not copies.
void emit_handler(Builder& b, int i) {
  const std::string name = "tok_" + std::to_string(i);
  b.func(name);
  const int kind = i % 4;
  // A few "compiled code" filler ops with per-handler constants.
  for (int k = 0; k < 4 + (i % 5); ++k) {
    const int c = (i * 97 + k * 31) % 4093 + 1;
    switch ((i + k) % 3) {
      case 0: b.line("add r11, " + std::to_string(c)); break;
      case 1: b.line("xor r11, " + std::to_string(c)); break;
      default: b.line("add r6, " + std::to_string(c)); break;
    }
  }
  switch (kind) {
    case 0:
      b.line("mov r6, r11");
      b.line("shr r6, " + std::to_string(i % 13 + 1));
      b.line("add r11, r6");
      break;
    case 1: {
      const std::string skip = b.fresh("h_skip");
      b.line("mov r6, r11");
      b.line("and r6, " + std::to_string(1 << (i % 8)));
      b.line("cmp r6, 0");
      b.line("jeq " + skip);
      b.line("add r11, " + std::to_string(i + 3));
      b.label(skip);
      break;
    }
    case 2:
      b.line("call helper_" + std::to_string(i % 8));
      break;
    default:
      // Indirect helper call through the per-handler pointer table — gcc
      // has the second-highest static indirect-call population (Table II).
      b.line("mov r6, @jt2");
      b.line("ld r6, [r6+" + std::to_string((i / 4) * 4) + "]");
      b.line("callr r6");
      break;
  }
  b.line("ret");
}

/// Cloned "optimizer pass" functions: straight-line compiled-looking code
/// that inflates the static footprint the way gcc's many passes do.
void emit_pass(Builder& b, int i, int body_ops) {
  b.func("pass_" + std::to_string(i));
  b.line("mov r6, r11");
  for (int k = 0; k < body_ops; ++k) {
    const int c = (i * 131 + k * 17) % 8191 + 1;
    switch (k % 4) {
      case 0: b.line("add r6, " + std::to_string(c)); break;
      case 1: b.line("xor r6, " + std::to_string(c)); break;
      case 2: b.line("shr r6, 1"); break;
      default: b.line("mul r6, 3"); break;
    }
  }
  b.line("add r11, r6");
  b.line("ret");
}

}  // namespace

binary::Image make_compiler(int scale) {
  const int handlers = 128;  // power of two for mask dispatch
  const int passes = scale == 0 ? 8 : 48;
  const int pass_body = scale == 0 ? 8 : 36;
  const uint32_t tokens = scale == 0 ? 256 : scale == 1 ? 3072 : 12288;
  const int rounds = scale == 0 ? 1 : 3;

  Builder b("gcc");
  b.data_section();
  b.label("tokens").space(tokens);
  b.label("jt");
  for (int i = 0; i < handlers; ++i) b.ptr("tok_" + std::to_string(i));
  b.label("jt2");
  for (int i = 0; i < handlers / 4; ++i) {
    b.ptr("helper_" + std::to_string(i % 8));
  }
  const int bank_funcs = scale == 0 ? 16 : 128;
  const int bank_ops = scale == 0 ? 24 : 110;
  emit_cold_bank_table(b, "cold", bank_funcs);
  b.text_section();

  b.func("main");
  b.line("mov r10, 7");
  b.line("mov r11, 0");
  b.line("mov r1, @tokens");
  emit_fill_bytes(b, "r1", tokens);

  b.line("mov r12, 0");  // cold-bank round-robin counter
  b.line("mov r9, 0");  // round counter
  b.label("round");
  b.line("mov r1, @tokens");
  b.line("mov r2, r1");
  b.line("add r2, " + std::to_string(tokens));
  b.label("tok_loop");
  b.line("ldb r3, [r1]");
  b.line("and r3, " + std::to_string(handlers - 1));
  // Common tokens take the compiled switch (compare tree to specialized
  // direct handlers); only computed/rare tokens (low bits zero, 1 in 8) go
  // through the function-pointer table — matching gcc's mix of dense
  // direct branching with occasional indirect calls.
  b.line("mov r4, r3");
  b.line("and r4, 7");
  b.line("cmp r4, 0");
  b.line("jeq tok_indirect");
  b.line("cmp r3, 64");
  b.line("jlt tok_lo");
  b.line("cmp r3, 96");
  b.line("jlt tok_mid_hi");
  b.line("call dh_3");
  b.line("jmp tok_next");
  b.label("tok_mid_hi");
  b.line("call dh_2");
  b.line("jmp tok_next");
  b.label("tok_lo");
  b.line("cmp r3, 32");
  b.line("jlt tok_lo_lo");
  b.line("call dh_1");
  b.line("jmp tok_next");
  b.label("tok_lo_lo");
  b.line("call dh_0");
  b.line("jmp tok_next");
  b.label("tok_indirect");
  b.line("mul r3, 4");
  b.line("add r3, @jt");
  b.line("ld r4, [r3]");
  b.line("callr r4");
  b.label("tok_next");
  b.line("mov r4, r1");
  b.line("and r4, 31");
  b.line("cmp r4, 31");
  b.line("jne tok_warm");
  // Periodic visit into the warm/cold code bank (see common.hpp).
  emit_cold_bank_call(b, "cold", bank_funcs);
  b.label("tok_warm");
  b.line("add r1, 1");
  b.line("cmp r1, r2");
  b.line("jb tok_loop");
  // Run the optimizer passes after each token sweep.
  for (int i = 0; i < passes; ++i) b.line("call pass_" + std::to_string(i));
  b.line("call nest_entry");
  b.line("call pic_probe");
  b.line("add r9, 1");
  b.line("cmp r9, " + std::to_string(rounds));
  b.line("jlt round");
  emit_epilogue(b);

  // Specialized direct token handlers for the compare-tree fast path.
  for (int i = 0; i < 4; ++i) {
    b.func("dh_" + std::to_string(i));
    b.line("mov r6, r11");
    for (int k = 0; k < 24; ++k) {
      const int c = (i * 409 + k * 23) % 2039 + 1;
      switch (k % 4) {
        case 0: b.line("add r6, " + std::to_string(c)); break;
        case 1: b.line("xor r6, " + std::to_string(c)); break;
        case 2: b.line("shr r6, 1"); break;
        default: b.line("add r11, " + std::to_string(c & 15)); break;
      }
    }
    b.line("and r6, 4095");
    b.line("add r11, r6");
    b.line("ret");
  }

  for (int i = 0; i < 8; ++i) {
    b.func("helper_" + std::to_string(i));
    b.line("add r11, " + std::to_string(i * 7 + 1));
    b.line("mov r7, r11");
    b.line("and r7, 1023");
    b.line("add r11, r7");
    b.line("ret");
  }

  for (int i = 0; i < handlers; ++i) emit_handler(b, i);
  for (int i = 0; i < passes; ++i) emit_pass(b, i, pass_body);

  // Bounded recursion: models gcc's recursive tree walks.
  b.func("nest_entry");
  b.line("mov r1, 10");
  b.line("call nest");
  b.line("ret");
  b.func("nest");
  b.line("cmp r1, 0");
  b.line("jgt nest_go");
  b.line("ret");
  b.label("nest_go");
  b.line("push r1");
  b.line("sub r1, 1");
  b.line("add r11, r1");
  b.line("call nest");
  b.line("pop r1");
  b.line("ret");

  emit_cold_bank_funcs(b, "cold", bank_funcs, bank_ops);

  // PIC-style helper: reads its own return address (for computation only);
  // randomizable only via the §IV-C architectural bitmap.
  b.func("pic_probe");
  b.line("ld r6, [sp]");
  b.line("and r6, 0");
  b.line("add r6, 13");
  b.line("add r11, r6");
  b.line("ret");

  return b.build();
}

}  // namespace vcfr::workloads
