// "bzip2" stand-in: run-length coding plus a move-to-front transform over
// pseudo-random bytes — data-dependent branches, byte loads/stores, and a
// moderate hot-code footprint (three cloned coding passes), matching
// bzip2's compression-kernel character.
#include <string>

#include "workloads/common.hpp"
#include "workloads/suite.hpp"

namespace vcfr::workloads {

namespace {

/// Emits one RLE pass over [src, src+len) writing (runlen, value) pairs to
/// dst and folding them into r11. Cloned with different run caps to widen
/// the static footprint the way bzip2's specialized coding loops do.
void emit_rle_pass(Builder& b, const std::string& fn, uint32_t src_off,
                   uint32_t len, uint32_t run_cap) {
  b.func(fn);
  b.line("mov r1, @src");
  b.line("add r1, " + std::to_string(src_off));
  b.line("mov r2, r1");
  b.line("add r2, " + std::to_string(len));
  b.line("mov r3, @dst");
  const std::string loop = b.fresh("rle_loop");
  const std::string inner = b.fresh("rle_inner");
  const std::string flush = b.fresh("rle_flush");
  b.label(loop);
  b.line("ldb r4, [r1]");
  b.line("mov r5, 1");
  b.label(inner);
  b.line("add r1, 1");
  b.line("cmp r1, r2");
  b.line("jae " + flush);
  b.line("ldb r6, [r1]");
  b.line("cmp r6, r4");
  b.line("jne " + flush);
  b.line("add r5, 1");
  b.line("cmp r5, " + std::to_string(run_cap));
  b.line("jlt " + inner);
  b.label(flush);
  b.line("stb r5, [r3]");
  b.line("add r3, 1");
  b.line("stb r4, [r3]");
  b.line("add r3, 1");
  b.line("mov r7, r5");
  b.line("xor r7, r4");
  b.line("add r11, r7");
  b.line("cmp r1, r2");
  b.line("jb " + loop);
  b.line("ret");
}

}  // namespace

binary::Image make_compress(int scale) {
  const uint32_t src_bytes = scale == 0 ? 1023 : scale == 1 ? 6144 : 49152;
  const uint32_t mtf_bytes = scale == 0 ? 256 : scale == 1 ? 768 : 8192;
  const int rounds = scale == 0 ? 1 : 2;
  constexpr uint32_t kMtfEntries = 64;

  Builder b("bzip2");
  b.data_section();
  b.label("src").space(src_bytes);
  b.label("dst").space(src_bytes * 2 + 16);
  b.label("mtf").space(kMtfEntries * 4);
  b.text_section();

  b.func("main");
  b.line("mov r10, 42");
  b.line("mov r11, 0");
  b.line("mov r1, @src");
  emit_fill_bytes(b, "r1", src_bytes);
  // mtf[i] = i
  b.line("mov r1, @mtf");
  b.line("mov r2, 0");
  b.label("mtf_init");
  b.line("st r2, [r1]");
  b.line("add r1, 4");
  b.line("add r2, 1");
  b.line("cmp r2, " + std::to_string(kMtfEntries));
  b.line("jlt mtf_init");

  const uint32_t third = src_bytes / 3;
  b.line("mov r9, 0");
  b.label("round_loop");
  b.line("call rle_a");
  b.line("call rle_b");
  b.line("call rle_c");
  b.line("call mtf_pass");
  b.line("call pack_pass");
  b.line("add r9, 1");
  b.line("cmp r9, " + std::to_string(rounds));
  b.line("jlt round_loop");
  emit_epilogue(b);

  // Bit-packing pass over the RLE output: an unrolled mixing chain per
  // block, modelling bzip2's Huffman coding stage. Together with the RLE
  // and MTF loops this gives bzip2 a moderate alternating hot footprint.
  b.func("pack_pass");
  b.line("mov r1, @dst");
  b.line("mov r2, 0");
  b.label("pack_outer");
  b.line("mov r7, 0");
  for (int s = 0; s < 48; ++s) {
    b.line("ldb r5, [r1+" + std::to_string(s % 16) + "]");
    b.line("shl r5, " + std::to_string(s % 3));
    b.line("xor r7, r5");
    b.line("add r7, " + std::to_string(s * 29 + 1));
    b.line("shr r7, " + std::to_string(s % 2));
  }
  b.line("add r11, r7");
  b.line("add r1, 16");
  b.line("add r2, 1");
  b.line("cmp r2, 48");
  b.line("jlt pack_outer");
  b.line("ret");

  emit_rle_pass(b, "rle_a", 0, third, 255);
  emit_rle_pass(b, "rle_b", third, third, 64);
  emit_rle_pass(b, "rle_c", 2 * third, third, 16);

  // Move-to-front over a prefix of src (values folded into 0..63).
  b.func("mtf_pass");
  b.line("mov r1, @src");
  b.line("mov r2, r1");
  b.line("add r2, " + std::to_string(mtf_bytes));
  b.label("mtf_outer");
  b.line("ldb r3, [r1]");
  b.line("and r3, " + std::to_string(kMtfEntries - 1));
  b.line("mov r4, @mtf");
  b.line("mov r5, 0");
  b.label("mtf_search");
  b.line("ld r6, [r4]");
  b.line("cmp r6, r3");
  b.line("jeq mtf_found");
  b.line("add r4, 4");
  b.line("add r5, 1");
  b.line("cmp r5, " + std::to_string(kMtfEntries));
  b.line("jlt mtf_search");
  b.label("mtf_found");
  b.line("add r11, r5");
  b.label("mtf_shift");
  b.line("cmp r5, 0");
  b.line("jeq mtf_place");
  b.line("ld r6, [r4-4]");
  b.line("st r6, [r4]");
  b.line("sub r4, 4");
  b.line("sub r5, 1");
  b.line("jmp mtf_shift");
  b.label("mtf_place");
  b.line("st r3, [r4]");
  b.line("add r1, 1");
  b.line("cmp r1, r2");
  b.line("jb mtf_outer");
  b.line("ret");

  return b.build();
}

}  // namespace vcfr::workloads
