// "hmmer" stand-in: a Viterbi-style dynamic-programming recurrence over a
// 64-state profile with a 16-way unrolled inner loop, alternating with an
// unrolled posterior-decoding sweep — hmmer is a regular, high-IPC integer
// kernel whose two alternating phases give it a moderate hot-code
// footprint (noticeable, but not catastrophic, under naive ILR).
#include <string>

#include "workloads/common.hpp"
#include "workloads/suite.hpp"

namespace vcfr::workloads {

binary::Image make_dp(int scale) {
  constexpr uint32_t kStates = 64;
  const uint32_t seq_len = scale == 0 ? 32 : scale == 1 ? 400 : 2000;

  Builder b("hmmer");
  b.data_section();
  b.label("dp0").space(kStates * 4 + 4);  // slot 0 is the j-1 boundary
  b.label("dp1").space(kStates * 4 + 4);
  b.label("emit").space(64 * 4);
  const int bank_funcs = scale == 0 ? 16 : 128;
  const int bank_ops = scale == 0 ? 24 : 110;
  emit_cold_bank_table(b, "cold", bank_funcs);
  b.text_section();

  b.func("main");
  b.line("mov r10, 1234");
  b.line("mov r11, 0");
  b.line("mov r1, @emit");
  emit_fill_words(b, "r1", 64, 255);
  // dp0[j] = j * 3.
  b.line("mov r1, @dp0");
  b.line("add r1, 4");
  b.line("mov r2, 0");
  b.label("dpinit");
  b.line("mov r3, r2");
  b.line("mul r3, 3");
  b.line("st r3, [r1]");
  b.line("add r1, 4");
  b.line("add r2, 1");
  b.line("cmp r2, " + std::to_string(kStates));
  b.line("jlt dpinit");

  b.line("mov r12, 0");        // cold-bank counter
  b.line("mov r9, 0");         // t
  b.line("mov r1, @dp0");      // prev row
  b.line("mov r2, @dp1");      // next row
  b.label("t_loop");
  emit_lcg_step(b);
  b.line("mov r3, r10");
  b.line("shr r3, 10");
  b.line("and r3, 63");
  b.line("mul r3, 4");
  b.line("add r3, @emit");
  b.line("ld r3, [r3]");       // e = emit[sym]

  // Inner recurrence, unrolled by 16:
  //   next[j] = (max(prev[j]+3, prev[j-1]+5) + e) >> 1
  b.line("mov r4, 1");  // j
  b.label("j_loop");
  for (int u = 0; u < 16; ++u) {
    const std::string take_move = b.fresh("dp_move");
    const std::string store = b.fresh("dp_store");
    b.line("mov r5, r4");
    b.line("mul r5, 4");
    b.line("mov r6, r5");
    b.line("add r5, r1");      // &prev[j]
    b.line("add r6, r2");      // &next[j]
    b.line("ld r7, [r5]");
    b.line("ld r8, [r5-4]");
    b.line("add r7, 3");
    b.line("add r8, 5");
    b.line("cmp r7, r8");
    b.line("jlt " + take_move);
    b.line("add r7, r3");
    b.line("shr r7, 1");
    b.line("st r7, [r6]");
    b.line("jmp " + store);
    b.label(take_move);
    b.line("add r8, r3");
    b.line("shr r8, 1");
    b.line("st r8, [r6]");
    b.label(store);
    b.line("add r4, 1");
  }
  b.line("cmp r4, " + std::to_string(kStates + 1));
  b.line("jlt j_loop");

  // checksum += next[kStates]; swap rows; posterior sweep every 8 steps.
  b.line("mov r5, " + std::to_string(kStates * 4));
  b.line("add r5, r2");
  b.line("ld r5, [r5]");
  b.line("add r11, r5");
  b.line("mov r5, r1");
  b.line("mov r1, r2");
  b.line("mov r2, r5");
  b.line("mov r5, r9");
  b.line("and r5, 7");
  b.line("cmp r5, 7");
  b.line("jne no_post");
  b.line("push r1");
  b.line("push r2");
  b.line("call posterior");
  b.line("pop r2");
  b.line("pop r1");
  b.label("no_post");
  b.line("mov r5, r9");
  b.line("and r5, 1");
  b.line("cmp r5, 0");
  b.line("jne t_warm");
  emit_cold_bank_call(b, "cold", bank_funcs);
  b.label("t_warm");
  b.line("add r9, 1");
  b.line("cmp r9, " + std::to_string(seq_len));
  b.line("jlt t_loop");
  emit_epilogue(b);

  emit_cold_bank_funcs(b, "cold", bank_funcs, bank_ops);

  // Posterior decoding sweep: unrolled read-combine over the two rows.
  b.func("posterior");
  b.line("mov r6, 0");
  for (int s = 0; s < 48; ++s) {
    const uint32_t off = 4 + (s * 5 % kStates) * 4;
    b.line("mov r5, @dp0");
    b.line("ld r7, [r5+" + std::to_string(off) + "]");
    b.line("mov r5, @dp1");
    b.line("ld r8, [r5+" + std::to_string(off) + "]");
    b.line("add r7, r8");
    b.line("shr r7, " + std::to_string(s % 5 + 1));
    b.line("add r6, r7");
  }
  b.line("add r11, r6");
  b.line("ret");

  return b.build();
}

}  // namespace vcfr::workloads
