// "xalan" (Xalan-C++ XSLT processor) stand-in: two-level dispatch over a
// synthetic tag stream through nested jump tables of handler functions —
// xalan's character is the largest indirect-call density in the suite
// (Table II: 15465 indirect calls), a large spread-out code footprint, and
// string-scanning loops.
//
// It also carries a computed-dispatch cluster (handlers at a fixed stride,
// reached via address arithmetic). The target analysis cannot patch
// computed code addresses, so the cluster becomes the un-randomized
// failover set — the residual gadget surface of Figure 11.
#include <string>

#include "workloads/common.hpp"
#include "workloads/suite.hpp"

namespace vcfr::workloads {

namespace {

constexpr int kClasses = 16;
constexpr int kPerClass = 16;

void emit_tag_handler(Builder& b, int cls, int idx) {
  const std::string name =
      "h_" + std::to_string(cls) + "_" + std::to_string(idx);
  b.func(name);
  const int c = cls * 131 + idx * 17 + 1;
  b.line("add r11, " + std::to_string(c));
  for (int k = 0; k < 10 + ((cls + idx) % 10); ++k) {
    switch (k % 3) {
      case 0: b.line("xor r11, " + std::to_string(c * 3 + k)); break;
      case 1: b.line("add r6, " + std::to_string(c + k)); break;
      default: b.line("shr r6, 1"); break;
    }
  }
  if ((cls + idx) % 5 == 0) {
    const std::string skip = b.fresh("xh_skip");
    b.line("mov r6, r11");
    b.line("and r6, 3");
    b.line("cmp r6, 0");
    b.line("jne " + skip);
    b.line("add r11, 1");
    b.label(skip);
  }
  if ((cls + idx) % 3 == 0) {
    // Indirect leaf call — xalan dominates the suite's static and dynamic
    // indirect-call counts (Table II: 15465 for the real xalancbmk).
    b.line("mov r6, @aux_jt");
    b.line("ld r6, [r6+" + std::to_string(((cls * 16 + idx) % 16) * 4) + "]");
    b.line("callr r6");
  }
  b.line("ret");
}

}  // namespace

binary::Image make_xml(int scale) {
  const uint32_t tags = scale == 0 ? 256 : scale == 1 ? 2800 : 12000;
  const int rounds = scale == 0 ? 1 : 3;
  const uint32_t text_bytes = scale == 0 ? 256 : 4096;

  Builder b("xalan");
  b.data_section();
  b.label("tagstream").space(tags);
  b.label("textbuf").space(text_bytes);
  // Top-level class table, then one table per class.
  b.label("class_jt");
  for (int c = 0; c < kClasses; ++c) b.ptr("class_" + std::to_string(c));
  for (int c = 0; c < kClasses; ++c) {
    b.label("jt_" + std::to_string(c));
    for (int i = 0; i < kPerClass; ++i) {
      b.ptr("h_" + std::to_string(c) + "_" + std::to_string(i));
    }
  }
  b.label("aux_jt");
  for (int i = 0; i < 16; ++i) b.ptr("leaf_" + std::to_string(i));
  const int bank_funcs = scale == 0 ? 16 : 128;
  const int bank_ops = scale == 0 ? 24 : 110;
  emit_cold_bank_table(b, "cold", bank_funcs);
  b.text_section();

  b.func("main");
  b.line("mov r10, 2024");
  b.line("mov r11, 0");
  b.line("mov r1, @tagstream");
  emit_fill_bytes(b, "r1", tags);
  b.line("mov r1, @textbuf");
  emit_fill_bytes(b, "r1", text_bytes);

  b.line("mov r12, 0");
  b.line("mov r9, 0");
  b.label("round");
  b.line("mov r1, @tagstream");
  b.line("mov r2, r1");
  b.line("add r2, " + std::to_string(tags));
  b.label("tag_loop");
  b.line("ldb r3, [r1]");
  // First level: class dispatch (indirect call through class_jt).
  b.line("mov r4, r3");
  b.line("shr r4, 4");
  b.line("and r4, " + std::to_string(kClasses - 1));
  b.line("mul r4, 4");
  b.line("add r4, @class_jt");
  b.line("ld r4, [r4]");
  b.line("callr r4");
  b.line("mov r4, r1");
  b.line("and r4, 31");
  b.line("cmp r4, 31");
  b.line("jne tag_warm");
  emit_cold_bank_call(b, "cold", bank_funcs);
  b.label("tag_warm");
  b.line("add r1, 1");
  b.line("cmp r1, r2");
  b.line("jb tag_loop");
  b.line("call strscan");
  b.line("call attr_norm");
  b.line("add r9, 1");
  b.line("cmp r9, " + std::to_string(rounds));
  b.line("jlt round");
  emit_epilogue(b);

  // Per-class dispatchers: second-level indirect call keyed by the low
  // nibble of the tag (still in r3).
  for (int c = 0; c < kClasses; ++c) {
    b.func("class_" + std::to_string(c));
    // Only the low two tag bits select the handler: per-site indirect
    // targets are polymorphic but low-entropy, as in real XSLT dispatch.
    b.line("mov r5, r3");
    b.line("and r5, 3");
    b.line("mul r5, 4");
    b.line("add r5, @jt_" + std::to_string(c));
    b.line("ld r5, [r5]");
    b.line("callr r5");
    b.line("ret");
  }
  for (int c = 0; c < kClasses; ++c) {
    for (int i = 0; i < kPerClass; ++i) emit_tag_handler(b, c, i);
  }

  emit_cold_bank_funcs(b, "cold", bank_funcs, bank_ops);

  for (int i = 0; i < 16; ++i) {
    b.func("leaf_" + std::to_string(i));
    b.line("add r11, " + std::to_string(i * 3 + 1));
    b.line("ret");
  }

  // String scan: count 'delimiter' bytes in the text buffer.
  b.func("strscan");
  b.line("mov r1, @textbuf");
  b.line("mov r2, r1");
  b.line("add r2, " + std::to_string(text_bytes));
  b.label("ss_loop");
  b.line("ldb r3, [r1]");
  b.line("and r3, 63");
  b.line("cmp r3, 60");  // '<'
  b.line("jne ss_next");
  b.line("add r11, 1");
  b.label("ss_next");
  b.line("add r1, 1");
  b.line("cmp r1, r2");
  b.line("jb ss_loop");
  b.line("ret");

  // Attribute normalization through the *computed* cluster: handler
  // address = cluster_base + (val & 7) * 32. The analysis must leave the
  // whole cluster un-randomized (failover set).
  b.func("attr_norm");
  b.line("mov r7, 0");
  b.label("an_loop");
  b.line("mov r4, r11");
  b.line("and r4, 7");
  b.line("mul r4, 32");
  b.line("mov r5, @cluster");
  b.line("add r5, r4");
  b.line("callr r5");
  b.line("add r7, 1");
  b.line("cmp r7, 8");
  b.line("jlt an_loop");
  b.line("ret");

  // The computed cluster: 8 mini-handlers padded to a 32-byte stride, all
  // inside one function extent so the analysis marks the whole window.
  b.func("cluster");
  for (int i = 0; i < 8; ++i) {
    // add r11, C (6B) + ret (1B) = 7 bytes; pad with 25 nops to 32.
    b.line("add r11, " + std::to_string(i * 37 + 5));
    b.line("ret");
    for (int p = 0; p < 25; ++p) b.line("nop");
  }

  return b.build();
}

}  // namespace vcfr::workloads
