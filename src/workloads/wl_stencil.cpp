// "lbm" stand-in: a 2-D four-point stencil sweep between two grids —
// lbm's character is streaming loads/stores over a working set larger than
// the L1 with a compact, regular kernel.
#include <string>

#include "workloads/common.hpp"
#include "workloads/suite.hpp"

namespace vcfr::workloads {

binary::Image make_stencil(int scale) {
  const uint32_t dim = scale == 0 ? 32 : 128;  // grid is dim x dim words
  const int rounds = scale == 0 ? 1 : scale == 1 ? 2 : 8;
  const uint32_t grid_bytes = dim * dim * 4;
  const uint32_t row_bytes = dim * 4;

  Builder b("lbm");
  b.data_section();
  b.label("grid_a").space(grid_bytes);
  b.label("grid_b").space(grid_bytes);
  b.text_section();

  b.func("main");
  b.line("mov r10, 3");
  b.line("mov r11, 0");
  b.line("mov r1, @grid_a");
  emit_fill_words(b, "r1", dim * dim, 1023);

  b.line("mov r9, 0");        // round
  b.line("mov r1, @grid_a");  // src
  b.line("mov r2, @grid_b");  // dst
  b.label("round");
  b.line("mov r3, 1");  // y
  b.label("y_loop");
  // r4 = src + y*row + 4 ; r5 = dst + y*row + 4
  b.line("mov r4, r3");
  b.line("mul r4, " + std::to_string(row_bytes));
  b.line("mov r5, r4");
  b.line("add r4, r1");
  b.line("add r4, 4");
  b.line("add r5, r2");
  b.line("add r5, 4");
  b.line("mov r6, 1");  // x
  b.label("x_loop");
  b.line("ld r7, [r4-4]");                                // left
  b.line("ld r8, [r4+4]");                                // right
  b.line("add r7, r8");
  b.line("ld r8, [r4-" + std::to_string(row_bytes) + "]");  // up
  b.line("add r7, r8");
  b.line("ld r8, [r4+" + std::to_string(row_bytes) + "]");  // down
  b.line("add r7, r8");
  b.line("shr r7, 2");
  b.line("ld r8, [r4]");
  b.line("and r8, 255");
  b.line("add r7, r8");
  b.line("st r7, [r5]");
  b.line("add r4, 4");
  b.line("add r5, 4");
  b.line("add r6, 1");
  b.line("cmp r6, " + std::to_string(dim - 1));
  b.line("jlt x_loop");
  b.line("add r3, 1");
  b.line("cmp r3, " + std::to_string(dim - 1));
  b.line("jlt y_loop");
  // checksum one interior cell, then swap grids.
  b.line("mov r4, " + std::to_string(row_bytes + 8));
  b.line("add r4, r2");
  b.line("ld r4, [r4]");
  b.line("add r11, r4");
  b.line("mov r4, r1");
  b.line("mov r1, r2");
  b.line("mov r2, r4");
  b.line("add r9, 1");
  b.line("cmp r9, " + std::to_string(rounds));
  b.line("jlt round");
  emit_epilogue(b);

  return b.build();
}

}  // namespace vcfr::workloads
