// The vulnerable request-handling server from the paper's §V-A scenario,
// shared by the ROP demo (`examples/harden_server.cpp`) and the serving
// subsystem (`src/serve/`): one definition of the program, its request
// framing, and the classic exploit request built against it.
//
// The server copies a client-controlled number of bytes from the request
// buffer (at the default data base) into a 64-byte stack buffer with no
// bounds check, then checksums what it copied. Requests with a length
// byte <= 63 are served normally; longer ones smash the stack. Its
// statically-linked runtime provides the gadget material (`pop r0; ret`
// and `sys 1; ret`) that makes the §V-A ROP chain possible.
#pragma once

#include <cstdint>
#include <vector>

#include "binary/image.hpp"

namespace vcfr::workloads {

/// Where the server reads its request from — the image's data section
/// base, so drivers poke request bytes straight into memory before a run.
inline constexpr uint32_t kServerRequestBase = binary::kDefaultDataBase;

/// The attacker's marker value ("shell" stand-in): emitted via `sys 1`
/// when the §V-A ROP chain fires.
inline constexpr uint32_t kServerMarker = 0xdead;

/// Size of the request-handler's stack buffer; request bodies up to this
/// size are legitimate, anything longer overwrites the saved return
/// address.
inline constexpr uint32_t kServerBufferBytes = 64;

/// Capacity of the server's request buffer (`.space` in the data
/// section). Framed requests must fit.
inline constexpr uint32_t kServerRequestCapacity = 128;

/// The VX assembly source of the vulnerable server.
[[nodiscard]] const char* server_source();

/// Assembles the server. `scale` is accepted for workload-suite
/// uniformity but does not change the program: per-request work is driven
/// by the request bytes a driver writes at kServerRequestBase, not by a
/// static iteration count.
[[nodiscard]] binary::Image make_server(int scale = 0);

/// Frames a request body for the server's wire format: a leading length
/// byte followed by the body. The body is truncated to 255 bytes (the
/// length field's range) and to the request-buffer capacity.
[[nodiscard]] std::vector<uint8_t> frame_request(
    const std::vector<uint8_t>& body);

/// Builds the §V-A malicious request: kServerBufferBytes filler bytes,
/// then a ROP chain overwriting the saved return address with
/// `pop r0; ret` -> kServerMarker -> `sys 1; ret` (already framed).
[[nodiscard]] std::vector<uint8_t> build_exploit_request(uint32_t pop_gadget,
                                                         uint32_t sys_gadget);

/// The VX assembly source of the *leaky* server variant: same wire format
/// and stack buffer as server_source(), but the handler echoes
/// `body[0]` bytes of its stack buffer back via `out` — a Heartbleed-style
/// over-READ. A response length > kServerBufferBytes walks past the
/// buffer into the saved (randomized, bitmap-marked) return address and
/// discloses it byte by byte: the canonical derandomization-attack
/// precursor that the taint tracker (docs/OBSERVABILITY.md) exists to
/// observe. On a native layout the same over-read silently echoes an
/// original-space address — no secret, no leak.
[[nodiscard]] const char* leaky_server_source();

/// Assembles the leaky server (workload name "leaky"; scale ignored as
/// for make_server).
[[nodiscard]] binary::Image make_leaky_server(int scale = 0);

/// Builds a leaky-server request asking for `resp_len` echoed bytes
/// (already framed). resp_len > kServerBufferBytes over-reads into the
/// saved return address.
[[nodiscard]] std::vector<uint8_t> build_leak_request(uint32_t resp_len);

}  // namespace vcfr::workloads
