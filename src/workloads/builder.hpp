// Thin program-construction helper used by the workload generators:
// accumulates VX assembly source with label management and assembles it.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "binary/image.hpp"

namespace vcfr::workloads {

class Builder {
 public:
  explicit Builder(std::string_view name);

  /// Appends one raw assembly line (instruction or directive).
  Builder& line(std::string_view text);

  /// Label definition at the current cursor.
  Builder& label(std::string_view name);

  /// `.func name` followed by the label. Function symbols feed the
  /// rewriter's extent analysis (Fig 9 / return-safety).
  Builder& func(std::string_view name);

  /// Switches to the data section (first call) / back to text.
  Builder& data_section();
  Builder& text_section();

  Builder& word(uint32_t value);
  Builder& byte(uint32_t value);
  Builder& space(uint32_t bytes);
  Builder& ptr(std::string_view label);

  /// Generates a fresh unique label with the given stem.
  [[nodiscard]] std::string fresh(std::string_view stem);

  /// Marks the entry label (defaults to "main").
  Builder& entry(std::string_view label);

  [[nodiscard]] const std::string& source() const { return src_; }

  /// Assembles the accumulated source. Throws on assembly errors.
  [[nodiscard]] binary::Image build() const;

 private:
  std::string src_;
  uint64_t fresh_counter_ = 0;
};

}  // namespace vcfr::workloads
