#include "workloads/suite.hpp"

#include <stdexcept>

#include "workloads/wl_server.hpp"

namespace vcfr::workloads {

const std::vector<std::string>& spec_names() {
  static const std::vector<std::string> names = {
      "bzip2", "gcc",  "mcf",   "hmmer", "sjeng", "libquantum",
      "h264ref", "lbm", "xalan", "namd",  "soplex"};
  return names;
}

const std::vector<std::string>& fig2_names() {
  static const std::vector<std::string> names = {
      "bzip2", "h264ref", "hmmer", "memcpy", "python", "xalan"};
  return names;
}

binary::Image make(std::string_view name, int scale) {
  if (name == "bzip2") return make_compress(scale);
  if (name == "gcc") return make_compiler(scale);
  if (name == "mcf") return make_graph(scale);
  if (name == "hmmer") return make_dp(scale);
  if (name == "sjeng") return make_search(scale);
  if (name == "libquantum") return make_quantum(scale);
  if (name == "h264ref") return make_video(scale);
  if (name == "lbm") return make_stencil(scale);
  if (name == "xalan") return make_xml(scale);
  if (name == "namd") return make_nbody(scale);
  if (name == "soplex") return make_simplex(scale);
  if (name == "memcpy") return make_memcpy(scale);
  if (name == "python") return make_python(scale);
  if (name == "server") return make_server(scale);  // §V-A request handler
  if (name == "leaky") return make_leaky_server(scale);  // over-reading sibling
  throw std::invalid_argument("unknown workload: " + std::string(name));
}

}  // namespace vcfr::workloads
