// Shared emission helpers for the workload generators.
//
// Register conventions across all workloads:
//   r10 — PRNG (LCG) state
//   r11 — running output checksum (emitted with `out r11` before halt)
//   r12/r13 — scratch reserved for helpers
//   sp  — stack pointer (calls only)
#pragma once

#include <cstdint>
#include <string>

#include "workloads/builder.hpp"

namespace vcfr::workloads {

/// Advances the LCG in r10 (numerical recipes constants).
inline void emit_lcg_step(Builder& b) {
  b.line("mul r10, 1103515245");
  b.line("add r10, 12345");
}

/// Emits a loop that fills `bytes` bytes at the address in `base_reg` with
/// LCG-derived byte values. Clobbers r10, r12, r13 and `base_reg`.
inline void emit_fill_bytes(Builder& b, const std::string& base_reg,
                            uint32_t bytes) {
  const std::string loop = b.fresh("fill");
  b.line("mov r12, 0");
  b.label(loop);
  emit_lcg_step(b);
  b.line("mov r13, r10");
  b.line("shr r13, 16");
  b.line("stb r13, [" + base_reg + "]");
  b.line("add " + base_reg + ", 1");
  b.line("add r12, 1");
  b.line("cmp r12, " + std::to_string(bytes));
  b.line("jlt " + loop);
}

/// Emits a loop that fills `words` 32-bit words at `base_reg` with LCG
/// values masked by `mask`. Clobbers r10, r12, r13 and `base_reg`.
inline void emit_fill_words(Builder& b, const std::string& base_reg,
                            uint32_t words, uint32_t mask) {
  const std::string loop = b.fresh("fillw");
  b.line("mov r12, 0");
  b.label(loop);
  emit_lcg_step(b);
  b.line("mov r13, r10");
  b.line("shr r13, 8");
  b.line("and r13, " + std::to_string(mask));
  b.line("st r13, [" + base_reg + "]");
  b.line("add " + base_reg + ", 4");
  b.line("add r12, 1");
  b.line("cmp r12, " + std::to_string(words));
  b.line("jlt " + loop);
}

/// Standard epilogue plus the statically linked mini-runtime every app
/// carries (the paper's rewriter "only works for statically linked binary
/// with all the libraries embedded", §VI-A — and those library routines
/// are exactly where ROPgadget finds its material: syscall wrappers,
/// callee-saved register pops, and store helpers).
inline void emit_epilogue(Builder& b) {
  b.line("call rt_fini");
  b.line("call rt_swap");
  b.line("mov r0, r11");
  b.line("call rt_write");
  b.line("halt");

  b.data_section();
  b.label("rt_scratch").space(16);
  b.text_section();

  // write() wrapper: the syscall stub.
  b.func("rt_write");
  b.line("sys 1");
  b.line("ret");
  // Teardown: spills/restores state (store + pop epilogue).
  b.func("rt_fini");
  b.line("push r13");
  b.line("mov r13, @rt_scratch");
  b.line("st r0, [r13]");
  b.line("ld r0, [r13]");
  b.line("pop r13");
  b.line("ret");
  // Register shuffle helper.
  b.func("rt_swap");
  b.line("mov r13, r0");
  b.line("mov r0, r13");
  b.line("ret");
}

// ---- cold-code bank ---------------------------------------------------------
//
// Real SPEC applications carry hundreds of kilobytes of warm-but-not-hot
// code (logging, allocation, format conversion, ...) that gives their
// baselines a realistic instruction-side miss floor. The cold bank models
// this: `funcs` round-robin-called functions whose combined size exceeds
// the IL1, so each visit misses a handful of lines in the baseline — and
// every line under naive ILR.

/// Emits the bank's dispatch table and scratch slot. Call while in the
/// data section.
inline void emit_cold_bank_table(Builder& b, const std::string& prefix,
                                 int funcs) {
  b.label(prefix + "_scratch").space(16);
  b.label(prefix + "_jt");
  for (int i = 0; i < funcs; ++i) b.ptr(prefix + "_" + std::to_string(i));
}

/// Emits the bank's functions. Call while in the text section. Bodies
/// clobber r13 only and fold into the checksum. Function shapes vary the
/// way compiled library code does:
///   * most functions save/restore r13 (pop/ret epilogues);
///   * every fourth spills the visit counter to the scratch slot before
///     returning (store gadget material);
///   * every eighth tail-jumps into the next bank function instead of
///     returning (a function without `ret`, Fig 9's minority class).
inline void emit_cold_bank_funcs(Builder& b, const std::string& prefix,
                                 int funcs, int ops) {
  for (int i = 0; i < funcs; ++i) {
    const bool tail_call = i % 8 == 7 && funcs > 1;
    b.func(prefix + "_" + std::to_string(i));
    if (!tail_call) b.line("push r13");
    b.line("mov r13, r11");
    for (int k = 0; k < ops; ++k) {
      const int c = (i * 727 + k * 53) % 32749 + 1;
      switch (k % 4) {
        case 0: b.line("add r13, " + std::to_string(c)); break;
        case 1: b.line("xor r13, " + std::to_string(c)); break;
        case 2: b.line("shr r13, 1"); break;
        default: b.line("mul r13, 5"); break;
      }
    }
    b.line("and r13, 8191");
    b.line("add r11, r13");
    if (tail_call) {
      b.line("jmp " + prefix + "_" + std::to_string((i + 1) % funcs));
      continue;
    }
    if (i % 4 == 1) {
      b.line("mov r13, @" + prefix + "_scratch");
      b.line("st r12, [r13]");
    }
    b.line("pop r13");
    b.line("ret");
  }
}

/// Emits one call into the bank. Uses r12 as the persistent visit counter
/// and r13 as scratch; `funcs` must be a power of two. The odd stride
/// visits functions in a memory-non-adjacent order so the next-line
/// prefetcher cannot chain across functions (real cold code is reached
/// from unrelated call sites, not sequentially).
inline void emit_cold_bank_call(Builder& b, const std::string& prefix,
                                int funcs) {
  b.line("add r12, 45");
  b.line("and r12, " + std::to_string(funcs - 1));
  b.line("mov r13, r12");
  b.line("mul r13, 4");
  b.line("add r13, @" + prefix + "_jt");
  b.line("ld r13, [r13]");
  b.line("callr r13");
}

}  // namespace vcfr::workloads
