#include "serve/loadgen.hpp"

#include <cstddef>

namespace vcfr::serve {

namespace {

// Fixed-point (16.16) quantiles of the unit exponential at the midpoints
// (i + 0.5)/64: entry i is round(-ln(1 - (i+0.5)/64) * 65536). Drawing a
// uniform index and scaling by the mean gives an exponential variate with
// mean ~0.9946 * mean using integer arithmetic only — libm's log() is not
// bit-identical across platforms and would break the committed
// BENCH_serve.json bytes.
constexpr uint32_t kExpQuantile16[64] = {
    514,    1554,   2611,   3686,   4778,   5889,   7019,   8169,
    9339,   10530,  11744,  12981,  14241,  15526,  16837,  18174,
    19540,  20934,  22359,  23815,  25305,  26829,  28390,  29988,
    31627,  33307,  35032,  36803,  38624,  40496,  42424,  44410,
    46458,  48572,  50757,  53017,  55358,  57786,  60307,  62928,
    65659,  68509,  71489,  74610,  77887,  81338,  84979,  88836,
    92933,  97304,  101987, 107030, 112495, 118457, 125016, 132305,
    140508, 149886, 160834, 173985, 190455, 212507, 245984, 317983,
};

}  // namespace

uint64_t LoadGen::draw_gap() {
  uint64_t gap = config_.mean;
  switch (config_.dist) {
    case Distribution::kFixed:
      break;
    case Distribution::kUniform: {
      const uint64_t span = config_.mean * 2;
      gap = span == 0 ? 0 : 1 + rng_.next() % span;
      break;
    }
    case Distribution::kExponential: {
      const uint32_t q = kExpQuantile16[rng_.next() & 63];
      gap = (config_.mean * q) >> 16;
      break;
    }
  }
  return gap == 0 ? 1 : gap;
}

std::vector<uint8_t> LoadGen::draw_server_body() {
  const uint64_t r = rng_.next();
  const size_t n = 1 + static_cast<size_t>(r % 63);
  std::vector<uint8_t> body(n);
  uint64_t bits = r >> 6;
  int have = 58;
  for (size_t i = 0; i < n; ++i) {
    if (have < 8) {
      bits = rng_.next();
      have = 64;
    }
    body[i] = static_cast<uint8_t>(bits);
    bits >>= 8;
    have -= 8;
  }
  return body;
}

}  // namespace vcfr::serve
