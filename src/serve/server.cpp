#include "serve/server.hpp"

#include <algorithm>
#include <deque>
#include <memory>

#include "telemetry/json_writer.hpp"
#include "workloads/wl_server.hpp"

namespace vcfr::serve {

namespace {

// Same golden-ratio mixer the kernel/examples use for per-instance seeds.
constexpr uint64_t kSeedMix = 0x9e3779b97f4a7c15ull;

/// A generated request waiting in a tenant's queue.
struct Pending {
  uint64_t id = 0;
  uint64_t arrival = 0;
  std::vector<uint8_t> payload;  // framed server request (empty otherwise)
};

class ServeDriver : public os::ServiceHook {
 public:
  ServeDriver(const ServeConfig& config, os::Kernel& kernel,
              telemetry::Telemetry* telemetry)
      : config_(config), kernel_(kernel), telemetry_(telemetry) {
    for (uint32_t pid = 0; pid < config.tenants; ++pid) {
      const os::Process& p = kernel.process(pid);
      Tenant t;
      t.pid = pid;
      t.core = static_cast<uint32_t>(p.core());
      t.workload = p.config().workload;
      // "leaky" is the over-reading sibling of the §V-A handler: same
      // request framing / @request mailbox, so it joins the served set.
      t.is_server = t.workload == "server" || t.workload == "leaky";
      LoadGenConfig lg;
      lg.dist = config.dist;
      lg.mean = config.mean_interarrival;
      // Decorrelated from the tenant's placement seed but derived from the
      // same root, so one --seed pins the whole run.
      lg.seed = (config.seed ^ (kSeedMix * (pid + 1))) * 0x2545f4914f6cdd1dull +
                0x5345525645ull;
      t.gen = std::make_unique<LoadGen>(lg);
      // First arrival: one gap past time zero (both models).
      t.next_arrival = t.gen->draw_gap();
      t.gen_active = t.next_arrival <= config.duration;
      tenants_.push_back(std::move(t));
    }
    if (telemetry != nullptr) {
      const telemetry::Scope scope =
          telemetry->root().scope("fleet").scope("serve");
      scope.counter("generated", &generated_);
      scope.counter("completed", &completed_);
      scope.counter("failed", &failed_);
      scope.counter("dropped", &dropped_);
      scope.counter("queue_peak", &queue_peak_);
      scope.gauge("queue_depth", [this] {
        return static_cast<double>(queue_depth_);
      });
      scope.gauge("idle_tenants", [this] {
        uint64_t n = 0;
        for (const Tenant& t : tenants_) n += t.ready ? 1 : 0;
        return static_cast<double>(n);
      });
      latency_hist_ = scope.histogram("latency");
      wait_hist_ = scope.histogram("wait");
    }
  }

  void on_round(uint64_t round) override {
    (void)round;
    // 1. Crash poll: an in-flight request whose process left the fleet (or
    //    was already re-imaged by a restart) failed at the recorded finish
    //    cycle; a finished tenant with no restart coming is down and drops
    //    its queue.
    for (Tenant& t : tenants_) {
      os::Process& p = kernel_.process_mut(t.pid);
      const bool crashed =
          p.finished() || p.restarts() != t.restarts_seen;
      // Downtime window opens at the crash cycle (even when the kernel
      // already re-imaged the process before this poll ran — restart()
      // preserves finish_cycles); it closes at the boot life's halt.
      if (crashed && !t.down_open) {
        t.down_open = true;
        t.down_since = p.stats().finish_cycles;
      }
      if (t.inflight && crashed) {
        RequestRecord r;
        r.id = t.inflight_id;
        r.arrival = t.inflight_arrival;
        r.dispatch = t.inflight_dispatch;
        r.completion = std::max(p.stats().finish_cycles, t.inflight_dispatch);
        r.instructions = p.life_instructions();
        r.failed = true;
        finish_record(t, p, r);
        t.records.push_back(r);
        ++t.failed;
        ++failed_;
        t.inflight = false;
        if (config_.model == ArrivalModel::kClosed && !t.down) {
          t.next_arrival = r.completion + t.gen->draw_gap();
          t.gen_active = t.next_arrival <= config_.duration;
        }
      }
      t.restarts_seen = p.restarts();
      if (p.finished() && !kernel_.restart_pending(t.pid) && !t.down) {
        t.down = true;
        t.gen_active = false;
        if (telemetry_ != nullptr && telemetry_->journal() != nullptr) {
          telemetry_->journal()->log(
              {p.stats().finish_cycles, telemetry::JournalKind::kTenantDown,
               t.pid, -1, t.queue.size(), {}});
        }
        // Dropped requests still terminate their flow chains.
        for (const Pending& req : t.queue) {
          flow_end(t.pid, req.id, p.stats().finish_cycles);
        }
        t.dropped += t.queue.size();
        dropped_ += t.queue.size();
        queue_depth_ -= t.queue.size();
        t.queue.clear();
      }
    }
    // 2. Generation: push every arrival that has come due on its home
    //    core's clock (open loop can owe several; closed loop at most one).
    for (Tenant& t : tenants_) {
      while (t.gen_active && t.next_arrival <= kernel_.core_now(t.core)) {
        Pending req;
        req.id = t.next_id++;
        req.arrival = t.next_arrival;
        if (t.is_server) {
          req.payload = workloads::frame_request(t.gen->draw_server_body());
        }
        // The request's flow chain opens at its arrival cycle.
        if (telemetry::TraceLane* kl = kernel_lane(); kl != nullptr) {
          kl->instant(telemetry::TraceEventType::kReqFlowStart, t.pid,
                      req.arrival,
                      telemetry::request_flow_id(t.pid, req.id));
        }
        t.queue.push_back(std::move(req));
        ++t.generated;
        ++generated_;
        ++queue_depth_;
        t.queue_peak = std::max<uint64_t>(t.queue_peak, t.queue.size());
        queue_peak_ = std::max(queue_peak_, queue_depth_);
        if (config_.model == ArrivalModel::kClosed) {
          t.gen_active = false;  // re-armed at the request's completion
        } else {
          t.next_arrival += t.gen->draw_gap();
          t.gen_active = t.next_arrival <= config_.duration;
        }
      }
    }
    // 3. Delivery to parked tenants (tenants mid-request or mid-boot get
    //    theirs handed over in on_halt instead).
    for (Tenant& t : tenants_) {
      if (t.down || !t.ready || t.inflight || t.queue.empty()) continue;
      deliver(t, kernel_.core_now(t.core));
      kernel_.wake(t.pid);
      t.ready = false;
    }
    // 4. Fast-forward: a core whose every tenant is parked with an empty
    //    queue has nothing to execute — jump its clock to the earliest
    //    future arrival so that arrival can come due. Without this an
    //    all-blocked core's clock would stand still forever.
    const uint32_t cores = kernel_.config().cores;
    for (uint32_t c = 0; c < cores; ++c) {
      bool idle = true;
      uint64_t target = UINT64_MAX;
      for (const Tenant& t : tenants_) {
        if (t.core != c || t.down) continue;
        if (t.inflight || !t.queue.empty() || !t.ready) {
          idle = false;
          break;
        }
        if (t.gen_active) target = std::min(target, t.next_arrival);
      }
      if (idle && target != UINT64_MAX) kernel_.advance_core(c, target);
    }
  }

  HaltAction on_halt(uint32_t pid, uint64_t core_cycles) override {
    Tenant& t = tenants_[pid];
    os::Process& p = kernel_.process_mut(pid);
    // A clean halt after a crash is the restarted boot life's readiness
    // signal: the tenant is back up — close the downtime window.
    if (t.down_open) {
      t.down_intervals.emplace_back(t.down_since, core_cycles);
      t.down_open = false;
    }
    if (t.inflight) {
      RequestRecord r;
      r.id = t.inflight_id;
      r.arrival = t.inflight_arrival;
      r.dispatch = t.inflight_dispatch;
      r.completion = core_cycles;
      r.instructions = p.life_instructions();
      finish_record(t, p, r);
      advance_slo(t, r.completion, r.completion - r.arrival);
      t.records.push_back(r);
      ++t.completed;
      ++completed_;
      if (latency_hist_ != nullptr) {
        latency_hist_->record(r.completion - r.arrival);
      }
      if (wait_hist_ != nullptr) wait_hist_->record(r.dispatch - r.arrival);
      t.inflight = false;
      if (config_.model == ArrivalModel::kClosed) {
        t.next_arrival = core_cycles + t.gen->draw_gap();
        t.gen_active = t.next_arrival <= config_.duration;
      }
    }
    // (A halt with nothing in flight is the life's readiness signal — the
    // boot life, or the first halt after a restart — and records nothing.)
    if (!t.queue.empty()) {
      deliver(t, core_cycles);
      return HaltAction::kRunnable;
    }
    t.ready = true;
    return HaltAction::kBlocked;
  }

  [[nodiscard]] bool active() const override {
    for (const Tenant& t : tenants_) {
      if (t.down) continue;
      if (t.inflight || !t.queue.empty() || t.gen_active) return true;
    }
    return false;
  }

  /// Per-tenant results + fleet aggregates (after the kernel run drained).
  /// Non-const: the SLO monitor's final partial windows are closed here.
  void fill_report(ServeReport& out) {
    out.generated = generated_;
    out.completed = completed_;
    out.failed = failed_;
    out.dropped = dropped_;
    out.throughput_per_mcycle =
        out.fleet_cycles == 0
            ? 0.0
            : static_cast<double>(completed_) * 1e6 /
                  static_cast<double>(out.fleet_cycles);
    std::vector<uint64_t> all_latencies;
    for (Tenant& t : tenants_) {
      if (config_.slo_permille != 0) close_window(t);
      TenantReport tr;
      tr.pid = t.pid;
      tr.workload = t.workload;
      tr.core = t.core;
      tr.generated = t.generated;
      tr.completed = t.completed;
      tr.failed = t.failed;
      tr.dropped = t.dropped;
      tr.restarts = kernel_.process(t.pid).restarts();
      tr.down = t.down;
      tr.queue_peak = t.queue_peak;
      std::vector<uint64_t> latencies;
      uint64_t wait_sum = 0;
      for (const RequestRecord& r : t.records) {
        if (r.failed) continue;
        latencies.push_back(r.completion - r.arrival);
        wait_sum += r.dispatch - r.arrival;
      }
      std::sort(latencies.begin(), latencies.end());
      tr.p50 = nearest_rank_permille(latencies, 500);
      tr.p99 = nearest_rank_permille(latencies, 990);
      tr.p999 = nearest_rank_permille(latencies, 999);
      tr.max = latencies.empty() ? 0 : latencies.back();
      tr.mean_wait = latencies.empty()
                         ? 0.0
                         : static_cast<double>(wait_sum) /
                               static_cast<double>(latencies.size());
      tr.slo_windows = t.slo_windows;
      tr.slo_breaches = t.slo_breaches;
      for (const RequestRecord& r : t.records) {
        tr.leaks += r.leaks;
        tr.leak_depth_max = std::max(tr.leak_depth_max, r.leak_depth);
      }
      tr.records = t.records;
      if (t.down) ++out.tenants_down;
      all_latencies.insert(all_latencies.end(), latencies.begin(),
                           latencies.end());
      out.slo_windows += t.slo_windows;
      out.slo_breaches += t.slo_breaches;
      out.tenants.push_back(std::move(tr));
    }
    if (config_.slo_permille != 0) {
      out.slo_enabled = true;
      out.slo_metric = slo_metric_name(config_.slo_permille);
      out.slo_threshold = config_.slo_threshold;
      out.slo_window = config_.slo_window;
      out.slo_burn_rate =
          out.slo_windows == 0
              ? 0.0
              : static_cast<double>(out.slo_breaches) /
                    static_cast<double>(out.slo_windows);
      std::sort(all_latencies.begin(), all_latencies.end());
      out.slo_overall =
          nearest_rank_permille(all_latencies, config_.slo_permille);
      out.slo_violated = out.slo_overall > config_.slo_threshold;
    }
  }

 private:
  struct Tenant {
    uint32_t pid = 0;
    uint32_t core = 0;
    std::string workload;
    bool is_server = false;
    std::unique_ptr<LoadGen> gen;
    /// Crash->recovery downtime windows on the home-core clock; the open
    /// one starts at the crash's finish_cycles and closes at the first
    /// clean halt after the restart (the boot life's readiness signal).
    std::vector<std::pair<uint64_t, uint64_t>> down_intervals;
    bool down_open = false;
    uint64_t down_since = 0;
    /// Tumbling SLO window state (config.slo_permille != 0 only).
    uint64_t window_start = 0;
    std::vector<uint64_t> window_lat;
    uint64_t slo_windows = 0;
    uint64_t slo_breaches = 0;
    /// An arrival is armed for `next_arrival` (open loop: the stream head;
    /// closed loop: the think-time alarm).
    bool gen_active = false;
    uint64_t next_arrival = 0;
    std::deque<Pending> queue;
    bool inflight = false;
    uint64_t inflight_id = 0;
    uint64_t inflight_arrival = 0;
    uint64_t inflight_dispatch = 0;
    /// Halted at least once this life and parked: delivery may wake it.
    bool ready = false;
    /// Left the fleet with no restart pending; queue was dropped.
    bool down = false;
    uint32_t restarts_seen = 0;
    uint64_t next_id = 0;
    uint64_t generated = 0;
    uint64_t completed = 0;
    uint64_t failed = 0;
    uint64_t dropped = 0;
    uint64_t queue_peak = 0;
    std::vector<RequestRecord> records;
  };

  /// Hands the queue head to the (idle) process: payload into memory, per
  /// -life budget re-armed, dispatch stamped at `now`.
  void deliver(Tenant& t, uint64_t now) {
    Pending req = std::move(t.queue.front());
    t.queue.pop_front();
    --queue_depth_;
    os::Process& p = kernel_.process_mut(t.pid);
    p.rearm(req.payload, workloads::kServerRequestBase);
    // The kernel accrues run/commit cycles against this id from here on.
    p.begin_request(req.id);
    t.inflight = true;
    t.inflight_id = req.id;
    t.inflight_arrival = req.arrival;
    t.inflight_dispatch = now;
    if (telemetry::TraceLane* kl = kernel_lane(); kl != nullptr) {
      kl->instant(telemetry::TraceEventType::kReqFlowStep, t.pid, now,
                  telemetry::request_flow_id(t.pid, req.id));
    }
  }

  // ---- tracing helpers (no-ops without an attached tracer) ---------------
  /// All serve-side events record only during serial hook callbacks, so
  /// writing core lanes from the kernel thread here is race-free.
  [[nodiscard]] telemetry::TraceLane* lane(uint32_t id) {
    return telemetry_ == nullptr ? nullptr : telemetry_->lane(id);
  }
  [[nodiscard]] telemetry::TraceLane* kernel_lane() {
    return lane(kernel_.config().cores);
  }

  /// Terminates the request's flow chain ("f") on the kernel lane.
  void flow_end(uint32_t pid, uint64_t req, uint64_t cycle) {
    if (telemetry::TraceLane* kl = kernel_lane(); kl != nullptr) {
      kl->instant(telemetry::TraceEventType::kReqFlowEnd, pid, cycle,
                  telemetry::request_flow_id(pid, req));
    }
  }

  /// Tiles the four lifecycle spans end-to-end from the arrival cycle on
  /// the tenant's home-core lane. The tiling *is* the breakdown (summing
  /// to the latency), not the chronological interleaving.
  void emit_spans(const Tenant& t, const RequestRecord& r) {
    telemetry::TraceLane* l = lane(t.core);
    if (l == nullptr) return;
    const uint64_t fid = telemetry::request_flow_id(t.pid, r.id);
    uint64_t at = r.arrival;
    const std::pair<telemetry::TraceEventType, uint64_t> tiles[] = {
        {telemetry::TraceEventType::kReqQueue, r.queue_cycles},
        {telemetry::TraceEventType::kReqRun, r.run_cycles},
        {telemetry::TraceEventType::kReqRestartLoss, r.restart_loss_cycles},
        {telemetry::TraceEventType::kReqCommitStall, r.commit_stall_cycles},
    };
    for (const auto& [type, dur] : tiles) {
      if (dur == 0) continue;
      l->span(type, t.pid, at, dur, fid);
      at += dur;
    }
  }

  /// Cycles of [a, b) the tenant spent down (crash->recovery overlap).
  [[nodiscard]] uint64_t down_overlap(const Tenant& t, uint64_t a,
                                      uint64_t b) const {
    uint64_t total = 0;
    for (const auto& [s, e] : t.down_intervals) {
      const uint64_t lo = std::max(a, s);
      const uint64_t hi = std::min(b, e);
      if (hi > lo) total += hi - lo;
    }
    if (t.down_open) {
      const uint64_t lo = std::max(a, t.down_since);
      if (b > lo) total += b - lo;
    }
    return total;
  }

  /// Fills the record's critical-path decomposition from the process's
  /// accrued run/commit cycles and the tenant's downtime windows, ends
  /// the request, and emits the lifecycle spans + flow terminator.
  void finish_record(Tenant& t, os::Process& p, RequestRecord& r) {
    r.run_cycles = p.request_run_cycles();
    r.commit_stall_cycles = p.request_commit_cycles();
    r.leaks = p.request_leaks();
    r.leak_depth = p.request_leak_depth();
    r.restart_loss_cycles = down_overlap(t, r.arrival, r.completion);
    const uint64_t latency = r.completion - r.arrival;
    const uint64_t accounted =
        r.run_cycles + r.commit_stall_cycles + r.restart_loss_cycles;
    // queue is the remainder; tests assert the exact tiling, this guard
    // only keeps a hypothetical accounting bug from wrapping.
    r.queue_cycles = latency > accounted ? latency - accounted : 0;
    p.end_request();
    emit_spans(t, r);
    flow_end(t.pid, r.id, r.completion);
  }

  // ---- SLO monitor (config.slo_permille != 0 only) -----------------------
  /// Closes the tenant's current window: windows with at least one
  /// completion are evaluated against the objective; empty ones are not.
  void close_window(Tenant& t) {
    if (t.window_lat.empty()) return;
    std::sort(t.window_lat.begin(), t.window_lat.end());
    ++t.slo_windows;
    if (nearest_rank_permille(t.window_lat, config_.slo_permille) >
        config_.slo_threshold) {
      ++t.slo_breaches;
    }
    t.window_lat.clear();
  }

  /// Rolls the tenant's tumbling window up to `completion` and records the
  /// completed request's latency into the current window.
  void advance_slo(Tenant& t, uint64_t completion, uint64_t latency) {
    if (config_.slo_permille == 0) return;
    while (completion >= t.window_start + config_.slo_window) {
      close_window(t);
      t.window_start += config_.slo_window;
    }
    t.window_lat.push_back(latency);
  }

  ServeConfig config_;
  os::Kernel& kernel_;
  telemetry::Telemetry* telemetry_ = nullptr;
  std::vector<Tenant> tenants_;
  uint64_t generated_ = 0;
  uint64_t completed_ = 0;
  uint64_t failed_ = 0;
  uint64_t dropped_ = 0;
  uint64_t queue_depth_ = 0;
  uint64_t queue_peak_ = 0;
  telemetry::Histogram* latency_hist_ = nullptr;
  telemetry::Histogram* wait_hist_ = nullptr;
};

}  // namespace

uint64_t nearest_rank_permille(const std::vector<uint64_t>& sorted,
                               uint32_t permille) {
  if (sorted.empty()) return 0;
  const uint64_t n = sorted.size();
  uint64_t rank = (static_cast<uint64_t>(permille) * n + 999) / 1000;
  if (rank < 1) rank = 1;
  if (rank > n) rank = n;
  return sorted[rank - 1];
}

std::string slo_metric_name(uint32_t permille) {
  switch (permille) {
    case 500:
      return "p50";
    case 990:
      return "p99";
    case 999:
      return "p999";
    default:
      return "p" + std::to_string(permille) + "m";
  }
}

ServeReport run_serve(const ServeConfig& config,
                      telemetry::Telemetry* telemetry) {
  os::KernelConfig kc;
  kc.cores = config.cores == 0 ? 1 : config.cores;
  kc.sched.slice_instructions = config.slice_instructions;
  kc.cpu.drc.entries = config.drc_entries;
  kc.measure_isolated = false;
  kc.pool_workers = config.pool_workers;
  kc.shared_l2.commit_shards = config.commit_shards;
  kc.rerand_cost_per_entry = config.rerand_cost_per_entry;
  os::Kernel kernel(kc);
  if (telemetry != nullptr) kernel.attach_telemetry(telemetry);

  const size_t mix = config.workloads.size();
  for (uint32_t i = 0; i < config.tenants; ++i) {
    os::ProcessConfig pc;
    pc.workload = mix == 0 ? "server" : config.workloads[i % mix];
    pc.scale = config.scale;
    pc.seed = config.seed ^ (kSeedMix * (i + 1));
    pc.max_instructions = config.request_budget;
    pc.enforce_tags = config.enforce_tags;
    pc.restart = config.restart;
    pc.rerandomize = config.rerandomize;
    pc.watchdog_instructions = config.watchdog_instructions;
    pc.taint = config.taint;
    for (const auto& [pid, plan] : config.injections) {
      if (pid == i) {
        pc.inject = plan;
        pc.inject_enabled = true;
      }
    }
    kernel.spawn(pc);
  }

  ServeDriver driver(config, kernel, telemetry);
  kernel.set_service(&driver);
  const os::FleetReport fr = kernel.run();

  ServeReport report;
  report.rounds = fr.rounds;
  report.fleet_cycles = fr.fleet_cycles;
  if (config.taint) {
    report.taint_enabled = true;
    report.leaks = kernel.leaks_detected();
    report.leak_rerands = kernel.leak_rerands();
  }
  driver.fill_report(report);
  return report;
}

std::string ServeReport::to_json() const {
  using telemetry::JsonWriter;
  JsonWriter w;
  w.begin_object(JsonWriter::Style::kPretty);
  w.key("rounds").value(rounds);
  w.key("fleet_cycles").value(fleet_cycles);
  w.key("requests").begin_object();
  w.key("generated").value(generated);
  w.key("completed").value(completed);
  w.key("failed").value(failed);
  w.key("dropped").value(dropped);
  w.end_object();
  w.key("throughput_per_mcycle").value(throughput_per_mcycle);
  w.key("tenants_down").value(tenants_down);
  if (slo_enabled) {
    // Present only when an SLO was configured, so un-monitored runs (and
    // the committed BENCH_serve.json) render byte-identically to PR 6.
    w.key("slo").begin_object();
    w.key("metric").value(slo_metric);
    w.key("threshold").value(slo_threshold);
    w.key("window").value(slo_window);
    w.key("windows").value(slo_windows);
    w.key("breaches").value(slo_breaches);
    w.key("burn_rate").value(slo_burn_rate);
    w.key("overall").value(slo_overall);
    w.key("violated").value(slo_violated);
    w.end_object();
  }
  if (taint_enabled) {
    // Present only when taint tracking was on, so untainted runs (and the
    // committed BENCH_serve.json) render byte-identically.
    w.key("taint").begin_object();
    w.key("leaks").value(leaks);
    w.key("leak_rerands").value(leak_rerands);
    w.end_object();
  }
  w.key("tenants").begin_array(JsonWriter::Style::kPretty);
  for (const TenantReport& t : tenants) {
    w.begin_object();
    w.key("pid").value(t.pid);
    w.key("workload").value(t.workload);
    w.key("core").value(t.core);
    w.key("generated").value(t.generated);
    w.key("completed").value(t.completed);
    w.key("failed").value(t.failed);
    w.key("dropped").value(t.dropped);
    w.key("restarts").value(t.restarts);
    w.key("down").value(t.down);
    w.key("queue_peak").value(t.queue_peak);
    w.key("p50").value(t.p50);
    w.key("p99").value(t.p99);
    w.key("p999").value(t.p999);
    w.key("max").value(t.max);
    w.key("mean_wait").value(t.mean_wait);
    if (slo_enabled) {
      w.key("slo_windows").value(t.slo_windows);
      w.key("slo_breaches").value(t.slo_breaches);
    }
    if (taint_enabled) {
      w.key("leaks").value(t.leaks);
      w.key("leak_depth_max").value(t.leak_depth_max);
    }
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.str() + "\n";
}

std::string ServeReport::latency_csv() const {
  std::string csv =
      "tenant,request,arrival,dispatch,completion,latency,wait,"
      "queue,run,restart_loss,commit_stall,instructions,status";
  // Leak columns appear only under --taint, keeping untainted CSVs (and
  // every consumer keyed on the legacy header) byte-identical.
  if (taint_enabled) csv += ",leaks,leak_depth";
  csv += '\n';
  for (const TenantReport& t : tenants) {
    // Records are appended in completion order; the contract is
    // (tenant, request id) order.
    std::vector<RequestRecord> rows = t.records;
    std::sort(rows.begin(), rows.end(),
              [](const RequestRecord& a, const RequestRecord& b) {
                return a.id < b.id;
              });
    for (const RequestRecord& r : rows) {
      csv += std::to_string(t.pid);
      csv += ',';
      csv += std::to_string(r.id);
      csv += ',';
      csv += std::to_string(r.arrival);
      csv += ',';
      csv += std::to_string(r.dispatch);
      csv += ',';
      csv += std::to_string(r.completion);
      csv += ',';
      csv += std::to_string(r.completion - r.arrival);
      csv += ',';
      csv += std::to_string(r.dispatch - r.arrival);
      csv += ',';
      csv += std::to_string(r.queue_cycles);
      csv += ',';
      csv += std::to_string(r.run_cycles);
      csv += ',';
      csv += std::to_string(r.restart_loss_cycles);
      csv += ',';
      csv += std::to_string(r.commit_stall_cycles);
      csv += ',';
      csv += std::to_string(r.instructions);
      csv += ',';
      csv += r.failed ? "failed" : "ok";
      if (taint_enabled) {
        csv += ',';
        csv += std::to_string(r.leaks);
        csv += ',';
        csv += std::to_string(r.leak_depth);
      }
      csv += '\n';
    }
  }
  return csv;
}

std::string ServeReport::summary() const {
  std::string s = "serve: " + std::to_string(tenants.size()) + " tenants, " +
                  std::to_string(completed) + "/" +
                  std::to_string(generated) + " requests served in " +
                  std::to_string(fleet_cycles) + " cycles (" +
                  telemetry::json_double(throughput_per_mcycle) +
                  " req/Mcycle)";
  if (failed != 0) s += ", " + std::to_string(failed) + " failed";
  if (dropped != 0) s += ", " + std::to_string(dropped) + " dropped";
  if (tenants_down != 0) {
    s += ", " + std::to_string(tenants_down) + " tenant(s) down";
  }
  s += "\n";
  if (slo_enabled) {
    s += "  slo " + slo_metric + " <= " + std::to_string(slo_threshold) +
         " cycles: overall " + std::to_string(slo_overall) + " (" +
         (slo_violated ? "VIOLATED" : "met") + "), " +
         std::to_string(slo_breaches) + "/" + std::to_string(slo_windows) +
         " windows breached (burn rate " +
         telemetry::json_double(slo_burn_rate) + ", window " +
         std::to_string(slo_window) + " cycles)\n";
  }
  if (taint_enabled) {
    s += "  taint: " + std::to_string(leaks) + " leak(s) detected";
    if (leak_rerands != 0) {
      s += ", " + std::to_string(leak_rerands) +
           " leak-triggered re-randomization(s)";
    }
    s += "\n";
  }
  for (const TenantReport& t : tenants) {
    s += "  pid " + std::to_string(t.pid) + " (" + t.workload + ", core " +
         std::to_string(t.core) + "): " + std::to_string(t.completed) +
         " served, p50 " + std::to_string(t.p50) + ", p99 " +
         std::to_string(t.p99) + ", p999 " + std::to_string(t.p999) +
         ", max " + std::to_string(t.max);
    if (t.failed != 0) s += ", failed " + std::to_string(t.failed);
    if (t.restarts != 0) s += ", restarts " + std::to_string(t.restarts);
    if (t.down) s += ", DOWN";
    s += "\n";
  }
  return s;
}

}  // namespace vcfr::serve
