// Deterministic, seeded load generation for the serving subsystem.
//
// Every random quantity — interarrival gaps, request body sizes, payload
// bytes — comes from a per-tenant splitmix64 stream, and the exponential
// distribution is drawn through a fixed-point quantile table instead of
// libm, so the same seed produces byte-identical request streams on every
// host/toolchain (the committed BENCH_serve.json depends on this).
#pragma once

#include <cstdint>
#include <vector>

namespace vcfr::serve {

/// splitmix64 (Steele et al.): tiny, full-period, integer-only.
class SplitMix64 {
 public:
  explicit SplitMix64(uint64_t seed) : state_(seed) {}

  uint64_t next() {
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

 private:
  uint64_t state_;
};

/// How a tenant's requests arrive (the two classic load-test shapes).
enum class ArrivalModel : uint8_t {
  /// Open loop: arrivals follow their own clock regardless of completions
  /// — a slow server builds queue (the latency-under-load shape).
  kOpen = 0,
  /// Closed loop: one outstanding request per tenant; the next arrival is
  /// scheduled a think-time after the previous completion.
  kClosed = 1,
};

/// Interarrival / think-time distribution.
enum class Distribution : uint8_t {
  kFixed = 0,        // always the mean
  kUniform = 1,      // uniform on [1, 2*mean] (same mean)
  kExponential = 2,  // Poisson arrivals (memoryless), via quantile table
};

struct LoadGenConfig {
  Distribution dist = Distribution::kExponential;
  /// Mean gap between arrivals (open) or think time (closed), in cycles.
  uint64_t mean = 20'000;
  uint64_t seed = 1;
};

/// One tenant's random stream: gap draws plus synthetic request bodies.
class LoadGen {
 public:
  explicit LoadGen(const LoadGenConfig& config)
      : config_(config), rng_(config.seed) {}

  /// Draws the next interarrival (or think-time) gap, always >= 1 cycle.
  [[nodiscard]] uint64_t draw_gap();

  /// Draws a legitimate request body for the §V-A server: 1..63 random
  /// bytes (<= the 64-byte handler buffer, so it never smashes the stack).
  [[nodiscard]] std::vector<uint8_t> draw_server_body();

 private:
  LoadGenConfig config_;
  SplitMix64 rng_;
};

}  // namespace vcfr::serve
