// The request-serving subsystem (ARCHITECTURE.md §12): per-tenant
// synthetic request streams driven through the fleet kernel's event
// hooks.
//
// Each tenant is one os::Process pinned to its home core. Its workload
// runs once per request: the driver re-arms the process (same
// randomization epoch — warm DRC) with the request payload, wakes it,
// and the next clean halt marks completion. Between requests the tenant
// blocks and the scheduler skips it; an all-idle core's clock is
// fast-forwarded to its next arrival so simulated time keeps moving.
//
// Determinism contract: arrivals are generated and delivered only at
// round boundaries from per-tenant splitmix64 streams, all timestamps
// are core-clock cycles, and the report/CSV renderings are fixed-order
// integer (plus %.6g derived doubles) — same seed, same bytes, any host.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "fault/injector.hpp"
#include "os/kernel.hpp"
#include "serve/loadgen.hpp"
#include "telemetry/telemetry.hpp"

namespace vcfr::serve {

struct ServeConfig {
  uint32_t tenants = 8;
  uint32_t cores = 4;
  /// Arrival horizon in core-clock cycles: no request arrives after this.
  uint64_t duration = 200'000;
  ArrivalModel model = ArrivalModel::kOpen;
  Distribution dist = Distribution::kExponential;
  /// Mean interarrival gap (open) / think time (closed), cycles.
  uint64_t mean_interarrival = 20'000;
  /// Workload mix, cycled across tenants ("server" = the §V-A handler).
  std::vector<std::string> workloads = {"server"};
  int scale = 0;
  uint64_t seed = 7;
  uint64_t slice_instructions = 2'000;
  uint32_t drc_entries = 128;
  /// Per-request instruction budget (a life exceeding it fails kBudget).
  uint64_t request_budget = 2'000'000;
  /// Watchdog per request, in instructions (0 = off).
  uint64_t watchdog_instructions = 0;
  bool enforce_tags = true;
  os::RestartPolicy restart{};
  /// Continuous re-randomization under load (moving target while serving);
  /// defaults (all off) keep legacy serving byte-identical.
  os::RerandomizePolicy rerandomize{};
  /// Victim-core stall cycles per patched entry (os::KernelConfig knob);
  /// 0 keeps the legacy free-rerand timing model.
  uint64_t rerand_cost_per_entry = 0;
  /// Shadow taint tracking on every tenant (--taint): leaks of
  /// randomized-layout secrets are detected, attributed to the in-flight
  /// request, and journaled with provenance. Off keeps legacy serving
  /// byte-identical (report/CSV render no taint fields).
  bool taint = false;
  /// Armed corruptions, per tenant pid (same shape as `vcfr fleet`).
  std::vector<std::pair<uint32_t, fault::FaultPlan>> injections;
  // ---- rolling-window SLO monitor (0 = off) ------------------------------
  /// Latency percentile the objective is set on (500 = p50, 990 = p99,
  /// 999 = p999), evaluated per tenant over tumbling windows.
  uint32_t slo_permille = 0;
  /// The objective: windowed percentile must stay <= this many cycles.
  uint64_t slo_threshold = 0;
  /// Tumbling-window width in core-clock cycles.
  uint64_t slo_window = 50'000;
  /// Execute-phase worker-pool size; 0 = auto (cores - 1). Host
  /// parallelism only — simulated results are bit-identical.
  uint32_t pool_workers = 0;
  /// Shared-L2 commit shards (0 = legacy single-barrier replay; results
  /// are bit-identical either way).
  uint32_t commit_shards = 8;
};

/// One request's full lifecycle, all timestamps on the tenant's home-core
/// clock.
struct RequestRecord {
  uint64_t id = 0;  // per-tenant sequence number, from 0
  uint64_t arrival = 0;
  uint64_t dispatch = 0;    // left the queue / delivered to the process
  uint64_t completion = 0;  // clean halt, or the crash/kill cycle
  uint64_t instructions = 0;
  bool failed = false;  // life ended in fault/watchdog/budget, not a halt
  // Critical-path decomposition; the four components tile the latency:
  //   queue + run + restart_loss + commit_stall == completion - arrival.
  uint64_t queue_cycles = 0;         // waiting in queue / preempted
  uint64_t run_cycles = 0;           // slices + dispatch overhead
  uint64_t restart_loss_cycles = 0;  // crash->restart downtime overlap
  uint64_t commit_stall_cycles = 0;  // shared-L2 round-commit penalties
  // Taint-sink firings attributed to this request (ServeConfig.taint
  // only; both stay 0 otherwise).
  uint64_t leaks = 0;
  uint32_t leak_depth = 0;  // deepest propagation chain among them
};

struct TenantReport {
  uint32_t pid = 0;
  std::string workload;
  uint32_t core = 0;
  uint64_t generated = 0;
  uint64_t completed = 0;
  uint64_t failed = 0;
  /// Requests still queued/armed when the tenant went down unrecovered.
  uint64_t dropped = 0;
  uint32_t restarts = 0;
  bool down = false;  // left the fleet with no restart coming
  uint64_t queue_peak = 0;
  /// Exact nearest-rank percentiles over completed-request latencies.
  uint64_t p50 = 0;
  uint64_t p99 = 0;
  uint64_t p999 = 0;
  uint64_t max = 0;
  /// Mean queue wait (dispatch - arrival) of completed requests.
  double mean_wait = 0.0;
  /// SLO windows evaluated / breached for this tenant (0 when no SLO set).
  uint64_t slo_windows = 0;
  uint64_t slo_breaches = 0;
  /// Request-attributed taint-sink firings (ServeConfig.taint only).
  uint64_t leaks = 0;
  uint32_t leak_depth_max = 0;
  std::vector<RequestRecord> records;
};

struct ServeReport {
  uint64_t rounds = 0;
  uint64_t fleet_cycles = 0;
  uint64_t generated = 0;
  uint64_t completed = 0;
  uint64_t failed = 0;
  uint64_t dropped = 0;
  uint32_t tenants_down = 0;
  /// Completed requests per million fleet cycles.
  double throughput_per_mcycle = 0.0;

  // ---- SLO monitor results (rendered only when an SLO was set, so the
  // JSON of an un-monitored run — BENCH_serve.json — is byte-unchanged) --
  bool slo_enabled = false;
  std::string slo_metric;       // "p50" / "p99" / "p999"
  uint64_t slo_threshold = 0;   // cycles
  uint64_t slo_window = 0;      // cycles
  uint64_t slo_windows = 0;     // tenant-windows evaluated (>=1 completion)
  uint64_t slo_breaches = 0;    // of those, windows over the threshold
  /// Fraction of evaluated windows that breached (error-budget burn).
  double slo_burn_rate = 0.0;
  /// The objective percentile over *all* completed requests, fleet-wide.
  uint64_t slo_overall = 0;
  /// slo_overall > slo_threshold — gates `vcfr serve` exit status (2).
  bool slo_violated = false;

  // ---- leak telemetry (rendered only when ServeConfig.taint was set, so
  // an untainted run's JSON/CSV — BENCH_serve.json — is byte-unchanged) --
  bool taint_enabled = false;
  /// Kernel-wide sink firings (includes boot-life leaks outside requests).
  uint64_t leaks = 0;
  /// Fresh placements scheduled by --rerand-on-leak.
  uint64_t leak_rerands = 0;

  std::vector<TenantReport> tenants;

  /// Deterministic JSON (fixed key order, integers + %.6g doubles).
  [[nodiscard]] std::string to_json() const;
  /// Per-request CSV, rows sorted by (tenant, request id).
  [[nodiscard]] std::string latency_csv() const;
  /// Short human-readable digest for the CLI.
  [[nodiscard]] std::string summary() const;
};

/// Exact nearest-rank percentile over a sorted ascending sample vector:
/// the k-th smallest with k = ceil(permille/1000 * n), clamped to [1, n].
/// Returns 0 for an empty vector.
[[nodiscard]] uint64_t nearest_rank_permille(
    const std::vector<uint64_t>& sorted, uint32_t permille);

/// Display name for an SLO percentile ("p50" / "p99" / "p999"; other
/// permille values render as "p<permille>m").
[[nodiscard]] std::string slo_metric_name(uint32_t permille);

/// Builds the fleet, spawns the tenants, drives the request streams to
/// completion, and returns the report. `telemetry` (optional) receives
/// fleet.* as usual plus the fleet.serve.* serving counters.
[[nodiscard]] ServeReport run_serve(const ServeConfig& config,
                                    telemetry::Telemetry* telemetry = nullptr);

}  // namespace vcfr::serve
