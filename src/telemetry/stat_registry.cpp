#include "telemetry/stat_registry.hpp"

#include <bit>
#include <stdexcept>

#include "telemetry/json_writer.hpp"

namespace vcfr::telemetry {

uint32_t Histogram::bucket_of(uint64_t value) {
  return static_cast<uint32_t>(std::bit_width(value));
}

void Histogram::record(uint64_t value) {
  const uint32_t bucket = std::min<uint32_t>(
      bucket_of(value), static_cast<uint32_t>(buckets_.size()) - 1);
  ++buckets_[bucket];
  ++count_;
  sum_ += value;
  if (value > max_) max_ = value;
}

double StatRegistry::Stat::value() const {
  switch (kind) {
    case StatKind::kCounter:
      return static_cast<double>(count_value());
    case StatKind::kGauge:
      return fn();
    case StatKind::kHistogram:
      return 0.0;
  }
  return 0.0;
}

Scope Scope::scope(const std::string& name) const {
  return Scope(registry_, path_.empty() ? name : path_ + "." + name);
}

void Scope::counter(const std::string& name, const uint64_t* cell) const {
  if (registry_ == nullptr) return;
  StatRegistry::Stat s;
  s.kind = StatKind::kCounter;
  s.cell = cell;
  registry_->add(scope(name).path_, std::move(s));
}

void Scope::counter_fn(const std::string& name,
                       std::function<uint64_t()> fn) const {
  if (registry_ == nullptr) return;
  StatRegistry::Stat s;
  s.kind = StatKind::kCounter;
  s.fn_u64 = std::move(fn);
  registry_->add(scope(name).path_, std::move(s));
}

void Scope::gauge(const std::string& name, std::function<double()> fn) const {
  if (registry_ == nullptr) return;
  StatRegistry::Stat s;
  s.kind = StatKind::kGauge;
  s.fn = std::move(fn);
  registry_->add(scope(name).path_, std::move(s));
}

Histogram* Scope::histogram(const std::string& name, uint32_t buckets) const {
  if (registry_ == nullptr) return nullptr;
  StatRegistry::Stat s;
  s.kind = StatKind::kHistogram;
  s.hist = std::make_unique<Histogram>(buckets);
  Histogram* out = s.hist.get();
  registry_->add(scope(name).path_, std::move(s));
  return out;
}

void StatRegistry::add(const std::string& name, Stat stat) {
  const auto [it, inserted] = stats_.emplace(name, std::move(stat));
  (void)it;
  if (!inserted) {
    throw std::logic_error("telemetry: duplicate stat name: " + name);
  }
}

void StatRegistry::freeze() {
  for (auto& [name, stat] : stats_) {
    if (stat.kind == StatKind::kCounter) {
      const uint64_t v = stat.count_value();
      stat.cell = nullptr;
      stat.fn_u64 = [v] { return v; };
    } else if (stat.kind == StatKind::kGauge) {
      const double v = stat.fn();
      stat.fn = [v] { return v; };
    }
  }
}

std::string StatRegistry::to_json() const {
  JsonWriter w;
  w.begin_object(JsonWriter::Style::kPretty);

  w.key("counters").begin_object(JsonWriter::Style::kPretty);
  for (const auto& [name, stat] : stats_) {
    if (stat.kind != StatKind::kCounter) continue;
    w.key(name).value(stat.count_value());
  }
  w.end_object();

  w.key("gauges").begin_object(JsonWriter::Style::kPretty);
  for (const auto& [name, stat] : stats_) {
    if (stat.kind != StatKind::kGauge) continue;
    w.key(name).value(stat.fn());
  }
  w.end_object();

  w.key("histograms").begin_object(JsonWriter::Style::kPretty);
  for (const auto& [name, stat] : stats_) {
    if (stat.kind != StatKind::kHistogram) continue;
    const Histogram& h = *stat.hist;
    w.key(name).begin_object();
    w.key("count").value(h.count());
    w.key("sum").value(h.sum());
    w.key("max").value(h.max());
    w.key("mean").value(h.mean());
    // Trailing zero buckets are dropped so the rendering is compact and
    // independent of the configured bucket count.
    size_t last = h.buckets().size();
    while (last > 0 && h.buckets()[last - 1] == 0) --last;
    w.key("buckets").begin_array();
    for (size_t i = 0; i < last; ++i) w.value(h.buckets()[i]);
    w.end_array();
    w.end_object();
  }
  w.end_object();

  w.end_object();
  return w.str() + "\n";
}

}  // namespace vcfr::telemetry
