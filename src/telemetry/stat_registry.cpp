#include "telemetry/stat_registry.hpp"

#include <bit>
#include <cmath>
#include <stdexcept>

#include "telemetry/json_writer.hpp"

namespace vcfr::telemetry {

uint32_t Histogram::bucket_of(uint64_t value) {
  return static_cast<uint32_t>(std::bit_width(value));
}

void Histogram::record(uint64_t value) {
  const uint32_t bucket = std::min<uint32_t>(
      bucket_of(value), static_cast<uint32_t>(buckets_.size()) - 1);
  ++buckets_[bucket];
  ++count_;
  sum_ += value;
  if (value > max_) max_ = value;
}

double Histogram::percentile(double p) const {
  if (count_ == 0) return 0.0;
  if (p < 0.0) p = 0.0;
  if (p > 100.0) p = 100.0;
  // Nearest-rank: the k-th smallest sample with k = ceil(p/100 * count),
  // clamped to [1, count] so p=0 still selects a real sample.
  uint64_t rank = static_cast<uint64_t>(
      std::ceil(p / 100.0 * static_cast<double>(count_)));
  if (rank < 1) rank = 1;
  if (rank > count_) rank = count_;

  uint64_t seen = 0;
  for (size_t i = 0; i < buckets_.size(); ++i) {
    const uint64_t in_bucket = buckets_[i];
    if (in_bucket == 0 || seen + in_bucket < rank) {
      seen += in_bucket;
      continue;
    }
    if (i == 0) return 0.0;  // the dedicated zero bucket
    // Value range covered by bucket i: [2^(i-1), 2^i - 1]. The last
    // bucket also absorbs overflow, so its true top is the recorded max
    // (the global max always lives in the highest occupied bucket; a
    // sole sample there therefore IS the max and reports it exactly).
    const double lo = std::ldexp(1.0, static_cast<int>(i) - 1);
    double hi = std::ldexp(1.0, static_cast<int>(i)) - 1.0;
    if (i == buckets_.size() - 1) {
      hi = static_cast<double>(max_);
      if (in_bucket == 1) return hi;
    }
    if (hi < lo) hi = lo;
    // Linear interpolation of the rank's position within the bucket; a
    // single-sample bucket reports the low edge.
    const double f =
        in_bucket <= 1 ? 0.0
                       : static_cast<double>(rank - seen - 1) /
                             static_cast<double>(in_bucket - 1);
    return lo + f * (hi - lo);
  }
  return static_cast<double>(max_);
}

double StatRegistry::Stat::value() const {
  switch (kind) {
    case StatKind::kCounter:
      return static_cast<double>(count_value());
    case StatKind::kGauge:
      return fn();
    case StatKind::kHistogram:
      return 0.0;
  }
  return 0.0;
}

Scope Scope::scope(const std::string& name) const {
  return Scope(registry_, path_.empty() ? name : path_ + "." + name);
}

void Scope::counter(const std::string& name, const uint64_t* cell) const {
  if (registry_ == nullptr) return;
  StatRegistry::Stat s;
  s.kind = StatKind::kCounter;
  s.cell = cell;
  registry_->add(scope(name).path_, std::move(s));
}

void Scope::counter_fn(const std::string& name,
                       std::function<uint64_t()> fn) const {
  if (registry_ == nullptr) return;
  StatRegistry::Stat s;
  s.kind = StatKind::kCounter;
  s.fn_u64 = std::move(fn);
  registry_->add(scope(name).path_, std::move(s));
}

void Scope::gauge(const std::string& name, std::function<double()> fn) const {
  if (registry_ == nullptr) return;
  StatRegistry::Stat s;
  s.kind = StatKind::kGauge;
  s.fn = std::move(fn);
  registry_->add(scope(name).path_, std::move(s));
}

Histogram* Scope::histogram(const std::string& name, uint32_t buckets) const {
  if (registry_ == nullptr) return nullptr;
  StatRegistry::Stat s;
  s.kind = StatKind::kHistogram;
  s.hist = std::make_unique<Histogram>(buckets);
  Histogram* out = s.hist.get();
  registry_->add(scope(name).path_, std::move(s));
  return out;
}

void StatRegistry::add(const std::string& name, Stat stat) {
  const auto [it, inserted] = stats_.emplace(name, std::move(stat));
  (void)it;
  if (!inserted) {
    throw std::logic_error("telemetry: duplicate stat name: " + name);
  }
}

void StatRegistry::freeze() {
  for (auto& [name, stat] : stats_) {
    if (stat.kind == StatKind::kCounter) {
      const uint64_t v = stat.count_value();
      stat.cell = nullptr;
      stat.fn_u64 = [v] { return v; };
    } else if (stat.kind == StatKind::kGauge) {
      const double v = stat.fn();
      stat.fn = [v] { return v; };
    }
  }
}

std::string StatRegistry::to_json() const {
  JsonWriter w;
  w.begin_object(JsonWriter::Style::kPretty);

  w.key("counters").begin_object(JsonWriter::Style::kPretty);
  for (const auto& [name, stat] : stats_) {
    if (stat.kind != StatKind::kCounter) continue;
    w.key(name).value(stat.count_value());
  }
  w.end_object();

  w.key("gauges").begin_object(JsonWriter::Style::kPretty);
  for (const auto& [name, stat] : stats_) {
    if (stat.kind != StatKind::kGauge) continue;
    w.key(name).value(stat.fn());
  }
  w.end_object();

  w.key("histograms").begin_object(JsonWriter::Style::kPretty);
  for (const auto& [name, stat] : stats_) {
    if (stat.kind != StatKind::kHistogram) continue;
    const Histogram& h = *stat.hist;
    w.key(name).begin_object();
    w.key("count").value(h.count());
    w.key("sum").value(h.sum());
    w.key("max").value(h.max());
    w.key("mean").value(h.mean());
    w.key("p50").value(h.percentile(50.0));
    w.key("p99").value(h.percentile(99.0));
    w.key("p999").value(h.percentile(99.9));
    // Trailing zero buckets are dropped so the rendering is compact and
    // independent of the configured bucket count.
    size_t last = h.buckets().size();
    while (last > 0 && h.buckets()[last - 1] == 0) --last;
    w.key("buckets").begin_array();
    for (size_t i = 0; i < last; ++i) w.value(h.buckets()[i]);
    w.end_array();
    w.end_object();
  }
  w.end_object();

  w.end_object();
  return w.str() + "\n";
}

}  // namespace vcfr::telemetry
