#include "telemetry/json_writer.hpp"

#include <cstdio>

namespace vcfr::telemetry {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

std::string json_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

std::string JsonWriter::indent() const {
  return std::string(2 * levels_.size(), ' ');
}

void JsonWriter::next_member() {
  if (key_pending_) {
    // Value completing a key: the separator was emitted with the key.
    key_pending_ = false;
    return;
  }
  if (levels_.empty()) return;  // root value
  Level& level = levels_.back();
  if (level.members > 0) {
    out_ << (level.style == Style::kPretty ? ",\n" + indent() : ", ");
  } else if (level.style == Style::kPretty) {
    out_ << "\n" << indent();
  }
  ++level.members;
}

void JsonWriter::open(char c, Style style) {
  next_member();
  out_ << c;
  levels_.push_back({style, 0});
}

void JsonWriter::close(char c) {
  const Level level = levels_.back();
  levels_.pop_back();
  if (level.style == Style::kPretty && level.members > 0) {
    out_ << "\n" << indent();
  }
  out_ << c;
}

JsonWriter& JsonWriter::begin_object(Style style) {
  open('{', style);
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  close('}');
  return *this;
}

JsonWriter& JsonWriter::begin_array(Style style) {
  open('[', style);
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  close(']');
  return *this;
}

JsonWriter& JsonWriter::key(const std::string& k) {
  next_member();
  out_ << '"' << json_escape(k) << "\": ";
  key_pending_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(uint64_t v) {
  next_member();
  out_ << v;
  return *this;
}

JsonWriter& JsonWriter::value(int64_t v) {
  next_member();
  out_ << v;
  return *this;
}

JsonWriter& JsonWriter::value(double v) {
  next_member();
  out_ << json_double(v);
  return *this;
}

JsonWriter& JsonWriter::value(bool v) {
  next_member();
  out_ << (v ? "true" : "false");
  return *this;
}

JsonWriter& JsonWriter::value(const std::string& v) {
  next_member();
  out_ << '"' << json_escape(v) << '"';
  return *this;
}

JsonWriter& JsonWriter::raw_value(const std::string& json) {
  next_member();
  out_ << json;
  return *this;
}

}  // namespace vcfr::telemetry
