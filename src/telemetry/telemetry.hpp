// One telemetry session: the stat registry, the event tracer, and the
// time-series sampler, bundled so drivers (the CLI, the kernel, tests)
// configure observability in one place and components attach with a
// couple of pointers.
//
// Cost model: everything here is opt-in and cheap to leave out. A
// component holds a nullable TraceLane* / Sampler* — the disabled path
// is a single pointer test per would-be event — and stat registration
// binds pointers once, reading them only at export time. With no
// Telemetry attached the simulation runs exactly as before.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "telemetry/journal.hpp"
#include "telemetry/sampler.hpp"
#include "telemetry/stat_registry.hpp"
#include "telemetry/trace.hpp"

namespace vcfr::telemetry {

struct TelemetryConfig {
  /// Master switch for event tracing; lanes are created only when on.
  bool trace = false;
  /// Ring capacity per lane (events); oldest events drop when exceeded.
  size_t trace_lane_capacity = 1 << 16;
  /// Registry snapshot period in simulated cycles; 0 disables sampling.
  uint64_t sample_interval = 0;
  /// Flight-recorder journal of kernel lifecycle events.
  bool journal = false;
  /// Journal ring capacity (entries); oldest entries drop when exceeded.
  size_t journal_capacity = 4096;
};

class Telemetry {
 public:
  explicit Telemetry(const TelemetryConfig& config = {})
      : config_(config), sampler_(&registry_) {
    if (config.trace) {
      tracer_ = std::make_unique<Tracer>(config.trace_lane_capacity);
      tracer_->register_stats(
          registry_.root().scope("telemetry").scope("trace"));
    }
    if (config.journal) {
      journal_ = std::make_unique<Journal>(config.journal_capacity);
      // Overflow visibility, mirroring telemetry.trace.dropped: the ring
      // silently evicting its oldest entries is exactly the failure mode
      // a post-mortem must know about.
      const Journal* j = journal_.get();
      registry_.root().scope("telemetry").scope("journal").counter_fn(
          "dropped", [j] { return j->dropped(); });
    }
    sampler_.set_interval(config.sample_interval);
  }

  // Self-referential (the sampler points at our registry) and handed out
  // by address to every component — pin the object.
  Telemetry(const Telemetry&) = delete;
  Telemetry& operator=(const Telemetry&) = delete;

  [[nodiscard]] const TelemetryConfig& config() const { return config_; }
  [[nodiscard]] StatRegistry& registry() { return registry_; }
  [[nodiscard]] const StatRegistry& registry() const { return registry_; }
  [[nodiscard]] Scope root() { return registry_.root(); }

  /// Null when tracing is disabled — callers hand the (possibly null)
  /// lane straight to components.
  [[nodiscard]] TraceLane* lane(uint32_t id) {
    return tracer_ ? tracer_->lane(id) : nullptr;
  }
  [[nodiscard]] Tracer* tracer() { return tracer_.get(); }

  /// Null when the journal is disabled.
  [[nodiscard]] Journal* journal() { return journal_.get(); }

  [[nodiscard]] Sampler& sampler() { return sampler_; }
  [[nodiscard]] const Sampler& sampler() const { return sampler_; }

 private:
  TelemetryConfig config_;
  StatRegistry registry_;
  std::unique_ptr<Tracer> tracer_;
  std::unique_ptr<Journal> journal_;
  Sampler sampler_;
};

}  // namespace vcfr::telemetry
