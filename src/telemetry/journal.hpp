// Flight recorder: a bounded, deterministic journal of kernel-level
// lifecycle events (spawns, faults, watchdog/budget kills, restarts,
// re-randomization epochs, tenant-down verdicts), each stamped with the
// simulated cycle and — when one is in flight — the request id it hit.
//
// The journal answers "what happened right before this tenant died?"
// without replaying the run: the kernel logs as it goes, the ring keeps
// the most recent `capacity` entries (oldest dropped, counted), and the
// CLI dumps the JSONL post-mortem when a tenant goes down or
// --journal-out is set. Entries carry only simulated state, so
// same-seed runs produce byte-identical journals.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace vcfr::telemetry {

enum class JournalKind : uint8_t {
  kSpawn,        // process admitted (arg = home core; detail = workload)
  kFault,        // typed trap raised (detail = fault kind)
  kWatchdog,     // watchdog kill (arg = life instructions at the kill)
  kBudget,       // instruction budget exhausted (arg = total instructions)
  kRestart,      // kernel restarted the process (arg = restart count)
  kRerandEpoch,  // live re-randomization epoch bump (arg = regions patched)
  kTenantDown,   // tenant unrecoverable (arg = queued requests dropped)
  kCheckpoint,   // fleet state serialized (arg = scheduler round)
  kRestore,      // run resumed from a checkpoint (arg = scheduler round)
  kRerandForced, // forced-quiescence re-rand: the deferral cap expired and
                 // the kernel re-randomized around pinned registers via
                 // alias translation entries (arg = deferral streak broken)
  kLeak,         // taint sink fired: a randomized-layout secret reached
                 // program output (arg = propagation depth; detail =
                 // origin/rpc/epoch/sink provenance)
};

[[nodiscard]] const char* journal_kind_name(JournalKind kind);

struct JournalEntry {
  uint64_t cycle = 0;  // owning core's simulated cycle
  JournalKind kind = JournalKind::kSpawn;
  uint32_t pid = 0;
  int64_t req = -1;    // in-flight request id, -1 = none
  uint64_t arg = 0;    // kind-specific detail (see JournalKind)
  std::string detail;  // optional human string (workload, fault kind)
};

class Journal {
 public:
  explicit Journal(size_t capacity = 4096)
      : capacity_(capacity == 0 ? 1 : capacity) {}

  void log(JournalEntry entry);

  /// Retained entries, oldest first.
  [[nodiscard]] std::vector<JournalEntry> entries() const;
  [[nodiscard]] uint64_t dropped() const { return dropped_; }

  /// All-time per-kind totals (counts entries the ring already evicted).
  [[nodiscard]] std::map<std::string, uint64_t> counts() const;

  /// One JSON object per line, fixed key order
  /// {"cycle","kind","pid"[,"req"],"arg"[,"detail"]}, oldest first.
  [[nodiscard]] std::string to_jsonl() const;

 private:
  size_t capacity_;
  std::vector<JournalEntry> ring_;
  size_t next_ = 0;   // slot the next entry lands in
  size_t count_ = 0;  // valid entries (<= capacity)
  uint64_t dropped_ = 0;
  std::map<std::string, uint64_t> counts_;
};

}  // namespace vcfr::telemetry
