// Cycle-stamped event tracing with bounded ring buffers and a Chrome
// trace-event JSON export (load the file at https://ui.perfetto.dev).
//
// One TraceLane per event producer that may run on its own host thread
// (each sim::CpuCore, plus one lane for the kernel), so the fleet's
// parallel execute phase records without locks: a lane is only ever
// written by its owning core's thread, and the kernel writes to core
// lanes only during the serial dispatch/commit phases.
//
// Every event carries the simulated cycle (never wallclock), the lane
// (rendered as the Chrome `pid` — one Perfetto track group per core)
// and the owning process's address-space id (rendered as the Chrome
// `tid` — one lane per process inside the core's track group). The
// merged export is sorted by (cycle, lane, intra-lane order), making it
// byte-identical across same-seed runs even when host threading
// interleaves differently.
//
// Lanes are bounded rings: when full, the oldest events are overwritten
// and counted as dropped (the export keeps the most recent window).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "telemetry/stat_registry.hpp"

namespace vcfr::telemetry {

enum class TraceEventType : uint8_t {
  kFetchStall,     // IL1 instruction-fetch miss; dur = added latency
  kDrcMiss,        // DRC lookup missed (instant; arg = key)
  kTableWalk,      // translation-table walk; dur = walk latency
  kBitmapMiss,     // return-bitmap cache miss; dur = refill latency
  kSlice,          // scheduler time slice; dur = slice cycles, arg = instrs
  kContextSwitch,  // address-space change; dur = switch overhead
  kRerandEpoch,    // live re-randomization epoch bump (arg = regions patched)
  kRoundCommit,    // shared-L2 round commit (arg = round number)
  kFaultInject,    // injected corruption landed (instant; arg = address)
  kRestart,        // kernel restarted a process (arg = restart count)
  // Golden-model (functional emulator) events; the "cycle" is the
  // instruction index, which is still deterministic and monotonic.
  kDerand,         // target de-randomization (instant; arg = derand key)
  kRand,           // return-address randomization (instant; arg = rand key)
  kBitmapLoad,     // auto-de-randomized load of a marked slot (arg = addr)
  // Request-lifecycle spans (src/serve/): one tiled set per request so
  // queue + run + restart_loss + commit_stall == completion - arrival
  // (exact conservation; the tiles are the *breakdown*, laid end-to-end
  // from the arrival cycle, not the chronological interleaving). arg =
  // the request's flow id (request_flow_id).
  kReqQueue,        // waiting in the tenant queue / preempted
  kReqRun,          // executing slices (+ dispatch overhead)
  kReqRestartLoss,  // overlapped with crash→restart downtime
  kReqCommitStall,  // shared-L2 round-commit penalties
  // Chrome *flow* events (ph "s"/"t"/"f") stitching one request's hops
  // across lanes in Perfetto: arrival → delivery → each slice →
  // fault → completion. All three share name "req" / cat "serve" and
  // bind by `id` (= arg = request_flow_id) — every "s" must have a
  // terminating "f".
  kReqFlowStart,
  kReqFlowStep,
  kReqFlowEnd,
  kLeak,  // taint sink fired on this lane (instant; arg = leak depth)
};

[[nodiscard]] const char* trace_event_name(TraceEventType type);
[[nodiscard]] const char* trace_event_category(TraceEventType type);

/// Deterministic Chrome flow id for request `req` of tenant `pid`. Flow
/// events bind "s"/"t"/"f" by (cat, id), so the id must be unique per
/// request chain across the whole trace: tenant in the high bits, the
/// per-tenant request sequence number in the low 40.
[[nodiscard]] constexpr uint64_t request_flow_id(uint32_t pid, uint64_t req) {
  return ((static_cast<uint64_t>(pid) + 1) << 40) |
         (req & ((1ull << 40) - 1));
}

struct TraceEvent {
  uint64_t cycle = 0;  // start, in the owning core's simulated cycles
  uint64_t dur = 0;    // 0 = instant
  uint32_t asid = 0;   // owning process (Chrome tid)
  uint64_t arg = 0;    // event-specific detail (key/epoch/round/...)
  TraceEventType type = TraceEventType::kFetchStall;
};

class TraceLane {
 public:
  TraceLane(uint32_t lane_id, size_t capacity);

  void span(TraceEventType type, uint32_t asid, uint64_t cycle, uint64_t dur,
            uint64_t arg = 0) {
    push({cycle, dur, asid, arg, type});
  }
  void instant(TraceEventType type, uint32_t asid, uint64_t cycle,
               uint64_t arg = 0) {
    push({cycle, 0, asid, arg, type});
  }

  /// Buffered events, oldest first.
  [[nodiscard]] std::vector<TraceEvent> events() const;
  [[nodiscard]] uint64_t dropped() const { return dropped_; }
  [[nodiscard]] uint32_t lane_id() const { return lane_id_; }

 private:
  void push(const TraceEvent& event);

  uint32_t lane_id_;
  std::vector<TraceEvent> ring_;
  size_t next_ = 0;    // slot the next event lands in
  size_t count_ = 0;   // valid events (<= capacity)
  uint64_t dropped_ = 0;
};

class Tracer {
 public:
  explicit Tracer(size_t lane_capacity = 1 << 16)
      : lane_capacity_(lane_capacity) {}

  /// Returns lane `id`, creating it on first use. Creation is not
  /// thread-safe: create every lane before parallel recording starts
  /// (and call seal() once they all exist — see below).
  [[nodiscard]] TraceLane* lane(uint32_t id);

  /// Declares the lane set complete. Lane *creation* after this point is
  /// a driver bug (it would race the parallel execute phase) and trips a
  /// debug assertion; looking up existing lanes stays valid. The kernel
  /// seals after pre-creating every core lane plus its own.
  void seal() { sealed_ = true; }
  [[nodiscard]] bool sealed() const { return sealed_; }

  /// Returns lane `id` if it exists, else null — never creates.
  [[nodiscard]] const TraceLane* find_lane(uint32_t id) const;
  /// All lanes in ascending id order (export/testing).
  [[nodiscard]] std::vector<const TraceLane*> lanes() const;

  /// Registers the drop counters with a stat registry scope (normally
  /// `telemetry.trace`): `dropped` (total) immediately, plus one
  /// `lane<N>.dropped` per lane as lanes are created.
  void register_stats(const Scope& scope);

  /// Perfetto display names for the track group (`pid`, our lane) and
  /// the per-process rows (`tid`, our asid) inside it.
  void name_lane(uint32_t lane, const std::string& name);
  void name_asid(uint32_t lane, uint32_t asid, const std::string& name);

  [[nodiscard]] uint64_t dropped() const;

  /// Buffered events per event label, across all lanes — the flow types
  /// report as "req.s"/"req.t"/"req.f" so flow matching is countable
  /// without parsing the JSON. Deterministic (sorted keys).
  [[nodiscard]] std::map<std::string, uint64_t> event_counts() const;

  /// Chrome trace-event JSON: metadata first, then all lanes' events
  /// merged in deterministic (cycle, lane, intra-lane order) order.
  /// Request flow events render as ph "s"/"t"/"f" with their flow `id`.
  [[nodiscard]] std::string to_chrome_json() const;

 private:
  size_t lane_capacity_;
  bool sealed_ = false;
  std::map<uint32_t, std::unique_ptr<TraceLane>> lanes_;
  std::map<uint32_t, std::string> lane_names_;
  std::map<std::pair<uint32_t, uint32_t>, std::string> asid_names_;
  std::unique_ptr<Scope> stats_scope_;
};

}  // namespace vcfr::telemetry
