#include "telemetry/sampler.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <numeric>
#include <sstream>

#include "telemetry/json_writer.hpp"

namespace vcfr::telemetry {

void Sampler::capture_epoch() {
  Epoch epoch;
  epoch.registry_size = registry_->stats().size();
  for (const auto& [name, stat] : registry_->stats()) {
    if (stat.kind == StatKind::kHistogram) {
      // A histogram samples as its reconstructed tail percentiles.
      epoch.columns.push_back(name + ".p50");
      epoch.sources.push_back({&stat, 1});
      epoch.columns.push_back(name + ".p99");
      epoch.sources.push_back({&stat, 2});
      continue;
    }
    epoch.columns.push_back(name);
    epoch.sources.push_back({&stat, 0});
  }
  // The zero-fill merge-walk in to_csv/to_json requires every epoch's
  // columns sorted; appending ".p50"/".p99" can break the registry's
  // name order (e.g. "h.p50" sorts after "h.child"), so re-sort.
  std::vector<size_t> order(epoch.columns.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&epoch](size_t a, size_t b) {
    return epoch.columns[a] < epoch.columns[b];
  });
  Epoch sorted;
  sorted.registry_size = epoch.registry_size;
  for (const size_t i : order) {
    sorted.columns.push_back(std::move(epoch.columns[i]));
    sorted.sources.push_back(epoch.sources[i]);
  }
  epochs_.push_back(std::move(sorted));
}

void Sampler::take(uint64_t cycle) {
  // stats() is a node-based map: Stat pointers stay valid as it grows, so
  // earlier epochs' sources never dangle. Size is a sufficient trigger —
  // registration is add-only.
  if (epochs_.empty() ||
      registry_->stats().size() != epochs_.back().registry_size) {
    capture_epoch();
  }
  const Epoch& epoch = epochs_.back();
  row_epoch_.push_back(static_cast<uint32_t>(epochs_.size() - 1));
  cycles_.push_back(cycle);
  std::vector<double> row;
  row.reserve(epoch.sources.size());
  for (const Source& source : epoch.sources) {
    switch (source.part) {
      case 1:
        row.push_back(source.stat->hist->percentile(50));
        break;
      case 2:
        row.push_back(source.stat->hist->percentile(99));
        break;
      default:
        row.push_back(source.stat->value());
        break;
    }
  }
  values_.push_back(std::move(row));
  if (interval_ != 0) {
    next_ = cycle - cycle % interval_ + interval_;
  }
}

std::string Sampler::render(size_t row, size_t col) const {
  const Epoch& epoch = epochs_[row_epoch_[row]];
  const double v = values_[row][col];
  const Source& source = epoch.sources[col];
  // Percentile parts render like gauges (interpolation is fractional).
  if (source.part == 0 && source.stat->kind == StatKind::kCounter) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%" PRIu64, static_cast<uint64_t>(v));
    return buf;
  }
  return json_double(v);
}

std::string Sampler::to_csv() const {
  const std::vector<std::string>& cols = columns();
  std::ostringstream o;
  o << "cycle";
  for (const auto& c : cols) o << "," << c;
  o << "\n";
  for (size_t r = 0; r < cycles_.size(); ++r) {
    o << cycles_[r];
    // The row's epoch columns are a sorted subsequence of the union:
    // merge-walk, zero-filling columns the row never observed.
    const Epoch& epoch = epochs_[row_epoch_[r]];
    size_t ec = 0;
    for (const std::string& name : cols) {
      if (ec < epoch.columns.size() && epoch.columns[ec] == name) {
        o << "," << render(r, ec);
        ++ec;
      } else {
        o << ",0";
      }
    }
    o << "\n";
  }
  return o.str();
}

std::string Sampler::to_json() const {
  const std::vector<std::string>& cols = columns();
  JsonWriter w;
  w.begin_object(JsonWriter::Style::kPretty);
  w.key("interval").value(interval_);
  w.key("columns").begin_array();
  w.value("cycle");
  for (const auto& c : cols) w.value(c);
  w.end_array();
  w.key("samples").begin_array(JsonWriter::Style::kPretty);
  for (size_t r = 0; r < cycles_.size(); ++r) {
    w.begin_array();
    w.value(cycles_[r]);
    const Epoch& epoch = epochs_[row_epoch_[r]];
    size_t ec = 0;
    for (const std::string& name : cols) {
      if (ec < epoch.columns.size() && epoch.columns[ec] == name) {
        w.raw_value(render(r, ec));
        ++ec;
      } else {
        w.raw_value("0");
      }
    }
    w.end_array();
  }
  w.end_array();
  w.end_object();
  return w.str() + "\n";
}

}  // namespace vcfr::telemetry
