#include "telemetry/sampler.hpp"

#include <cinttypes>
#include <cstdio>
#include <sstream>

#include "telemetry/json_writer.hpp"

namespace vcfr::telemetry {

void Sampler::capture_columns() {
  for (const auto& [name, stat] : registry_->stats()) {
    if (stat.kind == StatKind::kHistogram) continue;
    columns_.push_back(name);
    sources_.push_back(&stat);
  }
}

void Sampler::take(uint64_t cycle) {
  if (columns_.empty()) capture_columns();
  cycles_.push_back(cycle);
  std::vector<double> row;
  row.reserve(sources_.size());
  for (const StatRegistry::Stat* stat : sources_) {
    row.push_back(stat->value());
  }
  values_.push_back(std::move(row));
  if (interval_ != 0) {
    next_ = cycle - cycle % interval_ + interval_;
  }
}

std::string Sampler::render(size_t row, size_t col) const {
  const double v = values_[row][col];
  if (sources_[col]->kind == StatKind::kCounter) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%" PRIu64, static_cast<uint64_t>(v));
    return buf;
  }
  return json_double(v);
}

std::string Sampler::to_csv() const {
  std::ostringstream o;
  o << "cycle";
  for (const auto& c : columns_) o << "," << c;
  o << "\n";
  for (size_t r = 0; r < cycles_.size(); ++r) {
    o << cycles_[r];
    for (size_t c = 0; c < columns_.size(); ++c) o << "," << render(r, c);
    o << "\n";
  }
  return o.str();
}

std::string Sampler::to_json() const {
  JsonWriter w;
  w.begin_object(JsonWriter::Style::kPretty);
  w.key("interval").value(interval_);
  w.key("columns").begin_array();
  w.value("cycle");
  for (const auto& c : columns_) w.value(c);
  w.end_array();
  w.key("samples").begin_array(JsonWriter::Style::kPretty);
  for (size_t r = 0; r < cycles_.size(); ++r) {
    w.begin_array();
    w.value(cycles_[r]);
    for (size_t c = 0; c < columns_.size(); ++c) w.raw_value(render(r, c));
    w.end_array();
  }
  w.end_array();
  w.end_object();
  return w.str() + "\n";
}

}  // namespace vcfr::telemetry
