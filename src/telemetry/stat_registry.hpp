// Hierarchical statistic registry — the single naming and export layer
// for every counter the model keeps.
//
// Components own their statistic storage exactly as before (the
// `*Stats` structs stay the architectural source of truth and their
// accessors keep working); what the registry adds is an enumerable,
// dot-separated namespace over that storage:
//
//   fleet.core0.il1.accesses        (counter — bound to a live uint64)
//   fleet.core0.ipc                 (gauge   — computed on read)
//   fleet.core0.drc.walk_cycles     (histogram — log2 buckets)
//
// Each simulated structure registers itself via `register_stats(Scope)`;
// the Scope names the position in the hierarchy and the component binds
// its fields. Reads happen only at snapshot/sample time, so registration
// costs nothing on the simulation hot path.
//
// Exports are deterministic: names are kept sorted, counters render as
// integers, gauges as %.6g, and nothing wall-clock-derived is ever
// registered.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace vcfr::telemetry {

/// Power-of-two bucketed histogram: bucket 0 counts zeros, bucket i>=1
/// counts values in [2^(i-1), 2^i). The last bucket absorbs overflow.
class Histogram {
 public:
  explicit Histogram(uint32_t buckets = 32) : buckets_(buckets, 0) {}

  /// Unclamped bucket index for `value` (== bit width of the value).
  [[nodiscard]] static uint32_t bucket_of(uint64_t value);

  void record(uint64_t value);

  /// Approximate quantile (`p` in [0, 100]) reconstructed from the log2
  /// buckets. The sample holding the nearest rank ceil(p/100 * count) is
  /// located by walking the bucket counts; its value is then linearly
  /// interpolated across the bucket's value range [2^(i-1), 2^i - 1]
  /// (rank position within the bucket maps linearly onto the range). The
  /// zero bucket reports 0 exactly, a single-sample bucket reports the
  /// range's low edge, and the last bucket — which also absorbs overflow —
  /// uses the recorded max() as its top (a sole sample there IS the max
  /// and reports it exactly). Returns 0 for an empty histogram.
  /// Exact per-value percentiles need the raw samples (the serve subsystem
  /// keeps them; see src/serve/); this is the best a frozen log2 summary
  /// can reconstruct.
  [[nodiscard]] double percentile(double p) const;

  [[nodiscard]] uint64_t count() const { return count_; }
  [[nodiscard]] uint64_t sum() const { return sum_; }
  [[nodiscard]] uint64_t max() const { return max_; }
  [[nodiscard]] double mean() const {
    return count_ == 0 ? 0.0
                       : static_cast<double>(sum_) / static_cast<double>(count_);
  }
  [[nodiscard]] const std::vector<uint64_t>& buckets() const {
    return buckets_;
  }

 private:
  std::vector<uint64_t> buckets_;
  uint64_t count_ = 0;
  uint64_t sum_ = 0;
  uint64_t max_ = 0;
};

enum class StatKind { kCounter, kGauge, kHistogram };

class StatRegistry;

/// Cheap handle naming one node of the registry hierarchy. Components
/// take a Scope in `register_stats()` and bind fields / open sub-scopes.
class Scope {
 public:
  Scope() = default;

  [[nodiscard]] Scope scope(const std::string& name) const;

  /// Binds a live counter cell. The component keeps writing the field;
  /// the registry reads it at export time. The cell must outlive the
  /// registry's exports.
  void counter(const std::string& name, const uint64_t* cell) const;

  /// Derived integer counter (e.g. a clock exposed only through an
  /// accessor). Rendered as an integer, unlike a gauge.
  void counter_fn(const std::string& name, std::function<uint64_t()> fn) const;

  /// Registers a computed (derived) value, e.g. a miss rate or IPC.
  void gauge(const std::string& name, std::function<double()> fn) const;

  /// Creates a registry-owned histogram and returns it for the component
  /// to record into (pointer stays valid for the registry's lifetime).
  Histogram* histogram(const std::string& name, uint32_t buckets = 32) const;

  [[nodiscard]] const std::string& path() const { return path_; }
  [[nodiscard]] bool attached() const { return registry_ != nullptr; }

 private:
  friend class StatRegistry;
  Scope(StatRegistry* registry, std::string path)
      : registry_(registry), path_(std::move(path)) {}

  StatRegistry* registry_ = nullptr;
  std::string path_;
};

class StatRegistry {
 public:
  struct Stat {
    StatKind kind = StatKind::kCounter;
    const uint64_t* cell = nullptr;        // kCounter (bound)
    std::function<uint64_t()> fn_u64;      // kCounter (derived)
    std::function<double()> fn;            // kGauge
    std::unique_ptr<Histogram> hist;       // kHistogram

    [[nodiscard]] uint64_t count_value() const {
      return cell != nullptr ? *cell : fn_u64();
    }
    /// Numeric read (counters and gauges; histograms read 0).
    [[nodiscard]] double value() const;
  };

  [[nodiscard]] Scope root() { return Scope(this, ""); }

  /// All stats, sorted by full dotted name.
  [[nodiscard]] const std::map<std::string, Stat>& stats() const {
    return stats_;
  }

  /// Deterministic snapshot: counters, gauges, and histograms as one
  /// JSON document (sorted flat names).
  [[nodiscard]] std::string to_json() const;

  /// Replaces every live binding (cell pointer, derived function) with
  /// its current value. Drivers whose components die before the registry
  /// is exported (e.g. `sim::simulate()`'s stack-local core) call this
  /// as the run ends, so later exports and samples read captured values
  /// instead of dangling pointers. Histograms are registry-owned and
  /// unaffected.
  void freeze();

 private:
  friend class Scope;
  void add(const std::string& name, Stat stat);

  std::map<std::string, Stat> stats_;
};

}  // namespace vcfr::telemetry
