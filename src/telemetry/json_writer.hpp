// Shared deterministic JSON rendering for every telemetry/report export.
//
// All JSON the system emits (fleet reports, --stats-json snapshots,
// Chrome trace files, BENCH_*.json) is compared byte-for-byte across
// same-seed runs, so rendering must be platform-stable: fixed key order
// is the caller's job, number formatting is pinned here (%.6g doubles,
// plain integers), and strings are escaped per RFC 8259 (quote,
// backslash, and all control characters — printable ASCII passes
// through unchanged).
#pragma once

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

namespace vcfr::telemetry {

/// Escapes `s` for inclusion in a JSON string literal. Uses the short
/// escapes JSON defines (\n, \t, ...) and \u00XX for the remaining
/// control characters.
[[nodiscard]] std::string json_escape(const std::string& s);

/// Platform-stable double rendering: %.6g (no long fraction tails, same
/// text on every libc we build against).
[[nodiscard]] std::string json_double(double v);

/// Structural writer with comma management and two container styles:
///
///   * kCompact — members on one line, separated by ", ";
///   * kPretty  — one member per line, indented two spaces per depth.
///
/// The mix reproduces the established report shape: a pretty top level
/// for readability, compact leaf objects so arrays of records stay one
/// record per line.
class JsonWriter {
 public:
  enum class Style { kCompact, kPretty };

  JsonWriter& begin_object(Style style = Style::kCompact);
  JsonWriter& end_object();
  JsonWriter& begin_array(Style style = Style::kCompact);
  JsonWriter& end_array();

  /// Emits `"k": ` (with any separator/indent due first).
  JsonWriter& key(const std::string& k);

  JsonWriter& value(uint64_t v);
  JsonWriter& value(int64_t v);
  JsonWriter& value(uint32_t v) { return value(static_cast<uint64_t>(v)); }
  JsonWriter& value(int v) { return value(static_cast<int64_t>(v)); }
  JsonWriter& value(double v);
  JsonWriter& value(bool v);
  JsonWriter& value(const std::string& v);
  JsonWriter& value(const char* v) { return value(std::string(v)); }

  /// Emits pre-rendered JSON as a member (separator/indent still managed).
  JsonWriter& raw_value(const std::string& json);

  [[nodiscard]] std::string str() const { return out_.str(); }

 private:
  struct Level {
    Style style;
    uint64_t members = 0;
  };

  /// Separator/indent due before the next member of the current level.
  void next_member();
  void open(char c, Style style);
  void close(char c);
  [[nodiscard]] std::string indent() const;

  std::ostringstream out_;
  std::vector<Level> levels_;
  bool key_pending_ = false;
};

}  // namespace vcfr::telemetry
