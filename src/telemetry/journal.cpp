#include "telemetry/journal.hpp"

#include "telemetry/json_writer.hpp"

namespace vcfr::telemetry {

const char* journal_kind_name(JournalKind kind) {
  switch (kind) {
    case JournalKind::kSpawn:
      return "spawn";
    case JournalKind::kFault:
      return "fault";
    case JournalKind::kWatchdog:
      return "watchdog";
    case JournalKind::kBudget:
      return "budget";
    case JournalKind::kRestart:
      return "restart";
    case JournalKind::kRerandEpoch:
      return "rerand_epoch";
    case JournalKind::kTenantDown:
      return "tenant_down";
    case JournalKind::kCheckpoint:
      return "checkpoint";
    case JournalKind::kRestore:
      return "restore";
    case JournalKind::kRerandForced:
      return "rerand_forced";
    case JournalKind::kLeak:
      return "leak";
  }
  return "?";
}

void Journal::log(JournalEntry entry) {
  ++counts_[journal_kind_name(entry.kind)];
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(entry));
    next_ = ring_.size() % capacity_;
    ++count_;
    return;
  }
  ++dropped_;
  ring_[next_] = std::move(entry);
  next_ = (next_ + 1) % capacity_;
}

std::vector<JournalEntry> Journal::entries() const {
  std::vector<JournalEntry> out;
  out.reserve(count_);
  // Oldest entry sits at `next_` once the ring has wrapped.
  const size_t start = count_ == capacity_ ? next_ : 0;
  for (size_t i = 0; i < count_; ++i) {
    out.push_back(ring_[(start + i) % ring_.size()]);
  }
  return out;
}

std::map<std::string, uint64_t> Journal::counts() const { return counts_; }

std::string Journal::to_jsonl() const {
  std::string out;
  for (const JournalEntry& e : entries()) {
    JsonWriter w;
    w.begin_object();
    w.key("cycle").value(e.cycle);
    w.key("kind").value(journal_kind_name(e.kind));
    w.key("pid").value(e.pid);
    if (e.req >= 0) w.key("req").value(e.req);
    w.key("arg").value(e.arg);
    if (!e.detail.empty()) w.key("detail").value(e.detail);
    w.end_object();
    out += w.str();
    out += '\n';
  }
  return out;
}

}  // namespace vcfr::telemetry
