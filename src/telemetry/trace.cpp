#include "telemetry/trace.hpp"

#include <algorithm>
#include <tuple>

#include "telemetry/json_writer.hpp"

namespace vcfr::telemetry {

const char* trace_event_name(TraceEventType type) {
  switch (type) {
    case TraceEventType::kFetchStall:
      return "fetch_stall";
    case TraceEventType::kDrcMiss:
      return "drc_miss";
    case TraceEventType::kTableWalk:
      return "table_walk";
    case TraceEventType::kBitmapMiss:
      return "bitmap_miss";
    case TraceEventType::kSlice:
      return "slice";
    case TraceEventType::kContextSwitch:
      return "context_switch";
    case TraceEventType::kRerandEpoch:
      return "rerand_epoch";
    case TraceEventType::kRoundCommit:
      return "round_commit";
    case TraceEventType::kFaultInject:
      return "fault_inject";
    case TraceEventType::kRestart:
      return "restart";
    case TraceEventType::kDerand:
      return "derand";
    case TraceEventType::kRand:
      return "rand";
    case TraceEventType::kBitmapLoad:
      return "bitmap_load";
  }
  return "?";
}

const char* trace_event_category(TraceEventType type) {
  switch (type) {
    case TraceEventType::kFetchStall:
    case TraceEventType::kBitmapMiss:
      return "mem";
    case TraceEventType::kDrcMiss:
    case TraceEventType::kTableWalk:
      return "drc";
    case TraceEventType::kSlice:
    case TraceEventType::kContextSwitch:
    case TraceEventType::kRerandEpoch:
    case TraceEventType::kRoundCommit:
    case TraceEventType::kFaultInject:
    case TraceEventType::kRestart:
      return "os";
    case TraceEventType::kDerand:
    case TraceEventType::kRand:
    case TraceEventType::kBitmapLoad:
      return "emu";
  }
  return "?";
}

TraceLane::TraceLane(uint32_t lane_id, size_t capacity)
    : lane_id_(lane_id), ring_(capacity == 0 ? 1 : capacity) {}

void TraceLane::push(const TraceEvent& event) {
  if (count_ == ring_.size()) ++dropped_;
  ring_[next_] = event;
  next_ = (next_ + 1) % ring_.size();
  if (count_ < ring_.size()) ++count_;
}

std::vector<TraceEvent> TraceLane::events() const {
  std::vector<TraceEvent> out;
  out.reserve(count_);
  // Oldest event sits at `next_` once the ring has wrapped.
  const size_t start = count_ == ring_.size() ? next_ : 0;
  for (size_t i = 0; i < count_; ++i) {
    out.push_back(ring_[(start + i) % ring_.size()]);
  }
  return out;
}

TraceLane* Tracer::lane(uint32_t id) {
  auto it = lanes_.find(id);
  if (it == lanes_.end()) {
    it = lanes_.emplace(id, std::make_unique<TraceLane>(id, lane_capacity_))
             .first;
  }
  return it->second.get();
}

void Tracer::name_lane(uint32_t lane, const std::string& name) {
  lane_names_[lane] = name;
}

void Tracer::name_asid(uint32_t lane, uint32_t asid, const std::string& name) {
  asid_names_[{lane, asid}] = name;
}

uint64_t Tracer::dropped() const {
  uint64_t total = 0;
  for (const auto& [id, lane] : lanes_) total += lane->dropped();
  return total;
}

std::string Tracer::to_chrome_json() const {
  JsonWriter w;
  w.begin_object(JsonWriter::Style::kPretty);
  // Cycles are not microseconds; this only affects Perfetto's ruler
  // label, never the (integer) timestamps themselves.
  w.key("displayTimeUnit").value("ns");
  w.key("meta_dropped_events").value(dropped());
  w.key("traceEvents").begin_array(JsonWriter::Style::kPretty);

  for (const auto& [lane, name] : lane_names_) {
    w.begin_object();
    w.key("name").value("process_name");
    w.key("ph").value("M");
    w.key("pid").value(lane);
    w.key("args").begin_object().key("name").value(name).end_object();
    w.end_object();
  }
  for (const auto& [key, name] : asid_names_) {
    w.begin_object();
    w.key("name").value("thread_name");
    w.key("ph").value("M");
    w.key("pid").value(key.first);
    w.key("tid").value(key.second);
    w.key("args").begin_object().key("name").value(name).end_object();
    w.end_object();
  }

  // Deterministic merge: (cycle, lane, intra-lane order). Intra-lane
  // order is the recording order, which same-seed runs reproduce.
  struct Keyed {
    TraceEvent event;
    uint32_t lane;
    size_t seq;
  };
  std::vector<Keyed> merged;
  for (const auto& [id, lane] : lanes_) {
    const auto events = lane->events();
    for (size_t i = 0; i < events.size(); ++i) {
      merged.push_back({events[i], id, i});
    }
  }
  std::sort(merged.begin(), merged.end(), [](const Keyed& a, const Keyed& b) {
    return std::tie(a.event.cycle, a.lane, a.seq) <
           std::tie(b.event.cycle, b.lane, b.seq);
  });

  for (const Keyed& k : merged) {
    const TraceEvent& e = k.event;
    w.begin_object();
    w.key("name").value(trace_event_name(e.type));
    w.key("cat").value(trace_event_category(e.type));
    if (e.dur > 0) {
      w.key("ph").value("X");
      w.key("ts").value(e.cycle);
      w.key("dur").value(e.dur);
    } else {
      w.key("ph").value("i");
      w.key("ts").value(e.cycle);
      w.key("s").value("t");
    }
    w.key("pid").value(k.lane);
    w.key("tid").value(e.asid);
    w.key("args").begin_object().key("v").value(e.arg).end_object();
    w.end_object();
  }

  w.end_array();
  w.end_object();
  return w.str() + "\n";
}

}  // namespace vcfr::telemetry
