#include "telemetry/trace.hpp"

#include <algorithm>
#include <cassert>
#include <tuple>

#include "telemetry/json_writer.hpp"

namespace vcfr::telemetry {

const char* trace_event_name(TraceEventType type) {
  switch (type) {
    case TraceEventType::kFetchStall:
      return "fetch_stall";
    case TraceEventType::kDrcMiss:
      return "drc_miss";
    case TraceEventType::kTableWalk:
      return "table_walk";
    case TraceEventType::kBitmapMiss:
      return "bitmap_miss";
    case TraceEventType::kSlice:
      return "slice";
    case TraceEventType::kContextSwitch:
      return "context_switch";
    case TraceEventType::kRerandEpoch:
      return "rerand_epoch";
    case TraceEventType::kRoundCommit:
      return "round_commit";
    case TraceEventType::kFaultInject:
      return "fault_inject";
    case TraceEventType::kRestart:
      return "restart";
    case TraceEventType::kDerand:
      return "derand";
    case TraceEventType::kRand:
      return "rand";
    case TraceEventType::kBitmapLoad:
      return "bitmap_load";
    case TraceEventType::kReqQueue:
      return "req_queue";
    case TraceEventType::kReqRun:
      return "req_run";
    case TraceEventType::kReqRestartLoss:
      return "req_restart_loss";
    case TraceEventType::kReqCommitStall:
      return "req_commit_stall";
    // Flow events all share one name: Perfetto binds s/t/f by (cat, id).
    case TraceEventType::kReqFlowStart:
    case TraceEventType::kReqFlowStep:
    case TraceEventType::kReqFlowEnd:
      return "req";
    case TraceEventType::kLeak:
      return "leak";
  }
  return "?";
}

const char* trace_event_category(TraceEventType type) {
  switch (type) {
    case TraceEventType::kFetchStall:
    case TraceEventType::kBitmapMiss:
      return "mem";
    case TraceEventType::kDrcMiss:
    case TraceEventType::kTableWalk:
      return "drc";
    case TraceEventType::kSlice:
    case TraceEventType::kContextSwitch:
    case TraceEventType::kRerandEpoch:
    case TraceEventType::kRoundCommit:
    case TraceEventType::kFaultInject:
    case TraceEventType::kRestart:
      return "os";
    case TraceEventType::kDerand:
    case TraceEventType::kRand:
    case TraceEventType::kBitmapLoad:
      return "emu";
    case TraceEventType::kReqQueue:
    case TraceEventType::kReqRun:
    case TraceEventType::kReqRestartLoss:
    case TraceEventType::kReqCommitStall:
    case TraceEventType::kReqFlowStart:
    case TraceEventType::kReqFlowStep:
    case TraceEventType::kReqFlowEnd:
      return "serve";
    case TraceEventType::kLeak:
      return "emu";
  }
  return "?";
}

namespace {

[[nodiscard]] bool is_flow(TraceEventType type) {
  return type == TraceEventType::kReqFlowStart ||
         type == TraceEventType::kReqFlowStep ||
         type == TraceEventType::kReqFlowEnd;
}

/// Chrome flow phase letter for the three flow event types.
[[nodiscard]] const char* flow_phase(TraceEventType type) {
  switch (type) {
    case TraceEventType::kReqFlowStart:
      return "s";
    case TraceEventType::kReqFlowStep:
      return "t";
    default:
      return "f";
  }
}

}  // namespace

TraceLane::TraceLane(uint32_t lane_id, size_t capacity)
    : lane_id_(lane_id), ring_(capacity == 0 ? 1 : capacity) {}

void TraceLane::push(const TraceEvent& event) {
  if (count_ == ring_.size()) ++dropped_;
  ring_[next_] = event;
  next_ = (next_ + 1) % ring_.size();
  if (count_ < ring_.size()) ++count_;
}

std::vector<TraceEvent> TraceLane::events() const {
  std::vector<TraceEvent> out;
  out.reserve(count_);
  // Oldest event sits at `next_` once the ring has wrapped.
  const size_t start = count_ == ring_.size() ? next_ : 0;
  for (size_t i = 0; i < count_; ++i) {
    out.push_back(ring_[(start + i) % ring_.size()]);
  }
  return out;
}

TraceLane* Tracer::lane(uint32_t id) {
  auto it = lanes_.find(id);
  if (it == lanes_.end()) {
    // Creating a lane after seal() would race the parallel execute
    // phase; every producer must pre-create its lane serially first.
    assert(!sealed_ && "Tracer::lane: new lane created after seal()");
    it = lanes_.emplace(id, std::make_unique<TraceLane>(id, lane_capacity_))
             .first;
    if (stats_scope_ != nullptr) {
      const TraceLane* created = it->second.get();
      stats_scope_->scope("lane" + std::to_string(id))
          .counter_fn("dropped", [created] { return created->dropped(); });
    }
  }
  return it->second.get();
}

const TraceLane* Tracer::find_lane(uint32_t id) const {
  const auto it = lanes_.find(id);
  return it == lanes_.end() ? nullptr : it->second.get();
}

std::vector<const TraceLane*> Tracer::lanes() const {
  std::vector<const TraceLane*> out;
  out.reserve(lanes_.size());
  for (const auto& [id, lane] : lanes_) out.push_back(lane.get());
  return out;
}

void Tracer::register_stats(const Scope& scope) {
  stats_scope_ = std::make_unique<Scope>(scope);
  stats_scope_->counter_fn("dropped", [this] { return dropped(); });
  for (const auto& [id, lane] : lanes_) {
    const TraceLane* created = lane.get();
    stats_scope_->scope("lane" + std::to_string(id))
        .counter_fn("dropped", [created] { return created->dropped(); });
  }
}

void Tracer::name_lane(uint32_t lane, const std::string& name) {
  lane_names_[lane] = name;
}

void Tracer::name_asid(uint32_t lane, uint32_t asid, const std::string& name) {
  asid_names_[{lane, asid}] = name;
}

uint64_t Tracer::dropped() const {
  uint64_t total = 0;
  for (const auto& [id, lane] : lanes_) total += lane->dropped();
  return total;
}

std::map<std::string, uint64_t> Tracer::event_counts() const {
  std::map<std::string, uint64_t> counts;
  for (const auto& [id, lane] : lanes_) {
    for (const TraceEvent& e : lane->events()) {
      std::string key = trace_event_name(e.type);
      if (is_flow(e.type)) key += std::string(".") + flow_phase(e.type);
      ++counts[key];
    }
  }
  return counts;
}

std::string Tracer::to_chrome_json() const {
  JsonWriter w;
  w.begin_object(JsonWriter::Style::kPretty);
  // Cycles are not microseconds; this only affects Perfetto's ruler
  // label, never the (integer) timestamps themselves.
  w.key("displayTimeUnit").value("ns");
  w.key("meta_dropped_events").value(dropped());
  w.key("traceEvents").begin_array(JsonWriter::Style::kPretty);

  for (const auto& [lane, name] : lane_names_) {
    w.begin_object();
    w.key("name").value("process_name");
    w.key("ph").value("M");
    w.key("pid").value(lane);
    w.key("args").begin_object().key("name").value(name).end_object();
    w.end_object();
  }
  for (const auto& [key, name] : asid_names_) {
    w.begin_object();
    w.key("name").value("thread_name");
    w.key("ph").value("M");
    w.key("pid").value(key.first);
    w.key("tid").value(key.second);
    w.key("args").begin_object().key("name").value(name).end_object();
    w.end_object();
  }

  // Deterministic merge: (cycle, lane, intra-lane order). Intra-lane
  // order is the recording order, which same-seed runs reproduce.
  struct Keyed {
    TraceEvent event;
    uint32_t lane;
    size_t seq;
  };
  std::vector<Keyed> merged;
  for (const auto& [id, lane] : lanes_) {
    const auto events = lane->events();
    for (size_t i = 0; i < events.size(); ++i) {
      merged.push_back({events[i], id, i});
    }
  }
  std::sort(merged.begin(), merged.end(), [](const Keyed& a, const Keyed& b) {
    return std::tie(a.event.cycle, a.lane, a.seq) <
           std::tie(b.event.cycle, b.lane, b.seq);
  });

  for (const Keyed& k : merged) {
    const TraceEvent& e = k.event;
    w.begin_object();
    w.key("name").value(trace_event_name(e.type));
    w.key("cat").value(trace_event_category(e.type));
    if (is_flow(e.type)) {
      // Flow events bind by (cat, id) across lanes; `bp:"e"` attaches
      // the terminating step to the enclosing slice end, matching how
      // Perfetto renders request chains.
      w.key("ph").value(flow_phase(e.type));
      if (e.type == TraceEventType::kReqFlowEnd) w.key("bp").value("e");
      w.key("ts").value(e.cycle);
      w.key("pid").value(k.lane);
      w.key("tid").value(e.asid);
      w.key("id").value(e.arg);
      w.end_object();
      continue;
    }
    if (e.dur > 0) {
      w.key("ph").value("X");
      w.key("ts").value(e.cycle);
      w.key("dur").value(e.dur);
    } else {
      w.key("ph").value("i");
      w.key("ts").value(e.cycle);
      w.key("s").value("t");
    }
    w.key("pid").value(k.lane);
    w.key("tid").value(e.asid);
    w.key("args").begin_object().key("v").value(e.arg).end_object();
    w.end_object();
  }

  w.end_array();
  w.end_object();
  return w.str() + "\n";
}

}  // namespace vcfr::telemetry
