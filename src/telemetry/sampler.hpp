// Time-series sampler: snapshots every numeric stat in a StatRegistry
// each time the simulated clock crosses an interval boundary, producing
// the data behind "overhead over time" curves (IPC, DRC miss rate and
// L1-I/L2 miss rates across re-randomization epochs, shared-L2
// contention across scheduler rounds, ...).
//
// Rows are cycle-stamped with the *actual* sampled cycle (the clock
// advances unevenly, so boundaries are crossed, not hit); columns are
// the registry's counters and gauges in sorted-name order. Registries
// grow while a run warms up (a core registers lazily, a process spawns
// mid-fleet), so each sample is recorded against the column set in
// force at that instant — an "epoch" — and the exported table uses the
// union of all epochs' columns (the registry is add-only, so that is
// the final epoch's set), zero-filling cells a row never observed.
// Counters render as integers, gauges as %.6g — everything
// deterministic for same-seed runs.
//
// `poll()` is the hot-path entry: two compares when sampling is off or
// not yet due, so leaving a sampler attached costs nothing measurable.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "telemetry/stat_registry.hpp"

namespace vcfr::telemetry {

class Sampler {
 public:
  explicit Sampler(const StatRegistry* registry) : registry_(registry) {}

  /// 0 disables sampling (the default).
  void set_interval(uint64_t cycles) {
    interval_ = cycles;
    next_ = cycles;
  }
  [[nodiscard]] uint64_t interval() const { return interval_; }

  void poll(uint64_t cycle) {
    if (interval_ == 0 || cycle < next_) return;
    take(cycle);
  }

  /// Unconditional snapshot at `cycle` (also re-arms the next boundary).
  void take(uint64_t cycle);

  [[nodiscard]] size_t rows() const { return cycles_.size(); }
  /// The exported column set: the latest epoch's columns, which is the
  /// union across the whole run (registries only grow).
  [[nodiscard]] const std::vector<std::string>& columns() const {
    return epochs_.empty() ? empty_columns_ : epochs_.back().columns;
  }

  /// "cycle,<col>,<col>,..." header plus one row per sample.
  [[nodiscard]] std::string to_csv() const;
  /// {"interval": N, "columns": [...], "samples": [[cycle, ...], ...]}
  [[nodiscard]] std::string to_json() const;

 private:
  /// One sampled column: a counter/gauge's value, or one percentile of a
  /// registered histogram (histograms contribute `<name>.p50` and
  /// `<name>.p99` columns, reconstructed via Histogram::percentile).
  struct Source {
    const StatRegistry::Stat* stat = nullptr;
    uint8_t part = 0;  // 0 = value, 1 = p50, 2 = p99
  };

  /// The column set in force for a span of rows. A new epoch is captured
  /// whenever the registry grew since the previous sample; counters
  /// registered between snapshots therefore appear in the union with
  /// earlier rows zero-filled instead of silently dropping out.
  struct Epoch {
    std::vector<std::string> columns;
    std::vector<Source> sources;
    size_t registry_size = 0;  // recapture trigger
  };

  void capture_epoch();
  /// Renders row's value for a column of its *own* epoch.
  [[nodiscard]] std::string render(size_t row, size_t col) const;

  const StatRegistry* registry_;
  uint64_t interval_ = 0;
  uint64_t next_ = 0;

  std::vector<Epoch> epochs_;
  std::vector<std::string> empty_columns_;
  std::vector<uint32_t> row_epoch_;
  std::vector<uint64_t> cycles_;
  std::vector<std::vector<double>> values_;  // one row per sample
};

}  // namespace vcfr::telemetry
