// ROP gadget scanner — our stand-in for ROPgadget 4.0.1 (§V-B).
//
// Scans a binary's code bytes at *every byte offset* (VX is variable-
// length, so unaligned decoding yields gadgets exactly as on x86) for
// short instruction sequences ending in a ret or an indirect transfer.
//
// The "modified ROPgadget" evaluation of §V-B is implemented by
// survival_after_randomization(): the attacker only knows the original
// (un-randomized) instruction locations, and under VCFR control may only
// be transferred to addresses whose randomized tag is clear — the
// un-randomized failover set. A gadget survives randomization iff every
// instruction it executes sits at such an address.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "binary/image.hpp"
#include "isa/isa.hpp"

namespace vcfr::gadget {

/// Semantic classification of a gadget (by its payload-useful head
/// instruction), mirroring ROPgadget's pattern database.
enum class GadgetKind {
  kPopReg,   // pop rX; ... ; ret           (load a register from the stack)
  kMovReg,   // mov rX, rY; ... ; ret       (shuffle registers)
  kArith,    // add/sub/xor/...; ... ; ret  (arithmetic)
  kLoad,     // ld rX, [rY+d]; ... ; ret    (memory read)
  kStore,    // st rX, [rY+d]; ... ; ret    (write-what-where)
  kSys,      // sys n; ... ; ret            (system-call gadget)
  kOther,
};

[[nodiscard]] std::string_view kind_name(GadgetKind kind);

struct Gadget {
  uint32_t addr = 0;                // start address in the scanned space
  std::vector<isa::Instr> instrs;   // decoded sequence incl. terminator
  GadgetKind kind = GadgetKind::kOther;
  bool aligned = false;             // starts at a true instruction boundary

  /// Addresses of each instruction in the sequence.
  [[nodiscard]] std::vector<uint32_t> instr_addrs() const;
};

struct ScanOptions {
  uint32_t max_instrs = 5;  // window: up to 4 body instructions + terminator
};

struct ScanResult {
  std::vector<Gadget> gadgets;
  uint64_t bytes_scanned = 0;
  uint64_t aligned_count = 0;
  uint64_t unaligned_count = 0;

  [[nodiscard]] size_t count(GadgetKind kind) const;
};

/// Scans an original-layout image's code section.
[[nodiscard]] ScanResult scan(const binary::Image& image,
                              const ScanOptions& options = {});

struct SurvivalResult {
  size_t before = 0;
  size_t after = 0;
  std::vector<Gadget> surviving;

  [[nodiscard]] double removal_percent() const {
    return before == 0
               ? 0.0
               : 100.0 * static_cast<double>(before - after) /
                     static_cast<double>(before);
  }
};

/// Re-evaluates the gadget pool against a randomized image's translation
/// tables: a gadget survives iff all of its instruction addresses are in
/// the un-randomized failover set (clear randomized tag).
[[nodiscard]] SurvivalResult survival_after_randomization(
    const ScanResult& original_scan, const binary::TranslationTables& tables);

}  // namespace vcfr::gadget
