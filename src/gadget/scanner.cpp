#include "gadget/scanner.hpp"

#include <span>
#include <stdexcept>
#include <unordered_set>

#include "isa/encoding.hpp"

namespace vcfr::gadget {

using isa::Instr;
using isa::Op;

std::string_view kind_name(GadgetKind kind) {
  switch (kind) {
    case GadgetKind::kPopReg: return "pop-reg";
    case GadgetKind::kMovReg: return "mov-reg";
    case GadgetKind::kArith: return "arith";
    case GadgetKind::kLoad: return "load";
    case GadgetKind::kStore: return "store";
    case GadgetKind::kSys: return "sys";
    case GadgetKind::kOther: return "other";
  }
  return "?";
}

std::vector<uint32_t> Gadget::instr_addrs() const {
  std::vector<uint32_t> out;
  out.reserve(instrs.size());
  uint32_t a = addr;
  for (const auto& in : instrs) {
    out.push_back(a);
    a += in.length;
  }
  return out;
}

size_t ScanResult::count(GadgetKind kind) const {
  size_t n = 0;
  for (const auto& g : gadgets) {
    if (g.kind == kind) ++n;
  }
  return n;
}

namespace {

bool is_terminator(Op op) {
  return op == Op::kRet || op == Op::kJmpR || op == Op::kCallR;
}

GadgetKind classify_head(const Instr& head) {
  switch (head.op) {
    case Op::kPopR:
      return GadgetKind::kPopReg;
    case Op::kMovRR:
      return GadgetKind::kMovReg;
    case Op::kAddRR:
    case Op::kSubRR:
    case Op::kXorRR:
    case Op::kAndRR:
    case Op::kOrRR:
    case Op::kShlRR:
    case Op::kShrRR:
    case Op::kMulRR:
    case Op::kAddRI:
    case Op::kSubRI:
    case Op::kXorRI:
      return GadgetKind::kArith;
    case Op::kLd:
    case Op::kLdb:
      return GadgetKind::kLoad;
    case Op::kSt:
    case Op::kStb:
      return GadgetKind::kStore;
    case Op::kSys:
      return GadgetKind::kSys;
    default:
      return GadgetKind::kOther;
  }
}

}  // namespace

ScanResult scan(const binary::Image& image, const ScanOptions& options) {
  if (image.layout == binary::Layout::kNaiveIlr) {
    throw std::invalid_argument("gadget::scan: requires dense code bytes");
  }
  ScanResult result;
  const auto& code = image.code;
  result.bytes_scanned = code.size();

  // True instruction boundaries, for the aligned/unaligned statistic.
  std::unordered_set<uint32_t> starts;
  {
    size_t off = 0;
    while (off < code.size()) {
      const uint8_t len = isa::instr_length(code[off]);
      if (len == 0) break;
      starts.insert(image.code_base + static_cast<uint32_t>(off));
      off += len;
    }
  }

  for (size_t off = 0; off < code.size(); ++off) {
    // Decode forward from this byte; emit a gadget if a terminator appears
    // within the window. Direct transfers abort the window (the sequence
    // would leave the gadget).
    std::vector<Instr> seq;
    size_t cursor = off;
    for (uint32_t k = 0; k < options.max_instrs && cursor < code.size(); ++k) {
      const auto decoded =
          isa::decode(std::span(code.data() + cursor, code.size() - cursor));
      if (!decoded) break;
      seq.push_back(*decoded);
      cursor += decoded->length;
      if (is_terminator(decoded->op)) {
        Gadget g;
        g.addr = image.code_base + static_cast<uint32_t>(off);
        g.instrs = seq;
        g.kind = classify_head(seq.front());
        g.aligned = starts.contains(g.addr);
        if (g.aligned) {
          ++result.aligned_count;
        } else {
          ++result.unaligned_count;
        }
        result.gadgets.push_back(std::move(g));
        break;
      }
      if (decoded->is_direct_transfer() || decoded->op == Op::kHalt) break;
    }
  }
  return result;
}

SurvivalResult survival_after_randomization(
    const ScanResult& original_scan, const binary::TranslationTables& tables) {
  SurvivalResult result;
  result.before = original_scan.gadgets.size();
  for (const auto& g : original_scan.gadgets) {
    bool alive = true;
    for (uint32_t a : g.instr_addrs()) {
      // Under VCFR, control may enter the original space only through the
      // failover set (randomized tag clear). Any other original address —
      // including unaligned byte offsets — is an invalid transfer target.
      if (!tables.unrandomized.contains(a)) {
        alive = false;
        break;
      }
    }
    if (alive) result.surviving.push_back(g);
  }
  result.after = result.surviving.size();
  return result;
}

}  // namespace vcfr::gadget
