#include "gadget/payload.hpp"

#include <optional>

#include "binary/loader.hpp"
#include "emu/emulator.hpp"

namespace vcfr::gadget {

std::vector<PayloadTemplate> default_templates() {
  return {
      {"write-what-where",
       {GadgetKind::kPopReg, GadgetKind::kPopReg, GadgetKind::kStore,
        GadgetKind::kSys}},
      {"register-init-call",
       {GadgetKind::kPopReg, GadgetKind::kMovReg, GadgetKind::kSys}},
      {"arith-chain",
       {GadgetKind::kPopReg, GadgetKind::kArith, GadgetKind::kStore,
        GadgetKind::kSys}},
  };
}

std::vector<PayloadResult> compile_payloads(
    const std::vector<Gadget>& pool,
    const std::vector<PayloadTemplate>& templates) {
  std::vector<PayloadResult> out;
  out.reserve(templates.size());
  for (const auto& tmpl : templates) {
    PayloadResult r;
    r.name = tmpl.name;
    r.assembled = true;
    for (GadgetKind need : tmpl.required) {
      std::optional<uint32_t> found;
      for (const auto& g : pool) {
        if (g.kind == need) {
          found = g.addr;
          break;
        }
      }
      if (!found) {
        r.assembled = false;
        r.chain.clear();
        break;
      }
      r.chain.push_back(*found);
    }
    out.push_back(std::move(r));
  }
  return out;
}

bool any_assembled(const std::vector<PayloadResult>& results) {
  for (const auto& r : results) {
    if (r.assembled) return true;
  }
  return false;
}

ChainResult execute_chain(const binary::Image& image,
                          const std::vector<uint32_t>& chain,
                          uint64_t max_instructions) {
  ChainResult result;
  if (chain.empty()) {
    result.faulted = true;
    result.fault = "empty chain";
    return result;
  }

  binary::Memory mem;
  binary::load(image, mem);
  emu::Emulator emulator(image, mem);
  emulator.set_enforce_tags(true);

  // Lay the chain out as a hijacked stack: the first word is what the
  // victim's `ret` popped (it becomes the PC), the rest sit above the
  // stack pointer for the gadgets to consume.
  const uint32_t sp =
      binary::kDefaultStackTop - static_cast<uint32_t>(chain.size()) * 4;
  for (size_t i = 1; i < chain.size(); ++i) {
    mem.write32(sp + static_cast<uint32_t>(i - 1) * 4, chain[i]);
  }
  emulator.state().regs[isa::kSp] = sp;

  // The hijacked ret's transfer: under VCFR the attacker-supplied value is
  // an original-space address — the hardware's randomized tag blocks it
  // unless the location is in the failover set.
  const uint32_t entry = chain.front();
  if (image.layout == binary::Layout::kVcfr && image.in_code(entry) &&
      !image.tables.unrandomized.contains(entry) &&
      !image.tables.is_randomized_addr(entry)) {
    result.faulted = true;
    result.fault = "randomized-tag violation at chain entry";
    return result;
  }
  emulator.state().pc = entry;

  emu::RunLimits limits;
  limits.max_instructions = max_instructions;
  const auto run = emulator.run(limits);
  result.faulted = !run.error.empty();
  result.fault = run.error;
  result.output = run.output;
  result.instructions = run.stats.instructions;
  return result;
}

}  // namespace vcfr::gadget
