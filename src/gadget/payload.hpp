// Attack-payload compiler — the "auto-roper" half of ROPgadget (§V-B).
//
// A payload template lists the gadget kinds an exploit chain needs (set a
// register, write-what-where, reach a system call, ...). The compiler
// tries to satisfy each requirement from a scanned gadget pool; a payload
// "assembles" when every slot is filled. §V-B's result — payloads assemble
// for every un-randomized benchmark and for none after randomization — is
// reproduced by compiling against scan() vs the survivors of
// survival_after_randomization().
#pragma once

#include <string>
#include <vector>

#include "gadget/scanner.hpp"

namespace vcfr::gadget {

struct PayloadTemplate {
  std::string name;
  std::vector<GadgetKind> required;  // one gadget per slot, in chain order
};

/// The built-in template database (modelled on ROPgadget's payload
/// patterns): register initialization, write-what-where, and a syscall
/// trampoline.
[[nodiscard]] std::vector<PayloadTemplate> default_templates();

struct PayloadResult {
  std::string name;
  bool assembled = false;
  std::vector<uint32_t> chain;  // gadget addresses, one per required slot
};

/// Attempts to assemble each template from `pool`. Distinct slots may use
/// the same gadget only when no alternative exists (ROPgadget reuses
/// gadgets freely; we allow reuse).
[[nodiscard]] std::vector<PayloadResult> compile_payloads(
    const std::vector<Gadget>& pool,
    const std::vector<PayloadTemplate>& templates = default_templates());

/// True when at least one template assembled.
[[nodiscard]] bool any_assembled(const std::vector<PayloadResult>& results);

/// Outcome of dynamically executing a ROP chain against an image.
struct ChainResult {
  bool faulted = false;
  std::string fault;
  std::vector<uint32_t> output;  // values the chain exfiltrated via sys/out
  uint64_t instructions = 0;
};

/// Executes a ROP chain the way a hijacked `ret` would: the words of
/// `chain` are placed on the stack, the first word becomes the program
/// counter, and execution proceeds (with the randomized-tag protection
/// enforced for VCFR images). This is the dynamic counterpart of
/// compile_payloads: it proves whether an assembled chain actually runs.
[[nodiscard]] ChainResult execute_chain(const binary::Image& image,
                                        const std::vector<uint32_t>& chain,
                                        uint64_t max_instructions = 10'000);

}  // namespace vcfr::gadget
