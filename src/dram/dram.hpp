// DDR3-style main-memory model in the spirit of DRAMSim2 (the paper's
// memory backend, §VI-C): per-bank row buffers with an open-page policy,
// activate/precharge/CAS timing, bank busy tracking, and periodic refresh.
// Latencies are returned in CPU cycles (1.6 GHz core, 800 MHz DDR bus).
#pragma once

#include <cstdint>
#include <vector>

#include "telemetry/stat_registry.hpp"

namespace vcfr::binary {
class StateWriter;
class StateReader;
}  // namespace vcfr::binary

namespace vcfr::dram {

struct DramConfig {
  uint32_t banks = 8;
  uint32_t row_bytes = 8192;      // row-buffer (page) size per bank
  uint32_t cpu_per_mem_cycle = 2; // 1.6 GHz core / 800 MHz memory clock

  // JEDEC-style timings in memory cycles (DDR3-1600 CL11-ish).
  uint32_t t_cl = 11;    // CAS latency
  uint32_t t_rcd = 11;   // RAS-to-CAS
  uint32_t t_rp = 11;    // precharge
  uint32_t t_burst = 4;  // data burst for one 64-byte line
  uint32_t t_refi = 6240;  // refresh interval
  uint32_t t_rfc = 208;    // refresh cycle time
};

struct DramStats {
  uint64_t reads = 0;
  uint64_t writes = 0;
  uint64_t row_hits = 0;
  uint64_t row_misses = 0;
  uint64_t refresh_stalls = 0;

  [[nodiscard]] double row_hit_rate() const {
    const uint64_t total = row_hits + row_misses;
    return total == 0 ? 0.0
                      : static_cast<double>(row_hits) /
                            static_cast<double>(total);
  }
};

class Dram {
 public:
  explicit Dram(const DramConfig& config);

  /// Latency in CPU cycles to read the line containing `addr`, issued at
  /// CPU cycle `now`. Accounts for bank busy time, row-buffer state, and
  /// refresh overlap.
  uint32_t read(uint32_t addr, uint64_t now);

  /// Write-back of an evicted dirty line. Row-buffer state is updated; the
  /// caller does not wait (posted write), so no latency is returned.
  void write(uint32_t addr, uint64_t now);

  [[nodiscard]] const DramStats& stats() const { return stats_; }
  [[nodiscard]] const DramConfig& config() const { return config_; }

  /// Binds this DRAM channel's live statistics into `scope`.
  void register_stats(const telemetry::Scope& scope) const;

  /// Checkpoint support: bank row-buffer/busy state + statistics.
  void save_state(binary::StateWriter& w) const;
  void load_state(binary::StateReader& r);

 private:
  struct Bank {
    bool open = false;
    uint32_t open_row = 0;
    uint64_t busy_until = 0;  // CPU cycles
  };

  /// Services an access and returns its CPU-cycle latency.
  uint32_t service(uint32_t addr, uint64_t now);

  DramConfig config_;
  std::vector<Bank> banks_;
  DramStats stats_;
};

}  // namespace vcfr::dram
