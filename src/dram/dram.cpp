#include "dram/dram.hpp"

#include "binary/state_io.hpp"

namespace vcfr::dram {

Dram::Dram(const DramConfig& config) : config_(config) {
  banks_.resize(config.banks);
}

uint32_t Dram::service(uint32_t addr, uint64_t now) {
  const uint32_t row_id = addr / config_.row_bytes;
  const uint32_t bank_idx = row_id % config_.banks;
  const uint32_t row = row_id / config_.banks;
  Bank& bank = banks_[bank_idx];

  uint64_t start = now;
  if (bank.busy_until > start) start = bank.busy_until;

  // Refresh: when the access lands inside the per-interval refresh window,
  // it waits until the refresh completes.
  const uint64_t refi_cpu =
      static_cast<uint64_t>(config_.t_refi) * config_.cpu_per_mem_cycle;
  const uint64_t rfc_cpu =
      static_cast<uint64_t>(config_.t_rfc) * config_.cpu_per_mem_cycle;
  if (refi_cpu > 0 && start % refi_cpu < rfc_cpu) {
    start += rfc_cpu - start % refi_cpu;
    ++stats_.refresh_stalls;
  }

  uint32_t mem_cycles = 0;
  if (bank.open && bank.open_row == row) {
    ++stats_.row_hits;
    mem_cycles = config_.t_cl + config_.t_burst;
  } else {
    ++stats_.row_misses;
    mem_cycles = (bank.open ? config_.t_rp : 0) + config_.t_rcd +
                 config_.t_cl + config_.t_burst;
    bank.open = true;
    bank.open_row = row;
  }
  const uint64_t done =
      start + static_cast<uint64_t>(mem_cycles) * config_.cpu_per_mem_cycle;
  bank.busy_until = done;
  return static_cast<uint32_t>(done - now);
}

uint32_t Dram::read(uint32_t addr, uint64_t now) {
  ++stats_.reads;
  return service(addr, now);
}

void Dram::write(uint32_t addr, uint64_t now) {
  ++stats_.writes;
  (void)service(addr, now);  // posted; occupies the bank but nobody waits
}

void Dram::save_state(binary::StateWriter& w) const {
  w.u32(static_cast<uint32_t>(banks_.size()));
  for (const Bank& bank : banks_) {
    w.b(bank.open);
    w.u32(bank.open_row);
    w.u64(bank.busy_until);
  }
  w.u64(stats_.reads);
  w.u64(stats_.writes);
  w.u64(stats_.row_hits);
  w.u64(stats_.row_misses);
  w.u64(stats_.refresh_stalls);
}

void Dram::load_state(binary::StateReader& r) {
  const uint32_t n = r.count(1u << 16);
  if (n != banks_.size()) {
    throw binary::FormatError(binary::FormatFault::kImplausible,
                              "checkpoint DRAM bank count mismatch");
  }
  for (Bank& bank : banks_) {
    bank.open = r.b();
    bank.open_row = r.u32();
    bank.busy_until = r.u64();
  }
  stats_.reads = r.u64();
  stats_.writes = r.u64();
  stats_.row_hits = r.u64();
  stats_.row_misses = r.u64();
  stats_.refresh_stalls = r.u64();
}

void Dram::register_stats(const telemetry::Scope& scope) const {
  scope.counter("reads", &stats_.reads);
  scope.counter("writes", &stats_.writes);
  scope.counter("row_hits", &stats_.row_hits);
  scope.counter("row_misses", &stats_.row_misses);
  scope.counter("refresh_stalls", &stats_.refresh_stalls);
  scope.gauge("row_hit_rate", [this] { return stats_.row_hit_rate(); });
}

}  // namespace vcfr::dram
