#include "power/energy.hpp"

#include <cmath>
#include <cstdio>

namespace vcfr::power {

double sram_access_pj(uint32_t size_bytes, uint32_t assoc) {
  // E = c * sqrt(size) * (1 + 0.1 * (assoc - 1));
  // c chosen so a 32 KiB 2-way array costs ~25 pJ per access.
  constexpr double kCoeff = 0.125;
  const double base = kCoeff * std::sqrt(static_cast<double>(size_bytes));
  return base * (1.0 + 0.1 * (assoc > 0 ? assoc - 1 : 0));
}

std::string PowerAccount::report() const {
  char buf[512];
  std::snprintf(buf, sizeof buf,
                "core=%.1fuJ il1=%.1fuJ dl1=%.1fuJ l2=%.1fuJ drc=%.3fuJ "
                "bpred=%.1fuJ btb=%.1fuJ ras=%.1fuJ tlb=%.1fuJ dram=%.1fuJ "
                "cpu_total=%.1fuJ drc_overhead=%.3f%%",
                core * 1e-6, il1 * 1e-6, dl1 * 1e-6, l2 * 1e-6, drc * 1e-6,
                bpred * 1e-6, btb * 1e-6, ras * 1e-6, tlb * 1e-6, dram * 1e-6,
                cpu_total() * 1e-6, drc_overhead_percent());
  return buf;
}

}  // namespace vcfr::power
