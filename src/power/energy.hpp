// McPAT-style dynamic-power accounting (the paper integrates a modified
// McPAT with XIOSim; §VI-A). We use an analytic CACTI-like per-access
// energy model: SRAM read energy scales with the square root of the array
// size and grows mildly with associativity. Constants are calibrated to
// published 45 nm numbers (32 KiB 2-way L1 ~ 25 pJ/access, 512 KiB 8-way
// L2 ~ 150 pJ/access) — Figure 15 only depends on the *ratio* of DRC energy
// to total CPU dynamic energy.
#pragma once

#include <cstdint>
#include <string>

namespace vcfr::power {

/// Per-access dynamic read energy (pJ) of an SRAM array.
[[nodiscard]] double sram_access_pj(uint32_t size_bytes, uint32_t assoc);

/// Dynamic energy per event, picojoules.
struct EnergyParams {
  double core_per_instr = 42.0;   // fetch/decode/RF/bypass for one macro-op
  double alu_op = 6.0;
  double mul_op = 18.0;
  double div_op = 40.0;
  double agen_op = 5.0;           // address generation for memory ops
  double bpred_access = 1.6;      // gshare array
  double btb_access = 3.2;
  double ras_access = 0.8;
  double tlb_access = 1.4;
  double dram_access = 15000.0;   // off-chip, excluded from CPU dynamic power
  /// The DRC is a small direct-mapped single-ported array without way
  /// multiplexers or line drivers — its per-access energy sits well below
  /// the generic SRAM curve (calibrated against the paper's 0.18% Fig 15
  /// average).
  double drc_array_factor = 0.35;
};

/// Accumulated dynamic energy by structure (pJ).
struct PowerAccount {
  double core = 0;
  double il1 = 0;
  double dl1 = 0;
  double l2 = 0;
  double drc = 0;
  double bpred = 0;
  double btb = 0;
  double ras = 0;
  double tlb = 0;
  double dram = 0;

  /// Total on-chip CPU dynamic energy (paper's Fig 15 denominator —
  /// DRAM is off-chip and excluded).
  [[nodiscard]] double cpu_total() const {
    return core + il1 + dl1 + l2 + drc + bpred + btb + ras + tlb;
  }
  /// DRC share of CPU dynamic power, in percent (Fig 15's y-axis).
  [[nodiscard]] double drc_overhead_percent() const {
    const double total = cpu_total();
    return total <= 0 ? 0.0 : 100.0 * drc / total;
  }

  [[nodiscard]] std::string report() const;
};

}  // namespace vcfr::power
