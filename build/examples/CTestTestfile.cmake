# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;9;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_harden_server "/root/repo/build/examples/harden_server")
set_tests_properties(example_harden_server PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;9;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_diversity_fleet "/root/repo/build/examples/diversity_fleet")
set_tests_properties(example_diversity_fleet PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;9;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_live_rerandomize "/root/repo/build/examples/live_rerandomize")
set_tests_properties(example_live_rerandomize PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;9;add_test;/root/repo/examples/CMakeLists.txt;0;")
