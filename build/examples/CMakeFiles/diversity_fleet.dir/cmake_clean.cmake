file(REMOVE_RECURSE
  "CMakeFiles/diversity_fleet.dir/diversity_fleet.cpp.o"
  "CMakeFiles/diversity_fleet.dir/diversity_fleet.cpp.o.d"
  "diversity_fleet"
  "diversity_fleet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/diversity_fleet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
