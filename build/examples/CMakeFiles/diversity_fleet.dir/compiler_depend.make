# Empty compiler generated dependencies file for diversity_fleet.
# This may be replaced when dependencies are built.
