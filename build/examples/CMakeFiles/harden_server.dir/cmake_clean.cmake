file(REMOVE_RECURSE
  "CMakeFiles/harden_server.dir/harden_server.cpp.o"
  "CMakeFiles/harden_server.dir/harden_server.cpp.o.d"
  "harden_server"
  "harden_server.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/harden_server.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
