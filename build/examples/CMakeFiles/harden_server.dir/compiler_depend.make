# Empty compiler generated dependencies file for harden_server.
# This may be replaced when dependencies are built.
