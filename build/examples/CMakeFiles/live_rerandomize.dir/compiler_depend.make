# Empty compiler generated dependencies file for live_rerandomize.
# This may be replaced when dependencies are built.
