file(REMOVE_RECURSE
  "CMakeFiles/live_rerandomize.dir/live_rerandomize.cpp.o"
  "CMakeFiles/live_rerandomize.dir/live_rerandomize.cpp.o.d"
  "live_rerandomize"
  "live_rerandomize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/live_rerandomize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
