file(REMOVE_RECURSE
  "CMakeFiles/drc_explorer.dir/drc_explorer.cpp.o"
  "CMakeFiles/drc_explorer.dir/drc_explorer.cpp.o.d"
  "drc_explorer"
  "drc_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/drc_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
