# Empty dependencies file for drc_explorer.
# This may be replaced when dependencies are built.
