
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/binary/image.cpp" "src/CMakeFiles/vcfr.dir/binary/image.cpp.o" "gcc" "src/CMakeFiles/vcfr.dir/binary/image.cpp.o.d"
  "/root/repo/src/binary/loader.cpp" "src/CMakeFiles/vcfr.dir/binary/loader.cpp.o" "gcc" "src/CMakeFiles/vcfr.dir/binary/loader.cpp.o.d"
  "/root/repo/src/binary/serialize.cpp" "src/CMakeFiles/vcfr.dir/binary/serialize.cpp.o" "gcc" "src/CMakeFiles/vcfr.dir/binary/serialize.cpp.o.d"
  "/root/repo/src/cache/cache.cpp" "src/CMakeFiles/vcfr.dir/cache/cache.cpp.o" "gcc" "src/CMakeFiles/vcfr.dir/cache/cache.cpp.o.d"
  "/root/repo/src/cache/memhier.cpp" "src/CMakeFiles/vcfr.dir/cache/memhier.cpp.o" "gcc" "src/CMakeFiles/vcfr.dir/cache/memhier.cpp.o.d"
  "/root/repo/src/cache/prefetcher.cpp" "src/CMakeFiles/vcfr.dir/cache/prefetcher.cpp.o" "gcc" "src/CMakeFiles/vcfr.dir/cache/prefetcher.cpp.o.d"
  "/root/repo/src/cache/tlb.cpp" "src/CMakeFiles/vcfr.dir/cache/tlb.cpp.o" "gcc" "src/CMakeFiles/vcfr.dir/cache/tlb.cpp.o.d"
  "/root/repo/src/core/context.cpp" "src/CMakeFiles/vcfr.dir/core/context.cpp.o" "gcc" "src/CMakeFiles/vcfr.dir/core/context.cpp.o.d"
  "/root/repo/src/core/drc.cpp" "src/CMakeFiles/vcfr.dir/core/drc.cpp.o" "gcc" "src/CMakeFiles/vcfr.dir/core/drc.cpp.o.d"
  "/root/repo/src/core/ret_bitmap.cpp" "src/CMakeFiles/vcfr.dir/core/ret_bitmap.cpp.o" "gcc" "src/CMakeFiles/vcfr.dir/core/ret_bitmap.cpp.o.d"
  "/root/repo/src/core/translation.cpp" "src/CMakeFiles/vcfr.dir/core/translation.cpp.o" "gcc" "src/CMakeFiles/vcfr.dir/core/translation.cpp.o.d"
  "/root/repo/src/dram/dram.cpp" "src/CMakeFiles/vcfr.dir/dram/dram.cpp.o" "gcc" "src/CMakeFiles/vcfr.dir/dram/dram.cpp.o.d"
  "/root/repo/src/emu/emulator.cpp" "src/CMakeFiles/vcfr.dir/emu/emulator.cpp.o" "gcc" "src/CMakeFiles/vcfr.dir/emu/emulator.cpp.o.d"
  "/root/repo/src/emu/ilr_emulator.cpp" "src/CMakeFiles/vcfr.dir/emu/ilr_emulator.cpp.o" "gcc" "src/CMakeFiles/vcfr.dir/emu/ilr_emulator.cpp.o.d"
  "/root/repo/src/emu/rerandomize.cpp" "src/CMakeFiles/vcfr.dir/emu/rerandomize.cpp.o" "gcc" "src/CMakeFiles/vcfr.dir/emu/rerandomize.cpp.o.d"
  "/root/repo/src/emu/trace.cpp" "src/CMakeFiles/vcfr.dir/emu/trace.cpp.o" "gcc" "src/CMakeFiles/vcfr.dir/emu/trace.cpp.o.d"
  "/root/repo/src/gadget/payload.cpp" "src/CMakeFiles/vcfr.dir/gadget/payload.cpp.o" "gcc" "src/CMakeFiles/vcfr.dir/gadget/payload.cpp.o.d"
  "/root/repo/src/gadget/scanner.cpp" "src/CMakeFiles/vcfr.dir/gadget/scanner.cpp.o" "gcc" "src/CMakeFiles/vcfr.dir/gadget/scanner.cpp.o.d"
  "/root/repo/src/isa/assembler.cpp" "src/CMakeFiles/vcfr.dir/isa/assembler.cpp.o" "gcc" "src/CMakeFiles/vcfr.dir/isa/assembler.cpp.o.d"
  "/root/repo/src/isa/disassembler.cpp" "src/CMakeFiles/vcfr.dir/isa/disassembler.cpp.o" "gcc" "src/CMakeFiles/vcfr.dir/isa/disassembler.cpp.o.d"
  "/root/repo/src/isa/encoding.cpp" "src/CMakeFiles/vcfr.dir/isa/encoding.cpp.o" "gcc" "src/CMakeFiles/vcfr.dir/isa/encoding.cpp.o.d"
  "/root/repo/src/isa/isa.cpp" "src/CMakeFiles/vcfr.dir/isa/isa.cpp.o" "gcc" "src/CMakeFiles/vcfr.dir/isa/isa.cpp.o.d"
  "/root/repo/src/power/energy.cpp" "src/CMakeFiles/vcfr.dir/power/energy.cpp.o" "gcc" "src/CMakeFiles/vcfr.dir/power/energy.cpp.o.d"
  "/root/repo/src/rewriter/analysis.cpp" "src/CMakeFiles/vcfr.dir/rewriter/analysis.cpp.o" "gcc" "src/CMakeFiles/vcfr.dir/rewriter/analysis.cpp.o.d"
  "/root/repo/src/rewriter/cfg.cpp" "src/CMakeFiles/vcfr.dir/rewriter/cfg.cpp.o" "gcc" "src/CMakeFiles/vcfr.dir/rewriter/cfg.cpp.o.d"
  "/root/repo/src/rewriter/entropy.cpp" "src/CMakeFiles/vcfr.dir/rewriter/entropy.cpp.o" "gcc" "src/CMakeFiles/vcfr.dir/rewriter/entropy.cpp.o.d"
  "/root/repo/src/rewriter/randomizer.cpp" "src/CMakeFiles/vcfr.dir/rewriter/randomizer.cpp.o" "gcc" "src/CMakeFiles/vcfr.dir/rewriter/randomizer.cpp.o.d"
  "/root/repo/src/sim/bpred.cpp" "src/CMakeFiles/vcfr.dir/sim/bpred.cpp.o" "gcc" "src/CMakeFiles/vcfr.dir/sim/bpred.cpp.o.d"
  "/root/repo/src/sim/cpu.cpp" "src/CMakeFiles/vcfr.dir/sim/cpu.cpp.o" "gcc" "src/CMakeFiles/vcfr.dir/sim/cpu.cpp.o.d"
  "/root/repo/src/sim/ooo.cpp" "src/CMakeFiles/vcfr.dir/sim/ooo.cpp.o" "gcc" "src/CMakeFiles/vcfr.dir/sim/ooo.cpp.o.d"
  "/root/repo/src/workloads/builder.cpp" "src/CMakeFiles/vcfr.dir/workloads/builder.cpp.o" "gcc" "src/CMakeFiles/vcfr.dir/workloads/builder.cpp.o.d"
  "/root/repo/src/workloads/suite.cpp" "src/CMakeFiles/vcfr.dir/workloads/suite.cpp.o" "gcc" "src/CMakeFiles/vcfr.dir/workloads/suite.cpp.o.d"
  "/root/repo/src/workloads/wl_compiler.cpp" "src/CMakeFiles/vcfr.dir/workloads/wl_compiler.cpp.o" "gcc" "src/CMakeFiles/vcfr.dir/workloads/wl_compiler.cpp.o.d"
  "/root/repo/src/workloads/wl_compress.cpp" "src/CMakeFiles/vcfr.dir/workloads/wl_compress.cpp.o" "gcc" "src/CMakeFiles/vcfr.dir/workloads/wl_compress.cpp.o.d"
  "/root/repo/src/workloads/wl_dp.cpp" "src/CMakeFiles/vcfr.dir/workloads/wl_dp.cpp.o" "gcc" "src/CMakeFiles/vcfr.dir/workloads/wl_dp.cpp.o.d"
  "/root/repo/src/workloads/wl_graph.cpp" "src/CMakeFiles/vcfr.dir/workloads/wl_graph.cpp.o" "gcc" "src/CMakeFiles/vcfr.dir/workloads/wl_graph.cpp.o.d"
  "/root/repo/src/workloads/wl_misc.cpp" "src/CMakeFiles/vcfr.dir/workloads/wl_misc.cpp.o" "gcc" "src/CMakeFiles/vcfr.dir/workloads/wl_misc.cpp.o.d"
  "/root/repo/src/workloads/wl_nbody.cpp" "src/CMakeFiles/vcfr.dir/workloads/wl_nbody.cpp.o" "gcc" "src/CMakeFiles/vcfr.dir/workloads/wl_nbody.cpp.o.d"
  "/root/repo/src/workloads/wl_quantum.cpp" "src/CMakeFiles/vcfr.dir/workloads/wl_quantum.cpp.o" "gcc" "src/CMakeFiles/vcfr.dir/workloads/wl_quantum.cpp.o.d"
  "/root/repo/src/workloads/wl_search.cpp" "src/CMakeFiles/vcfr.dir/workloads/wl_search.cpp.o" "gcc" "src/CMakeFiles/vcfr.dir/workloads/wl_search.cpp.o.d"
  "/root/repo/src/workloads/wl_simplex.cpp" "src/CMakeFiles/vcfr.dir/workloads/wl_simplex.cpp.o" "gcc" "src/CMakeFiles/vcfr.dir/workloads/wl_simplex.cpp.o.d"
  "/root/repo/src/workloads/wl_stencil.cpp" "src/CMakeFiles/vcfr.dir/workloads/wl_stencil.cpp.o" "gcc" "src/CMakeFiles/vcfr.dir/workloads/wl_stencil.cpp.o.d"
  "/root/repo/src/workloads/wl_video.cpp" "src/CMakeFiles/vcfr.dir/workloads/wl_video.cpp.o" "gcc" "src/CMakeFiles/vcfr.dir/workloads/wl_video.cpp.o.d"
  "/root/repo/src/workloads/wl_xml.cpp" "src/CMakeFiles/vcfr.dir/workloads/wl_xml.cpp.o" "gcc" "src/CMakeFiles/vcfr.dir/workloads/wl_xml.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
