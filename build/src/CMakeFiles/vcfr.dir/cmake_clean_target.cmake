file(REMOVE_RECURSE
  "libvcfr.a"
)
