# Empty compiler generated dependencies file for vcfr.
# This may be replaced when dependencies are built.
