
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_assembler.cpp" "tests/CMakeFiles/vcfr_tests.dir/test_assembler.cpp.o" "gcc" "tests/CMakeFiles/vcfr_tests.dir/test_assembler.cpp.o.d"
  "/root/repo/tests/test_builder.cpp" "tests/CMakeFiles/vcfr_tests.dir/test_builder.cpp.o" "gcc" "tests/CMakeFiles/vcfr_tests.dir/test_builder.cpp.o.d"
  "/root/repo/tests/test_cache.cpp" "tests/CMakeFiles/vcfr_tests.dir/test_cache.cpp.o" "gcc" "tests/CMakeFiles/vcfr_tests.dir/test_cache.cpp.o.d"
  "/root/repo/tests/test_context_chain.cpp" "tests/CMakeFiles/vcfr_tests.dir/test_context_chain.cpp.o" "gcc" "tests/CMakeFiles/vcfr_tests.dir/test_context_chain.cpp.o.d"
  "/root/repo/tests/test_dram.cpp" "tests/CMakeFiles/vcfr_tests.dir/test_dram.cpp.o" "gcc" "tests/CMakeFiles/vcfr_tests.dir/test_dram.cpp.o.d"
  "/root/repo/tests/test_emulator.cpp" "tests/CMakeFiles/vcfr_tests.dir/test_emulator.cpp.o" "gcc" "tests/CMakeFiles/vcfr_tests.dir/test_emulator.cpp.o.d"
  "/root/repo/tests/test_flags.cpp" "tests/CMakeFiles/vcfr_tests.dir/test_flags.cpp.o" "gcc" "tests/CMakeFiles/vcfr_tests.dir/test_flags.cpp.o.d"
  "/root/repo/tests/test_fuzz_equivalence.cpp" "tests/CMakeFiles/vcfr_tests.dir/test_fuzz_equivalence.cpp.o" "gcc" "tests/CMakeFiles/vcfr_tests.dir/test_fuzz_equivalence.cpp.o.d"
  "/root/repo/tests/test_gadget.cpp" "tests/CMakeFiles/vcfr_tests.dir/test_gadget.cpp.o" "gcc" "tests/CMakeFiles/vcfr_tests.dir/test_gadget.cpp.o.d"
  "/root/repo/tests/test_ilr_emulator.cpp" "tests/CMakeFiles/vcfr_tests.dir/test_ilr_emulator.cpp.o" "gcc" "tests/CMakeFiles/vcfr_tests.dir/test_ilr_emulator.cpp.o.d"
  "/root/repo/tests/test_integration.cpp" "tests/CMakeFiles/vcfr_tests.dir/test_integration.cpp.o" "gcc" "tests/CMakeFiles/vcfr_tests.dir/test_integration.cpp.o.d"
  "/root/repo/tests/test_isa.cpp" "tests/CMakeFiles/vcfr_tests.dir/test_isa.cpp.o" "gcc" "tests/CMakeFiles/vcfr_tests.dir/test_isa.cpp.o.d"
  "/root/repo/tests/test_loader.cpp" "tests/CMakeFiles/vcfr_tests.dir/test_loader.cpp.o" "gcc" "tests/CMakeFiles/vcfr_tests.dir/test_loader.cpp.o.d"
  "/root/repo/tests/test_memhier.cpp" "tests/CMakeFiles/vcfr_tests.dir/test_memhier.cpp.o" "gcc" "tests/CMakeFiles/vcfr_tests.dir/test_memhier.cpp.o.d"
  "/root/repo/tests/test_ooo.cpp" "tests/CMakeFiles/vcfr_tests.dir/test_ooo.cpp.o" "gcc" "tests/CMakeFiles/vcfr_tests.dir/test_ooo.cpp.o.d"
  "/root/repo/tests/test_opcodes.cpp" "tests/CMakeFiles/vcfr_tests.dir/test_opcodes.cpp.o" "gcc" "tests/CMakeFiles/vcfr_tests.dir/test_opcodes.cpp.o.d"
  "/root/repo/tests/test_power.cpp" "tests/CMakeFiles/vcfr_tests.dir/test_power.cpp.o" "gcc" "tests/CMakeFiles/vcfr_tests.dir/test_power.cpp.o.d"
  "/root/repo/tests/test_rerandomize.cpp" "tests/CMakeFiles/vcfr_tests.dir/test_rerandomize.cpp.o" "gcc" "tests/CMakeFiles/vcfr_tests.dir/test_rerandomize.cpp.o.d"
  "/root/repo/tests/test_rewriter.cpp" "tests/CMakeFiles/vcfr_tests.dir/test_rewriter.cpp.o" "gcc" "tests/CMakeFiles/vcfr_tests.dir/test_rewriter.cpp.o.d"
  "/root/repo/tests/test_robustness.cpp" "tests/CMakeFiles/vcfr_tests.dir/test_robustness.cpp.o" "gcc" "tests/CMakeFiles/vcfr_tests.dir/test_robustness.cpp.o.d"
  "/root/repo/tests/test_serialize.cpp" "tests/CMakeFiles/vcfr_tests.dir/test_serialize.cpp.o" "gcc" "tests/CMakeFiles/vcfr_tests.dir/test_serialize.cpp.o.d"
  "/root/repo/tests/test_sim.cpp" "tests/CMakeFiles/vcfr_tests.dir/test_sim.cpp.o" "gcc" "tests/CMakeFiles/vcfr_tests.dir/test_sim.cpp.o.d"
  "/root/repo/tests/test_sim_vcfr.cpp" "tests/CMakeFiles/vcfr_tests.dir/test_sim_vcfr.cpp.o" "gcc" "tests/CMakeFiles/vcfr_tests.dir/test_sim_vcfr.cpp.o.d"
  "/root/repo/tests/test_swret.cpp" "tests/CMakeFiles/vcfr_tests.dir/test_swret.cpp.o" "gcc" "tests/CMakeFiles/vcfr_tests.dir/test_swret.cpp.o.d"
  "/root/repo/tests/test_trace_entropy.cpp" "tests/CMakeFiles/vcfr_tests.dir/test_trace_entropy.cpp.o" "gcc" "tests/CMakeFiles/vcfr_tests.dir/test_trace_entropy.cpp.o.d"
  "/root/repo/tests/test_workloads.cpp" "tests/CMakeFiles/vcfr_tests.dir/test_workloads.cpp.o" "gcc" "tests/CMakeFiles/vcfr_tests.dir/test_workloads.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/vcfr.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
