# Empty dependencies file for vcfr_tests.
# This may be replaced when dependencies are built.
