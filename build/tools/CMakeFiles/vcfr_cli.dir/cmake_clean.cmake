file(REMOVE_RECURSE
  "CMakeFiles/vcfr_cli.dir/vcfr_cli.cpp.o"
  "CMakeFiles/vcfr_cli.dir/vcfr_cli.cpp.o.d"
  "vcfr"
  "vcfr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vcfr_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
