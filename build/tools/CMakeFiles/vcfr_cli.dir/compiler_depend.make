# Empty compiler generated dependencies file for vcfr_cli.
# This may be replaced when dependencies are built.
