# Empty dependencies file for ablation_return_options.
# This may be replaced when dependencies are built.
