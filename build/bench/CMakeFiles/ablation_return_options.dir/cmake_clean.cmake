file(REMOVE_RECURSE
  "CMakeFiles/ablation_return_options.dir/ablation_return_options.cpp.o"
  "CMakeFiles/ablation_return_options.dir/ablation_return_options.cpp.o.d"
  "ablation_return_options"
  "ablation_return_options.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_return_options.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
