file(REMOVE_RECURSE
  "CMakeFiles/fig03_naive_cache.dir/fig03_naive_cache.cpp.o"
  "CMakeFiles/fig03_naive_cache.dir/fig03_naive_cache.cpp.o.d"
  "fig03_naive_cache"
  "fig03_naive_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig03_naive_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
