# Empty compiler generated dependencies file for fig03_naive_cache.
# This may be replaced when dependencies are built.
