# Empty dependencies file for fig13_drc_ipc.
# This may be replaced when dependencies are built.
