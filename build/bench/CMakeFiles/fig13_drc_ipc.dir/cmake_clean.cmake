file(REMOVE_RECURSE
  "CMakeFiles/fig13_drc_ipc.dir/fig13_drc_ipc.cpp.o"
  "CMakeFiles/fig13_drc_ipc.dir/fig13_drc_ipc.cpp.o.d"
  "fig13_drc_ipc"
  "fig13_drc_ipc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_drc_ipc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
