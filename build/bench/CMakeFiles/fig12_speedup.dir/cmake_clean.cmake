file(REMOVE_RECURSE
  "CMakeFiles/fig12_speedup.dir/fig12_speedup.cpp.o"
  "CMakeFiles/fig12_speedup.dir/fig12_speedup.cpp.o.d"
  "fig12_speedup"
  "fig12_speedup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_speedup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
