# Empty dependencies file for future_superscalar.
# This may be replaced when dependencies are built.
