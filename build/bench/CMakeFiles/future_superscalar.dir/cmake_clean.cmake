file(REMOVE_RECURSE
  "CMakeFiles/future_superscalar.dir/future_superscalar.cpp.o"
  "CMakeFiles/future_superscalar.dir/future_superscalar.cpp.o.d"
  "future_superscalar"
  "future_superscalar.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/future_superscalar.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
