file(REMOVE_RECURSE
  "CMakeFiles/fig14_drc_missrate.dir/fig14_drc_missrate.cpp.o"
  "CMakeFiles/fig14_drc_missrate.dir/fig14_drc_missrate.cpp.o.d"
  "fig14_drc_missrate"
  "fig14_drc_missrate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_drc_missrate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
