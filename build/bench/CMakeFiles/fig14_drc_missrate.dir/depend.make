# Empty dependencies file for fig14_drc_missrate.
# This may be replaced when dependencies are built.
