# Empty compiler generated dependencies file for ablation_drc_backing.
# This may be replaced when dependencies are built.
