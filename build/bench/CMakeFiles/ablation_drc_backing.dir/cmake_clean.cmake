file(REMOVE_RECURSE
  "CMakeFiles/ablation_drc_backing.dir/ablation_drc_backing.cpp.o"
  "CMakeFiles/ablation_drc_backing.dir/ablation_drc_backing.cpp.o.d"
  "ablation_drc_backing"
  "ablation_drc_backing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_drc_backing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
