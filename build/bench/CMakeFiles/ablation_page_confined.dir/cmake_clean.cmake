file(REMOVE_RECURSE
  "CMakeFiles/ablation_page_confined.dir/ablation_page_confined.cpp.o"
  "CMakeFiles/ablation_page_confined.dir/ablation_page_confined.cpp.o.d"
  "ablation_page_confined"
  "ablation_page_confined.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_page_confined.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
