# Empty compiler generated dependencies file for ablation_page_confined.
# This may be replaced when dependencies are built.
