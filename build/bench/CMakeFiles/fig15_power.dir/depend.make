# Empty dependencies file for fig15_power.
# This may be replaced when dependencies are built.
