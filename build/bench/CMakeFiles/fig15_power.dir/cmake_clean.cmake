file(REMOVE_RECURSE
  "CMakeFiles/fig15_power.dir/fig15_power.cpp.o"
  "CMakeFiles/fig15_power.dir/fig15_power.cpp.o.d"
  "fig15_power"
  "fig15_power.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
