# Empty compiler generated dependencies file for fig02_emulation.
# This may be replaced when dependencies are built.
