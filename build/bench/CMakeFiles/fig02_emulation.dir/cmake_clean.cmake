file(REMOVE_RECURSE
  "CMakeFiles/fig02_emulation.dir/fig02_emulation.cpp.o"
  "CMakeFiles/fig02_emulation.dir/fig02_emulation.cpp.o.d"
  "fig02_emulation"
  "fig02_emulation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig02_emulation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
