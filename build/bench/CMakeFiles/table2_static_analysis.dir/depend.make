# Empty dependencies file for table2_static_analysis.
# This may be replaced when dependencies are built.
