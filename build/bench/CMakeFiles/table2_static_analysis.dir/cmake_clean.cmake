file(REMOVE_RECURSE
  "CMakeFiles/table2_static_analysis.dir/table2_static_analysis.cpp.o"
  "CMakeFiles/table2_static_analysis.dir/table2_static_analysis.cpp.o.d"
  "table2_static_analysis"
  "table2_static_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_static_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
