# Empty dependencies file for future_ooo.
# This may be replaced when dependencies are built.
