file(REMOVE_RECURSE
  "CMakeFiles/future_ooo.dir/future_ooo.cpp.o"
  "CMakeFiles/future_ooo.dir/future_ooo.cpp.o.d"
  "future_ooo"
  "future_ooo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/future_ooo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
