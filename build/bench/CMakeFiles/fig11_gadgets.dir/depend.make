# Empty dependencies file for fig11_gadgets.
# This may be replaced when dependencies are built.
