file(REMOVE_RECURSE
  "CMakeFiles/fig11_gadgets.dir/fig11_gadgets.cpp.o"
  "CMakeFiles/fig11_gadgets.dir/fig11_gadgets.cpp.o.d"
  "fig11_gadgets"
  "fig11_gadgets.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_gadgets.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
