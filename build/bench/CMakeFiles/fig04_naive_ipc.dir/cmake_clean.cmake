file(REMOVE_RECURSE
  "CMakeFiles/fig04_naive_ipc.dir/fig04_naive_ipc.cpp.o"
  "CMakeFiles/fig04_naive_ipc.dir/fig04_naive_ipc.cpp.o.d"
  "fig04_naive_ipc"
  "fig04_naive_ipc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig04_naive_ipc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
