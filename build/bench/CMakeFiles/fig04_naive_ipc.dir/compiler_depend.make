# Empty compiler generated dependencies file for fig04_naive_ipc.
# This may be replaced when dependencies are built.
