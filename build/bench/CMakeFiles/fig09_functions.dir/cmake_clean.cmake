file(REMOVE_RECURSE
  "CMakeFiles/fig09_functions.dir/fig09_functions.cpp.o"
  "CMakeFiles/fig09_functions.dir/fig09_functions.cpp.o.d"
  "fig09_functions"
  "fig09_functions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_functions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
