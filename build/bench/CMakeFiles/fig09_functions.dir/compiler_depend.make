# Empty compiler generated dependencies file for fig09_functions.
# This may be replaced when dependencies are built.
