#!/usr/bin/env python3
"""Validate a vcfr Chrome trace-event JSON export.

Checks (each failure is reported and the script exits nonzero):
  1. The file parses as Chrome trace JSON ({"traceEvents": [...]}).
  2. Per lane ("pid"), event timestamps are monotonically non-decreasing
     for every non-metadata event — the exporter merge-sorts by
     (cycle, lane, intra-lane order), so a violation means the export
     (or a lane's clock) is broken.
  3. Request flows are matched: every flow id has exactly one "s"
     (start) and exactly one "f" (end), with start.ts <= end.ts; "t"
     steps are only allowed on ids that have a start.

With --csv LATENCY.CSV, also audits the per-request critical-path
conservation invariant from `vcfr serve --latency-out`:
  queue + run + restart_loss + commit_stall == latency   (every row).

Usage: validate_trace.py TRACE.JSON [--csv LATENCY.CSV]
"""

import csv
import json
import sys


def fail(errors, msg):
    errors.append(msg)
    if len(errors) <= 20:
        print(f"FAIL: {msg}", file=sys.stderr)


def validate_trace(path, errors):
    with open(path, "r", encoding="utf-8") as f:
        try:
            doc = json.load(f)
        except json.JSONDecodeError as e:
            fail(errors, f"{path}: not valid JSON: {e}")
            return
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        fail(errors, f"{path}: no traceEvents array")
        return

    last_ts = {}  # pid -> last seen ts
    flows = {}  # flow id -> {"s": n, "t": n, "f": n, "s_ts": ts, "f_ts": ts}
    n_real = 0
    for i, e in enumerate(events):
        ph = e.get("ph")
        if ph == "M":  # metadata carries no timestamp semantics
            continue
        n_real += 1
        pid, ts = e.get("pid"), e.get("ts")
        if ts is None:
            fail(errors, f"{path}: event {i} ({ph}) has no ts")
            continue
        if pid in last_ts and ts < last_ts[pid]:
            fail(
                errors,
                f"{path}: lane {pid} ts regressed at event {i}: "
                f"{last_ts[pid]} -> {ts}",
            )
        last_ts[pid] = ts
        if ph in ("s", "t", "f"):
            fid = e.get("id")
            if fid is None:
                fail(errors, f"{path}: flow event {i} ({ph}) has no id")
                continue
            rec = flows.setdefault(fid, {"s": 0, "t": 0, "f": 0})
            rec[ph] += 1
            if ph == "s":
                rec["s_ts"] = ts
            if ph == "f":
                rec["f_ts"] = ts

    for fid, rec in sorted(flows.items()):
        if rec["s"] != 1:
            fail(errors, f"{path}: flow {fid} has {rec['s']} starts (want 1)")
        if rec["f"] != 1:
            fail(errors, f"{path}: flow {fid} has {rec['f']} ends (want 1)")
        if rec["s"] == 1 and rec["f"] == 1 and rec["s_ts"] > rec["f_ts"]:
            fail(
                errors,
                f"{path}: flow {fid} ends before it starts "
                f"({rec['s_ts']} > {rec['f_ts']})",
            )
        if rec["t"] > 0 and rec["s"] == 0:
            fail(errors, f"{path}: flow {fid} has steps but no start")

    print(
        f"{path}: {n_real} events across {len(last_ts)} lanes, "
        f"{len(flows)} request flows"
    )


def validate_csv(path, errors):
    rows = 0
    with open(path, "r", encoding="utf-8", newline="") as f:
        for row in csv.DictReader(f):
            rows += 1
            parts = [
                int(row["queue"]),
                int(row["run"]),
                int(row["restart_loss"]),
                int(row["commit_stall"]),
            ]
            if sum(parts) != int(row["latency"]):
                fail(
                    errors,
                    f"{path}: tenant {row['tenant']} request "
                    f"{row['request']}: components sum to {sum(parts)}, "
                    f"latency is {row['latency']}",
                )
    print(f"{path}: {rows} requests, conservation holds" if not errors else
          f"{path}: {rows} requests checked")


def main(argv):
    if len(argv) < 2:
        print(__doc__, file=sys.stderr)
        return 2
    trace_path = argv[1]
    csv_path = None
    if "--csv" in argv:
        i = argv.index("--csv")
        if i + 1 >= len(argv):
            print("--csv needs a path", file=sys.stderr)
            return 2
        csv_path = argv[i + 1]

    errors = []
    validate_trace(trace_path, errors)
    if csv_path:
        validate_csv(csv_path, errors)
    if errors:
        print(f"{len(errors)} validation failures", file=sys.stderr)
        return 1
    print("trace validation: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
