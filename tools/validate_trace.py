#!/usr/bin/env python3
"""Validate a vcfr Chrome trace-event JSON export.

Checks (each failure is reported and the script exits nonzero):
  1. The file parses as Chrome trace JSON ({"traceEvents": [...]}).
  2. Per lane ("pid"), event timestamps are monotonically non-decreasing
     for every non-metadata event — the exporter merge-sorts by
     (cycle, lane, intra-lane order), so a violation means the export
     (or a lane's clock) is broken.
  3. Request flows are matched: every flow id has exactly one "s"
     (start) and exactly one "f" (end), with start.ts <= end.ts; "t"
     steps are only allowed on ids that have a start.

With --csv LATENCY.CSV, also audits the per-request critical-path
conservation invariant from `vcfr serve --latency-out`:
  queue + run + restart_loss + commit_stall == latency   (every row).

Leak instants (--taint runs) are validated wherever they appear: every
"leak" event must be an instant on a core lane with a positive depth.
With --journal JOURNAL.JSONL, the trace's leak instants are also
cross-referenced against the flight recorder's "leak" entries — same
count, same depth multiset — so a firing can't be traced but not
journaled (or vice versa).

Usage: validate_trace.py TRACE.JSON [--csv LATENCY.CSV]
                                    [--journal JOURNAL.JSONL]
"""

import csv
import json
import sys


def fail(errors, msg):
    errors.append(msg)
    if len(errors) <= 20:
        print(f"FAIL: {msg}", file=sys.stderr)


def validate_trace(path, errors):
    with open(path, "r", encoding="utf-8") as f:
        try:
            doc = json.load(f)
        except json.JSONDecodeError as e:
            fail(errors, f"{path}: not valid JSON: {e}")
            return
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        fail(errors, f"{path}: no traceEvents array")
        return

    last_ts = {}  # pid -> last seen ts
    flows = {}  # flow id -> {"s": n, "t": n, "f": n, "s_ts": ts, "f_ts": ts}
    lane_names = {}  # pid -> process_name metadata
    leak_depths = []  # args.v of every "leak" instant, in order
    n_real = 0
    for i, e in enumerate(events):
        ph = e.get("ph")
        if ph == "M":  # metadata carries no timestamp semantics
            if e.get("name") == "process_name":
                lane_names[e.get("pid")] = e.get("args", {}).get("name", "")
            continue
        n_real += 1
        pid, ts = e.get("pid"), e.get("ts")
        if ts is None:
            fail(errors, f"{path}: event {i} ({ph}) has no ts")
            continue
        if pid in last_ts and ts < last_ts[pid]:
            fail(
                errors,
                f"{path}: lane {pid} ts regressed at event {i}: "
                f"{last_ts[pid]} -> {ts}",
            )
        last_ts[pid] = ts
        if e.get("name") == "leak":
            # A taint-sink firing: instant phase, core lane, sane depth.
            if ph != "i":
                fail(errors, f"{path}: leak event {i} has phase {ph!r} "
                             f"(want instant 'i')")
            depth = e.get("args", {}).get("v")
            if not isinstance(depth, int) or depth < 1:
                fail(errors, f"{path}: leak event {i} has depth {depth!r} "
                             f"(want >= 1)")
            lane = lane_names.get(pid, "")
            if lane and not lane.startswith("core"):
                fail(errors, f"{path}: leak event {i} sits on lane "
                             f"{lane!r} (want a core lane)")
            leak_depths.append(depth)
        if ph in ("s", "t", "f"):
            fid = e.get("id")
            if fid is None:
                fail(errors, f"{path}: flow event {i} ({ph}) has no id")
                continue
            rec = flows.setdefault(fid, {"s": 0, "t": 0, "f": 0})
            rec[ph] += 1
            if ph == "s":
                rec["s_ts"] = ts
            if ph == "f":
                rec["f_ts"] = ts

    for fid, rec in sorted(flows.items()):
        if rec["s"] != 1:
            fail(errors, f"{path}: flow {fid} has {rec['s']} starts (want 1)")
        if rec["f"] != 1:
            fail(errors, f"{path}: flow {fid} has {rec['f']} ends (want 1)")
        if rec["s"] == 1 and rec["f"] == 1 and rec["s_ts"] > rec["f_ts"]:
            fail(
                errors,
                f"{path}: flow {fid} ends before it starts "
                f"({rec['s_ts']} > {rec['f_ts']})",
            )
        if rec["t"] > 0 and rec["s"] == 0:
            fail(errors, f"{path}: flow {fid} has steps but no start")

    print(
        f"{path}: {n_real} events across {len(last_ts)} lanes, "
        f"{len(flows)} request flows, {len(leak_depths)} leak instants"
    )
    return leak_depths


def validate_journal(path, trace_leak_depths, errors):
    """Cross-references flight-recorder "leak" entries with the trace."""
    journal_depths = []
    with open(path, "r", encoding="utf-8") as f:
        for n, line in enumerate(f):
            line = line.strip()
            if not line:
                continue
            try:
                entry = json.loads(line)
            except json.JSONDecodeError as e:
                fail(errors, f"{path}: line {n + 1} is not JSON: {e}")
                continue
            if entry.get("kind") != "leak":
                continue
            depth = entry.get("arg")
            if not isinstance(depth, int) or depth < 1:
                fail(errors, f"{path}: leak entry line {n + 1} has depth "
                             f"{depth!r} (want >= 1)")
            detail = entry.get("detail", "")
            if "origin=" not in detail or "sink=" not in detail:
                fail(errors, f"{path}: leak entry line {n + 1} lacks "
                             f"provenance detail: {detail!r}")
            journal_depths.append(depth)
    if trace_leak_depths is not None:
        if len(journal_depths) != len(trace_leak_depths):
            fail(errors,
                 f"{path}: {len(journal_depths)} journaled leaks vs "
                 f"{len(trace_leak_depths)} trace leak instants")
        elif sorted(journal_depths) != sorted(trace_leak_depths):
            fail(errors, f"{path}: journaled leak depths disagree with the "
                         f"trace's leak instants")
    print(f"{path}: {len(journal_depths)} journaled leaks, trace agrees"
          if not errors else f"{path}: {len(journal_depths)} journaled leaks")


def validate_csv(path, errors):
    rows = 0
    with open(path, "r", encoding="utf-8", newline="") as f:
        for row in csv.DictReader(f):
            rows += 1
            parts = [
                int(row["queue"]),
                int(row["run"]),
                int(row["restart_loss"]),
                int(row["commit_stall"]),
            ]
            if sum(parts) != int(row["latency"]):
                fail(
                    errors,
                    f"{path}: tenant {row['tenant']} request "
                    f"{row['request']}: components sum to {sum(parts)}, "
                    f"latency is {row['latency']}",
                )
    print(f"{path}: {rows} requests, conservation holds" if not errors else
          f"{path}: {rows} requests checked")


def main(argv):
    if len(argv) < 2:
        print(__doc__, file=sys.stderr)
        return 2
    trace_path = argv[1]
    csv_path = None
    journal_path = None
    if "--csv" in argv:
        i = argv.index("--csv")
        if i + 1 >= len(argv):
            print("--csv needs a path", file=sys.stderr)
            return 2
        csv_path = argv[i + 1]
    if "--journal" in argv:
        i = argv.index("--journal")
        if i + 1 >= len(argv):
            print("--journal needs a path", file=sys.stderr)
            return 2
        journal_path = argv[i + 1]

    errors = []
    leak_depths = validate_trace(trace_path, errors)
    if csv_path:
        validate_csv(csv_path, errors)
    if journal_path:
        validate_journal(journal_path, leak_depths, errors)
    if errors:
        print(f"{len(errors)} validation failures", file=sys.stderr)
        return 1
    print("trace validation: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
