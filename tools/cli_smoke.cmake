# End-to-end CLI smoke: asm -> stats -> randomize -> run --enforce-tags.
file(WRITE "${WORK_DIR}/smoke.vx" "
.entry main
.func main
main:
  mov r1, 6
  call square
  out r1
  halt
.func square
square:
  mul r1, r1
  ret
")
execute_process(COMMAND ${VCFR_BIN} asm ${WORK_DIR}/smoke.vx -o ${WORK_DIR}/smoke.vxe
                RESULT_VARIABLE rc1)
execute_process(COMMAND ${VCFR_BIN} stats ${WORK_DIR}/smoke.vxe RESULT_VARIABLE rc2)
execute_process(COMMAND ${VCFR_BIN} randomize ${WORK_DIR}/smoke.vxe --seed 7
                -o ${WORK_DIR}/smoke.vcfr.vxe RESULT_VARIABLE rc3)
execute_process(COMMAND ${VCFR_BIN} run ${WORK_DIR}/smoke.vcfr.vxe --enforce-tags
                OUTPUT_VARIABLE out RESULT_VARIABLE rc4)
if(NOT rc1 EQUAL 0 OR NOT rc2 EQUAL 0 OR NOT rc3 EQUAL 0 OR NOT rc4 EQUAL 0)
  message(FATAL_ERROR "CLI pipeline failed: ${rc1} ${rc2} ${rc3} ${rc4}")
endif()
string(FIND "${out}" "out: 36" found)
if(found EQUAL -1)
  message(FATAL_ERROR "expected output 36, got: ${out}")
endif()

# Fleet smoke: four workloads time-sliced on two cores, architectural
# results verified against isolated runs (the command exits non-zero on
# any mismatch or fault).
execute_process(COMMAND ${VCFR_BIN} fleet --procs 4 --cores 2 --slice 2000
                --scale 0 --seed 7
                OUTPUT_VARIABLE fleet_out RESULT_VARIABLE rc5)
if(NOT rc5 EQUAL 0)
  message(FATAL_ERROR "fleet smoke failed (${rc5}): ${fleet_out}")
endif()
string(FIND "${fleet_out}" "\"context_switches\"" found_cs)
if(found_cs EQUAL -1)
  message(FATAL_ERROR "fleet report missing context_switches: ${fleet_out}")
endif()
string(FIND "${fleet_out}" "\"arch_match\": false" found_mismatch)
if(NOT found_mismatch EQUAL -1)
  message(FATAL_ERROR "fleet run diverged from isolated runs: ${fleet_out}")
endif()
