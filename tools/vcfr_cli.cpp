// vcfr — command-line driver for the whole pipeline.
//
//   vcfr asm <src.vx> -o <out.vxe>          assemble VX source
//   vcfr disasm <img.vxe>                    list instructions
//   vcfr stats <img.vxe>                     static control-flow analysis
//   vcfr randomize <img.vxe> -o <out.vxe>    ILR-randomize
//       [--seed N] [--naive] [--software-returns] [--page-confined]
//       (default output is the VCFR image; --naive emits the relocated one)
//   vcfr run <img.vxe> [--enforce-tags] [--max-instr N]   golden-model run
//   vcfr sim <img.vxe> [--drc N] [--max-instr N]          cycle simulation
//   vcfr scan <img.vxe>                      gadget scan + payload attempt
//   vcfr workload <name> [--scale S] -o <out.vxe>   emit a suite program
//   vcfr trace <img.vxe> [--max-instr N] [--regs]    per-instruction trace
//   vcfr cfg <img.vxe>                               Graphviz dot to stdout
//   vcfr entropy <img.vxe> [--seed N] [--page-confined]   SV-C entropy report
//   vcfr fleet [--procs N] [--cores N] [--slice N] [--rerand N]
//       [--workloads a,b,c] [--scale S] [--seed N] [--json] [--no-baseline]
//       time-slice N independently randomized workloads on shared L2+DRAM
#include <cstdio>
#include <cstring>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "binary/serialize.hpp"
#include "emu/emulator.hpp"
#include "emu/trace.hpp"
#include "gadget/payload.hpp"
#include "gadget/scanner.hpp"
#include "isa/assembler.hpp"
#include "isa/disassembler.hpp"
#include "isa/encoding.hpp"
#include "os/kernel.hpp"
#include "rewriter/cfg.hpp"
#include "rewriter/entropy.hpp"
#include "rewriter/randomizer.hpp"
#include "sim/cpu.hpp"
#include "workloads/suite.hpp"

namespace {

using namespace vcfr;

struct Args {
  std::vector<std::string> positional;
  std::string output;
  uint64_t seed = 1;
  uint64_t max_instr = 100'000'000;
  uint32_t drc = 128;
  int scale = 1;
  bool naive = false;
  bool software_returns = false;
  bool page_confined = false;
  bool enforce_tags = false;
  bool regs = false;
  uint32_t procs = 4;
  uint32_t cores = 2;
  uint64_t slice = 50'000;
  uint32_t rerand = 0;
  std::string workload_list;
  bool json = false;
  bool no_baseline = false;
};

Args parse_args(int argc, char** argv) {
  Args args;
  for (int i = 2; i < argc; ++i) {
    const std::string a = argv[i];
    auto value = [&]() -> std::string {
      if (i + 1 >= argc) throw std::runtime_error("missing value for " + a);
      return argv[++i];
    };
    if (a == "-o" || a == "--output") {
      args.output = value();
    } else if (a == "--seed") {
      args.seed = std::stoull(value());
    } else if (a == "--max-instr") {
      args.max_instr = std::stoull(value());
    } else if (a == "--drc") {
      args.drc = static_cast<uint32_t>(std::stoul(value()));
    } else if (a == "--scale") {
      args.scale = std::stoi(value());
    } else if (a == "--naive") {
      args.naive = true;
    } else if (a == "--software-returns") {
      args.software_returns = true;
    } else if (a == "--page-confined") {
      args.page_confined = true;
    } else if (a == "--enforce-tags") {
      args.enforce_tags = true;
    } else if (a == "--regs") {
      args.regs = true;
    } else if (a == "--procs") {
      args.procs = static_cast<uint32_t>(std::stoul(value()));
    } else if (a == "--cores") {
      args.cores = static_cast<uint32_t>(std::stoul(value()));
    } else if (a == "--slice") {
      args.slice = std::stoull(value());
    } else if (a == "--rerand") {
      args.rerand = static_cast<uint32_t>(std::stoul(value()));
    } else if (a == "--workloads") {
      args.workload_list = value();
    } else if (a == "--json") {
      args.json = true;
    } else if (a == "--no-baseline") {
      args.no_baseline = true;
    } else if (!a.empty() && a[0] == '-') {
      throw std::runtime_error("unknown flag: " + a);
    } else {
      args.positional.push_back(a);
    }
  }
  return args;
}

std::string require_input(const Args& args) {
  if (args.positional.empty()) throw std::runtime_error("missing input file");
  return args.positional.front();
}

int cmd_asm(const Args& args) {
  const std::string path = require_input(args);
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open " + path);
  std::stringstream ss;
  ss << in.rdbuf();
  binary::Image image = isa::assemble(ss.str());
  if (image.name.empty()) image.name = path;
  const std::string out = args.output.empty() ? path + ".vxe" : args.output;
  binary::save(image, out);
  std::printf("assembled %zu code bytes, %zu data bytes -> %s\n",
              image.code.size(), image.data.size(), out.c_str());
  return 0;
}

int cmd_disasm(const Args& args) {
  const auto image = binary::load_file(require_input(args));
  if (image.layout == binary::Layout::kNaiveIlr) {
    std::printf("; naive-ILR image: %zu relocated instructions\n",
                image.sparse_code.size());
    for (const auto& [addr, bytes] : image.sparse_code) {
      const auto d = isa::decode(bytes);
      if (d) std::printf("%08x: %s\n", addr, isa::format_instr(*d).c_str());
    }
    return 0;
  }
  std::fputs(isa::listing(image).c_str(), stdout);
  return 0;
}

int cmd_stats(const Args& args) {
  const auto image = binary::load_file(require_input(args));
  const auto cfg = rewriter::build_cfg(image);
  const auto s = rewriter::static_stats(image, cfg);
  std::printf("name:                %s\n", image.name.c_str());
  std::printf("instructions:        %llu\n",
              static_cast<unsigned long long>(s.instructions));
  std::printf("direct transfers:    %llu\n",
              static_cast<unsigned long long>(s.direct_transfers));
  std::printf("indirect transfers:  %llu\n",
              static_cast<unsigned long long>(s.indirect_transfers));
  std::printf("function calls:      %llu (indirect: %llu)\n",
              static_cast<unsigned long long>(s.function_calls),
              static_cast<unsigned long long>(s.indirect_calls));
  std::printf("returns:             %llu\n",
              static_cast<unsigned long long>(s.returns));
  std::printf("functions with ret:  %llu, without: %llu\n",
              static_cast<unsigned long long>(s.functions_with_ret),
              static_cast<unsigned long long>(s.functions_without_ret));
  return 0;
}

int cmd_randomize(const Args& args) {
  const auto image = binary::load_file(require_input(args));
  rewriter::RandomizeOptions opts;
  opts.seed = args.seed;
  if (args.software_returns) {
    opts.return_option = rewriter::ReturnOption::kSoftwareRewrite;
  }
  if (args.page_confined) {
    opts.placement = rewriter::PlacementPolicy::kPageConfined;
  }
  const auto rr = rewriter::randomize(image, opts);
  const auto& out_image = args.naive ? rr.naive : rr.vcfr;
  const std::string out =
      args.output.empty() ? image.name + (args.naive ? ".naive.vxe" : ".vcfr.vxe")
                          : args.output;
  binary::save(out_image, out);
  std::printf("relocated %zu instructions (seed %llu); failover set: %zu; "
              "-> %s\n",
              rr.placement.size(),
              static_cast<unsigned long long>(args.seed),
              rr.analysis.unrandomized.size(), out.c_str());
  if (args.software_returns) {
    std::printf("software return rewrite: %u calls, +%.1f%% code\n",
                rr.sw_stats.calls_rewritten,
                rr.sw_stats.expansion_percent());
  }
  return 0;
}

int cmd_run(const Args& args) {
  const auto image = binary::load_file(require_input(args));
  emu::RunLimits limits;
  limits.max_instructions = args.max_instr;
  limits.enforce_tags = args.enforce_tags;
  const auto r = emu::run_image(image, limits);
  for (uint32_t v : r.output) std::printf("out: %u (0x%x)\n", v, v);
  std::printf("%s after %llu instructions",
              r.halted ? "halted" : (r.error.empty() ? "limit" : "FAULT"),
              static_cast<unsigned long long>(r.stats.instructions));
  if (!r.error.empty()) std::printf(": %s", r.error.c_str());
  std::printf("\n");
  return r.halted ? 0 : 1;
}

int cmd_sim(const Args& args) {
  const auto image = binary::load_file(require_input(args));
  sim::CpuConfig config;
  config.drc.entries = args.drc;
  const auto r = sim::simulate(image, args.max_instr, config);
  std::printf("instructions: %llu\ncycles:       %llu\nIPC:          %.3f\n",
              static_cast<unsigned long long>(r.instructions),
              static_cast<unsigned long long>(r.cycles), r.ipc());
  std::printf("IL1 miss:     %.3f%%   DL1 miss: %.3f%%   L2 miss: %.3f%%\n",
              100 * r.il1.miss_rate(), 100 * r.dl1.miss_rate(),
              100 * r.l2.miss_rate());
  std::printf("branch acc:   %.2f%%   DRC: %llu lookups, %.1f%% miss\n",
              100 * r.bpred.cond_accuracy(),
              static_cast<unsigned long long>(r.drc.lookups),
              100 * r.drc.miss_rate());
  std::printf("power:        %s\n", r.power.report().c_str());
  return 0;
}

int cmd_scan(const Args& args) {
  const auto image = binary::load_file(require_input(args));
  const auto result = gadget::scan(image);
  std::printf("%zu gadgets (%llu aligned, %llu unaligned) in %llu bytes\n",
              result.gadgets.size(),
              static_cast<unsigned long long>(result.aligned_count),
              static_cast<unsigned long long>(result.unaligned_count),
              static_cast<unsigned long long>(result.bytes_scanned));
  for (auto kind :
       {gadget::GadgetKind::kPopReg, gadget::GadgetKind::kMovReg,
        gadget::GadgetKind::kArith, gadget::GadgetKind::kLoad,
        gadget::GadgetKind::kStore, gadget::GadgetKind::kSys,
        gadget::GadgetKind::kOther}) {
    std::printf("  %-8s %zu\n", std::string(gadget::kind_name(kind)).c_str(),
                result.count(kind));
  }
  const auto payloads = gadget::compile_payloads(result.gadgets);
  for (const auto& p : payloads) {
    std::printf("payload '%s': %s\n", p.name.c_str(),
                p.assembled ? "ASSEMBLED" : "failed");
  }
  return 0;
}

int cmd_workload(const Args& args) {
  const std::string name = require_input(args);
  const auto image = workloads::make(name, args.scale);
  const std::string out = args.output.empty() ? name + ".vxe" : args.output;
  binary::save(image, out);
  std::printf("%s (scale %d): %zu code bytes -> %s\n", name.c_str(),
              args.scale, image.code.size(), out.c_str());
  return 0;
}

int cmd_trace(const Args& args) {
  const auto image = binary::load_file(require_input(args));
  emu::TraceOptions opts;
  opts.max_steps = args.max_instr == 100'000'000 ? 64 : args.max_instr;
  opts.show_registers = args.regs;
  std::fputs(emu::trace(image, opts).c_str(), stdout);
  return 0;
}

int cmd_cfg(const Args& args) {
  const auto image = binary::load_file(require_input(args));
  const auto cfg = rewriter::build_cfg(image);
  std::fputs(rewriter::to_dot(cfg).c_str(), stdout);
  return 0;
}

int cmd_entropy(const Args& args) {
  const auto image = binary::load_file(require_input(args));
  rewriter::RandomizeOptions opts;
  opts.seed = args.seed;
  if (args.page_confined) {
    opts.placement = rewriter::PlacementPolicy::kPageConfined;
  }
  const auto rr = rewriter::randomize(image, opts);
  const auto report = rewriter::analyze_entropy(rr, opts);
  std::printf("randomized instructions: %zu\n", report.randomized_instructions);
  std::printf("failover instructions:   %zu (zero entropy)\n",
              report.failover_instructions);
  std::printf("entropy coverage:        %.2f%%\n", 100 * report.coverage());
  std::printf("bits per instruction:    %.1f\n", report.bits_per_instruction);
  std::printf("single-guess hit prob:   %.3g\n",
              report.single_guess_probability);
  std::printf("expected crash attempts: %.3g\n", report.expected_attempts);
  return 0;
}

int cmd_fleet(const Args& args) {
  os::KernelConfig kc;
  kc.cores = args.cores;
  kc.sched.slice_instructions = args.slice;
  kc.cpu.drc.entries = args.drc;
  kc.measure_isolated = !args.no_baseline;

  // Workloads: explicit comma-separated list, or cycle the SPEC-like
  // suite in the paper's order.
  std::vector<std::string> names;
  if (!args.workload_list.empty()) {
    std::stringstream ss(args.workload_list);
    std::string item;
    while (std::getline(ss, item, ',')) {
      if (!item.empty()) names.push_back(item);
    }
  } else {
    names = workloads::spec_names();
  }
  if (names.empty()) throw std::runtime_error("no workloads given");

  os::Kernel kernel(kc);
  for (uint32_t i = 0; i < args.procs; ++i) {
    os::ProcessConfig pc;
    pc.workload = names[i % names.size()];
    pc.scale = args.scale;
    // Distinct placement per process even under one fleet seed.
    pc.seed = args.seed ^ (0x9e3779b97f4a7c15ull * (i + 1));
    pc.max_instructions = args.max_instr;
    pc.rerandomize.every_slices = args.rerand;
    kernel.spawn(pc);
  }

  const os::FleetReport report = kernel.run();
  if (args.json) {
    std::fputs(report.to_json().c_str(), stdout);
  } else {
    std::fputs(report.summary().c_str(), stdout);
    std::fputs(report.to_json().c_str(), stdout);
  }
  for (const auto& p : report.processes) {
    if (!p.arch_match && kc.measure_isolated) return 1;
    if (!p.error.empty()) return 1;
  }
  return 0;
}

void usage() {
  std::fputs(
      "usage: vcfr <asm|disasm|stats|randomize|run|sim|scan|workload|trace|"
      "cfg|entropy|fleet> ...\n"
      "see the header of tools/vcfr_cli.cpp for flags\n",
      stderr);
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    usage();
    return 2;
  }
  const std::string cmd = argv[1];
  try {
    const Args args = parse_args(argc, argv);
    if (cmd == "asm") return cmd_asm(args);
    if (cmd == "disasm") return cmd_disasm(args);
    if (cmd == "stats") return cmd_stats(args);
    if (cmd == "randomize") return cmd_randomize(args);
    if (cmd == "run") return cmd_run(args);
    if (cmd == "sim") return cmd_sim(args);
    if (cmd == "scan") return cmd_scan(args);
    if (cmd == "workload") return cmd_workload(args);
    if (cmd == "trace") return cmd_trace(args);
    if (cmd == "cfg") return cmd_cfg(args);
    if (cmd == "entropy") return cmd_entropy(args);
    if (cmd == "fleet") return cmd_fleet(args);
    usage();
    return 2;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "vcfr %s: %s\n", cmd.c_str(), e.what());
    return 1;
  }
}
