// vcfr — command-line driver for the whole pipeline.
//
// Run `vcfr` with no arguments for the full per-subcommand flag listing
// (kept in usage() below). Flags accept both `--flag value` and
// `--flag=value` spellings, and every subcommand rejects flags it does
// not understand.
//
// The telemetry flags (--stats-json, --trace-out, --sample-interval,
// --sample-out) are shared by run/sim/workload/fleet and are documented
// in docs/OBSERVABILITY.md.
#include <algorithm>
#include <cstdarg>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <optional>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "binary/serialize.hpp"
#include "cli/args.hpp"
#include "emu/emulator.hpp"
#include "emu/trace.hpp"
#include "fault/campaign.hpp"
#include "fault/fault.hpp"
#include "fault/injector.hpp"
#include "gadget/payload.hpp"
#include "gadget/scanner.hpp"
#include "isa/assembler.hpp"
#include "isa/disassembler.hpp"
#include "isa/encoding.hpp"
#include "os/kernel.hpp"
#include "profile/profiler.hpp"
#include "rewriter/cfg.hpp"
#include "rewriter/entropy.hpp"
#include "rewriter/randomizer.hpp"
#include "serve/server.hpp"
#include "sim/cpu.hpp"
#include "telemetry/json_writer.hpp"
#include "telemetry/telemetry.hpp"
#include "workloads/suite.hpp"
#include "workloads/wl_server.hpp"

namespace {

using namespace vcfr;

/// Destination for human-readable reports. Normally stdout; flipped to
/// stderr when any output flag streams its payload to stdout via `-`, so
/// pipelines receive only the requested payload.
FILE* g_report = stdout;

__attribute__((format(printf, 1, 2))) int rprintf(const char* fmt, ...) {
  va_list ap;
  va_start(ap, fmt);
  const int n = std::vfprintf(g_report, fmt, ap);
  va_end(ap);
  return n;
}

// Flag parsing, per-subcommand validation, and the usage text live in
// src/cli/args.{hpp,cpp} so tests can drive the exact shipped parser.
using cli::Args;
using cli::parse_args;
using cli::validate_flags;

// ---- telemetry plumbing (shared by run/sim/workload/fleet) ----

bool telemetry_requested(const Args& args) {
  return !args.stats_json.empty() || !args.trace_out.empty() ||
         args.sample_interval > 0 || !args.journal_out.empty();
}

telemetry::TelemetryConfig telemetry_config(const Args& args) {
  telemetry::TelemetryConfig tc;
  tc.trace = !args.trace_out.empty();
  if (args.trace_capacity > 0) tc.trace_lane_capacity = args.trace_capacity;
  tc.sample_interval = args.sample_interval;
  tc.journal = !args.journal_out.empty();
  if (args.journal_capacity > 0) tc.journal_capacity = args.journal_capacity;
  return tc;
}

void write_file(const std::string& path, const std::string& content) {
  if (path == "-") {
    // Scripting convention: `-` streams to stdout instead of creating a
    // file literally named "-". Progress messages all go to stderr, so
    // the payload stays clean for pipelines.
    std::fwrite(content.data(), 1, content.size(), stdout);
    return;
  }
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("cannot write " + path);
  out << content;
}

void export_telemetry(const Args& args, telemetry::Telemetry& tel) {
  if (!args.stats_json.empty()) {
    write_file(args.stats_json, tel.registry().to_json());
    std::fprintf(stderr, "stats: %s\n", args.stats_json.c_str());
  }
  if (!args.trace_out.empty()) {
    write_file(args.trace_out, tel.tracer()->to_chrome_json());
    std::fprintf(stderr, "trace: %s (%llu events dropped)\n",
                 args.trace_out.c_str(),
                 static_cast<unsigned long long>(tel.tracer()->dropped()));
    if (tel.tracer()->dropped() > 0) {
      std::fprintf(stderr,
                   "warning: trace dropped %llu events; the export holds only "
                   "the most recent window (raise --trace-capacity)\n",
                   static_cast<unsigned long long>(tel.tracer()->dropped()));
    }
  }
  if (!args.journal_out.empty() && tel.journal() != nullptr) {
    write_file(args.journal_out, tel.journal()->to_jsonl());
    std::fprintf(stderr, "journal: %s (%zu entries, %llu dropped)\n",
                 args.journal_out.c_str(), tel.journal()->entries().size(),
                 static_cast<unsigned long long>(tel.journal()->dropped()));
    if (tel.journal()->dropped() > 0) {
      std::fprintf(stderr,
                   "warning: journal dropped %llu entries; the export holds "
                   "only the most recent window (raise --journal-capacity)\n",
                   static_cast<unsigned long long>(tel.journal()->dropped()));
    }
  }
  if (args.sample_interval > 0) {
    const bool as_json =
        args.sample_out.size() >= 5 &&
        args.sample_out.compare(args.sample_out.size() - 5, 5, ".json") == 0;
    write_file(args.sample_out, as_json ? tel.sampler().to_json()
                                        : tel.sampler().to_csv());
    std::fprintf(stderr, "samples: %s (%zu rows)\n", args.sample_out.c_str(),
                 tel.sampler().rows());
  }
}

std::string require_input(const Args& args) {
  if (args.positional.empty()) throw std::runtime_error("missing input file");
  return args.positional.front();
}

// ---- guest-profiler plumbing (run/sim/fleet/prof) ----

profile::ProfileMeta profile_meta(const binary::Image& image,
                                  uint64_t expected_cycles) {
  profile::ProfileMeta meta;
  meta.app = image.name;
  meta.layout = std::string(profile::layout_name(image.layout));
  meta.seed = image.seed;
  meta.expected_cycles = expected_cycles;
  return meta;
}

void export_profile(const Args& args, const profile::Profiler& prof,
                    const profile::ProfileMeta& meta) {
  if (!args.profile_out.empty()) {
    write_file(args.profile_out, prof.to_json(meta, args.top) + "\n");
    if (args.profile_out != "-") {
      std::fprintf(stderr, "profile: %s\n", args.profile_out.c_str());
    }
  }
  if (!args.flame_out.empty()) {
    write_file(args.flame_out, prof.to_collapsed());
    if (args.flame_out != "-") {
      std::fprintf(stderr, "flamegraph: %s\n", args.flame_out.c_str());
    }
  }
}

/// Per-tenant output path for fleet profiles: "x.json" -> "x.pid3.json";
/// "-" stays "-" (tenant profiles concatenate on stdout in pid order).
std::string per_pid_path(const std::string& path, uint32_t pid) {
  if (path == "-") return path;
  const std::string tag = ".pid" + std::to_string(pid);
  const size_t dot = path.rfind('.');
  if (dot == std::string::npos || dot == 0) return path + tag;
  return path.substr(0, dot) + tag + path.substr(dot);
}

int cmd_asm(const Args& args) {
  const std::string path = require_input(args);
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open " + path);
  std::stringstream ss;
  ss << in.rdbuf();
  binary::Image image = isa::assemble(ss.str());
  if (image.name.empty()) image.name = path;
  const std::string out = args.output.empty() ? path + ".vxe" : args.output;
  binary::save(image, out);
  rprintf("assembled %zu code bytes, %zu data bytes -> %s\n",
              image.code.size(), image.data.size(), out.c_str());
  return 0;
}

int cmd_disasm(const Args& args) {
  const auto image = binary::load_file(require_input(args));
  if (image.layout == binary::Layout::kNaiveIlr) {
    rprintf("; naive-ILR image: %zu relocated instructions\n",
                image.sparse_code.size());
    for (const auto& [addr, bytes] : image.sparse_code) {
      const auto d = isa::decode(bytes);
      if (d) rprintf("%08x: %s\n", addr, isa::format_instr(*d).c_str());
    }
    return 0;
  }
  std::fputs(isa::listing(image).c_str(), stdout);
  return 0;
}

int cmd_stats(const Args& args) {
  const auto image = binary::load_file(require_input(args));
  const auto cfg = rewriter::build_cfg(image);
  const auto s = rewriter::static_stats(image, cfg);
  rprintf("name:                %s\n", image.name.c_str());
  rprintf("instructions:        %llu\n",
              static_cast<unsigned long long>(s.instructions));
  rprintf("direct transfers:    %llu\n",
              static_cast<unsigned long long>(s.direct_transfers));
  rprintf("indirect transfers:  %llu\n",
              static_cast<unsigned long long>(s.indirect_transfers));
  rprintf("function calls:      %llu (indirect: %llu)\n",
              static_cast<unsigned long long>(s.function_calls),
              static_cast<unsigned long long>(s.indirect_calls));
  rprintf("returns:             %llu\n",
              static_cast<unsigned long long>(s.returns));
  rprintf("functions with ret:  %llu, without: %llu\n",
              static_cast<unsigned long long>(s.functions_with_ret),
              static_cast<unsigned long long>(s.functions_without_ret));
  return 0;
}

int cmd_randomize(const Args& args) {
  const auto image = binary::load_file(require_input(args));
  rewriter::RandomizeOptions opts;
  opts.seed = args.seed;
  if (args.software_returns) {
    opts.return_option = rewriter::ReturnOption::kSoftwareRewrite;
  }
  if (args.page_confined) {
    opts.placement = rewriter::PlacementPolicy::kPageConfined;
  }
  const auto rr = rewriter::randomize(image, opts);
  const auto& out_image = args.naive ? rr.naive : rr.vcfr;
  const std::string out =
      args.output.empty() ? image.name + (args.naive ? ".naive.vxe" : ".vcfr.vxe")
                          : args.output;
  binary::save(out_image, out);
  rprintf("relocated %zu instructions (seed %llu); failover set: %zu; "
              "-> %s\n",
              rr.placement.size(),
              static_cast<unsigned long long>(args.seed),
              rr.analysis.unrandomized.size(), out.c_str());
  if (args.software_returns) {
    rprintf("software return rewrite: %u calls, +%.1f%% code\n",
                rr.sw_stats.calls_rewritten,
                rr.sw_stats.expansion_percent());
  }
  return 0;
}

int cmd_run(const Args& args) {
  const auto image = binary::load_file(require_input(args));
  if (!telemetry_requested(args) && args.profile_out.empty() && !args.taint) {
    emu::RunLimits limits;
    limits.max_instructions = args.max_instr;
    limits.enforce_tags = args.enforce_tags;
    const auto r = emu::run_image(image, limits);
    for (uint32_t v : r.output) rprintf("out: %u (0x%x)\n", v, v);
    rprintf("%s after %llu instructions",
                r.halted ? "halted" : (r.error.empty() ? "limit" : "FAULT"),
                static_cast<unsigned long long>(r.stats.instructions));
    if (!r.error.empty()) rprintf(": %s", r.error.c_str());
    rprintf("\n");
    return r.halted ? 0 : 1;
  }

  // Telemetry path: step the golden model by hand so each instruction's
  // translation events are visible. The functional model has no clock;
  // events and samples are stamped with the instruction index, which is
  // just as deterministic.
  telemetry::Telemetry tel(telemetry_config(args));
  binary::Memory mem;
  binary::load(image, mem);
  emu::Emulator emulator(image, mem);
  if (args.enforce_tags) emulator.set_enforce_tags(true);
  if (args.taint) emulator.set_taint_tracking(true);
  std::optional<profile::Profiler> prof;
  if (!args.profile_out.empty()) {
    prof.emplace(image);
    emulator.set_profiler(&*prof);
  }
  const emu::EmuStats& st = emulator.stats();
  telemetry::Scope scope = tel.root().scope("emu");
  scope.counter("instructions", &st.instructions);
  scope.counter("calls", &st.calls);
  scope.counter("returns", &st.returns);
  scope.counter("indirect_transfers", &st.indirect_transfers);
  scope.counter("derand_events", &st.derand_events);
  scope.counter("rand_events", &st.rand_events);
  scope.counter("bitmap_autoderand_loads", &st.bitmap_autoderand_loads);
  scope.counter("tag_violations", &st.tag_violations);
  if (args.taint) {
    const emu::TaintStats& ts = emulator.taint_stats();
    const telemetry::Scope taint = scope.scope("taint");
    taint.counter("sources", &ts.sources);
    taint.counter("propagations", &ts.propagations);
    taint.counter("leaks", &ts.leaks);
    taint.counter("max_depth", &ts.max_depth);
  }
  // Host-side decoded-instruction cache (deterministic for a given run,
  // but about how the host executed the model, not what the model did).
  const emu::DecodeCacheStats& dc = emulator.decode_cache_stats();
  const telemetry::Scope dcache = scope.scope("decode_cache");
  dcache.counter("hits", &dc.hits);
  dcache.counter("misses", &dc.misses);
  dcache.counter("invalidations", &dc.invalidations);
  telemetry::TraceLane* lane = tel.lane(0);
  if (tel.tracer() != nullptr) {
    tel.tracer()->name_lane(0, "emulator");
    tel.tracer()->name_asid(0, 0, image.name.empty() ? "golden model"
                                                     : image.name);
  }
  emu::StepInfo info;
  size_t leaks_seen = 0;
  while (st.instructions < args.max_instr) {
    if (!emulator.step(&info)) break;
    const uint64_t n = st.instructions;  // index of the retired instruction
    if (lane != nullptr) {
      if (info.needs_derand) {
        lane->instant(telemetry::TraceEventType::kDerand, 0, n,
                      info.derand_key);
      }
      if (info.needs_rand) {
        lane->instant(telemetry::TraceEventType::kRand, 0, n, info.rand_key);
      }
      if (info.bitmap_load) {
        lane->instant(telemetry::TraceEventType::kBitmapLoad, 0, n,
                      info.mem_addr);
      }
      while (leaks_seen < emulator.leaks().size()) {
        lane->instant(telemetry::TraceEventType::kLeak, 0, n,
                      emulator.leaks()[leaks_seen].depth);
        ++leaks_seen;
      }
    }
    tel.sampler().poll(n);
    if (emulator.halted()) break;
  }
  for (uint32_t v : emulator.output()) rprintf("out: %u (0x%x)\n", v, v);
  if (args.taint) {
    const emu::TaintStats& ts = emulator.taint_stats();
    rprintf("taint: %llu source(s), %llu propagation(s), %llu leak(s), "
            "max depth %llu\n",
            static_cast<unsigned long long>(ts.sources),
            static_cast<unsigned long long>(ts.propagations),
            static_cast<unsigned long long>(ts.leaks),
            static_cast<unsigned long long>(ts.max_depth));
    for (const emu::LeakRecord& l : emulator.leaks()) {
      rprintf("leak: origin=%s rpc=0x%x epoch=%llu depth=%u sink=%s "
              "at instruction %llu\n",
              emu::taint_origin_name(l.origin), l.origin_rpc,
              static_cast<unsigned long long>(l.epoch), l.depth,
              emu::leak_sink_name(l.sink),
              static_cast<unsigned long long>(l.instruction));
    }
  }
  const std::string& err = emulator.error();
  rprintf("%s after %llu instructions",
              emulator.halted() ? "halted" : (err.empty() ? "limit" : "FAULT"),
              static_cast<unsigned long long>(st.instructions));
  if (!err.empty()) rprintf(": %s", err.c_str());
  rprintf("\n");
  export_telemetry(args, tel);
  if (prof) {
    // Functional model: one cycle per instruction, so the expected total
    // is the profiler's own count and "conserved" pins the delta stream.
    export_profile(args, *prof, profile_meta(image, prof->attributed_cycles()));
  }
  return emulator.halted() ? 0 : 1;
}

int cmd_sim(const Args& args) {
  const auto image = binary::load_file(require_input(args));
  sim::CpuConfig config;
  config.drc.entries = args.drc;
  std::optional<telemetry::Telemetry> tel;
  if (telemetry_requested(args)) tel.emplace(telemetry_config(args));
  std::optional<profile::Profiler> prof;
  if (!args.profile_out.empty()) prof.emplace(image);
  const auto r = sim::simulate(image, args.max_instr, config,
                               tel ? &*tel : nullptr,
                               prof ? &*prof : nullptr);
  rprintf("instructions: %llu\ncycles:       %llu\nIPC:          %.3f\n",
              static_cast<unsigned long long>(r.instructions),
              static_cast<unsigned long long>(r.cycles), r.ipc());
  rprintf("IL1 miss:     %.3f%%   DL1 miss: %.3f%%   L2 miss: %.3f%%\n",
              100 * r.il1.miss_rate(), 100 * r.dl1.miss_rate(),
              100 * r.l2.miss_rate());
  rprintf("branch acc:   %.2f%%   DRC: %llu lookups, %.1f%% miss\n",
              100 * r.bpred.cond_accuracy(),
              static_cast<unsigned long long>(r.drc.lookups),
              100 * r.drc.miss_rate());
  rprintf("power:        %s\n", r.power.report().c_str());
  if (tel) export_telemetry(args, *tel);
  if (prof) export_profile(args, *prof, profile_meta(image, r.cycles));
  return 0;
}

int cmd_scan(const Args& args) {
  const auto image = binary::load_file(require_input(args));
  const auto result = gadget::scan(image);
  rprintf("%zu gadgets (%llu aligned, %llu unaligned) in %llu bytes\n",
              result.gadgets.size(),
              static_cast<unsigned long long>(result.aligned_count),
              static_cast<unsigned long long>(result.unaligned_count),
              static_cast<unsigned long long>(result.bytes_scanned));
  for (auto kind :
       {gadget::GadgetKind::kPopReg, gadget::GadgetKind::kMovReg,
        gadget::GadgetKind::kArith, gadget::GadgetKind::kLoad,
        gadget::GadgetKind::kStore, gadget::GadgetKind::kSys,
        gadget::GadgetKind::kOther}) {
    rprintf("  %-8s %zu\n", std::string(gadget::kind_name(kind)).c_str(),
                result.count(kind));
  }
  const auto payloads = gadget::compile_payloads(result.gadgets);
  for (const auto& p : payloads) {
    rprintf("payload '%s': %s\n", p.name.c_str(),
                p.assembled ? "ASSEMBLED" : "failed");
  }
  return 0;
}

int cmd_workload(const Args& args) {
  const std::string name = require_input(args);
  const auto image = workloads::make(name, args.scale);
  const std::string out = args.output.empty() ? name + ".vxe" : args.output;
  binary::save(image, out);
  rprintf("%s (scale %d): %zu code bytes -> %s\n", name.c_str(),
              args.scale, image.code.size(), out.c_str());
  if (telemetry_requested(args)) {
    // Static stats only: there is no execution here, so the trace and
    // sample outputs are valid but empty.
    telemetry::Telemetry tel(telemetry_config(args));
    telemetry::Scope scope = tel.root().scope("workload");
    const auto cfg = rewriter::build_cfg(image);
    const auto s = rewriter::static_stats(image, cfg);
    const uint64_t code_bytes = image.code.size();
    const uint64_t data_bytes = image.data.size();
    scope.counter_fn("code_bytes", [code_bytes] { return code_bytes; });
    scope.counter_fn("data_bytes", [data_bytes] { return data_bytes; });
    scope.counter_fn("instructions", [s] { return s.instructions; });
    scope.counter_fn("direct_transfers", [s] { return s.direct_transfers; });
    scope.counter_fn("indirect_transfers",
                     [s] { return s.indirect_transfers; });
    scope.counter_fn("returns", [s] { return s.returns; });
    export_telemetry(args, tel);
  }
  return 0;
}

int cmd_trace(const Args& args) {
  const auto image = binary::load_file(require_input(args));
  emu::TraceOptions opts;
  opts.max_steps = args.max_instr == 100'000'000 ? 64 : args.max_instr;
  opts.show_registers = args.regs;
  std::fputs(emu::trace(image, opts).c_str(), stdout);
  return 0;
}

int cmd_cfg(const Args& args) {
  const auto image = binary::load_file(require_input(args));
  const auto cfg = rewriter::build_cfg(image);
  std::fputs(rewriter::to_dot(cfg).c_str(), stdout);
  return 0;
}

int cmd_entropy(const Args& args) {
  const auto image = binary::load_file(require_input(args));
  rewriter::RandomizeOptions opts;
  opts.seed = args.seed;
  if (args.page_confined) {
    opts.placement = rewriter::PlacementPolicy::kPageConfined;
  }
  const auto rr = rewriter::randomize(image, opts);
  const auto report = rewriter::analyze_entropy(rr, opts);
  rprintf("randomized instructions: %zu\n", report.randomized_instructions);
  rprintf("failover instructions:   %zu (zero entropy)\n",
              report.failover_instructions);
  rprintf("entropy coverage:        %.2f%%\n", 100 * report.coverage());
  rprintf("bits per instruction:    %.1f\n", report.bits_per_instruction);
  rprintf("single-guess hit prob:   %.3g\n",
              report.single_guess_probability);
  rprintf("expected crash attempts: %.3g\n", report.expected_attempts);
  return 0;
}

std::vector<std::string> split_list(const std::string& csv) {
  std::vector<std::string> items;
  std::stringstream ss(csv);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (!item.empty()) items.push_back(item);
  }
  return items;
}

/// Folds the --rerand* flag family into a re-randomization policy.
/// --rerand-mode incremental also turns on epoch-tagged invalidation —
/// lazily revalidating warm caches is the point of patching in place.
os::RerandomizePolicy parse_rerand_policy(const cli::Args& args) {
  os::RerandomizePolicy rp;
  rp.every_slices = args.rerand;
  if (args.rerand_mode == "incremental") {
    rp.rebuild = os::RerandomizePolicy::Rebuild::kIncremental;
    rp.epoch_tags = true;
  }
  rp.on_trap = args.rerand_on_trap;
  rp.on_leak = args.rerand_on_leak;
  if (args.rerand_scope == "fleet") {
    rp.scope = os::RerandomizePolicy::Scope::kFleet;
  }
  rp.max_defer = args.rerand_max_defer;
  return rp;
}

os::RestartPolicy::Mode parse_restart_mode(const std::string& name) {
  if (name == "never") return os::RestartPolicy::Mode::kNever;
  if (name == "on-fault") return os::RestartPolicy::Mode::kOnFault;
  if (name == "always") return os::RestartPolicy::Mode::kAlways;
  throw std::runtime_error("--restart expects never|on-fault|always, got '" +
                           name + "'");
}

/// --inject pid:site:instr[:seed] — arm one corruption in one process.
struct InjectSpec {
  uint32_t pid = 0;
  fault::FaultPlan plan;
};

/// --slo p50|p99|p999:<cycles> — the serve SLO objective.
void parse_slo(const std::string& spec, serve::ServeConfig& sc) {
  const size_t colon = spec.find(':');
  const std::string metric = spec.substr(0, colon);
  uint32_t permille = 0;
  if (metric == "p50") {
    permille = 500;
  } else if (metric == "p99") {
    permille = 990;
  } else if (metric == "p999") {
    permille = 999;
  } else {
    throw std::runtime_error("--slo expects p50|p99|p999:<cycles>, got '" +
                             spec + "'");
  }
  if (colon == std::string::npos || colon + 1 >= spec.size()) {
    throw std::runtime_error("--slo expects p50|p99|p999:<cycles>, got '" +
                             spec + "'");
  }
  uint64_t threshold = 0;
  try {
    size_t used = 0;
    threshold = std::stoull(spec.substr(colon + 1), &used);
    if (colon + 1 + used != spec.size()) throw std::invalid_argument(spec);
  } catch (const std::exception&) {
    throw std::runtime_error("--slo expects p50|p99|p999:<cycles>, got '" +
                             spec + "'");
  }
  if (threshold == 0) {
    throw std::runtime_error("--slo threshold must be > 0 cycles");
  }
  sc.slo_permille = permille;
  sc.slo_threshold = threshold;
}

InjectSpec parse_inject(const std::string& spec) {
  const std::vector<std::string> parts = split_list([&] {
    std::string s = spec;
    for (char& c : s) {
      if (c == ':') c = ',';
    }
    return s;
  }());
  if (parts.size() < 3 || parts.size() > 4) {
    throw std::runtime_error(
        "--inject expects pid:site:instr[:seed], got '" + spec + "'");
  }
  InjectSpec out;
  out.pid = static_cast<uint32_t>(std::stoul(parts[0]));
  const auto site = fault::parse_site(parts[1]);
  if (!site) {
    throw std::runtime_error("--inject: unknown fault site '" + parts[1] +
                             "' (code_byte|translation_entry|ret_slot|"
                             "ret_bitmap|payload)");
  }
  out.plan.site = *site;
  out.plan.at_instruction = std::stoull(parts[2]);
  out.plan.seed = parts.size() == 4 ? std::stoull(parts[3]) : 1;
  return out;
}

int cmd_fleet(const Args& args) {
  os::KernelConfig kc;
  kc.cores = args.cores;
  kc.sched.slice_instructions = args.slice;
  kc.cpu.drc.entries = args.drc;
  kc.measure_isolated = !args.no_baseline;
  kc.pool_workers = args.pool_workers;
  if ((args.checkpoint_out.empty()) != (args.checkpoint_round == 0)) {
    throw std::runtime_error(
        "--checkpoint-out and --checkpoint-round go together");
  }
  if (!args.checkpoint_out.empty() && !args.profile_out.empty()) {
    throw std::runtime_error("--checkpoint-out is incompatible with "
                             "--profile-out");
  }
  if (!args.restore_in.empty() && !args.profile_out.empty()) {
    throw std::runtime_error("--restore is incompatible with --profile-out");
  }

  // Workloads: explicit comma-separated list, or cycle the SPEC-like
  // suite in the paper's order.
  std::vector<std::string> names = !args.workload_list.empty()
                                       ? split_list(args.workload_list)
                                       : workloads::spec_names();
  if (names.empty()) throw std::runtime_error("no workloads given");

  os::RestartPolicy restart;
  if (!args.restart.empty()) restart.mode = parse_restart_mode(args.restart);
  restart.max_restarts = args.max_restarts;
  restart.backoff_rounds = args.backoff;
  std::optional<InjectSpec> inject;
  if (!args.inject.empty()) inject = parse_inject(args.inject);

  os::Kernel kernel(kc);
  if (!args.profile_out.empty()) kernel.enable_profiling();
  std::optional<telemetry::Telemetry> tel;
  if (telemetry_requested(args)) {
    tel.emplace(telemetry_config(args));
    kernel.attach_telemetry(&*tel);
  }
  for (uint32_t i = 0; i < args.procs; ++i) {
    os::ProcessConfig pc;
    pc.workload = names[i % names.size()];
    pc.scale = args.scale;
    // Distinct placement per process even under one fleet seed.
    pc.seed = args.seed ^ (0x9e3779b97f4a7c15ull * (i + 1));
    pc.max_instructions = args.max_instr;
    pc.rerandomize = parse_rerand_policy(args);
    pc.restart = restart;
    pc.watchdog_instructions = args.watchdog;
    pc.taint = args.taint;
    if (inject && inject->pid == i) {
      pc.inject = inject->plan;
      pc.inject_enabled = true;
    }
    kernel.spawn(pc);
  }
  if (inject && inject->pid >= args.procs) {
    throw std::runtime_error("--inject pid out of range (procs=" +
                             std::to_string(args.procs) + ")");
  }
  if (!args.checkpoint_out.empty()) {
    kernel.set_checkpoint(args.checkpoint_round, args.checkpoint_out);
  }
  if (!args.restore_in.empty()) {
    std::ifstream in(args.restore_in, std::ios::binary);
    if (!in) {
      throw std::runtime_error("cannot open checkpoint: " + args.restore_in);
    }
    kernel.restore(in);
    std::fprintf(stderr, "restored: %s\n", args.restore_in.c_str());
  }

  const os::FleetReport report = kernel.run();
  if (args.taint) {
    std::fprintf(stderr,
                 "taint: %llu leak(s) detected, %llu leak-triggered "
                 "re-randomization(s)\n",
                 static_cast<unsigned long long>(kernel.leaks_detected()),
                 static_cast<unsigned long long>(kernel.leak_rerands()));
  }
  if (tel) export_telemetry(args, *tel);
  if (!args.profile_out.empty()) {
    // One profile per tenant; shared-L2 contention appears in each
    // tenant's l2_contention_by_asid keyed by the interfering asid
    // (asid == pid in the fleet).
    for (uint32_t pid = 0; pid < kernel.process_count(); ++pid) {
      const profile::Profiler* prof = kernel.profiler(pid);
      profile::ProfileMeta meta;
      meta.app = kernel.process(pid).config().workload;
      meta.layout = "vcfr";
      meta.seed = kernel.process(pid).config().seed;
      meta.expected_cycles = prof->attributed_cycles();
      const std::string path = per_pid_path(args.profile_out, pid);
      write_file(path, prof->to_json(meta, args.top) + "\n");
      if (path != "-") std::fprintf(stderr, "profile: %s\n", path.c_str());
    }
  }
  if (args.json) {
    std::fputs(report.to_json().c_str(), stdout);
  } else {
    std::fputs(report.summary().c_str(), g_report);
    std::fputs(report.to_json().c_str(), g_report);
  }
  // Exit status reflects the fleet's final state: a crash that the
  // restart policy recovered from (process came back and halted) is a
  // success; an unrecovered fault or watchdog kill is not.
  for (const auto& p : report.processes) {
    if (!p.arch_match && kc.measure_isolated) return 1;
    if (p.exit == fault::exit_name(fault::ExitCode::kFaulted) ||
        p.exit == fault::exit_name(fault::ExitCode::kWatchdogKill)) {
      return 1;
    }
  }
  return 0;
}

int cmd_serve(const Args& args) {
  serve::ServeConfig sc;
  sc.tenants = args.tenants;
  sc.cores = args.cores;
  sc.duration = args.duration;
  if (args.arrival == "open") {
    sc.model = serve::ArrivalModel::kOpen;
  } else if (args.arrival == "closed") {
    sc.model = serve::ArrivalModel::kClosed;
  } else {
    throw std::runtime_error("--arrival expects open|closed, got '" +
                             args.arrival + "'");
  }
  if (args.dist == "fixed") {
    sc.dist = serve::Distribution::kFixed;
  } else if (args.dist == "uniform") {
    sc.dist = serve::Distribution::kUniform;
  } else if (args.dist == "exp") {
    sc.dist = serve::Distribution::kExponential;
  } else {
    throw std::runtime_error("--dist expects fixed|uniform|exp, got '" +
                             args.dist + "'");
  }
  sc.mean_interarrival = args.interarrival;
  if (!args.workload_list.empty()) sc.workloads = split_list(args.workload_list);
  sc.scale = args.scale;
  sc.seed = args.seed;
  sc.slice_instructions = args.slice == 50'000 ? 2'000 : args.slice;
  sc.drc_entries = args.drc;
  // The global default budget (100M) is per whole workload; a request is
  // one handler invocation and should cost far less.
  sc.request_budget = args.max_instr == 100'000'000 ? 2'000'000
                                                    : args.max_instr;
  sc.watchdog_instructions = args.watchdog;
  if (!args.restart.empty()) sc.restart.mode = parse_restart_mode(args.restart);
  sc.restart.max_restarts = args.max_restarts;
  sc.restart.backoff_rounds = args.backoff;
  sc.rerandomize = parse_rerand_policy(args);
  sc.taint = args.taint;
  if (!args.inject.empty()) {
    const InjectSpec spec = parse_inject(args.inject);
    if (spec.pid >= sc.tenants) {
      throw std::runtime_error("--inject pid out of range (tenants=" +
                               std::to_string(sc.tenants) + ")");
    }
    sc.injections.emplace_back(spec.pid, spec.plan);
  }

  if (!args.slo.empty()) parse_slo(args.slo, sc);
  sc.slo_window = args.slo_window;
  sc.pool_workers = args.pool_workers;

  // The flight recorder is always on for serve — the journal is bounded
  // and cheap, and a tenant going down without one means the post-mortem
  // is gone. Tracing/sampling stay opt-in.
  telemetry::TelemetryConfig tc = telemetry_config(args);
  tc.journal = true;
  telemetry::Telemetry tel(tc);
  const serve::ServeReport report = serve::run_serve(sc, &tel);
  if (telemetry_requested(args)) export_telemetry(args, tel);
  if (!args.latency_out.empty()) {
    write_file(args.latency_out, report.latency_csv());
    if (args.latency_out != "-") {
      std::fprintf(stderr, "latency: %s\n", args.latency_out.c_str());
    }
  }
  if (args.json) {
    std::fputs(report.to_json().c_str(), stdout);
  } else {
    std::fputs(report.summary().c_str(), g_report);
    std::fputs(report.to_json().c_str(), g_report);
  }
  if (report.tenants_down > 0 && args.journal_out.empty() &&
      tel.journal() != nullptr) {
    // Post-mortem: a tenant left the fleet for good and no --journal-out
    // captured the flight recorder, so dump it where the operator looks.
    std::fprintf(stderr, "--- flight recorder (%zu entries, %llu dropped) ---\n",
                 tel.journal()->entries().size(),
                 static_cast<unsigned long long>(tel.journal()->dropped()));
    std::fputs(tel.journal()->to_jsonl().c_str(), stderr);
  }
  // A tenant that crashed but was restarted and kept serving is a success;
  // a tenant that left the fleet for good is not. SLO violation gets its
  // own exit status so scripts can tell "down" from "slow".
  if (report.tenants_down > 0) return 1;
  if (report.slo_violated) return 2;
  return 0;
}

// ---- trace-report: offline critical-path breakdown ----

/// One parsed latency-CSV row (`vcfr serve --latency-out`).
struct ReqRow {
  uint32_t tenant = 0;
  uint64_t request = 0;
  uint64_t latency = 0;
  uint64_t queue = 0;
  uint64_t run = 0;
  uint64_t restart_loss = 0;
  uint64_t commit_stall = 0;
  uint64_t leaks = 0;  // taint-sink firings (0 unless a --taint CSV)
  bool failed = false;
};

std::vector<std::string> split_csv_row(const std::string& line) {
  std::vector<std::string> cells;
  std::stringstream ss(line);
  std::string cell;
  while (std::getline(ss, cell, ',')) cells.push_back(cell);
  return cells;
}

int cmd_trace_report(const Args& args) {
  const std::string path = require_input(args);
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open " + path);

  std::string line;
  if (!std::getline(in, line)) {
    throw std::runtime_error(path + ": empty latency CSV");
  }
  // Header-indexed so column additions never silently misparse old files.
  std::map<std::string, size_t> col;
  {
    const auto header = split_csv_row(line);
    for (size_t i = 0; i < header.size(); ++i) col[header[i]] = i;
  }
  for (const char* need :
       {"tenant", "request", "latency", "queue", "run", "restart_loss",
        "commit_stall", "status"}) {
    if (col.count(need) == 0) {
      throw std::runtime_error(path + ": latency CSV lacks column '" +
                               std::string(need) +
                               "' (need a vcfr serve --latency-out file)");
    }
  }

  std::vector<ReqRow> rows;
  size_t lineno = 1;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty()) continue;
    const auto cells = split_csv_row(line);
    const auto cell = [&](const char* name) -> const std::string& {
      const size_t i = col.at(name);
      if (i >= cells.size()) {
        throw std::runtime_error(path + ":" + std::to_string(lineno) +
                                 ": short row");
      }
      return cells[i];
    };
    ReqRow r;
    r.tenant = static_cast<uint32_t>(std::stoul(cell("tenant")));
    r.request = std::stoull(cell("request"));
    r.latency = std::stoull(cell("latency"));
    r.queue = std::stoull(cell("queue"));
    r.run = std::stoull(cell("run"));
    r.restart_loss = std::stoull(cell("restart_loss"));
    r.commit_stall = std::stoull(cell("commit_stall"));
    r.failed = cell("status") != "ok";
    // Leak columns exist only in --taint CSVs; absent means zero.
    if (col.count("leaks") != 0) r.leaks = std::stoull(cell("leaks"));
    rows.push_back(r);
  }
  if (rows.empty()) throw std::runtime_error(path + ": no request rows");

  // Conservation audit: the four components must tile the latency exactly
  // for every request — a violation means the serve-path accounting (or
  // the CSV) is broken, which is worth a failing exit status.
  uint64_t violations = 0;
  for (const ReqRow& r : rows) {
    const uint64_t sum = r.queue + r.run + r.restart_loss + r.commit_stall;
    if (sum != r.latency) {
      if (violations < 10) {
        rprintf("CONSERVATION VIOLATION tenant %u request %llu: "
                "queue %llu + run %llu + restart_loss %llu + "
                "commit_stall %llu = %llu != latency %llu\n",
                r.tenant, static_cast<unsigned long long>(r.request),
                static_cast<unsigned long long>(r.queue),
                static_cast<unsigned long long>(r.run),
                static_cast<unsigned long long>(r.restart_loss),
                static_cast<unsigned long long>(r.commit_stall),
                static_cast<unsigned long long>(sum),
                static_cast<unsigned long long>(r.latency));
      }
      ++violations;
    }
  }

  // Fleet-wide component totals: where do request cycles actually go?
  struct Agg {
    uint64_t n = 0, failed = 0;
    uint64_t latency = 0, queue = 0, run = 0, restart_loss = 0,
             commit_stall = 0;
    void add(const ReqRow& r) {
      ++n;
      if (r.failed) ++failed;
      latency += r.latency;
      queue += r.queue;
      run += r.run;
      restart_loss += r.restart_loss;
      commit_stall += r.commit_stall;
    }
  };
  Agg total;
  std::map<uint32_t, Agg> by_tenant;
  for (const ReqRow& r : rows) {
    total.add(r);
    by_tenant[r.tenant].add(r);
  }
  const auto pct = [&](uint64_t part) {
    return total.latency == 0
               ? 0.0
               : 100.0 * static_cast<double>(part) /
                     static_cast<double>(total.latency);
  };
  rprintf("trace-report: %zu requests (%llu failed) from %s\n", rows.size(),
          static_cast<unsigned long long>(total.failed), path.c_str());
  rprintf("critical path (cycles, %% of total latency):\n");
  rprintf("  queue         %14llu  %5.1f%%\n",
          static_cast<unsigned long long>(total.queue), pct(total.queue));
  rprintf("  run           %14llu  %5.1f%%\n",
          static_cast<unsigned long long>(total.run), pct(total.run));
  rprintf("  restart_loss  %14llu  %5.1f%%\n",
          static_cast<unsigned long long>(total.restart_loss),
          pct(total.restart_loss));
  rprintf("  commit_stall  %14llu  %5.1f%%\n",
          static_cast<unsigned long long>(total.commit_stall),
          pct(total.commit_stall));
  rprintf("  total latency %14llu\n",
          static_cast<unsigned long long>(total.latency));

  rprintf("\nper-tenant breakdown (cycles):\n");
  rprintf("%-7s %6s %6s %14s %14s %14s %14s %14s\n", "tenant", "reqs", "fail",
          "latency", "queue", "run", "restart_loss", "commit_stall");
  for (const auto& [pid, a] : by_tenant) {
    rprintf("%-7u %6llu %6llu %14llu %14llu %14llu %14llu %14llu\n", pid,
            static_cast<unsigned long long>(a.n),
            static_cast<unsigned long long>(a.failed),
            static_cast<unsigned long long>(a.latency),
            static_cast<unsigned long long>(a.queue),
            static_cast<unsigned long long>(a.run),
            static_cast<unsigned long long>(a.restart_loss),
            static_cast<unsigned long long>(a.commit_stall));
  }

  // Top-K slowest requests: latency descending, (tenant, request) breaks
  // ties so the listing is deterministic.
  std::vector<const ReqRow*> slow;
  slow.reserve(rows.size());
  for (const ReqRow& r : rows) slow.push_back(&r);
  std::sort(slow.begin(), slow.end(), [](const ReqRow* a, const ReqRow* b) {
    if (a->latency != b->latency) return a->latency > b->latency;
    if (a->tenant != b->tenant) return a->tenant < b->tenant;
    return a->request < b->request;
  });
  const size_t k = std::min<size_t>(args.top, slow.size());
  rprintf("\ntop %zu slowest requests:\n", k);
  rprintf("%-7s %8s %12s %12s %12s %12s %12s %6s\n", "tenant", "request",
          "latency", "queue", "run", "rst_loss", "cmt_stall", "status");
  for (size_t i = 0; i < k; ++i) {
    const ReqRow& r = *slow[i];
    rprintf("%-7u %8llu %12llu %12llu %12llu %12llu %12llu %6s\n", r.tenant,
            static_cast<unsigned long long>(r.request),
            static_cast<unsigned long long>(r.latency),
            static_cast<unsigned long long>(r.queue),
            static_cast<unsigned long long>(r.run),
            static_cast<unsigned long long>(r.restart_loss),
            static_cast<unsigned long long>(r.commit_stall),
            r.failed ? "FAIL" : "ok");
  }

  if (!args.trace_in.empty()) {
    // Cross-check against the Chrome trace: every request flow that
    // starts must terminate. The exporter renders flow events with a
    // fixed `"ph": "x"` spelling, so a substring scan is exact.
    std::ifstream tin(args.trace_in, std::ios::binary);
    if (!tin) throw std::runtime_error("cannot open " + args.trace_in);
    std::stringstream tss;
    tss << tin.rdbuf();
    const std::string trace = tss.str();
    const auto count = [&](const char* needle) {
      size_t n = 0;
      for (size_t pos = trace.find(needle); pos != std::string::npos;
           pos = trace.find(needle, pos + 1)) {
        ++n;
      }
      return n;
    };
    const size_t starts = count("\"ph\": \"s\"");
    const size_t steps = count("\"ph\": \"t\"");
    const size_t ends = count("\"ph\": \"f\"");
    rprintf("\ntrace flows (%s): %zu start, %zu step, %zu end — %s\n",
            args.trace_in.c_str(), starts, steps, ends,
            starts == ends ? "matched" : "UNMATCHED");
    if (starts != ends) ++violations;
  }

  if (!args.journal_in.empty()) {
    // Leak forensics from the flight recorder: per-tenant counts, the
    // deepest propagation chain, and the sink kinds that fired. The
    // exporter renders fixed `"key": value` spellings, so a substring
    // scan is exact (same convention as the flow cross-check above).
    std::ifstream jin(args.journal_in);
    if (!jin) throw std::runtime_error("cannot open " + args.journal_in);
    struct LeakAgg {
      uint64_t count = 0;
      uint64_t attributed = 0;  // entries carrying a "req" field
      uint64_t max_depth = 0;
      std::set<std::string> sinks;
    };
    std::map<uint32_t, LeakAgg> by_pid;
    const auto field_u64 = [](const std::string& line,
                              const char* key) -> std::optional<uint64_t> {
      const std::string pat = std::string("\"") + key + "\": ";
      const size_t pos = line.find(pat);
      if (pos == std::string::npos) return std::nullopt;
      return std::stoull(line.substr(pos + pat.size()));
    };
    std::string jline;
    while (std::getline(jin, jline)) {
      if (jline.find("\"kind\": \"leak\"") == std::string::npos) continue;
      const auto pid = field_u64(jline, "pid");
      const auto depth = field_u64(jline, "arg");
      if (!pid || !depth) continue;
      LeakAgg& a = by_pid[static_cast<uint32_t>(*pid)];
      ++a.count;
      if (field_u64(jline, "req")) ++a.attributed;
      a.max_depth = std::max(a.max_depth, *depth);
      const size_t spos = jline.find("sink=");
      if (spos != std::string::npos) {
        size_t end = spos + 5;
        while (end < jline.size() && jline[end] != '"' && jline[end] != ' ') {
          ++end;
        }
        a.sinks.insert(jline.substr(spos + 5, end - spos - 5));
      }
    }
    rprintf("\nleak forensics (%s):\n", args.journal_in.c_str());
    if (by_pid.empty()) {
      rprintf("  no leak entries\n");
    } else {
      rprintf("%-7s %8s %11s %10s  %s\n", "tenant", "leaks", "attributed",
              "max_depth", "sinks");
      for (const auto& [pid, a] : by_pid) {
        std::string sinks;
        for (const std::string& s : a.sinks) {
          if (!sinks.empty()) sinks += ",";
          sinks += s;
        }
        rprintf("%-7u %8llu %11llu %10llu  %s\n", pid,
                static_cast<unsigned long long>(a.count),
                static_cast<unsigned long long>(a.attributed),
                static_cast<unsigned long long>(a.max_depth), sinks.c_str());
      }
    }
    // Cross-check: the CSV's per-tenant leak totals must equal the
    // journal's request-attributed leak entries — a mismatch means one
    // of the two observability paths lost or fabricated events.
    std::map<uint32_t, uint64_t> csv_leaks;
    for (const ReqRow& r : rows) csv_leaks[r.tenant] += r.leaks;
    std::set<uint32_t> pids;
    for (const auto& [pid, a] : by_pid) {
      if (a.attributed > 0) pids.insert(pid);
    }
    for (const auto& [pid, n] : csv_leaks) {
      if (n > 0) pids.insert(pid);
    }
    uint64_t mismatches = 0;
    for (const uint32_t pid : pids) {
      const auto jit = by_pid.find(pid);
      const uint64_t jn = jit == by_pid.end() ? 0 : jit->second.attributed;
      const auto cit = csv_leaks.find(pid);
      const uint64_t cn = cit == csv_leaks.end() ? 0 : cit->second;
      if (jn != cn) {
        rprintf("LEAK CROSS-CHECK MISMATCH tenant %u: journal has %llu "
                "request-attributed leak entries, CSV reports %llu\n",
                pid, static_cast<unsigned long long>(jn),
                static_cast<unsigned long long>(cn));
        ++mismatches;
      }
    }
    if (mismatches == 0) {
      rprintf("  leak cross-check: journal matches CSV\n");
    }
    violations += mismatches;
  }

  if (violations > 0) {
    rprintf("\n%llu conservation/flow violations\n",
            static_cast<unsigned long long>(violations));
    return 1;
  }
  return 0;
}

// ---- leaks: the leak-observability gate ----

int cmd_leaks(const Args& args) {
  // Three arms, all with taint tracking on and the same over-reading
  // request (resp_len = 68 echoes the 64-byte stack buffer plus the 4
  // saved-return bytes above it):
  //   native — the original layout; no randomized secret ever enters the
  //            handler's frame, so the sink must stay silent,
  //   vcfr   — seed-randomized siblings; the sink must fire with full
  //            provenance (randomized return address, out sink),
  //   serve  — leaky tenants under --rerand-on-leak; the leaking tenant
  //            must be re-keyed at its next request boundary.
  constexpr uint32_t kRespLen = 68;
  const binary::Image original = workloads::make_leaky_server();

  struct Arm {
    bool halted = false;
    uint64_t sources = 0;
    uint64_t leaks = 0;
    uint64_t max_depth = 0;
    std::vector<emu::LeakRecord> records;
  };
  const auto run_arm = [&](const binary::Image& image) {
    binary::Memory mem;
    binary::load(image, mem);
    const std::vector<uint8_t> req = workloads::build_leak_request(kRespLen);
    for (size_t i = 0; i < req.size(); ++i) {
      mem.write8(workloads::kServerRequestBase + static_cast<uint32_t>(i),
                 req[i]);
    }
    emu::Emulator emulator(image, mem);
    emulator.set_taint_tracking(true);
    uint64_t steps = 0;
    while (steps < 2'000'000 && emulator.step()) {
      ++steps;
      if (emulator.halted()) break;
    }
    Arm a;
    a.halted = emulator.halted();
    a.sources = emulator.taint_stats().sources;
    a.leaks = emulator.taint_stats().leaks;
    a.max_depth = emulator.taint_stats().max_depth;
    a.records = emulator.leaks();
    return a;
  };

  const Arm native = run_arm(original);
  bool pass = native.halted && native.leaks == 0;

  struct Trial {
    uint64_t seed = 0;
    Arm arm;
  };
  std::vector<Trial> trials;
  for (uint32_t t = 0; t < args.trials; ++t) {
    rewriter::RandomizeOptions opts;
    opts.seed = args.seed + t;
    const auto rr = rewriter::randomize(original, opts);
    Trial tr;
    tr.seed = opts.seed;
    tr.arm = run_arm(rr.vcfr);
    bool ok = tr.arm.halted && tr.arm.leaks > 0 && !tr.arm.records.empty();
    for (const emu::LeakRecord& l : tr.arm.records) {
      // Every planted leak discloses the pushed (randomized) return
      // address through the echo loop's `out`.
      if (l.origin != emu::TaintOrigin::kRetPush) ok = false;
      if (l.sink != emu::LeakSink::kOut) ok = false;
    }
    pass = pass && ok;
    trials.push_back(std::move(tr));
  }

  // Serve arm: open-loop leaky tenants; ~3 of 4 generated bodies request
  // an over-read, so leaks arrive quickly and --rerand-on-leak must have
  // re-keyed at least one victim.
  serve::ServeConfig sc;
  sc.tenants = 2;
  sc.cores = 1;
  sc.duration = 60'000;
  sc.model = serve::ArrivalModel::kOpen;
  sc.dist = serve::Distribution::kFixed;
  sc.mean_interarrival = 4'000;
  sc.workloads = {"leaky"};
  sc.seed = args.seed;
  sc.taint = true;
  sc.rerandomize.on_leak = true;
  const serve::ServeReport sr = serve::run_serve(sc);
  const bool serve_ok =
      sr.leaks > 0 && sr.leak_rerands > 0 && sr.tenants_down == 0;
  pass = pass && serve_ok;

  telemetry::JsonWriter w;
  w.begin_object(telemetry::JsonWriter::Style::kPretty);
  w.key("request_resp_len").value(kRespLen);
  w.key("native").begin_object();
  w.key("halted").value(native.halted);
  w.key("taint_sources").value(native.sources);
  w.key("leaks").value(native.leaks);
  w.key("silent").value(native.leaks == 0);
  w.end_object();
  w.key("vcfr").begin_array(telemetry::JsonWriter::Style::kPretty);
  for (const Trial& tr : trials) {
    const Arm& a = tr.arm;
    w.begin_object(telemetry::JsonWriter::Style::kCompact);
    w.key("seed").value(tr.seed);
    w.key("halted").value(a.halted);
    w.key("taint_sources").value(a.sources);
    w.key("leaks").value(a.leaks);
    w.key("max_depth").value(a.max_depth);
    if (!a.records.empty()) {
      w.key("origin")
          .value(std::string(emu::taint_origin_name(a.records[0].origin)));
      w.key("sink")
          .value(std::string(emu::leak_sink_name(a.records[0].sink)));
      w.key("origin_rpc").value(a.records[0].origin_rpc);
    }
    w.end_object();
  }
  w.end_array();
  w.key("rerand_on_leak").begin_object();
  w.key("leaks").value(sr.leaks);
  w.key("leak_rerands").value(sr.leak_rerands);
  w.key("rekeyed").value(sr.leak_rerands > 0);
  w.end_object();
  w.key("pass").value(pass);
  w.end_object();
  const std::string json = w.str() + "\n";

  uint64_t detected = 0;
  for (const Trial& tr : trials) detected += tr.arm.leaks > 0 ? 1 : 0;
  const std::string s =
      "leaks: native " +
      std::string(native.leaks == 0 ? "silent" : "LEAKED") +
      ", vcfr detected " + std::to_string(detected) + "/" +
      std::to_string(trials.size()) + " trial(s), rerand-on-leak " +
      (sr.leak_rerands > 0 ? "re-keyed" : "DID NOT re-key") + " (" +
      std::to_string(sr.leaks) + " serve leak(s), " +
      std::to_string(sr.leak_rerands) + " re-rand(s)) -> " +
      (pass ? "PASS" : "FAIL") + "\n";

  if (!args.output.empty()) {
    write_file(args.output, json);
    std::fputs(s.c_str(), g_report);
    std::fprintf(stderr, "report: %s\n", args.output.c_str());
  } else if (args.json) {
    std::fputs(json.c_str(), stdout);
  } else {
    std::fputs(s.c_str(), g_report);
    std::fputs(json.c_str(), g_report);
  }
  return pass ? 0 : 1;
}

int cmd_prof(const Args& args) {
  const auto image = binary::load_file(require_input(args));
  if (image.layout == binary::Layout::kNaiveIlr) {
    throw std::runtime_error(
        "prof: naive-ILR images have no original-space mapping to fold "
        "samples onto (profile the original or VCFR image instead)");
  }
  sim::CpuConfig config;
  config.drc.entries = args.drc;

  const auto print_causes = [](const char* label,
                               const profile::Profiler& prof) {
    rprintf("%s%scause breakdown (cycles):\n", label,
                label[0] == '\0' ? "" : " ");
    for (size_t c = 0; c < profile::kNumCauses; ++c) {
      const auto cause = static_cast<profile::Cause>(c);
      const uint64_t cycles = prof.cause_cycles(cause);
      if (cycles == 0) continue;
      rprintf("  %-16s %llu\n",
                  std::string(profile::cause_name(cause)).c_str(),
                  static_cast<unsigned long long>(cycles));
    }
  };

  if (image.layout == binary::Layout::kVcfr) {
    // Already-randomized input: one attributed profile.
    profile::Profiler prof(image);
    const auto res =
        sim::simulate(image, args.max_instr, config, nullptr, &prof);
    const profile::ProfileMeta meta = profile_meta(image, res.cycles);
    rprintf("guest profile: %s (%s, seed %llu)\n", meta.app.c_str(),
                meta.layout.c_str(),
                static_cast<unsigned long long>(meta.seed));
    rprintf("instructions: %llu  cycles: %llu  resolved: %.1f%%\n",
                static_cast<unsigned long long>(prof.instructions()),
                static_cast<unsigned long long>(prof.attributed_cycles()),
                100 * prof.resolved_fraction());
    print_causes("", prof);
    rprintf("\nfunctions (cycles desc):\n");
    for (const auto& f : prof.functions()) {
      rprintf("  %-24s %12llu cycles %12llu instr\n", f.name.c_str(),
                  static_cast<unsigned long long>(f.cycles),
                  static_cast<unsigned long long>(f.instructions));
    }
    rprintf("\n%s", prof.to_hot_blocks(meta, args.top).c_str());
    export_profile(args, prof, meta);
    return 0;
  }

  // Original input: profile it natively AND as its seed-randomized VCFR
  // sibling, then report per-function overhead (the paper's Figs. 13-14
  // view: where VCFR's extra cycles land in the guest).
  rewriter::RandomizeOptions opts;
  opts.seed = args.seed;
  const auto rr = rewriter::randomize(image, opts);
  profile::Profiler native_prof(image);
  profile::Profiler vcfr_prof(rr.vcfr);
  const auto native_res =
      sim::simulate(image, args.max_instr, config, nullptr, &native_prof);
  const auto vcfr_res =
      sim::simulate(rr.vcfr, args.max_instr, config, nullptr, &vcfr_prof);
  const profile::ProfileMeta native_meta =
      profile_meta(image, native_res.cycles);
  const profile::ProfileMeta vcfr_meta = profile_meta(rr.vcfr, vcfr_res.cycles);

  // Per-function comparison matched by name; a function with no samples on
  // one side reports 0 cycles there. VCFR-hot functions first.
  struct CmpRow {
    std::string name;
    uint64_t native = 0;
    uint64_t vcfr = 0;
  };
  const auto nf = native_prof.functions();
  const auto vf = vcfr_prof.functions();
  std::map<std::string, uint64_t> native_left;
  for (const auto& f : nf) native_left[f.name] = f.cycles;
  std::vector<CmpRow> rows;
  for (const auto& f : vf) {
    CmpRow row{f.name, 0, f.cycles};
    const auto it = native_left.find(f.name);
    if (it != native_left.end()) {
      row.native = it->second;
      native_left.erase(it);
    }
    rows.push_back(std::move(row));
  }
  for (const auto& f : nf) {
    if (native_left.count(f.name) != 0) rows.push_back({f.name, f.cycles, 0});
  }

  const double overhead =
      native_res.cycles == 0 ? 0.0
                             : static_cast<double>(vcfr_res.cycles) /
                                   static_cast<double>(native_res.cycles);
  rprintf("guest profile: %s (seed %llu), VCFR vs native\n",
              image.name.c_str(),
              static_cast<unsigned long long>(args.seed));
  rprintf("total: native %llu cycles, vcfr %llu cycles (%.3fx)\n",
              static_cast<unsigned long long>(native_res.cycles),
              static_cast<unsigned long long>(vcfr_res.cycles), overhead);
  rprintf("%-24s %14s %14s %8s\n", "function", "native", "vcfr", "ratio");
  for (const CmpRow& row : rows) {
    if (row.native == 0) {
      rprintf("%-24s %14llu %14llu %8s\n", row.name.c_str(),
                  static_cast<unsigned long long>(row.native),
                  static_cast<unsigned long long>(row.vcfr), "-");
    } else {
      rprintf("%-24s %14llu %14llu %7.3fx\n", row.name.c_str(),
                  static_cast<unsigned long long>(row.native),
                  static_cast<unsigned long long>(row.vcfr),
                  static_cast<double>(row.vcfr) /
                      static_cast<double>(row.native));
    }
  }
  rprintf("\n");
  print_causes("vcfr", vcfr_prof);
  rprintf("\n%s", vcfr_prof.to_hot_blocks(vcfr_meta, args.top).c_str());

  if (!args.profile_out.empty()) {
    telemetry::JsonWriter w;
    w.begin_object(telemetry::JsonWriter::Style::kPretty);
    w.key("native").raw_value(native_prof.to_json(native_meta, args.top));
    w.key("vcfr").raw_value(vcfr_prof.to_json(vcfr_meta, args.top));
    w.key("comparison").begin_array(telemetry::JsonWriter::Style::kPretty);
    for (const CmpRow& row : rows) {
      w.begin_object(telemetry::JsonWriter::Style::kCompact);
      w.key("name").value(row.name);
      w.key("native_cycles").value(row.native);
      w.key("vcfr_cycles").value(row.vcfr);
      w.key("overhead")
          .raw_value(telemetry::json_double(
              row.native == 0 ? 0.0
                              : static_cast<double>(row.vcfr) /
                                    static_cast<double>(row.native)));
      w.end_object();
    }
    w.end_array();
    w.end_object();
    write_file(args.profile_out, w.str() + "\n");
    if (args.profile_out != "-") {
      std::fprintf(stderr, "profile: %s\n", args.profile_out.c_str());
    }
  }
  if (!args.flame_out.empty()) {
    write_file(args.flame_out, vcfr_prof.to_collapsed());
    if (args.flame_out != "-") {
      std::fprintf(stderr, "flamegraph: %s\n", args.flame_out.c_str());
    }
  }
  return 0;
}

int cmd_faultcamp(const Args& args) {
  fault::CampaignConfig cc;
  if (!args.workload_list.empty()) cc.workloads = split_list(args.workload_list);
  cc.scale = args.scale;
  cc.trials = args.trials;
  cc.seed = args.seed;
  // The global default budget (100M) is sized for full workloads; a hung
  // campaign trial should cost far less. Keep an explicit flag override.
  cc.max_instructions = args.max_instr == 100'000'000 ? 2'000'000
                                                      : args.max_instr;
  if (!args.layout_list.empty()) {
    cc.layouts.clear();
    for (const std::string& name : split_list(args.layout_list)) {
      if (name == "native" || name == "original") {
        cc.layouts.push_back(binary::Layout::kOriginal);
      } else if (name == "naive" || name == "naive_ilr") {
        cc.layouts.push_back(binary::Layout::kNaiveIlr);
      } else if (name == "vcfr") {
        cc.layouts.push_back(binary::Layout::kVcfr);
      } else {
        throw std::runtime_error("--layouts: unknown layout '" + name +
                                 "' (native|naive|vcfr)");
      }
    }
  }
  if (!args.site_list.empty()) {
    cc.sites.clear();
    for (const std::string& name : split_list(args.site_list)) {
      const auto site = fault::parse_site(name);
      if (!site) {
        throw std::runtime_error("--sites: unknown fault site '" + name +
                                 "' (code_byte|translation_entry|ret_slot|"
                                 "ret_bitmap|payload)");
      }
      cc.sites.push_back(*site);
    }
  }

  std::optional<telemetry::StatRegistry> registry;
  if (!args.stats_json.empty()) registry.emplace();
  const fault::CampaignReport report =
      fault::run_campaign(cc, registry ? &*registry : nullptr);
  if (registry) {
    write_file(args.stats_json, registry->to_json());
    std::fprintf(stderr, "stats: %s\n", args.stats_json.c_str());
  }
  if (!args.output.empty()) {
    write_file(args.output, report.to_json());
    std::fputs(report.summary().c_str(), g_report);
    std::fprintf(stderr, "report: %s\n", args.output.c_str());
  } else if (args.json) {
    std::fputs(report.to_json().c_str(), stdout);
  } else {
    std::fputs(report.summary().c_str(), g_report);
    std::fputs(report.to_json().c_str(), g_report);
  }
  return 0;
}

void usage() { std::fputs(cli::usage_text(), stderr); }

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    usage();
    return 2;
  }
  const std::string cmd = argv[1];
  try {
    const Args args = parse_args(argc, argv);
    validate_flags(cmd, args);
    // With a payload streaming to stdout, human-readable reports move to
    // stderr so pipelines stay clean.
    for (const std::string* out :
         {&args.stats_json, &args.trace_out, &args.sample_out,
          &args.profile_out, &args.flame_out, &args.latency_out,
          &args.journal_out}) {
      if (*out == "-") g_report = stderr;
    }
    if (cmd == "asm") return cmd_asm(args);
    if (cmd == "disasm") return cmd_disasm(args);
    if (cmd == "stats") return cmd_stats(args);
    if (cmd == "randomize") return cmd_randomize(args);
    if (cmd == "run") return cmd_run(args);
    if (cmd == "sim") return cmd_sim(args);
    if (cmd == "scan") return cmd_scan(args);
    if (cmd == "workload") return cmd_workload(args);
    if (cmd == "trace") return cmd_trace(args);
    if (cmd == "cfg") return cmd_cfg(args);
    if (cmd == "entropy") return cmd_entropy(args);
    if (cmd == "fleet") return cmd_fleet(args);
    if (cmd == "serve") return cmd_serve(args);
    if (cmd == "trace-report") return cmd_trace_report(args);
    if (cmd == "leaks") return cmd_leaks(args);
    if (cmd == "prof") return cmd_prof(args);
    if (cmd == "faultcamp") return cmd_faultcamp(args);
    usage();
    return 2;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "vcfr %s: %s\n", cmd.c_str(), e.what());
    return 1;
  }
}
